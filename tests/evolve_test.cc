#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "evolve/driver.h"
#include "evolve/evolve.h"
#include "evolve/incremental_advisor.h"
#include "evolve/migration_planner.h"
#include "evolve/scenario.h"
#include "evolve/workload_tracker.h"
#include "executor/loader.h"
#include "rubis/workload.h"
#include "tests/hotel_fixture.h"

namespace nose::evolve {
namespace {

// ===========================================================================
// WorkloadTracker
// ===========================================================================

TEST(EvolveTrackerTest, TriggersAfterSustainedDrift) {
  TrackerOptions opts;
  opts.window = 10;
  opts.alpha = 0.5;
  opts.threshold = 0.2;
  opts.trigger_windows = 2;
  opts.cooldown_windows = 0;
  WorkloadTracker tracker(opts);
  tracker.SetAdvised({{"a", 0.5}, {"b", 0.5}});

  // First all-"a" window: drift 0.25 > threshold, but one window is not
  // enough for the two-window trigger.
  for (int i = 0; i < 10; ++i) tracker.Record("a");
  EXPECT_EQ(tracker.windows_closed(), 1u);
  EXPECT_GT(tracker.drift(), opts.threshold);
  EXPECT_FALSE(tracker.ShouldReadvise());

  // Second consecutive over-threshold window trips the trigger.
  for (int i = 0; i < 10; ++i) tracker.Record("a");
  EXPECT_TRUE(tracker.ShouldReadvise());
  // Consuming the trigger resets it.
  EXPECT_FALSE(tracker.ShouldReadvise());

  // The estimate decays "b" geometrically but never to exact zero: the
  // observed mix keeps the full statement set, which is what keeps
  // re-advising on the fully incremental path.
  ASSERT_TRUE(tracker.estimate().count("b"));
  EXPECT_GT(tracker.estimate().at("b"), 0.0);
  EXPECT_LT(tracker.estimate().at("b"), 0.5);
}

TEST(EvolveTrackerTest, StableWorkloadNeverTriggers) {
  TrackerOptions opts;
  opts.window = 10;
  opts.threshold = 0.2;
  opts.trigger_windows = 2;
  opts.cooldown_windows = 0;
  WorkloadTracker tracker(opts);
  tracker.SetAdvised({{"a", 0.5}, {"b", 0.5}});
  for (int i = 0; i < 100; ++i) {
    tracker.Record(i % 2 == 0 ? "a" : "b");
    EXPECT_FALSE(tracker.ShouldReadvise());
  }
  EXPECT_EQ(tracker.windows_closed(), 10u);
  EXPECT_LT(tracker.drift(), opts.threshold);
}

TEST(EvolveTrackerTest, CooldownSuppressesRetrigger) {
  TrackerOptions opts;
  opts.window = 4;
  opts.alpha = 1.0;  // estimate snaps to the window frequency
  opts.threshold = 0.2;
  opts.trigger_windows = 1;
  opts.cooldown_windows = 3;
  WorkloadTracker tracker(opts);
  tracker.SetAdvised({{"a", 0.5}, {"b", 0.5}});
  // SetAdvised starts a cooldown: the first drifting windows are ignored.
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 4; ++i) tracker.Record("a");
    EXPECT_FALSE(tracker.ShouldReadvise()) << "cooldown window " << w;
  }
  for (int i = 0; i < 4; ++i) tracker.Record("a");
  EXPECT_TRUE(tracker.ShouldReadvise());
}

TEST(EvolveTrackerTest, ForecastRecoversTwoMixAlternation) {
  // Windows alternate between an all-"a" mix and an all-"b" mix. The
  // period detector must report 2, and the phase-average forecast must
  // predict the NEXT window's mix — not the EWMA blend of both.
  TrackerOptions opts;
  opts.window = 8;
  opts.cooldown_windows = 0;
  WorkloadTracker tracker(opts);
  tracker.SetAdvised({{"a", 0.5}, {"b", 0.5}});
  for (int w = 0; w < 8; ++w) {
    const char* stmt = (w % 2 == 0) ? "a" : "b";
    for (size_t i = 0; i < opts.window; ++i) tracker.Record(stmt);
  }
  ASSERT_EQ(tracker.history_size(), 8u);
  EXPECT_EQ(tracker.DetectPeriod(), 2u);

  // Last closed window was "b" (w = 7), so the next window (k = 0) is "a"
  // and the one after (k = 1) is "b".
  std::map<std::string, double> next = tracker.ForecastWindow(0);
  EXPECT_DOUBLE_EQ(next.at("a"), 1.0);
  std::map<std::string, double> after = tracker.ForecastWindow(1);
  EXPECT_DOUBLE_EQ(after.at("b"), 1.0);

  std::vector<std::map<std::string, double>> horizon =
      tracker.ForecastHorizon(4);
  ASSERT_EQ(horizon.size(), 4u);
  EXPECT_DOUBLE_EQ(horizon[0].at("a"), 1.0);
  EXPECT_DOUBLE_EQ(horizon[1].at("b"), 1.0);
  EXPECT_DOUBLE_EQ(horizon[2].at("a"), 1.0);
  EXPECT_DOUBLE_EQ(horizon[3].at("b"), 1.0);

  // Once the period locks in, the one-step forecast nails each window:
  // zero residual between forecast and observation.
  const char* stmt = "a";  // continues the alternation (w = 8)
  for (size_t i = 0; i < opts.window; ++i) tracker.Record(stmt);
  EXPECT_DOUBLE_EQ(tracker.forecast_residual(), 0.0);
}

TEST(EvolveTrackerTest, ForecastResidualReportsSurprise) {
  // A stationary history forecasts more of the same; an abrupt flip to a
  // disjoint mix maximizes the total-variation residual.
  TrackerOptions opts;
  opts.window = 4;
  opts.cooldown_windows = 0;
  WorkloadTracker tracker(opts);
  tracker.SetAdvised({{"a", 0.5}, {"b", 0.5}});
  for (int w = 0; w < 4; ++w) {
    for (size_t i = 0; i < opts.window; ++i) tracker.Record("a");
  }
  EXPECT_DOUBLE_EQ(tracker.forecast_residual(), 0.0);
  for (size_t i = 0; i < opts.window; ++i) tracker.Record("b");
  EXPECT_DOUBLE_EQ(tracker.forecast_residual(), 1.0);
}

// ===========================================================================
// Scenario parsing
// ===========================================================================

TEST(EvolveScenarioTest, ParsesDirectivesAndPhases) {
  auto scenario = ParseScenario(
      "# comment\n"
      "workload rubis\n"
      "scale 0.1\n"
      "seed 7\n"
      "window 16\n"
      "alpha 0.4\n"
      "threshold 0.12\n"
      "trigger-windows 3\n"
      "cooldown-windows 1\n"
      "chunk-rows 99\n"
      "catchup-batch 17\n"
      "verify-samples 5\n"
      "query-log 64\n"
      "phase default 100\n"
      "phase browsing 200\n");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  EXPECT_EQ(scenario->workload, "rubis");
  EXPECT_DOUBLE_EQ(scenario->scale, 0.1);
  EXPECT_EQ(scenario->seed, 7u);
  EXPECT_EQ(scenario->options.tracker.window, 16u);
  EXPECT_DOUBLE_EQ(scenario->options.tracker.alpha, 0.4);
  EXPECT_DOUBLE_EQ(scenario->options.tracker.threshold, 0.12);
  EXPECT_EQ(scenario->options.tracker.trigger_windows, 3);
  EXPECT_EQ(scenario->options.tracker.cooldown_windows, 1u);
  EXPECT_EQ(scenario->options.migration.chunk_rows, 99u);
  EXPECT_EQ(scenario->options.migration.catchup_batch, 17u);
  EXPECT_EQ(scenario->options.migration.verify_samples, 5u);
  EXPECT_EQ(scenario->options.query_log_capacity, 64u);
  ASSERT_EQ(scenario->phases.size(), 2u);
  EXPECT_EQ(scenario->phases[0].mix, "default");
  EXPECT_EQ(scenario->phases[0].transactions, 100u);
  EXPECT_EQ(scenario->phases[1].mix, "browsing");
  EXPECT_EQ(scenario->phases[1].transactions, 200u);
}

TEST(EvolveScenarioTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseScenario("bogus-directive 1\nphase default 10\n").ok());
  EXPECT_FALSE(ParseScenario("scale nope\nphase default 10\n").ok());
  EXPECT_FALSE(ParseScenario("phase default 0\n").ok());
  EXPECT_FALSE(ParseScenario("phase default\n").ok());
  // No phases: nothing to run.
  EXPECT_FALSE(ParseScenario("workload rubis\n").ok());
}

TEST(EvolveScenarioTest, ParsesModeAndMigrationWeight) {
  auto planned = ParseScenario(
      "mode planned\n"
      "migration-weight 2.5\n"
      "phase default 10\n");
  ASSERT_TRUE(planned.ok()) << planned.status();
  EXPECT_TRUE(planned->planned);
  EXPECT_DOUBLE_EQ(planned->migration_cost_weight, 2.5);

  auto reactive = ParseScenario("mode reactive\nphase default 10\n");
  ASSERT_TRUE(reactive.ok()) << reactive.status();
  EXPECT_FALSE(reactive->planned);

  EXPECT_FALSE(ParseScenario("mode sideways\nphase default 10\n").ok());
  EXPECT_FALSE(
      ParseScenario("migration-weight -1\nphase default 10\n").ok());
}

TEST(EvolveScenarioTest, ErrorsCarrySourceLinePrefix) {
  // Errors use the diagnostics "file:line: message" convention, with the
  // source name (the file path when loaded from disk) as the file.
  auto bad = ParseScenario("scale 0.1\nscale nope\n", "drift.scenario");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("drift.scenario:2: "),
            std::string::npos)
      << bad.status();

  // The default source name keeps errors readable for inline text.
  auto inline_bad = ParseScenario("seed -1\n");
  ASSERT_FALSE(inline_bad.ok());
  EXPECT_NE(inline_bad.status().message().find("scenario:1: "),
            std::string::npos)
      << inline_bad.status();
}

TEST(EvolveScenarioTest, RejectsTrailingTokens) {
  EXPECT_FALSE(ParseScenario("scale 0.1 oops\nphase default 10\n").ok());
  EXPECT_FALSE(ParseScenario("phase default 10 extra\n").ok());
  EXPECT_FALSE(ParseScenario("mode planned now\nphase default 10\n").ok());
  // Trailing comments are fine — they are stripped before tokenizing.
  EXPECT_TRUE(ParseScenario("scale 0.1 # tiny\nphase default 10\n").ok());
}

// ===========================================================================
// MigrationPlanner
// ===========================================================================

/// Distinct candidate column families from the hotel workload. The graph
/// is carried along because column-family paths reference it by pointer.
struct HotelPool {
  std::unique_ptr<EntityGraph> graph;
  std::vector<ColumnFamily> cfs;
};

HotelPool MakeHotelPool() {
  HotelPool out;
  out.graph = MakeHotelGraph();
  Workload workload(out.graph.get());
  (void)workload.AddQuery("q", MakeFig3Query(*out.graph));
  out.cfs = Enumerator()
                .EnumerateWorkload(workload, Workload::kDefaultMix)
                .candidates();
  return out;
}

TEST(EvolveMigrationPlannerTest, DiffsByDefinitionAndOrdersBuildsBySize) {
  HotelPool pool = MakeHotelPool();
  const std::vector<ColumnFamily>& cfs = pool.cfs;
  ASSERT_GE(cfs.size(), 4u);

  Schema old_schema;
  old_schema.Add(cfs[0], "dropped_cf");
  old_schema.Add(cfs[1], "kept_cf");

  Schema new_schema;
  // Kept families carry their live store name into the new generation (the
  // controller's MakeGeneration guarantees this); only new-only families
  // get generation-prefixed names.
  new_schema.Add(cfs[1], "kept_cf");
  new_schema.Add(cfs[2], "g1_new_a");
  new_schema.Add(cfs[3], "g1_new_b");

  CostModel cost;
  MigrationPlan plan = PlanMigration(old_schema, new_schema, cost);
  EXPECT_FALSE(plan.empty());
  // The kept family is identified by canonical key and keeps serving from
  // the live store without any data movement.
  ASSERT_EQ(plan.keep_names.size(), 1u);
  EXPECT_EQ(plan.keep_names[0], "kept_cf");
  ASSERT_EQ(plan.drop_names.size(), 1u);
  EXPECT_EQ(plan.drop_names[0], "dropped_cf");
  ASSERT_EQ(plan.build_indices.size(), 2u);
  // Builds come smallest-first so a failed migration wastes the least
  // data movement.
  const auto& ncfs = new_schema.column_families();
  EXPECT_LE(ncfs[plan.build_indices[0]].SizeBytes(),
            ncfs[plan.build_indices[1]].SizeBytes());

  // Step order: all builds, then catch-up / dual-write / verify / cutover,
  // then drops.
  std::vector<MigrationStepKind> kinds;
  for (const MigrationStep& step : plan.steps) kinds.push_back(step.kind);
  std::vector<MigrationStepKind> expected = {
      MigrationStepKind::kBuild,    MigrationStepKind::kBuild,
      MigrationStepKind::kCatchUp,  MigrationStepKind::kDualWrite,
      MigrationStepKind::kVerify,   MigrationStepKind::kCutover,
      MigrationStepKind::kDrop};
  EXPECT_EQ(kinds, expected);
  EXPECT_GT(plan.est_build_rows, 0.0);
  EXPECT_GT(plan.est_build_cost_ms, 0.0);
}

TEST(EvolveMigrationPlannerTest, IdenticalSchemasYieldEmptyPlan) {
  HotelPool pool = MakeHotelPool();
  const std::vector<ColumnFamily>& cfs = pool.cfs;
  ASSERT_GE(cfs.size(), 2u);
  Schema a;
  a.Add(cfs[0], "one");
  a.Add(cfs[1], "two");
  Schema b;
  b.Add(cfs[1], "renamed_two");  // order and names differ; definitions match
  b.Add(cfs[0], "renamed_one");
  CostModel cost;
  MigrationPlan plan = PlanMigration(a, b, cost);
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.keep_names.size(), 2u);
}

// ===========================================================================
// IncrementalAdvisor
// ===========================================================================

/// Hotel workload with two queries and an update; mixes "default", a
/// reweighted "shift" over the same statements, and a one-query "sub".
std::unique_ptr<Workload> MakeEvolvingWorkload(const EntityGraph& graph) {
  auto workload = std::make_unique<Workload>(&graph);
  (void)workload->AddQuery("guests_by_city", MakeFig3Query(graph), 3.0);
  auto poi_path = graph.SingleEntityPath("POI");
  auto update = Update::MakeUpdate(
      *poi_path, {{"POIDescription", std::nullopt, "d"}},
      {{{"POI", "POIID"}, PredicateOp::kEq, std::nullopt, "p"}});
  (void)workload->AddUpdate("upd_poi", std::move(update).value(), 1.0);
  (void)workload->SetWeight("guests_by_city", "shift", 0.5);
  (void)workload->SetWeight("upd_poi", "shift", 4.0);
  (void)workload->SetWeight("guests_by_city", "sub", 1.0);
  return workload;
}

TEST(EvolveIncrementalAdvisorTest, SameSignatureReadviseMatchesColdExactly) {
  auto graph = MakeHotelGraph();
  auto workload = MakeEvolvingWorkload(*graph);

  IncrementalAdvisor incremental;
  auto first = incremental.Advise(*workload, Workload::kDefaultMix);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->incremental);

  auto warm = incremental.Advise(*workload, "shift");
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->incremental);
  EXPECT_FALSE(warm->seeded_from_superset);

  auto cold = Advisor().Recommend(*workload, "shift");
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(warm->rec.ToString(), cold->ToString());
  EXPECT_NEAR(warm->rec.objective, cold->objective,
              1e-9 * std::max(1.0, cold->objective));
}

TEST(EvolveIncrementalAdvisorTest, SubsetReadviseSeedsFromSuperset) {
  auto graph = MakeHotelGraph();
  auto workload = MakeEvolvingWorkload(*graph);

  IncrementalAdvisor incremental;
  ASSERT_TRUE(incremental.Advise(*workload, Workload::kDefaultMix).ok());
  auto sub = incremental.Advise(*workload, "sub");
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_TRUE(sub->incremental);
  EXPECT_TRUE(sub->seeded_from_superset);

  auto cold = Advisor().Recommend(*workload, "sub");
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(sub->rec.ToString(), cold->ToString());
}

TEST(EvolveIncrementalAdvisorTest, SupersetGrowthFallsBackToColdButMatches) {
  auto graph = MakeHotelGraph();
  auto workload = MakeEvolvingWorkload(*graph);

  IncrementalAdvisor incremental;
  ASSERT_TRUE(incremental.Advise(*workload, "sub").ok());
  // The statement set grew: the sub pool cannot answer the update, so this
  // re-advise re-enumerates — but still matches cold output exactly.
  auto grown = incremental.Advise(*workload, Workload::kDefaultMix);
  ASSERT_TRUE(grown.ok()) << grown.status();
  EXPECT_FALSE(grown->incremental);

  auto cold = Advisor().Recommend(*workload, Workload::kDefaultMix);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(grown->rec.ToString(), cold->ToString());
}

// ===========================================================================
// End-to-end drift: live migration keeps query results identical to a
// control store, and the final schema matches a cold advise at the final
// observed weights.
// ===========================================================================

TEST(EvolveE2ETest, RubisDriftMigratesLiveAndStaysConsistent) {
  auto scenario = ParseScenario(
      "workload rubis\n"
      "scale 0.05\n"
      "seed 42\n"
      "window 32\n"
      "alpha 0.3\n"
      "threshold 0.08\n"
      "trigger-windows 2\n"
      "cooldown-windows 2\n"
      "chunk-rows 256\n"
      "catchup-batch 64\n"
      "verify-samples 8\n"
      "query-log 128\n"
      "phase default 150\n"
      "phase browsing 250\n");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto runner = DriftRunner::Create(*scenario);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());

  const EvolveReport& report = (*runner)->report();
  EXPECT_EQ(report.transactions, 400u);
  EXPECT_EQ(report.invariant_violations, 0u);
  ASSERT_GE(report.migrations.size(), 1u);
  EXPECT_EQ(report.re_advises_cold, 0u);  // the EWMA keeps the full set
  for (const MigrationRecord& m : report.migrations) {
    EXPECT_FALSE(m.aborted);
    EXPECT_EQ(m.verify_mismatches, 0u);
    EXPECT_GT(m.verify_queries, 0u);
    EXPECT_TRUE(m.advise_incremental);
    if (m.builds > 0) EXPECT_GT(m.rows_backfilled, 0u);
  }

  EvolveController& controller = (*runner)->controller();
  ASSERT_FALSE(controller.migration_in_progress());

  // Final-schema parity: re-advising cold at the final observed weights
  // (the "__observed" mix the controller wrote into the workload) must
  // reproduce the active recommendation byte for byte.
  auto cold = Advisor().Recommend((*runner)->workload(), "__observed");
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(controller.active_rec().ToString(), cold->ToString());

  // Control-store equivalence: a fresh store built on the FINAL schema from
  // the immutable dataset, with the full update log replayed through the
  // final generation's plans, must answer every logged query with exactly
  // the rows the live (migrated-in-place) store returns.
  const Schema& schema = controller.active_schema();
  RecordStore control;
  ASSERT_TRUE(LoadSchema((*runner)->data(), schema, &control).ok());
  PlanExecutor control_exec(&control, &schema);
  for (const LoggedStatement& entry : controller.update_log()) {
    auto it = controller.active_update_plans().find(entry.statement);
    if (it == controller.active_update_plans().end()) continue;
    ASSERT_TRUE(control_exec.ExecuteUpdate(it->second, entry.params).ok())
        << entry.statement;
  }
  PlanExecutor live_exec(controller.store(), &schema);
  size_t compared = 0;
  for (const LoggedStatement& entry : controller.query_log()) {
    auto it = controller.active_query_plans().find(entry.statement);
    ASSERT_NE(it, controller.active_query_plans().end()) << entry.statement;
    auto live = live_exec.ExecuteQuery(it->second, entry.params);
    auto expected = control_exec.ExecuteQuery(it->second, entry.params);
    ASSERT_TRUE(live.ok()) << entry.statement << ": " << live.status();
    ASSERT_TRUE(expected.ok()) << entry.statement << ": " << expected.status();
    std::sort(live->begin(), live->end());
    std::sort(expected->begin(), expected->end());
    EXPECT_EQ(*live, *expected) << entry.statement;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

// ===========================================================================
// Planned (horizon) mode: the schedule solved up front migrates at the
// boundary the optimizer chose, and the planned objective undercuts the
// reactive baseline's realized cost.
// ===========================================================================

TEST(EvolveE2ETest, PlannedHorizonMigratesAtBoundaryAndBeatsReactive) {
  const char* base =
      "workload rubis\n"
      "scale 0.05\n"
      "seed 42\n"
      "window 32\n"
      "alpha 0.3\n"
      "threshold 0.08\n"
      "trigger-windows 2\n"
      "cooldown-windows 2\n"
      "chunk-rows 256\n"
      "catchup-batch 64\n"
      "verify-samples 8\n"
      "query-log 128\n"
      "phase default 150\n"
      "phase browsing 250\n";

  auto planned_scenario = ParseScenario(std::string("mode planned\n") + base);
  ASSERT_TRUE(planned_scenario.ok()) << planned_scenario.status();
  ASSERT_TRUE(planned_scenario->planned);
  auto planned = DriftRunner::Create(*planned_scenario);
  ASSERT_TRUE(planned.ok()) << planned.status();
  ASSERT_TRUE((*planned)->Run().ok());

  const HorizonPlan* plan = (*planned)->horizon_plan();
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->windows.size(), 2u);
  EXPECT_FALSE(plan->collapsed);

  const EvolveReport& report = (*planned)->report();
  EXPECT_EQ(report.transactions, 400u);
  EXPECT_EQ(report.invariant_violations, 0u);
  // Planned mode never re-advises: the whole schedule was solved up front.
  EXPECT_EQ(report.re_advises_incremental, 0u);
  EXPECT_EQ(report.re_advises_cold, 0u);
  for (const MigrationRecord& m : report.migrations) {
    EXPECT_TRUE(m.planned);
    EXPECT_FALSE(m.aborted);
    EXPECT_EQ(m.verify_mismatches, 0u);
    EXPECT_EQ(m.to_window, 1u);
    // The migration starts at the planned phase boundary, not on a drift
    // trigger somewhere inside the phase.
    EXPECT_EQ(m.started_at_transaction, 150u);
  }
  if (!plan->transitions.empty()) {
    EXPECT_EQ(plan->transitions[0].at_window, 1u);
    ASSERT_GE(report.migrations.size() + report.no_op_readvises, 1u);
    // The report names the boundary the optimizer migrated at.
    EXPECT_NE(report.ToString().find("planned -> window 1"),
              std::string::npos);
    EXPECT_NE(plan->ToString().find("migrate at start of window 1"),
              std::string::npos);
  }
  EvolveController& controller = (*planned)->controller();
  ASSERT_FALSE(controller.migration_in_progress());
  EXPECT_EQ(controller.current_window(), plan->windows.size() - 1);

  // Reactive baseline on the byte-identical scenario (drift triggers, same
  // seed and phases).
  auto reactive_scenario = ParseScenario(base);
  ASSERT_TRUE(reactive_scenario.ok()) << reactive_scenario.status();
  ASSERT_FALSE(reactive_scenario->planned);
  auto reactive = DriftRunner::Create(*reactive_scenario);
  ASSERT_TRUE(reactive.ok()) << reactive.status();
  ASSERT_TRUE((*reactive)->Run().ok());

  const double planned_realized =
      (*planned)->controller().store()->stats().simulated_ms;
  const double reactive_realized =
      (*reactive)->controller().store()->stats().simulated_ms;
  // The acceptance bar: the planned schedule's total objective (execution
  // + migration, in cost-model ms) does not exceed what the reactive
  // baseline actually paid, and neither does the planned run's own
  // realized cost.
  EXPECT_LE(plan->total_objective, reactive_realized);
  EXPECT_LE(planned_realized, reactive_realized);
}

}  // namespace
}  // namespace nose::evolve
