#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "executor/dataset.h"
#include "executor/loader.h"
#include "executor/plan_executor.h"
#include "tests/hotel_fixture.h"
#include "tests/reference_evaluator.h"
#include "util/rng.h"

namespace nose {
namespace {

int64_t I(int64_t v) { return v; }

/// Deterministic small hotel dataset: every entity instance carries its row
/// index as ID; attribute values are simple functions of the index so the
/// reference evaluator and the executor must agree exactly.
Dataset MakeHotelData(const EntityGraph& graph, Rng& rng, size_t hotels = 6,
                      size_t rooms_per_hotel = 5, size_t guests = 20,
                      size_t reservations = 60, size_t pois = 8) {
  Dataset data(const_cast<EntityGraph*>(&graph));
  const std::vector<std::string> cities = {"Boston", "NYC", "Waterloo"};
  for (size_t h = 0; h < hotels; ++h) {
    data.AddRow("Hotel",
                {I(static_cast<int64_t>(h)),
                 Value("Hotel" + std::to_string(h)), Value(cities[h % 3]),
                 Value(std::string("State") + std::to_string(h % 2)),
                 Value("Addr" + std::to_string(h)), Value(std::string("555"))});
  }
  for (size_t p = 0; p < pois; ++p) {
    data.AddRow("POI", {I(static_cast<int64_t>(p)),
                        Value("POI" + std::to_string(p)),
                        Value("Desc" + std::to_string(p))});
  }
  for (size_t a = 0; a < 4; ++a) {
    data.AddRow("Amenity", {I(static_cast<int64_t>(a)),
                            Value("Amenity" + std::to_string(a))});
  }
  size_t room_count = 0;
  for (size_t h = 0; h < hotels; ++h) {
    for (size_t r = 0; r < rooms_per_hotel; ++r) {
      const size_t room = data.AddRow(
          "Room", {I(static_cast<int64_t>(room_count)),
                   I(static_cast<int64_t>(100 + r)),
                   Value(50.0 + 10.0 * static_cast<double>(room_count % 10)),
                   I(static_cast<int64_t>(r % 3))});
      data.AddLink(0, h, room);               // Hotel -> Rooms
      data.AddLink(4, room, room % 4);        // Room -> Amenities (M:N)
      data.AddLink(4, room, (room + 1) % 4);
      ++room_count;
    }
  }
  for (size_t g = 0; g < guests; ++g) {
    data.AddRow("Guest", {I(static_cast<int64_t>(g)),
                          Value("Guest" + std::to_string(g)),
                          Value("g" + std::to_string(g) + "@x.com")});
  }
  for (size_t r = 0; r < reservations; ++r) {
    const size_t res = data.AddRow(
        "Reservation", {I(static_cast<int64_t>(r)),
                        I(static_cast<int64_t>(rng.Uniform(365))),
                        I(static_cast<int64_t>(rng.Uniform(365)))});
    data.AddLink(1, rng.Uniform(room_count), res);  // Room -> Reservations
    data.AddLink(2, rng.Uniform(guests), res);      // Guest -> Reservations
  }
  for (size_t h = 0; h < hotels; ++h) {  // Hotel <-> POI
    data.AddLink(3, h, h % pois);
    data.AddLink(3, h, (h + 3) % pois);
  }
  return data;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : graph_(MakeHotelGraph()), rng_(42) {
    data_ = std::make_unique<Dataset>(MakeHotelData(*graph_, rng_));
    data_->SyncCountsTo(graph_.get());
  }

  /// Recommends a schema for the workload, loads it, and returns the
  /// executor machinery.
  void Recommend(Workload& workload) {
    Advisor advisor;
    auto rec = advisor.Recommend(workload);
    ASSERT_TRUE(rec.ok()) << rec.status();
    rec_ = std::make_unique<Recommendation>(std::move(rec).value());
    store_ = std::make_unique<RecordStore>();
    ASSERT_TRUE(LoadSchema(*data_, rec_->schema, store_.get()).ok());
    executor_ = std::make_unique<PlanExecutor>(store_.get(), &rec_->schema);
  }

  std::unique_ptr<EntityGraph> graph_;
  Rng rng_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Recommendation> rec_;
  std::unique_ptr<RecordStore> store_;
  std::unique_ptr<PlanExecutor> executor_;
};

TEST_F(ExecutorTest, Fig3QueryMatchesReference) {
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("q", MakeFig3Query(*graph_)).ok());
  Recommend(workload);

  const QueryPlan& plan = rec_->query_plans[0].second;
  for (const char* city : {"Boston", "NYC", "Waterloo", "Nowhere"}) {
    for (double rate : {0.0, 75.0, 200.0}) {
      PlanExecutor::Params params = {{"city", Value(std::string(city))},
                                     {"rate", Value(rate)}};
      auto got = executor_->ExecuteQuery(plan, params);
      ASSERT_TRUE(got.ok()) << got.status();
      auto want = ReferenceEvaluate(*data_, *plan.query, params);
      EXPECT_EQ(CanonicalRows(*got), CanonicalRows(want))
          << "city=" << city << " rate=" << rate;
    }
  }
}

TEST_F(ExecutorTest, MultiStepPlanMatchesReference) {
  // Force a normalized schema by adding a heavy update on Guest emails, so
  // the recommended plan has several steps; results must be identical.
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("q", MakeFig3Query(*graph_), 1.0).ok());
  auto guest_path = graph_->SingleEntityPath("Guest");
  auto upd = Update::MakeUpdate(
      *guest_path, {{"GuestEmail", std::nullopt, "email"}},
      {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE(workload.AddUpdate("u", std::move(upd).value(), 500.0).ok());
  Recommend(workload);

  const QueryPlan& plan = rec_->query_plans[0].second;
  EXPECT_GE(plan.steps.size(), 2u);  // denormalized email is too expensive
  PlanExecutor::Params params = {{"city", Value(std::string("Boston"))},
                                 {"rate", Value(60.0)}};
  auto got = executor_->ExecuteQuery(plan, params);
  ASSERT_TRUE(got.ok()) << got.status();
  auto want = ReferenceEvaluate(*data_, *plan.query, params);
  EXPECT_EQ(CanonicalRows(*got), CanonicalRows(want));
  EXPECT_FALSE(want.empty());
}

TEST_F(ExecutorTest, OrderByDeliversSortedResults) {
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  ASSERT_TRUE(path.ok());
  Query q(*path, {{"Room", "RoomID"}, {"Room", "RoomRate"}},
          {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "city"}},
          {OrderField{{"Room", "RoomRate"}}});
  ASSERT_TRUE(q.Validate().ok());
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("rooms", std::move(q)).ok());
  Recommend(workload);

  PlanExecutor::Params params = {{"city", Value(std::string("NYC"))}};
  auto got = executor_->ExecuteQuery(rec_->query_plans[0].second, params);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_GT(got->size(), 1u);
  for (size_t i = 1; i < got->size(); ++i) {
    EXPECT_FALSE((*got)[i][1] < (*got)[i - 1][1]);  // RoomRate ascending
  }
}

TEST_F(ExecutorTest, UpdateExecutionMaintainsAllColumnFamilies) {
  // Query guests' emails by city; update an email; re-query must see it.
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("q", MakeFig3Query(*graph_), 1.0).ok());
  auto guest_path = graph_->SingleEntityPath("Guest");
  auto upd = Update::MakeUpdate(
      *guest_path, {{"GuestEmail", std::nullopt, "email"}},
      {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE(workload.AddUpdate("u", std::move(upd).value(), 0.5).ok());
  Recommend(workload);

  PlanExecutor::Params qparams = {{"city", Value(std::string("Boston"))},
                                  {"rate", Value(0.0)}};
  auto before = executor_->ExecuteQuery(rec_->query_plans[0].second, qparams);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_FALSE(before->empty());

  // Find a guest that appears in the Boston results and change their email.
  // Select list is (GuestName, GuestEmail); find the guest id by name.
  const std::string victim_name = std::get<std::string>((*before)[0][0]);
  int64_t victim_id = -1;
  for (size_t g = 0; g < data_->RowCount("Guest"); ++g) {
    if (std::get<std::string>(data_->FieldValue("Guest", g, "GuestName")) ==
        victim_name) {
      victim_id = std::get<int64_t>(data_->FieldValue("Guest", g, "GuestID"));
    }
  }
  ASSERT_GE(victim_id, 0);

  PlanExecutor::Params uparams = {{"g", Value(victim_id)},
                                  {"email", Value(std::string("new@x.com"))}};
  ASSERT_TRUE(
      executor_->ExecuteUpdate(rec_->update_plans[0].second, uparams).ok());

  auto after = executor_->ExecuteQuery(rec_->query_plans[0].second, qparams);
  ASSERT_TRUE(after.ok()) << after.status();
  bool found_new = false;
  for (const ValueTuple& row : *after) {
    if (std::get<std::string>(row[0]) == victim_name) {
      EXPECT_EQ(std::get<std::string>(row[1]), "new@x.com");
      found_new = true;
    }
  }
  EXPECT_TRUE(found_new);
}

TEST_F(ExecutorTest, InsertAndConnectBecomeVisible) {
  // Workload: reservations of a guest; insert a new reservation connected
  // to a guest and room; it must appear.
  auto path = graph_->ResolvePath("Reservation", {"Guest"});
  ASSERT_TRUE(path.ok());
  Query q(*path, {{"Reservation", "ResID"}},
          {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}}, {});
  ASSERT_TRUE(q.Validate().ok());
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("res_by_guest", std::move(q)).ok());
  auto ins = Update::MakeInsert(
      graph_.get(), "Reservation",
      {{"ResID", std::nullopt, "rid"},
       {"ResStartDate", std::nullopt, "start"},
       {"ResEndDate", std::nullopt, "end"}},
      {{"Guest", "guest"}, {"Room", "room"}});
  ASSERT_TRUE(ins.ok()) << ins.status();
  ASSERT_TRUE(workload.AddUpdate("ins", std::move(ins).value(), 1.0).ok());
  Recommend(workload);

  PlanExecutor::Params qparams = {{"g", Value(I(3))}};
  auto before = executor_->ExecuteQuery(rec_->query_plans[0].second, qparams);
  ASSERT_TRUE(before.ok()) << before.status();
  const size_t before_count = before->size();

  PlanExecutor::Params iparams = {{"rid", Value(I(99999))},
                                  {"start", Value(I(1))},
                                  {"end", Value(I(2))},
                                  {"guest", Value(I(3))},
                                  {"room", Value(I(0))}};
  ASSERT_TRUE(
      executor_->ExecuteUpdate(rec_->update_plans[0].second, iparams).ok());

  auto after = executor_->ExecuteQuery(rec_->query_plans[0].second, qparams);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->size(), before_count + 1);
  bool found = false;
  for (const ValueTuple& row : *after) {
    if (std::get<int64_t>(row[0]) == 99999) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, DeleteRemovesEntityEverywhere) {
  auto path = graph_->ResolvePath("Reservation", {"Guest"});
  ASSERT_TRUE(path.ok());
  Query q(*path, {{"Reservation", "ResID"}},
          {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}}, {});
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("res_by_guest", std::move(q)).ok());
  auto res_path = graph_->ResolvePath("Reservation", {"Guest"});
  auto del = Update::MakeDelete(
      *res_path,
      {{{"Reservation", "ResID"}, PredicateOp::kEq, std::nullopt, "r"}});
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE(workload.AddUpdate("del", std::move(del).value(), 1.0).ok());
  Recommend(workload);

  // Find a guest with at least one reservation.
  PlanExecutor::Params qparams = {{"g", Value(I(5))}};
  auto before = executor_->ExecuteQuery(rec_->query_plans[0].second, qparams);
  ASSERT_TRUE(before.ok()) << before.status();
  if (before->empty()) GTEST_SKIP() << "guest 5 has no reservations";
  const int64_t victim = std::get<int64_t>((*before)[0][0]);

  PlanExecutor::Params dparams = {{"r", Value(victim)}};
  ASSERT_TRUE(
      executor_->ExecuteUpdate(rec_->update_plans[0].second, dparams).ok());
  auto after = executor_->ExecuteQuery(rec_->query_plans[0].second, qparams);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->size(), before->size() - 1);
}

/// Property test: random parameters over several workload shapes always
/// match the reference evaluator.
class ExecutorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorPropertyTest, RandomQueriesMatchReference) {
  auto graph = MakeHotelGraph();
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  Dataset data = MakeHotelData(*graph, rng);
  data.SyncCountsTo(graph.get());

  // A few query shapes with different path lengths and predicate mixes.
  std::vector<Query> queries;
  {
    auto p = graph->ResolvePath("Room", {"Hotel"});
    queries.emplace_back(
        *p, std::vector<FieldRef>{{"Room", "RoomID"}, {"Room", "RoomRate"}},
        std::vector<Predicate>{
            {{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "city"},
            {{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt, "rate"}},
        std::vector<OrderField>{});
  }
  {
    auto p = graph->ResolvePath("Guest", {"Reservations", "Room"});
    queries.emplace_back(
        *p, std::vector<FieldRef>{{"Guest", "GuestName"}},
        std::vector<Predicate>{
            {{"Room", "RoomID"}, PredicateOp::kEq, std::nullopt, "room"}},
        std::vector<OrderField>{});
  }
  {
    auto p = graph->ResolvePath("POI", {"Hotels"});
    queries.emplace_back(
        *p, std::vector<FieldRef>{{"POI", "POIName"}},
        std::vector<Predicate>{
            {{"Hotel", "HotelID"}, PredicateOp::kEq, std::nullopt, "h"},
            {{"POI", "POIID"}, PredicateOp::kNe, std::nullopt, "notpoi"}},
        std::vector<OrderField>{});
  }

  Workload workload(graph.get());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(workload.AddQuery("q" + std::to_string(i), queries[i]).ok());
  }
  Advisor advisor;
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  RecordStore store;
  ASSERT_TRUE(LoadSchema(data, rec->schema, &store).ok());
  PlanExecutor executor(&store, &rec->schema);

  const std::vector<std::string> cities = {"Boston", "NYC", "Waterloo"};
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<PlanExecutor::Params> all_params = {
        {{"city", Value(cities[rng.Uniform(3)])},
         {"rate", Value(50.0 + static_cast<double>(rng.Uniform(100)))}},
        {{"room", Value(static_cast<int64_t>(rng.Uniform(30)))}},
        {{"h", Value(static_cast<int64_t>(rng.Uniform(6)))},
         {"notpoi", Value(static_cast<int64_t>(rng.Uniform(8)))}},
    };
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryPlan& plan = rec->query_plans[i].second;
      auto got = executor.ExecuteQuery(plan, all_params[i]);
      ASSERT_TRUE(got.ok()) << got.status();
      auto want = ReferenceEvaluate(data, queries[i], all_params[i]);
      EXPECT_EQ(CanonicalRows(*got), CanonicalRows(want))
          << "query " << i << " trial " << trial << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace nose
