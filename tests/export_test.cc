#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "export/cql.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

TEST(CqlExportTest, TypeAndNameMapping) {
  EXPECT_STREQ(CqlTypeName(FieldType::kId), "bigint");
  EXPECT_STREQ(CqlTypeName(FieldType::kInteger), "bigint");
  EXPECT_STREQ(CqlTypeName(FieldType::kFloat), "double");
  EXPECT_STREQ(CqlTypeName(FieldType::kString), "text");
  EXPECT_STREQ(CqlTypeName(FieldType::kDate), "timestamp");
  EXPECT_STREQ(CqlTypeName(FieldType::kBoolean), "boolean");
  EXPECT_EQ(CqlColumnName({"Hotel", "HotelCity"}), "hotel_hotelcity");
}

TEST(CqlExportTest, TableDdlShape) {
  auto graph = MakeHotelGraph();
  auto path = graph->ResolvePath("Room", {"Hotel"});
  auto cf = ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}},
                                 {{"Room", "RoomRate"}, {"Room", "RoomID"}},
                                 {{"Room", "RoomFloor"}});
  ASSERT_TRUE(cf.ok());
  Schema schema;
  schema.Add(std::move(cf).value(), "rooms_by_city");

  const std::string ddl = SchemaToCql(schema, "myks");
  EXPECT_NE(ddl.find("CREATE KEYSPACE IF NOT EXISTS myks"), std::string::npos);
  EXPECT_NE(ddl.find("CREATE TABLE myks.rooms_by_city ("), std::string::npos);
  EXPECT_NE(ddl.find("hotel_hotelcity text"), std::string::npos);
  EXPECT_NE(ddl.find("room_roomrate double"), std::string::npos);
  EXPECT_NE(ddl.find("room_roomfloor bigint"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY ((hotel_hotelcity), room_roomrate, "
                     "room_roomid)"),
            std::string::npos);
  EXPECT_NE(ddl.find("CLUSTERING ORDER BY (room_roomrate ASC, room_roomid "
                     "ASC)"),
            std::string::npos);
  // The relationship path is documented.
  EXPECT_NE(ddl.find("-- materializes Hotel-[Rooms]->Room"),  // canonical direction
            std::string::npos);
}

TEST(CqlExportTest, NoClusteringMeansNoOrderClause) {
  auto graph = MakeHotelGraph();
  auto guest = graph->SingleEntityPath("Guest");
  auto cf = ColumnFamily::Create(*guest, {{"Guest", "GuestID"}}, {},
                                 {{"Guest", "GuestName"}});
  ASSERT_TRUE(cf.ok());
  Schema schema;
  schema.Add(std::move(cf).value(), "guests");
  const std::string ddl = SchemaToCql(schema);
  EXPECT_EQ(ddl.find("CLUSTERING ORDER"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY ((guest_guestid))"), std::string::npos);
}

TEST(CqlExportTest, RecommendationIncludesPlansAsComments) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("q", MakeFig3Query(*graph)).ok());
  auto guest = graph->SingleEntityPath("Guest");
  auto upd = Update::MakeUpdate(
      *guest, {{"GuestEmail", std::nullopt, "e"}},
      {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE(workload.AddUpdate("u", std::move(upd).value(), 0.5).ok());

  Advisor advisor;
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  const std::string out = RecommendationToCql(*rec);
  EXPECT_NE(out.find("CREATE TABLE"), std::string::npos);
  EXPECT_NE(out.find("-- query q:"), std::string::npos);
  EXPECT_NE(out.find("-- update u:"), std::string::npos);
  // Every schema table name appears in the DDL.
  for (const std::string& name : rec->schema.names()) {
    EXPECT_NE(out.find("nose." + name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace nose
