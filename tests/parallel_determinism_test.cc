// The parallel advisor pipeline must be a pure performance knob: whatever
// AdvisorOptions::num_threads is set to, the recommendation — schema,
// plans, objective, even the interned candidate ids — must be byte-for-byte
// identical. These tests pin that contract on the real RUBiS workload and
// on random workloads of both solver strategies' sizes, and extend it to
// the shared-pool path: AdviseAllMixes must reproduce the per-mix
// Recommend output exactly, at every thread count.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "randwl/random_workload.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose {
namespace {

/// Everything observable about a recommendation, rendered to strings.
struct Fingerprint {
  std::string schema;
  std::vector<CfId> pool_ids;
  std::vector<std::string> plans;
  double objective = 0.0;
  size_t num_candidates = 0;
};

Fingerprint FingerprintOf(const Recommendation& rec) {
  Fingerprint fp;
  fp.schema = rec.schema.ToString();
  for (size_t i = 0; i < rec.schema.size(); ++i) {
    fp.pool_ids.push_back(rec.schema.PoolIdAt(i));
  }
  for (const auto& [name, plan] : rec.query_plans) {
    fp.plans.push_back(name + "\n" + plan.ToString());
  }
  for (const auto& [name, plan] : rec.update_plans) {
    fp.plans.push_back(name + "\n" + plan.ToString());
  }
  fp.objective = rec.objective;
  fp.num_candidates = rec.num_candidates;
  return fp;
}

void ExpectIdentical(const Fingerprint& a, const Fingerprint& b,
                     const std::string& label) {
  EXPECT_EQ(a.schema, b.schema) << label;
  EXPECT_EQ(a.pool_ids, b.pool_ids) << label;
  EXPECT_EQ(a.num_candidates, b.num_candidates) << label;
  // Bitwise equality, not a tolerance: the merge order is deterministic,
  // so even floating-point results must match exactly.
  EXPECT_EQ(a.objective, b.objective) << label;
  ASSERT_EQ(a.plans.size(), b.plans.size()) << label;
  for (size_t i = 0; i < a.plans.size(); ++i) {
    EXPECT_EQ(a.plans[i], b.plans[i]) << label << " plan " << i;
  }
}

void CheckThreadCounts(const Workload& workload, const std::string& mix,
                       const AdvisorOptions& base) {
  Fingerprint serial;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AdvisorOptions options = base;
    options.num_threads = threads;
    Advisor advisor(options);
    auto rec = advisor.Recommend(workload, mix);
    ASSERT_TRUE(rec.ok()) << "threads=" << threads << ": " << rec.status();
    if (threads == 1) {
      serial = FingerprintOf(*rec);
      EXPECT_FALSE(serial.schema.empty());
    } else {
      ExpectIdentical(serial, FingerprintOf(*rec),
                      "threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelDeterminismTest, RubisBiddingMixIsThreadCountInvariant) {
  auto graph = rubis::MakeGraph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok()) << workload.status();
  AdvisorOptions options;
  options.verify_invariants = true;
  CheckThreadCounts(**workload, rubis::kBiddingMix, options);
}

TEST(ParallelDeterminismTest, AdviseAllMixesMatchesPerMixAtEveryThreadCount) {
  auto graph = rubis::MakeGraph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok()) << workload.status();
  // Browsing sits in its own statement-set group; Bidding and 10x share a
  // group, exercising pool reuse and the cross-mix warm start.
  const std::vector<std::string> mixes = {
      rubis::kBrowsingMix, rubis::kBiddingMix, rubis::kWrite10xMix};
  AdvisorOptions base;
  base.optimizer.strategy = SolveStrategy::kBip;
  // Deterministic stopping: bound the search by nodes, not wall clock.
  base.optimizer.bip.max_nodes = 20000;
  base.optimizer.bip.time_limit_seconds = 1e9;
  base.verify_invariants = true;

  // Per-mix path at one thread: the reference the shared-pool path must
  // reproduce byte-for-byte.
  std::vector<Fingerprint> reference;
  {
    AdvisorOptions options = base;
    options.num_threads = 1;
    Advisor advisor(options);
    for (const std::string& mix : mixes) {
      auto rec = advisor.Recommend(**workload, mix);
      ASSERT_TRUE(rec.ok()) << mix << ": " << rec.status();
      reference.push_back(FingerprintOf(*rec));
    }
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AdvisorOptions options = base;
    options.num_threads = threads;
    Advisor advisor(options);
    auto all = advisor.AdviseAllMixes(**workload, mixes);
    ASSERT_TRUE(all.ok()) << "threads=" << threads << ": " << all.status();
    ASSERT_EQ(all->size(), mixes.size()) << "threads=" << threads;
    for (size_t k = 0; k < mixes.size(); ++k) {
      EXPECT_EQ((*all)[k].first, mixes[k]);
      ExpectIdentical(reference[k], FingerprintOf((*all)[k].second),
                      mixes[k] + " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelDeterminismTest, RandomWorkloadBipStrategy) {
  randwl::GeneratorOptions gen;
  gen.num_entities = 5;
  gen.num_statements = 8;
  gen.seed = 20260806;
  auto rw = randwl::Generate(gen);
  ASSERT_TRUE(rw.ok()) << rw.status();
  AdvisorOptions options;
  options.optimizer.strategy = SolveStrategy::kBip;
  // Deterministic stopping only: a node budget cuts the search at the same
  // tree node in every run, where a wall-clock limit would not.
  options.optimizer.bip.max_nodes = 20000;
  options.verify_invariants = true;
  CheckThreadCounts(*rw->workload, Workload::kDefaultMix, options);
}

TEST(ParallelDeterminismTest, RandomWorkloadCombinatorialStrategy) {
  randwl::GeneratorOptions gen;
  gen.num_entities = 12;
  gen.num_statements = 24;
  gen.seed = 77;
  auto rw = randwl::Generate(gen);
  ASSERT_TRUE(rw.ok()) << rw.status();
  AdvisorOptions options;
  // Exercises the batch-parallel branch and bound: its fixed batch size
  // keeps the search trajectory identical at every thread count. The time
  // limit is effectively disabled (node budget bounds the run instead)
  // because a wall-clock stop lands on different nodes in different runs.
  options.optimizer.strategy = SolveStrategy::kCombinatorial;
  options.optimizer.bip.max_nodes = 20000;
  options.optimizer.bip.time_limit_seconds = 1e9;
  options.verify_invariants = true;
  CheckThreadCounts(*rw->workload, Workload::kDefaultMix, options);
}

}  // namespace
}  // namespace nose
