#include <set>

#include <gtest/gtest.h>

#include "randwl/random_workload.h"

namespace nose {
namespace {

TEST(RandomWorkloadTest, GeneratesRequestedShape) {
  randwl::GeneratorOptions gen;
  gen.num_entities = 10;
  gen.num_statements = 20;
  gen.seed = 5;
  auto rw = randwl::Generate(gen);
  ASSERT_TRUE(rw.ok()) << rw.status();
  EXPECT_EQ(rw->graph->entity_order().size(), 10u);
  EXPECT_GE(rw->graph->relationships().size(), 9u);  // connected-ish ring
  EXPECT_EQ(rw->workload->entries().size(), 20u);
}

TEST(RandomWorkloadTest, StatementsAreValid) {
  randwl::GeneratorOptions gen;
  gen.num_entities = 12;
  gen.num_statements = 30;
  gen.seed = 6;
  auto rw = randwl::Generate(gen);
  ASSERT_TRUE(rw.ok());
  size_t queries = 0, updates = 0;
  for (const WorkloadEntry& entry : rw->workload->entries()) {
    if (entry.IsQuery()) {
      ++queries;
      EXPECT_TRUE(entry.query().Validate().ok()) << entry.name;
      EXPECT_GE(entry.query().predicates().size(), 1u);
      EXPECT_LE(entry.query().predicates().size(), 3u);
    } else {
      ++updates;
      EXPECT_FALSE(entry.update().sets().empty());
      EXPECT_EQ(entry.update().predicates().size(), 1u);
    }
  }
  EXPECT_GT(queries, 0u);
  EXPECT_GT(updates, 0u);
}

TEST(RandomWorkloadTest, Deterministic) {
  randwl::GeneratorOptions gen;
  gen.seed = 42;
  auto a = randwl::Generate(gen);
  auto b = randwl::Generate(gen);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->workload->entries().size(), b->workload->entries().size());
  for (size_t i = 0; i < a->workload->entries().size(); ++i) {
    const WorkloadEntry& ea = a->workload->entries()[i];
    const WorkloadEntry& eb = b->workload->entries()[i];
    EXPECT_EQ(ea.name, eb.name);
    if (ea.IsQuery() && eb.IsQuery()) {
      EXPECT_EQ(ea.query().ToString(), eb.query().ToString());
    }
  }
}

TEST(RandomWorkloadTest, SeedsDiffer) {
  randwl::GeneratorOptions g1, g2;
  g1.seed = 1;
  g2.seed = 2;
  auto a = randwl::Generate(g1);
  auto b = randwl::Generate(g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // At least one statement differs.
  bool differ = false;
  for (size_t i = 0; i < a->workload->entries().size(); ++i) {
    const WorkloadEntry& ea = a->workload->entries()[i];
    const WorkloadEntry& eb = b->workload->entries()[i];
    if (ea.IsQuery() != eb.IsQuery()) {
      differ = true;
    } else if (ea.IsQuery() &&
               ea.query().ToString() != eb.query().ToString()) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(RandomWorkloadTest, WattsStrogatzRewiringChangesTopology) {
  randwl::GeneratorOptions ring;
  ring.num_entities = 20;
  ring.ws_beta = 0.0;
  ring.seed = 9;
  randwl::GeneratorOptions rewired = ring;
  rewired.ws_beta = 1.0;
  auto a = randwl::Generate(ring);
  auto b = randwl::Generate(rewired);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto edge_set = [](const EntityGraph& g) {
    std::set<std::pair<std::string, std::string>> out;
    for (const Relationship& r : g.relationships()) {
      out.insert({std::min(r.from_entity, r.to_entity),
                  std::max(r.from_entity, r.to_entity)});
    }
    return out;
  };
  EXPECT_NE(edge_set(*a->graph), edge_set(*b->graph));
}

}  // namespace
}  // namespace nose
