#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace nose::util {
namespace {

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);

  // The pool is reusable after Wait().
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int x = 0;
  pool.Submit([&x] { ++x; });
  // Inline execution: visible before Wait().
  EXPECT_EQ(x, 1);
  pool.Wait();
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(4);
  pool.Wait();
  pool.ParallelFor(0, [](size_t) { FAIL() << "no index to run"; });
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer threads than outer tasks forces nesting
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasksBeforeWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      pool.Submit([&] { counter.fetch_add(1); });
    });
  }
  pool.Wait();  // must drain the transitive closure
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, FreeParallelForWorksWithNullPool) {
  std::vector<int> out(50, 0);
  ParallelFor(nullptr, out.size(), [&](size_t i) { out[i] = static_cast<int>(i); });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ParallelForStatusReturnsFirstErrorInIndexOrder) {
  ThreadPool pool(4);
  // Indices 3 and 7 fail; index order (not completion order) decides which
  // Status is returned.
  Status status = ParallelForStatus(&pool, 10, [](size_t i) {
    if (i == 7) return Status::Internal("late failure");
    if (i == 3) return Status::InvalidArgument("early failure");
    return Status::Ok();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("early failure"), std::string::npos)
      << status.ToString();

  EXPECT_TRUE(ParallelForStatus(&pool, 10, [](size_t) { return Status::Ok(); })
                  .ok());
  EXPECT_TRUE(
      ParallelForStatus(nullptr, 0, [](size_t) { return Status::Ok(); }).ok());
}

TEST(ThreadPoolTest, DefaultNumThreadsHonorsEnvOverride) {
  ::setenv("NOSE_TEST_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3u);
  ::unsetenv("NOSE_TEST_THREADS");
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1u);
}

}  // namespace
}  // namespace nose::util
