#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "executor/loader.h"
#include "executor/plan_executor.h"
#include "rubis/datagen.h"
#include "rubis/expert_schema.h"
#include "rubis/model.h"
#include "rubis/workload.h"
#include "schemas/normalized.h"

namespace nose {
namespace {

using rubis::ModelScale;

ModelScale TinyScale() {
  ModelScale scale;
  scale.regions = 4;
  scale.categories = 5;
  scale.users = 100;
  scale.items = 200;
  scale.old_items = 100;
  scale.bids = 1000;
  scale.buynows = 60;
  scale.comments = 200;
  return scale;
}

TEST(RubisModelTest, GraphShapeMatchesPaper) {
  auto graph = rubis::MakeGraph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ((*graph)->entity_order().size(), 8u);
  EXPECT_EQ((*graph)->relationships().size(), 11u);
  // Spot-check a few steps.
  EXPECT_TRUE((*graph)->ResolvePath("User", {"Bids", "Item"}).ok());
  EXPECT_TRUE((*graph)->ResolvePath("Item", {"ItemBids", "Bidder"}).ok());
  EXPECT_TRUE((*graph)->ResolvePath("Comment", {"ToUser"}).ok());
}

TEST(RubisWorkloadTest, AllStatementsParseAndTransactionsResolve) {
  auto graph = rubis::MakeGraph();
  ASSERT_TRUE(graph.ok());
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(rubis::Transactions().size(), 14u);
  // Every transaction statement exists in the workload.
  for (const rubis::Transaction& tx : rubis::Transactions()) {
    for (const std::string& stmt : tx.statements) {
      EXPECT_NE((*workload)->FindEntry(stmt), nullptr)
          << tx.name << " references missing statement " << stmt;
    }
  }
  // Mixes behave: browsing has no updates.
  for (const auto& [entry, weight] :
       (*workload)->EntriesIn(rubis::kBrowsingMix)) {
    EXPECT_TRUE(entry->IsQuery()) << entry->name;
  }
  // 100x mix shifts weight toward writes.
  double w_bid = 0, w_100 = 0;
  for (const auto& [entry, weight] :
       (*workload)->EntriesIn(rubis::kBiddingMix)) {
    if (!entry->IsQuery()) w_bid += weight;
  }
  for (const auto& [entry, weight] :
       (*workload)->EntriesIn(rubis::kWrite100xMix)) {
    if (!entry->IsQuery()) w_100 += weight;
  }
  EXPECT_GT(w_100, 5.0 * w_bid);
}

class RubisAdvisorTest : public ::testing::Test {
 protected:
  RubisAdvisorTest() {
    auto graph = rubis::MakeGraph(TinyScale());
    assert(graph.ok());
    graph_ = std::move(graph).value();
    data_ = std::make_unique<Dataset>(
        rubis::GenerateData(graph_.get(), TinyScale(), 7));
    auto workload = rubis::MakeWorkload(*graph_);
    assert(workload.ok());
    workload_ = std::move(workload).value();
  }

  std::unique_ptr<EntityGraph> graph_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(RubisAdvisorTest, AdvisorRecommendsExecutableSchema) {
  Advisor advisor;
  auto rec = advisor.Recommend(*workload_);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_GT(rec->schema.size(), 5u);
  EXPECT_EQ(rec->query_plans.size(), 12u);  // 12 distinct query statements
  EXPECT_EQ(rec->update_plans.size(), 8u);

  // Load and execute every statement a few times.
  RecordStore store;
  ASSERT_TRUE(LoadSchema(*data_, rec->schema, &store).ok());
  PlanExecutor executor(&store, &rec->schema);
  rubis::ParamGenerator gen(data_.get(), 99);
  for (const auto& [name, plan] : rec->query_plans) {
    const WorkloadEntry* entry = workload_->FindEntry(name);
    for (int i = 0; i < 3; ++i) {
      auto result = executor.ExecuteQuery(plan, gen.ForStatement(*entry));
      EXPECT_TRUE(result.ok()) << name << ": " << result.status();
    }
  }
  for (const auto& [name, plan] : rec->update_plans) {
    const WorkloadEntry* entry = workload_->FindEntry(name);
    for (int i = 0; i < 3; ++i) {
      Status s = executor.ExecuteUpdate(plan, gen.ForStatement(*entry));
      EXPECT_TRUE(s.ok()) << name << ": " << s;
    }
  }
}

/// Plans the whole workload against a fixed schema; fails the test if any
/// statement cannot be implemented.
void ExpectSchemaCoversWorkload(const EntityGraph& graph,
                                const Workload& workload,
                                const Schema& schema, const char* label) {
  CostModel cost_model;
  CardinalityEstimator estimator(&graph, &cost_model.params());
  QueryPlanner planner(&cost_model, &estimator);
  for (const auto& [entry, weight] :
       workload.EntriesIn(Workload::kDefaultMix)) {
    if (entry->IsQuery()) {
      auto plan = planner.PlanForSchema(entry->query(), schema.column_families());
      EXPECT_TRUE(plan.ok()) << label << " cannot answer " << entry->name
                             << ": " << plan.status();
    } else {
      auto plan = PlanUpdateForSchema(entry->update(), schema, planner,
                                      estimator, cost_model);
      EXPECT_TRUE(plan.ok()) << label << " cannot maintain " << entry->name
                             << ": " << plan.status();
    }
  }
}

TEST_F(RubisAdvisorTest, ExpertSchemaCoversWorkload) {
  auto expert = rubis::ExpertSchema(*graph_);
  ASSERT_TRUE(expert.ok()) << expert.status();
  ExpectSchemaCoversWorkload(*graph_, *workload_, *expert, "expert");
}

TEST_F(RubisAdvisorTest, NormalizedSchemaCoversWorkload) {
  auto normalized =
      NormalizedSchema(*graph_, *workload_, Workload::kDefaultMix);
  ASSERT_TRUE(normalized.ok()) << normalized.status();
  ExpectSchemaCoversWorkload(*graph_, *workload_, *normalized, "normalized");
}

TEST_F(RubisAdvisorTest, NoseBeatsNormalizedOnEstimatedCost) {
  Advisor advisor;
  auto rec = advisor.Recommend(*workload_);
  ASSERT_TRUE(rec.ok()) << rec.status();

  auto normalized =
      NormalizedSchema(*graph_, *workload_, Workload::kDefaultMix);
  ASSERT_TRUE(normalized.ok());
  CostModel cost_model;
  CardinalityEstimator estimator(graph_.get(), &cost_model.params());
  QueryPlanner planner(&cost_model, &estimator);
  double normalized_cost = 0.0;
  for (const auto& [entry, weight] :
       workload_->EntriesIn(Workload::kDefaultMix)) {
    if (!entry->IsQuery()) continue;
    auto plan =
        planner.PlanForSchema(entry->query(), normalized->column_families());
    ASSERT_TRUE(plan.ok());
    normalized_cost += weight * plan->cost;
  }
  // The advisor's objective includes update costs; even so it should beat
  // the normalized baseline's queries alone... compare query costs only.
  double nose_cost = 0.0;
  for (const auto& [name, plan] : rec->query_plans) {
    const WorkloadEntry* entry = workload_->FindEntry(name);
    double total = 0;
    for (const auto& [e, w] : workload_->EntriesIn(Workload::kDefaultMix)) {
      (void)e;
      (void)w;
    }
    (void)entry;
    nose_cost += plan.cost;  // summed un-weighted; see weighted check below
    (void)total;
  }
  // Weighted comparison.
  double nose_weighted = 0.0;
  for (const auto& [name, plan] : rec->query_plans) {
    for (const auto& [entry, weight] :
         workload_->EntriesIn(Workload::kDefaultMix)) {
      if (entry->name == name) nose_weighted += weight * plan.cost;
    }
  }
  EXPECT_LT(nose_weighted, normalized_cost);
}

TEST_F(RubisAdvisorTest, BaselineSchemasExecuteTransactions) {
  auto expert = rubis::ExpertSchema(*graph_);
  ASSERT_TRUE(expert.ok());
  CostModel cost_model;
  CardinalityEstimator estimator(graph_.get(), &cost_model.params());
  QueryPlanner planner(&cost_model, &estimator);

  RecordStore store;
  ASSERT_TRUE(LoadSchema(*data_, *expert, &store).ok());
  PlanExecutor executor(&store, &*expert);
  rubis::ParamGenerator gen(data_.get(), 5);
  for (const auto& [entry, weight] :
       workload_->EntriesIn(Workload::kDefaultMix)) {
    if (entry->IsQuery()) {
      auto plan =
          planner.PlanForSchema(entry->query(), expert->column_families());
      ASSERT_TRUE(plan.ok()) << entry->name;
      auto result = executor.ExecuteQuery(*plan, gen.ForStatement(*entry));
      EXPECT_TRUE(result.ok()) << entry->name << ": " << result.status();
    } else {
      auto plan = PlanUpdateForSchema(entry->update(), *expert, planner,
                                      estimator, cost_model);
      ASSERT_TRUE(plan.ok()) << entry->name;
      Status s = executor.ExecuteUpdate(*plan, gen.ForStatement(*entry));
      EXPECT_TRUE(s.ok()) << entry->name << ": " << s;
    }
  }
}

}  // namespace
}  // namespace nose
