// Solver telemetry (SolveLog): the determinism contract — the timing-free
// fingerprint of an advise is bitwise-identical at any thread count — plus
// disabled-by-default behaviour, JSONL round-tripping, ring-buffer
// semantics, and a golden test of the `nose explain` renderer against the
// bundled solve log under tests/data/.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"
#include "solver/bip.h"
#include "solver/lp.h"
#include "solver/solve_log.h"

namespace nose {
namespace {

constexpr const char* kHotelModel = R"(
entity Hotel 100 {
  HotelCity string card 20
}
entity Room 10000 {
  RoomRate float card 100
}
entity Reservation 100000 { id ResID }
entity Guest 50000 {
  GuestName string
  GuestEmail string
}
relationship Hotel one_to_many Room as Rooms / Hotel
relationship Room one_to_many Reservation as Reservations / Room
relationship Guest one_to_many Reservation as Reservations / Guest
)";

constexpr const char* kHotelWorkload = R"(
statement guests_by_city 1 :
  SELECT Guest.GuestName, Guest.GuestEmail
  FROM Guest.Reservations.Room.Hotel
  WHERE Hotel.HotelCity = ?city AND Room.RoomRate > ?rate ;
statement reprice 20 :
  UPDATE Room SET RoomRate = ?rate WHERE Room.RoomID = ?room ;
)";

/// Advises the hotel workload at `threads` workers and returns the
/// recommendation (the BIP solves feed the enabled SolveLog as a side
/// effect).
Recommendation AdviseHotel(size_t threads) {
  auto graph = ParseModel(kHotelModel);
  EXPECT_TRUE(graph.ok());
  auto workload = ParseWorkload(**graph, kHotelWorkload);
  EXPECT_TRUE(workload.ok());
  AdvisorOptions options;
  options.num_threads = threads;
  Advisor advisor(options);
  auto rec = advisor.Recommend(**workload);
  EXPECT_TRUE(rec.ok());
  return std::move(rec).value();
}

/// Restores the global log to its default (disabled, empty) state however
/// the test exits.
struct SolveLogGuard {
  ~SolveLogGuard() {
    SolveLog::Global().Disable();
    SolveLog::Global().Clear();
  }
};

TEST(SolveLogTest, DisabledByDefaultRecordsNothing) {
  SolveLogGuard guard;
  SolveLog& log = SolveLog::Global();
  log.Disable();
  log.Clear();
  AdviseHotel(1);
  EXPECT_EQ(log.lp_record_count(), 0u);
  EXPECT_EQ(log.node_event_count(), 0u);
  EXPECT_EQ(log.bip_record_count(), 0u);
}

TEST(SolveLogTest, EnablingDoesNotPerturbResults) {
  SolveLogGuard guard;
  SolveLog& log = SolveLog::Global();
  log.Disable();
  log.Clear();
  const Recommendation plain = AdviseHotel(1);

  log.Enable();
  const Recommendation logged = AdviseHotel(1);
  EXPECT_GT(log.lp_record_count(), 0u);
  EXPECT_GT(log.bip_record_count(), 0u);

  // Bitwise equality: telemetry must be observation-only.
  EXPECT_EQ(plain.objective, logged.objective);
  EXPECT_EQ(plain.schema.ToString(), logged.schema.ToString());
  EXPECT_EQ(plain.bb_nodes, logged.bb_nodes);
}

TEST(SolveLogTest, FingerprintIdenticalAcrossThreadCounts) {
  SolveLogGuard guard;
  SolveLog& log = SolveLog::Global();
  std::string reference;
  size_t reference_lps = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    log.Enable();  // clears previous records and id counters
    AdviseHotel(threads);
    const std::string fp = log.Fingerprint();
    ASSERT_FALSE(fp.empty());
    if (reference.empty()) {
      reference = fp;
      reference_lps = log.lp_record_count();
    } else {
      EXPECT_EQ(fp, reference) << "threads=" << threads;
      EXPECT_EQ(log.lp_record_count(), reference_lps)
          << "threads=" << threads;
    }
  }
}

TEST(SolveLogTest, JsonlRoundTrip) {
  SolveLogGuard guard;
  SolveLog& log = SolveLog::Global();
  log.Enable();
  AdviseHotel(1);

  const std::vector<LpSolveStats> lps = log.LpRecords();
  const std::vector<BipSolveStats> bips = log.BipRecords();
  ASSERT_FALSE(lps.empty());
  ASSERT_FALSE(bips.empty());

  SolveLogData parsed;
  std::string error;
  ASSERT_TRUE(ParseSolveLogJsonl(log.ToJsonl(), &parsed, &error)) << error;
  ASSERT_EQ(parsed.lp.size(), lps.size());
  ASSERT_EQ(parsed.nodes.size(), log.node_event_count());
  ASSERT_EQ(parsed.bips.size(), bips.size());

  for (size_t i = 0; i < lps.size(); ++i) {
    EXPECT_EQ(parsed.lp[i].id, lps[i].id);
    EXPECT_EQ(parsed.lp[i].engine, lps[i].engine);
    EXPECT_EQ(parsed.lp[i].status, lps[i].status);
    EXPECT_EQ(parsed.lp[i].rows, lps[i].rows);
    EXPECT_EQ(parsed.lp[i].iterations, lps[i].iterations);
    EXPECT_EQ(parsed.lp[i].fill_end, lps[i].fill_end);
    EXPECT_EQ(parsed.lp[i].bip_id, lps[i].bip_id);
    EXPECT_EQ(parsed.lp[i].node_id, lps[i].node_id);
    EXPECT_EQ(parsed.lp[i].fill_curve, lps[i].fill_curve);
  }
  for (size_t i = 0; i < bips.size(); ++i) {
    EXPECT_EQ(parsed.bips[i].status, bips[i].status);
    EXPECT_EQ(parsed.bips[i].objective, bips[i].objective);
    EXPECT_EQ(parsed.bips[i].nodes_explored, bips[i].nodes_explored);
    EXPECT_EQ(parsed.bips[i].incumbents, bips[i].incumbents);
  }
}

TEST(SolveLogTest, RingBufferDropsOldestAndCounts) {
  SolveLogGuard guard;
  SolveLog& log = SolveLog::Global();
  log.Enable(/*max_lp_records=*/4, /*max_node_events=*/3,
             /*max_bip_records=*/2);
  for (int i = 0; i < 10; ++i) {
    LpSolveStats stats;
    stats.rows = i;
    log.RecordLp(std::move(stats));
  }
  EXPECT_EQ(log.lp_record_count(), 4u);
  EXPECT_EQ(log.dropped_lp_records(), 6u);
  const std::vector<LpSolveStats> kept = log.LpRecords();
  ASSERT_EQ(kept.size(), 4u);
  // The oldest records fell off: ids 7..10 (1-based) survive.
  EXPECT_EQ(kept.front().id, 7u);
  EXPECT_EQ(kept.front().rows, 6);
  EXPECT_EQ(kept.back().id, 10u);

  for (int i = 0; i < 5; ++i) {
    BbNodeEvent event;
    event.depth = i;
    log.RecordNode(std::move(event));
  }
  EXPECT_EQ(log.node_event_count(), 3u);
  EXPECT_EQ(log.dropped_node_events(), 2u);
}

TEST(SolveLogTest, LpRecordsCarryBipContext) {
  SolveLogGuard guard;
  SolveLog& log = SolveLog::Global();
  log.Enable();
  AdviseHotel(1);
  // Advisor LP solves all happen inside B&B searches: every record must be
  // stamped with its enclosing solve so explain can attribute time.
  for (const LpSolveStats& lp : log.LpRecords()) {
    EXPECT_GT(lp.bip_id, 0u);
  }
  for (const BipSolveStats& bip : log.BipRecords()) {
    EXPECT_GT(bip.nodes_explored, 0);
  }
}

// The golden pair under tests/data/ was produced by:
//   nose advise --model workloads/hotel.model
//     --workload workloads/hotel.workload
//     --solve-log tests/data/explain_golden.slog
//   nose explain tests/data/explain_golden.slog > tests/data/explain_golden.txt
// ExplainSolveLog is a pure function of the log contents, so the rendered
// report must reproduce the golden text byte for byte.
TEST(SolveLogTest, ExplainGolden) {
  const std::string dir = NOSE_TEST_DATA_DIR;
  SolveLogData data;
  std::string error;
  ASSERT_TRUE(ReadSolveLog(dir + "/explain_golden.slog", &data, &error))
      << error;
  std::ifstream golden_file(dir + "/explain_golden.txt");
  ASSERT_TRUE(golden_file.is_open());
  std::ostringstream golden;
  golden << golden_file.rdbuf();

  const std::string rendered = ExplainSolveLog(data);
  EXPECT_EQ(rendered, golden.str());
  // The diagnosis the log exists for: fill growth and time attribution.
  EXPECT_NE(rendered.find("fill growth"), std::string::npos);
  EXPECT_NE(rendered.find("time attribution"), std::string::npos);
  EXPECT_NE(rendered.find("top lp time sinks"), std::string::npos);
}

}  // namespace
}  // namespace nose
