// Tests for the solver-certificate pipeline: exact dyadic arithmetic
// (util/rational.h), certificate serialization (solver/certificate.h), and
// the independent exact-arithmetic checker (analysis/certify.h). The
// end-to-end cases capture real certificates by advising the bundled
// workloads (path baked in as NOSE_WORKLOADS_DIR) and then corrupt them in
// targeted ways: every corruption must map to its documented NOSE-C code.

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "analysis/certify.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"
#include "solver/certificate.h"
#include "util/rational.h"

namespace nose {
namespace {

using util::Dyadic;

// ---------------------------------------------------------------------------
// Dyadic exact arithmetic
// ---------------------------------------------------------------------------

TEST(DyadicTest, RoundTripsDoublesExactly) {
  for (double v : {0.0, 1.0, -1.0, 0.1, -3.75, 1e-300, 1.5e300,
                   6.02214076e23, -0.30000000000000004}) {
    EXPECT_EQ(Dyadic::FromDouble(v).ToDouble(), v);
  }
}

TEST(DyadicTest, AdditionIsExactWhereDoublesAreNot) {
  // In doubles 0.1 + 0.2 != 0.3; the dyadic sum is the exact sum of the
  // two rationals the doubles denote, which differs from FromDouble(0.3).
  const Dyadic sum = Dyadic::FromDouble(0.1) + Dyadic::FromDouble(0.2);
  EXPECT_NE(sum.Compare(Dyadic::FromDouble(0.3)), 0);
  EXPECT_EQ(sum.ToDouble(), 0.1 + 0.2);  // nearest double of the exact sum
  // Exactly representable sums stay exact.
  const Dyadic exact = Dyadic::FromDouble(0.25) + Dyadic::FromDouble(0.5);
  EXPECT_EQ(exact.Compare(Dyadic::FromDouble(0.75)), 0);
}

TEST(DyadicTest, MultiplicationIsExact) {
  // (1 + 2^-52)^2 needs 105 mantissa bits — representable in a Dyadic,
  // not in a double.
  const double one_ulp = 1.0 + std::ldexp(1.0, -52);
  const Dyadic sq = Dyadic::FromDouble(one_ulp) * Dyadic::FromDouble(one_ulp);
  EXPECT_FALSE(sq.overflow());
  const Dyadic expected = Dyadic::FromDouble(1.0) +
                          Dyadic::FromDouble(std::ldexp(1.0, -51)) +
                          Dyadic::FromDouble(std::ldexp(1.0, -104));
  EXPECT_EQ(sq.Compare(expected), 0);
  EXPECT_NE(sq.Compare(Dyadic::FromDouble(one_ulp * one_ulp)), 0);
}

TEST(DyadicTest, SubtractionCancelsExactly) {
  const Dyadic a = Dyadic::FromDouble(1e16);
  const Dyadic b = Dyadic::FromDouble(0.0001220703125);  // 2^-13
  EXPECT_TRUE(((a + b) - b - a).IsZero());
  EXPECT_EQ((a - a).Sign(), 0);
}

TEST(DyadicTest, SignAndCompare) {
  EXPECT_EQ(Dyadic::FromDouble(-2.5).Sign(), -1);
  EXPECT_EQ(Dyadic::FromDouble(2.5).Sign(), 1);
  EXPECT_EQ(Dyadic::Zero().Sign(), 0);
  EXPECT_LT(Dyadic::FromDouble(1.0).Compare(Dyadic::FromDouble(1.0000001)), 0);
  EXPECT_GT(Dyadic::FromDouble(-1.0).Compare(Dyadic::FromDouble(-2.0)), 0);
}

TEST(DyadicTest, OverflowIsStickyAndConservative) {
  // Squaring 1e300 exceeds the exponent range; the 128-bit mantissa caps
  // products of large odd mantissas too. Either way the result poisons.
  Dyadic big = Dyadic::FromDouble(1.7e308);
  const Dyadic poisoned = big * big * big;
  EXPECT_TRUE(poisoned.overflow());
  EXPECT_TRUE((poisoned + Dyadic::FromDouble(1.0)).overflow());
  EXPECT_TRUE((poisoned - poisoned).overflow());
  EXPECT_TRUE((poisoned * Dyadic::Zero()).overflow());
  // Poisoned comparisons report "greater" so threshold checks fail safe.
  EXPECT_GT(poisoned.Compare(Dyadic::FromDouble(1e308)), 0);
  // Non-finite input poisons immediately.
  EXPECT_TRUE(Dyadic::FromDouble(std::nan("")).overflow());
  EXPECT_TRUE(Dyadic::FromDouble(INFINITY).overflow());
}

// Mantissa-growth regression: summing many values with a wide exponent
// span must not spuriously poison (normalization strips trailing zeros).
TEST(DyadicTest, LongAccumulationStaysExact) {
  Dyadic acc;
  for (int i = 0; i < 1000; ++i) {
    acc = acc + Dyadic::FromDouble(std::ldexp(1.0, -(i % 40)));
  }
  EXPECT_FALSE(acc.overflow());
  EXPECT_GT(acc.Compare(Dyadic::Zero()), 0);
}

// ---------------------------------------------------------------------------
// End-to-end capture: advising a bundled workload yields a certificate
// ---------------------------------------------------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct ParsedFixture {
  std::unique_ptr<EntityGraph> graph;
  std::unique_ptr<Workload> workload;
};

ParsedFixture LoadFixture(const std::string& stem) {
  const std::string dir = NOSE_WORKLOADS_DIR;
  ParsedFixture out;
  auto graph = ParseModel(ReadFileOrDie(dir + "/" + stem + ".model"));
  EXPECT_TRUE(graph.ok()) << graph.status();
  out.graph = std::move(graph).value();
  auto workload =
      ParseWorkload(*out.graph, ReadFileOrDie(dir + "/" + stem + ".workload"));
  EXPECT_TRUE(workload.ok()) << workload.status();
  out.workload = std::move(workload).value();
  return out;
}

const Diagnostic* FindCode(const std::vector<Diagnostic>& diags,
                           const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

SolveCertificate CaptureCertificate(const std::string& stem,
                                    const std::string& mix = "default") {
  ParsedFixture f = LoadFixture(stem);
  SolveCertificate cert;
  cert.instance = stem + ":" + mix;
  AdvisorOptions options;
  options.optimizer.strategy = SolveStrategy::kBip;
  options.optimizer.capture_certificate = &cert;
  Advisor advisor(options);
  auto rec = advisor.Recommend(*f.workload, mix);
  EXPECT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(cert.status, "optimal");
  EXPECT_EQ(cert.x.size(),
            static_cast<size_t>(cert.problem.num_variables()));
  return cert;
}

TEST(CertificateCaptureTest, BundledWorkloadsVerifyWithNonNegativeGap) {
  struct Case {
    const char* stem;
    const char* mix;
  };
  for (const Case& c : {Case{"hotel", "default"}, Case{"rubis", "default"},
                        Case{"rubis", "browsing"},
                        Case{"antipattern", "default"}}) {
    SCOPED_TRACE(std::string(c.stem) + ":" + c.mix);
    const SolveCertificate cert = CaptureCertificate(c.stem, c.mix);
    const CertificateReport report = CheckCertificate(cert);
    EXPECT_TRUE(report.verified) << FormatDiagnostics(report.diagnostics);
    EXPECT_NEAR(report.exact_objective, cert.objective,
                1e-9 * std::max(1.0, std::abs(cert.objective)));
    ASSERT_TRUE(cert.root_available);
    EXPECT_TRUE(report.bound_available)
        << FormatDiagnostics(report.diagnostics);
    EXPECT_GE(report.certified_gap, 0.0);
    // The certified bound can never exceed the certified solution's value.
    EXPECT_LE(report.dual_bound, report.exact_objective + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(CertificateSerializationTest, RoundTripsBitExactly) {
  const SolveCertificate cert = CaptureCertificate("hotel");
  const std::string text = CertificateToString(cert);
  auto parsed = ParseCertificate(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Hexfloat round-trip is bit-exact, so re-serialization is byte-identical.
  EXPECT_EQ(CertificateToString(*parsed), text);
  EXPECT_EQ(parsed->instance, cert.instance);
  EXPECT_EQ(parsed->status, cert.status);
  EXPECT_EQ(parsed->binary_vars, cert.binary_vars);
  EXPECT_EQ(parsed->x, cert.x);
  EXPECT_EQ(parsed->root_available, cert.root_available);
  EXPECT_EQ(parsed->root_duals, cert.root_duals);
  EXPECT_EQ(parsed->objective, cert.objective);
  EXPECT_EQ(parsed->problem.num_variables(), cert.problem.num_variables());
  EXPECT_EQ(parsed->problem.num_rows(), cert.problem.num_rows());
  // And the parsed certificate still verifies.
  EXPECT_TRUE(CheckCertificate(*parsed).verified);
}

TEST(CertificateSerializationTest, FileRoundTrip) {
  const SolveCertificate cert = CaptureCertificate("hotel");
  const std::string path = ::testing::TempDir() + "/hotel.cert";
  ASSERT_TRUE(WriteCertificate(cert, path).ok());
  auto loaded = ReadCertificate(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(CertificateToString(*loaded), CertificateToString(cert));
  EXPECT_TRUE(CheckCertificate(*loaded).verified);
}

TEST(CertificateSerializationTest, MalformedInputIsInvalidArgument) {
  EXPECT_FALSE(ParseCertificate("").ok());
  EXPECT_FALSE(ParseCertificate("not a certificate\n").ok());

  const SolveCertificate cert = CaptureCertificate("hotel");
  const std::string text = CertificateToString(cert);
  // Truncation (drop the trailing "end" line) must fail, not mis-parse.
  const std::string truncated = text.substr(0, text.rfind("end"));
  EXPECT_FALSE(ParseCertificate(truncated).ok());
  // A corrupted numeric field must fail with a line-anchored message.
  std::string corrupted = text;
  const size_t pos = corrupted.find("objective ");
  ASSERT_NE(pos, std::string::npos);
  corrupted.replace(pos, 10, "objective z");
  auto bad = ParseCertificate(corrupted);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos)
      << bad.status();
}

// ---------------------------------------------------------------------------
// Corrupted certificates are rejected with the documented code
// ---------------------------------------------------------------------------

std::set<std::string> ErrorCodes(const CertificateReport& report) {
  std::set<std::string> out;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::kError) out.insert(d.code);
  }
  return out;
}

TEST(CertificateCheckTest, StructuralMismatchIsC001) {
  SolveCertificate cert = CaptureCertificate("hotel");
  cert.x.pop_back();
  const CertificateReport report = CheckCertificate(cert);
  EXPECT_FALSE(report.verified);
  EXPECT_TRUE(ErrorCodes(report).count("NOSE-C001"))
      << FormatDiagnostics(report.diagnostics);
}

TEST(CertificateCheckTest, FlippedBinaryIsC002) {
  SolveCertificate cert = CaptureCertificate("hotel");
  // Flip a selected candidate off: some plan still routes through it, so a
  // linking row must go infeasible.
  bool flipped = false;
  for (int var : cert.binary_vars) {
    if (cert.x[static_cast<size_t>(var)] > 0.5) {
      cert.x[static_cast<size_t>(var)] = 0.0;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped) << "expected at least one selected binary";
  const CertificateReport report = CheckCertificate(cert);
  EXPECT_FALSE(report.verified);
  EXPECT_TRUE(ErrorCodes(report).count("NOSE-C002"))
      << FormatDiagnostics(report.diagnostics);
}

TEST(CertificateCheckTest, FractionalBinaryIsC002) {
  SolveCertificate cert = CaptureCertificate("hotel");
  ASSERT_FALSE(cert.binary_vars.empty());
  cert.x[static_cast<size_t>(cert.binary_vars[0])] = 0.5;
  const CertificateReport report = CheckCertificate(cert);
  EXPECT_FALSE(report.verified);
  EXPECT_TRUE(ErrorCodes(report).count("NOSE-C002"))
      << FormatDiagnostics(report.diagnostics);
}

TEST(CertificateCheckTest, PerturbedObjectiveIsC003) {
  SolveCertificate cert = CaptureCertificate("hotel");
  cert.objective += 0.125;
  const CertificateReport report = CheckCertificate(cert);
  EXPECT_FALSE(report.verified);
  EXPECT_TRUE(ErrorCodes(report).count("NOSE-C003"))
      << FormatDiagnostics(report.diagnostics);
}

TEST(CertificateCheckTest, OverclaimedRootBoundIsC004) {
  SolveCertificate cert = CaptureCertificate("hotel");
  ASSERT_TRUE(cert.root_available);
  // Claim a root bound the duals cannot certify.
  cert.root_objective += 1.0;
  const CertificateReport report = CheckCertificate(cert);
  EXPECT_FALSE(report.verified);
  EXPECT_TRUE(ErrorCodes(report).count("NOSE-C004"))
      << FormatDiagnostics(report.diagnostics);
}

TEST(CertificateCheckTest, TamperedDualsAreC004) {
  SolveCertificate cert = CaptureCertificate("hotel");
  ASSERT_TRUE(cert.root_available);
  // Scaling every multiplier breaks dual feasibility; the reduced-cost
  // clamping then certifies a strictly weaker bound than the claimed root
  // optimum, which the checker must flag rather than silently accept.
  for (double& y : cert.root_duals) y *= 16.0;
  const CertificateReport report = CheckCertificate(cert);
  EXPECT_FALSE(report.verified);
  EXPECT_TRUE(ErrorCodes(report).count("NOSE-C004"))
      << FormatDiagnostics(report.diagnostics);
}

TEST(CertificateCheckTest, MissingDualsDegradeToNoBoundNotFailure) {
  SolveCertificate cert = CaptureCertificate("hotel");
  cert.root_available = false;
  cert.root_duals.clear();
  cert.root_objective = 0.0;
  const CertificateReport report = CheckCertificate(cert);
  EXPECT_TRUE(report.verified) << FormatDiagnostics(report.diagnostics);
  EXPECT_FALSE(report.bound_available);
}

}  // namespace
}  // namespace nose
