#include <gtest/gtest.h>

#include "store/record_store.h"

namespace nose {
namespace {

int64_t I(int64_t v) { return v; }

class RecordStoreTest : public ::testing::Test {
 protected:
  RecordStoreTest() {
    EXPECT_TRUE(store_.CreateColumnFamily("cf", 1, 2, 1).ok());
  }
  RecordStore store_;
};

TEST_F(RecordStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(10), I(100)}, {Value(I(7))}).ok());
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(20), I(200)}, {Value(I(8))}).ok());
  ASSERT_TRUE(store_.Put("cf", {I(2)}, {I(30), I(300)}, {Value(I(9))}).ok());

  auto rows = store_.Get("cf", {I(1)});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].clustering, (ValueTuple{I(10), I(100)}));
  EXPECT_EQ((*rows)[0].values, (ValueTuple{I(7)}));
  EXPECT_EQ((*rows)[1].clustering, (ValueTuple{I(20), I(200)}));

  auto missing = store_.Get("cf", {I(99)});
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

TEST_F(RecordStoreTest, RowsComeBackInClusteringOrder) {
  for (int64_t k : {5, 3, 9, 1, 7}) {
    ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(k), I(0)}, {Value(I(k))}).ok());
  }
  auto rows = store_.Get("cf", {I(1)});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_TRUE((*rows)[i - 1].clustering < (*rows)[i].clustering);
  }
}

TEST_F(RecordStoreTest, ClusteringPrefixFilters) {
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(10), I(1)}, {Value(I(0))}).ok());
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(10), I(2)}, {Value(I(0))}).ok());
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(11), I(3)}, {Value(I(0))}).ok());
  auto rows = store_.Get("cf", {I(1)}, {I(10)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(RecordStoreTest, RangeScans) {
  for (int64_t k = 1; k <= 10; ++k) {
    ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(k), I(0)}, {Value(I(k))}).ok());
  }
  auto gt = store_.Get("cf", {I(1)}, {}, RangeBound{PredicateOp::kGt, I(7)});
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt->size(), 3u);
  auto ge = store_.Get("cf", {I(1)}, {}, RangeBound{PredicateOp::kGe, I(7)});
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->size(), 4u);
  auto lt = store_.Get("cf", {I(1)}, {}, RangeBound{PredicateOp::kLt, I(3)});
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->size(), 2u);
  auto le = store_.Get("cf", {I(1)}, {}, RangeBound{PredicateOp::kLe, I(3)});
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->size(), 3u);
}

TEST_F(RecordStoreTest, RangeAfterPrefix) {
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(10), I(1)}, {Value(I(0))}).ok());
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(10), I(5)}, {Value(I(0))}).ok());
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(11), I(9)}, {Value(I(0))}).ok());
  auto rows =
      store_.Get("cf", {I(1)}, {I(10)}, RangeBound{PredicateOp::kGt, I(2)});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].clustering, (ValueTuple{I(10), I(5)}));
}

TEST_F(RecordStoreTest, PartialValueWritesMerge) {
  ASSERT_TRUE(store_.CreateColumnFamily("wide", 1, 0, 2).ok());
  ASSERT_TRUE(
      store_.Put("wide", {I(1)}, {}, {Value(I(10)), Value(I(20))}).ok());
  ASSERT_TRUE(store_.Put("wide", {I(1)}, {}, {std::nullopt, Value(I(99))}).ok());
  auto rows = store_.Get("wide", {I(1)});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].values, (ValueTuple{I(10), I(99)}));
}

TEST_F(RecordStoreTest, DeleteRemovesRecord) {
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(10), I(1)}, {Value(I(0))}).ok());
  EXPECT_EQ(*store_.RowCount("cf"), 1u);
  ASSERT_TRUE(store_.Delete("cf", {I(1)}, {I(10), I(1)}).ok());
  EXPECT_EQ(*store_.RowCount("cf"), 0u);
  // Idempotent.
  ASSERT_TRUE(store_.Delete("cf", {I(1)}, {I(10), I(1)}).ok());
}

TEST_F(RecordStoreTest, MixedValueTypes) {
  ASSERT_TRUE(store_.CreateColumnFamily("mix", 1, 1, 2).ok());
  ASSERT_TRUE(store_
                  .Put("mix", {Value(std::string("Boston"))}, {Value(3.5)},
                       {Value(std::string("x")), Value(true)})
                  .ok());
  auto rows = store_.Get("mix", {Value(std::string("Boston"))});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<std::string>((*rows)[0].values[0]), "x");
  EXPECT_EQ(std::get<bool>((*rows)[0].values[1]), true);
}

TEST_F(RecordStoreTest, ErrorsOnMisuse) {
  EXPECT_FALSE(store_.CreateColumnFamily("cf", 1, 0, 0).ok());  // duplicate
  EXPECT_FALSE(store_.CreateColumnFamily("bad", 0, 0, 0).ok());
  EXPECT_FALSE(store_.Get("nope", {I(1)}).ok());
  EXPECT_FALSE(store_.Put("cf", {I(1)}, {I(1)}, {Value(I(0))}).ok());  // arity
  EXPECT_FALSE(store_.Get("cf", {I(1)}, {I(1), I(2), I(3)}).ok());
  // Range with full prefix has no component to scan.
  EXPECT_FALSE(
      store_.Get("cf", {I(1)}, {I(1), I(2)}, RangeBound{PredicateOp::kGt, I(0)})
          .ok());
}

TEST_F(RecordStoreTest, StatsAccumulateSimulatedTime) {
  const CostParams params;
  ASSERT_TRUE(store_.Put("cf", {I(1)}, {I(1), I(1)}, {Value(I(0))}).ok());
  const double after_put = store_.stats().simulated_ms;
  EXPECT_GE(after_put, params.write_request);
  ASSERT_TRUE(store_.Get("cf", {I(1)}).ok());
  EXPECT_GE(store_.stats().simulated_ms, after_put + params.read_request);
  EXPECT_EQ(store_.stats().gets, 1u);
  EXPECT_EQ(store_.stats().puts, 1u);
  EXPECT_EQ(store_.stats().rows_read, 1u);
  store_.ResetStats();
  EXPECT_EQ(store_.stats().gets, 0u);
  EXPECT_EQ(store_.stats().simulated_ms, 0.0);
}

}  // namespace
}  // namespace nose
