// Structural invariants of plan spaces, checked over many generated
// queries: every edge must describe a physically executable get (all
// partition fields bound, ranges only on ranges, costs positive), the DAG
// must be acyclic with Done reachable, and best-cost must behave like a
// minimum.

#include <set>

#include <gtest/gtest.h>

#include "analysis/invariants.h"
#include "enumerator/enumerator.h"
#include "planner/plan_space.h"
#include "randwl/random_workload.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

void CheckSpaceInvariants(const Query& query, const PlanSpace& space,
                          const std::vector<ColumnFamily>& pool) {
  ASSERT_FALSE(space.states().empty());
  // Initial state holds no IDs.
  EXPECT_FALSE(space.states()[0].holds_ids);

  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    for (const PlanSpaceEdge& edge : state.edges) {
      ASSERT_LT(edge.cf_index, pool.size());
      const ColumnFamily& cf = pool[edge.cf_index];
      const AccessDetail& a = edge.access;

      // Step geometry: walks downward (or in place) along the path.
      EXPECT_EQ(edge.from_index, state.entity_index);
      EXPECT_LE(edge.to_index, edge.from_index);
      // First edges only leave the initial state.
      EXPECT_EQ(edge.first, s == 0);

      // Every partition-key field is bound: by the held ID or by an
      // equality predicate of this step.
      size_t bound = a.partition_preds.size() + (a.partition_uses_id ? 1 : 0);
      EXPECT_EQ(bound, cf.partition_key().size())
          << cf.ToString() << " in " << query.ToString();
      for (const Predicate& p : a.partition_preds) {
        EXPECT_TRUE(p.IsEquality());
      }
      for (const Predicate& p : a.clustering_eq) {
        EXPECT_TRUE(p.IsEquality());
      }
      if (a.pushed_range.has_value()) {
        EXPECT_TRUE(a.pushed_range->IsRange());
        // The pushed range's field must be a clustering component.
        const auto& ck = cf.clustering_key();
        EXPECT_NE(std::find(ck.begin(), ck.end(), a.pushed_range->field),
                  ck.end());
      }
      // Filtered predicates need their field stored in the family.
      for (const Predicate& p : a.filters) {
        EXPECT_TRUE(cf.ContainsField(p.field)) << p.ToString();
      }
      // Cardinalities and costs are sane.
      EXPECT_GE(a.requests, 1.0 - 1e-9);
      EXPECT_GE(a.rows_per_request, 0.0);
      EXPECT_GE(a.rows_out, 0.0);
      EXPECT_GT(edge.cost, 0.0);
      // Targets are valid state ids or Done.
      EXPECT_TRUE(edge.target_state == PlanSpaceEdge::kDone ||
                  (edge.target_state >= 0 &&
                   static_cast<size_t>(edge.target_state) <
                       space.states().size()));
    }
  }

  // Acyclicity: DFS from the root never revisits a state on the current
  // path (the builder guarantees strictly-progressing states).
  std::vector<int> mark(space.states().size(), 0);
  std::function<bool(size_t)> dfs = [&](size_t s) -> bool {
    if (mark[s] == 1) return false;  // back edge: cycle
    if (mark[s] == 2) return true;
    mark[s] = 1;
    for (const PlanSpaceEdge& e : space.states()[s].edges) {
      if (e.target_state >= 0 && !dfs(static_cast<size_t>(e.target_state))) {
        return false;
      }
    }
    mark[s] = 2;
    return true;
  };
  EXPECT_TRUE(dfs(0)) << "plan space has a cycle for " << query.ToString();

  // BestCost monotonicity: restricting candidates never improves the cost.
  const double all = space.BestCost();
  std::vector<bool> half(pool.size());
  for (size_t c = 0; c < pool.size(); ++c) half[c] = (c % 2 == 0);
  const double restricted = space.BestCost(half);
  EXPECT_GE(restricted, all - 1e-9);

  // A full-pool best plan exists and its steps' costs sum to its cost.
  if (std::isfinite(all)) {
    auto plan = space.BestPlan(pool);
    ASSERT_TRUE(plan.ok());
    double sum = plan->needs_sort ? plan->sort_cost : 0.0;
    for (const PlanStep& step : plan->steps) sum += step.access.step_cost;
    EXPECT_NEAR(sum, plan->cost, 1e-9);

    // The extracted plan also satisfies the analysis-layer invariants:
    // contiguous step chain, every predicate applied exactly once, all
    // partition keys bound, all column families known.
    Schema schema;
    for (const ColumnFamily& cf : pool) schema.Add(cf);
    const std::vector<Diagnostic> diags =
        CheckQueryPlan(*plan, schema, query.ToString());
    EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
  }
}

TEST(PlanSpaceInvariantsTest, HotelQueries) {
  auto graph = MakeHotelGraph();
  std::vector<Query> queries;
  queries.push_back(MakeFig3Query(*graph));
  {
    auto p = graph->ResolvePath("Room", {"Hotel"});
    queries.emplace_back(
        *p, std::vector<FieldRef>{{"Room", "RoomID"}},
        std::vector<Predicate>{
            {{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "c"},
            {{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt, "r"}},
        std::vector<OrderField>{{{"Room", "RoomRate"}}});
  }
  {
    auto p = graph->ResolvePath("POI", {"Hotels", "Rooms"});
    queries.emplace_back(
        *p, std::vector<FieldRef>{{"POI", "POIName"}},
        std::vector<Predicate>{
            {{"Room", "RoomID"}, PredicateOp::kEq, std::nullopt, "room"}},
        std::vector<OrderField>{});
  }

  Enumerator enumerator;
  CandidatePool pool;
  for (const Query& q : queries) enumerator.EnumerateQuery(q, &pool);
  enumerator.Combine(&pool);

  CostModel cm;
  CardinalityEstimator est(graph.get(), &cm.params());
  QueryPlanner planner(&cm, &est);
  for (const Query& q : queries) {
    PlanSpace space = planner.Build(q, pool.candidates());
    CheckSpaceInvariants(q, space, pool.candidates());
    EXPECT_TRUE(space.HasPlan()) << q.ToString();
  }
}

class RandomPlanSpaceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlanSpaceTest, InvariantsHoldOnRandomWorkloads) {
  randwl::GeneratorOptions gen;
  gen.num_entities = 7;
  gen.num_statements = 10;
  gen.seed = 31400 + static_cast<uint64_t>(GetParam());
  auto rw = randwl::Generate(gen);
  ASSERT_TRUE(rw.ok());

  Enumerator enumerator;
  CandidatePool pool = enumerator.EnumerateWorkload(*rw->workload, "default");
  CostModel cm;
  CardinalityEstimator est(rw->graph.get(), &cm.params());
  QueryPlanner planner(&cm, &est);
  for (const WorkloadEntry& entry : rw->workload->entries()) {
    if (!entry.IsQuery()) continue;
    PlanSpace space = planner.Build(entry.query(), pool.candidates());
    CheckSpaceInvariants(entry.query(), space, pool.candidates());
    EXPECT_TRUE(space.HasPlan()) << entry.query().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanSpaceTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace nose
