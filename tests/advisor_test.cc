#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

/// Every advisor in this file runs with the invariant audit on
/// (analysis/invariants.h): each recommendation is re-checked for plan
/// coverage, predicate partitioning, maintenance completeness and objective
/// consistency before the test's own assertions run.
AdvisorOptions Verified(AdvisorOptions opts = AdvisorOptions()) {
  opts.verify_invariants = true;
  return opts;
}

/// The §II guest-POI query: points of interest near hotels booked by a
/// guest.
Query MakeGuestPoiQuery(const EntityGraph& graph) {
  auto path = graph.ResolvePath(
      "POI", {"Hotels", "Rooms", "Reservations", "Guest"});
  assert(path.ok());
  std::vector<FieldRef> select = {{"POI", "POIName"},
                                  {"POI", "POIDescription"}};
  std::vector<Predicate> preds = {
      {{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "guest"}};
  return Query(std::move(path).value(), std::move(select), std::move(preds),
               {});
}

TEST(AdvisorTest, Fig3QueryGetsMaterializedView) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guests_by_city", MakeFig3Query(*graph)).ok());

  Advisor advisor(Verified());
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  // Read-only workload: a single materialized view answers the query in one
  // get, and the second solve phase shrinks the schema to just that.
  EXPECT_EQ(rec->schema.size(), 1u);
  ASSERT_EQ(rec->query_plans.size(), 1u);
  EXPECT_EQ(rec->query_plans[0].second.steps.size(), 1u);
  EXPECT_GT(rec->num_candidates, 5u);
}

TEST(AdvisorTest, SectionIIGuestPoiExample) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guest_pois", MakeGuestPoiQuery(*graph)).ok());

  Advisor advisor(Verified());
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->schema.size(), 1u);
  const ColumnFamily& cf = rec->schema.column_families()[0];
  // Keyed by the guest, carrying POI name/description — §II's denormalized
  // column family.
  ASSERT_EQ(cf.partition_key().size(), 1u);
  EXPECT_EQ(cf.partition_key()[0].QualifiedName(), "Guest.GuestID");
  EXPECT_TRUE(cf.ContainsField({"POI", "POIName"}));
  EXPECT_TRUE(cf.ContainsField({"POI", "POIDescription"}));
}

TEST(AdvisorTest, FrequentUpdatesForceNormalization) {
  // §II: "if the application expects to be updating the names and
  // descriptions of points of interest frequently, [the denormalized]
  // column family may not be ideal".
  auto graph = MakeHotelGraph();

  auto make_workload = [&](double update_weight) {
    auto workload = std::make_unique<Workload>(graph.get());
    Status s =
        workload->AddQuery("guest_pois", MakeGuestPoiQuery(*graph), 1.0);
    assert(s.ok());
    auto poi_path = graph->SingleEntityPath("POI");
    auto update = Update::MakeUpdate(
        *poi_path,
        {{"POIDescription", std::nullopt, "desc"}},
        {{{"POI", "POIID"}, PredicateOp::kEq, std::nullopt, "poi"}});
    assert(update.ok());
    s = workload->AddUpdate("update_poi", std::move(update).value(),
                            update_weight);
    assert(s.ok());
    (void)s;
    return workload;
  };

  Advisor advisor(Verified());
  // Light updates: denormalization stays (POI attributes in the guest CF).
  // Each POI is duplicated into ~2000 guest partitions, so the update must
  // be genuinely rare for the duplication to pay off.
  auto light = make_workload(1e-5);
  auto rec_light = advisor.Recommend(*light);
  ASSERT_TRUE(rec_light.ok()) << rec_light.status();

  // Heavy updates: POI attributes should be stored once, keyed by POIID,
  // with the guest CF holding only the structure.
  auto heavy = make_workload(10000.0);
  auto rec_heavy = advisor.Recommend(*heavy);
  ASSERT_TRUE(rec_heavy.ok()) << rec_heavy.status();

  auto denormalized = [](const Recommendation& rec) {
    for (const ColumnFamily& cf : rec.schema.column_families()) {
      const bool keyed_by_guest =
          cf.partition_key().size() == 1 &&
          cf.partition_key()[0].QualifiedName() == "Guest.GuestID";
      if (keyed_by_guest && cf.ContainsField({"POI", "POIDescription"})) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(denormalized(*rec_light));
  EXPECT_FALSE(denormalized(*rec_heavy));
  // The heavy-update schema still answers the query (plan exists) but via a
  // normalized split: a structure CF plus a POI materialization CF.
  ASSERT_EQ(rec_heavy->query_plans.size(), 1u);
  EXPECT_GE(rec_heavy->query_plans[0].second.steps.size(), 2u);
}

TEST(AdvisorTest, SpaceConstraintForcesSmallerSchema) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guests_by_city", MakeFig3Query(*graph)).ok());
  ASSERT_TRUE(workload.AddQuery("guest_pois", MakeGuestPoiQuery(*graph)).ok());

  Advisor unconstrained(Verified());
  auto rec_free = unconstrained.Recommend(workload);
  ASSERT_TRUE(rec_free.ok()) << rec_free.status();
  const double free_size = rec_free->schema.TotalSizeBytes();
  const double free_cost = rec_free->objective;

  AdvisorOptions opts;
  opts.optimizer.space_limit_bytes = free_size * 0.5;
  Advisor constrained(Verified(opts));
  auto rec_tight = constrained.Recommend(workload);
  ASSERT_TRUE(rec_tight.ok()) << rec_tight.status();
  EXPECT_LE(rec_tight->schema.TotalSizeBytes(), free_size * 0.5);
  // Less space => no cheaper than the unconstrained optimum.
  EXPECT_GE(rec_tight->objective, free_cost - 1e-9);
}

TEST(AdvisorTest, ImpossibleSpaceConstraintIsInfeasible) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guests_by_city", MakeFig3Query(*graph)).ok());
  AdvisorOptions opts;
  opts.optimizer.space_limit_bytes = 1.0;  // one byte
  Advisor advisor(Verified(opts));
  auto rec = advisor.Recommend(workload);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kInfeasible);
}

TEST(AdvisorTest, ObjectiveMatchesRecommendedPlanCosts) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guests_by_city", MakeFig3Query(*graph), 3.0)
                  .ok());
  ASSERT_TRUE(workload.AddQuery("guest_pois", MakeGuestPoiQuery(*graph), 1.0)
                  .ok());
  Advisor advisor(Verified());
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  double replayed = 0.0;
  for (const auto& [name, plan] : rec->query_plans) {
    const WorkloadEntry* entry = workload.FindEntry(name);
    replayed += entry->WeightIn(Workload::kDefaultMix) / 4.0 * plan.cost;
  }
  EXPECT_NEAR(replayed, rec->objective, 1e-6 * std::max(1.0, rec->objective));
}

TEST(AdvisorTest, SecondPhaseMinimizesSchemaSize) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guests_by_city", MakeFig3Query(*graph)).ok());

  AdvisorOptions no_min;
  no_min.optimizer.minimize_schema_size = false;
  Advisor plain(Verified(no_min));
  auto rec_plain = plain.Recommend(workload);
  Advisor minimizing(Verified());
  auto rec_min = minimizing.Recommend(workload);
  ASSERT_TRUE(rec_plain.ok());
  ASSERT_TRUE(rec_min.ok());
  EXPECT_LE(rec_min->schema.size(), rec_plain->schema.size());
  EXPECT_NEAR(rec_min->objective, rec_plain->objective,
              1e-5 * std::max(1.0, rec_plain->objective));
}

TEST(AdvisorTest, AdviseAllMixesSharesAcrossSubsetGroups) {
  // "small" weights a strict subset of the default mix's statements, so
  // AdviseAllMixes serves it by projecting the default group's plan spaces
  // (the cross-group sharing path) — which must not change the output.
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guests_by_city", MakeFig3Query(*graph), 2.0)
                  .ok());
  ASSERT_TRUE(workload.AddQuery("guest_pois", MakeGuestPoiQuery(*graph), 1.0)
                  .ok());
  ASSERT_TRUE(workload.SetWeight("guests_by_city", "small", 1.0).ok());

  Advisor advisor(Verified());
  auto all = advisor.AdviseAllMixes(workload, {"default", "small"});
  ASSERT_TRUE(all.ok()) << all.status();
  ASSERT_EQ(all->size(), 2u);
  for (const auto& [mix, rec] : *all) {
    auto solo = advisor.Recommend(workload, mix);
    ASSERT_TRUE(solo.ok()) << mix << ": " << solo.status();
    EXPECT_EQ(rec.ToString(), solo->ToString()) << mix;
  }
}

TEST(AdvisorTest, TimingBreakdownStaysNonNegative) {
  // Shared-pool advising hands later mixes cached plan spaces, which once
  // drove the residual "other" bucket (total minus attributed phases)
  // negative. Every bucket must be clamped to a physical value.
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  ASSERT_TRUE(workload.AddQuery("guests_by_city", MakeFig3Query(*graph), 2.0)
                  .ok());
  ASSERT_TRUE(workload.AddQuery("guest_pois", MakeGuestPoiQuery(*graph), 1.0)
                  .ok());
  ASSERT_TRUE(workload.SetWeight("guests_by_city", "shift", 1.0).ok());
  ASSERT_TRUE(workload.SetWeight("guest_pois", "shift", 5.0).ok());

  Advisor advisor(Verified());
  auto all = advisor.AdviseAllMixes(workload, {"default", "shift"});
  ASSERT_TRUE(all.ok()) << all.status();
  for (const auto& [mix, rec] : *all) {
    EXPECT_GE(rec.timing.enumeration_seconds, 0.0) << mix;
    EXPECT_GE(rec.timing.cost_calculation_seconds, 0.0) << mix;
    EXPECT_GE(rec.timing.bip_construction_seconds, 0.0) << mix;
    EXPECT_GE(rec.timing.bip_solve_seconds, 0.0) << mix;
    EXPECT_GE(rec.timing.other_seconds, 0.0) << mix;
    EXPECT_GE(rec.timing.total_seconds, 0.0) << mix;
  }
}

}  // namespace
}  // namespace nose
