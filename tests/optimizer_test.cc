#include <cmath>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "randwl/random_workload.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

Query MakeGuestPoiQuery(const EntityGraph& graph) {
  auto path =
      graph.ResolvePath("POI", {"Hotels", "Rooms", "Reservations", "Guest"});
  std::vector<FieldRef> select = {{"POI", "POIName"}};
  std::vector<Predicate> preds = {
      {{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "guest"}};
  return Query(std::move(path).value(), std::move(select), std::move(preds),
               {});
}

/// Builds a mixed hotel workload with `update_weight` on a POI update.
std::unique_ptr<Workload> MakeMixedWorkload(const EntityGraph& graph,
                                            double update_weight) {
  auto workload = std::make_unique<Workload>(&graph);
  (void)workload->AddQuery("guests_by_city", MakeFig3Query(graph), 2.0);
  (void)workload->AddQuery("guest_pois", MakeGuestPoiQuery(graph), 1.0);
  auto poi = graph.SingleEntityPath("POI");
  auto upd = Update::MakeUpdate(
      *poi, {{"POIDescription", std::nullopt, "d"}},
      {{{"POI", "POIID"}, PredicateOp::kEq, std::nullopt, "p"}});
  (void)workload->AddUpdate("upd_poi", std::move(upd).value(), update_weight);
  return workload;
}

/// The two solve strategies must agree on the objective (within the
/// optimality gaps both honor).
TEST(OptimizerStrategyTest, CombinatorialMatchesBipOnHotelWorkloads) {
  auto graph = MakeHotelGraph();
  for (double w : {0.001, 0.5, 10.0}) {
    auto workload = MakeMixedWorkload(*graph, w);

    AdvisorOptions bip_opts;
    bip_opts.optimizer.strategy = SolveStrategy::kBip;
    Advisor bip_advisor(bip_opts);
    auto bip = bip_advisor.Recommend(*workload);
    ASSERT_TRUE(bip.ok()) << bip.status();

    AdvisorOptions comb_opts;
    comb_opts.optimizer.strategy = SolveStrategy::kCombinatorial;
    Advisor comb_advisor(comb_opts);
    auto comb = comb_advisor.Recommend(*workload);
    ASSERT_TRUE(comb.ok()) << comb.status();

    const double tol =
        0.025 * std::max(1e-9, std::max(bip->objective, comb->objective));
    EXPECT_NEAR(bip->objective, comb->objective, tol) << "weight " << w;
  }
}

// Sanitizer instrumentation slows the solvers several-fold; give the BIP a
// proportionally larger wall-clock budget so the equivalence check below
// compares strategies rather than build configurations.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr double kSolverBudgetScale = 8.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kSolverBudgetScale = 8.0;
#else
constexpr double kSolverBudgetScale = 1.0;
#endif
#else
constexpr double kSolverBudgetScale = 1.0;
#endif

class StrategyEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(StrategyEquivalenceTest, RandomWorkloadsAgree) {
  randwl::GeneratorOptions gen;
  gen.num_entities = 4;
  gen.num_statements = 6;
  gen.seed = 1000 + static_cast<uint64_t>(GetParam());
  auto rw = randwl::Generate(gen);
  ASSERT_TRUE(rw.ok()) << rw.status();

  AdvisorOptions bip_opts;
  bip_opts.optimizer.strategy = SolveStrategy::kBip;
  bip_opts.optimizer.bip.time_limit_seconds = 30 * kSolverBudgetScale;
  Advisor bip_advisor(bip_opts);
  auto bip = bip_advisor.Recommend(*rw->workload);

  AdvisorOptions comb_opts;
  comb_opts.optimizer.strategy = SolveStrategy::kCombinatorial;
  Advisor comb_advisor(comb_opts);
  auto comb = comb_advisor.Recommend(*rw->workload);

  ASSERT_EQ(bip.ok(), comb.ok());
  if (!bip.ok()) return;
  if (!bip->solve_proven || !comb->solve_proven) {
    GTEST_SKIP() << "a solver hit its budget; objectives not comparable";
  }
  const double tol =
      0.03 * std::max(1e-9, std::max(bip->objective, comb->objective));
  EXPECT_NEAR(bip->objective, comb->objective, tol)
      << "seed " << gen.seed;
  // Both schemas must cover the workload with comparable costs; plan counts
  // match statement counts.
  EXPECT_EQ(bip->query_plans.size(), comb->query_plans.size());
  EXPECT_EQ(bip->update_plans.size(), comb->update_plans.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceTest,
                         ::testing::Range(0, 8));

TEST(OptimizerStrategyTest, AutoSelectsBipForSmallPools) {
  auto graph = MakeHotelGraph();
  auto workload = MakeMixedWorkload(*graph, 0.5);
  AdvisorOptions opts;  // kAuto by default
  Advisor advisor(opts);
  auto rec = advisor.Recommend(*workload);
  ASSERT_TRUE(rec.ok());
  // Small pool => BIP path => variable counts reported.
  EXPECT_GT(rec->bip_variables, 0);
}

TEST(OptimizerStrategyTest, SpaceLimitForcesBip) {
  auto graph = MakeHotelGraph();
  auto workload = MakeMixedWorkload(*graph, 0.5);
  AdvisorOptions opts;
  opts.optimizer.strategy = SolveStrategy::kCombinatorial;
  opts.optimizer.space_limit_bytes = 1e12;  // roomy, but forces BIP
  Advisor advisor(opts);
  auto rec = advisor.Recommend(*workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_GT(rec->bip_variables, 0);  // BIP path was taken
}

TEST(OptimizerCacheTest, StructuralChangeDiscardsWarmStart) {
  auto graph = MakeHotelGraph();
  auto workload = MakeMixedWorkload(*graph, 0.5);

  CostModel cost;
  CardinalityEstimator est(graph.get(), &cost.params());
  CandidatePool pool =
      Enumerator().EnumerateWorkload(*workload, Workload::kDefaultMix);

  OptimizerOptions opts;
  opts.strategy = SolveStrategy::kBip;
  SchemaOptimizer optimizer(&cost, &est, opts);

  PlanSpaceCache cache;
  auto full = optimizer.Optimize(*workload, Workload::kDefaultMix, pool,
                                 nullptr, &cache);
  ASSERT_TRUE(full.ok()) << full.status();
  // The solve deposits its optimum plus the BIP's structural fingerprint.
  ASSERT_FALSE(cache.last_bip_solution.empty());
  ASSERT_GT(cache.last_bip_variables, 0);
  const int full_vars = cache.last_bip_variables;
  const int full_rows = cache.last_bip_rows;

  // Mutate the workload between mixes: a new mix spanning only one query
  // assembles a structurally different BIP. The fingerprint guard must
  // discard the stale warm start and root basis instead of applying them
  // to a mismatched variable space — and the cached-path result must match
  // a cache-free solve exactly.
  ASSERT_TRUE(workload->SetWeight("guests_by_city", "small", 1.0).ok());
  auto cached = optimizer.Optimize(*workload, "small", pool, nullptr, &cache);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_TRUE(cache.last_bip_variables != full_vars ||
              cache.last_bip_rows != full_rows)
      << "the smaller mix should assemble a different BIP";

  auto fresh = optimizer.Optimize(*workload, "small", pool, nullptr, nullptr);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_DOUBLE_EQ(cached->objective, fresh->objective);
  EXPECT_EQ(cached->schema.ToString(), fresh->schema.ToString());
}

TEST(OptimizerCacheTest, CorruptStaleSolutionIsIgnoredSafely) {
  auto graph = MakeHotelGraph();
  auto workload = MakeMixedWorkload(*graph, 0.5);
  CostModel cost;
  CardinalityEstimator est(graph.get(), &cost.params());
  CandidatePool pool =
      Enumerator().EnumerateWorkload(*workload, Workload::kDefaultMix);
  OptimizerOptions opts;
  opts.strategy = SolveStrategy::kBip;
  SchemaOptimizer optimizer(&cost, &est, opts);

  // A cache carrying garbage with a non-matching fingerprint: the solve
  // must ignore it entirely (a matching one is never fabricated here).
  PlanSpaceCache cache;
  cache.last_bip_solution = {1.0, 0.0, 1.0};
  cache.last_bip_variables = 3;
  cache.last_bip_rows = 1;
  cache.last_bip_nonzeros = 3;
  cache.last_root_basis.status = {2, 0, 1, 2};
  auto guarded = optimizer.Optimize(*workload, Workload::kDefaultMix, pool,
                                    nullptr, &cache);
  ASSERT_TRUE(guarded.ok()) << guarded.status();
  auto plain = optimizer.Optimize(*workload, Workload::kDefaultMix, pool,
                                  nullptr, nullptr);
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(guarded->objective, plain->objective);
  EXPECT_EQ(guarded->schema.ToString(), plain->schema.ToString());
}

TEST(OptimizerStrategyTest, CombinatorialHandlesLargerRandomInstances) {
  randwl::GeneratorOptions gen;
  gen.num_entities = 18;
  gen.num_statements = 36;
  gen.seed = 77;
  auto rw = randwl::Generate(gen);
  ASSERT_TRUE(rw.ok());
  AdvisorOptions opts;
  opts.optimizer.strategy = SolveStrategy::kCombinatorial;
  opts.optimizer.bip.time_limit_seconds = 20;
  Advisor advisor(opts);
  auto rec = advisor.Recommend(*rw->workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_GT(rec->schema.size(), 0u);
  EXPECT_GT(rec->objective, 0.0);
  EXPECT_LT(rec->timing.total_seconds, 60.0);
}

}  // namespace
}  // namespace nose
