#include "solver/factorization.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/certify.h"
#include "solver/bip.h"
#include "solver/certificate.h"
#include "solver/lp.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nose {
namespace {

/// Dense Gaussian elimination with partial pivoting: the slow, obviously
/// correct reference the sparse LU is checked against. `a` is row-major.
bool DenseSolve(std::vector<std::vector<double>> a, std::vector<double> b,
                std::vector<double>* x) {
  const int m = static_cast<int>(b.size());
  for (int k = 0; k < m; ++k) {
    int piv = k;
    for (int r = k + 1; r < m; ++r) {
      if (std::fabs(a[static_cast<size_t>(r)][static_cast<size_t>(k)]) >
          std::fabs(a[static_cast<size_t>(piv)][static_cast<size_t>(k)])) {
        piv = r;
      }
    }
    if (std::fabs(a[static_cast<size_t>(piv)][static_cast<size_t>(k)]) <
        1e-12) {
      return false;
    }
    std::swap(a[static_cast<size_t>(k)], a[static_cast<size_t>(piv)]);
    std::swap(b[static_cast<size_t>(k)], b[static_cast<size_t>(piv)]);
    for (int r = k + 1; r < m; ++r) {
      const double f = a[static_cast<size_t>(r)][static_cast<size_t>(k)] /
                       a[static_cast<size_t>(k)][static_cast<size_t>(k)];
      if (f == 0.0) continue;
      for (int c = k; c < m; ++c) {
        a[static_cast<size_t>(r)][static_cast<size_t>(c)] -=
            f * a[static_cast<size_t>(k)][static_cast<size_t>(c)];
      }
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(k)];
    }
  }
  x->assign(static_cast<size_t>(m), 0.0);
  for (int k = m - 1; k >= 0; --k) {
    double s = b[static_cast<size_t>(k)];
    for (int c = k + 1; c < m; ++c) {
      s -= a[static_cast<size_t>(k)][static_cast<size_t>(c)] *
           (*x)[static_cast<size_t>(c)];
    }
    (*x)[static_cast<size_t>(k)] =
        s / a[static_cast<size_t>(k)][static_cast<size_t>(k)];
  }
  return true;
}

/// Random column-diagonally-dominant sparse columns: never singular, with
/// enough off-diagonal structure to exercise Markowitz pivoting and fill.
std::vector<SparseColumn> RandomDominantColumns(Rng* rng, int m) {
  std::vector<SparseColumn> cols(static_cast<size_t>(m));
  for (int k = 0; k < m; ++k) {
    double off = 0.0;
    for (int r = 0; r < m; ++r) {
      if (r == k || !rng->Chance(0.3)) continue;
      double v = 2.0 * rng->NextDouble() - 1.0;
      if (v == 0.0) v = 0.5;
      cols[static_cast<size_t>(k)].rows.push_back(r);
      cols[static_cast<size_t>(k)].vals.push_back(v);
      off += std::fabs(v);
    }
    cols[static_cast<size_t>(k)].rows.push_back(k);
    cols[static_cast<size_t>(k)].vals.push_back(off + 1.0 + rng->NextDouble());
  }
  return cols;
}

std::vector<std::vector<double>> Densify(const std::vector<SparseColumn>& cols,
                                         int m) {
  std::vector<std::vector<double>> a(
      static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(m), 0.0));
  for (int k = 0; k < m; ++k) {
    const SparseColumn& col = cols[static_cast<size_t>(k)];
    for (size_t e = 0; e < col.rows.size(); ++e) {
      a[static_cast<size_t>(col.rows[e])][static_cast<size_t>(k)] = col.vals[e];
    }
  }
  return a;
}

std::vector<const SparseColumn*> Pointers(
    const std::vector<SparseColumn>& cols) {
  std::vector<const SparseColumn*> ptrs;
  ptrs.reserve(cols.size());
  for (const SparseColumn& c : cols) ptrs.push_back(&c);
  return ptrs;
}

TEST(FactorizationTest, FtranAndBtranMatchDenseSolve) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 2654435761ull + 17);
    const int m = 3 + static_cast<int>(rng.Uniform(25));
    std::vector<SparseColumn> cols = RandomDominantColumns(&rng, m);
    BasisFactorization fact;
    ASSERT_TRUE(fact.Factorize(m, Pointers(cols))) << "seed " << seed;
    EXPECT_TRUE(fact.factorized());
    EXPECT_EQ(fact.dim(), m);
    EXPECT_GE(fact.lu_entries(), static_cast<uint64_t>(m));

    const std::vector<std::vector<double>> dense = Densify(cols, m);
    std::vector<double> b(static_cast<size_t>(m));
    for (double& v : b) v = 2.0 * rng.NextDouble() - 1.0;

    // FTRAN solves B x = b; the reference solves the same dense system.
    std::vector<double> x = b;
    fact.Ftran(&x);
    std::vector<double> x_ref;
    ASSERT_TRUE(DenseSolve(dense, b, &x_ref));
    for (int k = 0; k < m; ++k) {
      EXPECT_NEAR(x[static_cast<size_t>(k)], x_ref[static_cast<size_t>(k)],
                  1e-8)
          << "seed " << seed << " slot " << k;
    }

    // BTRAN solves Bᵀ y = c: reference solves against the transpose.
    std::vector<double> c(static_cast<size_t>(m));
    for (double& v : c) v = 2.0 * rng.NextDouble() - 1.0;
    std::vector<double> y = c;
    fact.Btran(&y);
    std::vector<std::vector<double>> dense_t(
        static_cast<size_t>(m),
        std::vector<double>(static_cast<size_t>(m), 0.0));
    for (int r = 0; r < m; ++r) {
      for (int k = 0; k < m; ++k) {
        dense_t[static_cast<size_t>(k)][static_cast<size_t>(r)] =
            dense[static_cast<size_t>(r)][static_cast<size_t>(k)];
      }
    }
    std::vector<double> y_ref;
    ASSERT_TRUE(DenseSolve(dense_t, c, &y_ref));
    for (int r = 0; r < m; ++r) {
      EXPECT_NEAR(y[static_cast<size_t>(r)], y_ref[static_cast<size_t>(r)],
                  1e-8)
          << "seed " << seed << " row " << r;
    }
  }
}

TEST(FactorizationTest, ProductFormUpdatesTrackReplacedColumns) {
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 6364136223846793005ull + 29);
    const int m = 8 + static_cast<int>(rng.Uniform(10));
    std::vector<SparseColumn> cols = RandomDominantColumns(&rng, m);
    BasisFactorization fact;
    ASSERT_TRUE(fact.Factorize(m, Pointers(cols)));
    std::vector<std::vector<double>> dense = Densify(cols, m);

    int applied = 0;
    for (int t = 0; t < 10; ++t) {
      const int s = static_cast<int>(rng.Uniform(static_cast<uint64_t>(m)));
      const int o = (s + 1 + static_cast<int>(rng.Uniform(
                                 static_cast<uint64_t>(m - 1)))) %
                    m;
      // Replacement column: a well-pivoted mix of two current columns, so
      // its FTRAN image is 2·e_s + 0.25·e_o and the eta pivot is 2.
      std::vector<double> replacement(static_cast<size_t>(m));
      for (int r = 0; r < m; ++r) {
        replacement[static_cast<size_t>(r)] =
            2.0 * dense[static_cast<size_t>(r)][static_cast<size_t>(s)] +
            0.25 * dense[static_cast<size_t>(r)][static_cast<size_t>(o)];
      }
      std::vector<double> image = replacement;
      fact.Ftran(&image);
      if (!fact.Update(s, image)) continue;
      ++applied;
      for (int r = 0; r < m; ++r) {
        dense[static_cast<size_t>(r)][static_cast<size_t>(s)] =
            replacement[static_cast<size_t>(r)];
      }
    }
    ASSERT_GT(applied, 0) << "seed " << seed;
    EXPECT_EQ(fact.num_updates(), applied);
    EXPECT_GT(fact.eta_entries(), 0u);

    std::vector<double> b(static_cast<size_t>(m));
    for (double& v : b) v = 2.0 * rng.NextDouble() - 1.0;
    std::vector<double> x = b;
    fact.Ftran(&x);
    std::vector<double> x_ref;
    ASSERT_TRUE(DenseSolve(dense, b, &x_ref));
    for (int k = 0; k < m; ++k) {
      EXPECT_NEAR(x[static_cast<size_t>(k)], x_ref[static_cast<size_t>(k)],
                  1e-7)
          << "seed " << seed << " slot " << k;
    }
  }
}

TEST(FactorizationTest, RefusesUpdateWithTinyPivot) {
  // Replacing slot 0 with (a copy of) slot 1's column makes the basis
  // singular: the FTRAN image is e_1, whose slot-0 pivot is 0. Update must
  // refuse and leave the factorization untouched.
  const int m = 4;
  std::vector<SparseColumn> cols(static_cast<size_t>(m));
  for (int k = 0; k < m; ++k) {
    cols[static_cast<size_t>(k)].rows = {k};
    cols[static_cast<size_t>(k)].vals = {1.0 + 0.5 * k};
  }
  BasisFactorization fact;
  ASSERT_TRUE(fact.Factorize(m, Pointers(cols)));

  std::vector<double> image(static_cast<size_t>(m), 0.0);
  image[1] = 1.0;  // e_1: zero pivot at slot 0
  EXPECT_FALSE(fact.Update(0, image));
  EXPECT_EQ(fact.num_updates(), 0);

  // The old system still solves exactly: diag(1, 1.5, 2, 2.5).
  std::vector<double> b = {1.0, 3.0, 4.0, 5.0};
  fact.Ftran(&b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 2.0, 1e-12);
  EXPECT_NEAR(b[3], 2.0, 1e-12);
}

TEST(FactorizationTest, SignalsRefactorizationAfterManyUpdates) {
  const int m = 5;
  std::vector<SparseColumn> cols(static_cast<size_t>(m));
  for (int k = 0; k < m; ++k) {
    cols[static_cast<size_t>(k)].rows = {k};
    cols[static_cast<size_t>(k)].vals = {1.0};
  }
  BasisFactorization fact;
  ASSERT_TRUE(fact.Factorize(m, Pointers(cols)));

  std::vector<double> image(static_cast<size_t>(m), 0.0);
  image[0] = 1.0;  // re-enter the same column: pivot 1, always stable
  for (int t = 0; t < 64; ++t) {
    EXPECT_FALSE(fact.NeedsRefactorization()) << "update " << t;
    ASSERT_TRUE(fact.Update(0, image));
  }
  EXPECT_TRUE(fact.NeedsRefactorization());
  EXPECT_EQ(fact.num_updates(), 64);
}

TEST(FactorizationTest, RejectsSingularBasis) {
  // Two identical columns.
  std::vector<SparseColumn> cols(3);
  cols[0].rows = {0, 1};
  cols[0].vals = {1.0, 2.0};
  cols[1].rows = {0, 1};
  cols[1].vals = {1.0, 2.0};
  cols[2].rows = {2};
  cols[2].vals = {1.0};
  BasisFactorization fact;
  EXPECT_FALSE(fact.Factorize(3, Pointers(cols)));
  EXPECT_FALSE(fact.factorized());

  // A structurally empty column.
  std::vector<SparseColumn> with_zero(2);
  with_zero[0].rows = {0};
  with_zero[0].vals = {1.0};
  BasisFactorization fact2;
  EXPECT_FALSE(fact2.Factorize(2, Pointers(with_zero)));
  EXPECT_FALSE(fact2.factorized());
}

/// Random weighted set-cover instances shared by the parity tests below:
/// cover rows, an always-satisfiable capacity row, and singleton forcings.
LpProblem MakeRandomCover(Rng* rng, std::vector<int>* binaries) {
  LpProblem lp;
  const int num_sets = 6 + static_cast<int>(rng->Uniform(8));
  const int num_items = 4 + static_cast<int>(rng->Uniform(6));
  for (int s = 0; s < num_sets; ++s) {
    const int v =
        lp.AddVariable(0.0, 1.0, 1.0 + static_cast<double>(rng->Uniform(9)));
    if (binaries != nullptr) binaries->push_back(v);
  }
  for (int i = 0; i < num_items; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int s = 0; s < num_sets; ++s) {
      if (rng->Chance(0.4)) coeffs.emplace_back(s, 1.0);
    }
    if (coeffs.empty()) {
      coeffs.emplace_back(static_cast<int>(rng->Uniform(
                              static_cast<uint64_t>(num_sets))),
                          1.0);
    }
    lp.AddRow(RowType::kGe, 1.0, coeffs);
  }
  // All-ones capacity at num_sets: satisfied even by the all-selected point,
  // so the instance stays feasible while the ≤ machinery gets exercised.
  std::vector<std::pair<int, double>> cap;
  for (int s = 0; s < num_sets; ++s) cap.emplace_back(s, 1.0);
  lp.AddRow(RowType::kLe, static_cast<double>(num_sets), cap);
  for (int s = 0; s < num_sets; ++s) {
    if (rng->Chance(0.1)) lp.AddRow(RowType::kGe, 1.0, {{s, 1.0}});
  }
  return lp;
}

TEST(EngineParityTest, RandomLpOptimaAgreeAcrossAllThreeEngines) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 9176 + 7);
    LpProblem lp = MakeRandomCover(&rng, nullptr);

    const LpResult dense = lp.Solve({}, 0, 0.0, LpEngine::kDense);
    const LpResult sparse = lp.Solve({}, 0, 0.0, LpEngine::kSparse);
    const LpResult fact = lp.Solve({}, 0, 0.0, LpEngine::kFactorized);
    ASSERT_EQ(sparse.status, dense.status) << "seed " << seed;
    ASSERT_EQ(fact.status, sparse.status) << "seed " << seed;
    if (fact.status != LpStatus::kOptimal) continue;
    const double scale = 1.0 + std::fabs(sparse.objective);
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-6 * scale)
        << "seed " << seed;
    EXPECT_NEAR(fact.objective, sparse.objective, 1e-7 * scale)
        << "seed " << seed;
  }
}

TEST(EngineParityTest, CertificateDualsVerifyUnderEveryEngine) {
  // The duals harvested for `nose check` certificates come from whichever
  // engine the BIP ran: the exact-arithmetic checker must verify all three,
  // and their optima must agree.
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 50021 + 13);
    std::vector<int> binaries;
    LpProblem lp = MakeRandomCover(&rng, &binaries);

    double reference = 0.0;
    bool have_reference = false;
    for (const LpEngine engine :
         {LpEngine::kDense, LpEngine::kSparse, LpEngine::kFactorized}) {
      SolveCertificate cert;
      BipOptions options;
      options.relative_gap = 0.0;
      options.lp_engine = engine;
      options.capture_certificate = &cert;
      const BipResult result = SolveBip(lp, binaries, options);
      ASSERT_EQ(result.status, BipStatus::kOptimal) << "seed " << seed;

      const CertificateReport report = CheckCertificate(cert);
      EXPECT_TRUE(report.verified)
          << "seed " << seed << " engine " << static_cast<int>(engine);
      EXPECT_TRUE(cert.root_available) << "seed " << seed;
      EXPECT_TRUE(report.bound_available) << "seed " << seed;
      EXPECT_GE(report.certified_gap, -1e-9) << "seed " << seed;

      if (!have_reference) {
        reference = result.objective;
        have_reference = true;
      } else {
        EXPECT_NEAR(result.objective, reference, 1e-6) << "seed " << seed;
      }
    }
  }
}

TEST(BipDeterminismTest, ResultsBitwiseIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 78901 + 5);
    std::vector<int> binaries;
    LpProblem lp = MakeRandomCover(&rng, &binaries);

    BipOptions options;
    options.relative_gap = 0.0;
    const BipResult serial = SolveBip(lp, binaries, options);

    for (const size_t nthreads : {size_t{1}, size_t{2}, size_t{8}}) {
      util::ThreadPool pool(nthreads);
      BipOptions pooled = options;
      pooled.threads = &pool;
      const BipResult parallel = SolveBip(lp, binaries, pooled);
      ASSERT_EQ(parallel.status, serial.status)
          << "seed " << seed << " threads " << nthreads;
      // Bitwise: the batch-selection rule fixes the trajectory, so every
      // statistic — not just the objective — must be thread-count
      // invariant.
      EXPECT_EQ(parallel.objective, serial.objective)
          << "seed " << seed << " threads " << nthreads;
      EXPECT_EQ(parallel.nodes_explored, serial.nodes_explored)
          << "seed " << seed << " threads " << nthreads;
      EXPECT_EQ(parallel.lp_iterations, serial.lp_iterations)
          << "seed " << seed << " threads " << nthreads;
      ASSERT_EQ(parallel.x.size(), serial.x.size());
      for (size_t v = 0; v < serial.x.size(); ++v) {
        EXPECT_EQ(parallel.x[v], serial.x[v])
            << "seed " << seed << " threads " << nthreads << " var " << v;
      }
    }
  }
}

}  // namespace
}  // namespace nose
