#include <algorithm>

#include <gtest/gtest.h>

#include "enumerator/enumerator.h"
#include "planner/plan_space.h"
#include "planner/update_planner.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

bool PoolContains(const CandidatePool& pool, const std::string& key_substr) {
  return std::any_of(pool.candidates().begin(), pool.candidates().end(),
                     [&](const ColumnFamily& cf) {
                       return cf.key().find(key_substr) != std::string::npos;
                     });
}

const ColumnFamily* FindCf(const CandidatePool& pool,
                           const std::string& key_substr) {
  for (const ColumnFamily& cf : pool.candidates()) {
    if (cf.key().find(key_substr) != std::string::npos) return &cf;
  }
  return nullptr;
}

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest() : graph_(MakeHotelGraph()) {}
  std::unique_ptr<EntityGraph> graph_;
};

TEST_F(EnumeratorTest, Fig3MaterializedViewEnumerated) {
  Enumerator enumerator;
  CandidatePool pool;
  enumerator.EnumerateQuery(MakeFig3Query(*graph_), &pool);
  EXPECT_GT(pool.size(), 10u);
  // The paper's §IV-A1 materialized view: [HotelCity][RoomRate, ids]
  // [GuestName, GuestEmail].
  const ColumnFamily* mv = FindCf(
      pool,
      "[Hotel.HotelCity][Room.RoomRate, Guest.GuestID, Reservation.ResID, "
      "Room.RoomID, Hotel.HotelID][Guest.GuestEmail, Guest.GuestName]");
  ASSERT_NE(mv, nullptr);
  // Key-only split variant (paper: "one that returns only the key
  // attributes").
  EXPECT_TRUE(PoolContains(
      pool,
      "[Hotel.HotelCity][Room.RoomRate, Guest.GuestID, Reservation.ResID, "
      "Room.RoomID, Hotel.HotelID][]"));
  // Materialization lookup [GuestID][][GuestName, GuestEmail].
  EXPECT_TRUE(PoolContains(
      pool, "[Guest.GuestID][][Guest.GuestEmail, Guest.GuestName]"));
}

TEST_F(EnumeratorTest, RelaxationProducesDeferredVariants) {
  // The Fig. 6 prefix query: relaxation drops RoomRate from the key.
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  Query q(*path, {{"Room", "RoomID"}},
          {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "c"},
           {{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt, "r"}},
          {});
  Enumerator with_relax;
  CandidatePool pool;
  with_relax.EnumerateQuery(q, &pool);
  // CF1 of Fig. 6 (our canonical form also carries HotelID, per §IV-A1's
  // "we include the ID of each entity along the path").
  EXPECT_TRUE(PoolContains(
      pool, "[Hotel.HotelCity][Room.RoomRate, Room.RoomID, Hotel.HotelID][]"));
  // CF2 of Fig. 6 (relaxed: no RoomRate anywhere in the key).
  EXPECT_TRUE(
      PoolContains(pool, "[Hotel.HotelCity][Room.RoomID, Hotel.HotelID][]"));
  // CF5 of Fig. 6 (materialization carrying the deferred predicate field).
  EXPECT_TRUE(PoolContains(pool, "[Room.RoomID][][Room.RoomRate]"));

  EnumeratorOptions no_relax;
  no_relax.enable_relaxation = false;
  Enumerator without(no_relax);
  CandidatePool pool2;
  without.EnumerateQuery(q, &pool2);
  EXPECT_LT(pool2.size(), pool.size());
}

TEST_F(EnumeratorTest, SplitsToggle) {
  EnumeratorOptions no_splits;
  no_splits.enable_splits = false;
  Enumerator without(no_splits);
  Enumerator with_splits;
  CandidatePool p1, p2;
  without.EnumerateQuery(MakeFig3Query(*graph_), &p1);
  with_splits.EnumerateQuery(MakeFig3Query(*graph_), &p2);
  EXPECT_LT(p1.size(), p2.size());
}

TEST_F(EnumeratorTest, CombineMergesCompatibleFamilies) {
  // Two single-entity materializations with the same partition key and no
  // clustering must combine into one family with the union of values.
  auto guest = graph_->SingleEntityPath("Guest");
  CandidatePool pool;
  pool.Add(*ColumnFamily::Create(*guest, {{"Guest", "GuestID"}}, {},
                                 {{"Guest", "GuestName"}}));
  pool.Add(*ColumnFamily::Create(*guest, {{"Guest", "GuestID"}}, {},
                                 {{"Guest", "GuestEmail"}}));
  Enumerator enumerator;
  enumerator.Combine(&pool);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_TRUE(PoolContains(
      pool, "[Guest.GuestID][][Guest.GuestEmail, Guest.GuestName]"));

  EnumeratorOptions off;
  off.enable_combination = false;
  CandidatePool pool2;
  pool2.Add(*ColumnFamily::Create(*guest, {{"Guest", "GuestID"}}, {},
                                  {{"Guest", "GuestName"}}));
  pool2.Add(*ColumnFamily::Create(*guest, {{"Guest", "GuestID"}}, {},
                                  {{"Guest", "GuestEmail"}}));
  Enumerator disabled(off);
  disabled.Combine(&pool2);
  EXPECT_EQ(pool2.size(), 2u);
}

TEST_F(EnumeratorTest, CombineRequiresMatchingShape) {
  auto guest = graph_->SingleEntityPath("Guest");
  auto hotel = graph_->SingleEntityPath("Hotel");
  CandidatePool pool;
  // Different partition keys: no combination.
  pool.Add(*ColumnFamily::Create(*guest, {{"Guest", "GuestID"}}, {},
                                 {{"Guest", "GuestName"}}));
  pool.Add(*ColumnFamily::Create(*hotel, {{"Hotel", "HotelID"}}, {},
                                 {{"Hotel", "HotelName"}}));
  // Clustering key present: no combination.
  pool.Add(*ColumnFamily::Create(*guest, {{"Guest", "GuestID"}},
                                 {{"Guest", "GuestName"}},
                                 {{"Guest", "GuestEmail"}}));
  Enumerator enumerator;
  const size_t before = pool.size();
  enumerator.Combine(&pool);
  EXPECT_EQ(pool.size(), before);
}

TEST_F(EnumeratorTest, WorkloadEnumerationCoversSupportQueries) {
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("q", MakeFig3Query(*graph_)).ok());
  auto guest = graph_->SingleEntityPath("Guest");
  auto upd = Update::MakeUpdate(
      *guest, {{"GuestName", std::nullopt, "n"}},
      {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE(workload.AddUpdate("u", std::move(upd).value()).ok());

  Enumerator enumerator;
  CandidatePool pool = enumerator.EnumerateWorkload(workload, "default");
  // Every support query of every (update, candidate) pair must itself have
  // a plan against the pool (the guarantee Algorithm 1's double round
  // provides).
  CostModel cm;
  CardinalityEstimator est(graph_.get(), &cm.params());
  QueryPlanner planner(&cm, &est);
  const WorkloadEntry* entry = workload.FindEntry("u");
  for (const ColumnFamily& cf : pool.candidates()) {
    if (!Modifies(entry->update(), cf)) continue;
    for (const Query& sq : SupportQueries(entry->update(), cf)) {
      PlanSpace space = planner.Build(sq, pool.candidates());
      EXPECT_TRUE(space.HasPlan())
          << "unanswerable support query for " << cf.ToString() << ": "
          << sq.ToString();
    }
  }
}

TEST_F(EnumeratorTest, PoolDeduplicates) {
  Enumerator enumerator;
  CandidatePool pool;
  enumerator.EnumerateQuery(MakeFig3Query(*graph_), &pool);
  const size_t once = pool.size();
  enumerator.EnumerateQuery(MakeFig3Query(*graph_), &pool);
  EXPECT_EQ(pool.size(), once);
}

TEST_F(EnumeratorTest, OrderByFieldsAreCarried) {
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  Query q(*path, {{"Room", "RoomID"}},
          {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "c"}},
          {OrderField{{"Room", "RoomRate"}}});
  Enumerator enumerator;
  CandidatePool pool;
  enumerator.EnumerateQuery(q, &pool);
  // Clustered variant (pre-sorted results).
  EXPECT_TRUE(PoolContains(
      pool, "[Hotel.HotelCity][Room.RoomRate, Room.RoomID, Hotel.HotelID][]"));
  // Unclustered variant must still carry RoomRate for the client sort.
  bool found_carrying = false;
  for (const ColumnFamily& cf : pool.candidates()) {
    if (cf.clustering_key().size() >= 1 &&
        !(cf.clustering_key()[0] == FieldRef{"Room", "RoomRate"}) &&
        cf.ContainsField({"Room", "RoomRate"})) {
      found_carrying = true;
    }
  }
  EXPECT_TRUE(found_carrying);
}

}  // namespace
}  // namespace nose
