#ifndef NOSE_TESTS_REFERENCE_EVALUATOR_H_
#define NOSE_TESTS_REFERENCE_EVALUATOR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "executor/dataset.h"
#include "executor/plan_executor.h"
#include "solver/lp.h"
#include "workload/query.h"

namespace nose {

/// Brute-force reference semantics for conceptual-model queries: enumerate
/// every instance of the query path in `data`, apply all predicates,
/// project the select list, discard duplicates. The oracle that executed
/// plans must agree with.
inline std::vector<ValueTuple> ReferenceEvaluate(
    const Dataset& data, const Query& query,
    const PlanExecutor::Params& params) {
  const KeyPath& path = query.path();
  std::vector<ValueTuple> result;
  std::set<std::string> seen;
  std::vector<size_t> rows(path.NumEntities());

  auto value_of = [&](const FieldRef& ref) -> const Value& {
    const int pos = path.IndexOfEntity(ref.entity);
    return data.FieldValue(ref.entity, rows[static_cast<size_t>(pos)],
                           ref.field);
  };
  auto compare = [](PredicateOp op, const Value& lhs, const Value& rhs) {
    switch (op) {
      case PredicateOp::kEq:
        return lhs == rhs;
      case PredicateOp::kNe:
        return !(lhs == rhs);
      case PredicateOp::kLt:
        return lhs < rhs;
      case PredicateOp::kLe:
        return !(rhs < lhs);
      case PredicateOp::kGt:
        return rhs < lhs;
      case PredicateOp::kGe:
        return !(lhs < rhs);
    }
    return false;
  };

  std::function<void(size_t)> walk = [&](size_t depth) {
    if (depth == path.NumEntities()) {
      for (const Predicate& p : query.predicates()) {
        const Value bound =
            p.literal.has_value() ? *p.literal : params.at(p.param);
        if (!compare(p.op, value_of(p.field), bound)) return;
      }
      ValueTuple row;
      std::string key;
      for (const FieldRef& f : query.select()) {
        row.push_back(value_of(f));
        key += ValueToString(row.back()) + "|";
      }
      if (seen.insert(key).second) result.push_back(std::move(row));
      return;
    }
    const PathStep& step = path.steps()[depth - 1];
    for (uint32_t next : data.Neighbors(step, rows[depth - 1])) {
      rows[depth] = next;
      walk(depth + 1);
    }
  };
  for (size_t r0 = 0; r0 < data.RowCount(path.EntityAt(0)); ++r0) {
    rows[0] = r0;
    walk(1);
  }
  return result;
}

/// Canonical form for set comparison of result rows.
inline std::vector<std::string> CanonicalRows(
    const std::vector<ValueTuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const ValueTuple& r : rows) out.push_back(ValueTupleToString(r));
  std::sort(out.begin(), out.end());
  return out;
}

struct ReferenceBipResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> x;
};

/// Brute-force reference for small all-binary integer programs: enumerates
/// every 0/1 assignment respecting the variable bounds, checks each
/// constraint row, and keeps the assignment with the smallest objective.
/// The objective is accumulated in variable-index order, exactly as the
/// branch-and-bound incumbent recompute does — with integer costs both
/// sums are exact, so the solver must match this value bitwise.
inline ReferenceBipResult ReferenceBipMinimize(const LpProblem& lp) {
  const int n = lp.num_variables();
  ReferenceBipResult best;
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    bool in_bounds = true;
    for (int v = 0; v < n; ++v) {
      x[static_cast<size_t>(v)] = (mask >> v) & 1 ? 1.0 : 0.0;
      if (x[static_cast<size_t>(v)] < lp.lower_bound(v) ||
          x[static_cast<size_t>(v)] > lp.upper_bound(v)) {
        in_bounds = false;
        break;
      }
    }
    if (!in_bounds) continue;
    bool feasible = true;
    for (int r = 0; r < lp.num_rows() && feasible; ++r) {
      const LpRow& row = lp.row(r);
      double sum = 0.0;
      for (size_t k = 0; k < row.indices.size(); ++k) {
        sum += row.values[k] * x[static_cast<size_t>(row.indices[k])];
      }
      switch (row.type) {
        case RowType::kLe:
          feasible = sum <= row.rhs + 1e-9;
          break;
        case RowType::kGe:
          feasible = sum >= row.rhs - 1e-9;
          break;
        case RowType::kEq:
          feasible = std::abs(sum - row.rhs) <= 1e-9;
          break;
      }
    }
    if (!feasible) continue;
    double objective = 0.0;
    for (int v = 0; v < n; ++v) {
      objective += lp.cost(v) * x[static_cast<size_t>(v)];
    }
    if (!best.feasible || objective < best.objective) {
      best.feasible = true;
      best.objective = objective;
      best.x = x;
    }
  }
  return best;
}

}  // namespace nose

#endif  // NOSE_TESTS_REFERENCE_EVALUATOR_H_
