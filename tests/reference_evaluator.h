#ifndef NOSE_TESTS_REFERENCE_EVALUATOR_H_
#define NOSE_TESTS_REFERENCE_EVALUATOR_H_

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "executor/dataset.h"
#include "executor/plan_executor.h"
#include "workload/query.h"

namespace nose {

/// Brute-force reference semantics for conceptual-model queries: enumerate
/// every instance of the query path in `data`, apply all predicates,
/// project the select list, discard duplicates. The oracle that executed
/// plans must agree with.
inline std::vector<ValueTuple> ReferenceEvaluate(
    const Dataset& data, const Query& query,
    const PlanExecutor::Params& params) {
  const KeyPath& path = query.path();
  std::vector<ValueTuple> result;
  std::set<std::string> seen;
  std::vector<size_t> rows(path.NumEntities());

  auto value_of = [&](const FieldRef& ref) -> const Value& {
    const int pos = path.IndexOfEntity(ref.entity);
    return data.FieldValue(ref.entity, rows[static_cast<size_t>(pos)],
                           ref.field);
  };
  auto compare = [](PredicateOp op, const Value& lhs, const Value& rhs) {
    switch (op) {
      case PredicateOp::kEq:
        return lhs == rhs;
      case PredicateOp::kNe:
        return !(lhs == rhs);
      case PredicateOp::kLt:
        return lhs < rhs;
      case PredicateOp::kLe:
        return !(rhs < lhs);
      case PredicateOp::kGt:
        return rhs < lhs;
      case PredicateOp::kGe:
        return !(lhs < rhs);
    }
    return false;
  };

  std::function<void(size_t)> walk = [&](size_t depth) {
    if (depth == path.NumEntities()) {
      for (const Predicate& p : query.predicates()) {
        const Value bound =
            p.literal.has_value() ? *p.literal : params.at(p.param);
        if (!compare(p.op, value_of(p.field), bound)) return;
      }
      ValueTuple row;
      std::string key;
      for (const FieldRef& f : query.select()) {
        row.push_back(value_of(f));
        key += ValueToString(row.back()) + "|";
      }
      if (seen.insert(key).second) result.push_back(std::move(row));
      return;
    }
    const PathStep& step = path.steps()[depth - 1];
    for (uint32_t next : data.Neighbors(step, rows[depth - 1])) {
      rows[depth] = next;
      walk(depth + 1);
    }
  };
  for (size_t r0 = 0; r0 < data.RowCount(path.EntityAt(0)); ++r0) {
    rows[0] = r0;
    walk(1);
  }
  return result;
}

/// Canonical form for set comparison of result rows.
inline std::vector<std::string> CanonicalRows(
    const std::vector<ValueTuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const ValueTuple& r : rows) out.push_back(ValueTupleToString(r));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nose

#endif  // NOSE_TESTS_REFERENCE_EVALUATOR_H_
