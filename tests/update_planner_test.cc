#include <gtest/gtest.h>

#include "planner/plan_space.h"
#include "schema/schema.h"
#include "planner/update_planner.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

class UpdatePlannerTest : public ::testing::Test {
 protected:
  UpdatePlannerTest() : graph_(MakeHotelGraph()) {}

  ColumnFamily MakeCf(const KeyPath& path, std::vector<FieldRef> pk,
                      std::vector<FieldRef> ck, std::vector<FieldRef> vals) {
    auto cf = ColumnFamily::Create(path, std::move(pk), std::move(ck),
                                   std::move(vals));
    assert(cf.ok());
    return std::move(cf).value();
  }

  std::unique_ptr<EntityGraph> graph_;
};

TEST_F(UpdatePlannerTest, ModifiesPredicate) {
  auto guest = graph_->SingleEntityPath("Guest");
  auto guest_res = graph_->ResolvePath("Guest", {"Reservations"});
  const ColumnFamily guest_cf = MakeCf(*guest, {{"Guest", "GuestID"}}, {},
                                       {{"Guest", "GuestEmail"}});
  const ColumnFamily name_cf = MakeCf(*guest, {{"Guest", "GuestID"}}, {},
                                      {{"Guest", "GuestName"}});
  const ColumnFamily link_cf = MakeCf(*guest_res, {{"Guest", "GuestID"}},
                                      {{"Reservation", "ResID"}}, {});

  // UPDATE touches only families storing a SET field.
  auto upd = Update::MakeUpdate(
      *guest, {{"GuestEmail", std::nullopt, "e"}},
      {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
  ASSERT_TRUE(upd.ok());
  EXPECT_TRUE(Modifies(*upd, guest_cf));
  EXPECT_FALSE(Modifies(*upd, name_cf));
  EXPECT_FALSE(Modifies(*upd, link_cf));

  // DELETE touches every family with any attribute of the entity.
  auto del = Update::MakeDelete(
      *guest, {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
  ASSERT_TRUE(del.ok());
  EXPECT_TRUE(Modifies(*del, guest_cf));
  EXPECT_TRUE(Modifies(*del, name_cf));
  EXPECT_TRUE(Modifies(*del, link_cf));

  // CONNECT touches families whose path traverses the relationship.
  auto con = Update::MakeConnect(graph_.get(), "Guest", "g", "Reservations",
                                 "r", /*disconnect=*/false);
  ASSERT_TRUE(con.ok());
  EXPECT_TRUE(Modifies(*con, link_cf));
  EXPECT_FALSE(Modifies(*con, guest_cf));
}

TEST_F(UpdatePlannerTest, UpdateSupportRecoversMissingKeys) {
  // Updating RoomRate in a family keyed by city requires recovering the
  // city + the record ids from the room id.
  auto room_hotel = graph_->ResolvePath("Room", {"Hotel"});
  const ColumnFamily mv =
      MakeCf(*room_hotel, {{"Hotel", "HotelCity"}},
             {{"Room", "RoomID"}, {"Hotel", "HotelID"}}, {{"Room", "RoomRate"}});
  auto room = graph_->SingleEntityPath("Room");
  auto upd = Update::MakeUpdate(
      *room, {{"RoomRate", std::nullopt, "rate"}},
      {{{"Room", "RoomID"}, PredicateOp::kEq, std::nullopt, "room"}});
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE(Modifies(*upd, mv));
  std::vector<Query> support = SupportQueries(*upd, mv);
  ASSERT_EQ(support.size(), 1u);
  // Selects the missing key attributes over the family's own path.
  const Query& sq = support[0];
  EXPECT_TRUE(std::find(sq.select().begin(), sq.select().end(),
                        FieldRef{"Hotel", "HotelCity"}) != sq.select().end());
  EXPECT_TRUE(std::find(sq.select().begin(), sq.select().end(),
                        FieldRef{"Hotel", "HotelID"}) != sq.select().end());
  EXPECT_EQ(sq.predicates().size(), 1u);
}

TEST_F(UpdatePlannerTest, NoSupportNeededWhenKeysProvided) {
  auto guest = graph_->SingleEntityPath("Guest");
  const ColumnFamily cf = MakeCf(*guest, {{"Guest", "GuestID"}}, {},
                                 {{"Guest", "GuestEmail"}});
  auto upd = Update::MakeUpdate(
      *guest, {{"GuestEmail", std::nullopt, "e"}},
      {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
  ASSERT_TRUE(upd.ok());
  EXPECT_TRUE(SupportQueries(*upd, cf).empty());
}

TEST_F(UpdatePlannerTest, InsertSupportFetchesDenormalizedValues) {
  // Inserting a Reservation into a family that denormalizes the guest name
  // must fetch that name given the connected guest's id.
  auto path = graph_->ResolvePath("Guest", {"Reservations"});
  const ColumnFamily cf =
      MakeCf(*path, {{"Guest", "GuestID"}}, {{"Reservation", "ResID"}},
             {{"Guest", "GuestName"}, {"Reservation", "ResEndDate"}});
  auto ins = Update::MakeInsert(graph_.get(), "Reservation",
                                {{"ResID", std::nullopt, "rid"},
                                 {"ResEndDate", std::nullopt, "end"}},
                                {{"Guest", "guest"}});
  ASSERT_TRUE(ins.ok());
  ASSERT_TRUE(Modifies(*ins, cf));
  std::vector<Query> support = SupportQueries(*ins, cf);
  ASSERT_EQ(support.size(), 1u);
  EXPECT_TRUE(std::find(support[0].select().begin(), support[0].select().end(),
                        FieldRef{"Guest", "GuestName"}) !=
              support[0].select().end());
}

TEST_F(UpdatePlannerTest, InsertWithoutConnectNeedsNoSupport) {
  auto path = graph_->ResolvePath("Guest", {"Reservations"});
  const ColumnFamily cf = MakeCf(*path, {{"Guest", "GuestID"}},
                                 {{"Reservation", "ResID"}}, {});
  auto ins = Update::MakeInsert(graph_.get(), "Reservation",
                                {{"ResID", std::nullopt, "rid"}}, {});
  ASSERT_TRUE(ins.ok());
  // No CONNECT: no records can land in the multi-entity family, so no
  // support queries either.
  EXPECT_TRUE(SupportQueries(*ins, cf).empty());
}

TEST_F(UpdatePlannerTest, ConnectSupportCoversBothSides) {
  // CONNECT Guest->Reservation on a family spanning Guest..Room: the
  // reservation side needs its room id recovered.
  auto path = graph_->ResolvePath("Guest", {"Reservations", "Room"});
  const ColumnFamily cf =
      MakeCf(*path, {{"Guest", "GuestID"}},
             {{"Reservation", "ResID"}, {"Room", "RoomID"}}, {});
  auto con = Update::MakeConnect(graph_.get(), "Guest", "g", "Reservations",
                                 "r", /*disconnect=*/false);
  ASSERT_TRUE(con.ok());
  ASSERT_TRUE(Modifies(*con, cf));
  std::vector<Query> support = SupportQueries(*con, cf);
  ASSERT_EQ(support.size(), 1u);
  EXPECT_TRUE(std::find(support[0].select().begin(), support[0].select().end(),
                        FieldRef{"Room", "RoomID"}) !=
              support[0].select().end());
}

TEST_F(UpdatePlannerTest, WriteCostReflectsKeyChanges) {
  CostModel cm;
  CardinalityEstimator est(graph_.get(), &cm.params());
  auto room_hotel = graph_->ResolvePath("Room", {"Hotel"});
  // RoomRate in the clustering key: updating it rewrites records
  // (delete + insert), costing more than an in-place value update.
  const ColumnFamily keyed =
      MakeCf(*room_hotel, {{"Hotel", "HotelCity"}},
             {{"Room", "RoomRate"}, {"Room", "RoomID"}}, {});
  const ColumnFamily in_place =
      MakeCf(*room_hotel, {{"Hotel", "HotelCity"}}, {{"Room", "RoomID"}},
             {{"Room", "RoomRate"}});
  auto room = graph_->SingleEntityPath("Room");
  auto upd = Update::MakeUpdate(
      *room, {{"RoomRate", std::nullopt, "rate"}},
      {{{"Room", "RoomID"}, PredicateOp::kEq, std::nullopt, "room"}});
  ASSERT_TRUE(upd.ok());
  EXPECT_GT(UpdateWriteCost(*upd, keyed, est, cm),
            UpdateWriteCost(*upd, in_place, est, cm));
}

TEST_F(UpdatePlannerTest, ModifiedRowEstimates) {
  CostModel cm;
  CardinalityEstimator est(graph_.get(), &cm.params());
  auto room_hotel = graph_->ResolvePath("Room", {"Hotel"});
  const ColumnFamily mv = MakeCf(*room_hotel, {{"Hotel", "HotelCity"}},
                                 {{"Room", "RoomID"}}, {{"Room", "RoomRate"}});
  auto room = graph_->SingleEntityPath("Room");
  // Update of one room (id equality): one record.
  auto one = Update::MakeUpdate(
      *room, {{"RoomRate", std::nullopt, "r"}},
      {{{"Room", "RoomID"}, PredicateOp::kEq, std::nullopt, "room"}});
  EXPECT_NEAR(ModifiedRowEstimate(*one, mv, est), 1.0, 1e-9);
  // Update of a whole floor: 10000/20 floors = 500 records.
  auto floor = Update::MakeUpdate(
      *room, {{"RoomRate", std::nullopt, "r"}},
      {{{"Room", "RoomFloor"}, PredicateOp::kEq, std::nullopt, "f"}});
  EXPECT_NEAR(ModifiedRowEstimate(*floor, mv, est), 500.0, 1e-9);
}

TEST_F(UpdatePlannerTest, PlanUpdateForSchemaFailsWithoutSupportCoverage) {
  // A schema with only the denormalized family cannot answer its own
  // support query (room id -> city), so planning must fail.
  auto room_hotel = graph_->ResolvePath("Room", {"Hotel"});
  Schema schema;
  schema.Add(MakeCf(*room_hotel, {{"Hotel", "HotelCity"}},
                    {{"Room", "RoomID"}, {"Hotel", "HotelID"}},
                    {{"Room", "RoomRate"}}));
  CostModel cm;
  CardinalityEstimator est(graph_.get(), &cm.params());
  QueryPlanner planner(&cm, &est);
  auto room = graph_->SingleEntityPath("Room");
  auto upd = Update::MakeUpdate(
      *room, {{"RoomRate", std::nullopt, "rate"}},
      {{{"Room", "RoomID"}, PredicateOp::kEq, std::nullopt, "room"}});
  ASSERT_TRUE(upd.ok());
  auto plan = PlanUpdateForSchema(*upd, schema, planner, est, cm);
  EXPECT_FALSE(plan.ok());

  // Adding a reverse-lookup family fixes it.
  schema.Add(MakeCf(*room_hotel, {{"Room", "RoomID"}},
                    {{"Hotel", "HotelID"}}, {{"Hotel", "HotelCity"}}));
  auto plan2 = PlanUpdateForSchema(*upd, schema, planner, est, cm);
  ASSERT_TRUE(plan2.ok()) << plan2.status();
  ASSERT_EQ(plan2->parts.size(), 1u);
  EXPECT_EQ(plan2->parts[0].support_plans.size(), 1u);
  EXPECT_GT(plan2->cost, 0.0);
}

}  // namespace
}  // namespace nose
