#include <gtest/gtest.h>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "schema/column_family.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

TEST(CostModelTest, GetCostComposition) {
  CostParams params;
  CostModel model(params);
  // One request, no rows.
  EXPECT_DOUBLE_EQ(model.GetCost(1, 0, 0), params.read_request);
  // Rows and bytes add linearly.
  const double c = model.GetCost(2, 10, 100);
  EXPECT_DOUBLE_EQ(c, 2 * params.read_request + 20 * params.read_row +
                          20 * 100 * params.read_byte);
  // Negative inputs clamp to zero.
  EXPECT_DOUBLE_EQ(model.GetCost(-1, 5, 10), 0.0);
}

TEST(CostModelTest, PutFilterSortCosts) {
  CostParams params;
  CostModel model(params);
  EXPECT_DOUBLE_EQ(model.PutCost(1, 1, 0),
                   params.write_request + params.write_row);
  EXPECT_DOUBLE_EQ(model.FilterCost(100), 100 * params.filter_row);
  EXPECT_DOUBLE_EQ(model.SortCost(0), 0.0);
  EXPECT_GT(model.SortCost(1000), model.SortCost(100));
  // n log n growth: sorting 10x the rows costs more than 10x.
  EXPECT_GT(model.SortCost(1000), 10 * model.SortCost(100) * 0.99);
}

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest()
      : graph_(MakeHotelGraph()),
        model_(CostParams{}),
        est_(graph_.get(), &model_.params()) {}
  std::unique_ptr<EntityGraph> graph_;
  CostModel model_;
  CardinalityEstimator est_;
};

TEST_F(CardinalityTest, PredicateSelectivities) {
  // Equality on a 20-value city attribute.
  Predicate city{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "c"};
  EXPECT_DOUBLE_EQ(est_.Selectivity(city), 1.0 / 20.0);
  // Equality on an ID: 1/count.
  Predicate id{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"};
  EXPECT_DOUBLE_EQ(est_.Selectivity(id), 1.0 / 50000.0);
  // Ranges use the configured constant.
  Predicate rate{{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt, "r"};
  EXPECT_DOUBLE_EQ(est_.Selectivity(rate), model_.params().range_selectivity);
  Predicate ne{{"Room", "RoomFloor"}, PredicateOp::kNe, std::nullopt, "f"};
  EXPECT_DOUBLE_EQ(est_.Selectivity(ne), model_.params().ne_selectivity);
  // Combined under independence.
  EXPECT_DOUBLE_EQ(est_.Selectivity(std::vector<Predicate>{city, rate}),
                   0.05 * model_.params().range_selectivity);
}

TEST_F(CardinalityTest, MatchingEntitiesAlongFig3Path) {
  Query q = MakeFig3Query(*graph_);
  // At Hotel (index 3): hotels in one city = 100/20.
  EXPECT_NEAR(est_.MatchingEntities(q, 3), 5.0, 1e-9);
  // At Room (index 2): rooms in city above rate = 10000/20 * 0.1.
  EXPECT_NEAR(est_.MatchingEntities(q, 2), 50.0, 1e-9);
  // At Reservation (index 1): reservations through those rooms.
  EXPECT_NEAR(est_.MatchingEntities(q, 1), 500.0, 1e-9);
  // At Guest (index 0): one guest per reservation here.
  EXPECT_NEAR(est_.MatchingEntities(q, 0), 500.0, 1e-9);
}

TEST_F(CardinalityTest, MatchingEntitiesRespectsFanOutNotBareCounts) {
  // One guest reaches ~2 reservations -> ~2 hotels, not
  // count(Hotel) * tiny-selectivity.
  auto path = graph_->ResolvePath(
      "POI", {"Hotels", "Rooms", "Reservations", "Guest"});
  Query q(*path, {{"POI", "POIName"}},
          {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}}, {});
  // Hotel is at index 1: suffix Hotel..Guest has 100k instances / 50k
  // guests = 2 expected hotels per guest.
  EXPECT_NEAR(est_.MatchingEntities(q, 1), 2.0, 1e-9);
  // Clamped by entity count at the POI end: 2 hotels * 10 POIs = 20.
  EXPECT_NEAR(est_.MatchingEntities(q, 0), 20.0, 1e-9);
}

TEST_F(CardinalityTest, RowsPerBinding) {
  auto segment = graph_->ResolvePath("Room", {"Hotel"});
  // Partitioned by Hotel (index 1): 10000 rooms / 100 hotels = 100 each.
  EXPECT_NEAR(est_.RowsPerBinding(*segment, 1, {}), 100.0, 1e-9);
  // A range predicate thins the rows.
  Predicate rate{{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt, "r"};
  EXPECT_NEAR(est_.RowsPerBinding(*segment, 1, {rate}), 10.0, 1e-9);
}

TEST(ColumnFamilySizeTest, EstimatesScaleWithContent) {
  auto graph = MakeHotelGraph();
  auto path = graph->ResolvePath("Room", {"Hotel"});
  auto small = ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}},
                                    {{"Room", "RoomID"}}, {});
  auto large = ColumnFamily::Create(
      *path, {{"Hotel", "HotelCity"}}, {{"Room", "RoomID"}},
      {{"Room", "RoomRate"}, {"Hotel", "HotelAddress"}});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // 10000 path instances; 20 partitions.
  EXPECT_DOUBLE_EQ(small->EntryCount(), 10000.0);
  EXPECT_DOUBLE_EQ(small->PartitionCount(), 20.0);
  EXPECT_GT(large->SizeBytes(), small->SizeBytes());
}

}  // namespace
}  // namespace nose
