#include <gtest/gtest.h>

#include "tests/hotel_fixture.h"
#include "workload/workload.h"

namespace nose {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : graph_(MakeHotelGraph()), workload_(graph_.get()) {}

  Update MakeEmailUpdate() {
    auto guest = graph_->SingleEntityPath("Guest");
    auto upd = Update::MakeUpdate(
        *guest, {{"GuestEmail", std::nullopt, "e"}},
        {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}});
    assert(upd.ok());
    return std::move(upd).value();
  }

  std::unique_ptr<EntityGraph> graph_;
  Workload workload_;
};

TEST_F(WorkloadTest, AddAndFind) {
  ASSERT_TRUE(workload_.AddQuery("q1", MakeFig3Query(*graph_), 3.0).ok());
  ASSERT_TRUE(workload_.AddUpdate("u1", MakeEmailUpdate(), 1.0).ok());
  EXPECT_NE(workload_.FindEntry("q1"), nullptr);
  EXPECT_NE(workload_.FindEntry("u1"), nullptr);
  EXPECT_EQ(workload_.FindEntry("nope"), nullptr);
  // Duplicate names rejected.
  EXPECT_EQ(workload_.AddQuery("q1", MakeFig3Query(*graph_)).code(),
            StatusCode::kAlreadyExists);
  // Invalid queries rejected at insertion.
  auto guest = graph_->SingleEntityPath("Guest");
  Query invalid(*guest, {{"Guest", "GuestName"}}, {}, {});  // no equality
  EXPECT_FALSE(workload_.AddQuery("bad", std::move(invalid)).ok());
}

TEST_F(WorkloadTest, WeightsNormalizeAndOrderQueriesFirst) {
  ASSERT_TRUE(workload_.AddUpdate("u1", MakeEmailUpdate(), 1.0).ok());
  ASSERT_TRUE(workload_.AddQuery("q1", MakeFig3Query(*graph_), 3.0).ok());
  const auto entries = workload_.EntriesIn(Workload::kDefaultMix);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first->name, "q1");  // queries first
  EXPECT_DOUBLE_EQ(entries[0].second, 0.75);
  EXPECT_DOUBLE_EQ(entries[1].second, 0.25);
}

TEST_F(WorkloadTest, MixesAreIndependent) {
  ASSERT_TRUE(workload_.AddQuery("q1", MakeFig3Query(*graph_), 2.0).ok());
  ASSERT_TRUE(workload_.AddUpdate("u1", MakeEmailUpdate(), 2.0).ok());
  ASSERT_TRUE(workload_.SetWeight("q1", "reads_only", 1.0).ok());
  EXPECT_FALSE(workload_.SetWeight("ghost", "reads_only", 1.0).ok());

  const auto reads = workload_.EntriesIn("reads_only");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].first->name, "q1");
  EXPECT_DOUBLE_EQ(reads[0].second, 1.0);

  const auto none = workload_.EntriesIn("unknown_mix");
  EXPECT_TRUE(none.empty());

  const auto mixes = workload_.MixNames();
  EXPECT_EQ(mixes.size(), 2u);  // default + reads_only
}

TEST_F(WorkloadTest, UpdateAccessors) {
  Update upd = MakeEmailUpdate();
  EXPECT_EQ(upd.kind(), UpdateKind::kUpdate);
  EXPECT_EQ(upd.entity(), "Guest");
  const auto modified = upd.ModifiedFields();
  ASSERT_EQ(modified.size(), 1u);
  EXPECT_EQ(modified[0].QualifiedName(), "Guest.GuestEmail");
  EXPECT_NE(upd.ToString().find("UPDATE Guest"), std::string::npos);

  // INSERT reports every entity field as modified.
  auto ins = Update::MakeInsert(graph_.get(), "Guest",
                                {{"GuestID", std::nullopt, "g"},
                                 {"GuestName", std::nullopt, "n"}},
                                {});
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->ModifiedFields().size(), 3u);  // id + name + email

  // CONNECT modifies no attribute values.
  auto con = Update::MakeConnect(graph_.get(), "Guest", "g", "Reservations",
                                 "r", false);
  ASSERT_TRUE(con.ok());
  EXPECT_TRUE(con->ModifiedFields().empty());
}

TEST_F(WorkloadTest, UpdateValidationErrors) {
  // INSERT without a primary key.
  EXPECT_FALSE(Update::MakeInsert(graph_.get(), "Guest",
                                  {{"GuestName", std::nullopt, "n"}}, {})
                   .ok());
  // INSERT with unknown connect step.
  EXPECT_FALSE(Update::MakeInsert(graph_.get(), "Guest",
                                  {{"GuestID", std::nullopt, "g"}},
                                  {{"Bookings", "b"}})
                   .ok());
  // UPDATE with no SET clause.
  auto guest = graph_->SingleEntityPath("Guest");
  EXPECT_FALSE(Update::MakeUpdate(*guest, {}, {}).ok());
  // UPDATE with predicate off the path.
  EXPECT_FALSE(
      Update::MakeUpdate(
          *guest, {{"GuestEmail", std::nullopt, "e"}},
          {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "c"}})
          .ok());
  // CONNECT via nonexistent step.
  EXPECT_FALSE(
      Update::MakeConnect(graph_.get(), "Guest", "g", "Rooms", "r", false)
          .ok());
}

}  // namespace
}  // namespace nose
