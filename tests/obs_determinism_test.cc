// The pipeline counters must inherit the advisor's determinism contract:
// candidates enumerated, branch-and-bound nodes, simplex iterations — every
// counter delta must be bitwise-identical whether the advisor runs on 1, 2,
// or 8 threads. The enumerator merges per-task results in statement order,
// the combinatorial solver evaluates fixed-size batches, and the LP/BIP
// solves are serial, so any divergence here is a real scheduling leak, not
// measurement noise.

#include <cstdint>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "obs/metrics.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose {
namespace {

std::map<std::string, uint64_t> Delta(
    const std::map<std::string, uint64_t>& before,
    const std::map<std::string, uint64_t>& after) {
  std::map<std::string, uint64_t> delta;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    const uint64_t prev = it == before.end() ? 0 : it->second;
    if (value != prev) delta[name] = value - prev;
  }
  return delta;
}

/// Runs the advisor on RUBiS at 1/2/8 threads and requires the complete
/// counter delta map — not just a chosen subset — to be identical.
void CheckCounterInvariance(const AdvisorOptions& base, const std::string& mix,
                            const std::string& required_prefix) {
  auto graph = rubis::MakeGraph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok()) << workload.status();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::map<std::string, uint64_t> serial_delta;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AdvisorOptions options = base;
    options.num_threads = threads;
    const auto before = reg.CounterValues();
    Advisor advisor(options);
    auto rec = advisor.Recommend(**workload, mix);
    ASSERT_TRUE(rec.ok()) << "threads=" << threads << ": " << rec.status();
    const auto delta = Delta(before, reg.CounterValues());

    // The run must actually exercise the instrumented layers.
    ASSERT_GT(delta.count("enumerator.candidates_generated"), 0u)
        << "threads=" << threads;
    ASSERT_GT(delta.count("planner.spaces_built"), 0u) << "threads=" << threads;
    bool saw_solver = false;
    for (const auto& [name, value] : delta) {
      if (name.rfind(required_prefix, 0) == 0 && value > 0) saw_solver = true;
    }
    EXPECT_TRUE(saw_solver)
        << "threads=" << threads << ": no " << required_prefix << "* counter";

    if (threads == 1) {
      serial_delta = delta;
    } else {
      EXPECT_EQ(serial_delta, delta) << "threads=" << threads;
    }
  }
}

TEST(ObsDeterminismTest, BipCountersAreThreadCountInvariant) {
  AdvisorOptions options;
  options.optimizer.strategy = SolveStrategy::kBip;
  // Deterministic stopping: bound the search by nodes, not wall clock.
  options.optimizer.bip.max_nodes = 20000;
  options.optimizer.bip.time_limit_seconds = 1e9;
  CheckCounterInvariance(options, rubis::kBiddingMix, "solver.bb_");
  // The serial run populated the canonical counters the issue pins.
  const auto values = obs::MetricsRegistry::Global().CounterValues();
  EXPECT_GT(values.at("enumerator.candidates_generated"), 0u);
  EXPECT_GT(values.at("solver.bb_nodes"), 0u);
  EXPECT_GT(values.at("solver.simplex_iterations"), 0u);
}

TEST(ObsDeterminismTest, AdviseAllMixesCountersAreThreadCountInvariant) {
  auto graph = rubis::MakeGraph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok()) << workload.status();

  AdvisorOptions base;
  base.optimizer.strategy = SolveStrategy::kBip;
  base.optimizer.bip.max_nodes = 20000;
  base.optimizer.bip.time_limit_seconds = 1e9;
  // Bidding and 10x share a statement set, so the second of the pair rides
  // the interned pool (advisor.pool_reuse_hits) — that reuse must also be
  // invisible in the counter deltas.
  const std::vector<std::string> mixes = {
      rubis::kBrowsingMix, rubis::kBiddingMix, rubis::kWrite10xMix};

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::map<std::string, uint64_t> serial_delta;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AdvisorOptions options = base;
    options.num_threads = threads;
    const auto before = reg.CounterValues();
    Advisor advisor(options);
    auto all = advisor.AdviseAllMixes(**workload, mixes);
    ASSERT_TRUE(all.ok()) << "threads=" << threads << ": " << all.status();
    const auto delta = Delta(before, reg.CounterValues());

    // Rows are assembled per plan space on worker threads and appended in
    // statement order; the generated-row count must not depend on how the
    // assembly work was scheduled.
    ASSERT_GT(delta.count("optimizer.bip_rows_generated"), 0u)
        << "threads=" << threads;
    if (threads == 1) {
      serial_delta = delta;
    } else {
      EXPECT_EQ(serial_delta, delta) << "threads=" << threads;
    }
  }
  const auto values = reg.CounterValues();
  EXPECT_GT(values.at("optimizer.bip_rows_generated"), 0u);
  EXPECT_GT(values.at("solver.lp_nonzeros"), 0u);
  EXPECT_GT(values.at("advisor.pool_reuse_hits"), 0u);
}

TEST(ObsDeterminismTest, CombinatorialCountersAreThreadCountInvariant) {
  AdvisorOptions options;
  options.optimizer.strategy = SolveStrategy::kCombinatorial;
  options.optimizer.bip.max_nodes = 20000;
  options.optimizer.bip.time_limit_seconds = 1e9;
  CheckCounterInvariance(options, rubis::kBrowsingMix, "solver.comb_");
}

}  // namespace
}  // namespace nose
