#include <cmath>

#include <gtest/gtest.h>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "planner/plan_space.h"
#include "schema/column_family.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

/// Fig. 6 environment: the relaxed prefix query
///   SELECT Room.RoomID FROM Room WHERE Room.Hotel.HotelCity = ?city
///                                   AND Room.RoomRate > ?rate
/// and the five column families CF1..CF5 of the paper.
class Fig6Test : public ::testing::Test {
 protected:
  Fig6Test()
      : graph_(MakeHotelGraph()),
        cost_model_(CostParams{}),
        estimator_(graph_.get(), &cost_model_.params()),
        planner_(&cost_model_, &estimator_) {
    auto path = graph_->ResolvePath("Room", {"Hotel"});
    assert(path.ok());
    query_ = Query(*path, {{"Room", "RoomID"}},
                   {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt,
                     "city"},
                    {{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt,
                     "rate"}},
                   {});
    assert(query_.Validate().ok());

    const KeyPath room_hotel = *path;
    const KeyPath hotel_only = *graph_->SingleEntityPath("Hotel");
    const KeyPath room_only = *graph_->SingleEntityPath("Room");
    auto add = [&](StatusOr<ColumnFamily> cf) {
      assert(cf.ok());
      pool_.push_back(std::move(cf).value());
    };
    // CF1 [HotelCity][RoomRate, RoomID][]
    add(ColumnFamily::Create(room_hotel, {{"Hotel", "HotelCity"}},
                             {{"Room", "RoomRate"}, {"Room", "RoomID"}}, {}));
    // CF2 [HotelCity][RoomID][]
    add(ColumnFamily::Create(room_hotel, {{"Hotel", "HotelCity"}},
                             {{"Room", "RoomID"}}, {}));
    // CF3 [HotelCity][HotelID][]
    add(ColumnFamily::Create(hotel_only, {{"Hotel", "HotelCity"}},
                             {{"Hotel", "HotelID"}}, {}));
    // CF4 [HotelID][RoomID][]
    add(ColumnFamily::Create(room_hotel, {{"Hotel", "HotelID"}},
                             {{"Room", "RoomID"}}, {}));
    // CF5 [RoomID][][RoomRate]
    add(ColumnFamily::Create(room_only, {{"Room", "RoomID"}}, {},
                             {{"Room", "RoomRate"}}));
  }

  std::vector<bool> Only(std::initializer_list<int> cfs) const {
    std::vector<bool> mask(pool_.size(), false);
    for (int c : cfs) mask[static_cast<size_t>(c)] = true;
    return mask;
  }

  std::unique_ptr<EntityGraph> graph_;
  CostModel cost_model_;
  CardinalityEstimator estimator_;
  QueryPlanner planner_;
  Query query_;
  std::vector<ColumnFamily> pool_;
};

TEST_F(Fig6Test, AllThreePaperPlansExist) {
  PlanSpace space = planner_.Build(query_, pool_);
  ASSERT_TRUE(space.HasPlan());

  // Plan 1: CF1 alone (materialized view with pushed range).
  EXPECT_TRUE(std::isfinite(space.BestCost(Only({0}))));
  // Plan 2: CF3 -> CF4 -> CF5 (+ filter).
  EXPECT_TRUE(std::isfinite(space.BestCost(Only({2, 3, 4}))));
  // Plan 3: CF2 -> CF5 (+ filter).
  EXPECT_TRUE(std::isfinite(space.BestCost(Only({1, 4}))));
}

TEST_F(Fig6Test, IncompleteSubsetsHaveNoPlan) {
  PlanSpace space = planner_.Build(query_, pool_);
  // CF3+CF4 alone cannot apply the RoomRate predicate.
  EXPECT_TRUE(std::isinf(space.BestCost(Only({2, 3}))));
  // CF5 alone cannot anchor the first get.
  EXPECT_TRUE(std::isinf(space.BestCost(Only({4}))));
  // CF2 alone leaves the RoomRate predicate pending.
  EXPECT_TRUE(std::isinf(space.BestCost(Only({1}))));
  EXPECT_TRUE(std::isinf(space.BestCost(Only({}))));
}

TEST_F(Fig6Test, MaterializedViewIsCheapest) {
  PlanSpace space = planner_.Build(query_, pool_);
  const double mv = space.BestCost(Only({0}));
  const double long_plan = space.BestCost(Only({2, 3, 4}));
  const double mid_plan = space.BestCost(Only({1, 4}));
  EXPECT_LT(mv, mid_plan);
  EXPECT_LT(mid_plan, long_plan);
  EXPECT_DOUBLE_EQ(space.BestCost(), mv);
}

TEST_F(Fig6Test, BestPlanExtractsMaterializedView) {
  PlanSpace space = planner_.Build(query_, pool_);
  auto plan = space.BestPlan(pool_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].cf, &pool_[0]);
  EXPECT_TRUE(plan->steps[0].first);
  EXPECT_TRUE(plan->steps[0].access.pushed_range.has_value());
  EXPECT_EQ(plan->steps[0].access.partition_preds.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->steps[0].access.requests, 1.0);
  // 10000 rooms / 20 cities * 0.1 range selectivity = 50 rows expected.
  EXPECT_NEAR(plan->steps[0].access.rows_per_request, 50.0, 1e-9);
}

TEST_F(Fig6Test, LongPlanHasThreeStepsWithFilter) {
  PlanSpace space = planner_.Build(query_, pool_);
  auto plan = space.BestPlan(pool_, Only({2, 3, 4}));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 3u);
  EXPECT_EQ(plan->steps[0].cf, &pool_[2]);  // CF3
  EXPECT_EQ(plan->steps[1].cf, &pool_[3]);  // CF4
  EXPECT_EQ(plan->steps[2].cf, &pool_[4]);  // CF5
  // The final materialization step filters on RoomRate.
  EXPECT_EQ(plan->steps[2].access.filters.size(), 1u);
  // CF4 step: one request per hotel in the city (100 hotels / 20 cities).
  EXPECT_NEAR(plan->steps[1].access.requests, 5.0, 1e-9);
  // CF5 step: one request per candidate room (before the rate filter):
  // 10000/20 = 500 rooms.
  EXPECT_NEAR(plan->steps[2].access.requests, 500.0, 1e-9);
}

TEST_F(Fig6Test, PlanCostsAccumulate) {
  PlanSpace space = planner_.Build(query_, pool_);
  auto plan = space.BestPlan(pool_, Only({1, 4}));
  ASSERT_TRUE(plan.ok());
  double total = 0.0;
  for (const PlanStep& s : plan->steps) total += s.access.step_cost;
  EXPECT_NEAR(total, plan->cost, 1e-9);
}

// ---------------------------------------------------------------------------
// Full Fig. 3 query over the 4-entity path.
// ---------------------------------------------------------------------------

class Fig3PlannerTest : public ::testing::Test {
 protected:
  Fig3PlannerTest()
      : graph_(MakeHotelGraph()),
        cost_model_(CostParams{}),
        estimator_(graph_.get(), &cost_model_.params()),
        planner_(&cost_model_, &estimator_),
        query_(MakeFig3Query(*graph_)) {}

  std::unique_ptr<EntityGraph> graph_;
  CostModel cost_model_;
  CardinalityEstimator estimator_;
  QueryPlanner planner_;
  Query query_;
};

TEST_F(Fig3PlannerTest, PaperMaterializedViewAnswersInOneStep) {
  // [HotelCity][RoomRate, GuestID, ResID, RoomID, HotelID]
  //   [GuestName, GuestEmail]  (paper §IV-A1)
  auto path = graph_->ResolvePath("Guest", {"Reservations", "Room", "Hotel"});
  ASSERT_TRUE(path.ok());
  auto mv = ColumnFamily::Create(
      *path, {{"Hotel", "HotelCity"}},
      {{"Room", "RoomRate"},
       {"Guest", "GuestID"},
       {"Reservation", "ResID"},
       {"Room", "RoomID"},
       {"Hotel", "HotelID"}},
      {{"Guest", "GuestName"}, {"Guest", "GuestEmail"}});
  ASSERT_TRUE(mv.ok());
  std::vector<ColumnFamily> pool = {*mv};
  auto plan = planner_.PlanForSchema(query_, pool);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->steps.size(), 1u);
  EXPECT_TRUE(plan->steps[0].access.pushed_range.has_value());
  EXPECT_TRUE(plan->steps[0].access.filters.empty());
}

TEST_F(Fig3PlannerTest, SectionIVPlanWithTwoColumnFamilies) {
  // Paper §IV-B example: CF1 [HotelCity][RoomID][RoomRate],
  // CF2 [RoomID][GuestID][GuestName, GuestEmail] — get, filter, join.
  auto room_hotel = graph_->ResolvePath("Room", {"Hotel"});
  auto guest_room =
      graph_->ResolvePath("Guest", {"Reservations", "Room"});
  ASSERT_TRUE(room_hotel.ok());
  ASSERT_TRUE(guest_room.ok());
  auto cf1 = ColumnFamily::Create(*room_hotel, {{"Hotel", "HotelCity"}},
                                  {{"Room", "RoomID"}}, {{"Room", "RoomRate"}});
  // The paper omits ResID in its prose example; include it for uniqueness as
  // §IV-A1 prescribes.
  auto cf2 = ColumnFamily::Create(
      *guest_room, {{"Room", "RoomID"}},
      {{"Guest", "GuestID"}, {"Reservation", "ResID"}},
      {{"Guest", "GuestName"}, {"Guest", "GuestEmail"}});
  ASSERT_TRUE(cf1.ok());
  ASSERT_TRUE(cf2.ok());
  std::vector<ColumnFamily> pool = {*cf1, *cf2};
  auto plan = planner_.PlanForSchema(query_, pool);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[0].cf, &pool[0]);
  // RoomRate is filtered client-side after the first get.
  ASSERT_EQ(plan->steps[0].access.filters.size(), 1u);
  EXPECT_EQ(plan->steps[0].access.filters[0].field.field, "RoomRate");
  EXPECT_EQ(plan->steps[1].cf, &pool[1]);
  EXPECT_TRUE(plan->steps[1].access.partition_uses_id);
}

TEST_F(Fig3PlannerTest, OrderByRequiresSortUnlessClustered) {
  auto path = graph_->ResolvePath("Guest", {"Reservations", "Room", "Hotel"});
  ASSERT_TRUE(path.ok());
  Query ordered(*path, {{"Guest", "GuestName"}},
                {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt,
                  "city"}},
                {OrderField{{"Room", "RoomRate"}}});
  ASSERT_TRUE(ordered.Validate().ok());

  auto sorted_mv = ColumnFamily::Create(
      *path, {{"Hotel", "HotelCity"}},
      {{"Room", "RoomRate"},
       {"Guest", "GuestID"},
       {"Reservation", "ResID"},
       {"Room", "RoomID"},
       {"Hotel", "HotelID"}},
      {{"Guest", "GuestName"}});
  auto unsorted_mv = ColumnFamily::Create(
      *path, {{"Hotel", "HotelCity"}},
      {{"Guest", "GuestID"},
       {"Reservation", "ResID"},
       {"Room", "RoomID"},
       {"Hotel", "HotelID"}},
      {{"Guest", "GuestName"}, {"Room", "RoomRate"}});
  ASSERT_TRUE(sorted_mv.ok());
  ASSERT_TRUE(unsorted_mv.ok());

  {
    std::vector<ColumnFamily> pool = {*sorted_mv};
    auto plan = planner_.PlanForSchema(ordered, pool);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_FALSE(plan->needs_sort);
  }
  {
    std::vector<ColumnFamily> pool = {*unsorted_mv};
    auto plan = planner_.PlanForSchema(ordered, pool);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_TRUE(plan->needs_sort);
    EXPECT_GT(plan->sort_cost, 0.0);
  }
}

TEST_F(Fig3PlannerTest, NormalizedStylePoolStillAnswers) {
  // Entity tables plus secondary index on HotelCity: forces a long chain.
  auto hotel = graph_->SingleEntityPath("Hotel");
  auto room_hotel = graph_->ResolvePath("Room", {"Hotel"});
  auto res_room = graph_->ResolvePath("Reservation", {"Room"});
  auto guest_res = graph_->ResolvePath("Guest", {"Reservations"});
  auto guest = graph_->SingleEntityPath("Guest");
  auto idx = ColumnFamily::Create(*hotel, {{"Hotel", "HotelCity"}},
                                  {{"Hotel", "HotelID"}}, {});
  auto rooms = ColumnFamily::Create(*room_hotel, {{"Hotel", "HotelID"}},
                                    {{"Room", "RoomID"}},
                                    {{"Room", "RoomRate"}});
  auto reservations = ColumnFamily::Create(
      *res_room, {{"Room", "RoomID"}}, {{"Reservation", "ResID"}}, {});
  auto guests = ColumnFamily::Create(*guest_res, {{"Reservation", "ResID"}},
                                     {{"Guest", "GuestID"}}, {});
  auto guest_attrs = ColumnFamily::Create(
      *guest, {{"Guest", "GuestID"}}, {},
      {{"Guest", "GuestName"}, {"Guest", "GuestEmail"}});
  std::vector<ColumnFamily> pool = {*idx, *rooms, *reservations, *guests,
                                    *guest_attrs};
  auto plan = planner_.PlanForSchema(query_, pool);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->steps.size(), 5u);
  EXPECT_GT(plan->cost, 0.0);
}

TEST_F(Fig3PlannerTest, EmptyPoolFails) {
  std::vector<ColumnFamily> pool;
  auto plan = planner_.PlanForSchema(query_, pool);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace nose
