// The online serving layer: concurrent drivers over the sharded store,
// live migration under load, and anytime deadline-bounded advising.

#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "evolve/scenario.h"
#include "rubis/datagen.h"
#include "rubis/model.h"
#include "rubis/workload.h"
#include "serve/serve.h"
#include "store/record_store.h"

namespace nose::serve {
namespace {

evolve::DriftScenario TwoPhaseScenario() {
  auto scenario = evolve::ParseScenario(
      "workload rubis\n"
      "scale 0.02\n"
      "seed 7\n"
      "chunk-rows 64\n"
      "catchup-batch 16\n"
      "query-log 64\n"
      "phase default 160\n"
      "phase browsing 240\n");
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  return *scenario;
}

ServeOptions Options(size_t threads) {
  ServeOptions options;
  options.threads = threads;
  options.streams = 8;
  options.store_stripes = 8;
  options.migration_threads = 2;
  return options;
}

StatusOr<std::unique_ptr<ServeHarness>> RunServe(size_t threads) {
  auto harness = ServeHarness::Create(TwoPhaseScenario(), Options(threads));
  if (!harness.ok()) return harness.status();
  NOSE_RETURN_IF_ERROR((*harness)->Run());
  return harness;
}

// The tentpole invariant: S fixed streams own disjoint written-record
// shards, so the final post-cutover store content is byte-identical at ANY
// driver thread count — 8 concurrent drivers with a live migration racing
// them must land exactly where the single-threaded control does.
TEST(ServeTest, StoreContentIdenticalAcrossThreadCounts) {
  auto control = RunServe(1);
  ASSERT_TRUE(control.ok()) << control.status();
  auto concurrent = RunServe(8);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status();

  const ServeReport& a = (*control)->report();
  const ServeReport& b = (*concurrent)->report();
  EXPECT_NE(a.store_digest, 0u);
  EXPECT_EQ(a.store_digest, b.store_digest);

  // Both runs executed the same logical workload…
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.statements, b.statements);
  // …and both migrated live at the browsing boundary.
  ASSERT_EQ(a.migrations.size(), 1u);
  ASSERT_EQ(b.migrations.size(), 1u);
  EXPECT_GT(b.migrations[0].rows_backfilled, 0u);
  EXPECT_GT(b.migrations[0].rows_dropped, 0u);
}

TEST(ServeTest, ReportsLatencyTimelineAndMigrationRecord) {
  auto harness = RunServe(4);
  ASSERT_TRUE(harness.ok()) << harness.status();
  const ServeReport& report = (*harness)->report();

  EXPECT_EQ(report.threads, 4u);
  EXPECT_EQ(report.streams, 8u);
  EXPECT_EQ(report.transactions, 400u);
  // Every transaction landed in exactly one latency bucket.
  EXPECT_EQ(report.before.count + report.during.count + report.after.count,
            report.transactions);
  EXPECT_GT(report.before.count, 0u);
  EXPECT_GT(report.after.count, 0u);
  EXPECT_GE(report.before.p95_ms, report.before.p50_ms);
  EXPECT_GE(report.before.p99_ms, report.before.p95_ms);
  EXPECT_GE(report.before.max_ms, report.before.p99_ms);

  ASSERT_EQ(report.migrations.size(), 1u);
  const ServeMigrationRecord& m = report.migrations[0];
  EXPECT_EQ(m.at_phase, 1u);
  EXPECT_EQ(m.to_mix, "browsing");
  EXPECT_GT(m.builds, 0u);
  EXPECT_GT(m.drops, 0u);
  EXPECT_GT(m.verify_queries, 0u);
  EXPECT_GT(m.bytes_dropped, 0u);
  EXPECT_GT(m.wall_seconds, 0.0);

  ASSERT_EQ(report.advises.size(), 2u);
  EXPECT_TRUE(report.advises[0].schema_changed);  // initial deployment
  EXPECT_TRUE(report.advises[1].schema_changed);  // browsing migration

  const std::string text = report.ToString();
  EXPECT_NE(text.find("before migration"), std::string::npos);
  EXPECT_NE(text.find("after cutover"), std::string::npos);
  EXPECT_NE(text.find("migrations: 1"), std::string::npos);
}

// Same mix in consecutive phases: the re-advise returns the same schema and
// the harness adopts it in place — no migration, no dropped families.
TEST(ServeTest, SameMixAdoptsInPlaceWithoutMigration) {
  auto scenario = evolve::ParseScenario(
      "workload rubis\n"
      "scale 0.02\n"
      "seed 7\n"
      "phase default 80\n"
      "phase default 80\n");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto harness = ServeHarness::Create(*scenario, Options(4));
  ASSERT_TRUE(harness.ok()) << harness.status();
  ASSERT_TRUE((*harness)->Run().ok());
  const ServeReport& report = (*harness)->report();
  EXPECT_EQ(report.migrations.size(), 0u);
  ASSERT_EQ(report.advises.size(), 2u);
  EXPECT_FALSE(report.advises[1].schema_changed);
  // No migration ever started, so everything is "before".
  EXPECT_EQ(report.before.count, report.transactions);
  EXPECT_EQ(report.during.count + report.after.count, 0u);
}

// ===========================================================================
// Sharded parameter generation (the commutativity foundation)
// ===========================================================================

// Different shards of the same seed must never emit the same written-row
// ids: ?item and ?user/?touser identify the records updates write, and the
// serve driver's determinism argument rests on these being disjoint.
TEST(ServeShardTest, ShardsEmitDisjointWrittenIds) {
  auto graph = rubis::MakeGraph(rubis::ScaleFor(0.02));
  ASSERT_TRUE(graph.ok());
  Dataset data = rubis::GenerateData(graph->get(), rubis::ScaleFor(0.02), 7);
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok());
  const WorkloadEntry* store_bid = (*workload)->FindEntry("store_bid");
  ASSERT_NE(store_bid, nullptr);

  constexpr size_t kShards = 4;
  std::set<int64_t> seen_items;
  std::set<int64_t> seen_users;
  for (size_t shard = 0; shard < kShards; ++shard) {
    rubis::ParamGenerator gen(&data, /*seed=*/7, shard, kShards);
    std::set<int64_t> items;
    std::set<int64_t> users;
    for (int i = 0; i < 200; ++i) {
      PlanExecutor::Params params;
      gen.AddStatementParams(*store_bid, &params);
      items.insert(std::get<int64_t>(params.at("item")));
      users.insert(std::get<int64_t>(params.at("user")));
    }
    for (int64_t id : items) {
      EXPECT_TRUE(seen_items.insert(id).second)
          << "item " << id << " emitted by two shards";
    }
    for (int64_t id : users) {
      EXPECT_TRUE(seen_users.insert(id).second)
          << "user " << id << " emitted by two shards";
    }
  }
}

// The single-shard constructor is the 1-of-1 sharding: existing callers
// (the evolve driver) see the same id stream they always did.
TEST(ServeShardTest, SingleShardMatchesUnshardedConstructor) {
  auto graph = rubis::MakeGraph(rubis::ScaleFor(0.02));
  ASSERT_TRUE(graph.ok());
  Dataset data = rubis::GenerateData(graph->get(), rubis::ScaleFor(0.02), 7);
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok());
  const WorkloadEntry* store_bid = (*workload)->FindEntry("store_bid");
  ASSERT_NE(store_bid, nullptr);

  rubis::ParamGenerator plain(&data, 7);
  rubis::ParamGenerator sharded(&data, 7, 0, 1);
  for (int i = 0; i < 100; ++i) {
    PlanExecutor::Params a, b;
    plain.AddStatementParams(*store_bid, &a);
    sharded.AddStatementParams(*store_bid, &b);
    EXPECT_EQ(a, b);
  }
}

// ===========================================================================
// Anytime deadline-bounded advising
// ===========================================================================

TEST(AnytimeAdviseTest, TinyDeadlineStillReturnsValidIncumbent) {
  auto graph = rubis::MakeGraph(rubis::ScaleFor(0.02));
  ASSERT_TRUE(graph.ok());
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok());
  Advisor advisor;
  // An absurdly small budget: the pipeline must still return a usable
  // incumbent (never an error merely because time ran out).
  auto rec = advisor.Recommend(**workload, rubis::kBiddingMix, 1e-6);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_GT(rec->schema.size(), 0u);
  EXPECT_FALSE(rec->query_plans.empty());
  // The solver stopped at the deadline before proving optimality, so the
  // incumbent carries a positive optimality-gap bound…
  EXPECT_GT(rec->anytime_gap, 0.0);
  // …and the record admits it blew the budget.
  EXPECT_FALSE(rec->deadline_hit);
}

TEST(AnytimeAdviseTest, GenerousDeadlineIsBitwiseIdenticalToUnbudgeted) {
  auto graph = rubis::MakeGraph(rubis::ScaleFor(0.02));
  ASSERT_TRUE(graph.ok());
  auto workload = rubis::MakeWorkload(**graph);
  ASSERT_TRUE(workload.ok());
  Advisor advisor;
  auto unbudgeted = advisor.Recommend(**workload, rubis::kBiddingMix);
  ASSERT_TRUE(unbudgeted.ok()) << unbudgeted.status();
  auto budgeted = advisor.Recommend(**workload, rubis::kBiddingMix, 3600.0);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  EXPECT_TRUE(budgeted->deadline_hit);
  EXPECT_EQ(budgeted->anytime_gap, 0.0);
  EXPECT_EQ(budgeted->objective, unbudgeted->objective);
  EXPECT_EQ(budgeted->ToString(), unbudgeted->ToString());
}

// ===========================================================================
// RecordStore::ContentDigest
// ===========================================================================

TEST(ContentDigestTest, IndependentOfStripeCountAndInsertOrder) {
  CostParams params;
  RecordStore a(params, /*stripes=*/1);
  RecordStore b(params, /*stripes=*/16);
  ASSERT_TRUE(a.CreateColumnFamily("cf", 1, 1, 1).ok());
  ASSERT_TRUE(b.CreateColumnFamily("cf", 1, 1, 1).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        a.Put("cf", {Value(int64_t{i})}, {Value(int64_t{i % 7})},
              {Value(std::string("v") + std::to_string(i))})
            .ok());
  }
  // Same records, reverse order, different striping.
  for (int i = 49; i >= 0; --i) {
    ASSERT_TRUE(
        b.Put("cf", {Value(int64_t{i})}, {Value(int64_t{i % 7})},
              {Value(std::string("v") + std::to_string(i))})
            .ok());
  }
  EXPECT_NE(a.ContentDigest(), 0u);
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());

  // Content changes move the digest.
  ASSERT_TRUE(
      b.Put("cf", {Value(int64_t{0})}, {Value(int64_t{0})},
            {Value(std::string("changed"))})
          .ok());
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

}  // namespace
}  // namespace nose::serve
