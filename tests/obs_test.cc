// Unit tests for the observability layer: the trace recorder's span
// capture and Chrome trace_event export, the metrics registry's counters /
// gauges / histograms and their JSON snapshot, and the interaction with the
// worker pool (spans recorded inside pool tasks land on named worker lanes).

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nose {
namespace {

// The recorder and registry are process-wide singletons shared by every
// test in this binary; tests therefore Enable() (which clears captured
// events) at their start and use uniquely named metrics or value deltas.

TEST(TraceTest, DisabledRecorderCapturesNothing) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  rec.Disable();
  {
    obs::Span span("trace_test.ignored", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(rec.EventCount(), 0u);
}

TEST(TraceTest, SpansRecordNameCategoryAndArgs) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  {
    obs::Span span("trace_test.outer", "test");
    EXPECT_TRUE(span.active());
    span.Arg("detail", "value-42");
    obs::Span inner(std::string("trace_test.dynamic"), "test");
  }
  rec.Disable();
  EXPECT_EQ(rec.EventCount(), 2u);
  const std::string json = rec.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("trace_test.outer"), std::string::npos);
  EXPECT_NE(json.find("trace_test.dynamic"), std::string::npos);
  EXPECT_NE(json.find("value-42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The exporting thread's lane is named via thread_name metadata.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  const std::vector<std::string> cats = rec.Categories();
  EXPECT_NE(std::find(cats.begin(), cats.end(), "test"), cats.end());
}

TEST(TraceTest, EnableClearsPriorEvents) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  { obs::Span span("trace_test.first", "test"); }
  EXPECT_EQ(rec.EventCount(), 1u);
  rec.Enable();  // restart: epoch resets, buffers drop
  EXPECT_EQ(rec.EventCount(), 0u);
  rec.Disable();
}

TEST(TraceTest, EndIsIdempotentAndStopsTheSpan) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  {
    obs::Span span("trace_test.ended", "test");
    span.End();
    span.End();  // second End and the destructor must not double-record
  }
  rec.Disable();
  EXPECT_EQ(rec.EventCount(), 1u);
}

TEST(TraceTest, PoolWorkerSpansLandOnNamedLanes) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  {
    util::ThreadPool pool(4);
    util::ParallelFor(&pool, 64, [](size_t) {
      obs::Span span("trace_test.task", "test");
    });
  }  // pool destruction joins the workers: buffers are quiescent
  rec.Disable();
  EXPECT_EQ(rec.EventCount(), 64u);
  const std::string json = rec.ToChromeJson();
  // At least one task ran on a pool worker (ParallelFor keeps the calling
  // thread busy too, so not all 64 are guaranteed off-thread — but with 64
  // tasks and 3 helper workers, some must be).
  EXPECT_NE(json.find("pool-worker-"), std::string::npos);
}

TEST(TraceTest, WriteChromeJsonProducesParsableFile) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  { obs::Span span("trace_test.file", "test"); }
  rec.Disable();
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  std::string error;
  ASSERT_TRUE(rec.WriteChromeJson(path, &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
  // Unwritable path reports instead of silently succeeding.
  EXPECT_FALSE(rec.WriteChromeJson("/nonexistent-dir/trace.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceTest, PhaseSpanMeasuresWhetherOrNotTracingIsOn) {
  obs::TraceRecorder::Global().Disable();
  obs::PhaseSpan off_phase("trace_test.phase_off", "test");
  EXPECT_GE(off_phase.StopSeconds(), 0.0);

  obs::TraceRecorder::Global().Enable();
  obs::PhaseSpan on_phase("trace_test.phase_on", "test");
  EXPECT_GE(on_phase.ElapsedSeconds(), 0.0);
  EXPECT_GE(on_phase.StopSeconds(), 0.0);
  obs::TraceRecorder::Global().Disable();
  EXPECT_EQ(obs::TraceRecorder::Global().EventCount(), 1u);
}

TEST(MetricsTest, CounterAccumulatesAndSnapshots) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& c = reg.GetCounter("obs_test.counter");
  const uint64_t before = c.value();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), before + 42);
  // The same name resolves to the same object.
  EXPECT_EQ(&reg.GetCounter("obs_test.counter"), &c);
  const auto values = reg.CounterValues();
  EXPECT_EQ(values.at("obs_test.counter"), before + 42);
}

TEST(MetricsTest, GaugeSetAndSetMax) {
  obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("obs_test.gauge");
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(2.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.histogram");
  h.Reset();
  h.Observe(0.5);
  h.Observe(2.0);
  h.Observe(1024.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1026.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1024.0);
  uint64_t total = 0;
  for (size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    total += h.bucket(i);
  }
  EXPECT_EQ(total, 3u);
}

TEST(MetricsTest, JsonSnapshotIsWellFormedAndFinite) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test.json_counter").Add(7);
  reg.GetGauge("obs_test.json_gauge").Set(1.25);
  // Non-finite values must degrade to 0 — strict JSON has no NaN/Inf
  // literal, and the CI smoke step validates with python -m json.tool.
  reg.GetGauge("obs_test.json_nonfinite")
      .Set(std::numeric_limits<double>::quiet_NaN());
  reg.GetHistogram("obs_test.json_histogram").Observe(3.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_counter\":7"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  const std::string path = ::testing::TempDir() + "obs_test_metrics.json";
  std::string error;
  ASSERT_TRUE(reg.WriteJson(path, &error)) << error;
  std::remove(path.c_str());
}

TEST(MetricsTest, HistogramQuantiles) {
  obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.quantiles");
  h.Reset();
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram

  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  // Exponential buckets bound the resolution, so pin ordering and range
  // rather than exact values.
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_GT(p50, 100.0);   // far from the minimum
  EXPECT_LT(p50, 900.0);   // and from the maximum
  EXPECT_GT(p99, 500.0);

  // A constant stream collapses every quantile onto the one value.
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 42.0);
}

TEST(MetricsTest, JsonSnapshotCarriesQuantiles) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Histogram& h = reg.GetHistogram("obs_test.json_quantiles");
  h.Reset();
  h.Observe(5.0);
  const std::string json = reg.ToJson();
  const size_t at = json.find("\"obs_test.json_quantiles\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"p50\"", at), std::string::npos);
  EXPECT_NE(json.find("\"p95\"", at), std::string::npos);
  EXPECT_NE(json.find("\"p99\"", at), std::string::npos);
}

TEST(MetricsTest, OpenMetricsExposition) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test.om_counter").Add(3);
  reg.GetGauge("obs_test.om_gauge").Set(2.5);
  obs::Histogram& h = reg.GetHistogram("obs_test.om_histogram");
  h.Reset();
  h.Observe(1.0);
  h.Observe(10.0);

  const std::string text = reg.ToOpenMetrics();
  // Names are sanitized (dots are not legal in OpenMetrics names),
  // counters get the _total suffix, histograms expose cumulative buckets.
  EXPECT_NE(text.find("obs_test_om_counter_total 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_om_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("obs_test_om_histogram_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_om_histogram_count 2"), std::string::npos);
  EXPECT_NE(text.find("obs_test_om_histogram_sum 11"), std::string::npos);
  EXPECT_EQ(text.find("obs_test.om"), std::string::npos);  // dots sanitized
  // The exposition must terminate with the EOF marker, final newline
  // included.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  const std::string path = ::testing::TempDir() + "obs_test_metrics.prom";
  std::string error;
  ASSERT_TRUE(reg.WriteOpenMetrics(path, &error)) << error;
  std::remove(path.c_str());
}

TEST(TraceTest, FlushPartialWritesValidJsonMidRecording) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  { obs::Span done_span("trace_test.partial_done", "test"); }
  obs::Span open_span("trace_test.partial_open", "test");
  const std::string path = ::testing::TempDir() + "obs_test_partial.json";
  std::string error;
  // Flushed while recording is still live (a span is open): the file must
  // be a complete, parseable Chrome-trace document of everything recorded
  // so far — this is what the crash handler relies on.
  ASSERT_TRUE(rec.FlushPartial(path, &error)) << error;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.front(), '{');
  while (!content.empty() && content.back() == '\n') content.pop_back();
  EXPECT_EQ(content.back(), '}');
  EXPECT_NE(content.find("trace_test.partial_done"), std::string::npos);

  // The recorder keeps working after a partial flush.
  open_span.End();
  rec.Disable();
}

}  // namespace
}  // namespace nose
