#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "solver/bip.h"
#include "solver/presolve.h"
#include "util/rng.h"

namespace nose {
namespace {

TEST(PresolveTest, SingletonRowBecomesBound) {
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  int x1 = lp.AddVariable(0.0, 1.0, 1.0);
  lp.AddRow(RowType::kLe, 1.0, {{x0, 2.0}});          // x0 <= 0.5
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}, {x1, 1.0}});

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, /*binary_vars=*/{}, &summary);
  EXPECT_EQ(summary.singleton_rows_dropped, 1);
  EXPECT_EQ(summary.bounds_tightened, 1);
  EXPECT_FALSE(summary.infeasible);
  EXPECT_EQ(reduced.num_rows(), 1);
  EXPECT_DOUBLE_EQ(reduced.upper_bound(x0), 0.5);
  EXPECT_DOUBLE_EQ(reduced.upper_bound(x1), 1.0);
}

TEST(PresolveTest, SingletonBoundRoundsForBinaries) {
  // Branch fixings REPLACE bounds, so a fractional tightening on a binary
  // must round to the integral feasible set: x0 <= 0.5 becomes x0 <= 0.
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, -1.0);
  lp.AddRow(RowType::kLe, 0.5, {{x0, 1.0}});

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {x0}, &summary);
  EXPECT_FALSE(summary.infeasible);
  EXPECT_DOUBLE_EQ(reduced.upper_bound(x0), 0.0);
}

TEST(PresolveTest, DuplicateInequalityRowsDeduped) {
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  int x1 = lp.AddVariable(0.0, 1.0, 2.0);
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}, {x1, 1.0}});  // exact duplicate
  // Same coefficients, larger rhs: strictly tighter, dominates the first.
  lp.AddRow(RowType::kGe, 2.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kEq, 1.0, {{x0, 1.0}, {x1, 1.0}});  // eq rows never deduped
  lp.AddRow(RowType::kEq, 1.0, {{x0, 1.0}, {x1, 1.0}});

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {}, &summary);
  EXPECT_EQ(summary.duplicate_rows_dropped, 1);
  EXPECT_EQ(summary.dominated_rows_dropped, 1);
  EXPECT_EQ(reduced.num_rows(), 3);
}

TEST(PresolveTest, PositiveScaledDuplicateRowsDeduped) {
  // 2·(x0 + x1 ≥ 1) bounds the same half-space as x0 + x1 ≥ 1: dropped
  // under the scaled counter, not the byte-exact one.
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  int x1 = lp.AddVariable(0.0, 1.0, 2.0);
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kGe, 2.0, {{x0, 2.0}, {x1, 2.0}});    // 2x scaling
  lp.AddRow(RowType::kGe, 0.25, {{x0, 0.25}, {x1, 0.25}});  // 1/4 scaling

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {}, &summary);
  EXPECT_EQ(summary.duplicate_rows_dropped, 0);
  EXPECT_EQ(summary.scaled_duplicate_rows_dropped, 2);
  EXPECT_EQ(reduced.num_rows(), 1);
}

TEST(PresolveTest, NegativeScalingIsNotADuplicate) {
  // -1·(x0 + x1 ≥ 1) flips the half-space; with the sense unchanged the
  // rows constrain different sets and both must survive.
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  int x1 = lp.AddVariable(0.0, 1.0, 2.0);
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kGe, -1.0, {{x0, -1.0}, {x1, -1.0}});

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {}, &summary);
  EXPECT_EQ(summary.scaled_duplicate_rows_dropped, 0);
  EXPECT_EQ(reduced.num_rows(), 2);
}

TEST(PresolveTest, ScaledCoefficientsWithMismatchedRhsKeepTighter) {
  // Coefficients scale by 2 but the rhs does not: parallel half-spaces with
  // different offsets. 2x0 + 2x1 ≥ 3 means x0 + x1 ≥ 1.5, which contains
  // the ≥ 1 row's half-space — the weaker row is dominated, not a scaled
  // duplicate.
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  int x1 = lp.AddVariable(0.0, 1.0, 2.0);
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kGe, 3.0, {{x0, 2.0}, {x1, 2.0}});

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {}, &summary);
  EXPECT_EQ(summary.scaled_duplicate_rows_dropped, 0);
  EXPECT_EQ(summary.dominated_rows_dropped, 1);
  ASSERT_EQ(reduced.num_rows(), 1);
  EXPECT_DOUBLE_EQ(reduced.row(0).rhs, 3.0);  // the tighter row survives

  // The mirror ≤ pair: the SMALLER normalized rhs is the tighter one.
  LpProblem le;
  int y0 = le.AddVariable(0.0, 4.0, 1.0);
  int y1 = le.AddVariable(0.0, 4.0, 2.0);
  le.AddRow(RowType::kLe, 3.0, {{y0, 1.0}, {y1, 1.0}});
  le.AddRow(RowType::kLe, 4.0, {{y0, 2.0}, {y1, 2.0}});  // y0 + y1 <= 2

  PresolveSummary le_summary;
  LpProblem le_reduced = PresolveForBip(le, {}, &le_summary);
  EXPECT_EQ(le_summary.dominated_rows_dropped, 1);
  ASSERT_EQ(le_reduced.num_rows(), 1);
  EXPECT_DOUBLE_EQ(le_reduced.row(0).rhs, 4.0);
}

TEST(PresolveTest, BoxRedundantRowsDropped) {
  // x0 + x1 ≤ 5 can never bind over [0,1]²; the ≥ 1 cover row can.
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  int x1 = lp.AddVariable(0.0, 1.0, 2.0);
  lp.AddRow(RowType::kLe, 5.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kGe, -7.0, {{x0, 1.0}, {x1, 2.0}});  // min activity 0

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {}, &summary);
  EXPECT_EQ(summary.redundant_rows_dropped, 2);
  ASSERT_EQ(reduced.num_rows(), 1);
  EXPECT_EQ(reduced.row(0).type, RowType::kGe);
  EXPECT_DOUBLE_EQ(reduced.row(0).rhs, 1.0);
}

TEST(PresolveTest, ActivityStrengtheningFixesBinaries) {
  // x0 + x1 + x2 ≤ 1 with x2 forced up by a singleton: the residual
  // activity argument fixes x0 and x1 to zero and the row goes redundant.
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, -1.0);
  int x1 = lp.AddVariable(0.0, 1.0, -1.0);
  int x2 = lp.AddVariable(0.0, 1.0, -1.0);
  lp.AddRow(RowType::kGe, 1.0, {{x2, 1.0}});  // singleton: x2 >= 1
  lp.AddRow(RowType::kLe, 1.0, {{x0, 1.0}, {x1, 1.0}, {x2, 1.0}});

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {x0, x1, x2}, &summary);
  EXPECT_FALSE(summary.infeasible);
  EXPECT_EQ(summary.activity_bounds_tightened, 2);
  EXPECT_DOUBLE_EQ(reduced.upper_bound(x0), 0.0);
  EXPECT_DOUBLE_EQ(reduced.upper_bound(x1), 0.0);
  EXPECT_DOUBLE_EQ(reduced.lower_bound(x2), 1.0);
  EXPECT_EQ(summary.redundant_rows_dropped, 1);
  EXPECT_EQ(reduced.num_rows(), 0);
}

TEST(PresolveTest, ScaledEqualityRowsNeverDeduped) {
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  int x1 = lp.AddVariable(0.0, 1.0, 2.0);
  lp.AddRow(RowType::kEq, 1.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kEq, 2.0, {{x0, 2.0}, {x1, 2.0}});

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {}, &summary);
  EXPECT_EQ(summary.scaled_duplicate_rows_dropped, 0);
  EXPECT_EQ(reduced.num_rows(), 2);
}

TEST(PresolveTest, ConflictingSingletonsFlagInfeasible) {
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 1.0, 1.0);
  lp.AddRow(RowType::kGe, 1.0, {{x0, 1.0}});  // x0 >= 1
  lp.AddRow(RowType::kLe, 0.0, {{x0, 1.0}});  // x0 <= 0

  PresolveSummary summary;
  LpProblem reduced = PresolveForBip(lp, {x0}, &summary);
  EXPECT_TRUE(summary.infeasible);
  // The reduced problem is still constructible (bounds collapsed, not
  // inverted); callers must consult `infeasible` before trusting a solve.
  EXPECT_LE(reduced.lower_bound(x0), reduced.upper_bound(x0));
}

TEST(PresolveTest, EmptyContradictoryRowFlagsInfeasible) {
  LpProblem lp;
  (void)lp.AddVariable(0.0, 1.0, 1.0);
  lp.AddRow(RowType::kGe, 1.0, {});  // 0 >= 1: never satisfiable

  PresolveSummary summary;
  (void)PresolveForBip(lp, {}, &summary);
  EXPECT_TRUE(summary.infeasible);
}

/// Random weighted set-cover BIPs, salted with the row patterns presolve
/// targets (duplicate coverage rows, singleton forcing rows). Presolve
/// on/off must agree on status and optimal objective — the reductions are
/// exact on the integral feasible set.
LpProblem MakeRandomCover(Rng* rng, std::vector<int>* binaries) {
  LpProblem lp;
  const int num_sets = static_cast<int>(rng->UniformRange(6, 14));
  const int num_items = static_cast<int>(rng->UniformRange(4, 10));
  for (int s = 0; s < num_sets; ++s) {
    binaries->push_back(
        lp.AddVariable(0.0, 1.0, 1.0 + static_cast<double>(rng->Uniform(9))));
  }
  for (int i = 0; i < num_items; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int s = 0; s < num_sets; ++s) {
      if (rng->Chance(0.4)) coeffs.emplace_back(s, 1.0);
    }
    if (coeffs.empty()) coeffs.emplace_back(static_cast<int>(rng->Uniform(num_sets)), 1.0);
    lp.AddRow(RowType::kGe, 1.0, coeffs);
    if (rng->Chance(0.3)) lp.AddRow(RowType::kGe, 1.0, coeffs);  // duplicate
    if (rng->Chance(0.3)) {
      // Positive scaling of the same cover row: pass 3's target.
      const double s = 0.5 + static_cast<double>(rng->Uniform(8));
      std::vector<std::pair<int, double>> scaled = coeffs;
      for (auto& [v, c] : scaled) c *= s;
      lp.AddRow(RowType::kGe, s, scaled);
    }
  }
  // A few singleton rows: force some sets in, forbid others.
  for (int s = 0; s < num_sets; ++s) {
    if (rng->Chance(0.15)) lp.AddRow(RowType::kGe, 1.0, {{s, 1.0}});
    if (rng->Chance(0.1)) lp.AddRow(RowType::kLe, 0.0, {{s, 1.0}});
  }
  return lp;
}

TEST(PresolveTest, RandomCoversAgreeWithAndWithoutPresolve) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 7919 + 3);
    std::vector<int> binaries;
    LpProblem lp = MakeRandomCover(&rng, &binaries);

    BipOptions on;
    on.presolve = true;
    on.relative_gap = 0.0;
    BipOptions off = on;
    off.presolve = false;
    BipResult with = SolveBip(lp, binaries, on);
    BipResult without = SolveBip(lp, binaries, off);

    ASSERT_EQ(with.status, without.status) << "seed " << seed;
    if (with.status != BipStatus::kOptimal) continue;
    EXPECT_NEAR(with.objective, without.objective, 1e-6) << "seed " << seed;
  }
}

TEST(PresolveBasisTest, OptimalBasisRoundTripsIntoHotStart) {
  // A small LP solved twice: the second solve has different costs but the
  // same rows, so the captured basis loads and phase 1 is skipped.
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 10.0, 1.0);
  int x1 = lp.AddVariable(0.0, 10.0, 2.0);
  lp.AddRow(RowType::kGe, 4.0, {{x0, 1.0}, {x1, 1.0}});
  lp.AddRow(RowType::kLe, 8.0, {{x0, 2.0}, {x1, 1.0}});

  LpBasis basis;
  LpResult first = lp.Solve({}, 0, 0.0, LpEngine::kSparse, nullptr, &basis);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  ASSERT_FALSE(basis.empty());
  // One status per structural column plus one per inequality slack.
  EXPECT_EQ(basis.status.size(), 4u);

  lp.SetCost(x0, 5.0);
  LpResult hot = lp.Solve({}, 0, 0.0, LpEngine::kSparse, &basis, nullptr);
  LpResult cold = lp.Solve({}, 0, 0.0, LpEngine::kSparse, nullptr, nullptr);
  ASSERT_EQ(hot.status, LpStatus::kOptimal);
  EXPECT_TRUE(hot.hot_started);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);
}

TEST(PresolveBasisTest, MalformedBasisIsRejectedNotTrusted) {
  LpProblem lp;
  int x0 = lp.AddVariable(0.0, 10.0, 1.0);
  int x1 = lp.AddVariable(0.0, 10.0, 2.0);
  lp.AddRow(RowType::kGe, 4.0, {{x0, 1.0}, {x1, 1.0}});

  LpBasis wrong_size;
  wrong_size.status = {2};  // too short for 2 structurals + 1 slack
  LpResult r = lp.Solve({}, 0, 0.0, LpEngine::kSparse, &wrong_size, nullptr);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_FALSE(r.hot_started);

  LpBasis all_basic;
  all_basic.status = {2, 2, 2};  // basic count != row count: singular
  LpResult r2 = lp.Solve({}, 0, 0.0, LpEngine::kSparse, &all_basic, nullptr);
  ASSERT_EQ(r2.status, LpStatus::kOptimal);
  EXPECT_FALSE(r2.hot_started);
  EXPECT_NEAR(r.objective, r2.objective, 1e-9);
}

TEST(PresolveBasisTest, RandomCoverRootBasisReplaysAcrossCostChanges) {
  // The incremental-advisor pattern: capture the root basis of one BIP
  // solve, perturb only the objective, and re-solve with the basis as the
  // root hot start. The selected objective must match a cold re-solve.
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 104729 + 11);
    std::vector<int> binaries;
    LpProblem lp = MakeRandomCover(&rng, &binaries);

    LpBasis root;
    BipOptions capture;
    capture.relative_gap = 0.0;
    capture.capture_root_basis = &root;
    BipResult first = SolveBip(lp, binaries, capture);
    if (first.status != BipStatus::kOptimal || root.empty()) continue;

    for (int v : binaries) lp.SetCost(v, lp.cost(v) + 0.25);
    BipOptions hot;
    hot.relative_gap = 0.0;
    hot.root_basis = &root;
    BipResult warm = SolveBip(lp, binaries, hot);
    BipOptions cold_opts;
    cold_opts.relative_gap = 0.0;
    BipResult cold = SolveBip(lp, binaries, cold_opts);
    ASSERT_EQ(warm.status, cold.status) << "seed " << seed;
    if (warm.status == BipStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace nose
