// Executor edge cases: key-changing updates (delete + reinsert), multi-
// field partition keys, literal predicates, and error propagation.

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "executor/dataset.h"
#include "executor/loader.h"
#include "executor/plan_executor.h"
#include "tests/hotel_fixture.h"
#include "tests/reference_evaluator.h"
#include "util/rng.h"

namespace nose {
namespace {

int64_t I(int64_t v) { return v; }

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ExecutorEdgeTest() : graph_(MakeHotelGraph()), data_(graph_.get()) {
    // Minimal data: 2 hotels, 6 rooms, 4 guests, 8 reservations.
    const char* cities[] = {"Boston", "NYC"};
    for (int64_t h = 0; h < 2; ++h) {
      data_.AddRow("Hotel", {Value(h), Value("H" + std::to_string(h)),
                             Value(std::string(cities[h])),
                             Value(std::string("S")), Value(std::string("A")),
                             Value(std::string("P"))});
    }
    for (int64_t r = 0; r < 6; ++r) {
      data_.AddRow("Room", {Value(r), Value(I(100 + r)),
                            Value(50.0 + 10.0 * static_cast<double>(r)),
                            Value(I(r % 3))});
      data_.AddLink(0, static_cast<size_t>(r % 2), static_cast<size_t>(r));
    }
    for (int64_t g = 0; g < 4; ++g) {
      data_.AddRow("Guest", {Value(g), Value("G" + std::to_string(g)),
                             Value("g" + std::to_string(g))});
    }
    Rng rng(3);
    for (int64_t v = 0; v < 8; ++v) {
      data_.AddRow("Reservation",
                   {Value(v), Value(I(rng.Uniform(100))),
                    Value(I(rng.Uniform(100)))});
      data_.AddLink(1, rng.Uniform(6), static_cast<size_t>(v));
      data_.AddLink(2, rng.Uniform(4), static_cast<size_t>(v));
    }
    for (int64_t p = 0; p < 3; ++p) {
      data_.AddRow("POI", {Value(p), Value("P" + std::to_string(p)),
                           Value("D" + std::to_string(p))});
      data_.AddLink(3, static_cast<size_t>(p % 2), static_cast<size_t>(p));
    }
    data_.AddRow("Amenity", {Value(I(0)), Value(std::string("wifi"))});
    data_.SyncCountsTo(graph_.get());
  }

  std::unique_ptr<EntityGraph> graph_;
  Dataset data_;
};

TEST_F(ExecutorEdgeTest, KeyChangingUpdateRewritesRecords) {
  // rooms-by-rate clustered on RoomRate: updating a rate must move the
  // record within the clustering order.
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  Query q(*path, {{"Room", "RoomID"}, {"Room", "RoomRate"}},
          {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "city"},
           {{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt, "rate"}},
          {});
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("rooms", std::move(q), 5.0).ok());
  auto room = graph_->SingleEntityPath("Room");
  auto upd = Update::MakeUpdate(
      *room, {{"RoomRate", std::nullopt, "newrate"}},
      {{{"Room", "RoomID"}, PredicateOp::kEq, std::nullopt, "room"}});
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE(workload.AddUpdate("reprice", std::move(upd).value(), 1.0).ok());

  Advisor advisor;
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  RecordStore store;
  ASSERT_TRUE(LoadSchema(data_, rec->schema, &store).ok());
  PlanExecutor executor(&store, &rec->schema);

  PlanExecutor::Params qp = {{"city", Value(std::string("Boston"))},
                             {"rate", Value(1000.0)}};
  auto before = executor.ExecuteQuery(rec->query_plans[0].second, qp);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->empty());  // nothing above 1000

  // Reprice room 0 (a Boston room, hotel 0) to 2000.
  PlanExecutor::Params up = {{"room", Value(I(0))}, {"newrate", Value(2000.0)}};
  ASSERT_TRUE(
      executor.ExecuteUpdate(rec->update_plans[0].second, up).ok());

  auto after = executor.ExecuteQuery(rec->query_plans[0].second, qp);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ(std::get<int64_t>((*after)[0][0]), 0);
  EXPECT_DOUBLE_EQ(std::get<double>((*after)[0][1]), 2000.0);

  // The old record must be gone: query the old rate band.
  PlanExecutor::Params old_band = {{"city", Value(std::string("Boston"))},
                                   {"rate", Value(0.0)}};
  auto all = executor.ExecuteQuery(rec->query_plans[0].second, old_band);
  ASSERT_TRUE(all.ok());
  int count0 = 0;
  for (const ValueTuple& row : *all) {
    if (std::get<int64_t>(row[0]) == 0) ++count0;
  }
  EXPECT_EQ(count0, 1);  // exactly one record for room 0
}

TEST_F(ExecutorEdgeTest, MultiFieldPartitionKeyAndLiteralPredicate) {
  // Query anchored by two equality predicates (city + literal floor).
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  Query q(*path, {{"Room", "RoomID"}},
          {{{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "city"},
           {{"Room", "RoomFloor"}, PredicateOp::kEq, Value(I(1)), ""}},
          {});
  ASSERT_TRUE(q.Validate().ok());
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("floor1", std::move(q)).ok());
  Advisor advisor;
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  RecordStore store;
  ASSERT_TRUE(LoadSchema(data_, rec->schema, &store).ok());
  PlanExecutor executor(&store, &rec->schema);

  PlanExecutor::Params params = {{"city", Value(std::string("NYC"))}};
  auto got = executor.ExecuteQuery(rec->query_plans[0].second, params);
  ASSERT_TRUE(got.ok()) << got.status();
  auto want =
      ReferenceEvaluate(data_, workload.FindEntry("floor1")->query(), params);
  EXPECT_EQ(CanonicalRows(*got), CanonicalRows(want));
}

TEST_F(ExecutorEdgeTest, MissingParameterIsReported) {
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("q", MakeFig3Query(*graph_)).ok());
  Advisor advisor;
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok());
  RecordStore store;
  ASSERT_TRUE(LoadSchema(data_, rec->schema, &store).ok());
  PlanExecutor executor(&store, &rec->schema);
  auto got = executor.ExecuteQuery(rec->query_plans[0].second,
                                   {{"city", Value(std::string("Boston"))}});
  EXPECT_FALSE(got.ok());  // ?rate unbound
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorEdgeTest, PlanAgainstWrongSchemaIsReported) {
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("q", MakeFig3Query(*graph_)).ok());
  Advisor advisor;
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok());
  Schema empty;
  RecordStore store;
  PlanExecutor executor(&store, &empty);
  auto got = executor.ExecuteQuery(
      rec->query_plans[0].second,
      {{"city", Value(std::string("Boston"))}, {"rate", Value(0.0)}});
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorEdgeTest, DisconnectRemovesRelationshipRecords) {
  auto path = graph_->ResolvePath("Reservation", {"Guest"});
  Query q(*path, {{"Reservation", "ResID"}},
          {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}}, {});
  Workload workload(graph_.get());
  ASSERT_TRUE(workload.AddQuery("res", std::move(q)).ok());
  auto dis = Update::MakeConnect(graph_.get(), "Guest", "g", "Reservations",
                                 "r", /*disconnect=*/true);
  ASSERT_TRUE(dis.ok());
  ASSERT_TRUE(workload.AddUpdate("dis", std::move(dis).value(), 1.0).ok());
  Advisor advisor;
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  RecordStore store;
  ASSERT_TRUE(LoadSchema(data_, rec->schema, &store).ok());
  PlanExecutor executor(&store, &rec->schema);

  // Find a guest with a reservation, disconnect it, verify it vanished.
  for (int64_t g = 0; g < 4; ++g) {
    PlanExecutor::Params qp = {{"g", Value(g)}};
    auto before = executor.ExecuteQuery(rec->query_plans[0].second, qp);
    ASSERT_TRUE(before.ok());
    if (before->empty()) continue;
    const int64_t res = std::get<int64_t>((*before)[0][0]);
    PlanExecutor::Params dp = {{"g", Value(g)}, {"r", Value(res)}};
    ASSERT_TRUE(
        executor.ExecuteUpdate(rec->update_plans[0].second, dp).ok());
    auto after = executor.ExecuteQuery(rec->query_plans[0].second, qp);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->size(), before->size() - 1);
    return;
  }
  GTEST_SKIP() << "no guest had reservations in this dataset";
}

}  // namespace
}  // namespace nose
