#include <gtest/gtest.h>

#include "model/entity_graph.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

TEST(EntityTest, AutoIdField) {
  Entity e("Guest", 100);
  EXPECT_EQ(e.id_field().name, "GuestID");
  EXPECT_EQ(e.id_field().type, FieldType::kId);
  EXPECT_EQ(e.fields().size(), 1u);
}

TEST(EntityTest, AddAndFindFields) {
  Entity e("Guest", 100);
  ASSERT_TRUE(e.AddField({"GuestName", FieldType::kString, 0, 0}).ok());
  EXPECT_NE(e.FindField("GuestName"), nullptr);
  EXPECT_EQ(e.FindField("Nope"), nullptr);
  // Duplicate field rejected.
  EXPECT_EQ(e.AddField({"GuestName", FieldType::kString, 0, 0}).code(),
            StatusCode::kAlreadyExists);
  // Second ID field rejected.
  EXPECT_EQ(e.AddField({"Other", FieldType::kId, 0, 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(EntityTest, FieldCardinalityDefaultsAndClamps) {
  Entity e("Guest", 100);
  ASSERT_TRUE(e.AddField({"GuestName", FieldType::kString, 0, 0}).ok());
  ASSERT_TRUE(e.AddField({"City", FieldType::kString, 0, 12}).ok());
  ASSERT_TRUE(e.AddField({"Huge", FieldType::kInteger, 0, 100000}).ok());
  ASSERT_TRUE(e.AddField({"Vip", FieldType::kBoolean, 0, 0}).ok());
  EXPECT_EQ(e.FieldCardinality(e.id_field()), 100u);
  EXPECT_EQ(e.FieldCardinality(*e.FindField("GuestName")), 100u);  // derive
  EXPECT_EQ(e.FieldCardinality(*e.FindField("City")), 12u);
  EXPECT_EQ(e.FieldCardinality(*e.FindField("Huge")), 100u);  // clamp
  EXPECT_EQ(e.FieldCardinality(*e.FindField("Vip")), 2u);
}

TEST(EntityGraphTest, HotelModelResolves) {
  auto graph = MakeHotelGraph();
  EXPECT_NE(graph->FindEntity("Hotel"), nullptr);
  EXPECT_NE(graph->FindEntity("Amenity"), nullptr);
  EXPECT_EQ(graph->FindEntity("Motel"), nullptr);
  EXPECT_EQ(graph->relationships().size(), 5u);

  auto field = graph->ResolveField({"Hotel", "HotelCity"});
  ASSERT_TRUE(field.ok());
  EXPECT_EQ((*field)->type, FieldType::kString);
  EXPECT_FALSE(graph->ResolveField({"Hotel", "Zip"}).ok());
  EXPECT_FALSE(graph->ResolveField({"Inn", "HotelCity"}).ok());
}

TEST(EntityGraphTest, PathResolution) {
  auto graph = MakeHotelGraph();
  auto path = graph->ResolvePath("Guest", {"Reservations", "Room", "Hotel"});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->NumEntities(), 4u);
  EXPECT_EQ(path->EntityAt(0), "Guest");
  EXPECT_EQ(path->EntityAt(3), "Hotel");
  EXPECT_EQ(path->IndexOfEntity("Room"), 2);
  EXPECT_EQ(path->IndexOfEntity("POI"), -1);

  // Unknown step.
  EXPECT_FALSE(graph->ResolvePath("Guest", {"Rooms"}).ok());
  // Revisiting an entity is rejected.
  EXPECT_FALSE(
      graph->ResolvePath("Guest", {"Reservations", "Guest"}).ok());
}

TEST(EntityGraphTest, PathReversal) {
  auto graph = MakeHotelGraph();
  auto path = graph->ResolvePath("Guest", {"Reservations", "Room", "Hotel"});
  ASSERT_TRUE(path.ok());
  KeyPath rev = path->Reversed();
  EXPECT_EQ(rev.EntityAt(0), "Hotel");
  EXPECT_EQ(rev.EntityAt(3), "Guest");
  EXPECT_EQ(rev.Reversed(), *path);
}

TEST(EntityGraphTest, SubPath) {
  auto graph = MakeHotelGraph();
  auto path = graph->ResolvePath("Guest", {"Reservations", "Room", "Hotel"});
  ASSERT_TRUE(path.ok());
  KeyPath sub = path->SubPath(1, 3);
  EXPECT_EQ(sub.NumEntities(), 3u);
  EXPECT_EQ(sub.EntityAt(0), "Reservation");
  EXPECT_EQ(sub.EntityAt(2), "Hotel");
  KeyPath single = path->SubPath(2, 2);
  EXPECT_EQ(single.NumEntities(), 1u);
  EXPECT_EQ(single.EntityAt(0), "Room");
}

TEST(EntityGraphTest, StepFanout) {
  auto graph = MakeHotelGraph();
  // Hotel -> Rooms: 10000 rooms / 100 hotels = 100 per hotel.
  auto path = graph->ResolvePath("Hotel", {"Rooms"});
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(graph->StepFanout(path->steps()[0]), 100.0);
  // Reverse: each room has exactly one hotel.
  KeyPath rev = path->Reversed();
  EXPECT_DOUBLE_EQ(graph->StepFanout(rev.steps()[0]), 1.0);
  // M:N with explicit link count: Hotel->POI = 1000 links / 100 hotels.
  auto poi = graph->ResolvePath("Hotel", {"PointsOfInterest"});
  ASSERT_TRUE(poi.ok());
  EXPECT_DOUBLE_EQ(graph->StepFanout(poi->steps()[0]), 10.0);
  EXPECT_DOUBLE_EQ(graph->StepFanout(poi->Reversed().steps()[0]), 2.0);
}

TEST(EntityGraphTest, PathInstanceCount) {
  auto graph = MakeHotelGraph();
  auto path = graph->ResolvePath("Hotel", {"Rooms", "Reservations"});
  ASSERT_TRUE(path.ok());
  // 100 hotels * 100 rooms/hotel * 10 reservations/room = 100k instances.
  EXPECT_DOUBLE_EQ(graph->PathInstanceCount(*path), 100000.0);
  // Direction invariant.
  EXPECT_DOUBLE_EQ(graph->PathInstanceCount(path->Reversed()), 100000.0);
}

TEST(EntityGraphTest, RejectsSelfRelationship) {
  EntityGraph graph;
  ASSERT_TRUE(graph.AddEntity(Entity("A", 10)).ok());
  EXPECT_EQ(graph
                .AddRelationship(
                    {"A", "A", Cardinality::kOneToMany, "next", "prev"})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EntityGraphTest, RejectsDuplicateStepNames) {
  EntityGraph graph;
  ASSERT_TRUE(graph.AddEntity(Entity("A", 10)).ok());
  ASSERT_TRUE(graph.AddEntity(Entity("B", 10)).ok());
  ASSERT_TRUE(graph.AddEntity(Entity("C", 10)).ok());
  ASSERT_TRUE(
      graph.AddRelationship({"A", "B", Cardinality::kOneToMany, "bs", "a"})
          .ok());
  EXPECT_EQ(graph.AddRelationship({"A", "C", Cardinality::kOneToMany, "bs", "a2"})
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(QueryTest, ValidationRules) {
  auto graph = MakeHotelGraph();
  Query q = MakeFig3Query(*graph);
  EXPECT_TRUE(q.Validate().ok());

  // Field off the path.
  {
    auto path = graph->ResolvePath("Guest", {"Reservations"});
    Query bad(*path, {{"Hotel", "HotelCity"}},
              {{{"Guest", "GuestID"}, PredicateOp::kEq, std::nullopt, "g"}},
              {});
    EXPECT_FALSE(bad.Validate().ok());
  }
  // No equality predicate.
  {
    auto path = graph->SingleEntityPath("Guest");
    Query bad(*path, {{"Guest", "GuestName"}},
              {{{"Guest", "GuestName"}, PredicateOp::kGt, std::nullopt, "n"}},
              {});
    EXPECT_FALSE(bad.Validate().ok());
  }
}

TEST(QueryTest, PredicateAccessors) {
  auto graph = MakeHotelGraph();
  Query q = MakeFig3Query(*graph);
  EXPECT_EQ(q.PredicatesOn(3).size(), 1u);  // HotelCity on Hotel
  EXPECT_EQ(q.PredicatesOn(2).size(), 1u);  // RoomRate on Room
  EXPECT_EQ(q.PredicatesOn(0).size(), 0u);
  EXPECT_EQ(q.PredicatesFrom(2).size(), 2u);
  EXPECT_EQ(q.EqPredicatesFrom(2).size(), 1u);
  EXPECT_NE(q.ToString().find("SELECT Guest.GuestName"), std::string::npos);
}

}  // namespace
}  // namespace nose
