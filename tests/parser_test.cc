#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/model_parser.h"
#include "parser/statement_parser.h"
#include "parser/workload_parser.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a.b, c >= 4.5 ?x ? 'hi' # comment\n<=");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("select"));
  EXPECT_TRUE(t[1].Is(TokenType::kIdentifier));
  EXPECT_TRUE(t[2].IsSymbol("."));
  EXPECT_TRUE(t[4].IsSymbol(","));
  EXPECT_TRUE(t[6].IsSymbol(">="));
  EXPECT_EQ(t[7].text, "4.5");
  EXPECT_TRUE(t[8].Is(TokenType::kParam));
  EXPECT_EQ(t[8].text, "x");
  EXPECT_TRUE(t[9].Is(TokenType::kParam));
  EXPECT_EQ(t[9].text, "");
  EXPECT_EQ(t[10].text, "hi");
  EXPECT_TRUE(t[11].IsSymbol("<="));  // comment skipped
  EXPECT_TRUE(t[12].Is(TokenType::kEnd));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

class StatementParserTest : public ::testing::Test {
 protected:
  StatementParserTest() : graph_(MakeHotelGraph()) {}
  std::unique_ptr<EntityGraph> graph_;
};

TEST_F(StatementParserTest, Fig3QueryViaFromPath) {
  auto q = ParseQuery(*graph_,
                      "SELECT Guest.GuestName, Guest.GuestEmail "
                      "FROM Guest.Reservations.Room.Hotel "
                      "WHERE Hotel.HotelCity = ?city AND Room.RoomRate > ?rate");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->path().NumEntities(), 4u);
  EXPECT_EQ(q->select().size(), 2u);
  EXPECT_EQ(q->predicates().size(), 2u);
  EXPECT_EQ(q->predicates()[0].param, "city");
  EXPECT_EQ(q->predicates()[1].op, PredicateOp::kGt);
}

TEST_F(StatementParserTest, Fig3QueryViaWhereChains) {
  // Paper style: the path lives entirely in the WHERE clause.
  auto q = ParseQuery(
      *graph_,
      "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
      "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
      "AND Guest.Reservations.Room.RoomRate > ?rate");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->path().NumEntities(), 4u);
  EXPECT_EQ(q->path().EntityAt(3), "Hotel");
  EXPECT_EQ(q->predicates()[0].field.QualifiedName(), "Hotel.HotelCity");
}

TEST_F(StatementParserTest, StarSelect) {
  auto q = ParseQuery(*graph_,
                      "SELECT Guest.* FROM Guest WHERE Guest.GuestID = ?id");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select().size(), 3u);  // GuestID, GuestName, GuestEmail
}

TEST_F(StatementParserTest, OrderByAndAnonymousParams) {
  auto q = ParseQuery(*graph_,
                      "SELECT Room.RoomNumber FROM Room.Hotel "
                      "WHERE Hotel.HotelID = ? AND Room.RoomRate > ? "
                      "ORDER BY Room.RoomRate");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->order_by().size(), 1u);
  EXPECT_EQ(q->predicates()[0].param, "p1");
  EXPECT_EQ(q->predicates()[1].param, "p2");
}

TEST_F(StatementParserTest, LiteralPredicates) {
  auto q = ParseQuery(*graph_,
                      "SELECT Room.RoomNumber FROM Room.Hotel "
                      "WHERE Hotel.HotelCity = 'Boston' AND Room.RoomFloor = 3");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->predicates()[0].literal.has_value());
  EXPECT_EQ(std::get<std::string>(*q->predicates()[0].literal), "Boston");
  EXPECT_EQ(std::get<int64_t>(*q->predicates()[1].literal), 3);
}

TEST_F(StatementParserTest, BranchingPathRejected) {
  auto q = ParseQuery(*graph_,
                      "SELECT Guest.GuestName FROM Guest.Reservations.Room "
                      "WHERE Room.Hotel.HotelCity = ?c "
                      "AND Room.Amenities.AmenityName = ?a");
  EXPECT_FALSE(q.ok());
}

TEST_F(StatementParserTest, InsertWithConnect) {
  auto u = ParseUpdate(*graph_,
                       "INSERT INTO Reservation SET ResID = ?rid, "
                       "ResEndDate = ?date "
                       "AND CONNECT TO Guest(?guest), Room(?room)");
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->kind(), UpdateKind::kInsert);
  EXPECT_EQ(u->entity(), "Reservation");
  EXPECT_EQ(u->sets().size(), 2u);
  EXPECT_EQ(u->connects().size(), 2u);
  EXPECT_EQ(u->connects()[0].step_name, "Guest");
}

TEST_F(StatementParserTest, InsertRequiresPrimaryKey) {
  auto u = ParseUpdate(*graph_, "INSERT INTO Reservation SET ResEndDate = ?d");
  EXPECT_FALSE(u.ok());
}

TEST_F(StatementParserTest, UpdateWithPathPredicates) {
  auto u = ParseUpdate(*graph_,
                       "UPDATE Reservation FROM Reservation.Guest "
                       "SET ResEndDate = ? WHERE Guest.GuestID = ?guestid");
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->kind(), UpdateKind::kUpdate);
  EXPECT_EQ(u->path().NumEntities(), 2u);
  EXPECT_EQ(u->predicates().size(), 1u);
}

TEST_F(StatementParserTest, DeleteStatement) {
  auto u = ParseUpdate(*graph_, "DELETE FROM Guest WHERE Guest.GuestID = ?g");
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->kind(), UpdateKind::kDelete);
}

TEST_F(StatementParserTest, ConnectDisconnect) {
  auto c = ParseUpdate(*graph_, "CONNECT Guest(?g) TO Reservations(?r)");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->kind(), UpdateKind::kConnect);
  EXPECT_EQ(c->from_param(), "g");
  EXPECT_EQ(c->to_param(), "r");
  auto d = ParseUpdate(*graph_, "DISCONNECT Guest(?g) FROM Reservations(?r)");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind(), UpdateKind::kDisconnect);
}

TEST_F(StatementParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseStatement(*graph_, "FROB the data").ok());
  EXPECT_FALSE(ParseQuery(*graph_, "SELECT Guest.Nope FROM Guest "
                                   "WHERE Guest.GuestID = ?g")
                   .ok());
  EXPECT_FALSE(
      ParseQuery(*graph_, "SELECT Guest.GuestName FROM Motel").ok());
  EXPECT_FALSE(ParseQuery(*graph_,
                          "SELECT Guest.GuestName FROM Guest "
                          "WHERE Guest.GuestID = ?g extra")
                   .ok());
}

TEST(ModelParserTest, RoundTrip) {
  auto graph = ParseModel(R"(
    # A tiny model
    entity Hotel 100 {
      HotelName string
      HotelCity string card 20
      HotelAddress string size 64
    }
    entity Reservation 1000 {
      id ResID
      ResEndDate date card 365
    }
    entity POI 50 {
      POIName string
    }
    relationship Hotel one_to_many Reservation as Reservations / Hotel
    relationship Hotel many_to_many POI as PointsOfInterest / Hotels links 400
  )");
  ASSERT_TRUE(graph.ok()) << graph.status();
  const Entity* hotel = (*graph)->FindEntity("Hotel");
  ASSERT_NE(hotel, nullptr);
  EXPECT_EQ(hotel->count(), 100u);
  EXPECT_EQ(hotel->FindField("HotelCity")->cardinality, 20u);
  EXPECT_EQ(hotel->FindField("HotelAddress")->size, 64u);
  const Entity* res = (*graph)->FindEntity("Reservation");
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->id_field().name, "ResID");
  ASSERT_EQ((*graph)->relationships().size(), 2u);
  EXPECT_EQ((*graph)->relationships()[1].link_count, 400u);
  // Steps resolve.
  EXPECT_TRUE((*graph)->ResolvePath("Hotel", {"PointsOfInterest"}).ok());
}

TEST(ModelParserTest, Errors) {
  EXPECT_FALSE(ParseModel("entity { }").ok());
  EXPECT_FALSE(ParseModel("entity A 10 { F badtype }").ok());
  EXPECT_FALSE(
      ParseModel("entity A 10 {} relationship A one_to_many B").ok());
  EXPECT_FALSE(ParseModel("wibble").ok());
}

TEST(WorkloadParserTest, StatementsAndMixes) {
  auto graph = MakeHotelGraph();
  auto workload = ParseWorkload(*graph, R"(
    statement guests_by_city 10 :
      SELECT Guest.GuestName FROM Guest.Reservations.Room.Hotel
      WHERE Hotel.HotelCity = ?city ;
    statement set_email 2 :
      UPDATE Guest SET GuestEmail = ?email WHERE Guest.GuestID = ?id ;
    weight guests_by_city browsing 7 ;   # browsing mix
  )");
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ((*workload)->entries().size(), 2u);
  const auto def = (*workload)->EntriesIn(Workload::kDefaultMix);
  ASSERT_EQ(def.size(), 2u);
  EXPECT_NEAR(def[0].second, 10.0 / 12.0, 1e-12);
  const auto browsing = (*workload)->EntriesIn("browsing");
  ASSERT_EQ(browsing.size(), 1u);
  EXPECT_DOUBLE_EQ(browsing[0].second, 1.0);
}

TEST(WorkloadParserTest, Errors) {
  auto graph = MakeHotelGraph();
  EXPECT_FALSE(ParseWorkload(*graph, "statement broken : SELECT x ;").ok());
  EXPECT_FALSE(ParseWorkload(*graph, "frob a b ;").ok());
  EXPECT_FALSE(
      ParseWorkload(*graph, "weight nothere mix 1 ;").ok());
}

TEST(ParserRobustnessTest, GarbageInputsFailCleanly) {
  auto graph = MakeHotelGraph();
  const char* inputs[] = {
      "",
      ";;;",
      "SELECT",
      "SELECT FROM WHERE",
      "SELECT Guest. FROM Guest",
      "SELECT Guest.GuestName FROM",
      "SELECT Guest.GuestName FROM Guest WHERE",
      "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID",
      "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ",
      "INSERT INTO",
      "INSERT INTO Guest",
      "UPDATE Guest SET",
      "DELETE FROM",
      "CONNECT Guest TO Reservations",
      "CONNECT Guest(?a) TO",
      "SELECT Guest.GuestName FROM Guest.Reservations.Reservations "
      "WHERE Guest.GuestID = ?g",
      "SELECT * FROM Guest WHERE Guest.GuestID = ?g",
      "((((((((",
      "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?g ORDER",
      "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?g ORDER BY",
  };
  for (const char* input : inputs) {
    auto result = ParseStatement(*graph, input);
    EXPECT_FALSE(result.ok()) << "should reject: " << input;
  }
}

TEST(ParserRobustnessTest, ModelGarbageFailsCleanly) {
  const char* inputs[] = {
      "entity", "entity A", "entity A x {", "entity A 10 { F }",
      "entity A 10 { F string card }", "relationship",
      "relationship A one_to_many", "entity A 10 {} entity A 10 {}",
  };
  for (const char* input : inputs) {
    EXPECT_FALSE(ParseModel(input).ok()) << "should reject: " << input;
  }
}

}  // namespace
}  // namespace nose
