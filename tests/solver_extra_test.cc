// Additional solver behaviors: warm starts, budgets, deadlines, gaps, and
// the sparse-vs-dense-vs-brute-force equivalence property.

#include <gtest/gtest.h>

#include "solver/bip.h"
#include "solver/lp.h"
#include "tests/reference_evaluator.h"
#include "util/rng.h"

namespace nose {
namespace {

TEST(BipWarmStartTest, WarmStartBecomesIncumbent) {
  // min -(a + b) s.t. a + b <= 1: optimum -1. Warm start (0,0) has value 0;
  // the solver must still find the true optimum.
  LpProblem lp;
  int a = lp.AddVariable(0.0, 1.0, -1.0);
  int b = lp.AddVariable(0.0, 1.0, -1.0);
  lp.AddRow(RowType::kLe, 1.0, {{a, 1.0}, {b, 1.0}});
  std::vector<double> warm = {0.0, 0.0};
  BipOptions options;
  options.warm_start = &warm;
  BipResult r = SolveBip(lp, {a, b}, options);
  ASSERT_EQ(r.status, BipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(BipWarmStartTest, ZeroNodeBudgetReturnsWarmStart) {
  LpProblem lp;
  int a = lp.AddVariable(0.0, 1.0, -1.0);
  std::vector<double> warm = {0.0};
  BipOptions options;
  options.warm_start = &warm;
  options.max_nodes = 0;
  BipResult r = SolveBip(lp, {a}, options);
  // Budget exhausted before any node: the warm start survives as the
  // (unproven) answer.
  EXPECT_EQ(r.status, BipStatus::kNodeLimit);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(BipWarmStartTest, NoSolutionWithoutWarmStartAndZeroBudget) {
  LpProblem lp;
  int a = lp.AddVariable(0.0, 1.0, -1.0);
  BipOptions options;
  options.max_nodes = 0;
  BipResult r = SolveBip(lp, {a}, options);
  EXPECT_EQ(r.status, BipStatus::kNoSolution);
}

TEST(LpDeadlineTest, DeadlineReturnsIterationLimit) {
  // A large random LP with an absurdly small deadline must abort cleanly.
  Rng rng(3);
  LpProblem lp;
  const int n = 400;
  for (int v = 0; v < n; ++v) {
    lp.AddVariable(0.0, 1.0, static_cast<double>(rng.UniformRange(-9, 9)));
  }
  for (int r = 0; r < 300; ++r) {
    std::vector<std::pair<int, double>> coeffs;
    for (int k = 0; k < 6; ++k) {
      coeffs.emplace_back(static_cast<int>(rng.Uniform(n)),
                          static_cast<double>(rng.UniformRange(1, 5)));
    }
    lp.AddRow(RowType::kGe, 2.0, std::move(coeffs));
  }
  LpResult r = lp.Solve({}, /*max_iterations=*/0, /*deadline_seconds=*/1e-9);
  EXPECT_EQ(r.status, LpStatus::kIterationLimit);
}

TEST(BipGapTest, LooseGapAcceptsNearOptimal) {
  // Two alternatives with a 0.5% cost difference: a 1% relative gap may
  // stop at either; the result must be within the gap of the optimum.
  LpProblem lp;
  int a = lp.AddVariable(0.0, 1.0, 100.0);
  int b = lp.AddVariable(0.0, 1.0, 100.5);
  lp.AddRow(RowType::kEq, 1.0, {{a, 1.0}, {b, 1.0}});
  BipOptions options;
  options.relative_gap = 0.01;
  BipResult r = SolveBip(lp, {a, b}, options);
  ASSERT_EQ(r.status, BipStatus::kOptimal);
  EXPECT_LE(r.objective, 100.0 * 1.01);
}

TEST(BipGapTest, TightGapFindsExactOptimum) {
  LpProblem lp;
  int a = lp.AddVariable(0.0, 1.0, 100.0);
  int b = lp.AddVariable(0.0, 1.0, 100.5);
  lp.AddRow(RowType::kEq, 1.0, {{a, 1.0}, {b, 1.0}});
  BipOptions options;
  options.relative_gap = 0.0;
  BipResult r = SolveBip(lp, {a, b}, options);
  ASSERT_EQ(r.status, BipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 100.0, 1e-6);
  EXPECT_NEAR(r.x[a], 1.0, 1e-6);
}

TEST(SimplexStressTest, ManyDegenerateFlowRows) {
  // Chains of equality flow constraints (the schema optimizer's structure)
  // with ties everywhere — exercises devex pricing + Bland fallback.
  LpProblem lp;
  const int kChains = 40;
  const int kWidth = 4;
  std::vector<int> prev;
  for (int c = 0; c < kChains; ++c) {
    std::vector<int> layer;
    for (int w = 0; w < kWidth; ++w) {
      layer.push_back(lp.AddVariable(0.0, 1.0, 1.0));  // equal costs: ties
    }
    std::vector<std::pair<int, double>> row;
    for (int v : layer) row.emplace_back(v, 1.0);
    if (prev.empty()) {
      lp.AddRow(RowType::kEq, 1.0, std::move(row));
    } else {
      for (int v : prev) row.emplace_back(v, -1.0);
      lp.AddRow(RowType::kEq, 0.0, std::move(row));
    }
    prev = std::move(layer);
  }
  LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, static_cast<double>(kChains), 1e-5);
}

// ===========================================================================
// Property: on random all-binary instances with integer costs, branch and
// bound over either simplex engine lands on exactly the brute-force
// optimum. Integer costs over a 0/1 assignment sum exactly (both the
// incumbent recompute and the reference accumulate in variable-index
// order), so the comparison is bitwise — any drop-tolerance drift or
// premature optimality claim in a simplex core turns into a hard failure
// here, not a tolerance blur.
// ===========================================================================

LpProblem MakeRandomBinaryProgram(Rng* rng) {
  LpProblem lp;
  const int n = 6 + static_cast<int>(rng->Uniform(7));  // 6..12 binaries
  for (int v = 0; v < n; ++v) {
    lp.AddVariable(0.0, 1.0, static_cast<double>(rng->UniformRange(-10, 20)));
  }
  const int rows = 3 + static_cast<int>(rng->Uniform(6));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> coeffs;
    for (int v = 0; v < n; ++v) {
      if (rng->Chance(0.3)) {
        double c = static_cast<double>(rng->UniformRange(-3, 3));
        if (c == 0.0) c = 1.0;
        coeffs.emplace_back(v, c);
      }
    }
    if (coeffs.empty()) coeffs.emplace_back(0, 1.0);
    // Mostly ≤ rows with generous right-hand sides so a healthy majority
    // of instances stay feasible; the occasional = / ≥ row with a tight
    // rhs still produces infeasible instances, a welcome outcome — both
    // engines must agree on kInfeasible too.
    const double pick = rng->NextDouble();
    RowType type = RowType::kLe;
    double rhs = static_cast<double>(rng->UniformRange(0, 6));
    if (pick > 0.85) {
      type = RowType::kEq;
      rhs = static_cast<double>(rng->UniformRange(-1, 2));
    } else if (pick > 0.6) {
      type = RowType::kGe;
      rhs = static_cast<double>(rng->UniformRange(-4, 2));
    }
    lp.AddRow(type, rhs, std::move(coeffs));
  }
  return lp;
}

TEST(SparseDensePropertyTest, BitwiseMatchesBruteForceOnBothEngines) {
  int feasible_seen = 0;
  int infeasible_seen = 0;
  for (int seed = 0; seed < 60; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 104729 + 7);
    LpProblem lp = MakeRandomBinaryProgram(&rng);
    std::vector<int> binaries(static_cast<size_t>(lp.num_variables()));
    for (int v = 0; v < lp.num_variables(); ++v) {
      binaries[static_cast<size_t>(v)] = v;
    }
    const ReferenceBipResult ref = ReferenceBipMinimize(lp);
    ref.feasible ? ++feasible_seen : ++infeasible_seen;

    double engine_objective[2] = {0.0, 0.0};
    for (LpEngine engine : {LpEngine::kSparse, LpEngine::kDense}) {
      BipOptions options;
      options.absolute_gap = 0.0;
      options.relative_gap = 0.0;
      options.lp_engine = engine;
      const BipResult got = SolveBip(lp, binaries, options);
      if (ref.feasible) {
        ASSERT_EQ(got.status, BipStatus::kOptimal)
            << "seed " << seed << " engine " << LpEngineName(engine);
        EXPECT_EQ(got.objective, ref.objective)
            << "seed " << seed << " engine " << LpEngineName(engine);
      } else {
        EXPECT_EQ(got.status, BipStatus::kInfeasible)
            << "seed " << seed << " engine " << LpEngineName(engine);
      }
      engine_objective[engine == LpEngine::kDense] = got.objective;
    }
    EXPECT_EQ(engine_objective[0], engine_objective[1]) << "seed " << seed;
  }
  // The generator must exercise both outcomes or the property is vacuous.
  EXPECT_GT(feasible_seen, 10);
  EXPECT_GT(infeasible_seen, 5);
}

}  // namespace
}  // namespace nose
