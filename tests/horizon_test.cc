// Multi-period, migration-aware planning (advisor::PlanHorizon +
// optimizer/horizon.h): static-horizon collapse parity, migration-cost
// gating, shared transition pricing, and thread determinism.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "rubis/datagen.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose {
namespace {

rubis::ModelScale TinyScale() {
  rubis::ModelScale scale;
  scale.regions = 4;
  scale.categories = 5;
  scale.users = 100;
  scale.items = 200;
  scale.old_items = 100;
  scale.bids = 1000;
  scale.buynows = 60;
  scale.comments = 200;
  return scale;
}

struct RubisFixture {
  std::unique_ptr<EntityGraph> graph;
  std::unique_ptr<Workload> workload;
};

RubisFixture MakeRubis() {
  RubisFixture f;
  auto graph = rubis::MakeGraph(TinyScale());
  EXPECT_TRUE(graph.ok()) << graph.status();
  f.graph = std::move(graph).value();
  auto workload = rubis::MakeWorkload(*f.graph);
  EXPECT_TRUE(workload.ok()) << workload.status();
  f.workload = std::move(workload).value();
  return f;
}

WorkloadHorizon MakeHorizon(
    const std::vector<std::pair<std::string, double>>& mixes) {
  WorkloadHorizon horizon;
  for (const auto& [mix, duration] : mixes) {
    HorizonWindow window;
    window.label = mix;
    window.mix = mix;
    window.duration = duration;
    horizon.windows.push_back(std::move(window));
  }
  return horizon;
}

TEST(HorizonTest, StaticHorizonCollapsesToSingleWindowRecommend) {
  RubisFixture f = MakeRubis();
  Advisor advisor;

  auto single = advisor.Recommend(*f.workload, Workload::kDefaultMix);
  ASSERT_TRUE(single.ok()) << single.status();

  auto plan = advisor.PlanHorizon(
      *f.workload, MakeHorizon({{"default", 1.0},
                                {"default", 2.0},
                                {"default", 0.5}}));
  ASSERT_TRUE(plan.ok()) << plan.status();

  // W identical windows collapse to ONE single-window solve: zero
  // migrations, and every window byte-identical to Recommend.
  EXPECT_TRUE(plan->collapsed);
  EXPECT_TRUE(plan->transitions.empty());
  EXPECT_EQ(plan->migration_objective, 0.0);
  ASSERT_EQ(plan->windows.size(), 3u);
  for (const HorizonPlan::Window& w : plan->windows) {
    EXPECT_EQ(w.rec.ToString(), single->ToString());
    EXPECT_EQ(w.rec.objective, single->objective);
  }
  EXPECT_EQ(plan->execution_objective, 3.5 * single->objective);
  EXPECT_EQ(plan->total_objective, plan->execution_objective);
}

TEST(HorizonTest, MigrationCostWeightGatesTransitions) {
  RubisFixture f = MakeRubis();
  Advisor advisor;

  // Near-free migrations: every window gets its myopic optimum, and since
  // the bidding- and browsing-optimal schemas differ, the plan migrates.
  HorizonPlanOptions cheap;
  cheap.migration_cost_weight = 1e-9;
  auto adaptive = advisor.PlanHorizon(
      *f.workload, MakeHorizon({{"default", 5.0}, {"browsing", 5.0}}), cheap);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  EXPECT_FALSE(adaptive->collapsed);

  auto bidding = advisor.Recommend(*f.workload, "default");
  auto browsing = advisor.Recommend(*f.workload, "browsing");
  ASSERT_TRUE(bidding.ok());
  ASSERT_TRUE(browsing.ok());
  ASSERT_EQ(adaptive->windows.size(), 2u);
  // With migrations priced at ~0 the joint optimum matches the per-mix
  // optima window by window.
  EXPECT_NEAR(adaptive->windows[0].rec.objective, bidding->objective,
              1e-9 * std::max(1.0, bidding->objective));
  EXPECT_NEAR(adaptive->windows[1].rec.objective, browsing->objective,
              1e-9 * std::max(1.0, browsing->objective));
  if (bidding->schema.ToString() != browsing->schema.ToString()) {
    EXPECT_GE(adaptive->transitions.size(), 1u);
  }

  // Prohibitive migrations: no BUILD is ever scheduled after window 0
  // (drops stay free, per the shared MigrationPlanner pricing, so the
  // later window may still shed column families it stops using). Every
  // window-1 column family must already exist in window 0.
  HorizonPlanOptions pinned;
  pinned.migration_cost_weight = 1e12;
  auto constant = advisor.PlanHorizon(
      *f.workload, MakeHorizon({{"default", 5.0}, {"browsing", 5.0}}), pinned);
  ASSERT_TRUE(constant.ok()) << constant.status();
  for (const HorizonTransition& t : constant->transitions) {
    EXPECT_TRUE(t.builds.empty());
    EXPECT_EQ(t.build_cost_ms, 0.0);
  }
  EXPECT_EQ(constant->migration_objective, 0.0);
  ASSERT_EQ(constant->windows.size(), 2u);
  const Schema& first = constant->windows[0].rec.schema;
  const Schema& second = constant->windows[1].rec.schema;
  for (const ColumnFamily& cf : second.column_families()) {
    EXPECT_NE(first.FindByKey(cf.key()), nullptr) << cf.ToString();
  }
  // The build-pinned plan cannot beat the adapt-freely plan on execution.
  EXPECT_GE(constant->execution_objective,
            adaptive->execution_objective - 1e-9);
}

TEST(HorizonTest, TransitionPricingMatchesSharedBuildCost) {
  RubisFixture f = MakeRubis();
  Advisor advisor;

  HorizonPlanOptions options;
  options.migration_cost_weight = 1e-9;  // force per-window adaptation
  auto plan = advisor.PlanHorizon(
      *f.workload, MakeHorizon({{"default", 5.0}, {"browsing", 5.0}}),
      options);
  ASSERT_TRUE(plan.ok()) << plan.status();

  // Every transition's charges are exactly the shared BuildCostMs /
  // DropCostMs / DualWriteCostMs pricing over its builds and drops — the
  // same functions MigrationPlanner charges, so planned and executed
  // migrations agree.
  double total_ms = 0.0;
  for (const HorizonTransition& t : plan->transitions) {
    MigrationTraffic traffic;
    traffic.update_weight_share =
        UpdateWeightShare(*f.workload, plan->windows[t.at_window].mix);
    traffic.chunk_rows = options.backfill_chunk_rows;
    double expected_build = 0.0;
    double expected_dw = 0.0;
    for (CfId id : t.builds) {
      ASSERT_LT(id, plan->pool.size());
      expected_build += BuildCostMs(plan->pool[id], advisor.cost_model());
      expected_dw +=
          DualWriteCostMs(plan->pool[id], advisor.cost_model(), traffic);
    }
    EXPECT_EQ(t.build_cost_ms, expected_build);
    EXPECT_EQ(t.dual_write_cost_ms, expected_dw);
    EXPECT_EQ(t.drop_cost_ms, static_cast<double>(t.drops.size()) *
                                  DropCostMs(advisor.cost_model()));
    total_ms += expected_build + t.drop_cost_ms + expected_dw;
  }
  EXPECT_EQ(plan->migration_objective,
            options.migration_cost_weight * total_ms);
  EXPECT_EQ(plan->total_objective,
            plan->execution_objective + plan->migration_objective);
}

TEST(HorizonTest, PlanIsByteIdenticalAtAnyThreadCount) {
  RubisFixture f = MakeRubis();

  std::string reference;
  double reference_objective = 0.0;
  for (size_t threads : {1u, 2u, 8u}) {
    AdvisorOptions options;
    options.num_threads = threads;
    Advisor advisor(options);
    auto plan = advisor.PlanHorizon(
        *f.workload, MakeHorizon({{"default", 3.0}, {"browsing", 4.0}}));
    ASSERT_TRUE(plan.ok()) << plan.status();
    std::string rendered = plan->ToString();
    for (const HorizonPlan::Window& w : plan->windows) {
      rendered += w.rec.ToString();
    }
    if (reference.empty()) {
      reference = rendered;
      reference_objective = plan->total_objective;
    } else {
      EXPECT_EQ(rendered, reference) << "threads=" << threads;
      EXPECT_EQ(plan->total_objective, reference_objective)
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace nose
