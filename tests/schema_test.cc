#include <gtest/gtest.h>

#include "schema/column_family.h"
#include "schema/schema.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

class ColumnFamilyTest : public ::testing::Test {
 protected:
  ColumnFamilyTest() : graph_(MakeHotelGraph()) {}
  std::unique_ptr<EntityGraph> graph_;
};

TEST_F(ColumnFamilyTest, CreateValidates) {
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  ASSERT_TRUE(path.ok());
  // Valid.
  EXPECT_TRUE(ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}},
                                   {{"Room", "RoomID"}}, {})
                  .ok());
  // Empty partition key.
  EXPECT_FALSE(
      ColumnFamily::Create(*path, {}, {{"Room", "RoomID"}}, {}).ok());
  // Field off the path.
  EXPECT_FALSE(ColumnFamily::Create(*path, {{"Guest", "GuestID"}}, {}, {})
                   .ok());
  // Unknown field.
  EXPECT_FALSE(
      ColumnFamily::Create(*path, {{"Hotel", "Stars"}}, {}, {}).ok());
  // Duplicate across components.
  EXPECT_FALSE(ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}},
                                    {{"Hotel", "HotelCity"}}, {})
                   .ok());
}

TEST_F(ColumnFamilyTest, CanonicalizationIsDirectionInvariant) {
  auto forward = graph_->ResolvePath("Room", {"Hotel"});
  KeyPath backward = forward->Reversed();
  auto a = ColumnFamily::Create(*forward, {{"Hotel", "HotelCity"}},
                                {{"Room", "RoomID"}}, {{"Room", "RoomRate"}});
  auto b = ColumnFamily::Create(backward, {{"Hotel", "HotelCity"}},
                                {{"Room", "RoomID"}}, {{"Room", "RoomRate"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->key(), b->key());
  EXPECT_TRUE(*a == *b);
}

TEST_F(ColumnFamilyTest, PartitionAndValuesAreSets) {
  auto path = graph_->SingleEntityPath("Hotel");
  auto a = ColumnFamily::Create(
      *path, {{"Hotel", "HotelCity"}, {"Hotel", "HotelState"}}, {},
      {{"Hotel", "HotelName"}, {"Hotel", "HotelPhone"}});
  auto b = ColumnFamily::Create(
      *path, {{"Hotel", "HotelState"}, {"Hotel", "HotelCity"}}, {},
      {{"Hotel", "HotelPhone"}, {"Hotel", "HotelName"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->key(), b->key());
}

TEST_F(ColumnFamilyTest, ClusteringOrderMatters) {
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  auto a = ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}},
                                {{"Room", "RoomRate"}, {"Room", "RoomID"}}, {});
  auto b = ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}},
                                {{"Room", "RoomID"}, {"Room", "RoomRate"}}, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->key(), b->key());
}

TEST_F(ColumnFamilyTest, FieldMembership) {
  auto path = graph_->ResolvePath("Room", {"Hotel"});
  auto cf = ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}},
                                 {{"Room", "RoomID"}}, {{"Room", "RoomRate"}});
  ASSERT_TRUE(cf.ok());
  EXPECT_TRUE(cf->ContainsField({"Hotel", "HotelCity"}));
  EXPECT_TRUE(cf->ContainsField({"Room", "RoomID"}));
  EXPECT_TRUE(cf->ContainsField({"Room", "RoomRate"}));
  EXPECT_FALSE(cf->ContainsField({"Room", "RoomFloor"}));
  EXPECT_TRUE(cf->TouchesEntity("Room"));
  EXPECT_TRUE(cf->TouchesEntity("Hotel"));
  EXPECT_FALSE(cf->TouchesEntity("Guest"));
  EXPECT_EQ(cf->AllFields().size(), 3u);
}

TEST_F(ColumnFamilyTest, EntryCountCappedByKeyCardinality) {
  // A family keyed only by a low-cardinality attribute cannot hold more
  // distinct records than key combinations.
  auto path = graph_->SingleEntityPath("Hotel");
  auto cf = ColumnFamily::Create(*path, {{"Hotel", "HotelCity"}}, {},
                                 {{"Hotel", "HotelName"}});
  ASSERT_TRUE(cf.ok());
  EXPECT_DOUBLE_EQ(cf->EntryCount(), 20.0);
  EXPECT_DOUBLE_EQ(cf->PartitionCount(), 20.0);
}

TEST_F(ColumnFamilyTest, SchemaDeduplicatesAndNames) {
  auto path = graph_->SingleEntityPath("Guest");
  auto cf = ColumnFamily::Create(*path, {{"Guest", "GuestID"}}, {},
                                 {{"Guest", "GuestName"}});
  ASSERT_TRUE(cf.ok());
  Schema schema;
  const std::string n1 = schema.Add(*cf, "guests");
  const std::string n2 = schema.Add(*cf, "other_name");  // duplicate def
  EXPECT_EQ(n1, "guests");
  EXPECT_EQ(n2, "guests");
  EXPECT_EQ(schema.size(), 1u);
  EXPECT_NE(schema.FindByName("guests"), nullptr);
  EXPECT_EQ(schema.FindByName("other_name"), nullptr);
  EXPECT_NE(schema.FindByKey(cf->key()), nullptr);
  EXPECT_EQ(*schema.NameOf(*cf), "guests");
  EXPECT_TRUE(schema.Contains(*cf));
  EXPECT_GT(schema.TotalSizeBytes(), 0.0);

  // Auto names.
  auto cf2 = ColumnFamily::Create(*path, {{"Guest", "GuestID"}}, {},
                                  {{"Guest", "GuestEmail"}});
  const std::string n3 = schema.Add(*cf2);
  EXPECT_EQ(n3, "cf1");
}

}  // namespace
}  // namespace nose
