#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "solver/bip.h"
#include "solver/lp.h"
#include "util/rng.h"

namespace nose {
namespace {

constexpr double kTol = 1e-5;

TEST(LpTest, TrivialBoundsOnlyMinimization) {
  LpProblem lp;
  lp.AddVariable(0.0, 5.0, 2.0);
  lp.AddVariable(1.0, 4.0, -3.0);
  LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.0, kTol);
  EXPECT_NEAR(r.x[1], 4.0, kTol);
  EXPECT_NEAR(r.objective, -12.0, kTol);
}

TEST(LpTest, ClassicTwoVariableProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negative)
  LpProblem lp;
  int x = lp.AddVariable(0.0, LpProblem::kInfinity, -3.0);
  int y = lp.AddVariable(0.0, LpProblem::kInfinity, -5.0);
  lp.AddRow(RowType::kLe, 4.0, {{x, 1.0}});
  lp.AddRow(RowType::kLe, 12.0, {{y, 2.0}});
  lp.AddRow(RowType::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, kTol);
  EXPECT_NEAR(r.x[1], 6.0, kTol);
  EXPECT_NEAR(r.objective, -36.0, kTol);
}

TEST(LpTest, EqualityConstraint) {
  LpProblem lp;
  int x = lp.AddVariable(0.0, 10.0, 1.0);
  int y = lp.AddVariable(0.0, 10.0, 2.0);
  lp.AddRow(RowType::kEq, 7.0, {{x, 1.0}, {y, 1.0}});
  LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 7.0, kTol);
  EXPECT_NEAR(r.x[1], 0.0, kTol);
  EXPECT_NEAR(r.objective, 7.0, kTol);
}

TEST(LpTest, GreaterEqualConstraint) {
  LpProblem lp;
  int x = lp.AddVariable(0.0, LpProblem::kInfinity, 3.0);
  int y = lp.AddVariable(0.0, LpProblem::kInfinity, 4.0);
  lp.AddRow(RowType::kGe, 10.0, {{x, 1.0}, {y, 2.0}});
  lp.AddRow(RowType::kGe, 3.0, {{x, 1.0}});
  LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // x = 3 forced; remaining 7/2 = 3.5 of y is cheaper per unit of coverage.
  EXPECT_NEAR(r.x[0], 3.0, kTol);
  EXPECT_NEAR(r.x[1], 3.5, kTol);
  EXPECT_NEAR(r.objective, 23.0, kTol);
}

TEST(LpTest, InfeasibleDetected) {
  LpProblem lp;
  int x = lp.AddVariable(0.0, 1.0, 1.0);
  lp.AddRow(RowType::kGe, 2.0, {{x, 1.0}});
  LpResult r = lp.Solve();
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(LpTest, UnboundedDetected) {
  LpProblem lp;
  int x = lp.AddVariable(0.0, LpProblem::kInfinity, -1.0);
  lp.AddRow(RowType::kGe, 0.0, {{x, 1.0}});
  LpResult r = lp.Solve();
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(LpTest, NegativeRhsHandled) {
  LpProblem lp;
  int x = lp.AddVariable(-5.0, 5.0, 1.0);
  lp.AddRow(RowType::kLe, -2.0, {{x, 1.0}});
  LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -5.0, kTol);
}

TEST(LpTest, BoundOverridesApplyOnlyToThatSolve) {
  LpProblem lp;
  int x = lp.AddVariable(0.0, 1.0, -1.0);
  LpResult pinned = lp.Solve({{x, 0.0, 0.0}});
  ASSERT_EQ(pinned.status, LpStatus::kOptimal);
  EXPECT_NEAR(pinned.x[0], 0.0, kTol);
  LpResult free = lp.Solve();
  ASSERT_EQ(free.status, LpStatus::kOptimal);
  EXPECT_NEAR(free.x[0], 1.0, kTol);
}

TEST(LpTest, DuplicateCoefficientsAreSummed) {
  LpProblem lp;
  int x = lp.AddVariable(0.0, 10.0, 1.0);
  lp.AddRow(RowType::kGe, 6.0, {{x, 1.0}, {x, 2.0}});
  LpResult r = lp.Solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, kTol);
}

// ---------------------------------------------------------------------------
// BIP tests
// ---------------------------------------------------------------------------

TEST(BipTest, SimpleKnapsack) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5 (binary) -> a=1, b=1.
  LpProblem lp;
  int a = lp.AddVariable(0.0, 1.0, -5.0);
  int b = lp.AddVariable(0.0, 1.0, -4.0);
  int c = lp.AddVariable(0.0, 1.0, -3.0);
  lp.AddRow(RowType::kLe, 5.0, {{a, 2.0}, {b, 3.0}, {c, 1.0}});
  BipResult r = SolveBip(lp, {a, b, c});
  ASSERT_EQ(r.status, BipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -9.0, kTol);
  EXPECT_NEAR(r.x[a], 1.0, kTol);
  EXPECT_NEAR(r.x[b], 1.0, kTol);
  EXPECT_NEAR(r.x[c], 0.0, kTol);
}

TEST(BipTest, InfeasibleBinaryProblem) {
  LpProblem lp;
  int a = lp.AddVariable(0.0, 1.0, 1.0);
  int b = lp.AddVariable(0.0, 1.0, 1.0);
  lp.AddRow(RowType::kEq, 1.5, {{a, 2.0}, {b, 4.0}});  // no 0/1 combination
  BipResult r = SolveBip(lp, {a, b});
  EXPECT_EQ(r.status, BipStatus::kInfeasible);
}

TEST(BipTest, ImplicationConstraints) {
  // Mimics NoSE linking: edge <= cf, choose exactly one edge.
  LpProblem lp;
  int e1 = lp.AddVariable(0.0, 1.0, 3.0);
  int e2 = lp.AddVariable(0.0, 1.0, 5.0);
  int cf1 = lp.AddVariable(0.0, 1.0, 4.0);  // maintenance cost makes e2 win
  int cf2 = lp.AddVariable(0.0, 1.0, 1.0);
  lp.AddRow(RowType::kEq, 1.0, {{e1, 1.0}, {e2, 1.0}});
  lp.AddRow(RowType::kLe, 0.0, {{e1, 1.0}, {cf1, -1.0}});
  lp.AddRow(RowType::kLe, 0.0, {{e2, 1.0}, {cf2, -1.0}});
  BipResult r = SolveBip(lp, {e1, e2, cf1, cf2});
  ASSERT_EQ(r.status, BipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, kTol);
  EXPECT_NEAR(r.x[e2], 1.0, kTol);
  EXPECT_NEAR(r.x[cf2], 1.0, kTol);
}

// Brute force over all 0/1 assignments for cross-checking.
double BruteForceBip(const LpProblem& lp, int n, bool* feasible) {
  double best = LpProblem::kInfinity;
  *feasible = false;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<std::tuple<int, double, double>> fix;
    for (int j = 0; j < n; ++j) {
      const double v = (mask >> j) & 1 ? 1.0 : 0.0;
      fix.emplace_back(j, v, v);
    }
    // With all variables fixed the LP solve is a feasibility check.
    LpResult r = lp.Solve(fix);
    if (r.status == LpStatus::kOptimal) {
      *feasible = true;
      best = std::min(best, r.objective);
    }
  }
  return best;
}

class RandomBipTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBipTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int n = 3 + static_cast<int>(rng.Uniform(8));  // 3..10 binaries
  LpProblem lp;
  for (int j = 0; j < n; ++j) {
    lp.AddVariable(0.0, 1.0, rng.UniformRange(-20, 20));
  }
  const int rows = 1 + static_cast<int>(rng.Uniform(6));
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < n; ++j) {
      if (rng.Chance(0.5)) {
        coeffs.emplace_back(j, static_cast<double>(rng.UniformRange(-5, 5)));
      }
    }
    if (coeffs.empty()) coeffs.emplace_back(0, 1.0);
    const RowType type = static_cast<RowType>(rng.Uniform(3));
    double rhs = static_cast<double>(rng.UniformRange(-4, 8));
    if (type == RowType::kEq) {
      // Make equality rows satisfiable reasonably often: use the row value
      // of a random 0/1 point as the rhs.
      double v = 0.0;
      for (const auto& [j, c] : coeffs) {
        if (rng.Chance(0.5)) v += c;
        (void)j;
      }
      rhs = v;
    }
    lp.AddRow(type, rhs, coeffs);
  }

  std::vector<int> binaries(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) binaries[static_cast<size_t>(j)] = j;
  BipResult bb = SolveBip(lp, binaries);

  bool feasible = false;
  const double brute = BruteForceBip(lp, n, &feasible);
  if (!feasible) {
    EXPECT_EQ(bb.status, BipStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(bb.status, BipStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(bb.objective, brute, 1e-4) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBipTest, ::testing::Range(0, 60));

// Random LPs must satisfy their own constraints at the reported optimum.
class RandomLpFeasibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpFeasibilityTest, SolutionSatisfiesConstraints) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  const int n = 2 + static_cast<int>(rng.Uniform(10));
  LpProblem lp;
  for (int j = 0; j < n; ++j) {
    const double lb = static_cast<double>(rng.UniformRange(-3, 0));
    const double ub = lb + static_cast<double>(rng.UniformRange(1, 6));
    lp.AddVariable(lb, ub, static_cast<double>(rng.UniformRange(-10, 10)));
  }
  struct RowCopy {
    RowType type;
    double rhs;
    std::vector<std::pair<int, double>> coeffs;
  };
  std::vector<RowCopy> rows;
  const int m = 1 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < m; ++i) {
    RowCopy row;
    for (int j = 0; j < n; ++j) {
      if (rng.Chance(0.6)) {
        row.coeffs.emplace_back(j, static_cast<double>(rng.UniformRange(-4, 4)));
      }
    }
    if (row.coeffs.empty()) row.coeffs.emplace_back(0, 1.0);
    row.type = static_cast<RowType>(rng.Uniform(2));  // only Le / Ge
    row.rhs = static_cast<double>(rng.UniformRange(-10, 10));
    rows.push_back(row);
    lp.AddRow(row.type, row.rhs, row.coeffs);
  }
  LpResult r = lp.Solve();
  if (r.status != LpStatus::kOptimal) return;  // infeasible is acceptable
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(r.x[static_cast<size_t>(j)], lp.lower_bound(j) - kTol);
    EXPECT_LE(r.x[static_cast<size_t>(j)], lp.upper_bound(j) + kTol);
  }
  for (const auto& row : rows) {
    double lhs = 0.0;
    std::vector<double> sum(static_cast<size_t>(n), 0.0);
    for (const auto& [j, c] : row.coeffs) sum[static_cast<size_t>(j)] += c;
    for (int j = 0; j < n; ++j) lhs += sum[static_cast<size_t>(j)] * r.x[static_cast<size_t>(j)];
    if (row.type == RowType::kLe) {
      EXPECT_LE(lhs, row.rhs + 1e-4);
    } else {
      EXPECT_GE(lhs, row.rhs - 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpFeasibilityTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace nose
