#ifndef NOSE_TESTS_HOTEL_FIXTURE_H_
#define NOSE_TESTS_HOTEL_FIXTURE_H_

#include <cassert>
#include <memory>

#include "model/entity_graph.h"
#include "workload/query.h"

namespace nose {

/// Builds the paper's hotel-booking conceptual model (Fig. 1): six entity
/// sets with the relationships Hotel-Room, Room-Reservation,
/// Guest-Reservation, Hotel-POI (M:N) and Room-Amenity (M:N).
inline std::unique_ptr<EntityGraph> MakeHotelGraph() {
  auto graph = std::make_unique<EntityGraph>();

  auto add_entity = [&](const char* name, uint64_t count,
                        std::vector<Field> fields, const char* id_name = "") {
    Entity e(name, count, id_name);
    for (Field& f : fields) {
      Status s = e.AddField(std::move(f));
      assert(s.ok());
      (void)s;
    }
    Status s = graph->AddEntity(std::move(e));
    assert(s.ok());
    (void)s;
  };

  add_entity("Hotel", 100,
             {{"HotelName", FieldType::kString, 0, 0},
              {"HotelCity", FieldType::kString, 0, 20},
              {"HotelState", FieldType::kString, 0, 10},
              {"HotelAddress", FieldType::kString, 64, 0},
              {"HotelPhone", FieldType::kString, 16, 0}});
  add_entity("Room", 10000,
             {{"RoomNumber", FieldType::kInteger, 0, 500},
              {"RoomRate", FieldType::kFloat, 0, 100},
              {"RoomFloor", FieldType::kInteger, 0, 20}});
  add_entity("Reservation", 100000,
             {{"ResStartDate", FieldType::kDate, 0, 365},
              {"ResEndDate", FieldType::kDate, 0, 365}},
             "ResID");
  add_entity("Guest", 50000,
             {{"GuestName", FieldType::kString, 0, 0},
              {"GuestEmail", FieldType::kString, 0, 0}});
  add_entity("POI", 500,
             {{"POIName", FieldType::kString, 0, 0},
              {"POIDescription", FieldType::kString, 128, 0}});
  add_entity("Amenity", 50, {{"AmenityName", FieldType::kString, 0, 0}});

  auto add_rel = [&](Relationship rel) {
    Status s = graph->AddRelationship(std::move(rel));
    assert(s.ok());
    (void)s;
  };
  add_rel({"Hotel", "Room", Cardinality::kOneToMany, "Rooms", "Hotel"});
  add_rel({"Room", "Reservation", Cardinality::kOneToMany, "Reservations",
           "Room"});
  add_rel({"Guest", "Reservation", Cardinality::kOneToMany, "Reservations",
           "Guest"});
  add_rel({"Hotel", "POI", Cardinality::kManyToMany, "PointsOfInterest",
           "Hotels", 1000});
  add_rel({"Room", "Amenity", Cardinality::kManyToMany, "Amenities", "Rooms",
           30000});
  return graph;
}

/// The paper's Fig. 3 query: guests with reservations in a given city above
/// a given room rate.
inline Query MakeFig3Query(const EntityGraph& graph) {
  auto path = graph.ResolvePath("Guest", {"Reservations", "Room", "Hotel"});
  assert(path.ok());
  std::vector<FieldRef> select = {{"Guest", "GuestName"},
                                  {"Guest", "GuestEmail"}};
  std::vector<Predicate> preds = {
      {{"Hotel", "HotelCity"}, PredicateOp::kEq, std::nullopt, "city"},
      {{"Room", "RoomRate"}, PredicateOp::kGt, std::nullopt, "rate"}};
  return Query(std::move(path).value(), std::move(select), std::move(preds),
               {});
}

}  // namespace nose

#endif  // NOSE_TESTS_HOTEL_FIXTURE_H_
