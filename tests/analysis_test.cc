// Tests for the static-analysis layer: lint passes over models/workloads
// (analysis/lint.h) and invariant checks over advisor output
// (analysis/invariants.h). Fixture files live in workloads/ (path baked in
// as NOSE_WORKLOADS_DIR): broken.{model,workload} is the deliberately
// defective pair, hotel/rubis are the clean paper workloads.

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "analysis/antipatterns.h"
#include "analysis/invariants.h"
#include "analysis/lint.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"
#include "randwl/random_workload.h"
#include "schema/column_family.h"
#include "tests/hotel_fixture.h"

namespace nose {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct ParsedFixture {
  std::unique_ptr<EntityGraph> graph;
  std::unique_ptr<Workload> workload;
};

ParsedFixture LoadFixture(const std::string& stem) {
  const std::string dir = NOSE_WORKLOADS_DIR;
  ParsedFixture out;
  auto graph = ParseModel(ReadFileOrDie(dir + "/" + stem + ".model"));
  EXPECT_TRUE(graph.ok()) << graph.status();
  out.graph = std::move(graph).value();
  auto workload =
      ParseWorkload(*out.graph, ReadFileOrDie(dir + "/" + stem + ".workload"));
  EXPECT_TRUE(workload.ok()) << workload.status();
  out.workload = std::move(workload).value();
  return out;
}

std::set<std::string> Codes(const std::vector<Diagnostic>& diags) {
  std::set<std::string> out;
  for (const Diagnostic& d : diags) out.insert(d.code);
  return out;
}

const Diagnostic* FindCode(const std::vector<Diagnostic>& diags,
                           const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Diagnostic plumbing
// ---------------------------------------------------------------------------

TEST(DiagnosticTest, RendersCompilerStyle) {
  Diagnostic d{"NOSE-E003", Severity::kError, {"hotel.workload", 12},
               "range predicate on boolean field", "use = or !="};
  EXPECT_EQ(d.ToString(),
            "hotel.workload:12: error: range predicate on boolean field "
            "[NOSE-E003]\n  note: use = or !=");
  Diagnostic bare{"NOSE-I001", Severity::kError, {}, "plan missing", ""};
  EXPECT_EQ(bare.ToString(), "error: plan missing [NOSE-I001]");
}

TEST(DiagnosticTest, SeverityHelpers) {
  std::vector<Diagnostic> diags{
      {"NOSE-W001", Severity::kWarning, {}, "w", ""},
      {"NOSE-E001", Severity::kError, {}, "e", ""},
      {"NOSE-W004", Severity::kNote, {}, "n", ""},
  };
  EXPECT_TRUE(HasErrors(diags));
  EXPECT_EQ(CountSeverity(diags, Severity::kError), 1u);
  EXPECT_EQ(CountSeverity(diags, Severity::kWarning), 1u);
  EXPECT_EQ(CountSeverity(diags, Severity::kNote), 1u);
  diags.erase(diags.begin() + 1);
  EXPECT_FALSE(HasErrors(diags));
}

TEST(DiagnosticTest, SortOrdersByFileLineCode) {
  std::vector<Diagnostic> diags{
      {"NOSE-W002", Severity::kWarning, {"b.model", 3}, "x", ""},
      {"NOSE-W001", Severity::kWarning, {"a.model", 9}, "y", ""},
      {"NOSE-E003", Severity::kError, {"a.model", 2}, "z", ""},
  };
  SortDiagnostics(&diags);
  EXPECT_EQ(diags[0].code, "NOSE-E003");
  EXPECT_EQ(diags[1].code, "NOSE-W001");
  EXPECT_EQ(diags[2].code, "NOSE-W002");
}

// ---------------------------------------------------------------------------
// Lint: clean fixtures
// ---------------------------------------------------------------------------

TEST(LintTest, HotelFixtureHasNoErrors) {
  ParsedFixture f = LoadFixture("hotel");
  const std::vector<Diagnostic> diags = LintAll(*f.workload);
  EXPECT_FALSE(HasErrors(diags)) << FormatDiagnostics(diags);
}

TEST(LintTest, RubisFixtureHasNoErrors) {
  ParsedFixture f = LoadFixture("rubis");
  const std::vector<Diagnostic> diags = LintAll(*f.workload);
  EXPECT_FALSE(HasErrors(diags)) << FormatDiagnostics(diags);
}

TEST(LintTest, HotelReadsOnlyMixReportsGapsAsNotes) {
  // hotel.workload's reads_only mix deliberately omits the two writes;
  // that must surface as NOSE-W004 at note severity, never as an error.
  ParsedFixture f = LoadFixture("hotel");
  const std::vector<Diagnostic> diags = LintWorkload(*f.workload);
  const Diagnostic* gap = FindCode(diags, "NOSE-W004");
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->severity, Severity::kNote);
}

// ---------------------------------------------------------------------------
// Lint: the broken fixture
// ---------------------------------------------------------------------------

TEST(LintTest, BrokenFixtureReportsAllExpectedCodes) {
  ParsedFixture f = LoadFixture("broken");
  const LintSources sources{"broken.model", "broken.workload"};
  const std::vector<Diagnostic> diags = LintAll(*f.workload, sources);
  EXPECT_TRUE(HasErrors(diags));

  const std::set<std::string> codes = Codes(diags);
  EXPECT_TRUE(codes.count("NOSE-E003"));  // boolean range + string literal
  EXPECT_TRUE(codes.count("NOSE-E004"));  // negative weight
  EXPECT_TRUE(codes.count("NOSE-W001"));  // Ghost unreachable
  EXPECT_TRUE(codes.count("NOSE-W002"));  // Room.RoomFloor unused
  EXPECT_TRUE(codes.count("NOSE-W003"));  // RoomNumber write never read
  EXPECT_TRUE(codes.count("NOSE-W005"));  // cardinality > count; inverted 1:N
  EXPECT_GE(codes.size(), 6u) << FormatDiagnostics(diags);
}

TEST(LintTest, BrokenFixtureDiagnosticsCarrySourceLocations) {
  ParsedFixture f = LoadFixture("broken");
  const LintSources sources{"broken.model", "broken.workload"};
  const std::vector<Diagnostic> diags = LintAll(*f.workload, sources);
  for (const Diagnostic& d : diags) {
    EXPECT_TRUE(d.location.IsKnown()) << d.ToString();
    EXPECT_GT(d.location.line, 0) << d.ToString();
  }
  // Spot-check exact lines: the boolean-range query starts on line 3 of
  // broken.workload; entity Ghost is declared on line 13 of broken.model.
  const Diagnostic* range = FindCode(diags, "NOSE-E003");
  ASSERT_NE(range, nullptr);
  EXPECT_EQ(range->location.file, "broken.workload");
  EXPECT_EQ(range->location.line, 3);
  const Diagnostic* ghost = FindCode(diags, "NOSE-W001");
  ASSERT_NE(ghost, nullptr);
  EXPECT_EQ(ghost->location.file, "broken.model");
  EXPECT_EQ(ghost->location.line, 13);
}

// ---------------------------------------------------------------------------
// Lint: programmatic edge cases
// ---------------------------------------------------------------------------

TEST(LintTest, EmptyWorkloadIsAnError) {
  auto graph = MakeHotelGraph();
  Workload workload(graph.get());
  const std::vector<Diagnostic> diags = LintWorkload(workload);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "NOSE-E005");
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintTest, CleanModelProducesNoModelDiagnostics) {
  auto graph = MakeHotelGraph();
  const std::vector<Diagnostic> diags = LintModel(*graph);
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(LintTest, IntegerLiteralOnIntegerFieldIsFine) {
  // rubis relies on `Category.Dummy = 1`; the literal type check must not
  // fire for an integer literal against an integer field.
  auto parsed = ParseModel(
      "entity E 10 { F integer }");
  ASSERT_TRUE(parsed.ok());
  auto workload = ParseWorkload(
      **parsed, "statement q 1 : SELECT E.F FROM E WHERE E.F = 1;");
  ASSERT_TRUE(workload.ok()) << workload.status();
  const std::vector<Diagnostic> diags = LintWorkload(**workload);
  EXPECT_EQ(FindCode(diags, "NOSE-E003"), nullptr) << FormatDiagnostics(diags);
}

TEST(LintTest, ConnectTargetCountsAsReachable) {
  // An entity referenced only as an INSERT's CONNECT TO target is used by
  // the workload: NOSE-W001 must not fire for it (rubis's Region pattern).
  ParsedFixture f = LoadFixture("hotel");
  const std::vector<Diagnostic> diags = LintWorkload(*f.workload);
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.code, "NOSE-W001") << d.ToString();
  }
}

// ---------------------------------------------------------------------------
// Invariants: clean recommendations audit clean
// ---------------------------------------------------------------------------

Recommendation RecommendHotel(const Workload& workload,
                              const std::string& mix = "default") {
  Advisor advisor;
  auto rec = advisor.Recommend(workload, mix);
  EXPECT_TRUE(rec.ok()) << rec.status();
  return std::move(rec).value();
}

RecommendationView ViewOf(const Recommendation& rec) {
  return RecommendationView{&rec.schema, &rec.query_plans, &rec.update_plans,
                           rec.objective, rec.solve_proven};
}

TEST(InvariantsTest, HotelRecommendationPassesAudit) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  const std::vector<Diagnostic> diags =
      AuditRecommendation(*f.workload, "default", ViewOf(rec));
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
  EXPECT_TRUE(VerifyRecommendation(*f.workload, "default", ViewOf(rec)).ok());
}

TEST(InvariantsTest, RubisRecommendationPassesAuditInBothMixes) {
  ParsedFixture f = LoadFixture("rubis");
  for (const std::string mix : {"default", "browsing"}) {
    Recommendation rec = RecommendHotel(*f.workload, mix);
    const std::vector<Diagnostic> diags =
        AuditRecommendation(*f.workload, mix, ViewOf(rec));
    EXPECT_TRUE(diags.empty()) << mix << ":\n" << FormatDiagnostics(diags);
  }
}

// ---------------------------------------------------------------------------
// Invariants: tampered recommendations are caught
// ---------------------------------------------------------------------------

TEST(InvariantsTest, MissingQueryPlanIsI001) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  std::vector<std::pair<std::string, QueryPlan>> truncated(
      rec.query_plans.begin() + 1, rec.query_plans.end());
  RecommendationView view = ViewOf(rec);
  view.query_plans = &truncated;
  const std::vector<Diagnostic> diags =
      AuditRecommendation(*f.workload, "default", view);
  ASSERT_NE(FindCode(diags, "NOSE-I001"), nullptr) << FormatDiagnostics(diags);
  EXPECT_FALSE(VerifyRecommendation(*f.workload, "default", view).ok());
}

TEST(InvariantsTest, WrongObjectiveIsI006) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  RecommendationView view = ViewOf(rec);
  view.objective = rec.objective * 2.0 + 1.0;
  const std::vector<Diagnostic> diags =
      AuditRecommendation(*f.workload, "default", view);
  ASSERT_NE(FindCode(diags, "NOSE-I006"), nullptr) << FormatDiagnostics(diags);
}

TEST(InvariantsTest, ForeignColumnFamilyIsI004) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  // Audit against an empty schema: every plan step reads a foreign CF and
  // every modified CF check trivially passes (no CFs to maintain).
  Schema empty;
  RecommendationView view = ViewOf(rec);
  view.schema = &empty;
  const std::vector<Diagnostic> diags =
      AuditRecommendation(*f.workload, "default", view);
  ASSERT_NE(FindCode(diags, "NOSE-I004"), nullptr) << FormatDiagnostics(diags);
}

TEST(InvariantsTest, BrokenStepChainIsI002) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  ASSERT_FALSE(rec.query_plans.empty());
  QueryPlan tampered = rec.query_plans[0].second;
  ASSERT_FALSE(tampered.steps.empty());
  tampered.steps[0].first = false;
  const std::vector<Diagnostic> diags =
      CheckQueryPlan(tampered, rec.schema, "tampered");
  ASSERT_NE(FindCode(diags, "NOSE-I002"), nullptr) << FormatDiagnostics(diags);
}

TEST(InvariantsTest, DroppedPredicateIsI003) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  // guests_by_city applies two predicates; erase whatever the first step
  // pushed or filtered and the partition count must break.
  for (auto& [name, plan] : rec.query_plans) {
    if (name != "guests_by_city") continue;
    QueryPlan tampered = plan;
    for (PlanStep& step : tampered.steps) {
      step.access.filters.clear();
      step.access.pushed_range.reset();
    }
    const std::vector<Diagnostic> diags =
        CheckQueryPlan(tampered, rec.schema, "tampered");
    EXPECT_NE(FindCode(diags, "NOSE-I003"), nullptr)
        << FormatDiagnostics(diags);
    return;
  }
  FAIL() << "guests_by_city plan not found";
}

TEST(InvariantsTest, UnboundPartitionKeyIsI007) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  ASSERT_FALSE(rec.query_plans.empty());
  QueryPlan tampered = rec.query_plans[0].second;
  ASSERT_FALSE(tampered.steps.empty());
  // Claiming ID-bound keys on the opening step is always a violation, and
  // dropping its partition predicates unbinds the partition key.
  tampered.steps[0].access.partition_preds.clear();
  const std::vector<Diagnostic> diags =
      CheckQueryPlan(tampered, rec.schema, "tampered");
  ASSERT_NE(FindCode(diags, "NOSE-I007"), nullptr) << FormatDiagnostics(diags);
}

TEST(InvariantsTest, MissingMaintenancePartIsI005) {
  ParsedFixture f = LoadFixture("hotel");
  Recommendation rec = RecommendHotel(*f.workload);
  std::vector<std::pair<std::string, UpdatePlan>> gutted = rec.update_plans;
  bool removed_part = false;
  for (auto& [name, plan] : gutted) {
    if (!plan.parts.empty()) {
      plan.parts.clear();
      removed_part = true;
      break;
    }
  }
  ASSERT_TRUE(removed_part) << "expected an update plan with parts";
  RecommendationView view = ViewOf(rec);
  view.update_plans = &gutted;
  const std::vector<Diagnostic> diags =
      AuditRecommendation(*f.workload, "default", view);
  ASSERT_NE(FindCode(diags, "NOSE-I005"), nullptr) << FormatDiagnostics(diags);
}

// ---------------------------------------------------------------------------
// Lint: random workloads (fuzz the passes, no false errors)
// ---------------------------------------------------------------------------

TEST(LintTest, RandomWorkloadsLintWithoutFalseErrors) {
  // The generator only emits well-formed statements, so any NOSE-E finding
  // over its output is a false positive (and any crash a lint bug).
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    randwl::GeneratorOptions options;
    options.seed = seed;
    auto generated = randwl::Generate(options);
    ASSERT_TRUE(generated.ok()) << "seed " << seed << ": "
                                << generated.status();
    const std::vector<Diagnostic> diags = LintAll(*generated->workload);
    for (const Diagnostic& d : diags) {
      EXPECT_NE(d.severity, Severity::kError)
          << "seed " << seed << ": " << d.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Anti-pattern analyses (NOSE-S001..S005)
// ---------------------------------------------------------------------------

ColumnFamily MakeCf(const EntityGraph* graph, const std::string& entity,
                    std::vector<FieldRef> pk, std::vector<FieldRef> ck,
                    std::vector<FieldRef> values) {
  auto cf = ColumnFamily::Create(KeyPath(graph, entity, {}), std::move(pk),
                                 std::move(ck), std::move(values));
  EXPECT_TRUE(cf.ok()) << cf.status();
  return std::move(cf).value();
}

struct HandBuiltView {
  Schema schema;
  std::vector<std::pair<std::string, UpdatePlan>> update_plans;

  RecommendationView View() const {
    RecommendationView v;
    v.schema = &schema;
    v.update_plans = &update_plans;
    return v;
  }
};

TEST(AntipatternTest, UnboundedPartitionIsS001) {
  auto graph = MakeHotelGraph();
  HandBuiltView hb;
  // 10000 rooms over 20 floors: 500 records per partition.
  hb.schema.Add(MakeCf(graph.get(), "Room", {{"Room", "RoomFloor"}},
                       {{"Room", "RoomID"}}, {{"Room", "RoomRate"}}));
  Workload workload(graph.get());
  AntipatternOptions options;
  options.max_partition_entries = 100.0;
  const std::vector<Diagnostic> diags = AnalyzeRecommendation(
      workload, "default", hb.View(), /*candidate_pool_size=*/0, options);
  const Diagnostic* d = FindCode(diags, "NOSE-S001");
  ASSERT_NE(d, nullptr) << FormatDiagnostics(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  // Raising the limit past 500 clears it.
  options.max_partition_entries = 1000.0;
  EXPECT_EQ(FindCode(AnalyzeRecommendation(workload, "default", hb.View(), 0,
                                           options),
                     "NOSE-S001"),
            nullptr);
}

TEST(AntipatternTest, WriteFanoutIsS002) {
  auto graph = MakeHotelGraph();
  HandBuiltView hb;
  UpdatePlan plan;
  plan.parts.resize(3);
  hb.update_plans.emplace_back("update_room", plan);
  Workload workload(graph.get());
  AntipatternOptions options;
  options.write_fanout_threshold = 3;
  const std::vector<Diagnostic> diags = AnalyzeRecommendation(
      workload, "default", hb.View(), 0, options);
  const Diagnostic* d = FindCode(diags, "NOSE-S002");
  ASSERT_NE(d, nullptr) << FormatDiagnostics(diags);
  EXPECT_NE(d->message.find("update_room"), std::string::npos);
  options.write_fanout_threshold = 4;
  EXPECT_EQ(FindCode(AnalyzeRecommendation(workload, "default", hb.View(), 0,
                                           options),
                     "NOSE-S002"),
            nullptr);
}

TEST(AntipatternTest, SubsumedColumnFamilyIsS003) {
  auto graph = MakeHotelGraph();
  HandBuiltView hb;
  // Same partition key, same stored fields; the second merely extends the
  // clustering key, so the first is pure redundancy.
  hb.schema.Add(MakeCf(graph.get(), "Room", {{"Room", "RoomFloor"}},
                       {{"Room", "RoomNumber"}}, {{"Room", "RoomRate"}}));
  hb.schema.Add(MakeCf(graph.get(), "Room", {{"Room", "RoomFloor"}},
                       {{"Room", "RoomNumber"}, {"Room", "RoomID"}},
                       {{"Room", "RoomRate"}}));
  Workload workload(graph.get());
  const std::vector<Diagnostic> diags =
      AnalyzeRecommendation(workload, "default", hb.View(), 0);
  const Diagnostic* d = FindCode(diags, "NOSE-S003");
  ASSERT_NE(d, nullptr) << FormatDiagnostics(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(AntipatternTest, NarrowerCoveringIndexIsNotS003) {
  auto graph = MakeHotelGraph();
  HandBuiltView hb;
  // The wider family stores an extra value, so reading it in the narrow
  // one's stead costs more — keeping both is a legitimate trade-off
  // (hotel's cf4/cf6 pattern), not redundancy.
  hb.schema.Add(MakeCf(graph.get(), "Room", {{"Room", "RoomFloor"}},
                       {{"Room", "RoomNumber"}}, {}));
  hb.schema.Add(MakeCf(graph.get(), "Room", {{"Room", "RoomFloor"}},
                       {{"Room", "RoomNumber"}, {"Room", "RoomID"}},
                       {{"Room", "RoomRate"}}));
  Workload workload(graph.get());
  const std::vector<Diagnostic> diags =
      AnalyzeRecommendation(workload, "default", hb.View(), 0);
  EXPECT_EQ(FindCode(diags, "NOSE-S003"), nullptr)
      << FormatDiagnostics(diags);
}

TEST(AntipatternTest, CandidatePoolBloatIsS004) {
  auto graph = MakeHotelGraph();
  HandBuiltView hb;
  hb.schema.Add(MakeCf(graph.get(), "Room", {{"Room", "RoomID"}}, {},
                       {{"Room", "RoomRate"}}));
  Workload workload(graph.get());
  const std::vector<Diagnostic> bloated = AnalyzeRecommendation(
      workload, "default", hb.View(), /*candidate_pool_size=*/1000);
  ASSERT_NE(FindCode(bloated, "NOSE-S004"), nullptr)
      << FormatDiagnostics(bloated);
  // Below the absolute floor the ratio is irrelevant.
  const std::vector<Diagnostic> small = AnalyzeRecommendation(
      workload, "default", hb.View(), /*candidate_pool_size=*/400);
  EXPECT_EQ(FindCode(small, "NOSE-S004"), nullptr);
}

TEST(AntipatternTest, HotPartitionIsS005) {
  auto graph = MakeHotelGraph();
  HandBuiltView hb;
  // 100000 reservations on a 365-partition key: fine by default, hot when
  // the deployment expects more spread.
  hb.schema.Add(MakeCf(graph.get(), "Reservation",
                       {{"Reservation", "ResStartDate"}},
                       {{"Reservation", "ResID"}},
                       {{"Reservation", "ResEndDate"}}));
  Workload workload(graph.get());
  EXPECT_EQ(FindCode(AnalyzeRecommendation(workload, "default", hb.View(), 0),
                     "NOSE-S005"),
            nullptr);
  AntipatternOptions options;
  options.hot_partition_max_partitions = 500.0;
  const std::vector<Diagnostic> diags = AnalyzeRecommendation(
      workload, "default", hb.View(), 0, options);
  ASSERT_NE(FindCode(diags, "NOSE-S005"), nullptr)
      << FormatDiagnostics(diags);
}

std::set<std::string> AntipatternCodes(const Recommendation& rec) {
  std::set<std::string> out;
  for (const Diagnostic& d : rec.diagnostics) {
    if (d.code.rfind("NOSE-S", 0) == 0) out.insert(d.code);
  }
  return out;
}

TEST(AntipatternTest, SeededFixtureFiresThroughAdvisor) {
  // workloads/antipattern.* is built so the optimal schema itself carries
  // the anti-patterns: a 5-way partition key over 1M records (S001) and a
  // 2-way key over 150k (S005).
  ParsedFixture f = LoadFixture("antipattern");
  AdvisorOptions options;
  options.analyze_antipatterns = true;
  Advisor advisor(options);
  auto rec = advisor.Recommend(*f.workload);
  ASSERT_TRUE(rec.ok()) << rec.status();
  const std::set<std::string> codes = AntipatternCodes(*rec);
  EXPECT_TRUE(codes.count("NOSE-S001")) << FormatDiagnostics(rec->diagnostics);
  EXPECT_TRUE(codes.count("NOSE-S005")) << FormatDiagnostics(rec->diagnostics);
  for (const Diagnostic& d : rec->diagnostics) {
    EXPECT_NE(d.severity, Severity::kError) << d.ToString();
  }
}

TEST(AntipatternTest, BundledWorkloadsAreCleanAtDefaults) {
  for (const char* stem : {"hotel", "rubis"}) {
    ParsedFixture f = LoadFixture(stem);
    AdvisorOptions options;
    options.analyze_antipatterns = true;
    Advisor advisor(options);
    auto rec = advisor.Recommend(*f.workload);
    ASSERT_TRUE(rec.ok()) << stem << ": " << rec.status();
    EXPECT_TRUE(AntipatternCodes(*rec).empty())
        << stem << ":\n" << FormatDiagnostics(rec->diagnostics);
  }
}

TEST(InvariantsTest, AdvisorOptionRunsVerification) {
  // End to end: the advisor's own verify_invariants flag accepts a clean
  // solve (the broken paths are exercised by the tampering tests above).
  ParsedFixture f = LoadFixture("hotel");
  AdvisorOptions options;
  options.verify_invariants = true;
  Advisor advisor(options);
  auto rec = advisor.Recommend(*f.workload);
  EXPECT_TRUE(rec.ok()) << rec.status();
}

}  // namespace
}  // namespace nose
