// Cross-schema consistency: whatever schema the workload runs against —
// NoSE-recommended, normalized, or expert — query results must be
// identical, before and after updates. This is the strongest end-to-end
// property of the whole pipeline: enumeration, planning, optimization,
// loading and execution all have to agree on semantics.

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "executor/loader.h"
#include "executor/plan_executor.h"
#include "rubis/datagen.h"
#include "rubis/expert_schema.h"
#include "rubis/model.h"
#include "rubis/workload.h"
#include "schemas/normalized.h"
#include "tests/reference_evaluator.h"

namespace nose {
namespace {

struct SchemaRun {
  std::string label;
  Schema schema;
  std::unique_ptr<Recommendation> rec;
  std::map<std::string, QueryPlan> query_plans;
  std::map<std::string, UpdatePlan> update_plans;
  std::unique_ptr<RecordStore> store;
  std::unique_ptr<PlanExecutor> executor;
};

class ConsistencyTest : public ::testing::Test {
 protected:
  ConsistencyTest() {
    rubis::ModelScale scale;
    scale.regions = 3;
    scale.categories = 4;
    scale.users = 60;
    scale.items = 120;
    scale.old_items = 50;
    scale.bids = 600;
    scale.buynows = 40;
    scale.comments = 120;
    auto graph = rubis::MakeGraph(scale);
    assert(graph.ok());
    graph_ = std::move(graph).value();
    data_ = std::make_unique<Dataset>(
        rubis::GenerateData(graph_.get(), scale, 11));
    auto workload = rubis::MakeWorkload(*graph_);
    assert(workload.ok());
    workload_ = std::move(workload).value();
  }

  std::unique_ptr<SchemaRun> MakeNose() {
    auto run = std::make_unique<SchemaRun>();
    run->label = "nose";
    Advisor advisor;
    auto rec = advisor.Recommend(*workload_);
    EXPECT_TRUE(rec.ok()) << rec.status();
    run->rec = std::make_unique<Recommendation>(std::move(rec).value());
    run->schema = run->rec->schema;
    for (const auto& [n, p] : run->rec->query_plans) run->query_plans.emplace(n, p);
    for (const auto& [n, p] : run->rec->update_plans) {
      run->update_plans.emplace(n, p);
    }
    Finish(run.get());
    return run;
  }

  std::unique_ptr<SchemaRun> MakeFixed(const std::string& label,
                                       Schema schema) {
    auto run = std::make_unique<SchemaRun>();
    run->label = label;
    run->schema = std::move(schema);
    CostModel cm;
    CardinalityEstimator est(graph_.get(), &cm.params());
    QueryPlanner planner(&cm, &est);
    for (const auto& [entry, weight] :
         workload_->EntriesIn(Workload::kDefaultMix)) {
      if (entry->IsQuery()) {
        auto plan = planner.PlanForSchema(entry->query(),
                                          run->schema.column_families());
        EXPECT_TRUE(plan.ok()) << label << "/" << entry->name;
        if (plan.ok()) run->query_plans.emplace(entry->name, std::move(plan).value());
      } else {
        auto plan =
            PlanUpdateForSchema(entry->update(), run->schema, planner, est, cm);
        EXPECT_TRUE(plan.ok()) << label << "/" << entry->name;
        if (plan.ok()) run->update_plans.emplace(entry->name, std::move(plan).value());
      }
    }
    Finish(run.get());
    return run;
  }

  void Finish(SchemaRun* run) {
    run->store = std::make_unique<RecordStore>();
    ASSERT_TRUE(LoadSchema(*data_, run->schema, run->store.get()).ok());
    run->executor =
        std::make_unique<PlanExecutor>(run->store.get(), &run->schema);
  }

  std::unique_ptr<EntityGraph> graph_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(ConsistencyTest, AllSchemasAgreeOnEveryQueryAndSurviveUpdates) {
  auto nose = MakeNose();
  auto normalized_schema =
      NormalizedSchema(*graph_, *workload_, Workload::kDefaultMix);
  ASSERT_TRUE(normalized_schema.ok());
  auto normalized = MakeFixed("normalized", std::move(normalized_schema).value());
  auto expert_schema = rubis::ExpertSchema(*graph_);
  ASSERT_TRUE(expert_schema.ok());
  auto expert = MakeFixed("expert", std::move(expert_schema).value());
  SchemaRun* runs[] = {nose.get(), normalized.get(), expert.get()};

  rubis::ParamGenerator gen(data_.get(), 4242);

  // Phase 1: every read statement agrees across schemas and with the
  // reference evaluation over the raw dataset.
  for (const auto& [entry, weight] :
       workload_->EntriesIn(Workload::kDefaultMix)) {
    if (!entry->IsQuery()) continue;
    for (int trial = 0; trial < 4; ++trial) {
      const PlanExecutor::Params params = gen.ForStatement(*entry);
      const auto want =
          CanonicalRows(ReferenceEvaluate(*data_, entry->query(), params));
      for (SchemaRun* run : runs) {
        auto got = run->executor->ExecuteQuery(run->query_plans.at(entry->name),
                                               params);
        ASSERT_TRUE(got.ok()) << run->label << "/" << entry->name << ": "
                              << got.status();
        EXPECT_EQ(CanonicalRows(*got), want)
            << run->label << "/" << entry->name << " trial " << trial;
      }
    }
  }

  // Phase 2: apply the same update stream to every schema, then re-check a
  // read-heavy subset agreement *between schemas* (the dataset no longer
  // matches, so schemas are compared against each other).
  for (const auto& [entry, weight] :
       workload_->EntriesIn(Workload::kDefaultMix)) {
    if (entry->IsQuery()) continue;
    for (int trial = 0; trial < 2; ++trial) {
      const PlanExecutor::Params params = gen.ForStatement(*entry);
      for (SchemaRun* run : runs) {
        Status s = run->executor->ExecuteUpdate(run->update_plans.at(entry->name),
                                                params);
        ASSERT_TRUE(s.ok()) << run->label << "/" << entry->name << ": " << s;
      }
    }
  }
  for (const auto& [entry, weight] :
       workload_->EntriesIn(Workload::kDefaultMix)) {
    if (!entry->IsQuery()) continue;
    for (int trial = 0; trial < 3; ++trial) {
      const PlanExecutor::Params params = gen.ForStatement(*entry);
      std::vector<std::vector<std::string>> results;
      for (SchemaRun* run : runs) {
        auto got = run->executor->ExecuteQuery(run->query_plans.at(entry->name),
                                               params);
        ASSERT_TRUE(got.ok()) << run->label << "/" << entry->name;
        results.push_back(CanonicalRows(*got));
      }
      EXPECT_EQ(results[0], results[1])
          << "nose vs normalized on " << entry->name;
      EXPECT_EQ(results[0], results[2]) << "nose vs expert on " << entry->name;
    }
  }
}

}  // namespace
}  // namespace nose
