// Runs the advisor on the full RUBiS workload (the paper's evaluation
// subject) and prints the recommended schema, every implementation plan,
// and the timing breakdown. Pass a mix name to re-advise for it:
//
//   ./rubis_advisor [default|browsing|write10x|write100x]

#include <cstdio>
#include <iostream>
#include <string>

#include "advisor/advisor.h"
#include "rubis/model.h"
#include "rubis/workload.h"

int main(int argc, char** argv) {
  const std::string mix = argc > 1 ? argv[1] : nose::Workload::kDefaultMix;

  auto graph = nose::rubis::MakeGraph();
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  auto workload = nose::rubis::MakeWorkload(**graph);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }

  std::printf("RUBiS workload: %zu statements across %zu transactions; "
              "advising for mix '%s'\n\n",
              (*workload)->entries().size(),
              nose::rubis::Transactions().size(), mix.c_str());

  nose::Advisor advisor;
  auto rec = advisor.Recommend(**workload, mix);
  if (!rec.ok()) {
    std::cerr << rec.status() << "\n";
    return 1;
  }
  std::cout << rec->ToString();
  std::printf(
      "\nphases: enumeration %.2fs, cost calc %.2fs, BIP construction %.2fs, "
      "BIP solve %.2fs, other %.2fs — total %.2fs%s\n",
      rec->timing.enumeration_seconds, rec->timing.cost_calculation_seconds,
      rec->timing.bip_construction_seconds, rec->timing.bip_solve_seconds,
      rec->timing.other_seconds, rec->timing.total_seconds,
      rec->solve_proven ? "" : " (budget-bound incumbent)");
  std::printf("candidates %zu, BIP %d vars x %d constraints, %d B&B nodes\n",
              rec->num_candidates, rec->bip_variables, rec->bip_constraints,
              rec->bb_nodes);
  return 0;
}
