// Generates a random conceptual model + workload (the Fig. 13 generator)
// and advises it — useful for exploring how recommendations change with
// workload shape.
//
//   ./random_advisor [entities] [statements] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "advisor/advisor.h"
#include "randwl/random_workload.h"

int main(int argc, char** argv) {
  nose::randwl::GeneratorOptions gen;
  if (argc > 1) gen.num_entities = static_cast<size_t>(std::atoi(argv[1]));
  if (argc > 2) gen.num_statements = static_cast<size_t>(std::atoi(argv[2]));
  if (argc > 3) gen.seed = static_cast<uint64_t>(std::atoll(argv[3]));

  auto rw = nose::randwl::Generate(gen);
  if (!rw.ok()) {
    std::cerr << rw.status() << "\n";
    return 1;
  }

  std::printf("random model: %zu entities, %zu relationships; %zu statements "
              "(seed %llu)\n\n",
              rw->graph->entity_order().size(),
              rw->graph->relationships().size(),
              rw->workload->entries().size(),
              static_cast<unsigned long long>(gen.seed));
  for (const nose::WorkloadEntry& entry : rw->workload->entries()) {
    std::printf("  %-8s %s\n", entry.name.c_str(),
                entry.IsQuery() ? entry.query().ToString().c_str()
                                : entry.update().ToString().c_str());
  }

  nose::AdvisorOptions options;
  options.optimizer.bip.time_limit_seconds = 60;
  nose::Advisor advisor(options);
  auto rec = advisor.Recommend(*rw->workload);
  if (!rec.ok()) {
    std::cerr << rec.status() << "\n";
    return 1;
  }
  std::printf("\n%s", rec->ToString().c_str());
  std::printf("\nadvised in %.2fs (%zu candidates, %d B&B nodes)%s\n",
              rec->timing.total_seconds, rec->num_candidates, rec->bb_nodes,
              rec->solve_proven ? "" : " — budget-bound incumbent");
  return 0;
}
