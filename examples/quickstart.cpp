// Quickstart: the paper's §II hotel-booking example, end to end.
//
// Defines the conceptual model with the entity-graph DSL, the workload in
// the SQL-like statement language, runs the advisor, and prints the
// recommended column families and per-statement implementation plans.
//
//   ./quickstart

#include <cstdio>
#include <iostream>

#include "advisor/advisor.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"

namespace {

constexpr const char* kModel = R"(
# Conceptual model of the hotel booking system (paper Fig. 1).
entity Hotel 100 {
  HotelName string
  HotelCity string card 20
  HotelState string card 10
  HotelAddress string size 64
  HotelPhone string size 16
}
entity Room 10000 {
  RoomNumber integer card 500
  RoomRate float card 100
  RoomFloor integer card 20
}
entity Reservation 100000 {
  id ResID
  ResStartDate date card 365
  ResEndDate date card 365
}
entity Guest 50000 {
  GuestName string
  GuestEmail string
}
entity POI 500 {
  POIName string
  POIDescription string size 128
}
relationship Hotel one_to_many Room as Rooms / Hotel
relationship Room one_to_many Reservation as Reservations / Room
relationship Guest one_to_many Reservation as Reservations / Guest
relationship Hotel many_to_many POI as PointsOfInterest / Hotels links 1000
)";

constexpr const char* kWorkload = R"(
# The paper's running examples, weighted.

# Fig. 3: guests with reservations in a city above a rate.
statement guests_by_city 5 :
  SELECT Guest.GuestName, Guest.GuestEmail
  FROM Guest.Reservations.Room.Hotel
  WHERE Hotel.HotelCity = ?city AND Room.RoomRate > ?rate ;

# §II: points of interest near hotels booked by a guest.
statement guest_pois 10 :
  SELECT POI.POIName, POI.POIDescription
  FROM POI.Hotels.Rooms.Reservations.Guest
  WHERE Guest.GuestID = ?guest ;

# §II: POI descriptions change occasionally.
statement update_poi 1 :
  UPDATE POI SET POIDescription = ?desc WHERE POI.POIID = ?poi ;

# New bookings arrive.
statement make_reservation 3 :
  INSERT INTO Reservation SET ResID = ?rid, ResStartDate = ?from,
    ResEndDate = ?to
  AND CONNECT TO Guest(?guest), Room(?room) ;
)";

}  // namespace

int main() {
  auto graph = nose::ParseModel(kModel);
  if (!graph.ok()) {
    std::cerr << "model error: " << graph.status() << "\n";
    return 1;
  }
  auto workload = nose::ParseWorkload(**graph, kWorkload);
  if (!workload.ok()) {
    std::cerr << "workload error: " << workload.status() << "\n";
    return 1;
  }

  nose::Advisor advisor;
  auto rec = advisor.Recommend(**workload);
  if (!rec.ok()) {
    std::cerr << "advisor error: " << rec.status() << "\n";
    return 1;
  }

  std::cout << rec->ToString();
  std::printf(
      "\nadvisor ran in %.3fs over %zu candidate column families "
      "(BIP: %d variables, %d constraints, %d nodes)\n",
      rec->timing.total_seconds, rec->num_candidates, rec->bip_variables,
      rec->bip_constraints, rec->bb_nodes);
  return 0;
}
