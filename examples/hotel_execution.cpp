// End-to-end execution demo: recommend a schema for the hotel workload,
// generate synthetic data, bulk-load every recommended column family into
// the in-memory record store, then execute the recommended plans — showing
// results, the store's operation counts, and simulated latency.
//
//   ./hotel_execution

#include <cstdio>
#include <iostream>

#include "advisor/advisor.h"
#include "executor/dataset.h"
#include "executor/loader.h"
#include "executor/plan_executor.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"
#include "util/rng.h"

namespace {

constexpr const char* kModel = R"(
entity Hotel 50 {
  HotelName string
  HotelCity string card 10
}
entity Room 1000 {
  RoomRate float card 100
}
entity Guest 2000 {
  GuestName string
  GuestEmail string
}
entity Reservation 5000 {
  id ResID
  ResEndDate date card 365
}
relationship Hotel one_to_many Room as Rooms / Hotel
relationship Room one_to_many Reservation as Reservations / Room
relationship Guest one_to_many Reservation as Reservations / Guest
)";

constexpr const char* kWorkload = R"(
statement guests_by_city 5 :
  SELECT Guest.GuestName, Guest.GuestEmail
  FROM Guest.Reservations.Room.Hotel
  WHERE Hotel.HotelCity = ?city AND Room.RoomRate > ?rate ;
statement rooms_by_city 3 :
  SELECT Room.RoomID, Room.RoomRate FROM Room.Hotel
  WHERE Hotel.HotelCity = ?city
  ORDER BY Room.RoomRate ;
statement set_email 1 :
  UPDATE Guest SET GuestEmail = ?email WHERE Guest.GuestID = ?guest ;
)";

nose::Dataset MakeData(nose::EntityGraph* graph) {
  nose::Dataset data(graph);
  nose::Rng rng(2026);
  const char* cities[] = {"Boston", "NYC", "Waterloo", "Paris", "Doha"};
  for (int64_t h = 0; h < 50; ++h) {
    data.AddRow("Hotel", {nose::Value(h),
                          nose::Value("Hotel" + std::to_string(h)),
                          nose::Value(std::string(cities[h % 5]))});
  }
  for (int64_t r = 0; r < 1000; ++r) {
    data.AddRow("Room",
                {nose::Value(r),
                 nose::Value(40.0 + static_cast<double>(rng.Uniform(200)))});
    data.AddLink(0, static_cast<size_t>(r) % 50, static_cast<size_t>(r));
  }
  for (int64_t g = 0; g < 2000; ++g) {
    data.AddRow("Guest", {nose::Value(g),
                          nose::Value("Guest" + std::to_string(g)),
                          nose::Value("g" + std::to_string(g) + "@mail.com")});
  }
  for (int64_t v = 0; v < 5000; ++v) {
    data.AddRow("Reservation",
                {nose::Value(v),
                 nose::Value(static_cast<int64_t>(rng.Uniform(365)))});
    data.AddLink(1, rng.Uniform(1000), static_cast<size_t>(v));
    data.AddLink(2, rng.Uniform(2000), static_cast<size_t>(v));
  }
  data.SyncCountsTo(graph);
  return data;
}

}  // namespace

int main() {
  auto graph = nose::ParseModel(kModel);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  nose::Dataset data = MakeData(graph->get());
  auto workload = nose::ParseWorkload(**graph, kWorkload);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }

  nose::Advisor advisor;
  auto rec = advisor.Recommend(**workload);
  if (!rec.ok()) {
    std::cerr << rec.status() << "\n";
    return 1;
  }
  std::printf("recommended %zu column families:\n%s\n", rec->schema.size(),
              rec->schema.ToString().c_str());

  nose::RecordStore store;
  if (nose::Status s = LoadSchema(data, rec->schema, &store); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  nose::PlanExecutor executor(&store, &rec->schema);

  // Run the first query for a few cities.
  const nose::QueryPlan& plan = rec->query_plans[0].second;
  for (const char* city : {"Boston", "Doha"}) {
    nose::PlanExecutor::Params params = {
        {"city", nose::Value(std::string(city))},
        {"rate", nose::Value(200.0)}};
    auto rows = executor.ExecuteQuery(plan, params);
    if (!rows.ok()) {
      std::cerr << rows.status() << "\n";
      return 1;
    }
    std::printf("guests_by_city('%s', rate>200): %zu guests\n", city,
                rows->size());
    for (size_t i = 0; i < std::min<size_t>(3, rows->size()); ++i) {
      std::printf("  %s\n", nose::ValueTupleToString((*rows)[i]).c_str());
    }
  }

  // Ordered query.
  {
    nose::PlanExecutor::Params params = {
        {"city", nose::Value(std::string("NYC"))}};
    auto rows = executor.ExecuteQuery(rec->query_plans[1].second, params);
    if (rows.ok() && !rows->empty()) {
      std::printf("rooms_by_city('NYC'): %zu rooms, cheapest %s, priciest %s\n",
                  rows->size(), nose::ValueTupleToString(rows->front()).c_str(),
                  nose::ValueTupleToString(rows->back()).c_str());
    }
  }

  // Update a guest's email and observe it through the query.
  {
    nose::PlanExecutor::Params params = {
        {"guest", nose::Value(static_cast<int64_t>(7))},
        {"email", nose::Value(std::string("changed@mail.com"))}};
    if (nose::Status s =
            executor.ExecuteUpdate(rec->update_plans[0].second, params);
        !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    std::printf("updated guest 7's email\n");
  }

  const nose::StoreStats& stats = store.stats();
  std::printf(
      "\nstore activity: %llu gets, %llu puts, %llu rows read, "
      "simulated latency %.3f ms\n",
      static_cast<unsigned long long>(stats.gets),
      static_cast<unsigned long long>(stats.puts),
      static_cast<unsigned long long>(stats.rows_read), stats.simulated_ms);
  return 0;
}
