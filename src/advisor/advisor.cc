#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "analysis/invariants.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/plan_space.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nose {

Advisor::Advisor(AdvisorOptions options)
    : options_(options), cost_model_(options.cost_params) {}

namespace {

/// Builds the advisor's worker pool: num_threads == 1 keeps everything on
/// the calling thread (no pool at all); the output is the same either way,
/// only the wall clock differs.
std::unique_ptr<util::ThreadPool> MakeWorkerPool(size_t num_threads) {
  if (num_threads == 0) num_threads = util::ThreadPool::DefaultNumThreads();
  if (num_threads <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(num_threads);
}

}  // namespace

StatusOr<Recommendation> Advisor::Recommend(const Workload& workload,
                                            const std::string& mix) const {
  std::unique_ptr<util::ThreadPool> pool_threads =
      MakeWorkerPool(options_.num_threads);

  // 1. Candidate enumeration (paper §IV-A, Algorithm 1).
  obs::PhaseSpan enumeration_phase("advisor.enumeration", "advisor");
  Enumerator enumerator(options_.enumerator);
  CandidatePool pool =
      enumerator.EnumerateWorkload(workload, mix, pool_threads.get());
  const double enumeration_seconds = enumeration_phase.StopSeconds();

  return RecommendImpl(workload, mix, std::move(pool), enumeration_seconds,
                       pool_threads.get(), /*cache=*/nullptr);
}

StatusOr<Recommendation> Advisor::Recommend(const Workload& workload,
                                            const std::string& mix,
                                            double deadline_seconds) const {
  if (deadline_seconds <= 0.0) return Recommend(workload, mix);
  Stopwatch watch;
  std::unique_ptr<util::ThreadPool> pool_threads =
      MakeWorkerPool(options_.num_threads);

  obs::PhaseSpan enumeration_phase("advisor.enumeration", "advisor");
  Enumerator enumerator(options_.enumerator);
  CandidatePool pool =
      enumerator.EnumerateWorkload(workload, mix, pool_threads.get());
  const double enumeration_seconds = enumeration_phase.StopSeconds();

  // Hand the optimizer what enumeration left of the budget. The optimizer
  // in turn charges planning and assembly against it and bounds only the
  // solve — see OptimizerOptions::deadline_seconds. A non-positive
  // remainder still runs the pipeline (the solve floor guarantees an
  // incumbent); the overrun is reported through deadline_hit.
  const double remaining =
      std::max(1e-3, deadline_seconds - watch.ElapsedSeconds());
  NOSE_ASSIGN_OR_RETURN(
      Recommendation rec,
      RecommendImpl(workload, mix, std::move(pool), enumeration_seconds,
                    pool_threads.get(), /*cache=*/nullptr, remaining));
  rec.deadline_seconds = deadline_seconds;
  rec.deadline_hit = watch.ElapsedSeconds() <= deadline_seconds;
  return rec;
}

StatusOr<std::vector<std::pair<std::string, Recommendation>>>
Advisor::AdviseAllMixes(const Workload& workload,
                        std::vector<std::string> mixes) const {
  obs::Span all_span("advisor.advise_all_mixes", "advisor");
  if (mixes.empty()) mixes = workload.MixNames();
  if (mixes.empty()) {
    return Status::InvalidArgument("workload declares no mixes");
  }
  std::unique_ptr<util::ThreadPool> pool_threads =
      MakeWorkerPool(options_.num_threads);

  // Mixes that weight the same statement set see the same candidates and
  // the same plan spaces (enumeration and planning are weight-independent),
  // so they share one pool and one PlanSpaceCache. Mixes that drop
  // statements to weight zero (e.g. a read-only mix of a read/write
  // workload) land in their own group — reusing a union pool for them
  // would change the enumerated candidates and hence the recommendation.
  struct Group {
    CandidatePool pool;
    double enumeration_seconds = 0.0;
    PlanSpaceCache cache;
    std::set<std::string> names;  ///< statement names, for subset checks
  };
  std::vector<std::unique_ptr<Group>> groups;
  std::map<std::string, size_t> group_of_signature;
  static obs::Counter& reuse_counter =
      obs::MetricsRegistry::Global().GetCounter("advisor.pool_reuse_hits");
  static obs::Counter& cross_counter = obs::MetricsRegistry::Global()
      .GetCounter("advisor.cross_group_seeds");

  Enumerator enumerator(options_.enumerator);
  std::vector<std::pair<std::string, Recommendation>> out;
  out.reserve(mixes.size());
  for (const std::string& mix : mixes) {
    const auto entries = workload.EntriesIn(mix);
    if (entries.empty()) {
      return Status::InvalidArgument("workload has no statements in mix " +
                                     mix);
    }
    std::string signature;
    for (const auto& [entry, weight] : entries) {
      signature += entry->name;
      signature += '\n';
    }
    const auto [it, inserted] =
        group_of_signature.emplace(std::move(signature), groups.size());
    if (inserted) {
      groups.push_back(std::make_unique<Group>());
      Group& fresh = *groups.back();
      for (const auto& [entry, weight] : entries) fresh.names.insert(entry->name);
      obs::PhaseSpan enumeration_phase("advisor.enumeration", "advisor");
      fresh.pool =
          enumerator.EnumerateWorkload(workload, mix, pool_threads.get());
      fresh.enumeration_seconds = enumeration_phase.StopSeconds();
      // Cross-group sharing: when an earlier group's statement set contains
      // this one's (Browsing ⊆ Bidding), its pool contains this pool and
      // its plan spaces project exactly — seed the new cache instead of
      // rebuilding. The projection is byte-exact, so recommendations stay
      // identical to per-mix Recommend either way.
      for (size_t g = 0; g + 1 < groups.size(); ++g) {
        const Group& prior = *groups[g];
        if (prior.names.size() < fresh.names.size()) continue;
        if (!std::includes(prior.names.begin(), prior.names.end(),
                           fresh.names.begin(), fresh.names.end())) {
          continue;
        }
        if (SeedCacheFromSuperset(prior.cache, prior.pool, fresh.pool, entries,
                                  &fresh.cache)) {
          cross_counter.Increment();
          break;
        }
      }
    } else {
      reuse_counter.Increment();
    }
    Group& group = *groups[it->second];
    // The pool is copied into each Recommendation (it owns it; plans point
    // into the copy), and the first mix of the group carries the
    // enumeration time in its Fig. 13 breakdown.
    NOSE_ASSIGN_OR_RETURN(
        Recommendation rec,
        RecommendImpl(workload, mix, group.pool,
                      inserted ? group.enumeration_seconds : 0.0,
                      pool_threads.get(), &group.cache));
    out.emplace_back(mix, std::move(rec));
  }
  return out;
}

StatusOr<HorizonPlan> Advisor::PlanHorizon(
    const Workload& workload, const WorkloadHorizon& horizon,
    const HorizonPlanOptions& horizon_options) const {
  obs::Span plan_span("advisor.plan_horizon", "advisor");
  if (horizon.empty()) {
    return Status::InvalidArgument("horizon has no windows");
  }
  std::unique_ptr<util::ThreadPool> pool_threads =
      MakeWorkerPool(options_.num_threads);

  // ONE union pool across the horizon: enumerate each distinct mix once,
  // in first-appearance window order, and merge — interning keeps shared
  // candidates at one CfId, which is what lets the per-window activation
  // binaries and the transition variables talk about the same candidate.
  HorizonPlan plan;
  {
    obs::PhaseSpan enumeration_phase("advisor.enumeration", "advisor");
    Enumerator enumerator(options_.enumerator);
    std::set<std::string> seen_mixes;
    for (const HorizonWindow& win : horizon.windows) {
      if (!seen_mixes.insert(win.mix).second) continue;
      if (workload.EntriesIn(win.mix).empty()) {
        return Status::InvalidArgument("workload has no statements in mix " +
                                       win.mix);
      }
      plan.pool.MergeFrom(
          enumerator.EnumerateWorkload(workload, win.mix, pool_threads.get()));
    }
  }

  CardinalityEstimator estimator(workload.graph(), &cost_model_.params());
  HorizonOptions hopts;
  hopts.optimizer = options_.optimizer;
  hopts.migration_cost_weight = horizon_options.migration_cost_weight;
  hopts.initial_schema = horizon_options.initial_schema;
  hopts.capture_bip = horizon_options.capture_bip;
  hopts.backfill_chunk_rows = horizon_options.backfill_chunk_rows;
  HorizonOptimizer optimizer(&cost_model_, &estimator, hopts);
  PlanSpaceCache cache;
  NOSE_ASSIGN_OR_RETURN(HorizonResult solved,
                        optimizer.Optimize(workload, horizon, plan.pool,
                                           pool_threads.get(), &cache));

  plan.transitions = std::move(solved.transitions);
  plan.execution_objective = solved.execution_objective;
  plan.migration_objective = solved.migration_objective;
  plan.total_objective = solved.total_objective;
  plan.collapsed = solved.collapsed;
  plan.windows.reserve(horizon.size());
  for (size_t w = 0; w < horizon.size(); ++w) {
    OptimizationResult& opt = solved.windows[w];
    HorizonPlan::Window window;
    window.label = horizon.windows[w].label;
    window.mix = horizon.windows[w].mix;
    window.duration = horizon.windows[w].duration;
    Recommendation& rec = window.rec;
    // The union pool stays on the HorizonPlan — see the struct comment.
    rec.num_candidates = plan.pool.size();
    rec.schema = std::move(opt.schema);
    rec.query_plans = std::move(opt.query_plans);
    rec.update_plans = std::move(opt.update_plans);
    rec.objective = opt.objective;
    rec.solve_proven = opt.solve_proven;
    rec.best_bound = opt.best_bound;
    rec.anytime_gap = opt.anytime_gap;
    rec.bip_variables = opt.bip_variables;
    rec.bip_constraints = opt.bip_constraints;
    rec.bb_nodes = opt.bb_nodes;
    rec.timing.cost_calculation_seconds = opt.timing.cost_calculation_seconds;
    rec.timing.bip_construction_seconds = opt.timing.bip_construction_seconds;
    rec.timing.bip_solve_seconds = opt.timing.bip_solve_seconds;
    rec.timing.other_seconds = opt.timing.other_seconds;
    if (options_.verify_invariants) {
      obs::Span verify_span("advisor.verify_invariants", "advisor");
      RecommendationView view{&rec.schema, &rec.query_plans, &rec.update_plans,
                              rec.objective, rec.solve_proven};
      NOSE_RETURN_IF_ERROR(VerifyRecommendation(workload, window.mix, view));
    }
    plan.windows.push_back(std::move(window));
  }
  return plan;
}

std::string HorizonPlan::ToString() const {
  std::string out = "=== Horizon plan (" + std::to_string(windows.size()) +
                    " windows, " + std::to_string(transitions.size()) +
                    " migrations" + (collapsed ? ", collapsed" : "") +
                    ") ===\n";
  for (size_t w = 0; w < windows.size(); ++w) {
    const Window& win = windows[w];
    out += "-- window " + std::to_string(w) +
           (win.label.empty() ? "" : " (" + win.label + ")") + ": mix " +
           win.mix + ", duration " + std::to_string(win.duration) + ", " +
           std::to_string(win.rec.schema.size()) +
           " column families, objective " + std::to_string(win.rec.objective) +
           " ms/stmt\n";
  }
  for (const HorizonTransition& t : transitions) {
    out += "-- migrate at start of window " + std::to_string(t.at_window) +
           " (est " + std::to_string(t.build_cost_ms) + " ms):\n";
    const Schema& to_schema = windows[t.at_window].rec.schema;
    for (CfId id : t.builds) {
      const std::string* name = to_schema.NameOfId(id);
      out += "   build " + (name != nullptr ? *name : "cf#" + std::to_string(id)) +
             ": " + pool[id].ToString() + "\n";
    }
    for (CfId id : t.drops) {
      out += "   drop " + pool[id].ToString() + "\n";
    }
  }
  out += "objective: execution " + std::to_string(execution_objective) +
         " + migration " + std::to_string(migration_objective) + " = " +
         std::to_string(total_objective) + "\n";
  return out;
}

StatusOr<Recommendation> Advisor::RecommendWithPool(
    const Workload& workload, const std::string& mix,
    const CandidatePool& pool, PlanSpaceCache* cache) const {
  std::unique_ptr<util::ThreadPool> pool_threads =
      MakeWorkerPool(options_.num_threads);
  // Enumeration already happened (the pool is the caller's); its time is
  // charged wherever the caller measured it.
  return RecommendImpl(workload, mix, pool, /*enumeration_seconds=*/0.0,
                       pool_threads.get(), cache);
}

bool SeedCacheFromSuperset(
    const PlanSpaceCache& super_cache, const CandidatePool& super_pool,
    const CandidatePool& sub_pool,
    const std::vector<std::pair<const WorkloadEntry*, double>>& entries,
    PlanSpaceCache* out) {
  std::vector<CfId> sub_to_super(sub_pool.size());
  std::unordered_map<CfId, CfId> super_to_sub;
  super_to_sub.reserve(sub_pool.size());
  for (size_t c = 0; c < sub_pool.size(); ++c) {
    const CfId id = super_pool.Find(sub_pool[c]);
    if (id == kInvalidCfId) return false;
    sub_to_super[c] = id;
    super_to_sub.emplace(id, static_cast<CfId>(c));
  }
  static obs::Counter& seeded_counter = obs::MetricsRegistry::Global()
      .GetCounter("advisor.cross_group_spaces_seeded");

  for (const auto& [entry, weight] : entries) {
    if (entry->IsQuery()) {
      auto it = super_cache.query_spaces.find(entry->name);
      if (it == super_cache.query_spaces.end()) continue;
      out->query_spaces.emplace(
          entry->name, QueryPlanner::RestrictToPool(it->second, sub_to_super,
                                                    super_pool.size()));
      seeded_counter.Increment();
      continue;
    }
    auto it = super_cache.update_supports.find(entry->name);
    if (it == super_cache.update_supports.end()) continue;
    // Keep the supports whose candidate survives in the sub pool, renumber
    // them, and restore ascending sub-id order — the order a fresh costing
    // pass over the sub pool emits.
    std::vector<PlanSpaceCache::UpdateSupport> supports;
    for (const PlanSpaceCache::UpdateSupport& sup : it->second) {
      auto sit = super_to_sub.find(static_cast<CfId>(sup.cf_index));
      if (sit == super_to_sub.end()) continue;
      PlanSpaceCache::UpdateSupport mapped = sup;
      mapped.cf_index = sit->second;
      supports.push_back(std::move(mapped));
    }
    std::sort(supports.begin(), supports.end(),
              [](const PlanSpaceCache::UpdateSupport& a,
                 const PlanSpaceCache::UpdateSupport& b) {
                return a.cf_index < b.cf_index;
              });
    for (const PlanSpaceCache::UpdateSupport& sup : supports) {
      for (const std::string& text : sup.support_texts) {
        const std::string key = entry->name + '\n' + text;
        if (out->support_spaces.count(key) != 0) continue;
        auto sp = super_cache.support_spaces.find(key);
        if (sp == super_cache.support_spaces.end()) continue;
        PlanSpaceCache::SupportSpace seeded;
        seeded.query = sp->second.query;
        seeded.space = QueryPlanner::RestrictToPool(
            sp->second.space, sub_to_super, super_pool.size());
        // Fresh builds store the empty marker for support queries the pool
        // cannot answer; apply the same rule to a projection that lost all
        // of its complete plans.
        if (!seeded.space.HasPlan()) seeded.space = PlanSpace();
        out->support_spaces.emplace(key, std::move(seeded));
        seeded_counter.Increment();
      }
    }
    out->update_supports.emplace(entry->name, std::move(supports));
  }
  return true;
}

StatusOr<Recommendation> Advisor::RecommendImpl(
    const Workload& workload, const std::string& mix, CandidatePool pool,
    double enumeration_seconds, util::ThreadPool* pool_threads,
    PlanSpaceCache* cache, double optimizer_deadline_seconds) const {
  obs::PhaseSpan total("advisor.recommend", "advisor");
  Recommendation rec;
  rec.pool = std::move(pool);
  rec.num_candidates = rec.pool.size();
  rec.timing.enumeration_seconds = enumeration_seconds;

  // 2-4. Query planning, schema optimization, plan recommendation.
  CardinalityEstimator estimator(workload.graph(), &cost_model_.params());
  OptimizerOptions opt_options = options_.optimizer;
  if (optimizer_deadline_seconds > 0.0) {
    opt_options.deadline_seconds = optimizer_deadline_seconds;
  }
  SchemaOptimizer optimizer(&cost_model_, &estimator, opt_options);
  NOSE_ASSIGN_OR_RETURN(
      OptimizationResult opt,
      optimizer.Optimize(workload, mix, rec.pool, pool_threads, cache));

  rec.schema = std::move(opt.schema);
  rec.query_plans = std::move(opt.query_plans);
  rec.update_plans = std::move(opt.update_plans);
  rec.objective = opt.objective;
  rec.solve_proven = opt.solve_proven;
  rec.best_bound = opt.best_bound;
  rec.anytime_gap = opt.anytime_gap;
  rec.bip_variables = opt.bip_variables;
  rec.bip_constraints = opt.bip_constraints;
  rec.bb_nodes = opt.bb_nodes;
  rec.timing.cost_calculation_seconds = opt.timing.cost_calculation_seconds;
  rec.timing.bip_construction_seconds = opt.timing.bip_construction_seconds;
  rec.timing.bip_solve_seconds = opt.timing.bip_solve_seconds;
  // Enumeration ran before this span started (Recommend times it; the
  // shared-pool path charges it to the group's first mix).
  rec.timing.total_seconds = total.ElapsedSeconds() + enumeration_seconds;
  // "Other" is the remainder of the Fig. 13 decomposition. The measured
  // phases use their own stopwatches, so rounding can push the remainder a
  // hair below zero — clamp it, and insist the decomposition still accounts
  // for the total.
  rec.timing.other_seconds = std::max(
      0.0, rec.timing.total_seconds - rec.timing.cost_calculation_seconds -
               rec.timing.bip_construction_seconds -
               rec.timing.bip_solve_seconds);
  // The decomposition should still account for the total; a large residual
  // means a phase stopwatch is missing or double-counting time. Report it
  // as a gauge plus a diagnostic instead of aborting — a loaded machine can
  // legitimately skew the independent clock reads.
  const double residual =
      std::abs(rec.timing.cost_calculation_seconds +
               rec.timing.bip_construction_seconds +
               rec.timing.bip_solve_seconds + rec.timing.other_seconds -
               rec.timing.total_seconds);
  static obs::Gauge& residual_gauge = obs::MetricsRegistry::Global().GetGauge(
      "advisor.timing_residual_seconds");
  residual_gauge.Set(residual);
  if (residual >= 1e-3 + 1e-3 * rec.timing.total_seconds) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "phase breakdown misses the measured total by %.6fs "
                  "(total %.6fs)",
                  residual, rec.timing.total_seconds);
    Diagnostic d;
    d.code = "NOSE-W006";
    d.severity = Severity::kWarning;
    d.message = msg;
    d.note = "a phase stopwatch is missing or double-counting time";
    rec.diagnostics.push_back(std::move(d));
  }

  if (options_.verify_invariants) {
    obs::Span verify_span("advisor.verify_invariants", "advisor");
    RecommendationView view{&rec.schema, &rec.query_plans, &rec.update_plans,
                            rec.objective, rec.solve_proven};
    NOSE_RETURN_IF_ERROR(VerifyRecommendation(workload, mix, view));
  }
  if (options_.analyze_antipatterns) {
    obs::Span analyze_span("advisor.analyze_antipatterns", "advisor");
    RecommendationView view{&rec.schema, &rec.query_plans, &rec.update_plans,
                            rec.objective, rec.solve_proven};
    std::vector<Diagnostic> findings = AnalyzeRecommendation(
        workload, mix, view, rec.num_candidates, options_.antipatterns);
    rec.diagnostics.insert(rec.diagnostics.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  return rec;
}

std::string Recommendation::ToString() const {
  std::string out = "=== Recommended schema (" +
                    std::to_string(schema.size()) + " column families) ===\n";
  out += schema.ToString();
  out += "\n=== Query plans ===\n";
  for (const auto& [name, plan] : query_plans) {
    out += "-- " + name + "\n" + plan.ToString();
  }
  if (!update_plans.empty()) {
    out += "\n=== Update plans ===\n";
    for (const auto& [name, plan] : update_plans) {
      out += "-- " + name + "\n" + plan.ToString();
    }
  }
  out += "\nweighted workload cost: " + std::to_string(objective) + "\n";
  return out;
}

}  // namespace nose
