#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/invariants.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nose {

Advisor::Advisor(AdvisorOptions options)
    : options_(options), cost_model_(options.cost_params) {}

StatusOr<Recommendation> Advisor::Recommend(const Workload& workload,
                                            const std::string& mix) const {
  obs::PhaseSpan total("advisor.recommend", "advisor");
  Recommendation rec;

  // Shared worker pool for all pipeline phases. num_threads == 1 keeps
  // everything on the calling thread (no pool at all); the output is the
  // same either way, only the wall clock differs.
  const size_t num_threads = options_.num_threads == 0
                                 ? util::ThreadPool::DefaultNumThreads()
                                 : options_.num_threads;
  std::unique_ptr<util::ThreadPool> pool_threads;
  if (num_threads > 1) {
    pool_threads = std::make_unique<util::ThreadPool>(num_threads);
  }

  // 1. Candidate enumeration (paper §IV-A, Algorithm 1).
  obs::PhaseSpan enumeration_phase("advisor.enumeration", "advisor");
  Enumerator enumerator(options_.enumerator);
  rec.pool = enumerator.EnumerateWorkload(workload, mix, pool_threads.get());
  rec.num_candidates = rec.pool.size();
  rec.timing.enumeration_seconds = enumeration_phase.StopSeconds();

  // 2-4. Query planning, schema optimization, plan recommendation.
  CardinalityEstimator estimator(workload.graph(), &cost_model_.params());
  SchemaOptimizer optimizer(&cost_model_, &estimator, options_.optimizer);
  NOSE_ASSIGN_OR_RETURN(
      OptimizationResult opt,
      optimizer.Optimize(workload, mix, rec.pool, pool_threads.get()));

  rec.schema = std::move(opt.schema);
  rec.query_plans = std::move(opt.query_plans);
  rec.update_plans = std::move(opt.update_plans);
  rec.objective = opt.objective;
  rec.solve_proven = opt.solve_proven;
  rec.bip_variables = opt.bip_variables;
  rec.bip_constraints = opt.bip_constraints;
  rec.bb_nodes = opt.bb_nodes;
  rec.timing.cost_calculation_seconds = opt.timing.cost_calculation_seconds;
  rec.timing.bip_construction_seconds = opt.timing.bip_construction_seconds;
  rec.timing.bip_solve_seconds = opt.timing.bip_solve_seconds;
  rec.timing.total_seconds = total.ElapsedSeconds();
  // "Other" is the remainder of the Fig. 13 decomposition. The measured
  // phases use their own stopwatches, so rounding can push the remainder a
  // hair below zero — clamp it, and insist the decomposition still accounts
  // for the total.
  rec.timing.other_seconds = std::max(
      0.0, rec.timing.total_seconds - rec.timing.cost_calculation_seconds -
               rec.timing.bip_construction_seconds -
               rec.timing.bip_solve_seconds);
  // The decomposition should still account for the total; a large residual
  // means a phase stopwatch is missing or double-counting time. Report it
  // as a gauge plus a diagnostic instead of aborting — a loaded machine can
  // legitimately skew the independent clock reads.
  const double residual =
      std::abs(rec.timing.cost_calculation_seconds +
               rec.timing.bip_construction_seconds +
               rec.timing.bip_solve_seconds + rec.timing.other_seconds -
               rec.timing.total_seconds);
  static obs::Gauge& residual_gauge = obs::MetricsRegistry::Global().GetGauge(
      "advisor.timing_residual_seconds");
  residual_gauge.Set(residual);
  if (residual >= 1e-3 + 1e-3 * rec.timing.total_seconds) {
    std::fprintf(stderr,
                 "advisor: warning: phase breakdown misses the measured total "
                 "by %.6fs (total %.6fs) [NOSE-W006]\n",
                 residual, rec.timing.total_seconds);
  }

  if (options_.verify_invariants) {
    obs::Span verify_span("advisor.verify_invariants", "advisor");
    RecommendationView view{&rec.schema, &rec.query_plans, &rec.update_plans,
                            rec.objective, rec.solve_proven};
    NOSE_RETURN_IF_ERROR(VerifyRecommendation(workload, mix, view));
  }
  return rec;
}

std::string Recommendation::ToString() const {
  std::string out = "=== Recommended schema (" +
                    std::to_string(schema.size()) + " column families) ===\n";
  out += schema.ToString();
  out += "\n=== Query plans ===\n";
  for (const auto& [name, plan] : query_plans) {
    out += "-- " + name + "\n" + plan.ToString();
  }
  if (!update_plans.empty()) {
    out += "\n=== Update plans ===\n";
    for (const auto& [name, plan] : update_plans) {
      out += "-- " + name + "\n" + plan.ToString();
    }
  }
  out += "\nweighted workload cost: " + std::to_string(objective) + "\n";
  return out;
}

}  // namespace nose
