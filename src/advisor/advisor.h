#ifndef NOSE_ADVISOR_ADVISOR_H_
#define NOSE_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "analysis/antipatterns.h"
#include "analysis/diagnostic.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "enumerator/enumerator.h"
#include "optimizer/horizon.h"
#include "optimizer/schema_optimizer.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace nose {

struct AdvisorOptions {
  CostParams cost_params;
  EnumeratorOptions enumerator;
  OptimizerOptions optimizer;
  /// Worker threads for enumeration, plan-space construction, cost
  /// calculation, and combinatorial node evaluation. 0 = one per hardware
  /// core (or $NOSE_TEST_THREADS); 1 = fully serial, no pool created. The
  /// recommendation is byte-identical at every setting — parallel stages
  /// merge their results in deterministic statement/candidate order.
  size_t num_threads = 0;
  /// Audit every recommendation against the workload invariants (analysis/
  /// invariants.h) before returning it; violations fail the Recommend call.
  /// Defaults on in debug builds — the audit replays every plan, which is
  /// cheap next to the solve but not free.
#ifdef NDEBUG
  bool verify_invariants = false;
#else
  bool verify_invariants = true;
#endif
  /// Run the NOSE-S schema anti-pattern analyses (analysis/antipatterns.h)
  /// on every recommendation and append the findings to
  /// Recommendation::diagnostics. Warnings only — they never fail the call.
  bool analyze_antipatterns = false;
  /// Thresholds for the anti-pattern analyses.
  AntipatternOptions antipatterns;
};

/// Full advisor timing breakdown (Fig. 13's categories).
struct AdvisorTiming {
  double enumeration_seconds = 0.0;  ///< counted under "other" in Fig. 13
  double cost_calculation_seconds = 0.0;
  double bip_construction_seconds = 0.0;
  double bip_solve_seconds = 0.0;
  double other_seconds = 0.0;
  double total_seconds = 0.0;
};

/// The advisor's output: a schema, one implementation plan per statement,
/// and diagnostics. Recommended plans point into `pool`, which this struct
/// owns — keep the Recommendation alive while using them.
struct Recommendation {
  Schema schema;
  std::vector<std::pair<std::string, QueryPlan>> query_plans;
  std::vector<std::pair<std::string, UpdatePlan>> update_plans;
  double objective = 0.0;
  /// False when the solver returned a budget-bound incumbent rather than a
  /// proven (within-gap) optimum.
  bool solve_proven = false;
  /// Global lower bound on the optimal objective at solver termination
  /// (equals `objective` when solve_proven).
  double best_bound = 0.0;
  /// Relative optimality gap of the returned schema, in [0, 1]: 0 when
  /// proven, 1 when the deadline left no useful bound. The anytime-advising
  /// quality signal — "this schema is within anytime_gap of optimal".
  double anytime_gap = 0.0;
  /// The budget passed to Recommend(workload, mix, deadline_seconds);
  /// 0 when the call was unbudgeted.
  double deadline_seconds = 0.0;
  /// True when the call returned within deadline_seconds (trivially true
  /// for unbudgeted calls). A miss means the uninterruptible stages alone
  /// (enumeration, planning, extraction) exceeded the budget — the solve
  /// stage is cut off at the deadline to within one LP solve.
  bool deadline_hit = true;

  CandidatePool pool;
  size_t num_candidates = 0;
  int bip_variables = 0;
  int bip_constraints = 0;
  int bb_nodes = 0;
  AdvisorTiming timing;

  /// Findings attached while advising: the NOSE-W006 timing-residual check,
  /// plus the NOSE-S anti-pattern analyses when
  /// AdvisorOptions::analyze_antipatterns is on. Never error severity (an
  /// invariant violation fails the call instead of landing here).
  std::vector<Diagnostic> diagnostics;

  /// Human-readable report: schema + plans.
  std::string ToString() const;
};

/// Advisor-level knobs for multi-period planning; the per-window solve
/// inherits AdvisorOptions::optimizer.
struct HorizonPlanOptions {
  /// Multiplier on build costs in the objective (see HorizonOptions).
  double migration_cost_weight = 1.0;
  /// Schema deployed before window 0; null means window 0 is the initial
  /// deployment and its builds are sunk cost.
  const Schema* initial_schema = nullptr;
  /// Receives the joint multi-period BIP when one is assembled
  /// (solver_micro's multi-period instance class).
  BipCapture* capture_bip = nullptr;
  /// Rows per backfill batch assumed when pricing dual-write overhead of
  /// scheduled migrations; keep equal to the executing
  /// evolve::MigrationOptions::chunk_rows (see HorizonOptions).
  double backfill_chunk_rows = 256.0;
};

/// PlanHorizon's output: one Recommendation per window plus the migration
/// schedule. The UNION candidate pool lives here; per-window plans point
/// into it and every windows[w].rec.pool is EMPTY — keep the HorizonPlan
/// alive while using any window's plans (copying a Recommendation out
/// does not carry the pool with it).
struct HorizonPlan {
  struct Window {
    std::string label;
    std::string mix;
    double duration = 1.0;
    Recommendation rec;
  };

  CandidatePool pool;
  std::vector<Window> windows;
  /// Non-empty migrations only, in window order; CfIds index `pool`.
  std::vector<HorizonTransition> transitions;
  /// Σ_w duration_w × windows[w].rec.objective.
  double execution_objective = 0.0;
  /// migration_cost_weight × Σ transition build costs.
  double migration_objective = 0.0;
  double total_objective = 0.0;
  /// True when the horizon collapsed to one single-window solve (all
  /// windows one mix, no initial schema): zero migrations by construction.
  bool collapsed = false;

  std::string ToString() const;
};

/// NoSE end-to-end (paper Fig. 4): candidate enumeration → query planning →
/// schema optimization → plan recommendation.
class Advisor {
 public:
  explicit Advisor(AdvisorOptions options = AdvisorOptions());

  /// Recommends a schema and plans for `workload` under `mix`.
  StatusOr<Recommendation> Recommend(
      const Workload& workload,
      const std::string& mix = Workload::kDefaultMix) const;

  /// Anytime advising: like Recommend, but bounded by a wall-clock budget.
  /// Always returns the best incumbent found by the deadline — never an
  /// error merely because time ran out. The budget is distributed across
  /// the pipeline implicitly: enumeration, planning, and BIP assembly run
  /// to completion (nothing can be recommended without them), and the
  /// branch-and-bound solve receives whatever they left, stopping at the
  /// deadline to within one LP solve. The result's anytime_gap reports how
  /// far from proven-optimal the returned schema can be; deadline_hit
  /// records whether the call made the budget. A deadline generous enough
  /// that the solver finishes on its own yields a result byte-identical to
  /// the unbudgeted Recommend. deadline_seconds <= 0 means no budget.
  StatusOr<Recommendation> Recommend(const Workload& workload,
                                     const std::string& mix,
                                     double deadline_seconds) const;

  /// Recommends a schema for every mix (all of the workload's mixes when
  /// `mixes` is empty), paying for candidate enumeration and plan-space
  /// construction once per group of mixes that share a statement set
  /// instead of once per mix: mixes differing only in weights reuse the
  /// interned pool and the cached plan spaces (weights enter later, as BIP
  /// variable costs). Every recommendation is byte-identical to what
  /// Recommend(workload, mix) returns — including at every thread count.
  /// Results are in `mixes` order.
  StatusOr<std::vector<std::pair<std::string, Recommendation>>> AdviseAllMixes(
      const Workload& workload, std::vector<std::string> mixes = {}) const;

  /// Re-advises `mix` against an already-enumerated candidate pool and a
  /// shared PlanSpaceCache — the incremental-advising entry point
  /// (src/evolve). Produces exactly what Recommend(workload, mix) would
  /// whenever `pool` matches what enumeration of that mix yields; the
  /// cache supplies reusable plan spaces plus the previous solve's
  /// root-LP basis (hot start). The previous incumbent is deliberately
  /// not seeded: under gap-based pruning it could steer branch and bound
  /// to a different within-gap optimum than a cold solve returns.
  StatusOr<Recommendation> RecommendWithPool(const Workload& workload,
                                             const std::string& mix,
                                             const CandidatePool& pool,
                                             PlanSpaceCache* cache) const;

  /// Multi-period, migration-aware planning: enumerates ONE union pool
  /// over the horizon's distinct mixes, then solves the joint BIP
  /// (optimizer/horizon.h) that picks a schema per window and schedules a
  /// migration only where it pays for itself over the remaining windows.
  /// Plan spaces are shared across windows through one PlanSpaceCache and
  /// successive window solves hot-start from each other's root basis. On a
  /// horizon of identical windows this collapses to exactly one
  /// single-window solve — each window's recommendation is then
  /// byte-identical to Recommend(workload, mix) with zero migrations.
  StatusOr<HorizonPlan> PlanHorizon(
      const Workload& workload, const WorkloadHorizon& horizon,
      const HorizonPlanOptions& horizon_options = HorizonPlanOptions()) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  /// Optimization + diagnostics + invariant audit for one mix against an
  /// already-enumerated pool (moved into the Recommendation first, so plans
  /// can point into it). Shared by Recommend and AdviseAllMixes.
  /// `optimizer_deadline_seconds` > 0 bounds the optimizer stage
  /// (anytime advising); 0 means unbudgeted.
  StatusOr<Recommendation> RecommendImpl(
      const Workload& workload, const std::string& mix, CandidatePool pool,
      double enumeration_seconds, util::ThreadPool* threads,
      PlanSpaceCache* cache, double optimizer_deadline_seconds = 0.0) const;

  AdvisorOptions options_;
  CostModel cost_model_;
};

/// Seeds `out` with exact projections of `super_cache`'s plan spaces onto
/// `sub_pool`, for the statements in `entries` — the cross-group sharing
/// path of AdviseAllMixes (Browsing ⊆ Bidding) and of incremental
/// re-advising after a statement set shrinks. Every seeded space is
/// byte-identical to what a fresh build over `sub_pool` would produce.
/// Returns false without touching `out` when some sub-pool candidate is
/// absent from `super_pool` (the pools do not nest, so projection would be
/// lossy). Statements missing from `super_cache` are skipped — the
/// optimizer simply rebuilds those.
bool SeedCacheFromSuperset(
    const PlanSpaceCache& super_cache, const CandidatePool& super_pool,
    const CandidatePool& sub_pool,
    const std::vector<std::pair<const WorkloadEntry*, double>>& entries,
    PlanSpaceCache* out);

}  // namespace nose

#endif  // NOSE_ADVISOR_ADVISOR_H_
