#include "analysis/diagnostic.h"

#include <algorithm>

namespace nose {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string SourceLocation::ToString() const {
  std::string out = file.empty() ? "<input>" : file;
  if (line > 0) out += ":" + std::to_string(line);
  return out;
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (location.IsKnown()) out += location.ToString() + ": ";
  out += std::string(SeverityName(severity)) + ": " + message;
  out += " [" + code + "]";
  if (!note.empty()) out += "\n  note: " + note;
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

size_t CountSeverity(const std::vector<Diagnostic>& diags, Severity severity) {
  return static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(), [&](const Diagnostic& d) {
        return d.severity == severity;
      }));
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.location.file != b.location.file) {
                       return a.location.file < b.location.file;
                     }
                     if (a.location.line != b.location.line) {
                       return a.location.line < b.location.line;
                     }
                     if (a.code != b.code) return a.code < b.code;
                     return a.message < b.message;
                   });
}

}  // namespace nose
