#ifndef NOSE_ANALYSIS_LINT_H_
#define NOSE_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "model/entity_graph.h"
#include "workload/workload.h"

namespace nose {

/// File names attached to lint diagnostics so locations render as
/// "file:line". Leave empty when the model/workload did not come from files.
struct LintSources {
  std::string model_file;
  std::string workload_file;
};

/// Static checks over the conceptual model alone. Diagnostic codes:
///   NOSE-E006 broken-relationship    relationship endpoint is not an entity
///   NOSE-W005 cardinality-mismatch   field/relationship statistics are
///                                    inconsistent with entity counts
std::vector<Diagnostic> LintModel(const EntityGraph& graph,
                                  const LintSources& sources = {});

/// Static checks over a workload and the model it references. Parsers reject
/// outright-malformed input; these passes catch statements that parse but
/// cannot mean what the author intended. Diagnostic codes:
///   NOSE-E001 dangling-field          statement references a field that the
///                                     model does not define
///   NOSE-E002 missing-equality-anchor query has no equality predicate, so no
///                                     get request can be anchored (§IV-A2)
///   NOSE-E003 predicate-type-mismatch range predicate on a non-orderable
///                                     (boolean) field, or a literal whose
///                                     type contradicts the field type
///   NOSE-E004 invalid-weight          negative or non-finite statement weight
///   NOSE-E005 empty-workload          workload defines no statements
///   NOSE-W001 unreachable-entity      entity appears on no statement path
///   NOSE-W002 unused-field            field is never selected, filtered,
///                                     ordered or written by any statement
///   NOSE-W003 dead-write              UPDATE sets only fields no query reads
///   NOSE-W004 mix-gap                 statement has no weight entry in some
///                                     named mix (note severity)
/// NOSE-W006 (timing-residual) is emitted by the advisor — as a Diagnostic
/// in Recommendation::diagnostics — when its phase breakdown fails to
/// account for the measured total; `nose check`/`nose advise` print it with
/// the findings from these passes.
std::vector<Diagnostic> LintWorkload(const Workload& workload,
                                     const LintSources& sources = {});

/// LintModel + LintWorkload, sorted for presentation.
std::vector<Diagnostic> LintAll(const Workload& workload,
                                const LintSources& sources = {});

}  // namespace nose

#endif  // NOSE_ANALYSIS_LINT_H_
