#ifndef NOSE_ANALYSIS_DIAGNOSTIC_H_
#define NOSE_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace nose {

/// Severity of a lint / invariant diagnostic. Errors indicate input that is
/// structurally valid but certainly wrong (the advisor would produce a
/// meaningless or broken recommendation); warnings indicate suspicious
/// constructs; notes are informational.
enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity severity);

/// Where a diagnostic points in the user's input. `line` is 1-based; 0 means
/// the location is unknown (e.g. programmatically built models, or checks on
/// advisor output rather than source text).
struct SourceLocation {
  std::string file;
  int line = 0;

  bool IsKnown() const { return line > 0 || !file.empty(); }
  /// "file:12" / "file" / "<input>:12" / "<input>".
  std::string ToString() const;
};

/// One structured finding from `nose lint` or the invariant checker.
/// `code` is stable and machine-greppable (NOSE-Wnnn / NOSE-Ennn for lint
/// passes, NOSE-Innn for advisor-output invariants); `message` is the
/// one-line human explanation; `note` optionally carries a hint about the
/// likely fix or the values involved.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  SourceLocation location;
  std::string message;
  std::string note;

  /// Compiler-style rendering:
  ///   "file:12: error: message [NOSE-E003]\n  note: hint"
  std::string ToString() const;
};

/// Renders each diagnostic on its own line (notes indented under them).
std::string FormatDiagnostics(const std::vector<Diagnostic>& diags);

/// True if any diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// Number of diagnostics at exactly `severity`.
size_t CountSeverity(const std::vector<Diagnostic>& diags, Severity severity);

/// Stable presentation order: by file, then line, then code, then message.
void SortDiagnostics(std::vector<Diagnostic>* diags);

}  // namespace nose

#endif  // NOSE_ANALYSIS_DIAGNOSTIC_H_
