#include "analysis/invariants.h"

#include <cmath>
#include <cstddef>
#include <map>
#include <set>
#include <string>

namespace nose {

namespace {

void Emit(std::vector<Diagnostic>* out, std::string code, std::string message,
          std::string note = "") {
  out->push_back(Diagnostic{std::move(code), Severity::kError, SourceLocation{},
                            std::move(message), std::move(note)});
}

/// The surrogate-key reference of the query-path entity at `index`.
FieldRef IdRefAt(const Query& query, size_t index) {
  const Entity& entity =
      query.graph()->GetEntity(query.path().EntityAt(index));
  return FieldRef{entity.name(), entity.id_field().name};
}

/// Schema membership by interned pool id when both sides carry one (O(1),
/// no canonical-key hashing); canonical-key fallback for hand-built
/// schemas and ad-hoc plans.
bool SchemaHasCf(const Schema& schema, CfId cf_id, const ColumnFamily& cf) {
  if (cf_id != kInvalidCfId && schema.has_pool_ids()) {
    return schema.ContainsId(cf_id);
  }
  return schema.Contains(cf);
}

/// Multiset of predicate renderings a step applies (partition bindings,
/// clustering prefix, pushed range, client-side filters).
void CollectStepPredicates(const PlanStep& step,
                           std::multiset<std::string>* into) {
  for (const Predicate& p : step.access.partition_preds) {
    into->insert(p.ToString());
  }
  for (const Predicate& p : step.access.clustering_eq) {
    into->insert(p.ToString());
  }
  if (step.access.pushed_range.has_value()) {
    into->insert(step.access.pushed_range->ToString());
  }
  for (const Predicate& p : step.access.filters) into->insert(p.ToString());
}

}  // namespace

std::vector<Diagnostic> CheckQueryPlan(const QueryPlan& plan,
                                       const Schema& schema,
                                       const std::string& label) {
  std::vector<Diagnostic> out;
  if (plan.query == nullptr) {
    Emit(&out, "NOSE-I002", label + ": plan carries no query");
    return out;
  }
  const Query& query = *plan.query;
  if (plan.steps.empty()) {
    Emit(&out, "NOSE-I002", label + ": plan has no steps");
    return out;
  }

  // NOSE-I002: steps walk the query path monotonically toward entity 0,
  // each consuming exactly the segment its column family spans, with the
  // opening step (and only it) keyed by statement parameters.
  for (size_t k = 0; k < plan.steps.size(); ++k) {
    const PlanStep& step = plan.steps[k];
    if (step.first != (k == 0)) {
      Emit(&out, "NOSE-I002",
           label + ": step " + std::to_string(k) +
               (k == 0 ? " is not marked as the opening step"
                       : " is marked as an opening step"));
    }
    if (step.from_index < step.to_index ||
        step.from_index >= query.path().NumEntities()) {
      Emit(&out, "NOSE-I002",
           label + ": step " + std::to_string(k) + " spans invalid segment [" +
               std::to_string(step.to_index) + ", " +
               std::to_string(step.from_index) + "]");
      continue;
    }
    if (k > 0 && step.from_index != plan.steps[k - 1].to_index) {
      Emit(&out, "NOSE-I002",
           label + ": step " + std::to_string(k) + " starts at entity index " +
               std::to_string(step.from_index) +
               " but the previous step ended at " +
               std::to_string(plan.steps[k - 1].to_index));
    }
    if (step.cf != nullptr) {
      const KeyPath segment =
          query.path().SubPath(step.to_index, step.from_index);
      if (!(step.cf->path() == segment ||
            step.cf->path() == segment.Reversed())) {
        Emit(&out, "NOSE-I002",
             label + ": step " + std::to_string(k) + " reads '" +
                 step.cf->key() + "' whose path does not span " +
                 segment.ToString());
      }
    }

    // NOSE-I004: every step must read a column family of the schema.
    if (step.cf == nullptr) {
      Emit(&out, "NOSE-I004",
           label + ": step " + std::to_string(k) + " has no column family");
      continue;
    }
    if (!SchemaHasCf(schema, step.cf_id, *step.cf)) {
      Emit(&out, "NOSE-I004",
           label + ": step " + std::to_string(k) +
               " reads a column family absent from the schema: " +
               step.cf->key());
    }

    // NOSE-I007: a get is only issuable when every partition-key field is
    // bound — by an equality predicate or by the ID set handed over from
    // the previous step (never available to the opening step).
    if (step.first &&
        (step.access.partition_uses_id || step.access.clustering_uses_id)) {
      Emit(&out, "NOSE-I007",
           label + ": opening step claims to bind keys from a held ID set");
    }
    const FieldRef held_id = IdRefAt(query, step.from_index);
    for (const FieldRef& field : step.cf->partition_key()) {
      bool bound = false;
      for (const Predicate& p : step.access.partition_preds) {
        if (p.field == field && p.IsEquality()) bound = true;
      }
      if (step.access.partition_uses_id && field == held_id) bound = true;
      if (!bound) {
        Emit(&out, "NOSE-I007",
             label + ": step " + std::to_string(k) +
                 " leaves partition-key field '" + field.QualifiedName() +
                 "' of '" + step.cf->key() + "' unbound");
      }
    }
  }

  // NOSE-I003: the plan applies each query predicate exactly once — as a
  // partition binding, a clustering binding, a pushed range, or a filter.
  std::multiset<std::string> applied;
  for (const PlanStep& step : plan.steps) {
    CollectStepPredicates(step, &applied);
  }
  std::multiset<std::string> expected;
  for (const Predicate& p : query.predicates()) expected.insert(p.ToString());
  if (applied != expected) {
    std::string note;
    for (const std::string& p : expected) {
      if (applied.count(p) != expected.count(p)) {
        note += "'" + p + "' applied " + std::to_string(applied.count(p)) +
                "x (want " + std::to_string(expected.count(p)) + "x); ";
      }
    }
    for (const std::string& p : applied) {
      if (expected.count(p) == 0) note += "'" + p + "' applied but not in query; ";
    }
    Emit(&out, "NOSE-I003",
         label + ": plan does not apply each query predicate exactly once",
         note);
  }
  return out;
}

std::vector<Diagnostic> CheckUpdatePlan(const UpdatePlan& plan,
                                        const Schema& schema,
                                        const std::string& label) {
  std::vector<Diagnostic> out;
  if (plan.update == nullptr) {
    Emit(&out, "NOSE-I002", label + ": update plan carries no statement");
    return out;
  }
  for (size_t k = 0; k < plan.parts.size(); ++k) {
    const UpdatePlanPart& part = plan.parts[k];
    if (part.cf == nullptr) {
      Emit(&out, "NOSE-I004",
           label + ": maintenance part " + std::to_string(k) +
               " has no column family");
      continue;
    }
    if (!SchemaHasCf(schema, part.cf_id, *part.cf)) {
      Emit(&out, "NOSE-I004",
           label + ": maintenance part " + std::to_string(k) +
               " targets a column family absent from the schema: " +
               part.cf->key());
    }
    if (!Modifies(*plan.update, *part.cf)) {
      Emit(&out, "NOSE-I005",
           label + ": maintenance part " + std::to_string(k) +
               " targets a column family the statement does not modify: " +
               part.cf->key());
    }
    for (size_t s = 0; s < part.support_plans.size(); ++s) {
      std::vector<Diagnostic> sub = CheckQueryPlan(
          part.support_plans[s], schema,
          label + " support query " + std::to_string(s) + " for '" +
              part.cf->key() + "'");
      out.insert(out.end(), std::make_move_iterator(sub.begin()),
                 std::make_move_iterator(sub.end()));
    }
  }
  return out;
}

std::vector<Diagnostic> AuditRecommendation(const Workload& workload,
                                            const std::string& mix,
                                            const RecommendationView& view) {
  std::vector<Diagnostic> out;
  if (view.schema == nullptr || view.query_plans == nullptr ||
      view.update_plans == nullptr) {
    Emit(&out, "NOSE-I001", "recommendation view is incomplete");
    return out;
  }
  const Schema& schema = *view.schema;

  std::map<std::string, const QueryPlan*> query_plans;
  for (const auto& [name, plan] : *view.query_plans) {
    query_plans[name] = &plan;
  }
  std::map<std::string, const UpdatePlan*> update_plans;
  for (const auto& [name, plan] : *view.update_plans) {
    update_plans[name] = &plan;
  }

  double replayed = 0.0;
  for (const auto& [entry, weight] : workload.EntriesIn(mix)) {
    const std::string label = "statement '" + entry->name + "'";
    if (entry->IsQuery()) {
      auto it = query_plans.find(entry->name);
      if (it == query_plans.end()) {
        // NOSE-I001: every weighted statement needs an implementation plan.
        Emit(&out, "NOSE-I001", label + " has no recommended query plan");
        continue;
      }
      const QueryPlan& plan = *it->second;
      std::vector<Diagnostic> sub = CheckQueryPlan(plan, schema, label);
      out.insert(out.end(), std::make_move_iterator(sub.begin()),
                 std::make_move_iterator(sub.end()));
      if (plan.query != nullptr &&
          plan.query->ToString() != entry->query().ToString()) {
        Emit(&out, "NOSE-I002",
             label + ": recommended plan answers a different query",
             "plan: " + plan.query->ToString());
      }
      replayed += weight * plan.cost;
    } else {
      auto it = update_plans.find(entry->name);
      if (it == update_plans.end()) {
        Emit(&out, "NOSE-I001", label + " has no recommended update plan");
        continue;
      }
      const UpdatePlan& plan = *it->second;
      std::vector<Diagnostic> sub = CheckUpdatePlan(plan, schema, label);
      out.insert(out.end(), std::make_move_iterator(sub.begin()),
                 std::make_move_iterator(sub.end()));

      // NOSE-I005: every modified column family of the schema must have a
      // maintenance part (Algorithm 1's Modifies? contract). Match parts
      // by interned id when the schema has them, else by canonical key.
      for (size_t ci = 0; ci < schema.column_families().size(); ++ci) {
        const ColumnFamily& cf = schema.column_families()[ci];
        if (!Modifies(entry->update(), cf)) continue;
        const CfId cf_id = schema.PoolIdAt(ci);
        bool covered = false;
        for (const UpdatePlanPart& part : plan.parts) {
          if (part.cf == nullptr) continue;
          if (cf_id != kInvalidCfId && part.cf_id != kInvalidCfId
                  ? part.cf_id == cf_id
                  : part.cf->key() == cf.key()) {
            covered = true;
          }
        }
        if (!covered) {
          Emit(&out, "NOSE-I005",
               label + " modifies '" + cf.key() +
                   "' but its plan has no maintenance part for it");
        }
      }

      // Replay cost. A support plan shared between parts is stored once per
      // part but executed (and priced by the optimizer) once per statement,
      // so deduplicate by the synthesized support query.
      double update_cost = 0.0;
      std::set<std::string> counted_supports;
      for (const UpdatePlanPart& part : plan.parts) {
        update_cost += part.write_cost;
        for (const QueryPlan& support : part.support_plans) {
          const std::string key = support.query != nullptr
                                      ? support.query->ToString()
                                      : std::to_string(update_cost);
          if (counted_supports.insert(key).second) {
            update_cost += support.cost;
          }
        }
      }
      replayed += weight * update_cost;
    }
  }

  // NOSE-I006: the reported objective must be reproducible from the plans.
  const double tolerance = 1e-4 * std::max(1.0, std::abs(view.objective));
  if (std::abs(replayed - view.objective) > tolerance) {
    Emit(&out, "NOSE-I006",
         "reported objective " + std::to_string(view.objective) +
             " does not match the cost replayed from the plans (" +
             std::to_string(replayed) + ") under mix '" + mix + "'");
  }
  return out;
}

Status VerifyRecommendation(const Workload& workload, const std::string& mix,
                            const RecommendationView& view) {
  std::vector<Diagnostic> diags = AuditRecommendation(workload, mix, view);
  if (!HasErrors(diags)) return Status::Ok();
  return Status::Internal("recommendation violates invariants:\n" +
                          FormatDiagnostics(diags));
}

}  // namespace nose
