#ifndef NOSE_ANALYSIS_CERTIFY_H_
#define NOSE_ANALYSIS_CERTIFY_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "solver/certificate.h"

namespace nose {

/// Result of independently re-verifying a SolveCertificate with exact
/// rational arithmetic (util/rational.h). Every verdict below is derived
/// from the certificate alone — the checker shares no code with the simplex
/// engines, so it cannot inherit their bugs or their floating-point drift.
struct CertificateReport {
  /// True when no error-severity diagnostic fired: the solution is exactly
  /// feasible and the claimed objective matches the exact recomputation.
  bool verified = false;
  /// NOSE-C001..C005 findings (empty when fully verified, aside from notes).
  std::vector<Diagnostic> diagnostics;
  /// cᵀx recomputed exactly, rounded to the nearest double for reporting.
  double exact_objective = 0.0;
  /// True when the certificate carried duals and every variable the bound
  /// formula touches has finite bounds, so a safe lower bound exists.
  bool bound_available = false;
  /// Certified lower bound on ANY feasible solution of the instance
  /// (Neumaier–Shcherbina safe bound assembled from the duals in exact
  /// arithmetic; wrong-signed duals are clamped to 0, which can only weaken
  /// the bound, never invalidate it).
  double dual_bound = 0.0;
  /// exact_objective − dual_bound (≥ 0 whenever the solution verified —
  /// weak duality makes an overclaim impossible for a feasible point).
  double certified_gap = 0.0;
};

/// Diagnostic codes (all error severity):
///   NOSE-C001 certificate-malformed   structural mismatch (also used by
///                                     callers for a failed parse)
///   NOSE-C002 primal-infeasible       x violates a row, a variable bound,
///                                     or integrality of a binary
///   NOSE-C003 objective-mismatch      claimed objective differs from the
///                                     exact cᵀx beyond accumulation slack
///   NOSE-C004 bound-overclaimed       claimed root bound exceeds the bound
///                                     the duals actually certify
///   NOSE-C005 arithmetic-overflow     a 128-bit mantissa overflowed; the
///                                     claim is unverifiable (never passes)
///
/// Feasibility is exact: rows whose coefficients, bounds, and solution
/// values are all integers must hold with zero violation. Rows mixing in
/// non-integer coefficients (the storage constraint's byte sizes) get an
/// explicit slack of 1e-9 × max|coefficient| — the formulation tolerance,
/// stated once here rather than hidden in solver epsilons.
CertificateReport CheckCertificate(const SolveCertificate& cert);

}  // namespace nose

#endif  // NOSE_ANALYSIS_CERTIFY_H_
