#include "analysis/lint.h"

#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace nose {

namespace {

SourceLocation ModelLoc(const LintSources& sources, int line) {
  return SourceLocation{sources.model_file, line};
}

SourceLocation WorkloadLoc(const LintSources& sources, int line) {
  return SourceLocation{sources.workload_file, line};
}

void Emit(std::vector<Diagnostic>* out, std::string code, Severity severity,
          SourceLocation loc, std::string message, std::string note = "") {
  out->push_back(Diagnostic{std::move(code), severity, std::move(loc),
                            std::move(message), std::move(note)});
}

/// True if a literal of this Value alternative can be compared against a
/// field of `type` without a conversion that changes its meaning. Lenient
/// where the parser is (integer literals satisfy float fields; dates accept
/// both numeric and textual forms).
bool LiteralCompatible(const Value& literal, FieldType type) {
  const bool is_int = std::holds_alternative<int64_t>(literal);
  const bool is_float = std::holds_alternative<double>(literal);
  const bool is_string = std::holds_alternative<std::string>(literal);
  const bool is_bool = std::holds_alternative<bool>(literal);
  switch (type) {
    case FieldType::kId:
      return is_int || is_string;
    case FieldType::kInteger:
      return is_int;
    case FieldType::kFloat:
      return is_int || is_float;
    case FieldType::kString:
      return is_string;
    case FieldType::kDate:
      return is_int || is_float || is_string;
    case FieldType::kBoolean:
      return is_bool;
  }
  return true;
}

const char* LiteralTypeName(const Value& literal) {
  if (std::holds_alternative<int64_t>(literal)) return "integer";
  if (std::holds_alternative<double>(literal)) return "float";
  if (std::holds_alternative<std::string>(literal)) return "string";
  return "boolean";
}

/// Shared E001/E003 checks for one predicate. Returns the resolved field
/// type when the reference is valid.
void CheckPredicate(const EntityGraph& graph, const Predicate& pred,
                    const std::string& stmt_name, const SourceLocation& loc,
                    std::vector<Diagnostic>* out) {
  StatusOr<const Field*> field = graph.ResolveField(pred.field);
  if (!field.ok()) {
    Emit(out, "NOSE-E001", Severity::kError, loc,
         "statement '" + stmt_name + "' references unknown field '" +
             pred.field.QualifiedName() + "'",
         field.status().message());
    return;
  }
  const FieldType type = field.value()->type;
  if (pred.IsRange() && type == FieldType::kBoolean) {
    Emit(out, "NOSE-E003", Severity::kError, loc,
         "range predicate '" + pred.ToString() +
             "' on non-orderable boolean field in statement '" + stmt_name +
             "'",
         "boolean fields support only = and != comparisons");
  }
  if (pred.literal.has_value() && !LiteralCompatible(*pred.literal, type)) {
    Emit(out, "NOSE-E003", Severity::kError, loc,
         std::string("literal of type ") + LiteralTypeName(*pred.literal) +
             " compared against " + FieldTypeName(type) + " field '" +
             pred.field.QualifiedName() + "' in statement '" + stmt_name + "'");
  }
}

}  // namespace

std::vector<Diagnostic> LintModel(const EntityGraph& graph,
                                  const LintSources& sources) {
  std::vector<Diagnostic> out;

  // NOSE-E006: relationship endpoints must be entities of the graph.
  for (const Relationship& rel : graph.relationships()) {
    for (const std::string& end : {rel.from_entity, rel.to_entity}) {
      if (graph.FindEntity(end) == nullptr) {
        Emit(&out, "NOSE-E006", Severity::kError,
             ModelLoc(sources, rel.def_line),
             "relationship endpoint '" + end + "' is not a declared entity");
      }
    }
  }

  // NOSE-W005: statistics consistency.
  for (const std::string& name : graph.entity_order()) {
    const Entity& entity = graph.GetEntity(name);
    for (const Field& field : entity.fields()) {
      if (field.cardinality > entity.count() && entity.count() > 0) {
        Emit(&out, "NOSE-W005", Severity::kWarning,
             ModelLoc(sources, field.def_line),
             "field '" + name + "." + field.name + "' declares " +
                 std::to_string(field.cardinality) +
                 " distinct values but entity '" + name + "' has only " +
                 std::to_string(entity.count()) + " instances",
             "the advisor clamps cardinality to the entity count");
      }
    }
  }
  for (const Relationship& rel : graph.relationships()) {
    const Entity* from = graph.FindEntity(rel.from_entity);
    const Entity* to = graph.FindEntity(rel.to_entity);
    if (from == nullptr || to == nullptr) continue;  // E006 above
    const SourceLocation loc = ModelLoc(sources, rel.def_line);
    switch (rel.cardinality) {
      case Cardinality::kOneToOne:
        if (from->count() != to->count()) {
          Emit(&out, "NOSE-W005", Severity::kWarning, loc,
               "one_to_one relationship between '" + rel.from_entity + "' (" +
                   std::to_string(from->count()) + " instances) and '" +
                   rel.to_entity + "' (" + std::to_string(to->count()) +
                   " instances) with unequal counts");
        }
        break;
      case Cardinality::kOneToMany:
        if (to->count() < from->count()) {
          Emit(&out, "NOSE-W005", Severity::kWarning, loc,
               "one_to_many relationship from '" + rel.from_entity + "' (" +
                   std::to_string(from->count()) + " instances) to '" +
                   rel.to_entity + "' (" + std::to_string(to->count()) +
                   " instances): the many side has fewer instances",
               "each '" + rel.to_entity + "' relates to exactly one '" +
                   rel.from_entity + "', so some '" + rel.from_entity +
                   "' instances relate to nothing");
        }
        break;
      case Cardinality::kManyToMany: {
        const uint64_t max_links = from->count() * to->count();
        if (rel.link_count > max_links && max_links > 0) {
          Emit(&out, "NOSE-W005", Severity::kWarning, loc,
               "many_to_many relationship declares " +
                   std::to_string(rel.link_count) +
                   " links but only " + std::to_string(max_links) +
                   " distinct pairs exist");
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Diagnostic> LintWorkload(const Workload& workload,
                                     const LintSources& sources) {
  std::vector<Diagnostic> out;
  const EntityGraph& graph = *workload.graph();

  // NOSE-E005: an empty workload yields a vacuous recommendation.
  if (workload.entries().empty()) {
    Emit(&out, "NOSE-E005", Severity::kError, WorkloadLoc(sources, 0),
         "workload defines no statements");
    return out;
  }

  // Accumulators for the cross-statement passes.
  std::set<std::string> reachable;              // entities on some path
  std::set<std::string> read_fields;            // selected/filtered/ordered
  std::set<std::string> referenced_fields;      // read or written

  for (const WorkloadEntry& entry : workload.entries()) {
    const SourceLocation loc = WorkloadLoc(sources, entry.def_line);

    // NOSE-E004: weights must be finite and non-negative in every mix.
    for (const auto& [mix, weight] : entry.weights) {
      if (!(weight >= 0.0) || !std::isfinite(weight)) {
        Emit(&out, "NOSE-E004", Severity::kError, loc,
             "statement '" + entry.name + "' has invalid weight " +
                 std::to_string(weight) + " in mix '" + mix + "'",
             "weights are relative frequencies and must be finite and >= 0");
      }
    }

    if (entry.IsQuery()) {
      const Query& query = entry.query();
      for (const std::string& e : query.path().entities()) reachable.insert(e);

      bool has_equality = false;
      for (const Predicate& pred : query.predicates()) {
        CheckPredicate(graph, pred, entry.name, loc, &out);
        if (pred.IsEquality()) has_equality = true;
        read_fields.insert(pred.field.QualifiedName());
        referenced_fields.insert(pred.field.QualifiedName());
      }
      // NOSE-E002: without an equality the first get has no key to bind
      // (paper §IV-A2); the planner cannot anchor any plan.
      if (!has_equality) {
        Emit(&out, "NOSE-E002", Severity::kError, loc,
             "query '" + entry.name + "' has no equality predicate",
             "every plan starts from a get keyed by an equality-bound "
             "partition key");
      }
      for (const FieldRef& ref : query.select()) {
        if (!graph.ResolveField(ref).ok()) {
          Emit(&out, "NOSE-E001", Severity::kError, loc,
               "query '" + entry.name + "' selects unknown field '" +
                   ref.QualifiedName() + "'");
        }
        read_fields.insert(ref.QualifiedName());
        referenced_fields.insert(ref.QualifiedName());
      }
      for (const OrderField& order : query.order_by()) {
        if (!graph.ResolveField(order.field).ok()) {
          Emit(&out, "NOSE-E001", Severity::kError, loc,
               "query '" + entry.name + "' orders by unknown field '" +
                   order.field.QualifiedName() + "'");
        }
        read_fields.insert(order.field.QualifiedName());
        referenced_fields.insert(order.field.QualifiedName());
      }
    } else {
      const Update& update = entry.update();
      for (const std::string& e : update.path().entities()) reachable.insert(e);

      for (const Predicate& pred : update.predicates()) {
        CheckPredicate(graph, pred, entry.name, loc, &out);
        read_fields.insert(pred.field.QualifiedName());
        referenced_fields.insert(pred.field.QualifiedName());
      }
      std::vector<std::string> set_fields;
      for (const SetClause& set : update.sets()) {
        const FieldRef ref{update.entity(), set.field};
        StatusOr<const Field*> field = graph.ResolveField(ref);
        if (!field.ok()) {
          Emit(&out, "NOSE-E001", Severity::kError, loc,
               "statement '" + entry.name + "' sets unknown field '" +
                   ref.QualifiedName() + "'");
        } else if (set.literal.has_value() &&
                   !LiteralCompatible(*set.literal, field.value()->type)) {
          Emit(&out, "NOSE-E003", Severity::kError, loc,
               std::string("literal of type ") + LiteralTypeName(*set.literal) +
                   " assigned to " + FieldTypeName(field.value()->type) +
                   " field '" + ref.QualifiedName() + "' in statement '" +
                   entry.name + "'");
        }
        set_fields.push_back(ref.QualifiedName());
        referenced_fields.insert(ref.QualifiedName());
      }
      for (const ConnectClause& connect : update.connects()) {
        std::optional<PathStep> step =
            graph.FindStep(update.entity(), connect.step_name);
        if (!step.has_value()) {
          Emit(&out, "NOSE-E001", Severity::kError, loc,
               "statement '" + entry.name + "' connects through unknown step '" +
                   connect.step_name + "' leaving '" + update.entity() + "'");
        } else {
          reachable.insert(graph.StepTarget(update.entity(), *step));
        }
      }
    }
  }

  // NOSE-W003: an UPDATE whose written fields no query ever reads performs
  // maintenance work that cannot be observed. (INSERT/DELETE/CONNECT change
  // which entities exist, so they are never dead.)
  for (const WorkloadEntry& entry : workload.entries()) {
    if (entry.IsQuery()) continue;
    const Update& update = entry.update();
    if (update.kind() != UpdateKind::kUpdate || update.sets().empty()) continue;
    bool any_read = false;
    std::string written;
    for (const SetClause& set : update.sets()) {
      const std::string qualified = update.entity() + "." + set.field;
      if (read_fields.count(qualified) > 0) any_read = true;
      if (!written.empty()) written += ", ";
      written += qualified;
    }
    if (!any_read) {
      Emit(&out, "NOSE-W003", Severity::kWarning,
           WorkloadLoc(sources, entry.def_line),
           "dead write: statement '" + entry.name + "' sets only fields (" +
               written + ") that no query reads",
           "drop the statement or the fields it maintains");
    }
  }

  // NOSE-W004 (note): statements missing from a named mix default to weight
  // 0 there — legitimate for e.g. a read-only mix, but worth surfacing.
  const std::vector<std::string> mixes = workload.MixNames();
  if (mixes.size() > 1) {
    for (const WorkloadEntry& entry : workload.entries()) {
      for (const std::string& mix : mixes) {
        if (entry.weights.count(mix) == 0) {
          Emit(&out, "NOSE-W004", Severity::kNote,
               WorkloadLoc(sources, entry.def_line),
               "statement '" + entry.name + "' has no weight in mix '" + mix +
                   "' (defaults to 0)");
        }
      }
    }
  }

  // NOSE-W001 / NOSE-W002: entities and fields the workload never touches.
  for (const std::string& name : graph.entity_order()) {
    const Entity& entity = graph.GetEntity(name);
    if (reachable.count(name) == 0) {
      Emit(&out, "NOSE-W001", Severity::kWarning,
           ModelLoc(sources, entity.def_line()),
           "entity '" + name + "' is not reached by any statement path",
           "no column family will store its attributes");
      continue;  // per-field reports would be redundant
    }
    for (const Field& field : entity.fields()) {
      if (field.type == FieldType::kId) continue;
      if (referenced_fields.count(name + "." + field.name) == 0) {
        Emit(&out, "NOSE-W002", Severity::kWarning,
             ModelLoc(sources, field.def_line),
             "field '" + name + "." + field.name +
                 "' is never selected, filtered, ordered or written");
      }
    }
  }
  return out;
}

std::vector<Diagnostic> LintAll(const Workload& workload,
                                const LintSources& sources) {
  std::vector<Diagnostic> out = LintModel(*workload.graph(), sources);
  std::vector<Diagnostic> wl = LintWorkload(workload, sources);
  out.insert(out.end(), std::make_move_iterator(wl.begin()),
             std::make_move_iterator(wl.end()));
  SortDiagnostics(&out);
  return out;
}

}  // namespace nose
