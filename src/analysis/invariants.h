#ifndef NOSE_ANALYSIS_INVARIANTS_H_
#define NOSE_ANALYSIS_INVARIANTS_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "planner/plan.h"
#include "planner/update_planner.h"
#include "schema/schema.h"
#include "util/status.h"
#include "workload/workload.h"

namespace nose {

/// A non-owning view of an advisor Recommendation, so the invariant checker
/// can audit advisor output without depending on the advisor library (which
/// depends on this one). Plans may point at column families outside
/// `schema` (e.g. into a candidate pool); membership is checked by
/// canonical key, not pointer identity.
struct RecommendationView {
  const Schema* schema = nullptr;
  const std::vector<std::pair<std::string, QueryPlan>>* query_plans = nullptr;
  const std::vector<std::pair<std::string, UpdatePlan>>* update_plans = nullptr;
  double objective = 0.0;
  bool solve_proven = false;
};

/// Structural invariants of one query plan against a schema. `label`
/// prefixes messages (e.g. the statement name). Codes:
///   NOSE-I002 step-chain-broken    steps do not form a contiguous walk of
///                                  the query path from its anchor toward
///                                  entity 0 (first flags, index chain, or
///                                  column-family path segment wrong)
///   NOSE-I003 predicate-partition  the plan does not apply each query
///                                  predicate exactly once
///   NOSE-I004 foreign-cf           a step reads a column family absent
///                                  from the schema
///   NOSE-I007 partition-key-unbound a step's get leaves part of the
///                                  partition key unbound
std::vector<Diagnostic> CheckQueryPlan(const QueryPlan& plan,
                                       const Schema& schema,
                                       const std::string& label);

/// Structural invariants of one update plan: every part targets a schema
/// column family (NOSE-I004) and its support plans satisfy CheckQueryPlan.
std::vector<Diagnostic> CheckUpdatePlan(const UpdatePlan& plan,
                                        const Schema& schema,
                                        const std::string& label);

/// Full audit of a recommendation against the workload it was derived from
/// (paper Fig. 4's contract). Adds to the per-plan checks:
///   NOSE-I001 plan-missing         a statement with weight in `mix` has no
///                                  recommended plan
///   NOSE-I005 maintenance-missing  an update modifies a schema column
///                                  family but its plan has no part for it
///   NOSE-I006 objective-mismatch   replaying plan costs against the mix
///                                  weights does not reproduce the reported
///                                  objective
std::vector<Diagnostic> AuditRecommendation(const Workload& workload,
                                            const std::string& mix,
                                            const RecommendationView& view);

/// AuditRecommendation folded into a Status: Ok when no error-severity
/// diagnostic fires, Internal with the rendered diagnostics otherwise.
/// This is what `AdvisorOptions::verify_invariants` runs after each solve.
Status VerifyRecommendation(const Workload& workload, const std::string& mix,
                            const RecommendationView& view);

}  // namespace nose

#endif  // NOSE_ANALYSIS_INVARIANTS_H_
