#ifndef NOSE_ANALYSIS_ANTIPATTERNS_H_
#define NOSE_ANALYSIS_ANTIPATTERNS_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/invariants.h"
#include "workload/workload.h"

namespace nose {

/// Thresholds for the NOSE-S anti-pattern analyses. Defaults are tuned so
/// the bundled workloads (RUBiS, hotel) come out clean while the seeded
/// fixtures in workloads/antipattern.* fire every code; deployments with
/// different scale expectations override them.
struct AntipatternOptions {
  /// S001: a partition expected to hold more than this many records keeps
  /// growing with the data set — wide-partition risk.
  double max_partition_entries = 100000.0;
  /// S002: one logical update that rewrites at least this many column
  /// families amplifies every write by that factor. RUBiS's registration
  /// updates legitimately maintain 8-9 families, so the default sits just
  /// above that.
  size_t write_fanout_threshold = 10;
  /// S004: candidate pool is "bloated" when it holds more than
  /// pool_bloat_ratio × (chosen column families), with at least
  /// pool_bloat_min candidates (small pools are never flagged).
  double pool_bloat_ratio = 50.0;
  size_t pool_bloat_min = 500;
  /// S005: fewer distinct partitions than this concentrates all traffic on
  /// a handful of nodes — hot-partition risk — provided the column family
  /// is big enough to matter (hot_partition_min_entries).
  double hot_partition_max_partitions = 4.0;
  double hot_partition_min_entries = 1000.0;
};

/// Schema anti-pattern analyses over an advisor recommendation (the
/// NoSQL-production failure modes catalogued by Scherzinger et al. —
/// unbounded partitions, write fan-out — plus advisor-specific hygiene).
/// All findings are warnings: the recommendation is correct, but deploying
/// it as-is carries operational risk. Codes:
///   NOSE-S001 unbounded-partition   expected records per partition exceed
///                                   max_partition_entries
///   NOSE-S002 write-amplification   one update maintains ≥ threshold
///                                   column families
///   NOSE-S003 subsumed-cf           a chosen column family is answerable
///                                   entirely by another chosen one
///   NOSE-S004 candidate-pool-bloat  enumeration produced far more
///                                   candidates than the solve used
///   NOSE-S005 hot-partition-skew    a large column family hashes to only
///                                   a few partitions
///
/// `candidate_pool_size` is the enumerated pool size behind the solve
/// (0 = unknown, disables S004). Statement-level findings (S002) carry the
/// statement's source location when the workload records one.
std::vector<Diagnostic> AnalyzeRecommendation(
    const Workload& workload, const std::string& mix,
    const RecommendationView& view, size_t candidate_pool_size,
    const AntipatternOptions& options = AntipatternOptions());

}  // namespace nose

#endif  // NOSE_ANALYSIS_ANTIPATTERNS_H_
