#include "analysis/antipatterns.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "schema/column_family.h"
#include "schema/schema.h"

namespace nose {

namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return std::string(buf);
}

void Warn(std::vector<Diagnostic>* out, const char* code, SourceLocation loc,
          std::string message, std::string note = "") {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::kWarning;
  d.location = std::move(loc);
  d.message = std::move(message);
  d.note = std::move(note);
  out->push_back(std::move(d));
}

/// Name of a column family in the recommended schema, falling back to its
/// canonical key for plan targets outside the schema.
std::string CfName(const Schema& schema, const ColumnFamily& cf) {
  const std::string* name = schema.NameOf(cf);
  return name != nullptr ? *name : cf.key();
}

/// True if `a` is answerable entirely by `b` at no extra cost: same path
/// and partition key (so the same get reaches both), `a`'s clustering key a
/// prefix of `b`'s (so `b` returns records in an order `a`'s consumers
/// accept), every field `a` stores present in `b`, and `b` carrying no
/// payload beyond `a`'s fields (a wider payload would make reads of `b`
/// more expensive, so keeping the narrow `a` is a legitimate cost
/// trade-off, not redundancy). Such an `a` adds storage and maintenance
/// cost without adding any access capability.
bool SubsumedBy(const ColumnFamily& a, const ColumnFamily& b) {
  if (a.key() == b.key()) return false;
  if (!(a.path() == b.path())) return false;
  if (a.partition_key() != b.partition_key()) return false;
  const auto& ac = a.clustering_key();
  const auto& bc = b.clustering_key();
  if (ac.size() > bc.size()) return false;
  if (!std::equal(ac.begin(), ac.end(), bc.begin())) return false;
  for (const FieldRef& f : a.values()) {
    if (!b.ContainsField(f)) return false;
  }
  for (const FieldRef& f : b.values()) {
    if (!a.ContainsField(f)) return false;
  }
  return true;
}

}  // namespace

std::vector<Diagnostic> AnalyzeRecommendation(
    const Workload& workload, const std::string& mix,
    const RecommendationView& view, size_t candidate_pool_size,
    const AntipatternOptions& options) {
  std::vector<Diagnostic> diags;
  if (view.schema == nullptr) return diags;
  const Schema& schema = *view.schema;

  // S001 / S005: per-column-family growth and skew from the model's
  // cardinality estimates.
  for (const ColumnFamily& cf : schema.column_families()) {
    const double entries = cf.EntryCount();
    const double partitions = std::max(1.0, cf.PartitionCount());
    const double per_partition = entries / partitions;
    if (per_partition > options.max_partition_entries) {
      Warn(&diags, "NOSE-S001", {},
           "column family " + CfName(schema, cf) + " expects ~" +
               Fmt(per_partition) + " records per partition (limit " +
               Fmt(options.max_partition_entries) + ")",
           "partitions grow with the data set; add a partition-key "
           "attribute or bucket the clustering key");
    }
    if (partitions < options.hot_partition_max_partitions &&
        entries >= options.hot_partition_min_entries) {
      Warn(&diags, "NOSE-S005", {},
           "column family " + CfName(schema, cf) + " hashes ~" +
               Fmt(entries) + " records onto only " + Fmt(partitions) +
               " partition(s)",
           "all traffic lands on a few nodes; widen the partition key");
    }
  }

  // S002: write amplification per logical update under this mix.
  if (view.update_plans != nullptr) {
    for (const auto& [name, plan] : *view.update_plans) {
      if (plan.parts.size() < options.write_fanout_threshold) continue;
      SourceLocation loc;
      const WorkloadEntry* entry = workload.FindEntry(name);
      if (entry != nullptr && entry->def_line > 0) {
        loc.line = entry->def_line;
      }
      Warn(&diags, "NOSE-S002", std::move(loc),
           "update " + name + " (mix " + mix + ") fans out into " +
               std::to_string(plan.parts.size()) + " column families",
           "every execution rewrites all of them; consider consolidating "
           "the column families it maintains");
    }
  }

  // S003: a chosen column family fully answerable by another chosen one.
  {
    const auto& cfs = schema.column_families();
    for (size_t i = 0; i < cfs.size(); ++i) {
      for (size_t j = 0; j < cfs.size(); ++j) {
        if (i == j) continue;
        if (SubsumedBy(cfs[i], cfs[j])) {
          Warn(&diags, "NOSE-S003", {},
               "column family " + CfName(schema, cfs[i]) +
                   " is subsumed by " + CfName(schema, cfs[j]),
               "same partition key, path and stored fields, with a "
               "clustering prefix — it adds cost but no capability");
          break;  // one finding per subsumed family is enough
        }
      }
    }
  }

  // S004: enumeration produced far more candidates than the solve chose.
  if (candidate_pool_size >= options.pool_bloat_min && !schema.empty()) {
    const double ratio =
        static_cast<double>(candidate_pool_size) /
        static_cast<double>(schema.size());
    if (ratio > options.pool_bloat_ratio) {
      Warn(&diags, "NOSE-S004", {},
           "candidate pool holds " + std::to_string(candidate_pool_size) +
               " column families but the recommendation uses " +
               std::to_string(schema.size()) + " (" + Fmt(ratio) + "x)",
           "enumeration breadth is driving solve time; consider tightening "
           "enumeration limits");
    }
  }

  SortDiagnostics(&diags);
  return diags;
}

}  // namespace nose
