#include "analysis/certify.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/rational.h"

namespace nose {

namespace {

using util::Dyadic;

/// Explicit formulation slack for rows with non-integer coefficients (the
/// storage constraint's fractional byte estimates): 1e-9 × the row's
/// largest coefficient magnitude. Integer-coefficient rows get zero.
constexpr double kFractionalRowSlack = 1e-9;
/// Accumulation slack for comparing the claimed objective (a sequential
/// double summation) against the exact value.
constexpr double kObjectiveSlack = 1e-9;
/// Slack for comparing the solver's claimed root bound against the bound
/// the duals certify: the duals themselves are floating-point, so the
/// certified bound legitimately sits slightly below the root LP optimum.
constexpr double kBoundSlack = 1e-6;

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return std::string(buf);
}

void Emit(std::vector<Diagnostic>* out, const char* code,
          std::string message, std::string note = "") {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::kError;
  d.message = std::move(message);
  d.note = std::move(note);
  out->push_back(std::move(d));
}

bool IsIntegral(double v) { return std::isfinite(v) && v == std::floor(v); }

}  // namespace

CertificateReport CheckCertificate(const SolveCertificate& cert) {
  CertificateReport report;
  std::vector<Diagnostic>& diags = report.diagnostics;
  const LpProblem& p = cert.problem;
  const int n = p.num_variables();
  const int m = p.num_rows();

  // --- Structure: every claim must have the shape the instance demands. ---
  if (cert.x.size() != static_cast<size_t>(n)) {
    Emit(&diags, "NOSE-C001",
         "solution vector has " + std::to_string(cert.x.size()) +
             " entries for an instance with " + std::to_string(n) +
             " variables");
    return report;
  }
  for (int var : cert.binary_vars) {
    if (var < 0 || var >= n) {
      Emit(&diags, "NOSE-C001",
           "binary variable index " + std::to_string(var) + " out of range");
      return report;
    }
  }
  if (cert.root_available &&
      cert.root_duals.size() != static_cast<size_t>(m)) {
    Emit(&diags, "NOSE-C001",
         "dual vector has " + std::to_string(cert.root_duals.size()) +
             " entries for an instance with " + std::to_string(m) + " rows");
    return report;
  }

  bool overflowed = false;
  auto note_overflow = [&diags, &overflowed](const std::string& where) {
    if (overflowed) return;
    overflowed = true;
    Emit(&diags, "NOSE-C005",
         "exact arithmetic overflowed a 128-bit mantissa while " + where,
         "the certificate is unverifiable, not wrong");
  };

  // --- Variable bounds and integrality (doubles compare exactly). ---
  int bound_violations = 0;
  for (int j = 0; j < n; ++j) {
    const double v = cert.x[static_cast<size_t>(j)];
    if (!std::isfinite(v) || v < p.lower_bound(j) || v > p.upper_bound(j)) {
      if (++bound_violations <= 5) {
        Emit(&diags, "NOSE-C002",
             "x[" + std::to_string(j) + "] = " + Fmt(v) +
                 " violates its bounds [" + Fmt(p.lower_bound(j)) + ", " +
                 Fmt(p.upper_bound(j)) + "]");
      }
    }
  }
  int integrality_violations = 0;
  for (int var : cert.binary_vars) {
    const double v = cert.x[static_cast<size_t>(var)];
    if (v != 0.0 && v != 1.0) {
      if (++integrality_violations <= 5) {
        Emit(&diags, "NOSE-C002",
             "binary x[" + std::to_string(var) + "] = " + Fmt(v) +
                 " is not exactly 0 or 1");
      }
    }
  }
  const int suppressed = (bound_violations > 5 ? bound_violations - 5 : 0) +
                         (integrality_violations > 5
                              ? integrality_violations - 5
                              : 0);
  if (suppressed > 0) {
    Emit(&diags, "NOSE-C002",
         std::to_string(suppressed) + " further bound/integrality violations");
  }

  // --- Row feasibility, exact. ---
  int row_violations = 0;
  for (int i = 0; i < m; ++i) {
    const LpRow& row = p.row(i);
    Dyadic lhs;
    double max_mag = 0.0;
    bool integral_row = IsIntegral(row.rhs);
    for (size_t k = 0; k < row.indices.size(); ++k) {
      const double a = row.values[k];
      const double v = cert.x[static_cast<size_t>(row.indices[k])];
      max_mag = std::max(max_mag, std::abs(a));
      if (!IsIntegral(a) || !IsIntegral(v)) integral_row = false;
      lhs = lhs + Dyadic::FromDouble(a) * Dyadic::FromDouble(v);
    }
    if (lhs.overflow()) {
      note_overflow("evaluating row " + std::to_string(i));
      continue;
    }
    // viol > 0 means the row is violated by that exact amount.
    Dyadic viol;
    if (row.type == RowType::kLe) {
      viol = lhs - Dyadic::FromDouble(row.rhs);
    } else if (row.type == RowType::kGe) {
      viol = Dyadic::FromDouble(row.rhs) - lhs;
    } else {
      const Dyadic d = lhs - Dyadic::FromDouble(row.rhs);
      viol = d.Sign() < 0 ? -d : d;
    }
    if (viol.overflow()) {
      note_overflow("evaluating row " + std::to_string(i));
      continue;
    }
    const double slack = integral_row ? 0.0 : kFractionalRowSlack * max_mag;
    if (viol.Compare(Dyadic::FromDouble(slack)) > 0) {
      if (++row_violations <= 5) {
        Emit(&diags, "NOSE-C002",
             "row " + std::to_string(i) + " violated by " +
                 Fmt(viol.ToDouble()) + " (exact)",
             integral_row ? "integer-coefficient row; zero slack applies"
                          : "fractional-coefficient row; slack " + Fmt(slack));
      }
    }
  }
  if (row_violations > 5) {
    Emit(&diags, "NOSE-C002",
         std::to_string(row_violations - 5) + " further violated rows");
  }

  // --- Objective, exact. ---
  Dyadic obj;
  for (int j = 0; j < n; ++j) {
    obj = obj + Dyadic::FromDouble(p.cost(j)) *
                    Dyadic::FromDouble(cert.x[static_cast<size_t>(j)]);
  }
  if (obj.overflow()) {
    note_overflow("recomputing the objective");
  } else {
    report.exact_objective = obj.ToDouble();
    const double tol =
        kObjectiveSlack * std::max(1.0, std::abs(cert.objective));
    const Dyadic diff = obj - Dyadic::FromDouble(cert.objective);
    const Dyadic mag = diff.Sign() < 0 ? -diff : diff;
    if (mag.overflow()) {
      note_overflow("recomputing the objective");
    } else if (mag.Compare(Dyadic::FromDouble(tol)) > 0) {
      Emit(&diags, "NOSE-C003",
           "claimed objective " + Fmt(cert.objective) +
               " differs from the exact recomputation " +
               Fmt(report.exact_objective) + " by " + Fmt(mag.ToDouble()));
    }
  }

  // --- Dual bound (Neumaier–Shcherbina): for any y with y ≤ 0 on ≤ rows,
  // y ≥ 0 on ≥ rows, and any feasible x,
  //   cᵀx = yᵀb + yᵀ(Ax − b) + (c − Aᵀy)ᵀx ≥ yᵀb + Σ_j min(r_j·l_j, r_j·u_j)
  // because the middle term is nonnegative under that sign cone. Clamping
  // wrong-signed duals to 0 keeps y in the cone, so even a tampered
  // certificate can only certify a WEAKER bound — never an invalid one. ---
  if (cert.root_available && !overflowed) {
    std::vector<Dyadic> r(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      r[static_cast<size_t>(j)] = Dyadic::FromDouble(p.cost(j));
    }
    Dyadic yb;
    for (int i = 0; i < m; ++i) {
      double y = cert.root_duals[static_cast<size_t>(i)];
      const LpRow& row = p.row(i);
      if (row.type == RowType::kLe && y > 0.0) y = 0.0;
      if (row.type == RowType::kGe && y < 0.0) y = 0.0;
      if (!std::isfinite(y)) y = 0.0;
      if (y == 0.0) continue;
      const Dyadic yd = Dyadic::FromDouble(y);
      yb = yb + yd * Dyadic::FromDouble(row.rhs);
      for (size_t k = 0; k < row.indices.size(); ++k) {
        Dyadic& rj = r[static_cast<size_t>(row.indices[k])];
        rj = rj - yd * Dyadic::FromDouble(row.values[k]);
      }
    }
    Dyadic bound = yb;
    bool finite_bound = !yb.overflow();
    for (int j = 0; j < n && finite_bound && !bound.overflow(); ++j) {
      const Dyadic& rj = r[static_cast<size_t>(j)];
      if (rj.overflow()) {
        finite_bound = false;
        note_overflow("assembling the dual bound");
        break;
      }
      const int sign = rj.Sign();
      if (sign == 0) continue;
      const double b = sign > 0 ? p.lower_bound(j) : p.upper_bound(j);
      if (!std::isfinite(b)) {
        // An unbounded direction with nonzero reduced cost: no finite
        // certified bound exists from these duals.
        finite_bound = false;
        Diagnostic d;
        d.code = "NOSE-C004";
        d.severity = Severity::kNote;
        d.message = "no finite dual bound: variable " + std::to_string(j) +
                    " has an infinite bound with nonzero reduced cost";
        diags.push_back(std::move(d));
        break;
      }
      bound = bound + rj * Dyadic::FromDouble(b);
    }
    if (bound.overflow()) {
      note_overflow("assembling the dual bound");
    } else if (finite_bound) {
      report.bound_available = true;
      report.dual_bound = bound.ToDouble();
      const double tol =
          kBoundSlack * std::max(1.0, std::abs(cert.root_objective));
      const Dyadic claimed = Dyadic::FromDouble(cert.root_objective);
      const Dyadic excess = claimed - bound;
      if (excess.overflow()) {
        note_overflow("assembling the dual bound");
      } else if (excess.Compare(Dyadic::FromDouble(tol)) > 0) {
        Emit(&diags, "NOSE-C004",
             "claimed root bound " + Fmt(cert.root_objective) +
                 " exceeds the bound the duals certify (" +
                 Fmt(report.dual_bound) + ")",
             "the duals do not support the claimed lower bound");
        report.bound_available = false;
      }
    }
  }

  report.verified = !HasErrors(diags);
  if (report.verified && report.bound_available) {
    // Weak duality guarantees gap ≥ 0 for a feasible x; the max() only
    // absorbs the final double rounding of two exact values.
    report.certified_gap =
        std::max(0.0, report.exact_objective - report.dual_bound);
  }
  return report;
}

}  // namespace nose
