#include "schema/schema.h"

namespace nose {

std::string Schema::Add(ColumnFamily cf, std::string name, CfId pool_id) {
  auto it = by_key_.find(cf.key());
  if (it != by_key_.end()) return names_[it->second];
  if (name.empty()) name = "cf" + std::to_string(cfs_.size());
  const size_t index = cfs_.size();
  by_key_.emplace(cf.key(), index);
  by_name_.emplace(name, index);
  if (pool_id != kInvalidCfId) by_id_.emplace(pool_id, index);
  cfs_.push_back(std::move(cf));
  names_.push_back(name);
  pool_ids_.push_back(pool_id);
  return name;
}

const std::string* Schema::NameOfId(CfId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &names_[it->second];
}

const ColumnFamily* Schema::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &cfs_[it->second];
}

const ColumnFamily* Schema::FindByKey(const std::string& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &cfs_[it->second];
}

const std::string* Schema::NameOf(const ColumnFamily& cf) const {
  auto it = by_key_.find(cf.key());
  return it == by_key_.end() ? nullptr : &names_[it->second];
}

double Schema::TotalSizeBytes() const {
  double total = 0.0;
  for (const ColumnFamily& cf : cfs_) total += cf.SizeBytes();
  return total;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < cfs_.size(); ++i) {
    out += names_[i] + ": " + cfs_[i].ToString() + "\n";
  }
  return out;
}

}  // namespace nose
