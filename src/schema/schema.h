#ifndef NOSE_SCHEMA_SCHEMA_H_
#define NOSE_SCHEMA_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "schema/candidate_pool.h"
#include "schema/column_family.h"

namespace nose {

/// A set of column families with stable names — the advisor's output and
/// the record store's catalog. Column families are deduplicated by their
/// canonical key. Schemas assembled from a CandidatePool additionally
/// remember each column family's interned CfId, giving downstream layers
/// (invariant audit, plan executor) O(1) id-based membership and name
/// resolution with no canonical-key hashing.
class Schema {
 public:
  Schema() = default;

  /// Adds `cf` under an auto-generated name ("cf0", "cf1", ...) unless
  /// `name` is given. Adding a duplicate definition is a no-op returning
  /// the existing name. `pool_id` records the candidate's interned id when
  /// the schema is assembled from a CandidatePool.
  std::string Add(ColumnFamily cf, std::string name = "",
                  CfId pool_id = kInvalidCfId);

  size_t size() const { return cfs_.size(); }
  bool empty() const { return cfs_.empty(); }

  const std::vector<ColumnFamily>& column_families() const { return cfs_; }
  const std::vector<std::string>& names() const { return names_; }

  const ColumnFamily* FindByName(const std::string& name) const;
  /// Looks up by canonical definition key; nullptr if absent.
  const ColumnFamily* FindByKey(const std::string& key) const;
  const std::string* NameOf(const ColumnFamily& cf) const;
  bool Contains(const ColumnFamily& cf) const {
    return FindByKey(cf.key()) != nullptr;
  }

  /// Id-based lookups; only answer for column families added with a
  /// pool_id (advisor-assembled schemas). `id` must not be kInvalidCfId.
  bool ContainsId(CfId id) const { return by_id_.count(id) > 0; }
  const std::string* NameOfId(CfId id) const;
  /// Pool id recorded for the column family at `index` (kInvalidCfId when
  /// the schema was hand-assembled).
  CfId PoolIdAt(size_t index) const { return pool_ids_[index]; }
  /// True if every column family carries a pool id.
  bool has_pool_ids() const { return by_id_.size() == cfs_.size(); }

  /// Sum of the size estimates of all column families.
  double TotalSizeBytes() const;

  /// One line per column family: "name: [pk][ck][values] $ path".
  std::string ToString() const;

 private:
  std::vector<ColumnFamily> cfs_;
  std::vector<std::string> names_;
  std::vector<CfId> pool_ids_;
  std::unordered_map<std::string, size_t> by_key_;
  std::unordered_map<std::string, size_t> by_name_;
  std::unordered_map<CfId, size_t> by_id_;
};

}  // namespace nose

#endif  // NOSE_SCHEMA_SCHEMA_H_
