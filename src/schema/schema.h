#ifndef NOSE_SCHEMA_SCHEMA_H_
#define NOSE_SCHEMA_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "schema/column_family.h"

namespace nose {

/// A set of column families with stable names — the advisor's output and
/// the record store's catalog. Column families are deduplicated by their
/// canonical key.
class Schema {
 public:
  Schema() = default;

  /// Adds `cf` under an auto-generated name ("cf0", "cf1", ...) unless
  /// `name` is given. Adding a duplicate definition is a no-op returning
  /// the existing name.
  std::string Add(ColumnFamily cf, std::string name = "");

  size_t size() const { return cfs_.size(); }
  bool empty() const { return cfs_.empty(); }

  const std::vector<ColumnFamily>& column_families() const { return cfs_; }
  const std::vector<std::string>& names() const { return names_; }

  const ColumnFamily* FindByName(const std::string& name) const;
  /// Looks up by canonical definition key; nullptr if absent.
  const ColumnFamily* FindByKey(const std::string& key) const;
  const std::string* NameOf(const ColumnFamily& cf) const;
  bool Contains(const ColumnFamily& cf) const {
    return FindByKey(cf.key()) != nullptr;
  }

  /// Sum of the size estimates of all column families.
  double TotalSizeBytes() const;

  /// One line per column family: "name: [pk][ck][values] $ path".
  std::string ToString() const;

 private:
  std::vector<ColumnFamily> cfs_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> by_key_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace nose

#endif  // NOSE_SCHEMA_SCHEMA_H_
