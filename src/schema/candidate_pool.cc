#include "schema/candidate_pool.h"

namespace nose {

CfId CandidatePool::Intern(ColumnFamily cf) {
  auto it = by_key_.find(cf.key());
  if (it != by_key_.end()) return it->second;
  const CfId id = static_cast<CfId>(cfs_.size());
  by_key_.emplace(cf.key(), id);
  cfs_.push_back(std::move(cf));
  return id;
}

CfId CandidatePool::Find(const ColumnFamily& cf) const {
  auto it = by_key_.find(cf.key());
  return it == by_key_.end() ? kInvalidCfId : it->second;
}

void CandidatePool::MergeFrom(const CandidatePool& other) {
  for (const ColumnFamily& cf : other.cfs_) Intern(cf);
}

}  // namespace nose
