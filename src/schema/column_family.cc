#include "schema/column_family.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/strings.h"

namespace nose {

namespace {

// Fixed per-partition and per-record bookkeeping overheads used in size
// estimates (bytes). Rough Cassandra-like constants; only relative sizes
// matter for the optimizer's space constraint.
constexpr double kPartitionOverheadBytes = 32.0;
constexpr double kRecordOverheadBytes = 8.0;

std::string FieldListToString(const std::vector<FieldRef>& fields) {
  std::vector<std::string> names;
  names.reserve(fields.size());
  for (const FieldRef& f : fields) names.push_back(f.QualifiedName());
  return "[" + StrJoin(names, ", ") + "]";
}

}  // namespace

StatusOr<ColumnFamily> ColumnFamily::Create(
    KeyPath path, std::vector<FieldRef> partition_key,
    std::vector<FieldRef> clustering_key, std::vector<FieldRef> values) {
  const EntityGraph* graph = path.graph();
  if (graph == nullptr) {
    return Status::InvalidArgument("column family path has no graph");
  }
  if (partition_key.empty()) {
    return Status::InvalidArgument(
        "column family needs at least one partition key attribute");
  }

  std::set<FieldRef> seen;
  auto validate = [&](const std::vector<FieldRef>& fields) -> Status {
    for (const FieldRef& ref : fields) {
      auto field = graph->ResolveField(ref);
      if (!field.ok()) return field.status();
      if (!path.ContainsEntity(ref.entity)) {
        return Status::InvalidArgument("attribute " + ref.QualifiedName() +
                                       " is not on path " + path.ToString());
      }
      if (!seen.insert(ref).second) {
        return Status::InvalidArgument("attribute " + ref.QualifiedName() +
                                       " appears twice in column family");
      }
    }
    return Status::Ok();
  };
  NOSE_RETURN_IF_ERROR(validate(partition_key));
  NOSE_RETURN_IF_ERROR(validate(clustering_key));
  NOSE_RETURN_IF_ERROR(validate(values));

  // Canonical form: partition key and values are sets (sort them); the
  // clustering key is ordered and kept as given. Path direction carries no
  // information about the stored records, so normalize it for dedup.
  std::sort(partition_key.begin(), partition_key.end());
  std::sort(values.begin(), values.end());
  if (path.steps().size() > 0) {
    KeyPath reversed = path.Reversed();
    if (reversed.ToString() < path.ToString()) path = std::move(reversed);
  }

  ColumnFamily cf;
  cf.path_ = std::move(path);
  cf.partition_key_ = std::move(partition_key);
  cf.clustering_key_ = std::move(clustering_key);
  cf.values_ = std::move(values);
  cf.key_ = FieldListToString(cf.partition_key_) +
            FieldListToString(cf.clustering_key_) +
            FieldListToString(cf.values_) + " $ " + cf.path_.ToString();
  return cf;
}

std::vector<FieldRef> ColumnFamily::AllFields() const {
  std::vector<FieldRef> out = partition_key_;
  out.insert(out.end(), clustering_key_.begin(), clustering_key_.end());
  out.insert(out.end(), values_.begin(), values_.end());
  return out;
}

bool ColumnFamily::ContainsField(const FieldRef& ref) const {
  auto contains = [&](const std::vector<FieldRef>& fields) {
    return std::find(fields.begin(), fields.end(), ref) != fields.end();
  };
  return contains(partition_key_) || contains(clustering_key_) ||
         contains(values_);
}

bool ColumnFamily::TouchesEntity(const std::string& entity) const {
  for (const FieldRef& ref : AllFields()) {
    if (ref.entity == entity) return true;
  }
  return false;
}

namespace {

double KeyCardinalityProduct(const EntityGraph& graph,
                             const std::vector<FieldRef>& fields) {
  double product = 1.0;
  for (const FieldRef& ref : fields) {
    const Entity& entity = graph.GetEntity(ref.entity);
    const Field* field = entity.FindField(ref.field);
    product *= static_cast<double>(entity.FieldCardinality(*field));
  }
  return product;
}

}  // namespace

double ColumnFamily::EntryCount() const {
  const double path_instances = graph()->PathInstanceCount(path_);
  std::vector<FieldRef> key_fields = partition_key_;
  key_fields.insert(key_fields.end(), clustering_key_.begin(),
                    clustering_key_.end());
  const double key_combos = KeyCardinalityProduct(*graph(), key_fields);
  return std::max(1.0, std::min(path_instances, key_combos));
}

double ColumnFamily::PartitionCount() const {
  const double partitions = KeyCardinalityProduct(*graph(), partition_key_);
  return std::max(1.0, std::min(EntryCount(), partitions));
}

double ColumnFamily::SizeBytes() const {
  auto fields_size = [&](const std::vector<FieldRef>& fields) {
    double total = 0.0;
    for (const FieldRef& ref : fields) {
      const Field* field = graph()->GetEntity(ref.entity).FindField(ref.field);
      total += field->SizeBytes();
    }
    return total;
  };
  const double per_record =
      fields_size(clustering_key_) + fields_size(values_) +
      kRecordOverheadBytes;
  const double per_partition =
      fields_size(partition_key_) + kPartitionOverheadBytes;
  return PartitionCount() * per_partition + EntryCount() * per_record;
}

}  // namespace nose
