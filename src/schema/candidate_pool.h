#ifndef NOSE_SCHEMA_CANDIDATE_POOL_H_
#define NOSE_SCHEMA_CANDIDATE_POOL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "schema/column_family.h"

namespace nose {

/// Dense integer identity of an interned ColumnFamily within a
/// CandidatePool. Every layer downstream of enumeration (planner edges,
/// BIP δ_j variables, combinatorial solver, invariant checks, executor
/// name resolution) identifies candidates by CfId instead of hashing or
/// copying the canonical key() string.
using CfId = uint32_t;

inline constexpr CfId kInvalidCfId = std::numeric_limits<CfId>::max();

/// Deduplicated, interned pool of candidate column families. Each distinct
/// definition is stored exactly once and addressed by a dense CfId equal to
/// its insertion rank, so ids double as stable vector indices: the planner
/// and optimizer index per-candidate arrays (allowed/selected/δ-costs)
/// directly by CfId. Interning order is deterministic — re-running the
/// enumerator on the same workload yields the same id for every candidate
/// regardless of thread count (see Enumerator::EnumerateWorkload).
class CandidatePool {
 public:
  /// Interns `cf` (no-op if an identical definition exists); returns its id.
  CfId Intern(ColumnFamily cf);

  /// Legacy alias for Intern, kept for call sites indexing with size_t.
  size_t Add(ColumnFamily cf) { return Intern(std::move(cf)); }

  const ColumnFamily& Get(CfId id) const { return cfs_[id]; }
  const ColumnFamily& operator[](CfId id) const { return cfs_[id]; }

  /// Id of an equal definition, or kInvalidCfId if absent.
  CfId Find(const ColumnFamily& cf) const;
  bool Contains(const ColumnFamily& cf) const {
    return Find(cf) != kInvalidCfId;
  }

  /// Interns every candidate of `other` in id order. Merging pools built
  /// from disjoint work items in a fixed order reproduces the insertion
  /// sequence of a serial enumeration — the deterministic-merge rule the
  /// parallel enumerator relies on.
  void MergeFrom(const CandidatePool& other);

  const std::vector<ColumnFamily>& candidates() const { return cfs_; }
  size_t size() const { return cfs_.size(); }
  bool empty() const { return cfs_.empty(); }

 private:
  std::vector<ColumnFamily> cfs_;
  std::unordered_map<std::string, CfId> by_key_;
};

}  // namespace nose

#endif  // NOSE_SCHEMA_CANDIDATE_POOL_H_
