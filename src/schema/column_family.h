#ifndef NOSE_SCHEMA_COLUMN_FAMILY_H_
#define NOSE_SCHEMA_COLUMN_FAMILY_H_

#include <string>
#include <vector>

#include "model/entity_graph.h"
#include "model/field.h"
#include "model/key_path.h"
#include "util/statusor.h"

namespace nose {

/// A column-family definition: the triple
///   [partition key][clustering key][values]
/// over an associated relationship path (paper §IV-A1). Partition-key
/// attributes must all be supplied (by equality) to issue a get; records
/// within a partition are sorted by the clustering key; values ride along.
///
/// All attributes must belong to entities on the path. Instances are
/// immutable after construction; identity is the canonical `key()` string.
class ColumnFamily {
 public:
  ColumnFamily() = default;

  /// Validates and canonicalizes. Requirements:
  ///  - at least one partition-key attribute,
  ///  - all attributes exist and lie on `path`,
  ///  - no attribute appears in more than one component.
  static StatusOr<ColumnFamily> Create(KeyPath path,
                                       std::vector<FieldRef> partition_key,
                                       std::vector<FieldRef> clustering_key,
                                       std::vector<FieldRef> values);

  const KeyPath& path() const { return path_; }
  const EntityGraph* graph() const { return path_.graph(); }
  const std::vector<FieldRef>& partition_key() const { return partition_key_; }
  const std::vector<FieldRef>& clustering_key() const {
    return clustering_key_;
  }
  const std::vector<FieldRef>& values() const { return values_; }

  /// partition ∪ clustering ∪ values, in component order.
  std::vector<FieldRef> AllFields() const;
  bool ContainsField(const FieldRef& ref) const;
  /// True if any field belongs to `entity`.
  bool TouchesEntity(const std::string& entity) const;

  /// Stable identity string, e.g.
  /// "[Hotel.HotelCity][Room.RoomRate, Room.RoomID][Guest.GuestName] $ Room-[Hotel]->Hotel".
  const std::string& key() const { return key_; }

  /// Expected number of records (partition key + clustering key combos).
  double EntryCount() const;
  /// Expected number of distinct partitions.
  double PartitionCount() const;
  /// Expected total storage footprint in bytes (paper's space constraint
  /// uses these estimates).
  double SizeBytes() const;

  std::string ToString() const { return key_; }

  friend bool operator==(const ColumnFamily& a, const ColumnFamily& b) {
    return a.key_ == b.key_;
  }

 private:
  KeyPath path_;
  std::vector<FieldRef> partition_key_;
  std::vector<FieldRef> clustering_key_;
  std::vector<FieldRef> values_;
  std::string key_;
};

}  // namespace nose

#endif  // NOSE_SCHEMA_COLUMN_FAMILY_H_
