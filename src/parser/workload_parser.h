#ifndef NOSE_PARSER_WORKLOAD_PARSER_H_
#define NOSE_PARSER_WORKLOAD_PARSER_H_

#include <memory>
#include <string>

#include "model/entity_graph.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace nose {

/// Parses a workload file: ';'-terminated directives.
///
///   statement get_guests 10.0 : SELECT Guest.GuestName FROM Guest
///     WHERE Guest.GuestID = ?id ;
///   statement upd_email 2 : UPDATE Guest SET GuestEmail = ?
///     WHERE Guest.GuestID = ?id ;
///   weight get_guests browsing 5.0 ;   # weight under another mix
///
/// The numeric weight after the statement name applies to the default mix.
/// `# comments` are allowed anywhere.
StatusOr<std::unique_ptr<Workload>> ParseWorkload(const EntityGraph& graph,
                                                  const std::string& text);

}  // namespace nose

#endif  // NOSE_PARSER_WORKLOAD_PARSER_H_
