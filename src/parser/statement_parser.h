#ifndef NOSE_PARSER_STATEMENT_PARSER_H_
#define NOSE_PARSER_STATEMENT_PARSER_H_

#include <string>
#include <variant>

#include "model/entity_graph.h"
#include "util/statusor.h"
#include "workload/query.h"
#include "workload/update.h"

namespace nose {

using ParsedStatement = std::variant<Query, Update>;

/// Parses one statement of the paper's SQL-like workload language
/// (Figs. 3, 8, 9) against `graph`:
///
///   SELECT Guest.GuestName, Guest.GuestEmail
///     FROM Guest.Reservations.Room.Hotel
///     WHERE Hotel.HotelCity = ?city AND Room.RoomRate > ?rate
///     ORDER BY Room.RoomRate
///
///   INSERT INTO Reservation SET ResID = ?, ResEndDate = ?date
///     AND CONNECT TO Guest(?guest), Room(?room)
///   UPDATE Reservation FROM Reservation.Guest SET ResEndDate = ?
///     WHERE Guest.GuestID = ?guestid
///   DELETE FROM Guest WHERE Guest.GuestID = ?guestid
///   CONNECT Guest(?userid) TO Reservations(?resid)
///   DISCONNECT Guest(?userid) FROM Reservations(?resid)
///
/// The FROM clause names the target entity followed by relationship steps.
/// Field references are `Entity.Field` for entities on the path, or
/// extended dotted paths (`Guest.Reservations.Room.RoomRate`) which
/// implicitly extend the query path, as in the paper's Fig. 3 where the
/// path is carried entirely by the WHERE clause. `SELECT Entity.*` expands
/// to all attributes of the entity. Anonymous `?` parameters are named
/// p1, p2, ... in statement order.
StatusOr<ParsedStatement> ParseStatement(const EntityGraph& graph,
                                         const std::string& text);

/// As ParseStatement but requires a query / an update.
StatusOr<Query> ParseQuery(const EntityGraph& graph, const std::string& text);
StatusOr<Update> ParseUpdate(const EntityGraph& graph,
                             const std::string& text);

}  // namespace nose

#endif  // NOSE_PARSER_STATEMENT_PARSER_H_
