#include "parser/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace nose {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && AsciiLower(text) == AsciiLower(kw);
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t line = 1;
  const size_t n = input.size();
  auto peek = [&](size_t k = 0) -> char {
    return i + k < n ? input[i + k] : '\0';
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') ++line;
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenType::kIdentifier, input.substr(start, i - start), start, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      ++i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (input[i] == '.' && !seen_dot &&
                        std::isdigit(static_cast<unsigned char>(peek(1)))))) {
        if (input[i] == '.') seen_dot = true;
        ++i;
      }
      tokens.push_back(
          {TokenType::kNumber, input.substr(start, i - start), start, line});
      continue;
    }
    if (c == '\'') {
      const size_t start_line = line;
      ++i;
      std::string value;
      while (i < n && input[i] != '\'') {
        if (input[i] == '\n') ++line;
        value += input[i++];
      }
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      ++i;  // closing quote
      tokens.push_back({TokenType::kString, std::move(value), start, start_line});
      continue;
    }
    if (c == '?') {
      ++i;
      std::string name;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        name += input[i++];
      }
      tokens.push_back({TokenType::kParam, std::move(name), start, line});
      continue;
    }
    // Multi-character operators first.
    if ((c == '!' || c == '<' || c == '>') && peek(1) == '=') {
      tokens.push_back({TokenType::kSymbol, input.substr(i, 2), start, line});
      i += 2;
      continue;
    }
    if (std::string(".,(){}*=<>:/").find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start, line});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  tokens.push_back({TokenType::kEnd, "", n, line});
  return tokens;
}

}  // namespace nose
