#include "parser/model_parser.h"

#include "parser/lexer.h"
#include "util/strings.h"

namespace nose {

namespace {

StatusOr<FieldType> ParseFieldType(const std::string& name) {
  const std::string lower = AsciiLower(name);
  if (lower == "string") return FieldType::kString;
  if (lower == "integer" || lower == "int") return FieldType::kInteger;
  if (lower == "float" || lower == "double") return FieldType::kFloat;
  if (lower == "date") return FieldType::kDate;
  if (lower == "boolean" || lower == "bool") return FieldType::kBoolean;
  return Status::InvalidArgument("unknown field type " + name);
}

class ModelParser {
 public:
  explicit ModelParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  StatusOr<std::unique_ptr<EntityGraph>> Parse() {
    auto graph = std::make_unique<EntityGraph>();
    while (!Peek().Is(TokenType::kEnd)) {
      if (Peek().IsKeyword("entity")) {
        NOSE_RETURN_IF_ERROR(ParseEntity(graph.get()));
      } else if (Peek().IsKeyword("relationship")) {
        NOSE_RETURN_IF_ERROR(ParseRelationship(graph.get()));
      } else {
        return Status::InvalidArgument(
            "expected 'entity' or 'relationship' near '" + Peek().text + "'");
      }
    }
    return graph;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  StatusOr<std::string> ExpectIdentifier() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    return Next().text;
  }
  StatusOr<uint64_t> ExpectNumber() {
    if (!Peek().Is(TokenType::kNumber)) {
      return Status::InvalidArgument("expected number near '" + Peek().text +
                                     "'");
    }
    return static_cast<uint64_t>(std::stoull(Next().text));
  }
  Status ExpectSymbol(const char* sym) {
    if (!Peek().IsSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near '" + Peek().text + "'");
    }
    Next();
    return Status::Ok();
  }

  Status ParseEntity(EntityGraph* graph) {
    const int def_line = static_cast<int>(Peek().line);
    Next();  // entity
    NOSE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    NOSE_ASSIGN_OR_RETURN(uint64_t count, ExpectNumber());
    NOSE_RETURN_IF_ERROR(ExpectSymbol("{"));

    // Optional custom primary-key name must come first.
    std::string id_name;
    if (Peek().IsKeyword("id")) {
      Next();
      NOSE_ASSIGN_OR_RETURN(id_name, ExpectIdentifier());
    }
    Entity entity(name, count, id_name);
    entity.set_def_line(def_line);

    while (!Peek().IsSymbol("}")) {
      Field field;
      field.def_line = static_cast<int>(Peek().line);
      NOSE_ASSIGN_OR_RETURN(field.name, ExpectIdentifier());
      NOSE_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      NOSE_ASSIGN_OR_RETURN(field.type, ParseFieldType(type_name));
      while (Peek().IsKeyword("card") || Peek().IsKeyword("size")) {
        const bool is_card = Peek().IsKeyword("card");
        Next();
        NOSE_ASSIGN_OR_RETURN(uint64_t value, ExpectNumber());
        if (is_card) {
          field.cardinality = value;
        } else {
          field.size = static_cast<uint32_t>(value);
        }
      }
      NOSE_RETURN_IF_ERROR(entity.AddField(std::move(field)));
    }
    Next();  // }
    return graph->AddEntity(std::move(entity));
  }

  Status ParseRelationship(EntityGraph* graph) {
    Relationship rel;
    rel.def_line = static_cast<int>(Peek().line);
    Next();  // relationship
    NOSE_ASSIGN_OR_RETURN(rel.from_entity, ExpectIdentifier());
    NOSE_ASSIGN_OR_RETURN(std::string card, ExpectIdentifier());
    const std::string lower = AsciiLower(card);
    if (lower == "one_to_one") {
      rel.cardinality = Cardinality::kOneToOne;
    } else if (lower == "one_to_many") {
      rel.cardinality = Cardinality::kOneToMany;
    } else if (lower == "many_to_many") {
      rel.cardinality = Cardinality::kManyToMany;
    } else {
      return Status::InvalidArgument("unknown cardinality " + card);
    }
    NOSE_ASSIGN_OR_RETURN(rel.to_entity, ExpectIdentifier());
    if (Peek().IsKeyword("as")) {
      Next();
      NOSE_ASSIGN_OR_RETURN(rel.forward_name, ExpectIdentifier());
      NOSE_RETURN_IF_ERROR(ExpectSymbol("/"));
      NOSE_ASSIGN_OR_RETURN(rel.reverse_name, ExpectIdentifier());
    }
    if (Peek().IsKeyword("links")) {
      Next();
      NOSE_ASSIGN_OR_RETURN(rel.link_count, ExpectNumber());
    }
    return graph->AddRelationship(std::move(rel));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<EntityGraph>> ParseModel(const std::string& text) {
  NOSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  ModelParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace nose
