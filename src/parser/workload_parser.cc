#include "parser/workload_parser.h"

#include "parser/statement_parser.h"
#include "util/strings.h"

namespace nose {

namespace {

/// Strips '#' comments (outside string literals) so ';' splitting is safe.
std::string StripComments(const std::string& text) {
  std::string out;
  bool in_string = false;
  bool in_comment = false;
  for (char c : text) {
    if (in_comment) {
      if (c == '\n') {
        in_comment = false;
        out += c;
      }
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == '#' && !in_string) {
      in_comment = true;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

StatusOr<std::unique_ptr<Workload>> ParseWorkload(const EntityGraph& graph,
                                                  const std::string& text) {
  auto workload = std::make_unique<Workload>(&graph);
  // StripComments preserves newlines, so line numbers computed against the
  // stripped text match the original file.
  int line = 1;  // line number at the start of the current raw piece
  for (const std::string& raw : StrSplit(StripComments(text), ';')) {
    // The directive starts after any leading whitespace of the piece.
    int dir_line = line;
    for (char c : std::string_view(raw).substr(
             0, std::min(raw.size(), raw.find_first_not_of(" \t\r\n")))) {
      if (c == '\n') ++dir_line;
    }
    for (char c : raw) {
      if (c == '\n') ++line;
    }
    const std::string_view directive = StripWhitespace(raw);
    if (directive.empty()) continue;

    // First word selects the directive.
    const size_t space = directive.find_first_of(" \t\n");
    if (space == std::string_view::npos) {
      return Status::InvalidArgument("malformed directive: " +
                                     std::string(directive));
    }
    const std::string head = AsciiLower(directive.substr(0, space));
    const std::string rest = std::string(StripWhitespace(directive.substr(space)));

    if (head == "statement") {
      // <name> <weight> : <statement>
      const size_t colon = rest.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("statement directive needs ':': " +
                                       rest);
      }
      const std::vector<std::string> parts =
          StrSplit(std::string(StripWhitespace(rest.substr(0, colon))), ' ');
      std::vector<std::string> words;
      for (const std::string& p : parts) {
        if (!StripWhitespace(p).empty()) words.emplace_back(StripWhitespace(p));
      }
      if (words.size() != 2) {
        return Status::InvalidArgument(
            "statement directive needs '<name> <weight> :', got: " + rest);
      }
      const std::string& name = words[0];
      double weight = 0.0;
      try {
        weight = std::stod(words[1]);
      } catch (...) {
        return Status::InvalidArgument("bad weight in: " + rest);
      }
      NOSE_ASSIGN_OR_RETURN(ParsedStatement stmt,
                            ParseStatement(graph, rest.substr(colon + 1)));
      if (std::holds_alternative<Query>(stmt)) {
        NOSE_RETURN_IF_ERROR(workload->AddQuery(
            name, std::get<Query>(std::move(stmt)), weight));
      } else {
        NOSE_RETURN_IF_ERROR(workload->AddUpdate(
            name, std::get<Update>(std::move(stmt)), weight));
      }
      NOSE_RETURN_IF_ERROR(workload->SetDefLine(name, dir_line));
    } else if (head == "weight") {
      // <name> <mix> <weight>
      std::vector<std::string> words;
      for (const std::string& p : StrSplit(rest, ' ')) {
        if (!StripWhitespace(p).empty()) words.emplace_back(StripWhitespace(p));
      }
      if (words.size() != 3) {
        return Status::InvalidArgument(
            "weight directive needs '<name> <mix> <weight>', got: " + rest);
      }
      double weight = 0.0;
      try {
        weight = std::stod(words[2]);
      } catch (...) {
        return Status::InvalidArgument("bad weight in: " + rest);
      }
      NOSE_RETURN_IF_ERROR(workload->SetWeight(words[0], words[1], weight));
    } else {
      return Status::InvalidArgument("unknown directive '" + head + "'");
    }
  }
  return workload;
}

}  // namespace nose
