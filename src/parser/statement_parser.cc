#include "parser/statement_parser.h"

#include <algorithm>

#include "parser/lexer.h"
#include "util/strings.h"

namespace nose {

namespace {

/// Incrementally builds the statement's path: starts with the FROM clause
/// and extends when dotted references walk past the current end (paper
/// Fig. 3 carries the whole path in WHERE).
class PathBuilder {
 public:
  PathBuilder(const EntityGraph& graph, std::string start)
      : graph_(graph), entities_{std::move(start)} {}

  const EntityGraph& graph() const { return graph_; }
  const std::string& start() const { return entities_.front(); }

  Status AppendStep(const std::string& step_name) {
    std::optional<PathStep> step =
        graph_.FindStep(entities_.back(), step_name);
    if (!step.has_value()) {
      return Status::NotFound("no relationship step named " + step_name +
                              " leaving entity " + entities_.back());
    }
    const std::string& target = graph_.StepTarget(entities_.back(), *step);
    if (std::find(entities_.begin(), entities_.end(), target) !=
        entities_.end()) {
      return Status::InvalidArgument("path revisits entity " + target);
    }
    step_names_.push_back(step_name);
    entities_.push_back(target);
    return Status::Ok();
  }

  /// Resolves a dotted reference (names[0..n-2] walk, names[n-1] field).
  /// The first name must be an entity already on the path; intermediate
  /// names are steps that must either follow the existing path or extend
  /// it at the end.
  StatusOr<FieldRef> ResolveRef(const std::vector<std::string>& names) {
    if (names.size() < 2) {
      return Status::InvalidArgument("field reference needs Entity.Field: " +
                                     StrJoin(names, "."));
    }
    auto it = std::find(entities_.begin(), entities_.end(), names[0]);
    if (it == entities_.end()) {
      return Status::InvalidArgument("entity " + names[0] +
                                     " is not on the statement path");
    }
    size_t pos = static_cast<size_t>(it - entities_.begin());
    for (size_t k = 1; k + 1 < names.size(); ++k) {
      std::optional<PathStep> step = graph_.FindStep(entities_[pos], names[k]);
      if (!step.has_value()) {
        return Status::NotFound("no relationship step named " + names[k] +
                                " leaving entity " + entities_[pos]);
      }
      const std::string& target = graph_.StepTarget(entities_[pos], *step);
      if (pos + 1 < entities_.size()) {
        if (entities_[pos + 1] != target) {
          return Status::InvalidArgument(
              "reference " + StrJoin(names, ".") +
              " branches off the statement path (all predicates must lie "
              "along one path)");
        }
      } else {
        NOSE_RETURN_IF_ERROR(AppendStep(names[k]));
      }
      ++pos;
    }
    FieldRef ref{entities_[pos], names.back()};
    auto field = graph_.ResolveField(ref);
    if (!field.ok()) return field.status();
    return ref;
  }

  /// As ResolveRef but the last name may be "*": returns all fields.
  StatusOr<std::vector<FieldRef>> ResolveSelectItem(
      const std::vector<std::string>& names, bool star) {
    if (star) {
      std::vector<std::string> walk = names;
      walk.push_back("");  // dummy field slot; resolve entity via prefix
      // Walk to the entity.
      auto it = std::find(entities_.begin(), entities_.end(), names[0]);
      if (it == entities_.end()) {
        return Status::InvalidArgument("entity " + names[0] +
                                       " is not on the statement path");
      }
      size_t pos = static_cast<size_t>(it - entities_.begin());
      for (size_t k = 1; k < names.size(); ++k) {
        std::optional<PathStep> step =
            graph_.FindStep(entities_[pos], names[k]);
        if (!step.has_value()) {
          return Status::NotFound("no relationship step named " + names[k] +
                                  " leaving entity " + entities_[pos]);
        }
        const std::string& target = graph_.StepTarget(entities_[pos], *step);
        if (pos + 1 < entities_.size()) {
          if (entities_[pos + 1] != target) {
            return Status::InvalidArgument("reference branches off the path");
          }
        } else {
          NOSE_RETURN_IF_ERROR(AppendStep(names[k]));
        }
        ++pos;
      }
      std::vector<FieldRef> out;
      for (const Field& f : graph_.GetEntity(entities_[pos]).fields()) {
        out.push_back(FieldRef{entities_[pos], f.name});
      }
      return out;
    }
    NOSE_ASSIGN_OR_RETURN(FieldRef ref, ResolveRef(names));
    return std::vector<FieldRef>{ref};
  }

  StatusOr<KeyPath> Build() const {
    return graph_.ResolvePath(entities_.front(), step_names_);
  }

 private:
  const EntityGraph& graph_;
  std::vector<std::string> entities_;
  std::vector<std::string> step_names_;
};

class Parser {
 public:
  Parser(const EntityGraph& graph, std::vector<Token> tokens)
      : graph_(graph), tokens_(std::move(tokens)) {}

  StatusOr<ParsedStatement> Parse() {
    const Token& head = Peek();
    if (head.IsKeyword("select")) return ParseSelect();
    if (head.IsKeyword("insert")) return ParseInsert();
    if (head.IsKeyword("update")) return ParseUpdateStmt();
    if (head.IsKeyword("delete")) return ParseDelete();
    if (head.IsKeyword("connect")) return ParseConnect(false);
    if (head.IsKeyword("disconnect")) return ParseConnect(true);
    return Status::InvalidArgument("statement must start with SELECT/INSERT/"
                                   "UPDATE/DELETE/CONNECT/DISCONNECT");
  }

 private:
  const Token& Peek(size_t k = 0) const {
    const size_t i = std::min(pos_ + k, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Accept(const char* keyword) {
    if (Peek().IsKeyword(keyword)) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(const char* keyword) {
    if (!Accept(keyword)) {
      return Status::InvalidArgument(std::string("expected ") + keyword +
                                     " near '" + Peek().text + "'");
    }
    return Status::Ok();
  }
  Status ExpectSymbol(const char* sym) {
    if (!Peek().IsSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near '" + Peek().text + "'");
    }
    Next();
    return Status::Ok();
  }
  StatusOr<std::string> ExpectIdentifier() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    return Next().text;
  }

  /// Dotted name list; sets *star if the list ends with ".*".
  StatusOr<std::vector<std::string>> ParseDottedNames(bool* star = nullptr) {
    if (star != nullptr) *star = false;
    std::vector<std::string> names;
    NOSE_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    names.push_back(std::move(first));
    while (Peek().IsSymbol(".")) {
      Next();
      if (star != nullptr && Peek().IsSymbol("*")) {
        Next();
        *star = true;
        break;
      }
      NOSE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      names.push_back(std::move(name));
    }
    return names;
  }

  std::string FreshParamName() { return "p" + std::to_string(++param_count_); }

  /// Parses `= ?name` / `> 42` / ... into op + rhs.
  StatusOr<Predicate> ParsePredicateTail(FieldRef field) {
    Predicate pred;
    pred.field = std::move(field);
    const Token& op = Next();
    if (!op.Is(TokenType::kSymbol)) {
      return Status::InvalidArgument("expected comparison operator near '" +
                                     op.text + "'");
    }
    if (op.text == "=") {
      pred.op = PredicateOp::kEq;
    } else if (op.text == "<") {
      pred.op = PredicateOp::kLt;
    } else if (op.text == "<=") {
      pred.op = PredicateOp::kLe;
    } else if (op.text == ">") {
      pred.op = PredicateOp::kGt;
    } else if (op.text == ">=") {
      pred.op = PredicateOp::kGe;
    } else if (op.text == "!=") {
      pred.op = PredicateOp::kNe;
    } else {
      return Status::InvalidArgument("unknown operator " + op.text);
    }
    const Token& rhs = Next();
    if (rhs.Is(TokenType::kParam)) {
      pred.param = rhs.text.empty() ? FreshParamName() : rhs.text;
    } else if (rhs.Is(TokenType::kNumber)) {
      if (rhs.text.find('.') != std::string::npos) {
        pred.literal = Value(std::stod(rhs.text));
      } else {
        pred.literal = Value(static_cast<int64_t>(std::stoll(rhs.text)));
      }
    } else if (rhs.Is(TokenType::kString)) {
      pred.literal = Value(rhs.text);
    } else if (rhs.IsKeyword("true") || rhs.IsKeyword("false")) {
      pred.literal = Value(rhs.IsKeyword("true"));
    } else {
      return Status::InvalidArgument("expected parameter or literal near '" +
                                     rhs.text + "'");
    }
    return pred;
  }

  StatusOr<std::vector<Predicate>> ParseWhere(PathBuilder* path) {
    std::vector<Predicate> preds;
    do {
      NOSE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            ParseDottedNames());
      NOSE_ASSIGN_OR_RETURN(FieldRef ref, path->ResolveRef(names));
      NOSE_ASSIGN_OR_RETURN(Predicate pred, ParsePredicateTail(std::move(ref)));
      preds.push_back(std::move(pred));
    } while (Accept("and"));
    return preds;
  }

  /// FROM clause: entity name followed by step names.
  StatusOr<PathBuilder> ParseFromPath() {
    NOSE_ASSIGN_OR_RETURN(std::string start, ExpectIdentifier());
    if (graph_.FindEntity(start) == nullptr) {
      return Status::NotFound("unknown entity " + start + " in FROM clause");
    }
    PathBuilder builder(graph_, std::move(start));
    while (Peek().IsSymbol(".")) {
      Next();
      NOSE_ASSIGN_OR_RETURN(std::string step, ExpectIdentifier());
      NOSE_RETURN_IF_ERROR(builder.AppendStep(step));
    }
    return builder;
  }

  StatusOr<ParsedStatement> ParseSelect() {
    NOSE_RETURN_IF_ERROR(Expect("select"));
    // Select items are resolved after FROM is known; stash the raw names.
    struct Item {
      std::vector<std::string> names;
      bool star;
    };
    std::vector<Item> items;
    do {
      Item item;
      NOSE_ASSIGN_OR_RETURN(item.names, ParseDottedNames(&item.star));
      items.push_back(std::move(item));
    } while (Peek().IsSymbol(",") && (Next(), true));
    NOSE_RETURN_IF_ERROR(Expect("from"));
    NOSE_ASSIGN_OR_RETURN(PathBuilder path, ParseFromPath());

    std::vector<Predicate> preds;
    if (Accept("where")) {
      NOSE_ASSIGN_OR_RETURN(preds, ParseWhere(&path));
    }
    std::vector<OrderField> orders;
    if (Accept("order")) {
      NOSE_RETURN_IF_ERROR(Expect("by"));
      do {
        NOSE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              ParseDottedNames());
        NOSE_ASSIGN_OR_RETURN(FieldRef ref, path.ResolveRef(names));
        orders.push_back(OrderField{std::move(ref)});
      } while (Peek().IsSymbol(",") && (Next(), true));
    }
    if (!Peek().Is(TokenType::kEnd)) {
      return Status::InvalidArgument("unexpected trailing input near '" +
                                     Peek().text + "'");
    }

    std::vector<FieldRef> select;
    for (const Item& item : items) {
      NOSE_ASSIGN_OR_RETURN(std::vector<FieldRef> refs,
                            path.ResolveSelectItem(item.names, item.star));
      for (FieldRef& r : refs) {
        if (std::find(select.begin(), select.end(), r) == select.end()) {
          select.push_back(std::move(r));
        }
      }
    }
    NOSE_ASSIGN_OR_RETURN(KeyPath key_path, path.Build());
    Query query(std::move(key_path), std::move(select), std::move(preds),
                std::move(orders));
    NOSE_RETURN_IF_ERROR(query.Validate());
    return ParsedStatement(std::move(query));
  }

  StatusOr<std::vector<SetClause>> ParseSetList() {
    std::vector<SetClause> sets;
    do {
      SetClause set;
      NOSE_ASSIGN_OR_RETURN(set.field, ExpectIdentifier());
      NOSE_RETURN_IF_ERROR(ExpectSymbol("="));
      const Token& rhs = Next();
      if (rhs.Is(TokenType::kParam)) {
        set.param = rhs.text.empty() ? FreshParamName() : rhs.text;
      } else if (rhs.Is(TokenType::kNumber)) {
        if (rhs.text.find('.') != std::string::npos) {
          set.literal = Value(std::stod(rhs.text));
        } else {
          set.literal = Value(static_cast<int64_t>(std::stoll(rhs.text)));
        }
      } else if (rhs.Is(TokenType::kString)) {
        set.literal = Value(rhs.text);
      } else {
        return Status::InvalidArgument("expected parameter or literal in SET");
      }
      sets.push_back(std::move(set));
    } while (Peek().IsSymbol(",") && (Next(), true));
    return sets;
  }

  StatusOr<ParsedStatement> ParseInsert() {
    NOSE_RETURN_IF_ERROR(Expect("insert"));
    NOSE_RETURN_IF_ERROR(Expect("into"));
    NOSE_ASSIGN_OR_RETURN(std::string entity, ExpectIdentifier());
    NOSE_RETURN_IF_ERROR(Expect("set"));
    NOSE_ASSIGN_OR_RETURN(std::vector<SetClause> sets, ParseSetList());
    std::vector<ConnectClause> connects;
    if (Accept("and")) {
      NOSE_RETURN_IF_ERROR(Expect("connect"));
      NOSE_RETURN_IF_ERROR(Expect("to"));
      do {
        ConnectClause c;
        NOSE_ASSIGN_OR_RETURN(c.step_name, ExpectIdentifier());
        NOSE_RETURN_IF_ERROR(ExpectSymbol("("));
        const Token& p = Next();
        if (!p.Is(TokenType::kParam)) {
          return Status::InvalidArgument("CONNECT TO expects a ?parameter");
        }
        c.param = p.text.empty() ? FreshParamName() : p.text;
        NOSE_RETURN_IF_ERROR(ExpectSymbol(")"));
        connects.push_back(std::move(c));
      } while (Peek().IsSymbol(",") && (Next(), true));
    }
    if (!Peek().Is(TokenType::kEnd)) {
      return Status::InvalidArgument("unexpected trailing input near '" +
                                     Peek().text + "'");
    }
    NOSE_ASSIGN_OR_RETURN(
        Update update,
        Update::MakeInsert(&graph_, entity, std::move(sets),
                           std::move(connects)));
    return ParsedStatement(std::move(update));
  }

  StatusOr<ParsedStatement> ParseUpdateStmt() {
    NOSE_RETURN_IF_ERROR(Expect("update"));
    NOSE_ASSIGN_OR_RETURN(std::string entity, ExpectIdentifier());
    if (graph_.FindEntity(entity) == nullptr) {
      return Status::NotFound("unknown entity " + entity);
    }
    PathBuilder path(graph_, entity);
    if (Accept("from")) {
      NOSE_ASSIGN_OR_RETURN(std::string start, ExpectIdentifier());
      if (start != entity) {
        return Status::InvalidArgument(
            "UPDATE FROM path must start at the updated entity " + entity);
      }
      while (Peek().IsSymbol(".")) {
        Next();
        NOSE_ASSIGN_OR_RETURN(std::string step, ExpectIdentifier());
        NOSE_RETURN_IF_ERROR(path.AppendStep(step));
      }
    }
    NOSE_RETURN_IF_ERROR(Expect("set"));
    NOSE_ASSIGN_OR_RETURN(std::vector<SetClause> sets, ParseSetList());
    std::vector<Predicate> preds;
    if (Accept("where")) {
      NOSE_ASSIGN_OR_RETURN(preds, ParseWhere(&path));
    }
    if (!Peek().Is(TokenType::kEnd)) {
      return Status::InvalidArgument("unexpected trailing input near '" +
                                     Peek().text + "'");
    }
    NOSE_ASSIGN_OR_RETURN(KeyPath key_path, path.Build());
    NOSE_ASSIGN_OR_RETURN(Update update,
                          Update::MakeUpdate(std::move(key_path),
                                             std::move(sets),
                                             std::move(preds)));
    return ParsedStatement(std::move(update));
  }

  StatusOr<ParsedStatement> ParseDelete() {
    NOSE_RETURN_IF_ERROR(Expect("delete"));
    NOSE_RETURN_IF_ERROR(Expect("from"));
    NOSE_ASSIGN_OR_RETURN(PathBuilder path, ParseFromPath());
    std::vector<Predicate> preds;
    if (Accept("where")) {
      NOSE_ASSIGN_OR_RETURN(preds, ParseWhere(&path));
    }
    if (!Peek().Is(TokenType::kEnd)) {
      return Status::InvalidArgument("unexpected trailing input near '" +
                                     Peek().text + "'");
    }
    NOSE_ASSIGN_OR_RETURN(KeyPath key_path, path.Build());
    NOSE_ASSIGN_OR_RETURN(
        Update update, Update::MakeDelete(std::move(key_path), std::move(preds)));
    return ParsedStatement(std::move(update));
  }

  StatusOr<ParsedStatement> ParseConnect(bool disconnect) {
    NOSE_RETURN_IF_ERROR(Expect(disconnect ? "disconnect" : "connect"));
    NOSE_ASSIGN_OR_RETURN(std::string entity, ExpectIdentifier());
    NOSE_RETURN_IF_ERROR(ExpectSymbol("("));
    const Token& fp = Next();
    if (!fp.Is(TokenType::kParam)) {
      return Status::InvalidArgument("expected ?parameter");
    }
    const std::string from_param = fp.text.empty() ? FreshParamName() : fp.text;
    NOSE_RETURN_IF_ERROR(ExpectSymbol(")"));
    NOSE_RETURN_IF_ERROR(Expect(disconnect ? "from" : "to"));
    NOSE_ASSIGN_OR_RETURN(std::string step, ExpectIdentifier());
    NOSE_RETURN_IF_ERROR(ExpectSymbol("("));
    const Token& tp = Next();
    if (!tp.Is(TokenType::kParam)) {
      return Status::InvalidArgument("expected ?parameter");
    }
    const std::string to_param = tp.text.empty() ? FreshParamName() : tp.text;
    NOSE_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (!Peek().Is(TokenType::kEnd)) {
      return Status::InvalidArgument("unexpected trailing input near '" +
                                     Peek().text + "'");
    }
    NOSE_ASSIGN_OR_RETURN(Update update,
                          Update::MakeConnect(&graph_, entity, from_param,
                                              step, to_param, disconnect));
    return ParsedStatement(std::move(update));
  }

  const EntityGraph& graph_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int param_count_ = 0;
};

}  // namespace

StatusOr<ParsedStatement> ParseStatement(const EntityGraph& graph,
                                         const std::string& text) {
  NOSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(graph, std::move(tokens));
  return parser.Parse();
}

StatusOr<Query> ParseQuery(const EntityGraph& graph, const std::string& text) {
  NOSE_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseStatement(graph, text));
  if (!std::holds_alternative<Query>(stmt)) {
    return Status::InvalidArgument("statement is not a query: " + text);
  }
  return std::get<Query>(std::move(stmt));
}

StatusOr<Update> ParseUpdate(const EntityGraph& graph,
                             const std::string& text) {
  NOSE_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseStatement(graph, text));
  if (!std::holds_alternative<Update>(stmt)) {
    return Status::InvalidArgument("statement is not an update: " + text);
  }
  return std::get<Update>(std::move(stmt));
}

}  // namespace nose
