#ifndef NOSE_PARSER_LEXER_H_
#define NOSE_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "util/statusor.h"

namespace nose {

enum class TokenType {
  kIdentifier,  ///< bare word: SELECT, Guest, HotelCity, ...
  kNumber,      ///< integer or decimal literal
  kString,      ///< single-quoted string literal (quotes stripped)
  kParam,       ///< ?name or bare ?
  kSymbol,      ///< punctuation: . , ( ) { } * / and comparison operators
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  ///< identifier/number/string/param name/symbol spelling
  size_t offset = 0; ///< byte offset in the input, for error messages
  size_t line = 1;   ///< 1-based line number in the input, for diagnostics

  bool Is(TokenType t) const { return type == t; }
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword test for identifiers.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes the statement / model-DSL languages. Comments run from '#' to
/// end of line. Comparison operators (=, !=, <, <=, >, >=) are single
/// symbol tokens.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace nose

#endif  // NOSE_PARSER_LEXER_H_
