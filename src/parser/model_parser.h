#ifndef NOSE_PARSER_MODEL_PARSER_H_
#define NOSE_PARSER_MODEL_PARSER_H_

#include <memory>
#include <string>

#include "model/entity_graph.h"
#include "util/statusor.h"

namespace nose {

/// Parses the entity-graph DSL:
///
///   entity Hotel 100 {
///     HotelName string
///     HotelCity string card 20
///     HotelAddress string size 64
///   }
///   entity Reservation 100000 {
///     id ResID                     # optional custom primary-key name
///     ResEndDate date card 365
///   }
///   relationship Hotel one_to_many Room as Rooms / Hotel
///   relationship Hotel many_to_many POI as PointsOfInterest / Hotels links 1000
///
/// Field types: string, integer, float, date, boolean. Optional per-field
/// attributes: `card N` (distinct values) and `size N` (bytes).
/// Cardinalities: one_to_one, one_to_many, many_to_many. The names after
/// `as` are the forward / reverse path-step names. `# comments` allowed.
StatusOr<std::unique_ptr<EntityGraph>> ParseModel(const std::string& text);

}  // namespace nose

#endif  // NOSE_PARSER_MODEL_PARSER_H_
