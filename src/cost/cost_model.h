#ifndef NOSE_COST_COST_MODEL_H_
#define NOSE_COST_COST_MODEL_H_

#include <cstdint>

namespace nose {

/// Tunable constants of the cost model. Units are "simulated milliseconds";
/// only relative magnitudes matter for schema choice (paper §IV-B: "the
/// exact cost model used to estimate the cost of each query implementation
/// plan is not important to our approach"). The same parameters drive the
/// record-store latency simulation so that estimated and executed costs are
/// directly comparable.
struct CostParams {
  /// Fixed cost of a get request (round trip + partition seek).
  double read_request = 0.30;
  /// Per record scanned within a partition during a get.
  double read_row = 0.002;
  /// Per byte of data returned by a get.
  double read_byte = 2e-6;
  /// Fixed cost of a put (insert or delete of records for one partition).
  double write_request = 0.35;
  /// Per record written or deleted by a put.
  double write_row = 0.004;
  /// Client-side per-row filtering cost.
  double filter_row = 0.0002;
  /// Client-side sort coefficient (multiplied by n·log2(n+1)).
  double sort_row = 0.0004;
  /// Selectivity assumed for range predicates (<, <=, >, >=).
  double range_selectivity = 0.1;
  /// Selectivity assumed for != predicates.
  double ne_selectivity = 0.9;
};

/// Stateless cost primitives shared by the query planner (estimation) and
/// the benchmarks (reporting). All row/request counts are expectations and
/// may be fractional. Const methods are safe to call concurrently (the
/// advisor's parallel plan-space/costing phases share one instance).
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Cost of issuing `requests` get operations, each scanning
  /// `rows_per_request` records of `bytes_per_row` bytes.
  double GetCost(double requests, double rows_per_request,
                 double bytes_per_row) const;

  /// Cost of writing (or deleting) `rows` records of `bytes_per_row` bytes
  /// spread over `requests` put operations.
  double PutCost(double requests, double rows, double bytes_per_row) const;

  /// Client-side filtering of `rows` rows.
  double FilterCost(double rows) const;

  /// Client-side sort of `rows` rows.
  double SortCost(double rows) const;

 private:
  CostParams params_;
};

}  // namespace nose

#endif  // NOSE_COST_COST_MODEL_H_
