#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace nose {

double CostModel::GetCost(double requests, double rows_per_request,
                          double bytes_per_row) const {
  requests = std::max(0.0, requests);
  const double rows = requests * std::max(0.0, rows_per_request);
  return requests * params_.read_request + rows * params_.read_row +
         rows * bytes_per_row * params_.read_byte;
}

double CostModel::PutCost(double requests, double rows,
                          double bytes_per_row) const {
  requests = std::max(0.0, requests);
  rows = std::max(0.0, rows);
  return requests * params_.write_request + rows * params_.write_row +
         rows * bytes_per_row * params_.read_byte;
}

double CostModel::FilterCost(double rows) const {
  return std::max(0.0, rows) * params_.filter_row;
}

double CostModel::SortCost(double rows) const {
  rows = std::max(0.0, rows);
  return params_.sort_row * rows * std::log2(rows + 1.0);
}

}  // namespace nose
