#include "cost/cardinality.h"

#include <algorithm>

namespace nose {

double CardinalityEstimator::Selectivity(const Predicate& pred) const {
  if (pred.IsRange()) return params_->range_selectivity;
  if (pred.op == PredicateOp::kNe) return params_->ne_selectivity;
  const Entity& entity = graph_->GetEntity(pred.field.entity);
  const Field* field = entity.FindField(pred.field.field);
  const double card = static_cast<double>(entity.FieldCardinality(*field));
  return 1.0 / std::max(1.0, card);
}

double CardinalityEstimator::Selectivity(
    const std::vector<Predicate>& preds) const {
  double sel = 1.0;
  for (const Predicate& p : preds) sel *= Selectivity(p);
  return sel;
}

double CardinalityEstimator::MatchingEntities(const Query& query,
                                              size_t index) const {
  const Entity& entity = graph_->GetEntity(query.path().EntityAt(index));
  // Deepest path entity the query references: the ID set at `index` arises
  // from traversing the segment [index, anchor].
  size_t anchor = index;
  auto track = [&](const std::string& name) {
    const int pos = query.path().IndexOfEntity(name);
    if (pos > static_cast<int>(anchor)) anchor = static_cast<size_t>(pos);
  };
  for (const Predicate& p : query.predicates()) track(p.field.entity);
  for (const FieldRef& s : query.select()) track(s.entity);
  for (const OrderField& o : query.order_by()) track(o.field.entity);

  // Instances of the suffix chain, thinned by every predicate on it; the
  // number of distinct entities at `index` can exceed neither that nor the
  // entity count.
  const double suffix_instances =
      graph_->PathInstanceCount(query.path().SubPath(index, anchor));
  double matching =
      suffix_instances * Selectivity(query.PredicatesFrom(index));
  return std::min(matching,
                  static_cast<double>(std::max<uint64_t>(1, entity.count())));
}

double CardinalityEstimator::RowsPerBinding(
    const KeyPath& segment, size_t key_index,
    const std::vector<Predicate>& preds) const {
  const double instances = graph_->PathInstanceCount(segment);
  const Entity& key_entity = graph_->GetEntity(segment.EntityAt(key_index));
  const double per_key =
      instances / static_cast<double>(std::max<uint64_t>(1, key_entity.count()));
  return std::max(0.0, per_key * Selectivity(preds));
}

}  // namespace nose
