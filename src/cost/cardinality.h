#ifndef NOSE_COST_CARDINALITY_H_
#define NOSE_COST_CARDINALITY_H_

#include <vector>

#include "cost/cost_model.h"
#include "model/entity_graph.h"
#include "workload/query.h"

namespace nose {

/// Cardinality estimation over the conceptual model: the standard
/// independence assumptions (predicate selectivities multiply) applied to
/// entity counts and relationship fan-outs. The planner uses these figures
/// to size every plan step, and they are deterministic per split index —
/// whatever column families a plan uses, the set of matching entity IDs at
/// each path position is the same.
class CardinalityEstimator {
 public:
  /// Stateless over `graph`/`params`: const methods are safe to call
  /// concurrently, which the advisor's parallel costing phases rely on.
  CardinalityEstimator(const EntityGraph* graph, const CostParams* params)
      : graph_(graph), params_(params) {}

  /// Fraction of rows satisfying `pred` (1/card for equality, configured
  /// constants for ranges and !=).
  double Selectivity(const Predicate& pred) const;

  /// Combined selectivity of `preds` under independence.
  double Selectivity(const std::vector<Predicate>& preds) const;

  /// Expected number of distinct `path[index]` instances that satisfy all
  /// of the query's predicates on entities at positions >= `index`
  /// (the size of the intermediate ID set when a plan has resolved the
  /// path suffix down to `index`).
  double MatchingEntities(const Query& query, size_t index) const;

  /// Expected number of records in one partition of a column family over
  /// `segment`, keyed (partitioned) by the entity at segment position
  /// `key_index`, after applying `preds` (which must be on segment
  /// entities). This is the per-request row count of a get.
  double RowsPerBinding(const KeyPath& segment, size_t key_index,
                        const std::vector<Predicate>& preds) const;

 private:
  const EntityGraph* graph_;
  const CostParams* params_;
};

}  // namespace nose

#endif  // NOSE_COST_CARDINALITY_H_
