#ifndef NOSE_RUBIS_DATAGEN_H_
#define NOSE_RUBIS_DATAGEN_H_

#include "executor/dataset.h"
#include "executor/plan_executor.h"
#include "rubis/model.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace nose::rubis {

/// Generates a deterministic RUBiS dataset: entity instances sized per
/// `scale`, bids/buynows Zipf-skewed over items (popular auctions attract
/// most bids), comments between random user pairs. IDs are dense int64 row
/// indices. Also syncs the generated counts into `graph` so the advisor's
/// cost model matches the data.
Dataset GenerateData(EntityGraph* graph, const ModelScale& scale,
                     uint64_t seed);

/// Draws statement parameters consistent with a generated dataset: IDs are
/// sampled from the populated ranges (items Zipf-skewed), fresh primary
/// keys for INSERTs are allocated past the loaded range, dates/prices/
/// quantities are sampled from the generator's distributions.
class ParamGenerator {
 public:
  ParamGenerator(const Dataset* data, uint64_t seed);

  /// Sharded generator for concurrent serving (stream `shard_index` of
  /// `shard_count`): every sampled entity id that identifies the row a
  /// statement WRITES (?item, ?user/?touser, and fresh INSERT keys) is
  /// confined to the shard — existing ids are snapped into the residue
  /// class {id : id % shard_count == shard_index} and fresh ids are drawn
  /// from a disjoint per-shard block. Statements from different shards
  /// therefore never write the same record, so their effects on the store
  /// commute and a serve run's final state is byte-identical at any thread
  /// count (streams are fixed; only their interleaving varies). The
  /// distributions are otherwise unchanged, and (index 0, count 1) is the
  /// unsharded generator.
  ParamGenerator(const Dataset* data, uint64_t seed, size_t shard_index,
                 size_t shard_count);

  /// Parameters for one workload statement (all its `?params` bound).
  PlanExecutor::Params ForStatement(const WorkloadEntry& entry);

  /// Adds missing parameters of `entry` into `params` (shared names keep
  /// their existing values, so the statements of one transaction agree on
  /// ?item, ?user, ...).
  void AddStatementParams(const WorkloadEntry& entry,
                          PlanExecutor::Params* params);

 private:
  Value ValueForParam(const std::string& name);
  /// Maps a sampled id into this shard's residue class of [0, n); identity
  /// when unsharded.
  int64_t Snap(int64_t raw, size_t n) const;

  const Dataset* data_;
  Rng rng_;
  ZipfDistribution item_zipf_;
  int64_t next_fresh_id_;
  size_t shard_index_;
  size_t shard_count_;
};

}  // namespace nose::rubis

#endif  // NOSE_RUBIS_DATAGEN_H_
