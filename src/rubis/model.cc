#include "rubis/model.h"

#include <algorithm>

#include "parser/model_parser.h"

namespace nose::rubis {

ModelScale ScaleFor(double factor) {
  ModelScale scale;
  scale.regions = std::max<size_t>(2, static_cast<size_t>(10 * factor));
  scale.categories = std::max<size_t>(2, static_cast<size_t>(20 * factor));
  scale.users = std::max<size_t>(20, static_cast<size_t>(2000 * factor));
  scale.items = std::max<size_t>(40, static_cast<size_t>(4000 * factor));
  scale.old_items = std::max<size_t>(20, static_cast<size_t>(2000 * factor));
  scale.bids = std::max<size_t>(200, static_cast<size_t>(20000 * factor));
  scale.buynows = std::max<size_t>(20, static_cast<size_t>(1000 * factor));
  scale.comments = std::max<size_t>(40, static_cast<size_t>(4000 * factor));
  return scale;
}

StatusOr<std::unique_ptr<EntityGraph>> MakeGraph(const ModelScale& scale) {
  auto n = [](size_t v) { return std::to_string(v); };
  const std::string dsl = R"(
# RUBiS conceptual model (8 entity sets, 11 relationships).
entity Region )" + n(scale.regions) + R"( {
  Dummy integer card 1
  RegionName string
}
entity Category )" + n(scale.categories) + R"( {
  Dummy integer card 1
  CategoryName string
}
entity User )" + n(scale.users) + R"( {
  UserName string
  UserEmail string
  UserPassword string size 16
  UserRating integer card 100
  UserBalance float card 1000
  UserCreationDate date card 1000
}
entity Item )" + n(scale.items) + R"( {
  ItemName string
  ItemDescription string size 200
  ItemInitialPrice float card 1000
  ItemQuantity integer card 10
  ItemReservePrice float card 1000
  ItemBuyNowPrice float card 1000
  ItemNbOfBids integer card 100
  ItemMaxBid float card 1000
  ItemStartDate date card 1000
  ItemEndDate date card 1000
}
entity OldItem )" + n(scale.old_items) + R"( {
  OldItemName string
  OldItemDescription string size 200
  OldItemEndDate date card 1000
  OldItemMaxBid float card 1000
}
entity Bid )" + n(scale.bids) + R"( {
  BidQty integer card 10
  BidPrice float card 1000
  BidDate date card 1000
}
entity BuyNow )" + n(scale.buynows) + R"( {
  BuyNowQty integer card 10
  BuyNowDate date card 1000
}
entity Comment )" + n(scale.comments) + R"( {
  CommentRating integer card 10
  CommentDate date card 1000
  CommentText string size 200
}
relationship Region one_to_many User as Users / Region
relationship Category one_to_many Item as Items / Category
relationship User one_to_many Item as Selling / Seller
relationship User one_to_many Bid as Bids / Bidder
relationship Item one_to_many Bid as ItemBids / Item
relationship User one_to_many BuyNow as BuyNows / Buyer
relationship Item one_to_many BuyNow as ItemBuyNows / Item
relationship User one_to_many Comment as CommentsWritten / FromUser
relationship User one_to_many Comment as CommentsReceived / ToUser
relationship Category one_to_many OldItem as OldItems / OldCategory
relationship User one_to_many OldItem as OldSelling / OldSeller
)";
  return ParseModel(dsl);
}

}  // namespace nose::rubis
