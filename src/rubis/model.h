#ifndef NOSE_RUBIS_MODEL_H_
#define NOSE_RUBIS_MODEL_H_

#include <memory>

#include "model/entity_graph.h"
#include "util/statusor.h"

namespace nose::rubis {

/// Baseline entity counts at scale 1 (multiplied by the data generator's
/// scale factor; `Dataset::SyncCountsTo` overwrites them with the generated
/// sizes before advising).
struct ModelScale {
  size_t regions = 10;
  size_t categories = 20;
  size_t users = 2000;
  size_t items = 4000;
  size_t old_items = 2000;
  size_t bids = 20000;
  size_t buynows = 1000;
  size_t comments = 4000;
};

/// Scales the baseline entity counts by `factor` with the floors the drift
/// scenarios rely on (at least a handful of rows per entity, so every
/// statement has rows to touch). Shared by the evolve and serve drivers so
/// their datasets agree for the same scenario scale.
ModelScale ScaleFor(double factor);

/// Builds the RUBiS conceptual model used in the paper's evaluation
/// (§VII-A): eight entity sets — Region, Category, User, Item, OldItem,
/// Bid, BuyNow, Comment — and eleven relationships. `Dummy` attributes on
/// Region/Category support the browse-all pages (constant-value partition
/// key), mirroring the trick the NoSE prototype's RUBiS workload uses.
StatusOr<std::unique_ptr<EntityGraph>> MakeGraph(
    const ModelScale& scale = ModelScale());

}  // namespace nose::rubis

#endif  // NOSE_RUBIS_MODEL_H_
