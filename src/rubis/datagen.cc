#include "rubis/datagen.h"

#include "util/strings.h"

namespace nose::rubis {

namespace {

// Relationship indices, in the order MakeGraph declares them.
enum RelIndex {
  kRegionUsers = 0,
  kCategoryItems,
  kUserSelling,
  kUserBids,
  kItemBids,
  kUserBuyNows,
  kItemBuyNows,
  kUserCommentsWritten,
  kUserCommentsReceived,
  kCategoryOldItems,
  kUserOldSelling,
};

int64_t I(size_t v) { return static_cast<int64_t>(v); }

}  // namespace

Dataset GenerateData(EntityGraph* graph, const ModelScale& scale,
                     uint64_t seed) {
  Dataset data(graph);
  Rng rng(seed);
  ZipfDistribution item_zipf(scale.items, 1.0);

  for (size_t r = 0; r < scale.regions; ++r) {
    data.AddRow("Region",
                {I(r), Value(I(1)), Value("Region" + std::to_string(r))});
  }
  for (size_t c = 0; c < scale.categories; ++c) {
    data.AddRow("Category",
                {I(c), Value(I(1)), Value("Category" + std::to_string(c))});
  }
  for (size_t u = 0; u < scale.users; ++u) {
    data.AddRow("User", {I(u), Value("user" + std::to_string(u)),
                         Value("user" + std::to_string(u) + "@rubis.com"),
                         Value(std::string("hunter2")),
                         Value(I(rng.Uniform(100))),
                         Value(static_cast<double>(rng.Uniform(100000)) / 100.0),
                         Value(I(rng.Uniform(1000)))});
    data.AddLink(kRegionUsers, rng.Uniform(scale.regions), u);
  }
  for (size_t i = 0; i < scale.items; ++i) {
    const double initial = 1.0 + static_cast<double>(rng.Uniform(99900)) / 100.0;
    data.AddRow(
        "Item",
        {I(i), Value("item" + std::to_string(i)),
         Value("description of item " + std::to_string(i)), Value(initial),
         Value(I(1 + rng.Uniform(10))), Value(initial * 1.2),
         Value(initial * 2.0), Value(I(0)), Value(0.0),
         Value(I(rng.Uniform(1000))), Value(I(rng.Uniform(1000)))});
    data.AddLink(kCategoryItems, rng.Uniform(scale.categories), i);
    data.AddLink(kUserSelling, rng.Uniform(scale.users), i);
  }
  for (size_t o = 0; o < scale.old_items; ++o) {
    data.AddRow("OldItem",
                {I(o), Value("olditem" + std::to_string(o)),
                 Value("old description " + std::to_string(o)),
                 Value(I(rng.Uniform(1000))),
                 Value(static_cast<double>(rng.Uniform(100000)) / 100.0)});
    data.AddLink(kCategoryOldItems, rng.Uniform(scale.categories), o);
    data.AddLink(kUserOldSelling, rng.Uniform(scale.users), o);
  }
  for (size_t b = 0; b < scale.bids; ++b) {
    data.AddRow("Bid",
                {I(b), Value(I(1 + rng.Uniform(5))),
                 Value(static_cast<double>(rng.Uniform(100000)) / 100.0),
                 Value(I(rng.Uniform(1000)))});
    data.AddLink(kUserBids, rng.Uniform(scale.users), b);
    data.AddLink(kItemBids, item_zipf.Sample(rng), b);
  }
  for (size_t b = 0; b < scale.buynows; ++b) {
    data.AddRow("BuyNow", {I(b), Value(I(1 + rng.Uniform(3))),
                           Value(I(rng.Uniform(1000)))});
    data.AddLink(kUserBuyNows, rng.Uniform(scale.users), b);
    data.AddLink(kItemBuyNows, item_zipf.Sample(rng), b);
  }
  for (size_t c = 0; c < scale.comments; ++c) {
    data.AddRow("Comment",
                {I(c), Value(I(rng.Uniform(10))), Value(I(rng.Uniform(1000))),
                 Value("comment text " + std::to_string(c))});
    data.AddLink(kUserCommentsWritten, rng.Uniform(scale.users), c);
    data.AddLink(kUserCommentsReceived, rng.Uniform(scale.users), c);
  }

  data.SyncCountsTo(graph);
  return data;
}

ParamGenerator::ParamGenerator(const Dataset* data, uint64_t seed)
    : ParamGenerator(data, seed, 0, 1) {}

ParamGenerator::ParamGenerator(const Dataset* data, uint64_t seed,
                               size_t shard_index, size_t shard_count)
    : data_(data),
      rng_(seed + 0x9e3779b97f4a7c15ull * shard_index),
      item_zipf_(std::max<size_t>(1, data->RowCount("Item")), 1.0),
      // Disjoint fresh-id block per shard; no serve run draws anywhere near
      // a block's worth of inserts, so blocks never collide.
      next_fresh_id_(1000000000 +
                     static_cast<int64_t>(shard_index) * 10000000),
      shard_index_(shard_index),
      shard_count_(shard_count == 0 ? 1 : shard_count) {}

int64_t ParamGenerator::Snap(int64_t raw, size_t n) const {
  if (shard_count_ <= 1 || n == 0) return raw;
  const int64_t count = static_cast<int64_t>(shard_count_);
  int64_t snapped =
      (raw / count) * count + static_cast<int64_t>(shard_index_);
  if (snapped >= static_cast<int64_t>(n)) snapped -= count;
  if (snapped < 0 || snapped >= static_cast<int64_t>(n)) {
    // Fewer rows than shards: fall back to a fixed (still shard-owned only
    // when n >= shard_count, but always deterministic) representative.
    snapped = static_cast<int64_t>(shard_index_ % n);
  }
  return snapped;
}

Value ParamGenerator::ValueForParam(const std::string& name) {
  auto uniform_id = [&](const char* entity) {
    return Value(static_cast<int64_t>(
        rng_.Uniform(std::max<size_t>(1, data_->RowCount(entity)))));
  };
  // Fresh primary keys for INSERT statements.
  if (StartsWith(name, "itemid") || StartsWith(name, "userid") ||
      StartsWith(name, "bidid") || StartsWith(name, "buynowid") ||
      StartsWith(name, "commentid")) {
    return Value(next_fresh_id_++);
  }
  // ?item and ?user/?touser identify the rows RUBiS updates write — the
  // ids that must stay shard-owned for cross-stream commutativity.
  if (StartsWith(name, "item")) {
    return Value(Snap(static_cast<int64_t>(item_zipf_.Sample(rng_)),
                      data_->RowCount("Item")));
  }
  if (StartsWith(name, "touser") || StartsWith(name, "user")) {
    return Value(Snap(std::get<int64_t>(uniform_id("User")),
                      data_->RowCount("User")));
  }
  if (StartsWith(name, "category")) return uniform_id("Category");
  if (StartsWith(name, "region")) return uniform_id("Region");
  if (StartsWith(name, "comment")) return uniform_id("Comment");
  if (StartsWith(name, "now") || StartsWith(name, "end") ||
      StartsWith(name, "date")) {
    return Value(static_cast<int64_t>(rng_.Uniform(1000)));
  }
  if (StartsWith(name, "qty")) {
    return Value(static_cast<int64_t>(1 + rng_.Uniform(10)));
  }
  if (StartsWith(name, "rating")) {
    return Value(static_cast<int64_t>(rng_.Uniform(10)));
  }
  if (StartsWith(name, "nbbids")) {
    return Value(static_cast<int64_t>(rng_.Uniform(100)));
  }
  if (StartsWith(name, "price")) {
    return Value(static_cast<double>(rng_.Uniform(100000)) / 100.0);
  }
  if (StartsWith(name, "name") || StartsWith(name, "text")) {
    return Value("generated-" + std::to_string(rng_.Uniform(1000000)));
  }
  return Value(static_cast<int64_t>(0));
}

PlanExecutor::Params ParamGenerator::ForStatement(const WorkloadEntry& entry) {
  PlanExecutor::Params params;
  AddStatementParams(entry, &params);
  return params;
}

void ParamGenerator::AddStatementParams(const WorkloadEntry& entry,
                                        PlanExecutor::Params* out) {
  PlanExecutor::Params& params = *out;
  auto add = [&](const std::string& name) {
    if (!name.empty() && params.count(name) == 0) {
      params[name] = ValueForParam(name);
    }
  };
  if (entry.IsQuery()) {
    for (const Predicate& p : entry.query().predicates()) {
      if (!p.literal.has_value()) add(p.param);
    }
  } else {
    const Update& u = entry.update();
    for (const Predicate& p : u.predicates()) {
      if (!p.literal.has_value()) add(p.param);
    }
    for (const SetClause& s : u.sets()) {
      if (!s.literal.has_value()) add(s.param);
    }
    for (const ConnectClause& c : u.connects()) add(c.param);
    add(u.from_param());
    add(u.to_param());
  }
}

}  // namespace nose::rubis
