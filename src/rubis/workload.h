#ifndef NOSE_RUBIS_WORKLOAD_H_
#define NOSE_RUBIS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "util/statusor.h"
#include "workload/workload.h"

namespace nose::rubis {

/// Mix names used by the Fig. 12 experiment.
inline constexpr const char* kBiddingMix = "default";  // bidding == default
inline constexpr const char* kBrowsingMix = "browsing";
inline constexpr const char* kWrite10xMix = "write10x";
inline constexpr const char* kWrite100xMix = "write100x";

/// One RUBiS user transaction: a named group of workload statements
/// executed together for a single request to the application server
/// (Fig. 11's x-axis categories).
struct Transaction {
  std::string name;
  std::vector<std::string> statements;
  /// Relative frequency in the bidding / browsing mixes (0 = absent).
  double bidding_weight = 0.0;
  double browsing_weight = 0.0;
  /// True if the transaction writes (its weight scales in the 10x/100x
  /// mixes, paper §VII-A).
  bool is_write = false;
};

/// The fourteen RUBiS bidding-workload transactions. Region browse/search
/// pages are excluded as in the paper.
const std::vector<Transaction>& Transactions();

/// Builds the full RUBiS workload over `graph`: every statement of every
/// transaction, with statement weights equal to the sum of the weights of
/// the transactions using them under each mix (bidding = default mix,
/// browsing, write10x, write100x).
StatusOr<std::unique_ptr<Workload>> MakeWorkload(const EntityGraph& graph);

}  // namespace nose::rubis

#endif  // NOSE_RUBIS_WORKLOAD_H_
