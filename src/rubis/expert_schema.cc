#include "rubis/expert_schema.h"

#include "model/entity_graph.h"

namespace nose::rubis {

StatusOr<Schema> ExpertSchema(const EntityGraph& graph) {
  Schema schema;
  auto add = [&](const char* name, StatusOr<KeyPath> path,
                 std::vector<FieldRef> pk, std::vector<FieldRef> ck,
                 std::vector<FieldRef> values) -> Status {
    NOSE_RETURN_IF_ERROR(path.status());
    NOSE_ASSIGN_OR_RETURN(ColumnFamily cf,
                          ColumnFamily::Create(std::move(path).value(),
                                               std::move(pk), std::move(ck),
                                               std::move(values)));
    schema.Add(std::move(cf), name);
    return Status::Ok();
  };

  // Entity lookup tables (user / item pages and update targets).
  NOSE_RETURN_IF_ERROR(add(
      "users", graph.SingleEntityPath("User"), {{"User", "UserID"}}, {},
      {{"User", "UserName"},
       {"User", "UserEmail"},
       {"User", "UserPassword"},
       {"User", "UserRating"},
       {"User", "UserBalance"},
       {"User", "UserCreationDate"}}));
  NOSE_RETURN_IF_ERROR(add(
      "items", graph.SingleEntityPath("Item"), {{"Item", "ItemID"}}, {},
      {{"Item", "ItemName"},
       {"Item", "ItemDescription"},
       {"Item", "ItemInitialPrice"},
       {"Item", "ItemQuantity"},
       {"Item", "ItemReservePrice"},
       {"Item", "ItemBuyNowPrice"},
       {"Item", "ItemNbOfBids"},
       {"Item", "ItemMaxBid"},
       {"Item", "ItemStartDate"},
       {"Item", "ItemEndDate"}}));

  // Browse pages.
  NOSE_RETURN_IF_ERROR(add("categories", graph.SingleEntityPath("Category"),
                           {{"Category", "Dummy"}},
                           {{"Category", "CategoryID"}},
                           {{"Category", "CategoryName"}}));
  NOSE_RETURN_IF_ERROR(add(
      "items_by_category", graph.ResolvePath("Item", {"Category"}),
      {{"Category", "CategoryID"}},
      {{"Item", "ItemEndDate"}, {"Item", "ItemID"}},
      {{"Item", "ItemName"}, {"Item", "ItemInitialPrice"},
       {"Item", "ItemMaxBid"}}));

  // Item page: seller block.
  NOSE_RETURN_IF_ERROR(add("item_seller",
                           graph.ResolvePath("Item", {"Seller"}),
                           {{"Item", "ItemID"}}, {{"User", "UserID"}},
                           {{"User", "UserName"}, {"User", "UserRating"}}));

  // Bid history page (bidder names denormalized into the bid row).
  NOSE_RETURN_IF_ERROR(add(
      "bids_by_item", graph.ResolvePath("Item", {"ItemBids", "Bidder"}),
      {{"Item", "ItemID"}}, {{"Bid", "BidID"}, {"User", "UserID"}},
      {{"Bid", "BidQty"}, {"Bid", "BidPrice"}, {"Bid", "BidDate"},
       {"User", "UserName"}}));

  // User page: comments received + author lookup.
  NOSE_RETURN_IF_ERROR(add(
      "comments_by_user", graph.ResolvePath("Comment", {"ToUser"}),
      {{"User", "UserID"}}, {{"Comment", "CommentID"}},
      {{"Comment", "CommentText"}, {"Comment", "CommentRating"},
       {"Comment", "CommentDate"}}));
  NOSE_RETURN_IF_ERROR(add("comment_authors",
                           graph.ResolvePath("Comment", {"FromUser"}),
                           {{"Comment", "CommentID"}}, {{"User", "UserID"}},
                           {{"User", "UserName"}}));

  // AboutMe blocks.
  NOSE_RETURN_IF_ERROR(add(
      "items_by_seller", graph.ResolvePath("Item", {"Seller"}),
      {{"User", "UserID"}}, {{"Item", "ItemID"}},
      {{"Item", "ItemName"}, {"Item", "ItemEndDate"},
       {"Item", "ItemMaxBid"}}));
  NOSE_RETURN_IF_ERROR(add(
      "bids_by_user", graph.ResolvePath("Item", {"ItemBids", "Bidder"}),
      {{"User", "UserID"}}, {{"Bid", "BidID"}, {"Item", "ItemID"}},
      {{"Bid", "BidPrice"}, {"Bid", "BidDate"}, {"Item", "ItemName"}}));
  NOSE_RETURN_IF_ERROR(add(
      "buynows_by_user",
      graph.ResolvePath("Item", {"ItemBuyNows", "Buyer"}),
      {{"User", "UserID"}}, {{"BuyNow", "BuyNowID"}, {"Item", "ItemID"}},
      {{"BuyNow", "BuyNowDate"}, {"Item", "ItemName"}}));
  NOSE_RETURN_IF_ERROR(add(
      "olditems_by_seller", graph.ResolvePath("OldItem", {"OldSeller"}),
      {{"User", "UserID"}}, {{"OldItem", "OldItemID"}},
      {{"OldItem", "OldItemName"}, {"OldItem", "OldItemMaxBid"}}));

  // Item -> category/end-date lookup: lets update_item_bids and
  // register_item maintain items_by_category without scanning.
  NOSE_RETURN_IF_ERROR(add("item_category",
                           graph.ResolvePath("Item", {"Category"}),
                           {{"Item", "ItemID"}},
                           {{"Category", "CategoryID"}},
                           {{"Item", "ItemEndDate"}, {"Item", "ItemName"},
                            {"Item", "ItemInitialPrice"}}));

  return schema;
}

}  // namespace nose::rubis
