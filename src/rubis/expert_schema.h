#ifndef NOSE_RUBIS_EXPERT_SCHEMA_H_
#define NOSE_RUBIS_EXPERT_SCHEMA_H_

#include "schema/schema.h"
#include "util/statusor.h"

namespace nose::rubis {

/// The hand-designed "expert" schema of the paper's evaluation (§VII-A):
/// one denormalized column family per page the bidding workload serves,
/// shared across transactions where a Cassandra practitioner would reuse a
/// table, plus the per-entity lookup tables updates need. Encodes the
/// rules of thumb (denormalize read paths, key by the access pattern)
/// without any cost-based search.
StatusOr<Schema> ExpertSchema(const EntityGraph& graph);

}  // namespace nose::rubis

#endif  // NOSE_RUBIS_EXPERT_SCHEMA_H_
