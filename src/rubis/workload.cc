#include "rubis/workload.h"

#include <map>

#include "parser/statement_parser.h"

namespace nose::rubis {

namespace {

/// Statement texts, keyed by name. Statements are shared between
/// transactions (e.g. view_item appears in ViewItem, BuyNow, PutBid,
/// PutComment).
const std::vector<std::pair<std::string, std::string>>& StatementTexts() {
  static const auto* kStatements =
      new std::vector<std::pair<std::string, std::string>>{
          {"browse_categories",
           "SELECT Category.CategoryName FROM Category "
           "WHERE Category.Dummy = 1"},
          {"search_items_category",
           "SELECT Item.ItemName, Item.ItemInitialPrice, Item.ItemMaxBid, "
           "Item.ItemEndDate FROM Item.Category "
           "WHERE Category.CategoryID = ?category "
           "AND Item.ItemEndDate >= ?now"},
          {"view_item", "SELECT Item.* FROM Item WHERE Item.ItemID = ?item"},
          {"view_item_seller",
           "SELECT User.UserName, User.UserRating FROM User.Selling "
           "WHERE Item.ItemID = ?item"},
          {"bid_history",
           "SELECT User.UserName, Bid.BidQty, Bid.BidPrice, Bid.BidDate "
           "FROM User.Bids.Item WHERE Item.ItemID = ?item"},
          {"user_info", "SELECT User.* FROM User WHERE User.UserID = ?user"},
          {"user_comments",
           "SELECT Comment.CommentText, Comment.CommentRating, "
           "Comment.CommentDate FROM Comment.ToUser "
           "WHERE User.UserID = ?user"},
          {"comment_author",
           "SELECT User.UserName FROM User.CommentsWritten "
           "WHERE Comment.CommentID = ?comment"},
          {"store_buynow",
           "INSERT INTO BuyNow SET BuyNowID = ?buynowid, BuyNowQty = ?qty, "
           "BuyNowDate = ?now AND CONNECT TO Buyer(?user), Item(?item)"},
          {"update_item_qty",
           "UPDATE Item SET ItemQuantity = ?qty WHERE Item.ItemID = ?item"},
          {"store_bid",
           "INSERT INTO Bid SET BidID = ?bidid, BidQty = ?qty, "
           "BidPrice = ?price, BidDate = ?now "
           "AND CONNECT TO Bidder(?user), Item(?item)"},
          {"update_item_bids",
           "UPDATE Item SET ItemNbOfBids = ?nbbids, ItemMaxBid = ?price "
           "WHERE Item.ItemID = ?item"},
          {"store_comment",
           "INSERT INTO Comment SET CommentID = ?commentid, "
           "CommentRating = ?rating, CommentDate = ?now, "
           "CommentText = ?text "
           "AND CONNECT TO FromUser(?user), ToUser(?touser)"},
          {"update_user_rating",
           "UPDATE User SET UserRating = ?rating WHERE User.UserID = ?touser"},
          {"aboutme_items",
           "SELECT Item.ItemName, Item.ItemEndDate, Item.ItemMaxBid "
           "FROM Item.Seller WHERE User.UserID = ?user"},
          {"aboutme_bids",
           "SELECT Item.ItemName, Bid.BidPrice, Bid.BidDate "
           "FROM Item.ItemBids.Bidder WHERE User.UserID = ?user"},
          {"aboutme_buynows",
           "SELECT Item.ItemName, BuyNow.BuyNowDate "
           "FROM Item.ItemBuyNows.Buyer WHERE User.UserID = ?user"},
          {"aboutme_olditems",
           "SELECT OldItem.OldItemName, OldItem.OldItemMaxBid "
           "FROM OldItem.OldSeller WHERE User.UserID = ?user"},
          {"register_item",
           "INSERT INTO Item SET ItemID = ?itemid, ItemName = ?name, "
           "ItemDescription = ?text, ItemInitialPrice = ?price, "
           "ItemQuantity = ?qty, ItemReservePrice = ?price2, "
           "ItemBuyNowPrice = ?price3, ItemNbOfBids = 0, ItemMaxBid = 0.0, "
           "ItemStartDate = ?now, ItemEndDate = ?end "
           "AND CONNECT TO Seller(?user), Category(?category)"},
          {"register_user",
           "INSERT INTO User SET UserID = ?userid, UserName = ?name, "
           "UserEmail = ?text, UserPassword = ?text2, UserRating = 0, "
           "UserBalance = 0.0, UserCreationDate = ?now "
           "AND CONNECT TO Region(?region)"},
      };
  return *kStatements;
}

}  // namespace

const std::vector<Transaction>& Transactions() {
  // Bidding weights approximate the RUBiS default transition mix; browsing
  // weights cover the read-only subset. Absolute values are immaterial —
  // only ratios matter.
  static const auto* kTransactions = new std::vector<Transaction>{
      {"BrowseCategories", {"browse_categories"}, 7.0, 12.0, false},
      {"ViewBidHistory", {"bid_history"}, 3.0, 5.0, false},
      {"ViewItem", {"view_item", "view_item_seller"}, 22.0, 30.0, false},
      {"SearchItemsByCategory", {"search_items_category"}, 22.0, 35.0, false},
      {"ViewUserInfo", {"user_info", "user_comments", "comment_author"}, 4.0,
       8.0, false},
      {"BuyNow", {"user_info", "view_item"}, 3.0, 3.0, false},
      {"StoreBuyNow", {"store_buynow", "update_item_qty"}, 1.5, 0.0, true},
      {"PutBid", {"view_item", "bid_history"}, 8.0, 4.0, false},
      {"StoreBid", {"store_bid", "update_item_bids"}, 6.0, 0.0, true},
      {"PutComment", {"view_item", "user_info"}, 1.0, 1.0, false},
      {"StoreComment", {"store_comment", "update_user_rating"}, 1.0, 0.0,
       true},
      {"AboutMe",
       {"user_info", "aboutme_items", "aboutme_bids", "aboutme_buynows",
        "aboutme_olditems", "user_comments"},
       2.0, 2.0, false},
      {"RegisterItem", {"register_item"}, 1.5, 0.0, true},
      {"RegisterUser", {"register_user"}, 1.0, 0.0, true},
  };
  return *kTransactions;
}

StatusOr<std::unique_ptr<Workload>> MakeWorkload(const EntityGraph& graph) {
  auto workload = std::make_unique<Workload>(&graph);

  // Statement weight per mix = sum of weights of transactions using it.
  std::map<std::string, std::map<std::string, double>> weights;
  for (const Transaction& tx : Transactions()) {
    for (const std::string& stmt : tx.statements) {
      weights[stmt][kBiddingMix] += tx.bidding_weight;
      weights[stmt][kBrowsingMix] += tx.browsing_weight;
      const double w10 = tx.is_write ? tx.bidding_weight * 10.0
                                     : tx.bidding_weight;
      const double w100 = tx.is_write ? tx.bidding_weight * 100.0
                                      : tx.bidding_weight;
      weights[stmt][kWrite10xMix] += w10;
      weights[stmt][kWrite100xMix] += w100;
    }
  }

  for (const auto& [name, text] : StatementTexts()) {
    NOSE_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseStatement(graph, text));
    const auto& w = weights.at(name);
    if (std::holds_alternative<Query>(stmt)) {
      NOSE_RETURN_IF_ERROR(workload->AddQuery(
          name, std::get<Query>(std::move(stmt)), w.at(kBiddingMix)));
    } else {
      NOSE_RETURN_IF_ERROR(workload->AddUpdate(
          name, std::get<Update>(std::move(stmt)), w.at(kBiddingMix)));
    }
    for (const char* mix : {kBrowsingMix, kWrite10xMix, kWrite100xMix}) {
      NOSE_RETURN_IF_ERROR(workload->SetWeight(name, mix, w.at(mix)));
    }
  }
  return workload;
}

}  // namespace nose::rubis
