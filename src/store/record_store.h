#ifndef NOSE_STORE_RECORD_STORE_H_
#define NOSE_STORE_RECORD_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.h"
#include "util/statusor.h"
#include "util/value.h"
#include "workload/predicate.h"

namespace nose {

/// Operation counters plus simulated latency. The simulation charges each
/// get/put with the same per-request / per-row / per-byte constants the
/// cost model uses, standing in for the paper's physical Cassandra cluster
/// (see DESIGN.md, substitutions). Wall-clock work of the in-memory store
/// is *not* what benchmarks report — simulated_ms is.
struct StoreStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t rows_read = 0;
  uint64_t rows_written = 0;
  uint64_t bytes_read = 0;
  /// Rows and payload bytes reclaimed by DropColumnFamily (live migration
  /// drops the superseded generation at cutover; serve reports surface
  /// the space reclaimed).
  uint64_t rows_dropped = 0;
  uint64_t bytes_dropped = 0;
  double simulated_ms = 0.0;

  void Reset() { *this = StoreStats(); }
};

/// Inclusive/exclusive bound for a clustering-range scan.
struct RangeBound {
  PredicateOp op = PredicateOp::kGt;  ///< kLt/kLe/kGt/kGe
  Value value;
};

/// An extensible record store in the paper's model (§III-C): a column
/// family maps a partition key to clustering-key-sorted records,
///   K -> (C -> V),
/// supporting only get (partition key + clustering prefix + optional range)
/// and put/delete. In-memory.
///
/// Concurrency: each column family's partition map is hash-sharded into
/// `stripes_per_cf` stripes, each behind its own mutex, so driver threads
/// and migration workers operate concurrently as long as they touch
/// different stripes (a partition always lives in exactly one stripe).
/// The catalog itself is guarded by a shared mutex: operations hold it
/// shared, CreateColumnFamily/DropColumnFamily hold it exclusive, so a
/// drop cannot race an in-flight access to the dropped family.
///
/// Stats determinism: simulated time is accumulated per stripe in integer
/// nanoseconds (addition commutes exactly, unlike floating point), and
/// stats() merges stripes in sorted column-family name / stripe index
/// order — so the snapshot is byte-identical for a given set of executed
/// operations regardless of thread count or interleaving.
class RecordStore {
 public:
  /// `stripes_per_cf` fixes the shard count of every column family created
  /// on this store (minimum 1). Single-threaded callers keep the default.
  explicit RecordStore(CostParams params = CostParams(),
                       size_t stripes_per_cf = 1)
      : params_(params),
        stripes_per_cf_(stripes_per_cf == 0 ? 1 : stripes_per_cf) {}

  /// Registers a column family; widths fix the tuple arity of partition
  /// key, clustering key and values for all subsequent operations.
  Status CreateColumnFamily(const std::string& name, size_t partition_width,
                            size_t clustering_width, size_t value_width);
  bool HasColumnFamily(const std::string& name) const;

  /// Removes a column family and all its records (live migration drops the
  /// superseded generation after cutover). Not charged to the simulation —
  /// drops are metadata operations in the target stores — but the rows and
  /// bytes reclaimed are recorded in StoreStats::rows_dropped/bytes_dropped,
  /// and the family's operation counters are folded into the retained
  /// aggregate so stats() never goes backwards.
  Status DropColumnFamily(const std::string& name);

  struct Row {
    ValueTuple clustering;
    ValueTuple values;
  };

  /// Fetches, from the record identified by `partition`, all (C -> V) pairs
  /// whose clustering key starts with `clustering_prefix`, optionally
  /// restricted by `range` on the clustering component right after the
  /// prefix. Rows come back in clustering order.
  StatusOr<std::vector<Row>> Get(const std::string& name,
                                 const ValueTuple& partition,
                                 const ValueTuple& clustering_prefix = {},
                                 const std::optional<RangeBound>& range =
                                     std::nullopt);

  /// Upserts one record. `values` entries that are nullopt keep the stored
  /// value (Cassandra-style per-column write); for a fresh record they
  /// default to int64 0.
  Status Put(const std::string& name, const ValueTuple& partition,
             const ValueTuple& clustering,
             const std::vector<std::optional<Value>>& values);

  /// Removes one record; removing a non-existent record is a no-op (still
  /// counted as a write request).
  Status Delete(const std::string& name, const ValueTuple& partition,
                const ValueTuple& clustering);

  /// Total records stored in a column family.
  StatusOr<size_t> RowCount(const std::string& name) const;

  /// Deterministic merged snapshot of per-stripe stats plus the retained
  /// aggregate of dropped column families. Returned by value — the striped
  /// stats have no single object to hand out a reference to.
  StoreStats stats() const;

  /// Zeroes every stripe's stats and the retained aggregate.
  void ResetStats();

  /// Order-independent hash of the store's full logical content (every
  /// record of every live column family, including names). Two stores hold
  /// byte-identical data iff their digests match (modulo hash collisions) —
  /// regardless of stripe count, insertion order, or thread interleaving.
  /// The serve tests use this to check that a concurrent run's final state
  /// equals the single-threaded control's. Process-local only (hashes are
  /// not stable across binaries); not charged to the simulation.
  uint64_t ContentDigest() const;

  const CostParams& params() const { return params_; }
  size_t stripes_per_cf() const { return stripes_per_cf_; }

  /// Monotone total of simulated milliseconds charged to the calling
  /// thread, across all RecordStore instances. The per-operation
  /// attribution primitive for concurrent callers: bracket an operation
  /// with two calls and subtract — `stats().simulated_ms` deltas race
  /// under concurrency, this does not, and nested measurements compose.
  static double ThreadChargeMs();

  /// Suspends stats charging for bulk loads (initial dataset load is not
  /// part of the simulated workload). Global per store and NOT safe to
  /// hold while charged traffic runs concurrently — use only during
  /// single-threaded setup. Process-wide obs counters still tick.
  class UnchargedLoadScope {
   public:
    explicit UnchargedLoadScope(RecordStore* store) : store_(store) {
      store_->charging_.store(false, std::memory_order_relaxed);
    }
    ~UnchargedLoadScope() {
      store_->charging_.store(true, std::memory_order_relaxed);
    }
    UnchargedLoadScope(const UnchargedLoadScope&) = delete;
    UnchargedLoadScope& operator=(const UnchargedLoadScope&) = delete;

   private:
    RecordStore* store_;
  };

 private:
  /// Integer-nanosecond stats of one stripe, guarded by the stripe mutex.
  struct StripeStats {
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t rows_read = 0;
    uint64_t rows_written = 0;
    uint64_t bytes_read = 0;
    int64_t simulated_ns = 0;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<ValueTuple, std::map<ValueTuple, ValueTuple>,
                       ValueTupleHash>
        partitions;
    size_t total_rows = 0;
    StripeStats stats;
  };

  struct ColumnFamilyData {
    size_t partition_width;
    size_t clustering_width;
    size_t value_width;
    std::vector<std::unique_ptr<Stripe>> stripes;

    Stripe& StripeFor(const ValueTuple& partition) {
      return *stripes[ValueTupleHash()(partition) % stripes.size()];
    }
  };

  /// Caller must hold catalog_mu_ (shared suffices).
  StatusOr<ColumnFamilyData*> FindCf(const std::string& name) const;

  /// Adds `ms` of simulated latency to the stripe (as integer ns) and to
  /// the calling thread's charge accumulator. Caller holds stripe.mu.
  void Charge(Stripe& stripe, double ms) const;

  bool charging() const { return charging_.load(std::memory_order_relaxed); }

  CostParams params_;
  size_t stripes_per_cf_;
  std::atomic<bool> charging_{true};

  mutable std::shared_mutex catalog_mu_;
  std::unordered_map<std::string, std::unique_ptr<ColumnFamilyData>> cfs_;

  /// Stats of dropped column families plus drop accounting; stats() adds
  /// this to the live stripes' totals. Guarded by catalog_mu_ exclusive
  /// (mutated only by DropColumnFamily/ResetStats).
  struct RetiredStats {
    StripeStats ops;
    uint64_t rows_dropped = 0;
    uint64_t bytes_dropped = 0;
  };
  RetiredStats retired_;
};

/// Approximate wire size of a tuple in bytes (latency simulation).
size_t TupleBytes(const ValueTuple& tuple);

}  // namespace nose

#endif  // NOSE_STORE_RECORD_STORE_H_
