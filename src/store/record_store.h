#ifndef NOSE_STORE_RECORD_STORE_H_
#define NOSE_STORE_RECORD_STORE_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.h"
#include "util/statusor.h"
#include "util/value.h"
#include "workload/predicate.h"

namespace nose {

/// Operation counters plus simulated latency. The simulation charges each
/// get/put with the same per-request / per-row / per-byte constants the
/// cost model uses, standing in for the paper's physical Cassandra cluster
/// (see DESIGN.md, substitutions). Wall-clock work of the in-memory store
/// is *not* what benchmarks report — simulated_ms is.
struct StoreStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t rows_read = 0;
  uint64_t rows_written = 0;
  uint64_t bytes_read = 0;
  double simulated_ms = 0.0;

  void Reset() { *this = StoreStats(); }
};

/// Inclusive/exclusive bound for a clustering-range scan.
struct RangeBound {
  PredicateOp op = PredicateOp::kGt;  ///< kLt/kLe/kGt/kGe
  Value value;
};

/// An extensible record store in the paper's model (§III-C): a column
/// family maps a partition key to clustering-key-sorted records,
///   K -> (C -> V),
/// supporting only get (partition key + clustering prefix + optional range)
/// and put/delete. In-memory; single-threaded.
class RecordStore {
 public:
  explicit RecordStore(CostParams params = CostParams())
      : params_(params) {}

  /// Registers a column family; widths fix the tuple arity of partition
  /// key, clustering key and values for all subsequent operations.
  Status CreateColumnFamily(const std::string& name, size_t partition_width,
                            size_t clustering_width, size_t value_width);
  bool HasColumnFamily(const std::string& name) const {
    return cfs_.count(name) > 0;
  }

  /// Removes a column family and all its records (live migration drops the
  /// superseded generation after cutover). Not charged to the simulation —
  /// drops are metadata operations in the target stores.
  Status DropColumnFamily(const std::string& name);

  struct Row {
    ValueTuple clustering;
    ValueTuple values;
  };

  /// Fetches, from the record identified by `partition`, all (C -> V) pairs
  /// whose clustering key starts with `clustering_prefix`, optionally
  /// restricted by `range` on the clustering component right after the
  /// prefix. Rows come back in clustering order.
  StatusOr<std::vector<Row>> Get(const std::string& name,
                                 const ValueTuple& partition,
                                 const ValueTuple& clustering_prefix = {},
                                 const std::optional<RangeBound>& range =
                                     std::nullopt);

  /// Upserts one record. `values` entries that are nullopt keep the stored
  /// value (Cassandra-style per-column write); for a fresh record they
  /// default to int64 0.
  Status Put(const std::string& name, const ValueTuple& partition,
             const ValueTuple& clustering,
             const std::vector<std::optional<Value>>& values);

  /// Removes one record; removing a non-existent record is a no-op (still
  /// counted as a write request).
  Status Delete(const std::string& name, const ValueTuple& partition,
                const ValueTuple& clustering);

  /// Total records stored in a column family.
  StatusOr<size_t> RowCount(const std::string& name) const;

  StoreStats& stats() { return stats_; }
  const StoreStats& stats() const { return stats_; }
  const CostParams& params() const { return params_; }

 private:
  struct ColumnFamilyData {
    size_t partition_width;
    size_t clustering_width;
    size_t value_width;
    std::unordered_map<ValueTuple, std::map<ValueTuple, ValueTuple>,
                       ValueTupleHash>
        partitions;
    size_t total_rows = 0;
  };

  StatusOr<ColumnFamilyData*> FindCf(const std::string& name);

  CostParams params_;
  StoreStats stats_;
  std::unordered_map<std::string, ColumnFamilyData> cfs_;
};

/// Approximate wire size of a tuple in bytes (latency simulation).
size_t TupleBytes(const ValueTuple& tuple);

}  // namespace nose

#endif  // NOSE_STORE_RECORD_STORE_H_
