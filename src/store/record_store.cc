#include "store/record_store.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace nose {

namespace {

/// Store request counters live beside StoreStats rather than replacing it:
/// StoreStats is per-store (and resettable by tests), while these feed the
/// process-wide metrics snapshot. Counters only — no spans or histograms on
/// this path, which the store microbenchmarks treat as hot.
struct StoreCounters {
  obs::Counter& gets;
  obs::Counter& partitions_read;
  obs::Counter& rows_read;
  obs::Counter& bytes_read;
  obs::Counter& puts;
  obs::Counter& deletes;
  obs::Counter& rows_written;

  static StoreCounters& Get() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static StoreCounters* c = new StoreCounters{
        reg.GetCounter("store.gets"),
        reg.GetCounter("store.partitions_read"),
        reg.GetCounter("store.rows_read"),
        reg.GetCounter("store.bytes_read"),
        reg.GetCounter("store.puts"),
        reg.GetCounter("store.deletes"),
        reg.GetCounter("store.rows_written")};
    return *c;
  }
};

/// Monotone simulated-millisecond total charged by this thread, across
/// store instances. Callers bracket an operation and subtract.
thread_local double tls_charge_ms = 0.0;

/// Stripes accumulate simulated time in integer nanoseconds so the merged
/// total is independent of which thread charged what in which order
/// (integer addition commutes exactly; double addition does not).
int64_t MsToNanos(double ms) {
  return static_cast<int64_t>(std::llround(ms * 1e6));
}

}  // namespace

size_t TupleBytes(const ValueTuple& tuple) {
  size_t bytes = 0;
  for (const Value& v : tuple) {
    switch (v.index()) {
      case 0:
      case 1:
        bytes += 8;
        break;
      case 2:
        bytes += std::get<std::string>(v).size();
        break;
      case 3:
        bytes += 1;
        break;
    }
  }
  return bytes;
}

double RecordStore::ThreadChargeMs() { return tls_charge_ms; }

void RecordStore::Charge(Stripe& stripe, double ms) const {
  if (!charging()) return;
  stripe.stats.simulated_ns += MsToNanos(ms);
  tls_charge_ms += ms;
}

Status RecordStore::CreateColumnFamily(const std::string& name,
                                       size_t partition_width,
                                       size_t clustering_width,
                                       size_t value_width) {
  if (name.empty()) {
    return Status::InvalidArgument("column family name must be non-empty");
  }
  if (partition_width == 0) {
    return Status::InvalidArgument("partition key must have at least one "
                                   "component: " +
                                   name);
  }
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (cfs_.count(name) > 0) {
    return Status::AlreadyExists("column family " + name + " already exists");
  }
  auto cf = std::make_unique<ColumnFamilyData>();
  cf->partition_width = partition_width;
  cf->clustering_width = clustering_width;
  cf->value_width = value_width;
  cf->stripes.reserve(stripes_per_cf_);
  for (size_t i = 0; i < stripes_per_cf_; ++i) {
    cf->stripes.push_back(std::make_unique<Stripe>());
  }
  cfs_.emplace(name, std::move(cf));
  return Status::Ok();
}

bool RecordStore::HasColumnFamily(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return cfs_.count(name) > 0;
}

Status RecordStore::DropColumnFamily(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = cfs_.find(name);
  if (it == cfs_.end()) {
    return Status::NotFound("unknown column family " + name);
  }
  // Fold the family's operation counters into the retained aggregate (so
  // stats() never goes backwards across a cutover) and account the space
  // reclaimed. The exclusive catalog lock guarantees no operation is in
  // flight on these stripes.
  for (const std::unique_ptr<Stripe>& stripe : it->second->stripes) {
    const StripeStats& s = stripe->stats;
    retired_.ops.gets += s.gets;
    retired_.ops.puts += s.puts;
    retired_.ops.deletes += s.deletes;
    retired_.ops.rows_read += s.rows_read;
    retired_.ops.rows_written += s.rows_written;
    retired_.ops.bytes_read += s.bytes_read;
    retired_.ops.simulated_ns += s.simulated_ns;
    retired_.rows_dropped += stripe->total_rows;
    for (const auto& [partition, records] : stripe->partitions) {
      for (const auto& [clustering, values] : records) {
        retired_.bytes_dropped += TupleBytes(partition) +
                                  TupleBytes(clustering) + TupleBytes(values);
      }
    }
  }
  cfs_.erase(it);
  return Status::Ok();
}

StatusOr<RecordStore::ColumnFamilyData*> RecordStore::FindCf(
    const std::string& name) const {
  auto it = cfs_.find(name);
  if (it == cfs_.end()) {
    return Status::NotFound("unknown column family " + name);
  }
  return it->second.get();
}

StatusOr<std::vector<RecordStore::Row>> RecordStore::Get(
    const std::string& name, const ValueTuple& partition,
    const ValueTuple& clustering_prefix,
    const std::optional<RangeBound>& range) {
  std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  NOSE_ASSIGN_OR_RETURN(ColumnFamilyData * cf, FindCf(name));
  if (partition.size() != cf->partition_width) {
    return Status::InvalidArgument("partition key arity mismatch for " + name);
  }
  if (clustering_prefix.size() > cf->clustering_width) {
    return Status::InvalidArgument("clustering prefix too long for " + name);
  }
  if (range.has_value() && clustering_prefix.size() >= cf->clustering_width) {
    return Status::InvalidArgument(
        "range scan needs a clustering component after the prefix: " + name);
  }

  Stripe& stripe = cf->StripeFor(partition);
  std::lock_guard<std::mutex> stripe_lock(stripe.mu);
  if (charging()) ++stripe.stats.gets;
  Charge(stripe, params_.read_request);
  StoreCounters::Get().gets.Increment();

  std::vector<Row> rows;
  auto pit = stripe.partitions.find(partition);
  if (pit == stripe.partitions.end()) return rows;
  StoreCounters::Get().partitions_read.Increment();

  // Iterate the ordered records of this partition from the prefix onward.
  const std::map<ValueTuple, ValueTuple>& records = pit->second;
  auto it = clustering_prefix.empty() ? records.begin()
                                      : records.lower_bound(clustering_prefix);
  for (; it != records.end(); ++it) {
    const ValueTuple& key = it->first;
    // Stop when the prefix no longer matches (keys are sorted).
    bool prefix_ok = true;
    for (size_t i = 0; i < clustering_prefix.size(); ++i) {
      if (key[i] != clustering_prefix[i]) {
        prefix_ok = false;
        break;
      }
    }
    if (!prefix_ok) break;
    if (range.has_value()) {
      const Value& probe = key[clustering_prefix.size()];
      const Value& bound = range->value;
      bool keep = true;
      switch (range->op) {
        case PredicateOp::kLt:
          keep = probe < bound;
          break;
        case PredicateOp::kLe:
          keep = !(bound < probe);
          break;
        case PredicateOp::kGt:
          keep = bound < probe;
          break;
        case PredicateOp::kGe:
          keep = !(probe < bound);
          break;
        default:
          return Status::InvalidArgument("invalid range operator");
      }
      // The prefix is fixed, so the scanned component is ordered: for
      // kLt/kLe nothing further can match once a row misses; for kGt/kGe
      // the miss is below the bound and later rows may still match.
      if (!keep) {
        if (range->op == PredicateOp::kLt || range->op == PredicateOp::kLe) {
          break;  // ordered: nothing further can match
        }
        continue;  // kGt/kGe: later rows are larger; this one just misses
      }
    }
    rows.push_back(Row{ValueTuple(key.begin(), key.end()), it->second});
  }

  size_t bytes = 0;
  for (const Row& r : rows) bytes += TupleBytes(r.clustering) + TupleBytes(r.values);
  if (charging()) {
    stripe.stats.rows_read += rows.size();
    stripe.stats.bytes_read += bytes;
  }
  StoreCounters::Get().rows_read.Add(rows.size());
  StoreCounters::Get().bytes_read.Add(bytes);
  Charge(stripe, static_cast<double>(rows.size()) * params_.read_row +
                     static_cast<double>(bytes) * params_.read_byte);
  return rows;
}

Status RecordStore::Put(const std::string& name, const ValueTuple& partition,
                        const ValueTuple& clustering,
                        const std::vector<std::optional<Value>>& values) {
  std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  NOSE_ASSIGN_OR_RETURN(ColumnFamilyData * cf, FindCf(name));
  if (partition.size() != cf->partition_width ||
      clustering.size() != cf->clustering_width ||
      values.size() != cf->value_width) {
    return Status::InvalidArgument("tuple arity mismatch in Put for " + name);
  }
  Stripe& stripe = cf->StripeFor(partition);
  std::lock_guard<std::mutex> stripe_lock(stripe.mu);
  auto& records = stripe.partitions[partition];
  auto [it, inserted] = records.try_emplace(clustering);
  if (inserted) {
    it->second.resize(values.size(), Value(static_cast<int64_t>(0)));
    ++stripe.total_rows;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].has_value()) it->second[i] = *values[i];
  }
  if (charging()) {
    ++stripe.stats.puts;
    ++stripe.stats.rows_written;
  }
  StoreCounters::Get().puts.Increment();
  StoreCounters::Get().rows_written.Increment();
  Charge(stripe,
         params_.write_request + params_.write_row +
             static_cast<double>(TupleBytes(it->second)) * params_.read_byte);
  return Status::Ok();
}

Status RecordStore::Delete(const std::string& name, const ValueTuple& partition,
                           const ValueTuple& clustering) {
  std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  NOSE_ASSIGN_OR_RETURN(ColumnFamilyData * cf, FindCf(name));
  if (partition.size() != cf->partition_width ||
      clustering.size() != cf->clustering_width) {
    return Status::InvalidArgument("tuple arity mismatch in Delete for " +
                                   name);
  }
  Stripe& stripe = cf->StripeFor(partition);
  std::lock_guard<std::mutex> stripe_lock(stripe.mu);
  if (charging()) ++stripe.stats.deletes;
  Charge(stripe, params_.write_request + params_.write_row);
  StoreCounters::Get().deletes.Increment();
  auto pit = stripe.partitions.find(partition);
  if (pit == stripe.partitions.end()) return Status::Ok();
  if (pit->second.erase(clustering) > 0) {
    --stripe.total_rows;
    if (charging()) ++stripe.stats.rows_written;
    StoreCounters::Get().rows_written.Increment();
  }
  if (pit->second.empty()) stripe.partitions.erase(pit);
  return Status::Ok();
}

StatusOr<size_t> RecordStore::RowCount(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = cfs_.find(name);
  if (it == cfs_.end()) {
    return Status::NotFound("unknown column family " + name);
  }
  size_t total = 0;
  for (const std::unique_ptr<Stripe>& stripe : it->second->stripes) {
    std::lock_guard<std::mutex> stripe_lock(stripe->mu);
    total += stripe->total_rows;
  }
  return total;
}

StoreStats RecordStore::stats() const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  StripeStats sum = retired_.ops;
  // Merge in sorted column-family name / stripe index order. All fields
  // are integers, so the sum is interleaving-independent; the fixed order
  // makes that easy to see (and keeps the walk deterministic).
  std::vector<std::string> names;
  names.reserve(cfs_.size());
  for (const auto& [name, cf] : cfs_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const ColumnFamilyData& cf = *cfs_.at(name);
    for (const std::unique_ptr<Stripe>& stripe : cf.stripes) {
      std::lock_guard<std::mutex> stripe_lock(stripe->mu);
      const StripeStats& s = stripe->stats;
      sum.gets += s.gets;
      sum.puts += s.puts;
      sum.deletes += s.deletes;
      sum.rows_read += s.rows_read;
      sum.rows_written += s.rows_written;
      sum.bytes_read += s.bytes_read;
      sum.simulated_ns += s.simulated_ns;
    }
  }
  StoreStats out;
  out.gets = sum.gets;
  out.puts = sum.puts;
  out.deletes = sum.deletes;
  out.rows_read = sum.rows_read;
  out.rows_written = sum.rows_written;
  out.bytes_read = sum.bytes_read;
  out.rows_dropped = retired_.rows_dropped;
  out.bytes_dropped = retired_.bytes_dropped;
  out.simulated_ms = static_cast<double>(sum.simulated_ns) / 1e6;
  return out;
}

uint64_t RecordStore::ContentDigest() const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  ValueTupleHash tuple_hash;
  uint64_t digest = 0;
  for (const auto& [name, cf] : cfs_) {
    const uint64_t name_hash = std::hash<std::string>()(name);
    for (const std::unique_ptr<Stripe>& stripe : cf->stripes) {
      std::lock_guard<std::mutex> stripe_lock(stripe->mu);
      for (const auto& [partition, records] : stripe->partitions) {
        const uint64_t ph = tuple_hash(partition);
        for (const auto& [clustering, values] : records) {
          // splitmix64-style mix of the record's component hashes; records
          // are combined by wrapping addition, which commutes — the digest
          // is independent of stripe count and iteration order.
          uint64_t h = name_hash ^ (ph * 0x9e3779b97f4a7c15ull) ^
                       (tuple_hash(clustering) * 0xbf58476d1ce4e5b9ull) ^
                       (tuple_hash(values) * 0x94d049bb133111ebull);
          h ^= h >> 30;
          h *= 0xbf58476d1ce4e5b9ull;
          h ^= h >> 27;
          h *= 0x94d049bb133111ebull;
          h ^= h >> 31;
          digest += h;
        }
      }
    }
  }
  return digest;
}

void RecordStore::ResetStats() {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  retired_ = RetiredStats();
  for (auto& [name, cf] : cfs_) {
    for (std::unique_ptr<Stripe>& stripe : cf->stripes) {
      std::lock_guard<std::mutex> stripe_lock(stripe->mu);
      stripe->stats = StripeStats();
    }
  }
}

}  // namespace nose
