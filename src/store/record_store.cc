#include "store/record_store.h"

#include "obs/metrics.h"

namespace nose {

namespace {

/// Store request counters live beside StoreStats rather than replacing it:
/// StoreStats is per-store (and resettable by tests), while these feed the
/// process-wide metrics snapshot. Counters only — no spans or histograms on
/// this path, which the store microbenchmarks treat as hot.
struct StoreCounters {
  obs::Counter& gets;
  obs::Counter& partitions_read;
  obs::Counter& rows_read;
  obs::Counter& bytes_read;
  obs::Counter& puts;
  obs::Counter& deletes;
  obs::Counter& rows_written;

  static StoreCounters& Get() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static StoreCounters* c = new StoreCounters{
        reg.GetCounter("store.gets"),
        reg.GetCounter("store.partitions_read"),
        reg.GetCounter("store.rows_read"),
        reg.GetCounter("store.bytes_read"),
        reg.GetCounter("store.puts"),
        reg.GetCounter("store.deletes"),
        reg.GetCounter("store.rows_written")};
    return *c;
  }
};

}  // namespace

size_t TupleBytes(const ValueTuple& tuple) {
  size_t bytes = 0;
  for (const Value& v : tuple) {
    switch (v.index()) {
      case 0:
      case 1:
        bytes += 8;
        break;
      case 2:
        bytes += std::get<std::string>(v).size();
        break;
      case 3:
        bytes += 1;
        break;
    }
  }
  return bytes;
}

Status RecordStore::CreateColumnFamily(const std::string& name,
                                       size_t partition_width,
                                       size_t clustering_width,
                                       size_t value_width) {
  if (name.empty()) {
    return Status::InvalidArgument("column family name must be non-empty");
  }
  if (partition_width == 0) {
    return Status::InvalidArgument("partition key must have at least one "
                                   "component: " +
                                   name);
  }
  if (cfs_.count(name) > 0) {
    return Status::AlreadyExists("column family " + name + " already exists");
  }
  ColumnFamilyData cf;
  cf.partition_width = partition_width;
  cf.clustering_width = clustering_width;
  cf.value_width = value_width;
  cfs_.emplace(name, std::move(cf));
  return Status::Ok();
}

Status RecordStore::DropColumnFamily(const std::string& name) {
  auto it = cfs_.find(name);
  if (it == cfs_.end()) {
    return Status::NotFound("unknown column family " + name);
  }
  cfs_.erase(it);
  return Status::Ok();
}

StatusOr<RecordStore::ColumnFamilyData*> RecordStore::FindCf(
    const std::string& name) {
  auto it = cfs_.find(name);
  if (it == cfs_.end()) {
    return Status::NotFound("unknown column family " + name);
  }
  return &it->second;
}

StatusOr<std::vector<RecordStore::Row>> RecordStore::Get(
    const std::string& name, const ValueTuple& partition,
    const ValueTuple& clustering_prefix,
    const std::optional<RangeBound>& range) {
  NOSE_ASSIGN_OR_RETURN(ColumnFamilyData * cf, FindCf(name));
  if (partition.size() != cf->partition_width) {
    return Status::InvalidArgument("partition key arity mismatch for " + name);
  }
  if (clustering_prefix.size() > cf->clustering_width) {
    return Status::InvalidArgument("clustering prefix too long for " + name);
  }
  if (range.has_value() && clustering_prefix.size() >= cf->clustering_width) {
    return Status::InvalidArgument(
        "range scan needs a clustering component after the prefix: " + name);
  }

  ++stats_.gets;
  stats_.simulated_ms += params_.read_request;
  StoreCounters::Get().gets.Increment();

  std::vector<Row> rows;
  auto pit = cf->partitions.find(partition);
  if (pit == cf->partitions.end()) return rows;
  StoreCounters::Get().partitions_read.Increment();

  // Iterate the ordered records of this partition from the prefix onward.
  const std::map<ValueTuple, ValueTuple>& records = pit->second;
  auto it = clustering_prefix.empty() ? records.begin()
                                      : records.lower_bound(clustering_prefix);
  for (; it != records.end(); ++it) {
    const ValueTuple& key = it->first;
    // Stop when the prefix no longer matches (keys are sorted).
    bool prefix_ok = true;
    for (size_t i = 0; i < clustering_prefix.size(); ++i) {
      if (key[i] != clustering_prefix[i]) {
        prefix_ok = false;
        break;
      }
    }
    if (!prefix_ok) break;
    if (range.has_value()) {
      const Value& probe = key[clustering_prefix.size()];
      const Value& bound = range->value;
      bool keep = true;
      switch (range->op) {
        case PredicateOp::kLt:
          keep = probe < bound;
          break;
        case PredicateOp::kLe:
          keep = !(bound < probe);
          break;
        case PredicateOp::kGt:
          keep = bound < probe;
          break;
        case PredicateOp::kGe:
          keep = !(probe < bound);
          break;
        default:
          return Status::InvalidArgument("invalid range operator");
      }
      // The scanned component is not the immediate next sort key once the
      // prefix is fixed... it is: prefix fixed => next component ordered, so
      // for kLt/kLe we could stop early; for simplicity (and to charge scan
      // costs faithfully) we skip non-matching rows and keep scanning only
      // while a match is still possible.
      if (!keep) {
        if (range->op == PredicateOp::kLt || range->op == PredicateOp::kLe) {
          break;  // ordered: nothing further can match
        }
        continue;  // kGt/kGe: later rows are larger; this one just misses
      }
    }
    rows.push_back(Row{ValueTuple(key.begin(), key.end()), it->second});
  }

  stats_.rows_read += rows.size();
  size_t bytes = 0;
  for (const Row& r : rows) bytes += TupleBytes(r.clustering) + TupleBytes(r.values);
  stats_.bytes_read += bytes;
  StoreCounters::Get().rows_read.Add(rows.size());
  StoreCounters::Get().bytes_read.Add(bytes);
  stats_.simulated_ms += static_cast<double>(rows.size()) * params_.read_row +
                         static_cast<double>(bytes) * params_.read_byte;
  return rows;
}

Status RecordStore::Put(const std::string& name, const ValueTuple& partition,
                        const ValueTuple& clustering,
                        const std::vector<std::optional<Value>>& values) {
  NOSE_ASSIGN_OR_RETURN(ColumnFamilyData * cf, FindCf(name));
  if (partition.size() != cf->partition_width ||
      clustering.size() != cf->clustering_width ||
      values.size() != cf->value_width) {
    return Status::InvalidArgument("tuple arity mismatch in Put for " + name);
  }
  auto& records = cf->partitions[partition];
  auto [it, inserted] = records.try_emplace(clustering);
  if (inserted) {
    it->second.resize(values.size(), Value(static_cast<int64_t>(0)));
    ++cf->total_rows;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].has_value()) it->second[i] = *values[i];
  }
  ++stats_.puts;
  ++stats_.rows_written;
  StoreCounters::Get().puts.Increment();
  StoreCounters::Get().rows_written.Increment();
  stats_.simulated_ms +=
      params_.write_request +
      params_.write_row +
      static_cast<double>(TupleBytes(it->second)) * params_.read_byte;
  return Status::Ok();
}

Status RecordStore::Delete(const std::string& name, const ValueTuple& partition,
                           const ValueTuple& clustering) {
  NOSE_ASSIGN_OR_RETURN(ColumnFamilyData * cf, FindCf(name));
  if (partition.size() != cf->partition_width ||
      clustering.size() != cf->clustering_width) {
    return Status::InvalidArgument("tuple arity mismatch in Delete for " +
                                   name);
  }
  ++stats_.deletes;
  stats_.simulated_ms += params_.write_request + params_.write_row;
  StoreCounters::Get().deletes.Increment();
  auto pit = cf->partitions.find(partition);
  if (pit == cf->partitions.end()) return Status::Ok();
  if (pit->second.erase(clustering) > 0) {
    --cf->total_rows;
    ++stats_.rows_written;
    StoreCounters::Get().rows_written.Increment();
  }
  if (pit->second.empty()) cf->partitions.erase(pit);
  return Status::Ok();
}

StatusOr<size_t> RecordStore::RowCount(const std::string& name) const {
  auto it = cfs_.find(name);
  if (it == cfs_.end()) {
    return Status::NotFound("unknown column family " + name);
  }
  return it->second.total_rows;
}

}  // namespace nose
