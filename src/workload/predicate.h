#ifndef NOSE_WORKLOAD_PREDICATE_H_
#define NOSE_WORKLOAD_PREDICATE_H_

#include <optional>
#include <string>

#include "model/field.h"
#include "util/value.h"

namespace nose {

/// Comparison operator in a WHERE clause.
enum class PredicateOp { kEq, kLt, kLe, kGt, kGe, kNe };

const char* PredicateOpName(PredicateOp op);

/// True for operators that can be served by a clustering-key range scan.
inline bool IsRangeOp(PredicateOp op) {
  return op == PredicateOp::kLt || op == PredicateOp::kLe ||
         op == PredicateOp::kGt || op == PredicateOp::kGe;
}

/// A single comparison `field op (?param | literal)` in a statement.
struct Predicate {
  FieldRef field;
  PredicateOp op = PredicateOp::kEq;
  /// Present when the right-hand side is a literal; otherwise the statement
  /// is parameterized and `param` names the placeholder.
  std::optional<Value> literal;
  std::string param;

  bool IsEquality() const { return op == PredicateOp::kEq; }
  bool IsRange() const { return IsRangeOp(op); }

  std::string ToString() const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.field == b.field && a.op == b.op && a.literal == b.literal &&
           a.param == b.param;
  }
};

/// A result-ordering directive (ORDER BY item). Only ascending order is
/// modeled; extensible record stores cluster ascending and the cost model
/// is direction-agnostic.
struct OrderField {
  FieldRef field;

  friend bool operator==(const OrderField& a, const OrderField& b) {
    return a.field == b.field;
  }
};

}  // namespace nose

#endif  // NOSE_WORKLOAD_PREDICATE_H_
