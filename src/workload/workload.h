#ifndef NOSE_WORKLOAD_WORKLOAD_H_
#define NOSE_WORKLOAD_WORKLOAD_H_

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "workload/query.h"
#include "workload/update.h"

namespace nose {

/// A named statement plus its relative execution frequency, possibly under
/// several named workload mixes (paper §VII: bidding vs. browsing vs.
/// write-scaled mixes reuse the same statements with different weights).
struct WorkloadEntry {
  std::string name;
  std::variant<Query, Update> statement;
  /// Weight per mix; a missing mix means weight 0 under that mix.
  std::map<std::string, double> weights;
  /// 1-based line of the statement directive in the workload source; 0 when
  /// built programmatically (used by `nose lint` diagnostics).
  int def_line = 0;

  bool IsQuery() const { return std::holds_alternative<Query>(statement); }
  const Query& query() const { return std::get<Query>(statement); }
  const Update& update() const { return std::get<Update>(statement); }
  double WeightIn(const std::string& mix) const {
    auto it = weights.find(mix);
    return it == weights.end() ? 0.0 : it->second;
  }
};

/// The application workload: weighted queries and updates over one entity
/// graph. Thin container; the advisor consumes it read-only.
class Workload {
 public:
  static constexpr const char* kDefaultMix = "default";

  explicit Workload(const EntityGraph* graph) : graph_(graph) {}

  const EntityGraph* graph() const { return graph_; }

  /// Adds a statement with a weight in the default mix.
  Status AddQuery(std::string name, Query query, double weight = 1.0);
  Status AddUpdate(std::string name, Update update, double weight = 1.0);

  /// Adds/overrides the weight of statement `name` in `mix`.
  Status SetWeight(const std::string& name, const std::string& mix,
                   double weight);

  /// Records the source line of statement `name` (parser bookkeeping for
  /// lint diagnostics).
  Status SetDefLine(const std::string& name, int line);

  const std::vector<WorkloadEntry>& entries() const { return entries_; }
  const WorkloadEntry* FindEntry(const std::string& name) const;

  /// Entries with nonzero weight under `mix`, paired with those weights,
  /// queries first (stable order). Weights are normalized to sum to 1.
  std::vector<std::pair<const WorkloadEntry*, double>> EntriesIn(
      const std::string& mix) const;

  /// Names of all mixes mentioned by any entry.
  std::vector<std::string> MixNames() const;

 private:
  const EntityGraph* graph_;
  std::vector<WorkloadEntry> entries_;
};

}  // namespace nose

#endif  // NOSE_WORKLOAD_WORKLOAD_H_
