#ifndef NOSE_WORKLOAD_QUERY_H_
#define NOSE_WORKLOAD_QUERY_H_

#include <string>
#include <vector>

#include "model/entity_graph.h"
#include "model/key_path.h"
#include "workload/predicate.h"

namespace nose {

/// A conceptual-model query (paper Fig. 3): selects attributes of entities
/// along a path, filtered by predicates on attributes anywhere along the
/// path, optionally ordered.
///
/// Convention: the path starts at the FROM entity (index 0) and extends to
/// the "far" end where execution of query plans begins (plans run from the
/// last path entity back toward index 0, mirroring Fig. 5's decomposition).
class Query {
 public:
  Query() = default;
  Query(KeyPath path, std::vector<FieldRef> select,
        std::vector<Predicate> predicates, std::vector<OrderField> order_by);

  /// Validates that all referenced fields exist and lie on the path, and
  /// that at least one equality predicate exists (required to anchor the
  /// first get request; see paper §IV-A2).
  Status Validate() const;

  const KeyPath& path() const { return path_; }
  const EntityGraph* graph() const { return path_.graph(); }
  const std::vector<FieldRef>& select() const { return select_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<OrderField>& order_by() const { return order_by_; }

  /// Predicates whose field belongs to the path entity at `index`.
  std::vector<Predicate> PredicatesOn(size_t index) const;
  /// Equality predicates on path suffix [index, end).
  std::vector<Predicate> EqPredicatesFrom(size_t index) const;
  /// All predicates on path suffix [index, end).
  std::vector<Predicate> PredicatesFrom(size_t index) const;

  std::string ToString() const;

 private:
  KeyPath path_;
  std::vector<FieldRef> select_;
  std::vector<Predicate> predicates_;
  std::vector<OrderField> order_by_;
};

}  // namespace nose

#endif  // NOSE_WORKLOAD_QUERY_H_
