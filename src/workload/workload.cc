#include "workload/workload.h"

#include <algorithm>
#include <set>

namespace nose {

Status Workload::AddQuery(std::string name, Query query, double weight) {
  if (FindEntry(name) != nullptr) {
    return Status::AlreadyExists("duplicate statement name " + name);
  }
  NOSE_RETURN_IF_ERROR(query.Validate());
  WorkloadEntry entry;
  entry.name = std::move(name);
  entry.statement = std::move(query);
  entry.weights[kDefaultMix] = weight;
  entries_.push_back(std::move(entry));
  return Status::Ok();
}

Status Workload::AddUpdate(std::string name, Update update, double weight) {
  if (FindEntry(name) != nullptr) {
    return Status::AlreadyExists("duplicate statement name " + name);
  }
  WorkloadEntry entry;
  entry.name = std::move(name);
  entry.statement = std::move(update);
  entry.weights[kDefaultMix] = weight;
  entries_.push_back(std::move(entry));
  return Status::Ok();
}

Status Workload::SetWeight(const std::string& name, const std::string& mix,
                           double weight) {
  for (WorkloadEntry& entry : entries_) {
    if (entry.name == name) {
      entry.weights[mix] = weight;
      return Status::Ok();
    }
  }
  return Status::NotFound("no statement named " + name);
}

Status Workload::SetDefLine(const std::string& name, int line) {
  for (WorkloadEntry& entry : entries_) {
    if (entry.name == name) {
      entry.def_line = line;
      return Status::Ok();
    }
  }
  return Status::NotFound("no statement named " + name);
}

const WorkloadEntry* Workload::FindEntry(const std::string& name) const {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const WorkloadEntry& e) { return e.name == name; });
  return it == entries_.end() ? nullptr : &*it;
}

std::vector<std::pair<const WorkloadEntry*, double>> Workload::EntriesIn(
    const std::string& mix) const {
  std::vector<std::pair<const WorkloadEntry*, double>> out;
  double total = 0.0;
  for (const WorkloadEntry& entry : entries_) {
    const double w = entry.WeightIn(mix);
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return out;
  // Queries first, then updates, preserving insertion order within groups.
  for (int want_query = 1; want_query >= 0; --want_query) {
    for (const WorkloadEntry& entry : entries_) {
      const double w = entry.WeightIn(mix);
      if (w > 0.0 && entry.IsQuery() == (want_query == 1)) {
        out.emplace_back(&entry, w / total);
      }
    }
  }
  return out;
}

std::vector<std::string> Workload::MixNames() const {
  std::set<std::string> names;
  for (const WorkloadEntry& entry : entries_) {
    for (const auto& [mix, weight] : entry.weights) {
      if (weight > 0.0) names.insert(mix);
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace nose
