#ifndef NOSE_WORKLOAD_UPDATE_H_
#define NOSE_WORKLOAD_UPDATE_H_

#include <optional>
#include <string>
#include <vector>

#include "model/entity_graph.h"
#include "model/key_path.h"
#include "workload/predicate.h"

namespace nose {

/// Kind of write statement (paper Fig. 8).
enum class UpdateKind { kInsert, kUpdate, kDelete, kConnect, kDisconnect };

const char* UpdateKindName(UpdateKind kind);

/// Assignment `field = (?param | literal)` in an INSERT/UPDATE SET list.
/// The field always belongs to the statement's target entity.
struct SetClause {
  std::string field;
  std::optional<Value> literal;
  std::string param;

  std::string ToString() const;
};

/// `AND CONNECT TO step(?param)` attached to an INSERT: relates the new
/// entity to an existing one through the named relationship step.
struct ConnectClause {
  std::string step_name;
  std::string param;
};

/// A write statement over the conceptual model. The target entity — the one
/// being inserted/modified/deleted or connected — is always path entity 0.
/// UPDATE and DELETE take predicates over entities along the path
/// (paper: "specify the entities to modify using the same predicates
/// available for queries").
class Update {
 public:
  Update() = default;

  /// INSERT INTO entity SET f = ?, ... [AND CONNECT TO step(?), ...].
  /// The primary key of the new entity must be among the SET fields
  /// (paper §VI-A: "the primary key of each entity is provided").
  static StatusOr<Update> MakeInsert(const EntityGraph* graph,
                                     const std::string& entity,
                                     std::vector<SetClause> sets,
                                     std::vector<ConnectClause> connects);

  /// UPDATE e FROM path SET ... WHERE ...; `path` starts at the target.
  static StatusOr<Update> MakeUpdate(KeyPath path, std::vector<SetClause> sets,
                                     std::vector<Predicate> predicates);

  /// DELETE FROM path WHERE ...; `path` starts at the target.
  static StatusOr<Update> MakeDelete(KeyPath path,
                                     std::vector<Predicate> predicates);

  /// CONNECT entity(?from) TO step(?to) / DISCONNECT ... FROM ...
  static StatusOr<Update> MakeConnect(const EntityGraph* graph,
                                      const std::string& entity,
                                      const std::string& from_param,
                                      const std::string& step_name,
                                      const std::string& to_param,
                                      bool disconnect);

  UpdateKind kind() const { return kind_; }
  const KeyPath& path() const { return path_; }
  const EntityGraph* graph() const { return path_.graph(); }
  /// The entity being written.
  const std::string& entity() const { return path_.EntityAt(0); }
  const std::vector<SetClause>& sets() const { return sets_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<ConnectClause>& connects() const { return connects_; }
  /// For kConnect/kDisconnect: parameters holding the two entity IDs.
  const std::string& from_param() const { return from_param_; }
  const std::string& to_param() const { return to_param_; }

  /// Fields of the target entity whose stored value this statement changes.
  /// (UPDATE: the SET fields; INSERT: all fields of the entity; DELETE:
  /// all fields of the entity; CONNECT/DISCONNECT: none.)
  std::vector<FieldRef> ModifiedFields() const;

  std::string ToString() const;

 private:
  UpdateKind kind_ = UpdateKind::kUpdate;
  KeyPath path_;
  std::vector<SetClause> sets_;
  std::vector<Predicate> predicates_;
  std::vector<ConnectClause> connects_;
  std::string from_param_;
  std::string to_param_;
};

}  // namespace nose

#endif  // NOSE_WORKLOAD_UPDATE_H_
