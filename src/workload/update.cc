#include "workload/update.h"

#include <algorithm>

#include "util/strings.h"

namespace nose {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "INSERT";
    case UpdateKind::kUpdate:
      return "UPDATE";
    case UpdateKind::kDelete:
      return "DELETE";
    case UpdateKind::kConnect:
      return "CONNECT";
    case UpdateKind::kDisconnect:
      return "DISCONNECT";
  }
  return "?";
}

std::string SetClause::ToString() const {
  std::string rhs = literal.has_value() ? ValueToString(*literal) : "?" + param;
  return field + " = " + rhs;
}

namespace {

Status ValidateSets(const EntityGraph* graph, const std::string& entity,
                    const std::vector<SetClause>& sets) {
  for (const SetClause& set : sets) {
    auto field = graph->ResolveField(FieldRef{entity, set.field});
    if (!field.ok()) return field.status();
  }
  return Status::Ok();
}

Status ValidatePredicates(const KeyPath& path,
                          const std::vector<Predicate>& predicates) {
  const EntityGraph* graph = path.graph();
  for (const Predicate& p : predicates) {
    auto field = graph->ResolveField(p.field);
    if (!field.ok()) return field.status();
    if (!path.ContainsEntity(p.field.entity)) {
      return Status::InvalidArgument("predicate field " +
                                     p.field.QualifiedName() +
                                     " is not on path " + path.ToString());
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Update> Update::MakeInsert(const EntityGraph* graph,
                                    const std::string& entity,
                                    std::vector<SetClause> sets,
                                    std::vector<ConnectClause> connects) {
  const Entity* e = graph->FindEntity(entity);
  if (e == nullptr) return Status::NotFound("unknown entity " + entity);
  NOSE_RETURN_IF_ERROR(ValidateSets(graph, entity, sets));
  const bool has_id =
      std::any_of(sets.begin(), sets.end(), [&](const SetClause& s) {
        return s.field == e->id_field().name;
      });
  if (!has_id) {
    return Status::InvalidArgument(
        "INSERT INTO " + entity +
        " must provide the primary key field " + e->id_field().name);
  }
  for (const ConnectClause& c : connects) {
    if (!graph->FindStep(entity, c.step_name).has_value()) {
      return Status::NotFound("INSERT ... CONNECT TO unknown step " +
                              c.step_name + " from " + entity);
    }
  }
  Update u;
  u.kind_ = UpdateKind::kInsert;
  NOSE_ASSIGN_OR_RETURN(u.path_, graph->SingleEntityPath(entity));
  u.sets_ = std::move(sets);
  u.connects_ = std::move(connects);
  return u;
}

StatusOr<Update> Update::MakeUpdate(KeyPath path, std::vector<SetClause> sets,
                                    std::vector<Predicate> predicates) {
  if (path.graph() == nullptr) {
    return Status::InvalidArgument("UPDATE path has no graph");
  }
  NOSE_RETURN_IF_ERROR(ValidateSets(path.graph(), path.EntityAt(0), sets));
  NOSE_RETURN_IF_ERROR(ValidatePredicates(path, predicates));
  if (sets.empty()) {
    return Status::InvalidArgument("UPDATE must set at least one field");
  }
  Update u;
  u.kind_ = UpdateKind::kUpdate;
  u.path_ = std::move(path);
  u.sets_ = std::move(sets);
  u.predicates_ = std::move(predicates);
  return u;
}

StatusOr<Update> Update::MakeDelete(KeyPath path,
                                    std::vector<Predicate> predicates) {
  if (path.graph() == nullptr) {
    return Status::InvalidArgument("DELETE path has no graph");
  }
  NOSE_RETURN_IF_ERROR(ValidatePredicates(path, predicates));
  Update u;
  u.kind_ = UpdateKind::kDelete;
  u.path_ = std::move(path);
  u.predicates_ = std::move(predicates);
  return u;
}

StatusOr<Update> Update::MakeConnect(const EntityGraph* graph,
                                     const std::string& entity,
                                     const std::string& from_param,
                                     const std::string& step_name,
                                     const std::string& to_param,
                                     bool disconnect) {
  if (graph->FindEntity(entity) == nullptr) {
    return Status::NotFound("unknown entity " + entity);
  }
  std::optional<PathStep> step = graph->FindStep(entity, step_name);
  if (!step.has_value()) {
    return Status::NotFound("no step named " + step_name + " leaving " +
                            entity);
  }
  Update u;
  u.kind_ = disconnect ? UpdateKind::kDisconnect : UpdateKind::kConnect;
  NOSE_ASSIGN_OR_RETURN(u.path_, graph->ResolvePath(entity, {step_name}));
  u.from_param_ = from_param;
  u.to_param_ = to_param;
  return u;
}

std::vector<FieldRef> Update::ModifiedFields() const {
  std::vector<FieldRef> out;
  const std::string& target = entity();
  switch (kind_) {
    case UpdateKind::kUpdate:
      for (const SetClause& s : sets_) out.push_back(FieldRef{target, s.field});
      break;
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      for (const Field& f : graph()->GetEntity(target).fields()) {
        out.push_back(FieldRef{target, f.name});
      }
      break;
    case UpdateKind::kConnect:
    case UpdateKind::kDisconnect:
      break;
  }
  return out;
}

std::string Update::ToString() const {
  std::string out = UpdateKindName(kind_);
  switch (kind_) {
    case UpdateKind::kInsert: {
      out += " INTO " + entity() + " SET ";
      std::vector<std::string> parts;
      for (const SetClause& s : sets_) parts.push_back(s.ToString());
      out += StrJoin(parts, ", ");
      for (const ConnectClause& c : connects_) {
        out += " AND CONNECT TO " + c.step_name + "(?" + c.param + ")";
      }
      break;
    }
    case UpdateKind::kUpdate: {
      out += " " + entity() + " FROM " + path_.ToString() + " SET ";
      std::vector<std::string> parts;
      for (const SetClause& s : sets_) parts.push_back(s.ToString());
      out += StrJoin(parts, ", ");
      break;
    }
    case UpdateKind::kDelete:
      out += " FROM " + path_.ToString();
      break;
    case UpdateKind::kConnect:
    case UpdateKind::kDisconnect: {
      const std::string join =
          kind_ == UpdateKind::kConnect ? " TO " : " FROM ";
      out += " " + entity() + "(?" + from_param_ + ")" + join +
             graph()->StepName(path_.steps()[0]) + "(?" + to_param_ + ")";
      return out;
    }
  }
  if (!predicates_.empty()) {
    std::vector<std::string> preds;
    for (const Predicate& p : predicates_) preds.push_back(p.ToString());
    out += " WHERE " + StrJoin(preds, " AND ");
  }
  return out;
}

}  // namespace nose
