#include "workload/query.h"

#include <algorithm>

#include "util/strings.h"

namespace nose {

const char* PredicateOpName(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq:
      return "=";
    case PredicateOp::kLt:
      return "<";
    case PredicateOp::kLe:
      return "<=";
    case PredicateOp::kGt:
      return ">";
    case PredicateOp::kGe:
      return ">=";
    case PredicateOp::kNe:
      return "!=";
  }
  return "?";
}

std::string Predicate::ToString() const {
  std::string rhs = literal.has_value() ? ValueToString(*literal) : "?" + param;
  return field.QualifiedName() + " " + PredicateOpName(op) + " " + rhs;
}

Query::Query(KeyPath path, std::vector<FieldRef> select,
             std::vector<Predicate> predicates,
             std::vector<OrderField> order_by)
    : path_(std::move(path)),
      select_(std::move(select)),
      predicates_(std::move(predicates)),
      order_by_(std::move(order_by)) {}

Status Query::Validate() const {
  const EntityGraph* graph = path_.graph();
  if (graph == nullptr) {
    return Status::FailedPrecondition("query has no path/graph");
  }
  if (select_.empty()) {
    return Status::InvalidArgument("query selects no fields");
  }
  auto check_on_path = [&](const FieldRef& ref) -> Status {
    auto field = graph->ResolveField(ref);
    if (!field.ok()) return field.status();
    if (!path_.ContainsEntity(ref.entity)) {
      return Status::InvalidArgument("field " + ref.QualifiedName() +
                                     " is not on the query path " +
                                     path_.ToString());
    }
    return Status::Ok();
  };
  for (const FieldRef& ref : select_) NOSE_RETURN_IF_ERROR(check_on_path(ref));
  for (const Predicate& p : predicates_) {
    NOSE_RETURN_IF_ERROR(check_on_path(p.field));
  }
  for (const OrderField& o : order_by_) {
    NOSE_RETURN_IF_ERROR(check_on_path(o.field));
  }
  const bool has_equality =
      std::any_of(predicates_.begin(), predicates_.end(),
                  [](const Predicate& p) { return p.IsEquality(); });
  if (!has_equality) {
    return Status::InvalidArgument(
        "query needs at least one equality predicate to anchor a get "
        "request: " +
        ToString());
  }
  return Status::Ok();
}

std::vector<Predicate> Query::PredicatesOn(size_t index) const {
  std::vector<Predicate> out;
  const std::string& entity = path_.EntityAt(index);
  for (const Predicate& p : predicates_) {
    if (p.field.entity == entity) out.push_back(p);
  }
  return out;
}

std::vector<Predicate> Query::EqPredicatesFrom(size_t index) const {
  std::vector<Predicate> out;
  for (const Predicate& p : PredicatesFrom(index)) {
    if (p.IsEquality()) out.push_back(p);
  }
  return out;
}

std::vector<Predicate> Query::PredicatesFrom(size_t index) const {
  std::vector<Predicate> out;
  for (const Predicate& p : predicates_) {
    const int pos = path_.IndexOfEntity(p.field.entity);
    if (pos >= 0 && static_cast<size_t>(pos) >= index) out.push_back(p);
  }
  return out;
}

std::string Query::ToString() const {
  std::vector<std::string> sel;
  sel.reserve(select_.size());
  for (const FieldRef& ref : select_) sel.push_back(ref.QualifiedName());
  std::string out = "SELECT " + StrJoin(sel, ", ");
  out += " FROM " + path_.ToString();
  if (!predicates_.empty()) {
    std::vector<std::string> preds;
    preds.reserve(predicates_.size());
    for (const Predicate& p : predicates_) preds.push_back(p.ToString());
    out += " WHERE " + StrJoin(preds, " AND ");
  }
  if (!order_by_.empty()) {
    std::vector<std::string> ord;
    ord.reserve(order_by_.size());
    for (const OrderField& o : order_by_) ord.push_back(o.field.QualifiedName());
    out += " ORDER BY " + StrJoin(ord, ", ");
  }
  return out;
}

}  // namespace nose
