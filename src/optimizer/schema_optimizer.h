#ifndef NOSE_OPTIMIZER_SCHEMA_OPTIMIZER_H_
#define NOSE_OPTIMIZER_SCHEMA_OPTIMIZER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "enumerator/enumerator.h"
#include "planner/plan_space.h"
#include "planner/update_planner.h"
#include "schema/schema.h"
#include "solver/bip.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "workload/workload.h"

namespace nose {

/// How the candidate-selection problem is solved.
enum class SolveStrategy {
  /// Binary integer program via the LP-based branch-and-bound solver —
  /// the paper's formulation (Figs. 7/10), exact, best for small/medium
  /// instances and required when a space constraint is set.
  kBip,
  /// Structure-exploiting branch and bound with dynamic-programming
  /// bounds over the plan-space DAGs. Equivalent objective, much faster on
  /// large instances; no space-constraint support.
  kCombinatorial,
  /// kBip below `auto_bip_threshold` candidates (or when a space limit is
  /// set), kCombinatorial above.
  kAuto,
};

/// Snapshot of the assembled BIP, filled when
/// OptimizerOptions::capture_bip is set. Benchmarks (solver_micro --json)
/// use it to extract real advisor instances and replay them against both
/// simplex engines.
struct BipCapture {
  LpProblem lp;
  std::vector<int> binary_vars;
  bool captured = false;
};

struct OptimizerOptions {
  /// Optional storage budget in bytes (paper: "an optional space
  /// constraint").
  std::optional<double> space_limit_bytes;
  /// Run the second solve that, among all minimum-cost schemas, picks the
  /// one with the fewest column families (paper §V).
  bool minimize_schema_size = true;
  SolveStrategy strategy = SolveStrategy::kAuto;
  size_t auto_bip_threshold = 120;
  BipOptions bip;
  /// Total wall-clock budget for Optimize() in seconds; 0 disables. The
  /// budget is distributed implicitly: plan-space construction and BIP
  /// assembly run to completion (they are what makes ANY incumbent
  /// possible), and the solve stage receives whatever they left, floored
  /// at a few milliseconds so the warm-started search always returns an
  /// incumbent. Tightens bip.time_limit_seconds when both are set; a
  /// deadline generous enough that no limit fires leaves the result
  /// byte-identical to an unbudgeted run.
  double deadline_seconds = 0.0;
  /// When non-null and the BIP strategy runs, receives a copy of the
  /// assembled problem before solving.
  BipCapture* capture_bip = nullptr;
  /// When non-null and the BIP strategy runs, receives a machine-checkable
  /// certificate of the FIRST (cost-minimizing) solve — see
  /// solver/certificate.h. The certified solution is re-derived as an
  /// exactly-integral point (binaries snapped, support indicators implied,
  /// flows re-routed along best paths over the selected candidates), so the
  /// exact-arithmetic checker verifies it with zero tolerance on
  /// integer-coefficient rows. Not filled by the combinatorial strategy.
  SolveCertificate* capture_certificate = nullptr;
};

/// Mix-independent artifacts reused across Optimize() calls on the SAME
/// (workload, candidate pool, cost model): a plan space depends only on the
/// statement, the candidates, and the cost model — mix weights enter later,
/// as BIP variable costs. Advisor::AdviseAllMixes keeps one cache per group
/// of mixes sharing a statement set, so Fig. 12-style re-advising pays for
/// planning once per group instead of once per mix.
struct PlanSpaceCache {
  /// Workload-query plan spaces keyed by statement name.
  std::map<std::string, PlanSpace> query_spaces;

  struct SupportSpace {
    std::shared_ptr<const Query> query;  ///< owns the synthesized query
    PlanSpace space;  ///< empty states() marks an unanswerable support query
  };
  /// Keyed by update statement name + '\n' + support-query text.
  std::map<std::string, SupportSpace> support_spaces;

  struct UpdateSupport {
    size_t cf_index;
    double write_cost;
    std::vector<std::string> support_texts;
  };
  /// Per update statement name: the candidates it modifies, priced, with
  /// the texts of their support queries.
  std::map<std::string, std::vector<UpdateSupport>> update_supports;

  /// The previous mix's optimal BIP solution. Mixes sharing a cache build
  /// BIPs with identical variables and rows (only objective weights
  /// differ), so this point stays feasible and seeds branch-and-bound
  /// with a tight incumbent when it beats the greedy warm start.
  std::vector<double> last_bip_solution;
  /// Structural fingerprint of the BIP that produced last_bip_solution /
  /// last_root_basis. A solve whose assembled BIP does not match discards
  /// both instead of applying them to a mismatched variable space (the
  /// workload or pool changed under the cache).
  int last_bip_variables = -1;
  int last_bip_rows = -1;
  size_t last_bip_nonzeros = 0;
  /// The previous mix's optimal root-LP basis: with identical rows the old
  /// optimum stays primal feasible under new costs, so the next root solve
  /// skips phase 1 entirely (the ROADMAP "hot-start the root LP" item).
  LpBasis last_root_basis;
};

/// Phase timing for the Fig. 13 runtime breakdown.
struct OptimizerTiming {
  double cost_calculation_seconds = 0.0;  ///< plan-space construction
  double bip_construction_seconds = 0.0;
  double bip_solve_seconds = 0.0;
  double other_seconds = 0.0;
};

struct OptimizationResult {
  Schema schema;
  /// One entry per weighted query, aligned with the queries of
  /// Workload::EntriesIn(mix): (statement name, recommended plan).
  std::vector<std::pair<std::string, QueryPlan>> query_plans;
  std::vector<std::pair<std::string, UpdatePlan>> update_plans;
  /// Optimal weighted workload cost (the BIP objective).
  double objective = 0.0;
  /// True when the solver proved optimality (within its gap); false when a
  /// node/time budget stopped it with the best incumbent found.
  bool solve_proven = false;
  /// Global lower bound on the optimum at solver termination (equals
  /// `objective` when solve_proven).
  double best_bound = 0.0;
  /// Relative optimality gap of the returned schema, in [0, 1]:
  /// (objective - best_bound) / max(|objective|, eps), clamped; 0 when
  /// proven, 1 when the deadline left no useful bound. The anytime-advising
  /// quality signal surfaced as Recommendation::anytime_gap.
  double anytime_gap = 0.0;

  OptimizerTiming timing;
  int bip_variables = 0;
  int bip_constraints = 0;
  int bb_nodes = 0;
};

/// Selects the cost-minimal subset of candidate column families that covers
/// the workload, by solving the paper's binary integer program: per-edge
/// decision variables constrained to form one plan per query (path
/// constraints), linking variables per candidate, update maintenance costs
/// conditioned on candidate selection, and an optional storage constraint.
class SchemaOptimizer {
 public:
  SchemaOptimizer(const CostModel* cost_model,
                  const CardinalityEstimator* estimator,
                  OptimizerOptions options = OptimizerOptions())
      : cost_(cost_model), est_(estimator), options_(options) {}

  /// `pool` must outlive the result (recommended plans point into it).
  /// When `threads` is non-null the independent per-statement stages —
  /// plan-space construction, support costing, BIP row assembly, and (for
  /// the combinatorial strategy) branch-and-bound node evaluation — run on
  /// it; results are merged in deterministic statement/candidate order, so
  /// the recommendation is identical at every thread count.
  /// When `cache` is non-null, plan spaces and priced supports are read
  /// from / written into it; the caller must pass the same workload, pool,
  /// and cost model for every call sharing a cache.
  StatusOr<OptimizationResult> Optimize(const Workload& workload,
                                        const std::string& mix,
                                        const CandidatePool& pool,
                                        util::ThreadPool* threads = nullptr,
                                        PlanSpaceCache* cache = nullptr) const;

 private:
  const CostModel* cost_;
  const CardinalityEstimator* est_;
  OptimizerOptions options_;
};

}  // namespace nose

#endif  // NOSE_OPTIMIZER_SCHEMA_OPTIMIZER_H_
