#include "optimizer/horizon.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/formulation.h"
#include "solver/bip.h"

namespace nose {

double BuildCostMs(const ColumnFamily& cf, const CostModel& cost) {
  const double rows = cf.EntryCount();
  const double bytes = cf.SizeBytes();
  const double bytes_per_row = rows > 0.0 ? bytes / rows : 0.0;
  return cost.PutCost(rows, rows, bytes_per_row);
}

double DropCostMs(const CostModel& cost) {
  return cost.params().write_request;
}

double DualWriteCostMs(const ColumnFamily& cf, const CostModel& cost,
                       const MigrationTraffic& traffic) {
  if (traffic.update_weight_share <= 0.0) return 0.0;
  const double rows = cf.EntryCount();
  if (rows <= 0.0) return 0.0;
  const double chunk = std::max(1.0, traffic.chunk_rows);
  const double chunks = std::ceil(rows / chunk);
  const double bytes_per_row = cf.SizeBytes() / rows;
  return traffic.update_weight_share * chunks *
         cost.PutCost(1.0, 1.0, bytes_per_row);
}

double UpdateWeightShare(const Workload& workload, const std::string& mix) {
  double total = 0.0;
  double updates = 0.0;
  for (const auto& [entry, weight] : workload.EntriesIn(mix)) {
    total += weight;
    if (!entry->IsQuery()) updates += weight;
  }
  return total > 0.0 ? updates / total : 0.0;
}

namespace {

/// A maximal run of adjacent windows with the same mix, solved as one
/// period. Exact: builds are subadditive along a schema path, so an
/// optimal plan never migrates between identically-weighted windows.
struct WindowGroup {
  std::string mix;
  double duration = 0.0;
  std::vector<size_t> window_indices;  // into WorkloadHorizon::windows
};

/// Marks the candidates on `space`'s best path over `chosen` in `used`.
void MarkBestPath(const PlanSpace& space, const std::vector<bool>& chosen,
                  std::vector<bool>* used) {
  auto path = space.BestPath(chosen);
  if (!path.ok()) return;
  for (const auto& [state, edge] : *path) {
    (*used)[space.states()[state].edges[edge].cf_index] = true;
  }
}

}  // namespace

StatusOr<HorizonResult> HorizonOptimizer::Optimize(
    const Workload& workload, const WorkloadHorizon& horizon,
    const CandidatePool& pool, util::ThreadPool* threads,
    PlanSpaceCache* cache) const {
  obs::Span horizon_span("optimizer.horizon", "optimizer");
  if (horizon.empty()) {
    return Status::InvalidArgument("horizon has no windows");
  }
  if (pool.empty()) {
    return Status::InvalidArgument("candidate pool is empty");
  }
  const std::vector<ColumnFamily>& candidates = pool.candidates();
  const size_t num_cands = candidates.size();

  std::vector<WindowGroup> groups;
  for (size_t w = 0; w < horizon.size(); ++w) {
    const HorizonWindow& win = horizon.windows[w];
    if (!(win.duration > 0.0)) {
      return Status::InvalidArgument("window " + std::to_string(w) +
                                     " has non-positive duration");
    }
    if (!groups.empty() && groups.back().mix == win.mix) {
      groups.back().duration += win.duration;
      groups.back().window_indices.push_back(w);
    } else {
      WindowGroup group;
      group.mix = win.mix;
      group.duration = win.duration;
      group.window_indices.push_back(w);
      groups.push_back(std::move(group));
    }
  }

  // The per-window solves must not fill the caller's capture hooks — those
  // describe the joint instance (or, on the collapsed path, the one real
  // single-window solve below).
  OptimizerOptions window_options = options_.optimizer;
  window_options.capture_bip = nullptr;
  window_options.capture_certificate = nullptr;
  SchemaOptimizer window_optimizer(cost_, est_, window_options);

  HorizonResult result;

  // ==== Collapsed horizon: one mix throughout, no prior schema. ====
  // The joint problem degenerates to W copies of the single-window BIP
  // coupled by transition variables that any optimum leaves at zero, so
  // run the single-window pipeline ONCE and replicate — byte-identical to
  // SchemaOptimizer::Optimize by construction, with zero migrations.
  if (groups.size() == 1 && options_.initial_schema == nullptr) {
    OptimizerOptions collapse_options = options_.optimizer;
    collapse_options.capture_certificate = nullptr;
    collapse_options.capture_bip = options_.capture_bip;
    SchemaOptimizer collapse_optimizer(cost_, est_, collapse_options);
    NOSE_ASSIGN_OR_RETURN(
        OptimizationResult opt,
        collapse_optimizer.Optimize(workload, groups[0].mix, pool, threads,
                                    cache));
    result.collapsed = true;
    result.solve_proven = opt.solve_proven;
    result.bip_variables = opt.bip_variables;
    result.bip_constraints = opt.bip_constraints;
    result.bb_nodes = opt.bb_nodes;
    for (const HorizonWindow& win : horizon.windows) {
      result.execution_objective += win.duration * opt.objective;
    }
    result.total_objective = result.execution_objective;
    result.windows.assign(horizon.size(), opt);
    return result;
  }

  // ==== Per-group myopic pre-solves. ====
  // Each group's single-window optimum seeds the stitched warm start, and
  // solving them through the SHARED cache means plan spaces are built once
  // for the whole horizon and each solve hot-starts from the previous
  // root basis whenever the BIP structures match.
  std::vector<std::vector<bool>> myopic(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    NOSE_ASSIGN_OR_RETURN(
        OptimizationResult opt,
        window_optimizer.Optimize(workload, groups[g].mix, pool, threads,
                                  cache));
    myopic[g].assign(num_cands, false);
    for (size_t i = 0; i < opt.schema.size(); ++i) {
      const CfId id = opt.schema.PoolIdAt(i);
      if (id != kInvalidCfId) myopic[g][id] = true;
    }
  }

  // ==== Joint multi-period BIP. ====
  // Per-group formulations over the one shared pool; the cache is hot now,
  // so this is assembly, not planning.
  std::vector<WindowFormulation> forms;
  forms.reserve(groups.size());
  for (const WindowGroup& group : groups) {
    NOSE_ASSIGN_OR_RETURN(
        WindowFormulation form,
        BuildWindowFormulation(workload, group.mix, pool, cost_, est_, threads,
                               cache));
    forms.push_back(std::move(form));
  }

  std::vector<double> build_cost(num_cands);
  for (size_t c = 0; c < num_cands; ++c) {
    build_cost[c] = BuildCostMs(candidates[c], *cost_);
  }
  const double drop_cost = DropCostMs(*cost_);
  // Dual-write overhead depends on the mix active WHILE the migration
  // runs — the window being entered — so it is priced per (group,
  // candidate): dw_cost[g][c] is the extra foreground puts expected while
  // backfilling c at the start of group g.
  std::vector<std::vector<double>> dw_cost(groups.size(),
                                           std::vector<double>(num_cands));
  for (size_t g = 0; g < groups.size(); ++g) {
    MigrationTraffic traffic;
    traffic.update_weight_share = UpdateWeightShare(workload, groups[g].mix);
    traffic.chunk_rows = options_.backfill_chunk_rows;
    for (size_t c = 0; c < num_cands; ++c) {
      dw_cost[g][c] = DualWriteCostMs(candidates[c], *cost_, traffic);
    }
  }
  std::vector<char> initially_present(num_cands, 0);
  if (options_.initial_schema != nullptr) {
    for (size_t c = 0; c < num_cands; ++c) {
      initially_present[c] =
          options_.initial_schema->FindByKey(candidates[c].key()) != nullptr;
    }
  }

  LpProblem lp;
  // Group-major variable blocks: δ_{g,·}, then group g's edge/indicator
  // variables (window costs scaled by the group's duration). Transition
  // blocks follow all groups.
  std::vector<std::vector<int>> delta_vars(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    WindowFormulation& form = forms[g];
    const double scale = groups[g].duration;
    delta_vars[g].resize(num_cands);
    for (size_t c = 0; c < num_cands; ++c) {
      double dcost = scale * form.delta_cost[c];
      // Builds out of — and drops of — the prior schema are folded into
      // window 0's δ costs instead of a transition block: there is no
      // δ_{-1} variable. The drop charge enters as a keep DISCOUNT
      // (−δ·w·drop ≡ (1−δ)·w·drop minus a constant, and constants never
      // move the argmin).
      if (g == 0 && options_.initial_schema != nullptr) {
        if (!initially_present[c]) {
          dcost +=
              options_.migration_cost_weight * (build_cost[c] + dw_cost[0][c]);
        } else {
          dcost -= options_.migration_cost_weight * drop_cost;
        }
      }
      delta_vars[g][c] =
          lp.AddVariable(0.0, form.allowed[c] ? 1.0 : 0.0, dcost);
    }
    AssignWindowVariables(&form, &lp, scale);
  }
  // Transition variables t_{g,c} ≥ δ_{g,c} − δ_{g−1,c}: pay a build (plus
  // its dual-write overhead under the entered mix) whenever a candidate
  // appears that the previous window did not materialize. Drop variables
  // d_{g,c} ≥ δ_{g−1,c} − δ_{g,c} symmetrically charge retiring one.
  // Positive cost pins every t and d to the max at any optimum, and with
  // integral deltas the max is integral — so both blocks stay continuous
  // and only the W·C deltas branch.
  std::vector<std::vector<int>> trans_vars(groups.size());
  std::vector<std::vector<int>> drop_vars(groups.size());
  for (size_t g = 1; g < groups.size(); ++g) {
    trans_vars[g].resize(num_cands);
    drop_vars[g].resize(num_cands);
    for (size_t c = 0; c < num_cands; ++c) {
      trans_vars[g][c] = lp.AddVariable(
          0.0, 1.0,
          options_.migration_cost_weight * (build_cost[c] + dw_cost[g][c]));
      drop_vars[g][c] =
          lp.AddVariable(0.0, 1.0, options_.migration_cost_weight * drop_cost);
    }
  }

  int num_rows = 0;
  const bool tracing = obs::TracingEnabled();
  for (size_t g = 0; g < groups.size(); ++g) {
    num_rows += BuildWindowRows(forms[g], delta_vars[g], &lp, threads, tracing);
  }
  for (size_t g = 1; g < groups.size(); ++g) {
    for (size_t c = 0; c < num_cands; ++c) {
      lp.AddRow(RowType::kLe, 0.0,
                {{delta_vars[g][c], 1.0},
                 {delta_vars[g - 1][c], -1.0},
                 {trans_vars[g][c], -1.0}});
      lp.AddRow(RowType::kLe, 0.0,
                {{delta_vars[g - 1][c], 1.0},
                 {delta_vars[g][c], -1.0},
                 {drop_vars[g][c], -1.0}});
      num_rows += 2;
    }
  }
  if (options_.optimizer.space_limit_bytes.has_value()) {
    for (size_t g = 0; g < groups.size(); ++g) {
      std::vector<std::pair<int, double>> coeffs;
      for (size_t c = 0; c < num_cands; ++c) {
        coeffs.emplace_back(delta_vars[g][c], candidates[c].SizeBytes());
      }
      lp.AddRow(RowType::kLe, *options_.optimizer.space_limit_bytes,
                std::move(coeffs));
      ++num_rows;
    }
  }

  std::vector<int> binaries;
  binaries.reserve(groups.size() * num_cands);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t c = 0; c < num_cands; ++c) {
      binaries.push_back(delta_vars[g][c]);
    }
  }

  // Stitched warm start: each group routed at its myopic optimum, with
  // the transition block set to the positive selection diffs. Feasible by
  // construction, and an upper bound the joint solve can only improve on.
  std::vector<double> warm(static_cast<size_t>(lp.num_variables()), 0.0);
  bool warm_ok = true;
  for (size_t g = 0; g < groups.size() && warm_ok; ++g) {
    warm_ok = RouteWindowPoint(forms[g], delta_vars[g], myopic[g],
                               /*all_supports=*/false, &warm);
  }
  if (warm_ok) {
    for (size_t g = 1; g < groups.size(); ++g) {
      for (size_t c = 0; c < num_cands; ++c) {
        if (myopic[g][c] && !myopic[g - 1][c]) {
          warm[static_cast<size_t>(trans_vars[g][c])] = 1.0;
        } else if (!myopic[g][c] && myopic[g - 1][c]) {
          warm[static_cast<size_t>(drop_vars[g][c])] = 1.0;
        }
      }
    }
  }
  BipOptions bip_options = options_.optimizer.bip;
  bip_options.threads = threads;
  if (warm_ok) bip_options.warm_start = &warm;

  if (options_.capture_bip != nullptr) {
    options_.capture_bip->lp = lp;
    options_.capture_bip->binary_vars = binaries;
    options_.capture_bip->captured = true;
  }

  result.bip_variables = lp.num_variables();
  result.bip_constraints = num_rows;
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static obs::Gauge& windows_gauge =
        reg.GetGauge("optimizer.horizon_windows");
    static obs::Gauge& groups_gauge = reg.GetGauge("optimizer.horizon_groups");
    windows_gauge.Set(static_cast<double>(horizon.size()));
    groups_gauge.Set(static_cast<double>(groups.size()));
  }

  BipResult solved = SolveBip(lp, binaries, bip_options);
  if (solved.status == BipStatus::kInfeasible) {
    return Status::Infeasible(
        "multi-period BIP has no feasible solution (space limit too tight?)");
  }
  if (solved.status == BipStatus::kNoSolution) {
    return Status::ResourceExhausted(
        "multi-period BIP hit its node/time budget before finding any "
        "feasible schedule; raise OptimizerOptions::bip limits");
  }
  result.solve_proven = solved.status == BipStatus::kOptimal;
  result.bb_nodes = solved.nodes_explored;

  std::vector<std::vector<bool>> sel(groups.size(),
                                     std::vector<bool>(num_cands, false));
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t c = 0; c < num_cands; ++c) {
      sel[g][c] = solved.x[static_cast<size_t>(delta_vars[g][c])] > 0.5 &&
                  forms[g].allowed[c];
    }
  }

  // GLOBAL unused-candidate prune: drop a candidate only when NO window's
  // plans (queries, or support plans of any still-selected candidate)
  // touch it. A per-window prune could remove a candidate from an early
  // window only to rebuild it later — moving a build the solve already
  // paid for and double-counting migration cost; shrinking every window
  // identically can only cancel builds.
  std::vector<bool> used_any(num_cands, false);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const SpaceVars& sv : forms[g].query_spaces) {
      MarkBestPath(sv.space, sel[g], &used_any);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t g = 0; g < groups.size(); ++g) {
      for (const SupportInfo& info : forms[g].supports) {
        if (!sel[g][info.cf_index] || !used_any[info.cf_index]) continue;
        for (size_t idx : info.shared_ids) {
          const PlanSpace& space = forms[g].shared_supports[idx]->sv.space;
          if (space.states().empty()) continue;
          std::vector<bool> before = used_any;
          MarkBestPath(space, sel[g], &used_any);
          if (used_any != before) changed = true;
        }
      }
    }
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t c = 0; c < num_cands; ++c) {
      sel[g][c] = sel[g][c] && used_any[c];
    }
  }

  // ==== Extraction: plans per group, replicated to its windows, plus the
  // migration schedule from the selection diffs. Objectives are recomputed
  // from the final selections (WindowObjective is the exact per-window BIP
  // objective), so the reported split never drifts from the plans. ====
  result.windows.resize(horizon.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    OptimizationResult opt;
    std::vector<bool> sel_copy = sel[g];
    NOSE_RETURN_IF_ERROR(ExtractWindowPlans(forms[g], workload, groups[g].mix,
                                            pool, *est_, /*prune=*/false,
                                            &sel_copy, &opt));
    opt.objective = WindowObjective(forms[g], sel[g]);
    opt.solve_proven = result.solve_proven;
    result.execution_objective += groups[g].duration * opt.objective;
    for (size_t wi : groups[g].window_indices) {
      result.windows[wi] = opt;
    }
  }

  std::vector<bool> prev(num_cands, false);
  if (options_.initial_schema != nullptr) {
    for (size_t c = 0; c < num_cands; ++c) {
      prev[c] = initially_present[c] != 0;
    }
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    // Without a prior schema, window 0's builds are the initial deployment
    // — sunk cost, not a scheduled migration.
    if (g > 0 || options_.initial_schema != nullptr) {
      HorizonTransition t;
      t.at_window = groups[g].window_indices.front();
      for (size_t c = 0; c < num_cands; ++c) {
        if (sel[g][c] && !prev[c]) {
          t.builds.push_back(static_cast<CfId>(c));
          t.build_cost_ms += build_cost[c];
          t.dual_write_cost_ms += dw_cost[g][c];
        } else if (!sel[g][c] && prev[c]) {
          t.drops.push_back(static_cast<CfId>(c));
          t.drop_cost_ms += drop_cost;
        }
      }
      if (!t.builds.empty() || !t.drops.empty()) {
        result.migration_objective +=
            options_.migration_cost_weight *
            (t.build_cost_ms + t.drop_cost_ms + t.dual_write_cost_ms);
        result.transitions.push_back(std::move(t));
      }
    }
    prev = sel[g];
  }
  result.total_objective =
      result.execution_objective + result.migration_objective;
  return result;
}

std::string HorizonResult::ToString() const {
  std::ostringstream out;
  out << "=== Horizon plan (" << windows.size() << " windows, "
      << transitions.size() << " migrations"
      << (collapsed ? ", collapsed" : "") << ") ===\n";
  for (size_t w = 0; w < windows.size(); ++w) {
    out << "window " << w << ": " << windows[w].schema.size()
        << " column families, objective " << windows[w].objective
        << " ms/stmt\n";
  }
  for (const HorizonTransition& t : transitions) {
    out << "migrate at start of window " << t.at_window << ": build "
        << t.builds.size() << ", drop " << t.drops.size() << " (est "
        << t.build_cost_ms << " build + " << t.drop_cost_ms << " drop + "
        << t.dual_write_cost_ms << " dual-write ms)\n";
  }
  out << "objective: execution " << execution_objective << " + migration "
      << migration_objective << " = " << total_objective << "\n";
  return out.str();
}

}  // namespace nose
