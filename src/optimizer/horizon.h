#ifndef NOSE_OPTIMIZER_HORIZON_H_
#define NOSE_OPTIMIZER_HORIZON_H_

#include <string>
#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "schema/candidate_pool.h"
#include "schema/schema.h"
#include "optimizer/schema_optimizer.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "workload/workload.h"

namespace nose {

/// One planning window: a workload mix active for `duration` expected
/// statement executions. Window objectives are expected milliseconds per
/// statement (mix weights are normalized), so duration × objective is the
/// window's total expected execution time — commensurable with the
/// one-time migration costs the transition variables price.
struct HorizonWindow {
  std::string label;
  std::string mix;
  double duration = 1.0;
};

/// A forecast sequence of workload windows — the multi-period problem's
/// time axis (the time-dependent NoSE follow-up's input).
struct WorkloadHorizon {
  std::vector<HorizonWindow> windows;

  bool empty() const { return windows.empty(); }
  size_t size() const { return windows.size(); }
};

/// One-time cost of materializing `cf` from the base data: one write
/// request per row, priced with the store's latency model. The single
/// pricing function shared by MigrationPlanner's build steps and the
/// horizon BIP's transition variables, so a planned schedule's migration
/// charges match what the executor will actually pay.
double BuildCostMs(const ColumnFamily& cf, const CostModel& cost);

/// One-time cost of dropping a superseded column family after cutover:
/// one deletion request against the store, independent of the data volume
/// (the store reclaims rows in bulk). Shared by PlanMigration's drop steps
/// and the horizon BIP's drop variables, so planned and reactive migration
/// pricing agree.
double DropCostMs(const CostModel& cost);

/// Foreground-traffic profile while a migration runs, for pricing the
/// dual-write overhead of a build. The default (share 0) prices no
/// overhead — single-threaded replays with no concurrent foreground load.
struct MigrationTraffic {
  /// Fraction of the active mix's weight on update statements
  /// (UpdateWeightShare): the expected dual writes per foreground
  /// statement executed while the new generation is half-built.
  double update_weight_share = 0.0;
  /// Rows per backfill batch (evolve::MigrationOptions::chunk_rows): sets
  /// how many foreground statements interleave with the backfill.
  double chunk_rows = 256.0;
};

/// Expected dual-write overhead of building `cf` under foreground load:
/// the backfill takes ceil(rows / chunk_rows) store batches, roughly one
/// foreground statement interleaves per batch, and each interleaved update
/// pays one extra single-row put into the half-built generation.
double DualWriteCostMs(const ColumnFamily& cf, const CostModel& cost,
                       const MigrationTraffic& traffic);

/// Fraction of `mix`'s weight carried by update statements — the
/// update_weight_share to price migrations scheduled under that mix.
double UpdateWeightShare(const Workload& workload, const std::string& mix);

struct HorizonOptions {
  /// Per-window formulation/solve options. The capture hooks inside are
  /// ignored (use HorizonOptions::capture_bip for the joint instance).
  OptimizerOptions optimizer;
  /// Multiplier on build costs in the objective. 0 makes migrations free
  /// (every window gets its myopic optimum); large values pin the schema.
  double migration_cost_weight = 1.0;
  /// Schema deployed before window 0, if any. Candidates it already
  /// materializes are free to keep in window 0; everything else pays a
  /// build. Null means window 0 is the initial deployment — its builds are
  /// sunk cost, not migration.
  const Schema* initial_schema = nullptr;
  /// When non-null and the joint multi-period BIP is assembled, receives a
  /// copy of it (solver_micro's multi-period instance class). Left
  /// untouched when the horizon collapses to a single-window solve.
  BipCapture* capture_bip = nullptr;
  /// Rows per backfill batch assumed when pricing dual-write overhead;
  /// keep equal to evolve::MigrationOptions::chunk_rows so a planned
  /// schedule charges what the executor will actually pay. The
  /// update-weight share is derived per window from the workload itself
  /// (UpdateWeightShare of the mix the migration enters).
  double backfill_chunk_rows = 256.0;
};

/// A migration the plan schedules at the START of window `at_window`:
/// build these pool candidates, drop those. Pool ids index the
/// CandidatePool the optimizer ran against. Initial-schema column
/// families absent from the pool are dropped by the executor but carry no
/// id here.
struct HorizonTransition {
  size_t at_window = 0;
  std::vector<CfId> builds;
  std::vector<CfId> drops;
  /// Unweighted store cost of the builds (Σ BuildCostMs); the objective
  /// charges migration_cost_weight times this plus the drop and dual-write
  /// charges below.
  double build_cost_ms = 0.0;
  /// Unweighted cost of the drops (Σ DropCostMs). Initial-schema column
  /// families absent from the pool are dropped by the executor but carry
  /// no id here and are not charged (a constant the optimum cannot avoid).
  double drop_cost_ms = 0.0;
  /// Expected dual-write overhead of the builds (Σ DualWriteCostMs under
  /// the entered window's mix).
  double dual_write_cost_ms = 0.0;
};

/// The multi-period optimum: one schema + plans per window, the migration
/// schedule between them, and the split objective.
struct HorizonResult {
  /// One entry per horizon window (merged identical windows are expanded
  /// back). objective is the window's expected ms per statement — the
  /// same quantity single-window Optimize reports.
  std::vector<OptimizationResult> windows;
  /// Non-empty migrations only, in window order.
  std::vector<HorizonTransition> transitions;
  /// Σ_w duration_w × windows[w].objective.
  double execution_objective = 0.0;
  /// migration_cost_weight × Σ transition (build + drop + dual-write)
  /// costs.
  double migration_objective = 0.0;
  double total_objective = 0.0;
  /// True when every window shared one mix and no initial schema was
  /// given: the horizon collapsed to ONE single-window solve, replicated —
  /// byte-identical to SchemaOptimizer::Optimize by construction.
  bool collapsed = false;
  bool solve_proven = false;
  int bip_variables = 0;
  int bip_constraints = 0;
  int bb_nodes = 0;

  std::string ToString() const;
};

/// Multi-period, migration-aware schema optimization: instantiates the
/// per-window BIP formulation (optimizer/formulation.h) once per run of
/// identical adjacent windows over ONE shared candidate pool, couples the
/// per-window CF-activation binaries δ_{w,c} with continuous transition
/// variables t_{w,c} ≥ δ_{w,c} − δ_{w−1,c} priced at migration_cost_weight
/// × (BuildCostMs(c) + DualWriteCostMs(c)) and drop variables
/// d_{w,c} ≥ δ_{w−1,c} − δ_{w,c} priced at migration_cost_weight ×
/// DropCostMs, and solves the joint BIP. The
/// result decides WHEN a migration pays for itself: a schema change is
/// scheduled only where the execution savings over the remaining windows
/// exceed the build cost.
///
/// Merging adjacent identical windows is exact: build costs are
/// subadditive along a schema path (builds(A→N) ⊆ builds(A→B) ∪
/// builds(B→N)), so an optimal plan never migrates between two windows
/// with identical weighted workloads.
class HorizonOptimizer {
 public:
  HorizonOptimizer(const CostModel* cost_model,
                   const CardinalityEstimator* estimator,
                   HorizonOptions options = HorizonOptions())
      : cost_(cost_model), est_(estimator), options_(options) {}

  /// `pool` must cover every window's statements and outlive the result
  /// (plans point into it). `cache` is shared across every window — plan
  /// spaces depend only on (statement, pool), so W windows of the same
  /// statements cost one planning pass, and per-window pre-solves chain
  /// root-basis hot starts through it.
  StatusOr<HorizonResult> Optimize(const Workload& workload,
                                   const WorkloadHorizon& horizon,
                                   const CandidatePool& pool,
                                   util::ThreadPool* threads = nullptr,
                                   PlanSpaceCache* cache = nullptr) const;

 private:
  const CostModel* cost_;
  const CardinalityEstimator* est_;
  HorizonOptions options_;
};

}  // namespace nose

#endif  // NOSE_OPTIMIZER_HORIZON_H_
