#include "optimizer/schema_optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/combinatorial.h"
#include "solver/lp.h"
#include "util/stopwatch.h"

namespace nose {

namespace {

/// Plan space plus its BIP bookkeeping: one decision variable per edge,
/// flow-conservation constraints per state.
struct SpaceVars {
  PlanSpace space;
  double weight = 0.0;
  /// edge_vars[state][edge] = LP variable index.
  std::vector<std::vector<int>> edge_vars;
  /// Root constraint right-hand side: fixed 1 for workload queries, or a
  /// shared y indicator for support queries.
  int root_delta_var = -1;  // -1 => constant 1
};

/// Adds x_e variables for every edge and the path constraints
/// (paper Fig. 7): Σ root edges = rhs; for every interior state,
/// Σ outgoing = Σ incoming; x_e ≤ δ_cf. `label` names the space in traces;
/// callers pass an empty string when tracing is off.
void AddSpaceToBip(SpaceVars* sv, LpProblem* lp,
                   const std::vector<int>& delta_vars, int* num_constraints,
                   std::string label) {
  obs::Span span("optimizer.add_space", "optimizer");
  if (span.active()) span.Arg("space", std::move(label));
  const int rows_before = *num_constraints;
  const PlanSpace& space = sv->space;
  sv->edge_vars.resize(space.states().size());
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    sv->edge_vars[s].resize(state.edges.size());
    for (size_t e = 0; e < state.edges.size(); ++e) {
      const double cost = sv->weight * state.edges[e].cost;
      sv->edge_vars[s][e] = lp->AddVariable(0.0, 1.0, cost);
    }
  }
  // Linking constraints x_e <= delta_j.
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    for (size_t e = 0; e < state.edges.size(); ++e) {
      lp->AddRow(RowType::kLe, 0.0,
                 {{sv->edge_vars[s][e], 1.0},
                  {delta_vars[state.edges[e].cf_index], -1.0}});
      ++*num_constraints;
    }
  }
  // Flow conservation. Incoming edges per state:
  std::vector<std::vector<int>> incoming(space.states().size());
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    for (size_t e = 0; e < state.edges.size(); ++e) {
      const int t = state.edges[e].target_state;
      if (t != PlanSpaceEdge::kDone) {
        incoming[static_cast<size_t>(t)].push_back(sv->edge_vars[s][e]);
      }
    }
  }
  // Root: sum of outgoing = 1 (query) or = y (support query).
  {
    std::vector<std::pair<int, double>> coeffs;
    for (int v : sv->edge_vars[0]) coeffs.emplace_back(v, 1.0);
    if (sv->root_delta_var >= 0) {
      coeffs.emplace_back(sv->root_delta_var, -1.0);
      lp->AddRow(RowType::kEq, 0.0, std::move(coeffs));
    } else {
      lp->AddRow(RowType::kEq, 1.0, std::move(coeffs));
    }
    ++*num_constraints;
  }
  // Interior states: outgoing - incoming = 0.
  for (size_t s = 1; s < space.states().size(); ++s) {
    std::vector<std::pair<int, double>> coeffs;
    for (int v : sv->edge_vars[s]) coeffs.emplace_back(v, 1.0);
    for (int v : incoming[s]) coeffs.emplace_back(v, -1.0);
    if (coeffs.empty()) continue;
    lp->AddRow(RowType::kEq, 0.0, std::move(coeffs));
    ++*num_constraints;
  }
  // Cover cut (workload queries only): every plan opens with some
  // first-step column family, so at least one of them must be selected
  // outright. Redundant for integer solutions but tightens the LP bound,
  // which otherwise pays maintenance costs fractionally.
  if (sv->root_delta_var < 0) {
    std::set<int> root_cfs;
    for (const PlanSpaceEdge& e : space.states()[0].edges) {
      root_cfs.insert(delta_vars[e.cf_index]);
    }
    std::vector<std::pair<int, double>> coeffs;
    for (int dv : root_cfs) coeffs.emplace_back(dv, 1.0);
    if (!coeffs.empty()) {
      lp->AddRow(RowType::kGe, 1.0, std::move(coeffs));
      ++*num_constraints;
    }
  }
  static obs::Counter& rows_generated = obs::MetricsRegistry::Global().GetCounter(
      "optimizer.bip_rows_generated");
  rows_generated.Add(static_cast<uint64_t>(*num_constraints - rows_before));
}

}  // namespace

StatusOr<OptimizationResult> SchemaOptimizer::Optimize(
    const Workload& workload, const std::string& mix,
    const CandidatePool& pool, util::ThreadPool* threads) const {
  OptimizationResult result;
  obs::Span optimize_span("optimizer.optimize", "optimizer");
  Stopwatch total_watch;
  const std::vector<ColumnFamily>& candidates = pool.candidates();
  if (candidates.empty()) {
    return Status::InvalidArgument("candidate pool is empty");
  }
  const auto entries = workload.EntriesIn(mix);
  if (entries.empty()) {
    return Status::InvalidArgument("workload has no statements in mix " + mix);
  }

  // ==== Phase: cost calculation (plan-space construction). ====
  // Per-statement work — building a query's plan space, costing a
  // candidate's maintenance under an update — is independent and
  // side-effect-free, so it fans out on `threads` into pre-sized slots and
  // is merged in statement/candidate order, keeping every downstream index
  // (and hence the recommendation) identical at any thread count.
  // Each phase is one PhaseSpan: the span lands in the trace, and the same
  // clock pair feeds AdvisorTiming so Fig. 13 output is independent of
  // whether tracing is on.
  std::optional<obs::PhaseSpan> phase;
  phase.emplace("optimizer.cost_calculation", "optimizer");
  QueryPlanner planner(cost_, est_);

  std::vector<SpaceVars> query_spaces;  // workload queries
  std::vector<const WorkloadEntry*> query_entries;
  std::vector<double> query_weights;
  for (const auto& [entry, weight] : entries) {
    if (!entry->IsQuery()) continue;
    query_entries.push_back(entry);
    query_weights.push_back(weight);
  }
  query_spaces.resize(query_entries.size());
  util::ParallelFor(threads, query_entries.size(), [&](size_t qi) {
    query_spaces[qi].space =
        planner.Build(query_entries[qi]->query(), candidates);
    query_spaces[qi].weight = query_weights[qi];
  });
  for (size_t qi = 0; qi < query_spaces.size(); ++qi) {
    if (!query_spaces[qi].space.HasPlan()) {
      return Status::Infeasible("no candidate plan covers query " +
                                query_entries[qi]->name);
    }
  }

  // Support queries. Different column families maintained under the same
  // update often need textually identical support queries (e.g. "fetch the
  // user name for this user ID"); the application issues that lookup once
  // per update execution, so plan one shared space per distinct
  // (update, support query) pair.
  struct SharedSupport {
    std::shared_ptr<const Query> query;  // owns the synthesized query
    SpaceVars sv;
    int y_var = -1;
  };
  std::vector<std::unique_ptr<SharedSupport>> shared_supports;
  std::map<std::pair<const WorkloadEntry*, std::string>, size_t> shared_index;

  // Per (update, modified candidate): write cost + the shared support
  // spaces whose results it needs.
  struct SupportInfo {
    const WorkloadEntry* entry;
    double weight;  // normalized mix weight of the update
    size_t cf_index;
    std::vector<size_t> shared_ids;  // into shared_supports
    double write_cost;
    bool maintainable = true;
  };
  std::vector<SupportInfo> supports;

  // Pass 1 (parallel): per update, find the candidates it modifies, price
  // their writes, and synthesize their support queries.
  struct RawSupport {
    size_t cf_index;
    double write_cost;
    std::vector<Query> support_queries;
  };
  std::vector<const WorkloadEntry*> update_entries;
  std::vector<double> update_weights;
  for (const auto& [entry, weight] : entries) {
    if (entry->IsQuery()) continue;
    update_entries.push_back(entry);
    update_weights.push_back(weight);
  }
  std::vector<std::vector<RawSupport>> raw_supports(update_entries.size());
  util::ParallelFor(threads, update_entries.size(), [&](size_t u) {
    const Update& update = update_entries[u]->update();
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (!Modifies(update, candidates[c])) continue;
      RawSupport raw;
      raw.cf_index = c;
      raw.write_cost = UpdateWriteCost(update, candidates[c], *est_, *cost_);
      raw.support_queries = SupportQueries(update, candidates[c]);
      raw_supports[u].push_back(std::move(raw));
    }
  });

  // Pass 2 (serial, deterministic order): dedup shared support queries.
  for (size_t u = 0; u < update_entries.size(); ++u) {
    for (RawSupport& raw : raw_supports[u]) {
      SupportInfo info;
      info.entry = update_entries[u];
      info.weight = update_weights[u];
      info.cf_index = raw.cf_index;
      info.write_cost = raw.write_cost;
      for (Query& sq : raw.support_queries) {
        const auto key = std::make_pair(update_entries[u], sq.ToString());
        auto it = shared_index.find(key);
        size_t idx;
        if (it == shared_index.end()) {
          auto shared = std::make_unique<SharedSupport>();
          shared->query = std::make_shared<Query>(std::move(sq));
          shared->sv.weight = update_weights[u];
          idx = shared_supports.size();
          shared_index.emplace(key, idx);
          shared_supports.push_back(std::move(shared));
        } else {
          idx = it->second;
        }
        info.shared_ids.push_back(idx);
      }
      supports.push_back(std::move(info));
    }
  }

  // Pass 3 (parallel): build the deduplicated support plan spaces.
  util::ParallelFor(threads, shared_supports.size(), [&](size_t i) {
    SharedSupport& shared = *shared_supports[i];
    shared.sv.space = planner.Build(*shared.query, candidates);
    if (!shared.sv.space.HasPlan()) {
      shared.sv.space = PlanSpace();  // unanswerable marker
    }
  });
  for (SupportInfo& info : supports) {
    for (size_t idx : info.shared_ids) {
      if (shared_supports[idx]->sv.space.states().empty()) {
        info.maintainable = false;
      }
    }
  }

  // Maintenance cost per candidate: Σ_m w_m C'_mj (paper Fig. 10).
  std::vector<double> delta_cost(candidates.size(), 0.0);
  std::vector<bool> allowed(candidates.size(), true);
  for (const SupportInfo& info : supports) {
    delta_cost[info.cf_index] += info.weight * info.write_cost;
    if (!info.maintainable) allowed[info.cf_index] = false;
  }
  // Propagate pinning: a support query answerable only through pinned
  // candidates pins every candidate that depends on it.
  {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t idx = 0; idx < shared_supports.size(); ++idx) {
        const PlanSpace& space = shared_supports[idx]->sv.space;
        if (space.states().empty()) continue;
        if (std::isfinite(space.BestCost(allowed))) continue;
        for (const SupportInfo& info : supports) {
          if (!allowed[info.cf_index]) continue;
          if (std::find(info.shared_ids.begin(), info.shared_ids.end(), idx) !=
              info.shared_ids.end()) {
            allowed[info.cf_index] = false;
            changed = true;
          }
        }
      }
    }
  }
  // Coverage check with a useful message before handing off to a solver.
  for (size_t qi = 0; qi < query_spaces.size(); ++qi) {
    if (!std::isfinite(query_spaces[qi].space.BestCost(allowed))) {
      return Status::Infeasible("no maintainable candidate plan covers query " +
                                query_entries[qi]->name);
    }
  }
  result.timing.cost_calculation_seconds = phase->StopSeconds();

  // ==== Strategy selection. ====
  SolveStrategy strategy = options_.strategy;
  if (options_.space_limit_bytes.has_value()) {
    strategy = SolveStrategy::kBip;  // only the BIP models the budget
  } else if (strategy == SolveStrategy::kAuto) {
    strategy = candidates.size() > options_.auto_bip_threshold
                   ? SolveStrategy::kCombinatorial
                   : SolveStrategy::kBip;
  }

  std::vector<bool> selected(candidates.size(), false);

  if (strategy == SolveStrategy::kCombinatorial) {
    // ==== Combinatorial branch and bound (large instances). ====
    phase.emplace("optimizer.bip_construction", "optimizer");
    CombinatorialInput input;
    input.num_candidates = candidates.size();
    input.maintenance = delta_cost;
    input.allowed = allowed;
    for (const SpaceVars& sv : query_spaces) {
      input.query_spaces.push_back({&sv.space, sv.weight});
    }
    std::vector<int> shared_to_input(shared_supports.size(), -1);
    for (size_t i = 0; i < shared_supports.size(); ++i) {
      const SharedSupport& shared = *shared_supports[i];
      if (shared.sv.space.states().empty()) continue;
      shared_to_input[i] = static_cast<int>(input.support_spaces.size());
      input.support_spaces.push_back({&shared.sv.space, shared.sv.weight});
    }
    input.supports_of_cf.resize(candidates.size());
    for (const SupportInfo& info : supports) {
      for (size_t idx : info.shared_ids) {
        if (shared_to_input[idx] >= 0) {
          input.supports_of_cf[info.cf_index].push_back(shared_to_input[idx]);
        }
      }
    }
    result.timing.bip_construction_seconds = phase->StopSeconds();

    phase.emplace("optimizer.bip_solve", "optimizer");
    CombinatorialOptions copt;
    copt.relative_gap = options_.bip.relative_gap;
    copt.max_nodes = options_.bip.max_nodes;
    copt.threads = threads;
    copt.time_limit_seconds = options_.bip.time_limit_seconds > 0.0
                                  ? options_.bip.time_limit_seconds
                                  : 60.0;
    CombinatorialResult comb = SolveCombinatorial(input, copt);
    result.timing.bip_solve_seconds = phase->StopSeconds();
    if (!comb.feasible) {
      return Status::ResourceExhausted(
          "combinatorial solve found no schema within its budget");
    }
    result.bb_nodes = comb.nodes_explored;
    result.objective = comb.objective;
    result.solve_proven = comb.proven;
    selected = comb.selected;
  } else {
    // ==== BIP construction (paper Figs. 7 and 10). ====
    phase.emplace("optimizer.bip_construction", "optimizer");
    LpProblem lp;
    int num_constraints = 0;

    std::vector<int> delta_vars(candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      delta_vars[c] =
          lp.AddVariable(0.0, allowed[c] ? 1.0 : 0.0, delta_cost[c]);
    }
    const bool tracing = obs::TracingEnabled();
    for (size_t qi = 0; qi < query_spaces.size(); ++qi) {
      AddSpaceToBip(&query_spaces[qi], &lp, delta_vars, &num_constraints,
                    tracing ? query_entries[qi]->name : std::string());
    }
    // Shared support spaces: root flow equals the indicator y_s; selecting
    // a dependent family forces y_s.
    for (auto& shared : shared_supports) {
      if (shared->sv.space.states().empty()) continue;
      shared->y_var = lp.AddVariable(0.0, 1.0, 0.0);
      shared->sv.root_delta_var = shared->y_var;
      AddSpaceToBip(&shared->sv, &lp, delta_vars, &num_constraints,
                    tracing ? "support:" + shared->query->ToString()
                            : std::string());
    }
    for (const SupportInfo& info : supports) {
      if (!allowed[info.cf_index]) continue;
      for (size_t idx : info.shared_ids) {
        const int y = shared_supports[idx]->y_var;
        if (y < 0) continue;
        lp.AddRow(RowType::kLe, 0.0,
                  {{delta_vars[info.cf_index], 1.0}, {y, -1.0}});
        ++num_constraints;
      }
    }
    // Optional storage constraint: Σ s_j δ_j ≤ S.
    if (options_.space_limit_bytes.has_value()) {
      std::vector<std::pair<int, double>> coeffs;
      for (size_t c = 0; c < candidates.size(); ++c) {
        coeffs.emplace_back(delta_vars[c], candidates[c].SizeBytes());
      }
      lp.AddRow(RowType::kLe, *options_.space_limit_bytes, std::move(coeffs));
      ++num_constraints;
    }

    // Branch only on the delta variables: with deltas integral, every
    // space subproblem is a min-cost flow whose LP optimum is integral
    // (totally unimodular constraints), so edge variables never need
    // branching.
    const std::vector<int>& binaries = delta_vars;

    // Warm start: select every usable candidate and route each flow along
    // its best plan — feasible unless a storage budget is active. Gives
    // branch and bound an incumbent immediately (anytime behavior).
    std::vector<double> warm;
    BipOptions first_options = options_.bip;
    if (!options_.space_limit_bytes.has_value()) {
      warm.assign(static_cast<size_t>(lp.num_variables()), 0.0);
      for (size_t c = 0; c < candidates.size(); ++c) {
        warm[static_cast<size_t>(delta_vars[c])] = allowed[c] ? 1.0 : 0.0;
      }
      bool warm_ok = true;
      auto route = [&](const SpaceVars& sv) {
        auto path = sv.space.BestPath(allowed);
        if (!path.ok()) {
          warm_ok = false;
          return;
        }
        for (const auto& [state, edge] : *path) {
          warm[static_cast<size_t>(sv.edge_vars[state][edge])] = 1.0;
        }
      };
      for (const SpaceVars& sv : query_spaces) route(sv);
      for (const auto& shared : shared_supports) {
        if (shared->sv.space.states().empty() || shared->y_var < 0) continue;
        if (!std::isfinite(shared->sv.space.BestCost(allowed))) continue;
        warm[static_cast<size_t>(shared->y_var)] = 1.0;
        route(shared->sv);
      }
      if (warm_ok) first_options.warm_start = &warm;
    }

    result.bip_variables = lp.num_variables();
    result.bip_constraints = num_constraints;
    {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      static obs::Gauge& vars_gauge = reg.GetGauge("optimizer.bip_variables");
      static obs::Gauge& rows_gauge = reg.GetGauge("optimizer.bip_constraints");
      static obs::Gauge& nnz_gauge = reg.GetGauge("optimizer.bip_nonzeros");
      vars_gauge.Set(lp.num_variables());
      rows_gauge.Set(num_constraints);
      nnz_gauge.Set(static_cast<double>(lp.num_nonzeros()));
    }
    result.timing.bip_construction_seconds = phase->StopSeconds();

    // ==== BIP solving (two-stage, paper §V). ====
    phase.emplace("optimizer.bip_solve", "optimizer");
    BipResult first = SolveBip(lp, binaries, first_options);
    if (first.status == BipStatus::kInfeasible) {
      return Status::Infeasible(
          "schema BIP has no feasible solution (space limit too tight?)");
    }
    if (first.status == BipStatus::kNoSolution) {
      return Status::ResourceExhausted(
          "BIP solve hit its node/time budget before finding any feasible "
          "schema; raise OptimizerOptions::bip limits");
    }
    result.bb_nodes = first.nodes_explored;
    result.objective = first.objective;
    result.solve_proven = first.status == BipStatus::kOptimal;

    BipResult chosen = std::move(first);
    if (options_.minimize_schema_size) {
      // Pin the workload cost to the optimum, then minimize the number of
      // selected column families. Proving optimality of a count objective
      // is hopeless for plain branch and bound, so budget this phase; the
      // unused-candidate prune below removes any slack it leaves.
      std::vector<std::pair<int, double>> cost_row;
      for (int v = 0; v < lp.num_variables(); ++v) {
        const double c = lp.cost(v);
        if (c != 0.0) cost_row.emplace_back(v, c);
      }
      const double budget =
          chosen.objective + 1e-6 * std::max(1.0, std::abs(chosen.objective));
      LpProblem second_lp = lp;
      second_lp.AddRow(RowType::kLe, budget, std::move(cost_row));
      for (int v = 0; v < second_lp.num_variables(); ++v) {
        second_lp.SetCost(v, 0.0);
      }
      for (int dv : delta_vars) second_lp.SetCost(dv, 1.0);
      // The phase-1 solution is feasible here (its cost equals the
      // budget); use it as the incumbent, and exploit the integral
      // objective (a count) for near-unit gap pruning.
      BipOptions second_options = options_.bip;
      second_options.warm_start = &chosen.x;
      second_options.absolute_gap = 1.0 - 1e-6;
      second_options.max_nodes = std::min(options_.bip.max_nodes, 500);
      BipResult second = SolveBip(second_lp, binaries, second_options);
      if (second.status == BipStatus::kOptimal ||
          second.status == BipStatus::kNodeLimit) {
        result.bb_nodes += second.nodes_explored;
        chosen = std::move(second);
      }
    }
    result.timing.bip_solve_seconds = phase->StopSeconds();

    for (size_t c = 0; c < candidates.size(); ++c) {
      selected[c] = chosen.x[static_cast<size_t>(delta_vars[c])] > 0.5;
    }
  }

  // ==== Phase: extraction ("other"). ====
  obs::Span extraction_span("optimizer.extraction", "optimizer");
  for (size_t qi = 0; qi < query_spaces.size(); ++qi) {
    auto plan = query_spaces[qi].space.BestPlan(candidates, selected);
    if (!plan.ok()) {
      return Status::Internal("solution does not cover query " +
                              query_entries[qi]->name + ": " +
                              plan.status().ToString());
    }
    result.query_plans.emplace_back(query_entries[qi]->name,
                                    std::move(plan).value());
  }

  // Drop selected candidates no recommended plan touches (transitively
  // through support plans): they add maintenance/storage for nothing.
  {
    std::vector<bool> used(candidates.size(), false);
    for (const auto& [name, plan] : result.query_plans) {
      for (const PlanStep& step : plan.steps) {
        used[step.cf_id] = true;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const SupportInfo& info : supports) {
        if (!selected[info.cf_index] || !used[info.cf_index]) continue;
        for (size_t idx : info.shared_ids) {
          const PlanSpace& space = shared_supports[idx]->sv.space;
          if (space.states().empty()) continue;
          auto plan = space.BestPlan(candidates, selected);
          if (!plan.ok()) continue;  // defensive; checked again below
          for (const PlanStep& step : plan->steps) {
            if (!used[step.cf_id]) {
              used[step.cf_id] = true;
              changed = true;
            }
          }
        }
      }
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      selected[c] = selected[c] && used[c];
    }
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (selected[c]) {
      result.schema.Add(candidates[c], "", static_cast<CfId>(c));
    }
  }

  // Update plans: one UpdatePlan per update entry, one part per selected
  // modified column family.
  std::map<const WorkloadEntry*, UpdatePlan> update_plans;
  for (const SupportInfo& info : supports) {
    if (!selected[info.cf_index]) continue;
    UpdatePlan& uplan = update_plans[info.entry];
    uplan.update = &info.entry->update();
    UpdatePlanPart part;
    part.cf = &candidates[info.cf_index];
    part.cf_id = static_cast<CfId>(info.cf_index);
    part.rows = ModifiedRowEstimate(info.entry->update(),
                                    candidates[info.cf_index], *est_);
    part.write_cost = info.write_cost;
    if (info.entry->update().kind() == UpdateKind::kUpdate) {
      for (const FieldRef& f : info.entry->update().ModifiedFields()) {
        const auto& pk = part.cf->partition_key();
        const auto& ck = part.cf->clustering_key();
        if (std::find(pk.begin(), pk.end(), f) != pk.end() ||
            std::find(ck.begin(), ck.end(), f) != ck.end()) {
          part.delete_then_insert = true;
        }
      }
    }
    double part_cost = part.write_cost;
    for (size_t idx : info.shared_ids) {
      const SharedSupport& shared = *shared_supports[idx];
      if (shared.sv.space.states().empty()) continue;
      auto plan = shared.sv.space.BestPlan(candidates, selected);
      if (!plan.ok()) {
        return Status::Internal("solution cannot maintain " +
                                part.cf->ToString() + " under " +
                                info.entry->name);
      }
      QueryPlan splan = std::move(plan).value();
      // Support queries are synthesized here; share ownership so the plan
      // stays printable/executable after this function returns.
      splan.owned_query = shared.query;
      splan.query = splan.owned_query.get();
      part_cost += splan.cost;
      part.support_plans.push_back(std::move(splan));
    }
    uplan.cost += part_cost;
    uplan.parts.push_back(std::move(part));
  }
  for (const auto& [entry, weight] : entries) {
    if (entry->IsQuery()) continue;
    auto it = update_plans.find(entry);
    if (it != update_plans.end()) {
      result.update_plans.emplace_back(entry->name, std::move(it->second));
    } else {
      // Update touches no selected column family: free.
      UpdatePlan empty;
      empty.update = &entry->update();
      result.update_plans.emplace_back(entry->name, std::move(empty));
    }
  }
  result.timing.other_seconds =
      total_watch.ElapsedSeconds() - result.timing.cost_calculation_seconds -
      result.timing.bip_construction_seconds - result.timing.bip_solve_seconds;
  return result;
}

}  // namespace nose
