#include "optimizer/schema_optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/combinatorial.h"
#include "solver/certificate.h"
#include "solver/lp.h"
#include "util/stopwatch.h"

namespace nose {

namespace {

/// Plan space plus its BIP bookkeeping: one decision variable per edge,
/// flow-conservation constraints per state.
struct SpaceVars {
  PlanSpace space;
  double weight = 0.0;
  /// edge_vars[state][edge] = LP variable index.
  std::vector<std::vector<int>> edge_vars;
  /// Root constraint right-hand side: fixed 1 for workload queries, or a
  /// shared y indicator for support queries.
  int root_delta_var = -1;  // -1 => constant 1
};

/// Allocates the x_e variable for every edge of the space, with cost
/// weight · edge.cost. Serial and cheap; runs before row assembly so the
/// variable numbering matches what the original interleaved build produced
/// (deltas, then per-query edges, then per-support y/edges) and
/// recommendations are unchanged.
void AssignSpaceVariables(SpaceVars* sv, LpProblem* lp) {
  const PlanSpace& space = sv->space;
  sv->edge_vars.resize(space.states().size());
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    sv->edge_vars[s].resize(state.edges.size());
    for (size_t e = 0; e < state.edges.size(); ++e) {
      const double cost = sv->weight * state.edges[e].cost;
      sv->edge_vars[s][e] = lp->AddVariable(0.0, 1.0, cost);
    }
  }
}

/// Builds the path constraints for one space (paper Fig. 7) into `buf`:
/// Σ root edges = rhs; for every interior state, Σ outgoing = Σ incoming;
/// x_e ≤ δ_cf. Reads the pre-assigned edge variables and never touches the
/// LpProblem, so spaces fan out on the thread pool and the buffers are
/// appended in statement order afterwards. `label` names the space in
/// traces; callers pass an empty string when tracing is off.
void BuildSpaceRows(const SpaceVars& sv, const std::vector<int>& delta_vars,
                    LpRowBuffer* buf, std::string label) {
  obs::Span span("optimizer.add_space", "optimizer");
  if (span.active()) span.Arg("space", std::move(label));
  const PlanSpace& space = sv.space;
  // Linking constraints x_e <= delta_j.
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    for (size_t e = 0; e < state.edges.size(); ++e) {
      buf->Add(RowType::kLe, 0.0,
               {{sv.edge_vars[s][e], 1.0},
                {delta_vars[state.edges[e].cf_index], -1.0}});
    }
  }
  // Flow conservation. Incoming edges per state:
  std::vector<std::vector<int>> incoming(space.states().size());
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    for (size_t e = 0; e < state.edges.size(); ++e) {
      const int t = state.edges[e].target_state;
      if (t != PlanSpaceEdge::kDone) {
        incoming[static_cast<size_t>(t)].push_back(sv.edge_vars[s][e]);
      }
    }
  }
  // Root: sum of outgoing = 1 (query) or = y (support query).
  {
    std::vector<std::pair<int, double>> coeffs;
    for (int v : sv.edge_vars[0]) coeffs.emplace_back(v, 1.0);
    if (sv.root_delta_var >= 0) {
      coeffs.emplace_back(sv.root_delta_var, -1.0);
      buf->Add(RowType::kEq, 0.0, std::move(coeffs));
    } else {
      buf->Add(RowType::kEq, 1.0, std::move(coeffs));
    }
  }
  // Interior states: outgoing - incoming = 0.
  for (size_t s = 1; s < space.states().size(); ++s) {
    std::vector<std::pair<int, double>> coeffs;
    for (int v : sv.edge_vars[s]) coeffs.emplace_back(v, 1.0);
    for (int v : incoming[s]) coeffs.emplace_back(v, -1.0);
    if (coeffs.empty()) continue;
    buf->Add(RowType::kEq, 0.0, std::move(coeffs));
  }
  // Cover cut (workload queries only): every plan opens with some
  // first-step column family, so at least one of them must be selected
  // outright. Redundant for integer solutions but tightens the LP bound,
  // which otherwise pays maintenance costs fractionally.
  if (sv.root_delta_var < 0) {
    std::set<int> root_cfs;
    for (const PlanSpaceEdge& e : space.states()[0].edges) {
      root_cfs.insert(delta_vars[e.cf_index]);
    }
    std::vector<std::pair<int, double>> coeffs;
    for (int dv : root_cfs) coeffs.emplace_back(dv, 1.0);
    if (!coeffs.empty()) {
      buf->Add(RowType::kGe, 1.0, std::move(coeffs));
    }
  }
  static obs::Counter& rows_generated = obs::MetricsRegistry::Global().GetCounter(
      "optimizer.bip_rows_generated");
  rows_generated.Add(static_cast<uint64_t>(buf->size()));
}

}  // namespace

StatusOr<OptimizationResult> SchemaOptimizer::Optimize(
    const Workload& workload, const std::string& mix,
    const CandidatePool& pool, util::ThreadPool* threads,
    PlanSpaceCache* cache) const {
  OptimizationResult result;
  obs::Span optimize_span("optimizer.optimize", "optimizer");
  Stopwatch total_watch;
  const std::vector<ColumnFamily>& candidates = pool.candidates();
  if (candidates.empty()) {
    return Status::InvalidArgument("candidate pool is empty");
  }
  const auto entries = workload.EntriesIn(mix);
  if (entries.empty()) {
    return Status::InvalidArgument("workload has no statements in mix " + mix);
  }

  // ==== Phase: cost calculation (plan-space construction). ====
  // Per-statement work — building a query's plan space, costing a
  // candidate's maintenance under an update — is independent and
  // side-effect-free, so it fans out on `threads` into pre-sized slots and
  // is merged in statement/candidate order, keeping every downstream index
  // (and hence the recommendation) identical at any thread count.
  // Each phase is one PhaseSpan: the span lands in the trace, and the same
  // clock pair feeds AdvisorTiming so Fig. 13 output is independent of
  // whether tracing is on.
  std::optional<obs::PhaseSpan> phase;
  phase.emplace("optimizer.cost_calculation", "optimizer");
  QueryPlanner planner(cost_, est_);

  std::vector<SpaceVars> query_spaces;  // workload queries
  std::vector<const WorkloadEntry*> query_entries;
  std::vector<double> query_weights;
  for (const auto& [entry, weight] : entries) {
    if (!entry->IsQuery()) continue;
    query_entries.push_back(entry);
    query_weights.push_back(weight);
  }
  query_spaces.resize(query_entries.size());
  // Cache probe runs serially (the map is not synchronized); only the
  // misses fan out to the planner.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::vector<char> query_cached(query_entries.size(), 0);
  if (cache != nullptr) {
    for (size_t qi = 0; qi < query_entries.size(); ++qi) {
      auto it = cache->query_spaces.find(query_entries[qi]->name);
      if (it != cache->query_spaces.end()) {
        query_spaces[qi].space = it->second;
        query_cached[qi] = 1;
        ++cache_hits;
      } else {
        ++cache_misses;
      }
    }
  }
  util::ParallelFor(threads, query_entries.size(), [&](size_t qi) {
    if (!query_cached[qi]) {
      query_spaces[qi].space =
          planner.Build(query_entries[qi]->query(), candidates);
    }
    query_spaces[qi].weight = query_weights[qi];
  });
  if (cache != nullptr) {
    for (size_t qi = 0; qi < query_entries.size(); ++qi) {
      if (!query_cached[qi]) {
        cache->query_spaces.emplace(query_entries[qi]->name,
                                    query_spaces[qi].space);
      }
    }
  }
  for (size_t qi = 0; qi < query_spaces.size(); ++qi) {
    if (!query_spaces[qi].space.HasPlan()) {
      return Status::Infeasible("no candidate plan covers query " +
                                query_entries[qi]->name);
    }
  }

  // Support queries. Different column families maintained under the same
  // update often need textually identical support queries (e.g. "fetch the
  // user name for this user ID"); the application issues that lookup once
  // per update execution, so plan one shared space per distinct
  // (update, support query) pair.
  struct SharedSupport {
    std::shared_ptr<const Query> query;  // owns the synthesized query
    SpaceVars sv;
    int y_var = -1;
    bool from_cache = false;  // space copied from the PlanSpaceCache
  };
  std::vector<std::unique_ptr<SharedSupport>> shared_supports;
  std::map<std::pair<const WorkloadEntry*, std::string>, size_t> shared_index;

  // Per (update, modified candidate): write cost + the shared support
  // spaces whose results it needs.
  struct SupportInfo {
    const WorkloadEntry* entry;
    double weight;  // normalized mix weight of the update
    size_t cf_index;
    std::vector<size_t> shared_ids;  // into shared_supports
    double write_cost;
    bool maintainable = true;
  };
  std::vector<SupportInfo> supports;

  // Pass 1 (parallel): per update, find the candidates it modifies, price
  // their writes, and synthesize their support queries.
  struct RawSupport {
    size_t cf_index;
    double write_cost;
    std::vector<Query> support_queries;
  };
  std::vector<const WorkloadEntry*> update_entries;
  std::vector<double> update_weights;
  for (const auto& [entry, weight] : entries) {
    if (entry->IsQuery()) continue;
    update_entries.push_back(entry);
    update_weights.push_back(weight);
  }
  std::vector<char> update_cached(update_entries.size(), 0);
  if (cache != nullptr) {
    for (size_t u = 0; u < update_entries.size(); ++u) {
      if (cache->update_supports.count(update_entries[u]->name) != 0) {
        update_cached[u] = 1;
        ++cache_hits;
      } else {
        ++cache_misses;
      }
    }
  }
  std::vector<std::vector<RawSupport>> raw_supports(update_entries.size());
  util::ParallelFor(threads, update_entries.size(), [&](size_t u) {
    if (update_cached[u]) return;
    const Update& update = update_entries[u]->update();
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (!Modifies(update, candidates[c])) continue;
      RawSupport raw;
      raw.cf_index = c;
      raw.write_cost = UpdateWriteCost(update, candidates[c], *est_, *cost_);
      raw.support_queries = SupportQueries(update, candidates[c]);
      raw_supports[u].push_back(std::move(raw));
    }
  });

  // Pass 2 (serial, deterministic order): dedup shared support queries.
  // Cached updates replay the recorded (cf, write cost, support text)
  // tuples — same iteration order as a fresh compute, so every downstream
  // index is identical with and without a cache.
  for (size_t u = 0; u < update_entries.size(); ++u) {
    const WorkloadEntry* uentry = update_entries[u];
    auto intern_support = [&](const std::string& text,
                              SupportInfo* info) {
      const auto key = std::make_pair(uentry, text);
      auto it = shared_index.find(key);
      size_t idx;
      if (it == shared_index.end()) {
        auto shared = std::make_unique<SharedSupport>();
        if (cache != nullptr) {
          auto cit = cache->support_spaces.find(uentry->name + "\n" + text);
          if (cit != cache->support_spaces.end()) {
            shared->query = cit->second.query;
            shared->sv.space = cit->second.space;
            shared->from_cache = true;
          }
        }
        shared->sv.weight = update_weights[u];
        idx = shared_supports.size();
        shared_index.emplace(key, idx);
        shared_supports.push_back(std::move(shared));
      } else {
        idx = it->second;
      }
      info->shared_ids.push_back(idx);
    };
    if (update_cached[u]) {
      for (const PlanSpaceCache::UpdateSupport& us :
           cache->update_supports.at(uentry->name)) {
        SupportInfo info;
        info.entry = uentry;
        info.weight = update_weights[u];
        info.cf_index = us.cf_index;
        info.write_cost = us.write_cost;
        for (const std::string& text : us.support_texts) {
          intern_support(text, &info);
        }
        supports.push_back(std::move(info));
      }
      continue;
    }
    std::vector<PlanSpaceCache::UpdateSupport> cache_entry;
    for (RawSupport& raw : raw_supports[u]) {
      SupportInfo info;
      info.entry = uentry;
      info.weight = update_weights[u];
      info.cf_index = raw.cf_index;
      info.write_cost = raw.write_cost;
      PlanSpaceCache::UpdateSupport us;
      us.cf_index = raw.cf_index;
      us.write_cost = raw.write_cost;
      for (Query& sq : raw.support_queries) {
        std::string text = sq.ToString();
        const auto key = std::make_pair(uentry, text);
        if (shared_index.find(key) == shared_index.end()) {
          // First sighting: take ownership of the synthesized query.
          auto shared = std::make_unique<SharedSupport>();
          shared->query = std::make_shared<Query>(std::move(sq));
          shared->sv.weight = update_weights[u];
          shared_index.emplace(key, shared_supports.size());
          shared_supports.push_back(std::move(shared));
        }
        info.shared_ids.push_back(shared_index.at(key));
        us.support_texts.push_back(std::move(text));
      }
      supports.push_back(std::move(info));
      if (cache != nullptr) cache_entry.push_back(std::move(us));
    }
    if (cache != nullptr) {
      cache->update_supports.emplace(uentry->name, std::move(cache_entry));
    }
  }

  // Pass 3 (parallel): build the deduplicated support plan spaces that the
  // cache did not already hold.
  util::ParallelFor(threads, shared_supports.size(), [&](size_t i) {
    SharedSupport& shared = *shared_supports[i];
    if (shared.from_cache) return;
    shared.sv.space = planner.Build(*shared.query, candidates);
    if (!shared.sv.space.HasPlan()) {
      shared.sv.space = PlanSpace();  // unanswerable marker
    }
  });
  if (cache != nullptr) {
    for (const auto& [key, idx] : shared_index) {
      const SharedSupport& shared = *shared_supports[idx];
      if (shared.from_cache) continue;
      PlanSpaceCache::SupportSpace entry;
      entry.query = shared.query;
      entry.space = shared.sv.space;
      cache->support_spaces.emplace(key.first->name + "\n" + key.second,
                                    std::move(entry));
    }
    static obs::Counter& hits_counter = obs::MetricsRegistry::Global().GetCounter(
        "optimizer.plan_space_cache_hits");
    static obs::Counter& miss_counter = obs::MetricsRegistry::Global().GetCounter(
        "optimizer.plan_space_cache_misses");
    hits_counter.Add(cache_hits);
    miss_counter.Add(cache_misses);
  }
  for (SupportInfo& info : supports) {
    for (size_t idx : info.shared_ids) {
      if (shared_supports[idx]->sv.space.states().empty()) {
        info.maintainable = false;
      }
    }
  }

  // Maintenance cost per candidate: Σ_m w_m C'_mj (paper Fig. 10).
  std::vector<double> delta_cost(candidates.size(), 0.0);
  std::vector<bool> allowed(candidates.size(), true);
  for (const SupportInfo& info : supports) {
    delta_cost[info.cf_index] += info.weight * info.write_cost;
    if (!info.maintainable) allowed[info.cf_index] = false;
  }
  // Propagate pinning: a support query answerable only through pinned
  // candidates pins every candidate that depends on it.
  {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t idx = 0; idx < shared_supports.size(); ++idx) {
        const PlanSpace& space = shared_supports[idx]->sv.space;
        if (space.states().empty()) continue;
        if (std::isfinite(space.BestCost(allowed))) continue;
        for (const SupportInfo& info : supports) {
          if (!allowed[info.cf_index]) continue;
          if (std::find(info.shared_ids.begin(), info.shared_ids.end(), idx) !=
              info.shared_ids.end()) {
            allowed[info.cf_index] = false;
            changed = true;
          }
        }
      }
    }
  }
  // Coverage check with a useful message before handing off to a solver.
  for (size_t qi = 0; qi < query_spaces.size(); ++qi) {
    if (!std::isfinite(query_spaces[qi].space.BestCost(allowed))) {
      return Status::Infeasible("no maintainable candidate plan covers query " +
                                query_entries[qi]->name);
    }
  }
  result.timing.cost_calculation_seconds = phase->StopSeconds();

  // ==== Strategy selection. ====
  SolveStrategy strategy = options_.strategy;
  if (options_.space_limit_bytes.has_value()) {
    strategy = SolveStrategy::kBip;  // only the BIP models the budget
  } else if (strategy == SolveStrategy::kAuto) {
    strategy = candidates.size() > options_.auto_bip_threshold
                   ? SolveStrategy::kCombinatorial
                   : SolveStrategy::kBip;
  }

  std::vector<bool> selected(candidates.size(), false);

  if (strategy == SolveStrategy::kCombinatorial) {
    // ==== Combinatorial branch and bound (large instances). ====
    phase.emplace("optimizer.bip_construction", "optimizer");
    CombinatorialInput input;
    input.num_candidates = candidates.size();
    input.maintenance = delta_cost;
    input.allowed = allowed;
    for (const SpaceVars& sv : query_spaces) {
      input.query_spaces.push_back({&sv.space, sv.weight});
    }
    std::vector<int> shared_to_input(shared_supports.size(), -1);
    for (size_t i = 0; i < shared_supports.size(); ++i) {
      const SharedSupport& shared = *shared_supports[i];
      if (shared.sv.space.states().empty()) continue;
      shared_to_input[i] = static_cast<int>(input.support_spaces.size());
      input.support_spaces.push_back({&shared.sv.space, shared.sv.weight});
    }
    input.supports_of_cf.resize(candidates.size());
    for (const SupportInfo& info : supports) {
      for (size_t idx : info.shared_ids) {
        if (shared_to_input[idx] >= 0) {
          input.supports_of_cf[info.cf_index].push_back(shared_to_input[idx]);
        }
      }
    }
    result.timing.bip_construction_seconds = phase->StopSeconds();

    phase.emplace("optimizer.bip_solve", "optimizer");
    CombinatorialOptions copt;
    copt.relative_gap = options_.bip.relative_gap;
    copt.max_nodes = options_.bip.max_nodes;
    copt.threads = threads;
    copt.time_limit_seconds = options_.bip.time_limit_seconds > 0.0
                                  ? options_.bip.time_limit_seconds
                                  : 60.0;
    CombinatorialResult comb = SolveCombinatorial(input, copt);
    result.timing.bip_solve_seconds = phase->StopSeconds();
    if (!comb.feasible) {
      return Status::ResourceExhausted(
          "combinatorial solve found no schema within its budget");
    }
    result.bb_nodes = comb.nodes_explored;
    result.objective = comb.objective;
    result.solve_proven = comb.proven;
    selected = comb.selected;
  } else {
    // ==== BIP construction (paper Figs. 7 and 10). ====
    phase.emplace("optimizer.bip_construction", "optimizer");
    LpProblem lp;
    int num_constraints = 0;

    std::vector<int> delta_vars(candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      delta_vars[c] =
          lp.AddVariable(0.0, allowed[c] ? 1.0 : 0.0, delta_cost[c]);
    }
    const bool tracing = obs::TracingEnabled();
    Stopwatch assembly_watch;
    // Variable assignment stays serial: it is cheap, and running it first
    // reproduces the exact numbering of the original interleaved build.
    // Shared support spaces: root flow equals the indicator y_s; selecting
    // a dependent family forces y_s.
    for (SpaceVars& sv : query_spaces) AssignSpaceVariables(&sv, &lp);
    std::vector<SharedSupport*> active_supports;
    for (auto& shared : shared_supports) {
      if (shared->sv.space.states().empty()) continue;
      shared->y_var = lp.AddVariable(0.0, 1.0, 0.0);
      shared->sv.root_delta_var = shared->y_var;
      AssignSpaceVariables(&shared->sv, &lp);
      active_supports.push_back(shared.get());
    }
    // Row generation per space is independent of the LpProblem, so it fans
    // out on the pool into per-space buffers, appended in statement order
    // (PR 2's deterministic-merge rule) — the assembled rows match the
    // serial build exactly at any thread count.
    const size_t total_spaces = query_spaces.size() + active_supports.size();
    std::vector<LpRowBuffer> row_buffers(total_spaces);
    util::ParallelFor(threads, total_spaces, [&](size_t i) {
      if (i < query_spaces.size()) {
        BuildSpaceRows(query_spaces[i], delta_vars, &row_buffers[i],
                       tracing ? query_entries[i]->name : std::string());
      } else {
        const SharedSupport& shared =
            *active_supports[i - query_spaces.size()];
        BuildSpaceRows(shared.sv, delta_vars, &row_buffers[i],
                       tracing ? "support:" + shared.query->ToString()
                               : std::string());
      }
    });
    for (LpRowBuffer& buf : row_buffers) {
      num_constraints += static_cast<int>(buf.size());
      lp.AppendRows(std::move(buf));
    }
    for (const SupportInfo& info : supports) {
      if (!allowed[info.cf_index]) continue;
      for (size_t idx : info.shared_ids) {
        const int y = shared_supports[idx]->y_var;
        if (y < 0) continue;
        lp.AddRow(RowType::kLe, 0.0,
                  {{delta_vars[info.cf_index], 1.0}, {y, -1.0}});
        ++num_constraints;
      }
    }
    // Optional storage constraint: Σ s_j δ_j ≤ S.
    if (options_.space_limit_bytes.has_value()) {
      std::vector<std::pair<int, double>> coeffs;
      for (size_t c = 0; c < candidates.size(); ++c) {
        coeffs.emplace_back(delta_vars[c], candidates[c].SizeBytes());
      }
      lp.AddRow(RowType::kLe, *options_.space_limit_bytes, std::move(coeffs));
      ++num_constraints;
    }

    // Branch only on the delta variables: with deltas integral, every
    // space subproblem is a min-cost flow whose LP optimum is integral
    // (totally unimodular constraints), so edge variables never need
    // branching.
    const std::vector<int>& binaries = delta_vars;

    // Warm start: select every usable candidate and route each flow along
    // its best plan — feasible unless a storage budget is active. Gives
    // branch and bound an incumbent immediately (anytime behavior).
    std::vector<double> warm;
    BipOptions first_options = options_.bip;
    if (!options_.space_limit_bytes.has_value()) {
      warm.assign(static_cast<size_t>(lp.num_variables()), 0.0);
      for (size_t c = 0; c < candidates.size(); ++c) {
        warm[static_cast<size_t>(delta_vars[c])] = allowed[c] ? 1.0 : 0.0;
      }
      bool warm_ok = true;
      auto route = [&](const SpaceVars& sv) {
        auto path = sv.space.BestPath(allowed);
        if (!path.ok()) {
          warm_ok = false;
          return;
        }
        for (const auto& [state, edge] : *path) {
          warm[static_cast<size_t>(sv.edge_vars[state][edge])] = 1.0;
        }
      };
      for (const SpaceVars& sv : query_spaces) route(sv);
      for (const auto& shared : shared_supports) {
        if (shared->sv.space.states().empty() || shared->y_var < 0) continue;
        if (!std::isfinite(shared->sv.space.BestCost(allowed))) continue;
        warm[static_cast<size_t>(shared->y_var)] = 1.0;
        route(shared->sv);
      }
      if (warm_ok) first_options.warm_start = &warm;
    }
    // Shared-pool advising: the previous mix's optimum is feasible here
    // only when the assembled BIP has the exact same structure (same
    // variables AND rows — weights alone may differ). The fingerprint
    // check discards stale state when the workload or pool changed under
    // the cache instead of applying it to a mismatched variable space.
    LpBasis captured_root_basis;
    const bool cache_matches =
        cache != nullptr && cache->last_bip_variables == lp.num_variables() &&
        cache->last_bip_rows == lp.num_rows() &&
        cache->last_bip_nonzeros == lp.num_nonzeros() &&
        cache->last_bip_solution.size() ==
            static_cast<size_t>(lp.num_variables());
    if (cache_matches) {
      auto objective_of = [&lp](const std::vector<double>& x) {
        double obj = 0.0;
        for (int v = 0; v < lp.num_variables(); ++v) {
          obj += lp.cost(v) * x[static_cast<size_t>(v)];
        }
        return obj;
      };
      if (first_options.warm_start == nullptr ||
          objective_of(cache->last_bip_solution) <
              objective_of(*first_options.warm_start)) {
        first_options.warm_start = &cache->last_bip_solution;
      }
      // Hot-start the root LP from the previous optimal basis: identical
      // rows keep that basis primal feasible under the new costs, so the
      // root solve skips phase 1.
      if (!cache->last_root_basis.empty()) {
        first_options.root_basis = &cache->last_root_basis;
      }
    }
    if (cache != nullptr) {
      first_options.capture_root_basis = &captured_root_basis;
    }

    if (options_.capture_bip != nullptr) {
      options_.capture_bip->lp = lp;
      options_.capture_bip->binary_vars = binaries;
      options_.capture_bip->captured = true;
    }
    // Certify the FIRST (cost-minimizing) solve only: the schema-size stage
    // re-solves a different instance (extra budget row, count objective)
    // whose optimum says nothing about workload cost.
    if (options_.capture_certificate != nullptr) {
      first_options.capture_certificate = options_.capture_certificate;
    }

    result.bip_variables = lp.num_variables();
    result.bip_constraints = num_constraints;
    {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      static obs::Gauge& vars_gauge = reg.GetGauge("optimizer.bip_variables");
      static obs::Gauge& rows_gauge = reg.GetGauge("optimizer.bip_constraints");
      static obs::Gauge& nnz_gauge = reg.GetGauge("optimizer.bip_nonzeros");
      // A gauge, not a counter: wall time varies run to run, and the
      // counter determinism tests compare complete counter maps.
      static obs::Gauge& assembly_gauge =
          reg.GetGauge("optimizer.bip_assembly_ms");
      vars_gauge.Set(lp.num_variables());
      rows_gauge.Set(num_constraints);
      nnz_gauge.Set(static_cast<double>(lp.num_nonzeros()));
      assembly_gauge.Set(assembly_watch.ElapsedSeconds() * 1000.0);
    }
    result.timing.bip_construction_seconds = phase->StopSeconds();

    // ==== BIP solving (two-stage, paper §V). ====
    phase.emplace("optimizer.bip_solve", "optimizer");
    BipResult first = SolveBip(lp, binaries, first_options);
    if (first.status == BipStatus::kInfeasible) {
      return Status::Infeasible(
          "schema BIP has no feasible solution (space limit too tight?)");
    }
    if (first.status == BipStatus::kNoSolution) {
      return Status::ResourceExhausted(
          "BIP solve hit its node/time budget before finding any feasible "
          "schema; raise OptimizerOptions::bip limits");
    }
    result.bb_nodes = first.nodes_explored;
    result.objective = first.objective;
    result.solve_proven = first.status == BipStatus::kOptimal;

    // Replace the certificate's solution with an exactly-integral point:
    // deltas snapped from the solve, each support indicator the OR of its
    // dependent deltas, and every flow re-routed along the best path over
    // the selected candidates (one exists — the BIP solution proves
    // coverage). Integer-coefficient rows then verify with zero violation
    // in exact arithmetic; the incumbent's raw LP vector would not.
    if (options_.capture_certificate != nullptr) {
      SolveCertificate& cert = *options_.capture_certificate;
      std::vector<double> xhat(static_cast<size_t>(lp.num_variables()), 0.0);
      std::vector<bool> cert_selected(candidates.size(), false);
      for (size_t c = 0; c < candidates.size(); ++c) {
        const bool on =
            first.x[static_cast<size_t>(delta_vars[c])] > 0.5 && allowed[c];
        cert_selected[c] = on;
        xhat[static_cast<size_t>(delta_vars[c])] = on ? 1.0 : 0.0;
      }
      std::vector<char> y_on(shared_supports.size(), 0);
      for (const SupportInfo& info : supports) {
        if (!cert_selected[info.cf_index]) continue;
        for (size_t idx : info.shared_ids) y_on[idx] = 1;
      }
      bool cert_ok = true;
      auto route_cert = [&](const SpaceVars& sv) {
        auto path = sv.space.BestPath(cert_selected);
        if (!path.ok()) {
          cert_ok = false;
          return;
        }
        for (const auto& [state, edge] : *path) {
          xhat[static_cast<size_t>(sv.edge_vars[state][edge])] = 1.0;
        }
      };
      for (const SpaceVars& sv : query_spaces) route_cert(sv);
      for (size_t idx = 0; idx < shared_supports.size(); ++idx) {
        const SharedSupport& shared = *shared_supports[idx];
        if (shared.y_var < 0 || shared.sv.space.states().empty()) continue;
        if (!y_on[idx]) continue;
        xhat[static_cast<size_t>(shared.y_var)] = 1.0;
        route_cert(shared.sv);
      }
      if (cert_ok) {
        cert.x = std::move(xhat);
        double obj = 0.0;
        for (int v = 0; v < lp.num_variables(); ++v) {
          obj += lp.cost(v) * cert.x[static_cast<size_t>(v)];
        }
        cert.objective = obj;
      }
    }

    BipResult chosen = std::move(first);
    if (options_.minimize_schema_size) {
      // Pin the workload cost to the optimum, then minimize the number of
      // selected column families. Proving optimality of a count objective
      // is hopeless for plain branch and bound, so budget this phase; the
      // unused-candidate prune below removes any slack it leaves.
      std::vector<std::pair<int, double>> cost_row;
      for (int v = 0; v < lp.num_variables(); ++v) {
        const double c = lp.cost(v);
        if (c != 0.0) cost_row.emplace_back(v, c);
      }
      const double budget =
          chosen.objective + 1e-6 * std::max(1.0, std::abs(chosen.objective));
      LpProblem second_lp = lp;
      second_lp.AddRow(RowType::kLe, budget, std::move(cost_row));
      for (int v = 0; v < second_lp.num_variables(); ++v) {
        second_lp.SetCost(v, 0.0);
      }
      for (int dv : delta_vars) second_lp.SetCost(dv, 1.0);
      // The phase-1 solution is feasible here (its cost equals the
      // budget); use it as the incumbent, and exploit the integral
      // objective (a count) for near-unit gap pruning.
      BipOptions second_options = options_.bip;
      second_options.warm_start = &chosen.x;
      second_options.absolute_gap = 1.0 - 1e-6;
      second_options.max_nodes = std::min(options_.bip.max_nodes, 500);
      BipResult second = SolveBip(second_lp, binaries, second_options);
      if (second.status == BipStatus::kOptimal ||
          second.status == BipStatus::kNodeLimit) {
        result.bb_nodes += second.nodes_explored;
        chosen = std::move(second);
      }
    }
    result.timing.bip_solve_seconds = phase->StopSeconds();

    for (size_t c = 0; c < candidates.size(); ++c) {
      selected[c] = chosen.x[static_cast<size_t>(delta_vars[c])] > 0.5;
    }
    if (cache != nullptr) {
      cache->last_bip_solution = chosen.x;
      cache->last_bip_variables = lp.num_variables();
      cache->last_bip_rows = lp.num_rows();
      cache->last_bip_nonzeros = lp.num_nonzeros();
      // Captured from the FIRST solve's root: the second (schema-size)
      // stage appends a budget row, so its bases live in a different
      // geometry and are never exchanged with this cache.
      cache->last_root_basis = std::move(captured_root_basis);
    }
  }

  // ==== Phase: extraction ("other"). ====
  obs::Span extraction_span("optimizer.extraction", "optimizer");
  for (size_t qi = 0; qi < query_spaces.size(); ++qi) {
    auto plan = query_spaces[qi].space.BestPlan(candidates, selected);
    if (!plan.ok()) {
      return Status::Internal("solution does not cover query " +
                              query_entries[qi]->name + ": " +
                              plan.status().ToString());
    }
    result.query_plans.emplace_back(query_entries[qi]->name,
                                    std::move(plan).value());
  }

  // Drop selected candidates no recommended plan touches (transitively
  // through support plans): they add maintenance/storage for nothing.
  {
    std::vector<bool> used(candidates.size(), false);
    for (const auto& [name, plan] : result.query_plans) {
      for (const PlanStep& step : plan.steps) {
        used[step.cf_id] = true;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const SupportInfo& info : supports) {
        if (!selected[info.cf_index] || !used[info.cf_index]) continue;
        for (size_t idx : info.shared_ids) {
          const PlanSpace& space = shared_supports[idx]->sv.space;
          if (space.states().empty()) continue;
          auto plan = space.BestPlan(candidates, selected);
          if (!plan.ok()) continue;  // defensive; checked again below
          for (const PlanStep& step : plan->steps) {
            if (!used[step.cf_id]) {
              used[step.cf_id] = true;
              changed = true;
            }
          }
        }
      }
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      selected[c] = selected[c] && used[c];
    }
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (selected[c]) {
      result.schema.Add(candidates[c], "", static_cast<CfId>(c));
    }
  }

  // Update plans: one UpdatePlan per update entry, one part per selected
  // modified column family.
  std::map<const WorkloadEntry*, UpdatePlan> update_plans;
  for (const SupportInfo& info : supports) {
    if (!selected[info.cf_index]) continue;
    UpdatePlan& uplan = update_plans[info.entry];
    uplan.update = &info.entry->update();
    UpdatePlanPart part;
    part.cf = &candidates[info.cf_index];
    part.cf_id = static_cast<CfId>(info.cf_index);
    part.rows = ModifiedRowEstimate(info.entry->update(),
                                    candidates[info.cf_index], *est_);
    part.write_cost = info.write_cost;
    if (info.entry->update().kind() == UpdateKind::kUpdate) {
      for (const FieldRef& f : info.entry->update().ModifiedFields()) {
        const auto& pk = part.cf->partition_key();
        const auto& ck = part.cf->clustering_key();
        if (std::find(pk.begin(), pk.end(), f) != pk.end() ||
            std::find(ck.begin(), ck.end(), f) != ck.end()) {
          part.delete_then_insert = true;
        }
      }
    }
    double part_cost = part.write_cost;
    for (size_t idx : info.shared_ids) {
      const SharedSupport& shared = *shared_supports[idx];
      if (shared.sv.space.states().empty()) continue;
      auto plan = shared.sv.space.BestPlan(candidates, selected);
      if (!plan.ok()) {
        return Status::Internal("solution cannot maintain " +
                                part.cf->ToString() + " under " +
                                info.entry->name);
      }
      QueryPlan splan = std::move(plan).value();
      // Support queries are synthesized here; share ownership so the plan
      // stays printable/executable after this function returns.
      splan.owned_query = shared.query;
      splan.query = splan.owned_query.get();
      part_cost += splan.cost;
      part.support_plans.push_back(std::move(splan));
    }
    uplan.cost += part_cost;
    uplan.parts.push_back(std::move(part));
  }
  for (const auto& [entry, weight] : entries) {
    if (entry->IsQuery()) continue;
    auto it = update_plans.find(entry);
    if (it != update_plans.end()) {
      result.update_plans.emplace_back(entry->name, std::move(it->second));
    } else {
      // Update touches no selected column family: free.
      UpdatePlan empty;
      empty.update = &entry->update();
      result.update_plans.emplace_back(entry->name, std::move(empty));
    }
  }
  // Clamped at the source: when a shared cache satisfies whole phases the
  // recorded phase stopwatches can exceed the (tiny) total, and the
  // residual would otherwise go negative here rather than in the advisor.
  result.timing.other_seconds = std::max(
      0.0,
      total_watch.ElapsedSeconds() - result.timing.cost_calculation_seconds -
          result.timing.bip_construction_seconds -
          result.timing.bip_solve_seconds);
  return result;
}

}  // namespace nose
