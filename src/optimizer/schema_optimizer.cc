#include "optimizer/schema_optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/combinatorial.h"
#include "optimizer/formulation.h"
#include "solver/certificate.h"
#include "solver/lp.h"
#include "util/stopwatch.h"

namespace nose {

namespace {

/// Relative optimality gap in [0, 1]: 0 when proven (including
/// within-gap-proven, matching solve_proven's convention), 1 when the
/// bound is useless (unbounded-below or non-positive against a positive
/// cost objective).
double AnytimeGap(double objective, double best_bound, bool proven) {
  if (proven) return 0.0;
  if (!std::isfinite(best_bound)) return 1.0;
  const double denom = std::max(std::abs(objective), 1e-12);
  return std::clamp((objective - best_bound) / denom, 0.0, 1.0);
}

/// Floor on the solve stage's time budget when a deadline left (almost)
/// nothing: enough for the root relaxation + warm-start incumbent, so an
/// anytime call always comes back with a schema.
constexpr double kMinSolveSeconds = 0.01;

/// Remaining solve budget under OptimizerOptions::deadline_seconds, merged
/// with the explicit bip.time_limit_seconds (0 = unlimited for both).
double SolveBudgetSeconds(const OptimizerOptions& options,
                          const Stopwatch& total_watch) {
  double limit = options.bip.time_limit_seconds;
  if (options.deadline_seconds > 0.0) {
    const double left = std::max(
        kMinSolveSeconds, options.deadline_seconds - total_watch.ElapsedSeconds());
    limit = limit > 0.0 ? std::min(limit, left) : left;
  }
  return limit;
}

}  // namespace

StatusOr<OptimizationResult> SchemaOptimizer::Optimize(
    const Workload& workload, const std::string& mix,
    const CandidatePool& pool, util::ThreadPool* threads,
    PlanSpaceCache* cache) const {
  OptimizationResult result;
  obs::Span optimize_span("optimizer.optimize", "optimizer");
  Stopwatch total_watch;
  const std::vector<ColumnFamily>& candidates = pool.candidates();

  // ==== Phase: cost calculation (plan-space construction). ====
  // The per-window formulation (optimizer/formulation.h) builds every
  // mix-weighted artifact the solvers need; the multi-period horizon layer
  // reuses the same code once per window.
  // Each phase is one PhaseSpan: the span lands in the trace, and the same
  // clock pair feeds AdvisorTiming so Fig. 13 output is independent of
  // whether tracing is on.
  std::optional<obs::PhaseSpan> phase;
  phase.emplace("optimizer.cost_calculation", "optimizer");
  NOSE_ASSIGN_OR_RETURN(
      WindowFormulation form,
      BuildWindowFormulation(workload, mix, pool, cost_, est_, threads,
                             cache));
  result.timing.cost_calculation_seconds = phase->StopSeconds();

  // ==== Strategy selection. ====
  SolveStrategy strategy = options_.strategy;
  if (options_.space_limit_bytes.has_value()) {
    strategy = SolveStrategy::kBip;  // only the BIP models the budget
  } else if (strategy == SolveStrategy::kAuto) {
    strategy = candidates.size() > options_.auto_bip_threshold
                   ? SolveStrategy::kCombinatorial
                   : SolveStrategy::kBip;
  }

  std::vector<bool> selected(candidates.size(), false);

  if (strategy == SolveStrategy::kCombinatorial) {
    // ==== Combinatorial branch and bound (large instances). ====
    phase.emplace("optimizer.bip_construction", "optimizer");
    CombinatorialInput input;
    input.num_candidates = candidates.size();
    input.maintenance = form.delta_cost;
    input.allowed = form.allowed;
    for (const SpaceVars& sv : form.query_spaces) {
      input.query_spaces.push_back({&sv.space, sv.weight});
    }
    std::vector<int> shared_to_input(form.shared_supports.size(), -1);
    for (size_t i = 0; i < form.shared_supports.size(); ++i) {
      const SharedSupport& shared = *form.shared_supports[i];
      if (shared.sv.space.states().empty()) continue;
      shared_to_input[i] = static_cast<int>(input.support_spaces.size());
      input.support_spaces.push_back({&shared.sv.space, shared.sv.weight});
    }
    input.supports_of_cf.resize(candidates.size());
    for (const SupportInfo& info : form.supports) {
      for (size_t idx : info.shared_ids) {
        if (shared_to_input[idx] >= 0) {
          input.supports_of_cf[info.cf_index].push_back(shared_to_input[idx]);
        }
      }
    }
    result.timing.bip_construction_seconds = phase->StopSeconds();

    phase.emplace("optimizer.bip_solve", "optimizer");
    CombinatorialOptions copt;
    copt.relative_gap = options_.bip.relative_gap;
    copt.max_nodes = options_.bip.max_nodes;
    copt.threads = threads;
    const double budget = SolveBudgetSeconds(options_, total_watch);
    copt.time_limit_seconds = budget > 0.0 ? budget : 60.0;
    CombinatorialResult comb = SolveCombinatorial(input, copt);
    result.timing.bip_solve_seconds = phase->StopSeconds();
    if (!comb.feasible) {
      return Status::ResourceExhausted(
          "combinatorial solve found no schema within its budget");
    }
    result.bb_nodes = comb.nodes_explored;
    result.objective = comb.objective;
    result.solve_proven = comb.proven;
    result.best_bound = comb.best_bound;
    result.anytime_gap = AnytimeGap(result.objective, result.best_bound,
                                    result.solve_proven);
    selected = comb.selected;
  } else {
    // ==== BIP construction (paper Figs. 7 and 10). ====
    phase.emplace("optimizer.bip_construction", "optimizer");
    LpProblem lp;
    int num_constraints = 0;

    std::vector<int> delta_vars(candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      delta_vars[c] =
          lp.AddVariable(0.0, form.allowed[c] ? 1.0 : 0.0, form.delta_cost[c]);
    }
    const bool tracing = obs::TracingEnabled();
    Stopwatch assembly_watch;
    AssignWindowVariables(&form, &lp);
    num_constraints += BuildWindowRows(form, delta_vars, &lp, threads, tracing);
    // Optional storage constraint: Σ s_j δ_j ≤ S.
    if (options_.space_limit_bytes.has_value()) {
      std::vector<std::pair<int, double>> coeffs;
      for (size_t c = 0; c < candidates.size(); ++c) {
        coeffs.emplace_back(delta_vars[c], candidates[c].SizeBytes());
      }
      lp.AddRow(RowType::kLe, *options_.space_limit_bytes, std::move(coeffs));
      ++num_constraints;
    }

    // Branch only on the delta variables: with deltas integral, every
    // space subproblem is a min-cost flow whose LP optimum is integral
    // (totally unimodular constraints), so edge variables never need
    // branching.
    const std::vector<int>& binaries = delta_vars;

    // Warm start: select every usable candidate and route each flow along
    // its best plan — feasible unless a storage budget is active. Gives
    // branch and bound an incumbent immediately (anytime behavior).
    std::vector<double> warm;
    BipOptions first_options = options_.bip;
    first_options.threads = threads;
    if (!options_.space_limit_bytes.has_value()) {
      warm.assign(static_cast<size_t>(lp.num_variables()), 0.0);
      if (RouteWindowPoint(form, delta_vars, form.allowed,
                           /*all_supports=*/true, &warm)) {
        first_options.warm_start = &warm;
      }
    }
    // Shared-pool advising: the previous mix's root basis is reusable here
    // only when the assembled BIP has the exact same structure (same
    // variables AND rows — weights alone may differ). The fingerprint
    // check discards stale state when the workload or pool changed under
    // the cache instead of applying it to a mismatched variable space.
    LpBasis captured_root_basis;
    const bool cache_matches =
        cache != nullptr && cache->last_bip_variables == lp.num_variables() &&
        cache->last_bip_rows == lp.num_rows() &&
        cache->last_bip_nonzeros == lp.num_nonzeros() &&
        cache->last_bip_solution.size() ==
            static_cast<size_t>(lp.num_variables());
    if (cache_matches) {
      // Hot-start the root LP from the previous optimal basis: identical
      // rows keep that basis primal feasible under the new costs, so the
      // root solve skips phase 1. The previous mix's incumbent is NOT
      // seeded, even though it is feasible here: with gap-based pruning the
      // returned optimum depends on the incumbent chain, so a foreign
      // incumbent could prune the (within-gap, slightly better) solution
      // the cold per-mix solve returns — breaking the byte-equality
      // contract between AdviseAllMixes and Recommend.
      if (!cache->last_root_basis.empty()) {
        first_options.root_basis = &cache->last_root_basis;
      }
    }
    if (cache != nullptr) {
      first_options.capture_root_basis = &captured_root_basis;
    }

    if (options_.capture_bip != nullptr) {
      options_.capture_bip->lp = lp;
      options_.capture_bip->binary_vars = binaries;
      options_.capture_bip->captured = true;
    }
    // Certify the FIRST (cost-minimizing) solve only: the schema-size stage
    // re-solves a different instance (extra budget row, count objective)
    // whose optimum says nothing about workload cost.
    if (options_.capture_certificate != nullptr) {
      first_options.capture_certificate = options_.capture_certificate;
    }

    result.bip_variables = lp.num_variables();
    result.bip_constraints = num_constraints;
    {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      static obs::Gauge& vars_gauge = reg.GetGauge("optimizer.bip_variables");
      static obs::Gauge& rows_gauge = reg.GetGauge("optimizer.bip_constraints");
      static obs::Gauge& nnz_gauge = reg.GetGauge("optimizer.bip_nonzeros");
      // A gauge, not a counter: wall time varies run to run, and the
      // counter determinism tests compare complete counter maps.
      static obs::Gauge& assembly_gauge =
          reg.GetGauge("optimizer.bip_assembly_ms");
      vars_gauge.Set(lp.num_variables());
      rows_gauge.Set(num_constraints);
      nnz_gauge.Set(static_cast<double>(lp.num_nonzeros()));
      assembly_gauge.Set(assembly_watch.ElapsedSeconds() * 1000.0);
    }
    result.timing.bip_construction_seconds = phase->StopSeconds();

    // ==== BIP solving (two-stage, paper §V). ====
    phase.emplace("optimizer.bip_solve", "optimizer");
    first_options.time_limit_seconds = SolveBudgetSeconds(options_, total_watch);
    BipResult first = SolveBip(lp, binaries, first_options);
    if (first.status == BipStatus::kInfeasible) {
      return Status::Infeasible(
          "schema BIP has no feasible solution (space limit too tight?)");
    }
    if (first.status == BipStatus::kNoSolution) {
      return Status::ResourceExhausted(
          "BIP solve hit its node/time budget before finding any feasible "
          "schema; raise OptimizerOptions::bip limits");
    }
    result.bb_nodes = first.nodes_explored;
    result.objective = first.objective;
    result.solve_proven = first.status == BipStatus::kOptimal;
    // The anytime gap refers to the COST solve; the schema-size second
    // stage below holds the cost fixed, so it cannot change the bound.
    result.best_bound = first.best_bound;
    result.anytime_gap = AnytimeGap(result.objective, result.best_bound,
                                    result.solve_proven);

    // Replace the certificate's solution with an exactly-integral point:
    // deltas snapped from the solve, each support indicator the OR of its
    // dependent deltas, and every flow re-routed along the best path over
    // the selected candidates (one exists — the BIP solution proves
    // coverage). Integer-coefficient rows then verify with zero violation
    // in exact arithmetic; the incumbent's raw LP vector would not.
    if (options_.capture_certificate != nullptr) {
      SolveCertificate& cert = *options_.capture_certificate;
      std::vector<double> xhat(static_cast<size_t>(lp.num_variables()), 0.0);
      std::vector<bool> cert_selected(candidates.size(), false);
      for (size_t c = 0; c < candidates.size(); ++c) {
        cert_selected[c] =
            first.x[static_cast<size_t>(delta_vars[c])] > 0.5 &&
            form.allowed[c];
      }
      if (RouteWindowPoint(form, delta_vars, cert_selected,
                           /*all_supports=*/false, &xhat)) {
        cert.x = std::move(xhat);
        double obj = 0.0;
        for (int v = 0; v < lp.num_variables(); ++v) {
          obj += lp.cost(v) * cert.x[static_cast<size_t>(v)];
        }
        cert.objective = obj;
      }
    }

    BipResult chosen = std::move(first);
    if (options_.minimize_schema_size) {
      // Pin the workload cost to the optimum, then minimize the number of
      // selected column families. Proving optimality of a count objective
      // is hopeless for plain branch and bound, so budget this phase; the
      // unused-candidate prune below removes any slack it leaves.
      std::vector<std::pair<int, double>> cost_row;
      for (int v = 0; v < lp.num_variables(); ++v) {
        const double c = lp.cost(v);
        if (c != 0.0) cost_row.emplace_back(v, c);
      }
      const double budget =
          chosen.objective + 1e-6 * std::max(1.0, std::abs(chosen.objective));
      LpProblem second_lp = lp;
      second_lp.AddRow(RowType::kLe, budget, std::move(cost_row));
      for (int v = 0; v < second_lp.num_variables(); ++v) {
        second_lp.SetCost(v, 0.0);
      }
      for (int dv : delta_vars) second_lp.SetCost(dv, 1.0);
      // The phase-1 solution is feasible here (its cost equals the
      // budget); use it as the incumbent, and exploit the integral
      // objective (a count) for near-unit gap pruning.
      BipOptions second_options = options_.bip;
      second_options.threads = threads;
      second_options.warm_start = &chosen.x;
      second_options.absolute_gap = 1.0 - 1e-6;
      second_options.max_nodes = std::min(options_.bip.max_nodes, 500);
      // Under a deadline this stage gets only the time the cost solve
      // left; its warm start keeps the minimum-cost schema either way.
      second_options.time_limit_seconds =
          SolveBudgetSeconds(options_, total_watch);
      BipResult second = SolveBip(second_lp, binaries, second_options);
      if (second.status == BipStatus::kOptimal ||
          second.status == BipStatus::kNodeLimit) {
        result.bb_nodes += second.nodes_explored;
        chosen = std::move(second);
      }
    }
    result.timing.bip_solve_seconds = phase->StopSeconds();

    for (size_t c = 0; c < candidates.size(); ++c) {
      selected[c] = chosen.x[static_cast<size_t>(delta_vars[c])] > 0.5;
    }
    if (cache != nullptr) {
      cache->last_bip_solution = chosen.x;
      cache->last_bip_variables = lp.num_variables();
      cache->last_bip_rows = lp.num_rows();
      cache->last_bip_nonzeros = lp.num_nonzeros();
      // Captured from the FIRST solve's root: the second (schema-size)
      // stage appends a budget row, so its bases live in a different
      // geometry and are never exchanged with this cache.
      cache->last_root_basis = std::move(captured_root_basis);
    }
  }

  // ==== Phase: extraction ("other"). ====
  obs::Span extraction_span("optimizer.extraction", "optimizer");
  NOSE_RETURN_IF_ERROR(ExtractWindowPlans(form, workload, mix, pool, *est_,
                                          /*prune=*/true, &selected, &result));
  // Clamped at the source: when a shared cache satisfies whole phases the
  // recorded phase stopwatches can exceed the (tiny) total, and the
  // residual would otherwise go negative here rather than in the advisor.
  result.timing.other_seconds = std::max(
      0.0,
      total_watch.ElapsedSeconds() - result.timing.cost_calculation_seconds -
          result.timing.bip_construction_seconds -
          result.timing.bip_solve_seconds);
  return result;
}

}  // namespace nose
