#include "optimizer/formulation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/schema_optimizer.h"
#include "planner/update_planner.h"

namespace nose {

void AssignSpaceVariables(SpaceVars* sv, LpProblem* lp, double scale) {
  const PlanSpace& space = sv->space;
  sv->edge_vars.resize(space.states().size());
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    sv->edge_vars[s].resize(state.edges.size());
    for (size_t e = 0; e < state.edges.size(); ++e) {
      const double cost = scale * sv->weight * state.edges[e].cost;
      sv->edge_vars[s][e] = lp->AddVariable(0.0, 1.0, cost);
    }
  }
}

void BuildSpaceRows(const SpaceVars& sv, const std::vector<int>& delta_vars,
                    LpRowBuffer* buf, std::string label) {
  obs::Span span("optimizer.add_space", "optimizer");
  if (span.active()) span.Arg("space", std::move(label));
  const PlanSpace& space = sv.space;
  // Linking constraints x_e <= delta_j.
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    for (size_t e = 0; e < state.edges.size(); ++e) {
      buf->Add(RowType::kLe, 0.0,
               {{sv.edge_vars[s][e], 1.0},
                {delta_vars[state.edges[e].cf_index], -1.0}});
    }
  }
  // Flow conservation. Incoming edges per state:
  std::vector<std::vector<int>> incoming(space.states().size());
  for (size_t s = 0; s < space.states().size(); ++s) {
    const PlanSpaceState& state = space.states()[s];
    for (size_t e = 0; e < state.edges.size(); ++e) {
      const int t = state.edges[e].target_state;
      if (t != PlanSpaceEdge::kDone) {
        incoming[static_cast<size_t>(t)].push_back(sv.edge_vars[s][e]);
      }
    }
  }
  // Root: sum of outgoing = 1 (query) or = y (support query).
  {
    std::vector<std::pair<int, double>> coeffs;
    for (int v : sv.edge_vars[0]) coeffs.emplace_back(v, 1.0);
    if (sv.root_delta_var >= 0) {
      coeffs.emplace_back(sv.root_delta_var, -1.0);
      buf->Add(RowType::kEq, 0.0, std::move(coeffs));
    } else {
      buf->Add(RowType::kEq, 1.0, std::move(coeffs));
    }
  }
  // Interior states: outgoing - incoming = 0.
  for (size_t s = 1; s < space.states().size(); ++s) {
    std::vector<std::pair<int, double>> coeffs;
    for (int v : sv.edge_vars[s]) coeffs.emplace_back(v, 1.0);
    for (int v : incoming[s]) coeffs.emplace_back(v, -1.0);
    if (coeffs.empty()) continue;
    buf->Add(RowType::kEq, 0.0, std::move(coeffs));
  }
  // Cover cut (workload queries only): every plan opens with some
  // first-step column family, so at least one of them must be selected
  // outright. Redundant for integer solutions but tightens the LP bound,
  // which otherwise pays maintenance costs fractionally.
  if (sv.root_delta_var < 0) {
    std::set<int> root_cfs;
    for (const PlanSpaceEdge& e : space.states()[0].edges) {
      root_cfs.insert(delta_vars[e.cf_index]);
    }
    std::vector<std::pair<int, double>> coeffs;
    for (int dv : root_cfs) coeffs.emplace_back(dv, 1.0);
    if (!coeffs.empty()) {
      buf->Add(RowType::kGe, 1.0, std::move(coeffs));
    }
  }
  static obs::Counter& rows_generated = obs::MetricsRegistry::Global().GetCounter(
      "optimizer.bip_rows_generated");
  rows_generated.Add(static_cast<uint64_t>(buf->size()));
}

StatusOr<WindowFormulation> BuildWindowFormulation(
    const Workload& workload, const std::string& mix,
    const CandidatePool& pool, const CostModel* cost,
    const CardinalityEstimator* est, util::ThreadPool* threads,
    PlanSpaceCache* cache) {
  WindowFormulation form;
  const std::vector<ColumnFamily>& candidates = pool.candidates();
  if (candidates.empty()) {
    return Status::InvalidArgument("candidate pool is empty");
  }
  const auto entries = workload.EntriesIn(mix);
  if (entries.empty()) {
    return Status::InvalidArgument("workload has no statements in mix " + mix);
  }

  // Per-statement work — building a query's plan space, costing a
  // candidate's maintenance under an update — is independent and
  // side-effect-free, so it fans out on `threads` into pre-sized slots and
  // is merged in statement/candidate order, keeping every downstream index
  // (and hence the recommendation) identical at any thread count.
  QueryPlanner planner(cost, est);

  std::vector<double> query_weights;
  for (const auto& [entry, weight] : entries) {
    if (!entry->IsQuery()) continue;
    form.query_entries.push_back(entry);
    query_weights.push_back(weight);
  }
  form.query_spaces.resize(form.query_entries.size());
  // Cache probe runs serially (the map is not synchronized); only the
  // misses fan out to the planner.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::vector<char> query_cached(form.query_entries.size(), 0);
  if (cache != nullptr) {
    for (size_t qi = 0; qi < form.query_entries.size(); ++qi) {
      auto it = cache->query_spaces.find(form.query_entries[qi]->name);
      if (it != cache->query_spaces.end()) {
        form.query_spaces[qi].space = it->second;
        query_cached[qi] = 1;
        ++cache_hits;
      } else {
        ++cache_misses;
      }
    }
  }
  util::ParallelFor(threads, form.query_entries.size(), [&](size_t qi) {
    if (!query_cached[qi]) {
      form.query_spaces[qi].space =
          planner.Build(form.query_entries[qi]->query(), candidates);
    }
    form.query_spaces[qi].weight = query_weights[qi];
  });
  if (cache != nullptr) {
    for (size_t qi = 0; qi < form.query_entries.size(); ++qi) {
      if (!query_cached[qi]) {
        cache->query_spaces.emplace(form.query_entries[qi]->name,
                                    form.query_spaces[qi].space);
      }
    }
  }
  for (size_t qi = 0; qi < form.query_spaces.size(); ++qi) {
    if (!form.query_spaces[qi].space.HasPlan()) {
      return Status::Infeasible("no candidate plan covers query " +
                                form.query_entries[qi]->name);
    }
  }

  // Support queries. Different column families maintained under the same
  // update often need textually identical support queries (e.g. "fetch the
  // user name for this user ID"); the application issues that lookup once
  // per update execution, so plan one shared space per distinct
  // (update, support query) pair.
  std::map<std::pair<const WorkloadEntry*, std::string>, size_t> shared_index;

  // Pass 1 (parallel): per update, find the candidates it modifies, price
  // their writes, and synthesize their support queries.
  struct RawSupport {
    size_t cf_index;
    double write_cost;
    std::vector<Query> support_queries;
  };
  std::vector<const WorkloadEntry*> update_entries;
  std::vector<double> update_weights;
  for (const auto& [entry, weight] : entries) {
    if (entry->IsQuery()) continue;
    update_entries.push_back(entry);
    update_weights.push_back(weight);
  }
  std::vector<char> update_cached(update_entries.size(), 0);
  if (cache != nullptr) {
    for (size_t u = 0; u < update_entries.size(); ++u) {
      if (cache->update_supports.count(update_entries[u]->name) != 0) {
        update_cached[u] = 1;
        ++cache_hits;
      } else {
        ++cache_misses;
      }
    }
  }
  std::vector<std::vector<RawSupport>> raw_supports(update_entries.size());
  util::ParallelFor(threads, update_entries.size(), [&](size_t u) {
    if (update_cached[u]) return;
    const Update& update = update_entries[u]->update();
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (!Modifies(update, candidates[c])) continue;
      RawSupport raw;
      raw.cf_index = c;
      raw.write_cost = UpdateWriteCost(update, candidates[c], *est, *cost);
      raw.support_queries = SupportQueries(update, candidates[c]);
      raw_supports[u].push_back(std::move(raw));
    }
  });

  // Pass 2 (serial, deterministic order): dedup shared support queries.
  // Cached updates replay the recorded (cf, write cost, support text)
  // tuples — same iteration order as a fresh compute, so every downstream
  // index is identical with and without a cache.
  for (size_t u = 0; u < update_entries.size(); ++u) {
    const WorkloadEntry* uentry = update_entries[u];
    auto intern_support = [&](const std::string& text,
                              SupportInfo* info) {
      const auto key = std::make_pair(uentry, text);
      auto it = shared_index.find(key);
      size_t idx;
      if (it == shared_index.end()) {
        auto shared = std::make_unique<SharedSupport>();
        if (cache != nullptr) {
          auto cit = cache->support_spaces.find(uentry->name + "\n" + text);
          if (cit != cache->support_spaces.end()) {
            shared->query = cit->second.query;
            shared->sv.space = cit->second.space;
            shared->from_cache = true;
          }
        }
        shared->sv.weight = update_weights[u];
        idx = form.shared_supports.size();
        shared_index.emplace(key, idx);
        form.shared_supports.push_back(std::move(shared));
      } else {
        idx = it->second;
      }
      info->shared_ids.push_back(idx);
    };
    if (update_cached[u]) {
      for (const PlanSpaceCache::UpdateSupport& us :
           cache->update_supports.at(uentry->name)) {
        SupportInfo info;
        info.entry = uentry;
        info.weight = update_weights[u];
        info.cf_index = us.cf_index;
        info.write_cost = us.write_cost;
        for (const std::string& text : us.support_texts) {
          intern_support(text, &info);
        }
        form.supports.push_back(std::move(info));
      }
      continue;
    }
    std::vector<PlanSpaceCache::UpdateSupport> cache_entry;
    for (RawSupport& raw : raw_supports[u]) {
      SupportInfo info;
      info.entry = uentry;
      info.weight = update_weights[u];
      info.cf_index = raw.cf_index;
      info.write_cost = raw.write_cost;
      PlanSpaceCache::UpdateSupport us;
      us.cf_index = raw.cf_index;
      us.write_cost = raw.write_cost;
      for (Query& sq : raw.support_queries) {
        std::string text = sq.ToString();
        const auto key = std::make_pair(uentry, text);
        if (shared_index.find(key) == shared_index.end()) {
          // First sighting: take ownership of the synthesized query.
          auto shared = std::make_unique<SharedSupport>();
          shared->query = std::make_shared<Query>(std::move(sq));
          shared->sv.weight = update_weights[u];
          shared_index.emplace(key, form.shared_supports.size());
          form.shared_supports.push_back(std::move(shared));
        }
        info.shared_ids.push_back(shared_index.at(key));
        us.support_texts.push_back(std::move(text));
      }
      form.supports.push_back(std::move(info));
      if (cache != nullptr) cache_entry.push_back(std::move(us));
    }
    if (cache != nullptr) {
      cache->update_supports.emplace(uentry->name, std::move(cache_entry));
    }
  }

  // Pass 3 (parallel): build the deduplicated support plan spaces that the
  // cache did not already hold.
  util::ParallelFor(threads, form.shared_supports.size(), [&](size_t i) {
    SharedSupport& shared = *form.shared_supports[i];
    if (shared.from_cache) return;
    shared.sv.space = planner.Build(*shared.query, candidates);
    if (!shared.sv.space.HasPlan()) {
      shared.sv.space = PlanSpace();  // unanswerable marker
    }
  });
  if (cache != nullptr) {
    for (const auto& [key, idx] : shared_index) {
      const SharedSupport& shared = *form.shared_supports[idx];
      if (shared.from_cache) continue;
      PlanSpaceCache::SupportSpace entry;
      entry.query = shared.query;
      entry.space = shared.sv.space;
      cache->support_spaces.emplace(key.first->name + "\n" + key.second,
                                    std::move(entry));
    }
    static obs::Counter& hits_counter = obs::MetricsRegistry::Global().GetCounter(
        "optimizer.plan_space_cache_hits");
    static obs::Counter& miss_counter = obs::MetricsRegistry::Global().GetCounter(
        "optimizer.plan_space_cache_misses");
    hits_counter.Add(cache_hits);
    miss_counter.Add(cache_misses);
  }
  for (SupportInfo& info : form.supports) {
    for (size_t idx : info.shared_ids) {
      if (form.shared_supports[idx]->sv.space.states().empty()) {
        info.maintainable = false;
      }
    }
  }

  // Maintenance cost per candidate: Σ_m w_m C'_mj (paper Fig. 10).
  form.delta_cost.assign(candidates.size(), 0.0);
  form.allowed.assign(candidates.size(), true);
  for (const SupportInfo& info : form.supports) {
    form.delta_cost[info.cf_index] += info.weight * info.write_cost;
    if (!info.maintainable) form.allowed[info.cf_index] = false;
  }
  // Propagate pinning: a support query answerable only through pinned
  // candidates pins every candidate that depends on it.
  {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t idx = 0; idx < form.shared_supports.size(); ++idx) {
        const PlanSpace& space = form.shared_supports[idx]->sv.space;
        if (space.states().empty()) continue;
        if (std::isfinite(space.BestCost(form.allowed))) continue;
        for (const SupportInfo& info : form.supports) {
          if (!form.allowed[info.cf_index]) continue;
          if (std::find(info.shared_ids.begin(), info.shared_ids.end(), idx) !=
              info.shared_ids.end()) {
            form.allowed[info.cf_index] = false;
            changed = true;
          }
        }
      }
    }
  }
  // Coverage check with a useful message before handing off to a solver.
  for (size_t qi = 0; qi < form.query_spaces.size(); ++qi) {
    if (!std::isfinite(form.query_spaces[qi].space.BestCost(form.allowed))) {
      return Status::Infeasible("no maintainable candidate plan covers query " +
                                form.query_entries[qi]->name);
    }
  }
  return form;
}

void AssignWindowVariables(WindowFormulation* form, LpProblem* lp,
                           double scale) {
  // Variable assignment stays serial: it is cheap, and running it first
  // reproduces the exact numbering of the original interleaved build.
  // Shared support spaces: root flow equals the indicator y_s; selecting
  // a dependent family forces y_s.
  for (SpaceVars& sv : form->query_spaces) AssignSpaceVariables(&sv, lp, scale);
  form->active_supports.clear();
  for (auto& shared : form->shared_supports) {
    if (shared->sv.space.states().empty()) continue;
    shared->y_var = lp->AddVariable(0.0, 1.0, 0.0);
    shared->sv.root_delta_var = shared->y_var;
    AssignSpaceVariables(&shared->sv, lp, scale);
    form->active_supports.push_back(shared.get());
  }
}

int BuildWindowRows(const WindowFormulation& form,
                    const std::vector<int>& delta_vars, LpProblem* lp,
                    util::ThreadPool* threads, bool tracing) {
  int num_constraints = 0;
  // Row generation per space is independent of the LpProblem, so it fans
  // out on the pool into per-space buffers, appended in statement order
  // (PR 2's deterministic-merge rule) — the assembled rows match the
  // serial build exactly at any thread count.
  const size_t total_spaces =
      form.query_spaces.size() + form.active_supports.size();
  std::vector<LpRowBuffer> row_buffers(total_spaces);
  util::ParallelFor(threads, total_spaces, [&](size_t i) {
    if (i < form.query_spaces.size()) {
      BuildSpaceRows(form.query_spaces[i], delta_vars, &row_buffers[i],
                     tracing ? form.query_entries[i]->name : std::string());
    } else {
      const SharedSupport& shared =
          *form.active_supports[i - form.query_spaces.size()];
      BuildSpaceRows(shared.sv, delta_vars, &row_buffers[i],
                     tracing ? "support:" + shared.query->ToString()
                             : std::string());
    }
  });
  for (LpRowBuffer& buf : row_buffers) {
    num_constraints += static_cast<int>(buf.size());
    lp->AppendRows(std::move(buf));
  }
  for (const SupportInfo& info : form.supports) {
    if (!form.allowed[info.cf_index]) continue;
    for (size_t idx : info.shared_ids) {
      const int y = form.shared_supports[idx]->y_var;
      if (y < 0) continue;
      lp->AddRow(RowType::kLe, 0.0,
                 {{delta_vars[info.cf_index], 1.0}, {y, -1.0}});
      ++num_constraints;
    }
  }
  return num_constraints;
}

bool RouteWindowPoint(const WindowFormulation& form,
                      const std::vector<int>& delta_vars,
                      const std::vector<bool>& chosen, bool all_supports,
                      std::vector<double>* x) {
  for (size_t c = 0; c < chosen.size(); ++c) {
    (*x)[static_cast<size_t>(delta_vars[c])] = chosen[c] ? 1.0 : 0.0;
  }
  bool ok = true;
  auto route = [&](const SpaceVars& sv) {
    auto path = sv.space.BestPath(chosen);
    if (!path.ok()) {
      ok = false;
      return;
    }
    for (const auto& [state, edge] : *path) {
      (*x)[static_cast<size_t>(sv.edge_vars[state][edge])] = 1.0;
    }
  };
  for (const SpaceVars& sv : form.query_spaces) route(sv);
  if (all_supports) {
    for (const auto& shared : form.shared_supports) {
      if (shared->sv.space.states().empty() || shared->y_var < 0) continue;
      if (!std::isfinite(shared->sv.space.BestCost(chosen))) continue;
      (*x)[static_cast<size_t>(shared->y_var)] = 1.0;
      route(shared->sv);
    }
  } else {
    // Only the supports some chosen candidate depends on: the y indicator
    // is the OR of its dependent deltas at an exact integral point.
    std::vector<char> y_on(form.shared_supports.size(), 0);
    for (const SupportInfo& info : form.supports) {
      if (!chosen[info.cf_index]) continue;
      for (size_t idx : info.shared_ids) y_on[idx] = 1;
    }
    for (size_t idx = 0; idx < form.shared_supports.size(); ++idx) {
      const SharedSupport& shared = *form.shared_supports[idx];
      if (shared.y_var < 0 || shared.sv.space.states().empty()) continue;
      if (!y_on[idx]) continue;
      (*x)[static_cast<size_t>(shared.y_var)] = 1.0;
      route(shared.sv);
    }
  }
  return ok;
}

double WindowObjective(const WindowFormulation& form,
                       const std::vector<bool>& selected) {
  double obj = 0.0;
  for (const SpaceVars& sv : form.query_spaces) {
    obj += sv.weight * sv.space.BestCost(selected);
  }
  for (size_t c = 0; c < selected.size(); ++c) {
    if (selected[c]) obj += form.delta_cost[c];
  }
  std::vector<char> y_on(form.shared_supports.size(), 0);
  for (const SupportInfo& info : form.supports) {
    if (!selected[info.cf_index]) continue;
    for (size_t idx : info.shared_ids) y_on[idx] = 1;
  }
  for (size_t idx = 0; idx < form.shared_supports.size(); ++idx) {
    if (!y_on[idx]) continue;
    const SharedSupport& shared = *form.shared_supports[idx];
    if (shared.sv.space.states().empty()) continue;
    obj += shared.sv.weight * shared.sv.space.BestCost(selected);
  }
  return obj;
}

Status ExtractWindowPlans(const WindowFormulation& form,
                          const Workload& workload, const std::string& mix,
                          const CandidatePool& pool,
                          const CardinalityEstimator& est, bool prune,
                          std::vector<bool>* selected_in,
                          OptimizationResult* result) {
  const std::vector<ColumnFamily>& candidates = pool.candidates();
  std::vector<bool>& selected = *selected_in;
  for (size_t qi = 0; qi < form.query_spaces.size(); ++qi) {
    auto plan = form.query_spaces[qi].space.BestPlan(candidates, selected);
    if (!plan.ok()) {
      return Status::Internal("solution does not cover query " +
                              form.query_entries[qi]->name + ": " +
                              plan.status().ToString());
    }
    result->query_plans.emplace_back(form.query_entries[qi]->name,
                                     std::move(plan).value());
  }

  // Drop selected candidates no recommended plan touches (transitively
  // through support plans): they add maintenance/storage for nothing.
  if (prune) {
    std::vector<bool> used(candidates.size(), false);
    for (const auto& [name, plan] : result->query_plans) {
      for (const PlanStep& step : plan.steps) {
        used[step.cf_id] = true;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const SupportInfo& info : form.supports) {
        if (!selected[info.cf_index] || !used[info.cf_index]) continue;
        for (size_t idx : info.shared_ids) {
          const PlanSpace& space = form.shared_supports[idx]->sv.space;
          if (space.states().empty()) continue;
          auto plan = space.BestPlan(candidates, selected);
          if (!plan.ok()) continue;  // defensive; checked again below
          for (const PlanStep& step : plan->steps) {
            if (!used[step.cf_id]) {
              used[step.cf_id] = true;
              changed = true;
            }
          }
        }
      }
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      selected[c] = selected[c] && used[c];
    }
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (selected[c]) {
      result->schema.Add(candidates[c], "", static_cast<CfId>(c));
    }
  }

  // Update plans: one UpdatePlan per update entry, one part per selected
  // modified column family.
  std::map<const WorkloadEntry*, UpdatePlan> update_plans;
  for (const SupportInfo& info : form.supports) {
    if (!selected[info.cf_index]) continue;
    UpdatePlan& uplan = update_plans[info.entry];
    uplan.update = &info.entry->update();
    UpdatePlanPart part;
    part.cf = &candidates[info.cf_index];
    part.cf_id = static_cast<CfId>(info.cf_index);
    part.rows = ModifiedRowEstimate(info.entry->update(),
                                    candidates[info.cf_index], est);
    part.write_cost = info.write_cost;
    if (info.entry->update().kind() == UpdateKind::kUpdate) {
      for (const FieldRef& f : info.entry->update().ModifiedFields()) {
        const auto& pk = part.cf->partition_key();
        const auto& ck = part.cf->clustering_key();
        if (std::find(pk.begin(), pk.end(), f) != pk.end() ||
            std::find(ck.begin(), ck.end(), f) != ck.end()) {
          part.delete_then_insert = true;
        }
      }
    }
    double part_cost = part.write_cost;
    for (size_t idx : info.shared_ids) {
      const SharedSupport& shared = *form.shared_supports[idx];
      if (shared.sv.space.states().empty()) continue;
      auto plan = shared.sv.space.BestPlan(candidates, selected);
      if (!plan.ok()) {
        return Status::Internal("solution cannot maintain " +
                                part.cf->ToString() + " under " +
                                info.entry->name);
      }
      QueryPlan splan = std::move(plan).value();
      // Support queries are synthesized here; share ownership so the plan
      // stays printable/executable after this function returns.
      splan.owned_query = shared.query;
      splan.query = splan.owned_query.get();
      part_cost += splan.cost;
      part.support_plans.push_back(std::move(splan));
    }
    uplan.cost += part_cost;
    uplan.parts.push_back(std::move(part));
  }
  for (const auto& [entry, weight] : workload.EntriesIn(mix)) {
    if (entry->IsQuery()) continue;
    auto it = update_plans.find(entry);
    if (it != update_plans.end()) {
      result->update_plans.emplace_back(entry->name, std::move(it->second));
    } else {
      // Update touches no selected column family: free.
      UpdatePlan empty;
      empty.update = &entry->update();
      result->update_plans.emplace_back(entry->name, std::move(empty));
    }
  }
  return Status::Ok();
}

}  // namespace nose
