#ifndef NOSE_OPTIMIZER_FORMULATION_H_
#define NOSE_OPTIMIZER_FORMULATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "planner/plan_space.h"
#include "planner/update_planner.h"
#include "schema/candidate_pool.h"
#include "schema/schema.h"
#include "solver/lp.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "workload/workload.h"

namespace nose {

struct PlanSpaceCache;
struct OptimizationResult;

/// Plan space plus its BIP bookkeeping: one decision variable per edge,
/// flow-conservation constraints per state.
struct SpaceVars {
  PlanSpace space;
  double weight = 0.0;
  /// edge_vars[state][edge] = LP variable index.
  std::vector<std::vector<int>> edge_vars;
  /// Root constraint right-hand side: fixed 1 for workload queries, or a
  /// shared y indicator for support queries.
  int root_delta_var = -1;  // -1 => constant 1
};

/// One deduplicated support query shared by every (update, candidate)
/// pair that needs it: the synthesized query, its plan space, and the y
/// indicator variable once BIP variables are assigned.
struct SharedSupport {
  std::shared_ptr<const Query> query;  // owns the synthesized query
  SpaceVars sv;
  int y_var = -1;
  bool from_cache = false;  // space copied from the PlanSpaceCache
};

/// Per (update, modified candidate): write cost + the shared support
/// spaces whose results it needs.
struct SupportInfo {
  const WorkloadEntry* entry;
  double weight;  // normalized mix weight of the update
  size_t cf_index;
  std::vector<size_t> shared_ids;  // into shared_supports
  double write_cost;
  bool maintainable = true;
};

/// Everything the BIP (or the combinatorial solver) needs to know about
/// ONE workload window before any variable is allocated: the per-query
/// plan spaces, the deduplicated support spaces, the per-candidate
/// maintenance costs, and which candidates are usable at all. This is the
/// reusable per-window formulation: the single-window SchemaOptimizer
/// instantiates it once; the multi-period HorizonOptimizer instantiates it
/// once per window over the same interned pool, sharing plan spaces
/// through the PlanSpaceCache (they depend only on (statement, pool),
/// never on mix weights).
struct WindowFormulation {
  std::vector<SpaceVars> query_spaces;  // workload queries
  std::vector<const WorkloadEntry*> query_entries;
  std::vector<std::unique_ptr<SharedSupport>> shared_supports;
  std::vector<SupportInfo> supports;
  /// Maintenance cost per candidate: Σ_m w_m C'_mj (paper Fig. 10).
  std::vector<double> delta_cost;
  /// False for candidates no schema may select (unmaintainable under some
  /// update of this window).
  std::vector<bool> allowed;
  /// Supports with a usable plan space, in shared_supports order — the
  /// spaces that received y/edge variables (filled by
  /// AssignWindowVariables).
  std::vector<SharedSupport*> active_supports;
};

/// Builds the window formulation for `mix`: plan spaces for every weighted
/// query, priced supports for every weighted update, maintenance costs,
/// pinning propagation, and the coverage check. Parallel per-statement
/// stages merge in deterministic statement/candidate order. When `cache`
/// is non-null, plan spaces and priced supports are read from / written
/// into it.
StatusOr<WindowFormulation> BuildWindowFormulation(
    const Workload& workload, const std::string& mix,
    const CandidatePool& pool, const CostModel* cost,
    const CardinalityEstimator* est, util::ThreadPool* threads,
    PlanSpaceCache* cache);

/// Allocates the x_e variable for every edge of the space, with cost
/// scale · weight · edge.cost. Serial and cheap; runs before row assembly
/// so the variable numbering matches what the original interleaved build
/// produced (deltas, then per-query edges, then per-support y/edges) and
/// recommendations are unchanged.
void AssignSpaceVariables(SpaceVars* sv, LpProblem* lp, double scale = 1.0);

/// Builds the path constraints for one space (paper Fig. 7) into `buf`:
/// Σ root edges = rhs; for every interior state, Σ outgoing = Σ incoming;
/// x_e ≤ δ_cf. Reads the pre-assigned edge variables and never touches the
/// LpProblem, so spaces fan out on the thread pool and the buffers are
/// appended in statement order afterwards. `label` names the space in
/// traces; callers pass an empty string when tracing is off.
void BuildSpaceRows(const SpaceVars& sv, const std::vector<int>& delta_vars,
                    LpRowBuffer* buf, std::string label);

/// Assigns every edge/indicator variable of the window: per-query edge
/// variables in statement order, then per-support y indicator + edge
/// variables for every answerable support. `delta_vars` must already be
/// allocated by the caller (deltas first — the numbering contract).
/// `scale` multiplies every objective coefficient (a window's duration in
/// the multi-period problem; 1.0 for the single-window solve).
void AssignWindowVariables(WindowFormulation* form, LpProblem* lp,
                           double scale = 1.0);

/// Appends the window's constraint rows to `lp`: per-space path rows
/// (built in parallel into per-space buffers, appended in statement
/// order — the deterministic-merge rule), then the δ_cf ≤ y_s support
/// linking rows. Returns the number of rows added.
int BuildWindowRows(const WindowFormulation& form,
                    const std::vector<int>& delta_vars, LpProblem* lp,
                    util::ThreadPool* threads, bool tracing);

/// Writes a feasible point for this window into `x` (which must be sized
/// to the problem): δ variables from `chosen`, every flow routed along its
/// best path over the chosen candidates, and support indicators set.
/// With `all_supports` true, every answerable support with a finite best
/// cost under `chosen` is activated (the greedy warm start: chosen =
/// allowed). With it false, only supports some chosen candidate depends on
/// are activated (the exact point for a given selection — certificate
/// re-derivation and stitched multi-period warm starts). Returns false if
/// some required routing has no path under `chosen`.
bool RouteWindowPoint(const WindowFormulation& form,
                      const std::vector<int>& delta_vars,
                      const std::vector<bool>& chosen, bool all_supports,
                      std::vector<double>* x);

/// Turns a selection into the window's recommendation: min-cost plan per
/// query, optional transitive unused-candidate prune (through support
/// plans), the selected schema, and one UpdatePlan per update entry.
/// `selected` is pruned in place when `prune` is set. Fills
/// result->query_plans/schema/update_plans; plans point into `pool`.
Status ExtractWindowPlans(const WindowFormulation& form,
                          const Workload& workload, const std::string& mix,
                          const CandidatePool& pool,
                          const CardinalityEstimator& est, bool prune,
                          std::vector<bool>* selected,
                          OptimizationResult* result);

/// The window's execution objective for a selection: Σ_q w_q · best plan
/// cost over the selected candidates + Σ_selected maintenance cost —
/// exactly the single-window BIP objective evaluated at `selected`.
/// Infinity when some query has no plan over the selection.
double WindowObjective(const WindowFormulation& form,
                       const std::vector<bool>& selected);

}  // namespace nose

#endif  // NOSE_OPTIMIZER_FORMULATION_H_
