#ifndef NOSE_OPTIMIZER_COMBINATORIAL_H_
#define NOSE_OPTIMIZER_COMBINATORIAL_H_

#include <vector>

#include "planner/plan_space.h"
#include "util/thread_pool.h"

namespace nose {

/// The schema-selection problem in combinatorial form: pick a candidate
/// subset minimizing
///   Σ_q w_q · bestplan_q(S)  +  Σ_{j∈S} maintenance_j
///   + Σ_{s needed by S} w_s · bestplan_s(S)
/// where bestplan is the min-cost path through a plan-space DAG restricted
/// to S. Equivalent to the BIP of Fig. 7/10, but solved by branch and
/// bound over candidate in/out decisions with dynamic-programming bounds —
/// per-node cost is O(total edges) instead of a dense LP, which keeps
/// large instances (Fig. 13 scales) tractable without Gurobi.
struct CombinatorialInput {
  size_t num_candidates = 0;
  /// Weighted update-maintenance cost per candidate (Σ_m w_m C'_mj).
  std::vector<double> maintenance;
  /// Candidates that may be selected at all (pinning pre-applied).
  std::vector<bool> allowed;

  struct SpaceRef {
    const PlanSpace* space = nullptr;
    double weight = 0.0;
  };
  std::vector<SpaceRef> query_spaces;
  /// Deduplicated support-query spaces; executed iff some selected
  /// candidate needs them.
  std::vector<SpaceRef> support_spaces;
  /// supports_of_cf[j] = indices into support_spaces needed when j is
  /// selected.
  std::vector<std::vector<int>> supports_of_cf;
};

struct CombinatorialOptions {
  double relative_gap = 0.01;
  int max_nodes = 200000;
  double time_limit_seconds = 30.0;
  /// Optional pool for node evaluation. The search pops a fixed-size batch
  /// of open nodes, evaluates them concurrently (evaluation is pure), and
  /// processes the results sequentially in pop order — the batch size does
  /// not depend on the thread count, so the search trajectory (and thus
  /// the recommendation) is identical whether this is null or an N-thread
  /// pool.
  util::ThreadPool* threads = nullptr;
};

struct CombinatorialResult {
  bool feasible = false;
  /// True when the search space was exhausted (optimal within gap);
  /// false when a node/time budget stopped it with the best incumbent.
  bool proven = false;
  double objective = 0.0;
  /// Valid global lower bound on the optimum at termination: `objective`
  /// when proven, otherwise min(open-node parent bounds, final prune
  /// threshold) — -inf when the budget expired before the root was
  /// evaluated. Computed at exit; does not perturb the trajectory.
  double best_bound = 0.0;
  std::vector<bool> selected;
  int nodes_explored = 0;
};

CombinatorialResult SolveCombinatorial(const CombinatorialInput& input,
                                       const CombinatorialOptions& options);

}  // namespace nose

#endif  // NOSE_OPTIMIZER_COMBINATORIAL_H_
