#include "optimizer/combinatorial.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace nose {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Nodes evaluated per batch. Fixed — NOT derived from the thread count —
/// so the batch composition, and with it the whole search trajectory, is
/// the same for a serial run and any pool size.
constexpr size_t kEvalBatch = 16;

struct Node {
  /// Candidate fixings along the branch: (index, on/off).
  std::vector<std::pair<size_t, bool>> fixings;
  double parent_bound = -kInf;
};

/// Evaluation of one node: lower bound, a feasible completion (incumbent
/// candidate), and the best branching candidate.
struct Evaluation {
  bool feasible = false;
  double lower_bound = kInf;
  double incumbent_cost = kInf;
  std::vector<bool> incumbent_selected;
  int branch_candidate = -1;
};

class Solver {
 public:
  Solver(const CombinatorialInput& input, const CombinatorialOptions& options)
      : in_(input), opt_(options) {}

  CombinatorialResult Run() {
    obs::Span span("solver.combinatorial", "solver");
    CombinatorialResult result;
    uint64_t evaluations = 0;
    uint64_t incumbents = 0;
    std::vector<Node> stack;
    stack.push_back(Node{});
    double incumbent = kInf;

    Stopwatch watch;
    bool budget_hit = false;
    std::vector<Node> batch;
    std::vector<Evaluation> evals;
    while (!stack.empty() && !budget_hit) {
      if (result.nodes_explored >= opt_.max_nodes ||
          (opt_.time_limit_seconds > 0.0 &&
           watch.ElapsedSeconds() > opt_.time_limit_seconds)) {
        budget_hit = true;
        break;
      }
      // Pop a batch and evaluate it concurrently. Evaluate() reads only
      // the node and the immutable input, so the evaluations are
      // independent; everything that depends on order — prune tests,
      // incumbent updates, child pushes — happens below, sequentially, in
      // pop order. Nodes a serial DFS would have pruned mid-batch get
      // evaluated here too, but their results are discarded by the same
      // test, so only wasted work differs, never the trajectory.
      batch.clear();
      while (!stack.empty() && batch.size() < kEvalBatch) {
        batch.push_back(std::move(stack.back()));
        stack.pop_back();
      }
      batch_done_ = 0;
      evals.assign(batch.size(), Evaluation{});
      evaluations += batch.size();
      util::ParallelFor(opt_.threads, batch.size(), [&](size_t i) {
        obs::Span eval_span("solver.comb_evaluate", "solver");
        evals[i] = Evaluate(batch[i]);
      });

      for (size_t i = 0; i < batch.size(); ++i) {
        // Deadline granularity: re-check the budget per node, not just per
        // batch, so an expiry stops within one evaluation; the unprocessed
        // tail [batch_done_, batch.size()) stays open for best_bound.
        if (result.nodes_explored >= opt_.max_nodes ||
            (opt_.time_limit_seconds > 0.0 &&
             watch.ElapsedSeconds() > opt_.time_limit_seconds)) {
          budget_hit = true;
          break;
        }
        batch_done_ = i + 1;
        Node& node = batch[i];
        const double threshold =
            incumbent -
            std::max(1e-9, opt_.relative_gap * std::abs(incumbent));
        if (node.parent_bound >= threshold && std::isfinite(incumbent)) {
          continue;
        }

        ++result.nodes_explored;
        Evaluation& eval = evals[i];
        if (!eval.feasible) continue;
        if (eval.incumbent_cost < incumbent) {
          ++incumbents;
          incumbent = eval.incumbent_cost;
          result.selected = std::move(eval.incumbent_selected);
          result.objective = incumbent;
          result.feasible = true;
        }
        if (eval.lower_bound >=
            incumbent -
                std::max(1e-9, opt_.relative_gap * std::abs(incumbent))) {
          continue;
        }
        if (eval.branch_candidate < 0) continue;  // node solved exactly

        const size_t j = static_cast<size_t>(eval.branch_candidate);
        Node off = node;
        off.parent_bound = eval.lower_bound;
        off.fixings.emplace_back(j, false);
        Node on = std::move(node);
        on.parent_bound = eval.lower_bound;
        on.fixings.emplace_back(j, true);
        // Explore "on" first: it keeps the current plans and converges to
        // the greedy solution quickly; "off" forces replanning later.
        stack.push_back(std::move(off));
        stack.push_back(std::move(on));
      }
    }
    result.proven = result.feasible && !budget_hit;
    if (result.proven) {
      result.best_bound = result.objective;
    } else {
      // Every open node's subtree costs at least its parent bound; every
      // pruned subtree at least the final (smallest) prune threshold.
      // Nodes of the last batch that were never processed are still open.
      double open_min =
          std::isfinite(incumbent)
              ? incumbent -
                    std::max(1e-9, opt_.relative_gap * std::abs(incumbent))
              : kInf;
      for (const Node& n : stack) {
        open_min = std::min(open_min, n.parent_bound);
      }
      for (size_t i = batch_done_; i < batch.size(); ++i) {
        open_min = std::min(open_min, batch[i].parent_bound);
      }
      result.best_bound = open_min;
    }
    static obs::Counter& nodes_counter =
        obs::MetricsRegistry::Global().GetCounter("solver.comb_nodes");
    static obs::Counter& evals_counter =
        obs::MetricsRegistry::Global().GetCounter("solver.comb_evaluations");
    static obs::Counter& incumbent_counter =
        obs::MetricsRegistry::Global().GetCounter("solver.comb_incumbents");
    nodes_counter.Add(static_cast<uint64_t>(result.nodes_explored));
    evals_counter.Add(evaluations);
    incumbent_counter.Add(incumbents);
    return result;
  }

 private:
  Evaluation Evaluate(const Node& node) const {
    Evaluation out;
    std::vector<bool> usable = in_.allowed;
    std::vector<bool> forced(in_.num_candidates, false);
    for (const auto& [j, on] : node.fixings) {
      if (on) {
        forced[j] = true;
      } else {
        usable[j] = false;
      }
    }
    for (size_t j = 0; j < in_.num_candidates; ++j) {
      if (forced[j] && !usable[j]) return out;  // contradictory fixings
    }

    // --- Feasible completion: plan every query against all usable
    //     candidates; the used set defines the selection. ---
    std::vector<bool> selected = forced;
    double flow_cost = 0.0;
    for (const auto& q : in_.query_spaces) {
      const double c = q.space->BestCost(usable);
      if (!std::isfinite(c)) return out;  // some query uncoverable: prune
      flow_cost += q.weight * c;
      auto path = q.space->BestPath(usable);
      if (!path.ok()) return out;
      for (const auto& [state, edge] : *path) {
        selected[q.space->states()[state].edges[edge].cf_index] = true;
      }
    }
    out.feasible = true;

    // Transitive support needs of the selection (fixpoint: support plans
    // may pull in further candidates).
    std::vector<bool> support_needed(in_.support_spaces.size(), false);
    std::vector<double> support_cost(in_.support_spaces.size(), 0.0);
    bool changed = true;
    bool support_ok = true;
    while (changed && support_ok) {
      changed = false;
      for (size_t j = 0; j < in_.num_candidates; ++j) {
        if (!selected[j]) continue;
        for (int s : in_.supports_of_cf[j]) {
          if (support_needed[static_cast<size_t>(s)]) continue;
          support_needed[static_cast<size_t>(s)] = true;
          changed = true;
          const auto& sp = in_.support_spaces[static_cast<size_t>(s)];
          const double c = sp.space->BestCost(usable);
          if (!std::isfinite(c)) {
            support_ok = false;
            break;
          }
          support_cost[static_cast<size_t>(s)] = sp.weight * c;
          auto path = sp.space->BestPath(usable);
          if (!path.ok()) {
            support_ok = false;
            break;
          }
          for (const auto& [state, edge] : *path) {
            selected[sp.space->states()[state].edges[edge].cf_index] = true;
          }
        }
        if (!support_ok) break;
      }
    }

    double true_cost = kInf;
    if (support_ok) {
      true_cost = flow_cost;
      for (size_t j = 0; j < in_.num_candidates; ++j) {
        if (selected[j]) true_cost += in_.maintenance[j];
      }
      for (size_t s = 0; s < in_.support_spaces.size(); ++s) {
        if (support_needed[s]) true_cost += support_cost[s];
      }
      out.incumbent_cost = true_cost;
      out.incumbent_selected = selected;
    }

    // --- Lower bound: query flows + maintenance/support of *forced*
    //     candidates only (any completion pays at least this). ---
    double bound = flow_cost;
    std::set<int> forced_supports;
    for (size_t j = 0; j < in_.num_candidates; ++j) {
      if (!forced[j]) continue;
      bound += in_.maintenance[j];
      for (int s : in_.supports_of_cf[j]) forced_supports.insert(s);
    }
    for (int s : forced_supports) {
      const auto& sp = in_.support_spaces[static_cast<size_t>(s)];
      const double c = sp.space->BestCost(usable);
      if (!std::isfinite(c)) return Evaluation{};  // forced cf unmaintainable
      bound += sp.weight * c;
    }
    out.lower_bound = bound;

    // --- Branching: the used-but-unfixed candidate contributing the most
    //     uncounted maintenance + support cost. ---
    double best_score = 1e-12;
    for (size_t j = 0; j < in_.num_candidates; ++j) {
      if (!selected[j] || forced[j]) continue;
      double score = in_.maintenance[j];
      for (int s : in_.supports_of_cf[j]) {
        if (forced_supports.count(s) == 0 &&
            support_needed[static_cast<size_t>(s)]) {
          score += support_cost[static_cast<size_t>(s)];
        }
      }
      if (score > best_score) {
        best_score = score;
        out.branch_candidate = static_cast<int>(j);
      }
    }
    return out;
  }

  const CombinatorialInput& in_;
  const CombinatorialOptions& opt_;
  /// Nodes of the current batch already processed (or pruned) by the
  /// sequential pass; the tail [batch_done_, batch.size()) is still open
  /// when a budget stops the search mid-batch.
  size_t batch_done_ = 0;
};

}  // namespace

CombinatorialResult SolveCombinatorial(const CombinatorialInput& input,
                                       const CombinatorialOptions& options) {
  Solver solver(input, options);
  return solver.Run();
}

}  // namespace nose
