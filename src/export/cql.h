#ifndef NOSE_EXPORT_CQL_H_
#define NOSE_EXPORT_CQL_H_

#include <string>

#include "advisor/advisor.h"
#include "schema/schema.h"

namespace nose {

/// Renders a recommended schema as Cassandra CQL DDL: one CREATE TABLE per
/// column family, with the partition key, clustering columns and value
/// columns mapped to CQL types, plus a comment documenting the relationship
/// path the family materializes. Column names are qualified as
/// `entity_field` (lower-cased) to avoid collisions between entities.
std::string SchemaToCql(const Schema& schema,
                        const std::string& keyspace = "nose");

/// Full developer handout: the keyspace DDL plus every recommended
/// implementation plan rendered as comments — what the paper's advisor
/// gives the application developer (§III).
std::string RecommendationToCql(const Recommendation& rec,
                                const std::string& keyspace = "nose");

/// CQL type name for a conceptual field type.
const char* CqlTypeName(FieldType type);

/// `Entity.Field` -> `entity_field` CQL identifier.
std::string CqlColumnName(const FieldRef& ref);

}  // namespace nose

#endif  // NOSE_EXPORT_CQL_H_
