#include "export/cql.h"

#include <cctype>

#include "util/strings.h"

namespace nose {

const char* CqlTypeName(FieldType type) {
  switch (type) {
    case FieldType::kId:
      return "bigint";
    case FieldType::kInteger:
      return "bigint";
    case FieldType::kFloat:
      return "double";
    case FieldType::kString:
      return "text";
    case FieldType::kDate:
      return "timestamp";
    case FieldType::kBoolean:
      return "boolean";
  }
  return "text";
}

std::string CqlColumnName(const FieldRef& ref) {
  std::string out = ref.entity + "_" + ref.field;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

namespace {

std::string ColumnDef(const EntityGraph& graph, const FieldRef& ref) {
  const Field* field = graph.GetEntity(ref.entity).FindField(ref.field);
  return "  " + CqlColumnName(ref) + " " + CqlTypeName(field->type);
}

std::string TableDdl(const std::string& keyspace, const std::string& name,
                     const ColumnFamily& cf) {
  const EntityGraph& graph = *cf.graph();
  std::string out;
  out += "-- materializes " + cf.path().ToString() + "\n";
  out += "-- " + cf.ToString() + "\n";
  out += "CREATE TABLE " + keyspace + "." + name + " (\n";
  std::vector<std::string> defs;
  for (const FieldRef& f : cf.partition_key()) defs.push_back(ColumnDef(graph, f));
  for (const FieldRef& f : cf.clustering_key()) defs.push_back(ColumnDef(graph, f));
  for (const FieldRef& f : cf.values()) defs.push_back(ColumnDef(graph, f));

  std::vector<std::string> pk;
  for (const FieldRef& f : cf.partition_key()) pk.push_back(CqlColumnName(f));
  std::vector<std::string> ck;
  for (const FieldRef& f : cf.clustering_key()) ck.push_back(CqlColumnName(f));
  std::string key = "  PRIMARY KEY ((" + StrJoin(pk, ", ") + ")";
  if (!ck.empty()) key += ", " + StrJoin(ck, ", ");
  key += ")";
  defs.push_back(std::move(key));
  out += StrJoin(defs, ",\n");
  out += "\n)";
  if (!ck.empty()) {
    std::vector<std::string> order;
    for (const std::string& c : ck) order.push_back(c + " ASC");
    out += " WITH CLUSTERING ORDER BY (" + StrJoin(order, ", ") + ")";
  }
  out += ";\n";
  return out;
}

}  // namespace

std::string SchemaToCql(const Schema& schema, const std::string& keyspace) {
  std::string out;
  out += "CREATE KEYSPACE IF NOT EXISTS " + keyspace +
         " WITH replication = {'class': 'SimpleStrategy', "
         "'replication_factor': 1};\n\n";
  for (size_t i = 0; i < schema.column_families().size(); ++i) {
    out += TableDdl(keyspace, schema.names()[i], schema.column_families()[i]);
    out += "\n";
  }
  return out;
}

std::string RecommendationToCql(const Recommendation& rec,
                                const std::string& keyspace) {
  std::string out = SchemaToCql(rec.schema, keyspace);
  out += "-- ======================================================\n";
  out += "-- Implementation plans (execute client-side, in order)\n";
  out += "-- ======================================================\n";
  for (const auto& [name, plan] : rec.query_plans) {
    out += "-- query " + name + ":\n";
    for (const std::string& line : StrSplit(plan.ToString(), '\n')) {
      if (!line.empty()) out += "--   " + line + "\n";
    }
  }
  for (const auto& [name, plan] : rec.update_plans) {
    out += "-- update " + name + ":\n";
    for (const std::string& line : StrSplit(plan.ToString(), '\n')) {
      if (!line.empty()) out += "--   " + line + "\n";
    }
  }
  return out;
}

}  // namespace nose
