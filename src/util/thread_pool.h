#ifndef NOSE_UTIL_THREAD_POOL_H_
#define NOSE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace nose {
namespace util {

/// A small work-stealing thread pool for the advisor's embarrassingly
/// parallel phases. Workers keep per-thread deques: a worker pushes and
/// pops its own deque LIFO (cache-friendly for nested submission) and
/// steals FIFO from siblings when idle. External submissions are
/// distributed round-robin.
///
/// Tasks must not throw — error handling is by Status written into
/// caller-owned slots (see ParallelForStatus). Submitting from inside a
/// task is supported; Wait() returns only once the transitive closure of
/// submitted work has drained, and waiting threads help execute tasks
/// instead of blocking, so nested ParallelFor cannot deadlock.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 resolves via DefaultNumThreads().
  /// With a resolved count of 1 no threads are spawned and every task runs
  /// inline on the submitting thread — serial semantics, zero overhead.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (1 means inline/serial execution).
  size_t num_threads() const { return num_threads_; }

  /// Enqueues a task. Runs it inline when the pool is serial.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished. The calling thread steals and runs pending work
  /// while waiting.
  void Wait();

  /// Runs fn(0) ... fn(n-1), potentially in parallel, returning when all
  /// calls completed. The caller participates, so this makes progress even
  /// when every worker is busy (nested use). Indices are claimed from an
  /// atomic counter; callers needing determinism must write results into
  /// per-index slots and reduce in index order afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// The thread count used when a pool is constructed with 0: the
  /// NOSE_TEST_THREADS environment variable if set (CI pins this to
  /// exercise concurrency under TSan), otherwise hardware_concurrency.
  static size_t DefaultNumThreads();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker_index);
  /// Pops from the preferred deque (LIFO) or steals (FIFO); empty
  /// function if no work is available anywhere.
  std::function<void()> TryGetTask(size_t preferred);
  /// Bookkeeping after a task ran: decrement pending, wake waiters at 0.
  void FinishTask();

  size_t num_threads_ = 1;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                    ///< guards queued_/pending_/stopping_
  std::condition_variable work_cv_;  ///< signals workers: task queued/stop
  std::condition_variable done_cv_;  ///< signals waiters: pending hit zero
  size_t queued_ = 0;   ///< submitted, not yet picked up by any thread
  size_t pending_ = 0;  ///< submitted, not yet finished
  std::atomic<size_t> next_queue_{0};
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) on `pool`, serially when `pool` is null or
/// serial. The deterministic-merge building block used across the advisor.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Status-propagating variant: runs all n tasks to completion and returns
/// the first non-OK Status in *index* order (deterministic regardless of
/// execution order), or OK.
Status ParallelForStatus(ThreadPool* pool, size_t n,
                         const std::function<Status(size_t)>& fn);

}  // namespace util
}  // namespace nose

#endif  // NOSE_UTIL_THREAD_POOL_H_
