#ifndef NOSE_UTIL_RNG_H_
#define NOSE_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace nose {

/// Deterministic pseudo-random generator (xoshiro256**). All randomness in
/// the library flows through explicitly seeded Rng instances so that tests
/// and benchmarks are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} using a
/// precomputed cumulative table. Used to give the RUBiS data generator
/// realistic skew (popular items attract most bids).
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  /// Draws one sample in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace nose

#endif  // NOSE_UTIL_RNG_H_
