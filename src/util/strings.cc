#include "util/strings.h"

#include <cctype>

namespace nose {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace nose
