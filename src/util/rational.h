#ifndef NOSE_UTIL_RATIONAL_H_
#define NOSE_UTIL_RATIONAL_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace nose::util {

/// Exact dyadic rational m · 2^e with a 128-bit signed mantissa and
/// overflow checking — the arithmetic core of the solver-certificate
/// checker (analysis/certify.h).
///
/// Every finite double is a dyadic rational with a 53-bit mantissa, so the
/// set {m · 2^e} is closed under the three operations the checker needs
/// (+, −, ×): a product of two doubles has a ≤106-bit mantissa, and sums
/// only grow the mantissa by the exponent span of the addends. Division is
/// never required — feasibility residuals, objective values, and the
/// dual-feasibility bound are all polynomial in the certificate's doubles —
/// which is what keeps the representation exact.
///
/// Overflow is *sticky*: any operation whose exact result needs more than
/// 127 mantissa bits (or a non-finite input) poisons the value, and every
/// value derived from it. The checker maps a poisoned result to
/// "unverifiable" (NOSE-C005), never to a wrong verdict.
class Dyadic {
 public:
  Dyadic() = default;

  /// Exact conversion; NaN/±inf poison the value.
  static Dyadic FromDouble(double v) {
    Dyadic out;
    if (!std::isfinite(v)) {
      out.overflow_ = true;
      return out;
    }
    if (v == 0.0) return out;
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, |frac| in [0.5, 1)
    out.m_ = static_cast<__int128>(static_cast<int64_t>(std::ldexp(frac, 53)));
    out.e_ = exp - 53;
    out.Normalize();
    return out;
  }

  static Dyadic Zero() { return Dyadic(); }

  bool overflow() const { return overflow_; }
  bool IsZero() const { return !overflow_ && m_ == 0; }
  /// Sign of the exact value: -1, 0, +1. Meaningless when overflow().
  int Sign() const { return m_ == 0 ? 0 : (m_ < 0 ? -1 : 1); }

  Dyadic operator-() const {
    Dyadic out = *this;
    out.m_ = -out.m_;
    return out;
  }

  Dyadic operator+(const Dyadic& b) const {
    if (overflow_ || b.overflow_) return Poisoned();
    if (m_ == 0) return b;
    if (b.m_ == 0) return *this;
    // Align the larger exponent down to the smaller.
    const Dyadic& lo = e_ <= b.e_ ? *this : b;
    const Dyadic& hi = e_ <= b.e_ ? b : *this;
    __int128 shifted = hi.m_;
    if (!ShiftLeft(&shifted, hi.e_ - lo.e_)) return Poisoned();
    Dyadic out;
    if (__builtin_add_overflow(shifted, lo.m_, &out.m_)) return Poisoned();
    out.e_ = lo.e_;
    out.Normalize();
    return out;
  }

  Dyadic operator-(const Dyadic& b) const { return *this + (-b); }

  Dyadic operator*(const Dyadic& b) const {
    if (overflow_ || b.overflow_) return Poisoned();
    Dyadic out;
    if (m_ == 0 || b.m_ == 0) return out;
    if (__builtin_mul_overflow(m_, b.m_, &out.m_)) return Poisoned();
    // The exponent range of certificate data is tiny next to int, but keep
    // the check so poisoning is total.
    const int64_t e = static_cast<int64_t>(e_) + b.e_;
    if (e < kMinExp || e > kMaxExp) return Poisoned();
    out.e_ = static_cast<int>(e);
    out.Normalize();
    return out;
  }

  /// Three-way exact comparison: -1 (a < b), 0, +1. Poisoned on overflow —
  /// call overflow() on (a - b) when the distinction matters; here a
  /// poisoned difference compares as "greater" so callers that treat
  /// compare(x, limit) > 0 as failure stay conservative.
  int Compare(const Dyadic& b) const {
    const Dyadic diff = *this - b;
    if (diff.overflow_) return 1;
    return diff.Sign();
  }

  /// Nearest-double approximation, for reporting only (never for verdicts).
  double ToDouble() const {
    if (overflow_) return std::nan("");
    bool negative = m_ < 0;
    unsigned __int128 mag =
        negative ? -static_cast<unsigned __int128>(m_)
                 : static_cast<unsigned __int128>(m_);
    double v = 0.0;
    // Horner over the two 64-bit halves; inexact past 53 bits, as expected.
    v = std::ldexp(static_cast<double>(static_cast<uint64_t>(mag >> 64)), 64) +
        static_cast<double>(static_cast<uint64_t>(mag));
    v = std::ldexp(v, e_);
    return negative ? -v : v;
  }

 private:
  static constexpr int64_t kMinExp = -(1 << 24);
  static constexpr int64_t kMaxExp = 1 << 24;

  static Dyadic Poisoned() {
    Dyadic out;
    out.overflow_ = true;
    return out;
  }

  /// m <<= k with overflow detection (k >= 0).
  static bool ShiftLeft(__int128* m, int k) {
    for (; k > 0; --k) {
      if (__builtin_mul_overflow(*m, static_cast<__int128>(2), m)) return false;
    }
    return true;
  }

  /// Strips trailing zero bits so repeated sums do not inflate the
  /// mantissa beyond what the value requires.
  void Normalize() {
    if (m_ == 0) {
      e_ = 0;
      return;
    }
    while ((m_ & 1) == 0) {
      m_ /= 2;
      ++e_;
    }
  }

  __int128 m_ = 0;
  int e_ = 0;
  bool overflow_ = false;
};

}  // namespace nose::util

#endif  // NOSE_UTIL_RATIONAL_H_
