#ifndef NOSE_UTIL_STATUS_H_
#define NOSE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace nose {

/// Error categories used across the library. Modeled on the RocksDB /
/// absl::Status idiom: fallible functions return a Status (or StatusOr<T>)
/// instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kInfeasible,  ///< An optimization model has no feasible solution.
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define NOSE_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::nose::Status nose_status_macro_tmp_ = (expr);  \
    if (!nose_status_macro_tmp_.ok()) {              \
      return nose_status_macro_tmp_;                 \
    }                                                \
  } while (0)

}  // namespace nose

#endif  // NOSE_UTIL_STATUS_H_
