#ifndef NOSE_UTIL_STATUSOR_H_
#define NOSE_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace nose {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr is a programming
/// error (checked with assert in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a non-OK Status (the usual error-return path).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Implicit conversion from a value (the usual success-return path).
  StatusOr(T value)  // NOLINT
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a StatusOr<T> expression); on error returns the status,
/// otherwise moves the value into `lhs`.
#define NOSE_ASSIGN_OR_RETURN(lhs, expr)               \
  NOSE_ASSIGN_OR_RETURN_IMPL_(                         \
      NOSE_STATUS_MACRO_CONCAT_(nose_sor_, __LINE__), lhs, expr)

#define NOSE_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define NOSE_STATUS_MACRO_CONCAT_(x, y) NOSE_STATUS_MACRO_CONCAT_INNER_(x, y)
#define NOSE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

}  // namespace nose

#endif  // NOSE_UTIL_STATUSOR_H_
