#ifndef NOSE_UTIL_VALUE_H_
#define NOSE_UTIL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace nose {

/// A dynamically-typed cell value as stored in the record store and bound to
/// statement parameters. The ordering of alternatives matters: comparison of
/// two Values of different alternatives orders by alternative index, which
/// gives a total order usable for clustering keys.
using Value = std::variant<int64_t, double, std::string, bool>;

/// A tuple of values; used for partition keys, clustering keys and rows.
using ValueTuple = std::vector<Value>;

/// Renders a value for debugging/output ("42", "3.5", "'abc'", "true").
std::string ValueToString(const Value& v);

/// Renders a tuple as "(v1, v2, ...)".
std::string ValueTupleToString(const ValueTuple& t);

/// FNV-1a style hash for a value tuple, usable in unordered containers.
struct ValueTupleHash {
  size_t operator()(const ValueTuple& t) const;
};

}  // namespace nose

#endif  // NOSE_UTIL_VALUE_H_
