#ifndef NOSE_UTIL_STOPWATCH_H_
#define NOSE_UTIL_STOPWATCH_H_

#include <chrono>

namespace nose {

/// Wall-clock stopwatch used to time advisor phases (Fig. 13 breakdown).
/// Pinned to steady_clock: phase timings and obs spans must never go
/// backwards under NTP slew or wall-clock adjustment.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "phase timings require a monotonic clock; a non-steady "
                "clock can run backwards and produce negative durations");
  Clock::time_point start_;
};

}  // namespace nose

#endif  // NOSE_UTIL_STOPWATCH_H_
