#include "util/thread_pool.h"

#include <cstdlib>

#include "obs/trace.h"

namespace nose {
namespace util {

namespace {

/// Index of the worker owning the current thread, -1 on external threads.
thread_local int tls_worker_index = -1;

}  // namespace

size_t ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("NOSE_TEST_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultNumThreads() : num_threads) {
  if (num_threads_ <= 1) {
    num_threads_ = 1;
    return;  // serial pool: no queues, no workers
  }
  queues_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (num_threads_ <= 1) return;
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (num_threads_ <= 1) {
    task();  // serial semantics: run inline
    return;
  }
  // A worker submitting nested work pushes to its own deque (LIFO pop keeps
  // the nested task hot); external threads distribute round-robin.
  const int self = tls_worker_index;
  const size_t q = self >= 0 ? static_cast<size_t>(self)
                             : next_queue_++ % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queued_;
    ++pending_;
  }
  work_cv_.notify_one();
  done_cv_.notify_all();  // waiters may steal the new task
}

std::function<void()> ThreadPool::TryGetTask(size_t preferred) {
  std::function<void()> task;
  // Own deque first, back (LIFO): most recently pushed nested work.
  {
    Queue& q = *queues_[preferred % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
  }
  // Steal from siblings, front (FIFO): oldest work, least contended end.
  for (size_t off = 1; !task && off < queues_.size(); ++off) {
    Queue& q = *queues_[(preferred + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
  }
  if (task) {
    std::lock_guard<std::mutex> lock(mu_);
    --queued_;
  }
  return task;
}

void ThreadPool::FinishTask() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) done_cv_.notify_all();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = static_cast<int>(worker_index);
  // Name this worker's lane in exported traces: spans recorded inside
  // pool tasks land on their executing thread's timeline.
  obs::SetCurrentThreadName("pool-worker-" + std::to_string(worker_index));
  while (true) {
    std::function<void()> task = TryGetTask(worker_index);
    if (task) {
      task();
      FinishTask();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (stopping_ && queued_ == 0) return;
  }
}

void ThreadPool::Wait() {
  if (num_threads_ <= 1) return;
  const size_t preferred =
      tls_worker_index >= 0 ? static_cast<size_t>(tls_worker_index) : 0;
  while (true) {
    if (std::function<void()> task = TryGetTask(preferred)) {
      task();
      FinishTask();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_ == 0) return;
    // Tasks exist but are all mid-execution (or were stolen between our
    // scan and this lock); sleep until one completes or new work shows up.
    done_cv_.wait(lock, [this] { return pending_ == 0 || queued_ > 0; });
    if (pending_ == 0) return;
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared context copied into helper tasks: a straggling helper that only
  // gets scheduled after this call returned must find everything it touches
  // alive, hence the shared_ptr and the owned copy of fn. Once all n
  // indices are claimed, stragglers exit without ever invoking fn, so the
  // caller's captured locals are never touched after this call returns.
  struct Ctx {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
    size_t n = 0;
    std::function<void(size_t)> fn;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->n = n;
  ctx->fn = fn;
  auto body = [](const std::shared_ptr<Ctx>& c) {
    size_t i;
    while ((i = c->next.fetch_add(1, std::memory_order_relaxed)) < c->n) {
      c->fn(i);
      std::lock_guard<std::mutex> lock(c->mu);
      if (++c->done == c->n) c->cv.notify_all();
    }
  };
  const size_t helpers = std::min(num_threads_ - 1, n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([ctx, body] { body(ctx); });
  }
  // The caller participates: even if every worker is busy (nested use) the
  // loop below completes all n indices by itself, so no deadlock.
  body(ctx);
  std::unique_lock<std::mutex> lock(ctx->mu);
  ctx->cv.wait(lock, [&] { return ctx->done == ctx->n; });
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

Status ParallelForStatus(ThreadPool* pool, size_t n,
                         const std::function<Status(size_t)>& fn) {
  std::vector<Status> statuses(n);
  ParallelFor(pool, n, [&](size_t i) { statuses[i] = fn(i); });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace util
}  // namespace nose
