#include "util/rng.h"

#include <algorithm>

namespace nose {

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace nose
