#ifndef NOSE_UTIL_STRINGS_H_
#define NOSE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace nose {

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `s` on the single character `sep`; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Returns `s` with ASCII whitespace removed from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Case-sensitive prefix test.
bool StartsWith(std::string_view s, std::string_view prefix);

/// ASCII lower-casing (statement keywords are case-insensitive).
std::string AsciiLower(std::string_view s);

}  // namespace nose

#endif  // NOSE_UTIL_STRINGS_H_
