#include "util/value.h"

#include <functional>

namespace nose {

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return std::to_string(std::get<double>(v));
    case 2:
      return "'" + std::get<std::string>(v) + "'";
    case 3:
      return std::get<bool>(v) ? "true" : "false";
  }
  return "?";
}

std::string ValueTupleToString(const ValueTuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += ValueToString(t[i]);
  }
  out += ")";
  return out;
}

size_t ValueTupleHash::operator()(const ValueTuple& t) const {
  size_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](size_t x) {
    h ^= x;
    h *= 1099511628211ull;  // FNV prime
  };
  for (const Value& v : t) {
    mix(v.index());
    switch (v.index()) {
      case 0:
        mix(std::hash<int64_t>()(std::get<int64_t>(v)));
        break;
      case 1:
        mix(std::hash<double>()(std::get<double>(v)));
        break;
      case 2:
        mix(std::hash<std::string>()(std::get<std::string>(v)));
        break;
      case 3:
        mix(std::hash<bool>()(std::get<bool>(v)));
        break;
    }
  }
  return h;
}

}  // namespace nose
