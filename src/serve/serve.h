#ifndef NOSE_SERVE_SERVE_H_
#define NOSE_SERVE_SERVE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "evolve/migration_executor.h"
#include "evolve/migration_planner.h"
#include "evolve/scenario.h"
#include "executor/dataset.h"
#include "executor/plan_executor.h"
#include "rubis/datagen.h"
#include "rubis/model.h"
#include "rubis/workload.h"
#include "store/record_store.h"
#include "util/statusor.h"

namespace nose::serve {

/// Knobs of the online serving layer (`nose serve`).
struct ServeOptions {
  /// Driver worker threads replaying the statement mix concurrently.
  size_t threads = 4;
  /// Fixed logical client streams, independent of `threads` (stream s runs
  /// on worker s % threads). Each stream owns a sharded parameter
  /// generator, so cross-stream statements never write the same record and
  /// the final store state is byte-identical at ANY thread count for a
  /// given stream count.
  size_t streams = 8;
  /// Hash stripes per store column family (concurrency of the store).
  size_t store_stripes = 16;
  /// Worker threads backfilling migration chunks.
  size_t migration_threads = 2;
  /// Target aggregate transaction rate (transactions/second) the drivers
  /// pace themselves to; 0 = unpaced (as fast as possible).
  double target_rate = 0.0;
  /// Anytime-advising budget for the re-advise at each mix boundary
  /// (Advisor::Recommend(workload, mix, deadline)); 0 = unbudgeted.
  double advise_deadline_seconds = 0.0;
  /// Concurrent verification attempts before quiescing the drivers for one
  /// authoritative pass (foreground writes can race the old-generation
  /// write and its dual write, making individual mismatches transient).
  size_t verify_attempts = 8;
};

/// Latency quantiles over per-transaction simulated store milliseconds.
struct LatencyQuantiles {
  size_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Timeline of one live migration executed under load.
struct ServeMigrationRecord {
  size_t at_phase = 0;  ///< scenario phase whose boundary triggered it
  std::string to_mix;
  size_t builds = 0;
  size_t keeps = 0;
  size_t drops = 0;
  uint64_t rows_backfilled = 0;
  uint64_t catchup_updates = 0;
  uint64_t dual_writes = 0;
  uint64_t verify_queries = 0;
  /// Dirty concurrent verification passes retried before a clean one.
  uint64_t verify_retries = 0;
  /// True when the drivers had to be quiesced for the deciding pass.
  bool quiesced_verify = false;
  /// Space reclaimed by dropping the superseded generation at cutover.
  uint64_t rows_dropped = 0;
  uint64_t bytes_dropped = 0;
  /// Shared-pricing estimates (same functions the horizon planner uses).
  double est_build_cost_ms = 0.0;
  double est_drop_cost_ms = 0.0;
  double est_dual_write_cost_ms = 0.0;
  /// Simulated store milliseconds charged to migration work.
  double simulated_ms = 0.0;
  /// Wall-clock seconds from migration start to completed cutover.
  double wall_seconds = 0.0;
};

/// One deadline-bounded advising call at a mix boundary.
struct ServeAdviseRecord {
  size_t phase = 0;
  std::string mix;
  double deadline_seconds = 0.0;
  double elapsed_seconds = 0.0;
  double anytime_gap = 0.0;
  bool deadline_hit = true;
  /// The recommendation differed from the deployed schema (a migration —
  /// or for phase 0 the initial deployment — followed).
  bool schema_changed = false;
};

struct ServeReport {
  size_t threads = 0;
  size_t streams = 0;
  size_t transactions = 0;
  size_t statements = 0;
  /// Per-transaction latency, bucketed by migration state at execution
  /// time: before any migration, while one is in flight, and after the
  /// last cutover.
  LatencyQuantiles before;
  LatencyQuantiles during;
  LatencyQuantiles after;
  std::vector<ServeMigrationRecord> migrations;
  std::vector<ServeAdviseRecord> advises;
  StoreStats store;
  /// RecordStore::ContentDigest() of the final store — the byte-
  /// equivalence handle (identical at any thread count for fixed streams).
  uint64_t store_digest = 0;
  double wall_seconds = 0.0;

  std::string ToString() const;
};

/// The online serving layer: multi-threaded drivers replay a drift
/// scenario's phase mixes against the sharded concurrent store while, at
/// each mix boundary, a deadline-bounded re-advise runs and — when the
/// recommended schema changed — a migration worker executes the schema
/// change live (parallel chunked backfill, log catch-up, a locked
/// dual-write flip, verification with retries, and an epoch-barrier
/// cutover that drops the superseded column families).
///
/// Determinism: the workload is S fixed logical streams; stream s owns a
/// sharded rubis::ParamGenerator (shard s of S) and its own transaction
/// sampler, so its statement sequence is independent of the thread count,
/// and statements of different streams never write the same record. All
/// cross-stream interleavings therefore commute in the store, and the
/// final post-cutover content digest is identical at any thread count.
class ServeHarness {
 public:
  static StatusOr<std::unique_ptr<ServeHarness>> Create(
      const evolve::DriftScenario& scenario, ServeOptions options);
  ~ServeHarness();

  /// Runs every scenario phase (advise -> migrate-if-changed under load ->
  /// drive traffic) and assembles the report.
  Status Run();

  const ServeReport& report() const { return report_; }
  RecordStore* store() { return store_.get(); }
  const Workload& workload() const { return *workload_; }

 private:
  /// One schema generation, shared with driver threads: they snapshot the
  /// active generation per transaction, so a superseded generation stays
  /// alive until its last in-flight transaction finishes (the cutover's
  /// epoch barrier waits on exactly that).
  struct Generation {
    size_t serial = 0;
    Recommendation rec;
    std::unique_ptr<Schema> named;
    std::map<std::string, QueryPlan> query_plans;
    std::map<std::string, UpdatePlan> update_plans;
    std::unique_ptr<PlanExecutor> executor;
  };

  /// One logical client stream.
  struct Stream {
    std::unique_ptr<rubis::ParamGenerator> params;
    Rng mix_rng{0};
    size_t remaining = 0;  ///< transactions left in the current phase
  };

  /// (latency bucket, simulated ms) of one transaction.
  struct Sample {
    int bucket;
    double ms;
  };

  ServeHarness(evolve::DriftScenario scenario, ServeOptions options);

  StatusOr<Recommendation> AdviseForPhase(size_t phase);
  std::shared_ptr<Generation> MakeGeneration(Recommendation rec,
                                             const Schema* reuse_names_from);
  /// Advises phase `p`'s mix and either adopts the result in place (same
  /// schema) or arms a live migration toward it (started by RunPhase).
  Status PrepareBoundary(size_t phase);
  /// Drives phase `p`'s traffic on the worker threads, concurrently with
  /// any armed migration.
  Status RunPhase(size_t phase);
  void DriverLoop(size_t workers, const std::vector<size_t>& owned,
                  const std::vector<double>& cumulative, double total_weight,
                  std::vector<Sample>* samples, size_t* statements,
                  Status* status);
  Status ExecuteTransaction(Stream& stream, const rubis::Transaction& tx,
                            const std::shared_ptr<Generation>& gen,
                            size_t* statements);
  /// The migration worker: backfill -> catch-up -> locked flip ->
  /// verify (retry, then quiesce) -> swap -> epoch barrier -> drop.
  void MigrationWorker(size_t phase);
  /// Blocks until every running driver is parked at a transaction
  /// boundary; returns a guard that resumes them when destroyed.
  void QuiesceDrivers();
  void ResumeDrivers();
  void MaybePark();  ///< driver side of QuiesceDrivers

  evolve::DriftScenario scenario_;
  ServeOptions options_;

  std::unique_ptr<EntityGraph> graph_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<Advisor> advisor_;
  std::unique_ptr<RecordStore> store_;
  std::vector<Stream> streams_;

  /// Active generation; drivers copy the shared_ptr under gen_mu_ at each
  /// transaction start.
  std::mutex gen_mu_;
  std::shared_ptr<Generation> active_;
  std::shared_ptr<Generation> pending_;
  size_t next_serial_ = 0;

  /// Armed migration state (created at a boundary, executed by
  /// MigrationWorker while RunPhase drives traffic).
  std::unique_ptr<evolve::MigrationPlan> mig_plan_;
  std::unique_ptr<evolve::MigrationExecutor> migration_;
  std::thread migration_thread_;
  Status migration_status_;
  ServeMigrationRecord mig_record_;

  /// log_mu_ guards the logs and the dual-write routing decision: an
  /// update is EITHER appended before the flip (the locked final
  /// ReplayRange covers it) OR routed to OnUpdate — never both, because
  /// the append + routing check and the flip + tail replay hold the same
  /// mutex.
  std::mutex log_mu_;
  std::vector<evolve::LoggedStatement> update_log_;
  std::vector<evolve::LoggedStatement> query_log_;
  bool dual_routing_ = false;                        ///< guarded by log_mu_
  evolve::MigrationExecutor* live_migration_ = nullptr;  ///< guarded by log_mu_
  size_t migrating_from_serial_ = 0;                 ///< guarded by log_mu_

  /// Latency bucket of newly started transactions: 0 before any migration,
  /// 1 while one is in flight, 2 after the last cutover.
  std::atomic<int> bucket_{0};

  /// Quiesce barrier for the authoritative verification pass.
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;   ///< migration worker waits: all parked
  std::condition_variable resume_cv_;  ///< drivers wait: resume
  /// Written under pause_mu_; drivers read it lock-free as the fast path
  /// and re-check under the mutex before parking.
  std::atomic<bool> pause_requested_{false};
  size_t parked_ = 0;                  ///< guarded by pause_mu_
  size_t running_drivers_ = 0;         ///< guarded by pause_mu_

  ServeReport report_;
  std::vector<double> latencies_[3];  ///< per-bucket samples, merged at join
};

}  // namespace nose::serve

#endif  // NOSE_SERVE_SERVE_H_
