#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "executor/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rubis/workload.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nose::serve {

namespace {

double MixWeight(const rubis::Transaction& tx, const std::string& mix) {
  if (mix == rubis::kBrowsingMix) return tx.browsing_weight;
  return tx.bidding_weight;
}

LatencyQuantiles Quantiles(std::vector<double>& samples) {
  LatencyQuantiles q;
  q.count = samples.size();
  if (samples.empty()) return q;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double p) {
    const size_t i = std::min(
        samples.size() - 1,
        static_cast<size_t>(std::ceil(p * static_cast<double>(samples.size()))) -
            (p > 0.0 ? 1 : 0));
    return samples[i];
  };
  q.p50_ms = at(0.50);
  q.p95_ms = at(0.95);
  q.p99_ms = at(0.99);
  q.max_ms = samples.back();
  return q;
}

void PrintQuantiles(std::ostringstream& out, const char* label,
                    const LatencyQuantiles& q) {
  out << "  " << label << ": " << q.count << " txns";
  if (q.count > 0) {
    out << ", p50 " << q.p50_ms << " / p95 " << q.p95_ms << " / p99 "
        << q.p99_ms << " / max " << q.max_ms << " ms";
  }
  out << "\n";
}

}  // namespace

ServeHarness::ServeHarness(evolve::DriftScenario scenario, ServeOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {}

ServeHarness::~ServeHarness() {
  if (migration_thread_.joinable()) migration_thread_.join();
}

StatusOr<std::unique_ptr<ServeHarness>> ServeHarness::Create(
    const evolve::DriftScenario& scenario, ServeOptions options) {
  if (scenario.workload != "rubis") {
    return Status::Unimplemented("unknown scenario workload " +
                                 scenario.workload);
  }
  if (scenario.phases.empty()) {
    return Status::InvalidArgument("scenario has no phases");
  }
  if (options.threads == 0) options.threads = 1;
  if (options.streams == 0) options.streams = options.threads;
  std::unique_ptr<ServeHarness> harness(
      new ServeHarness(scenario, std::move(options)));
  auto graph = rubis::MakeGraph(rubis::ScaleFor(scenario.scale));
  if (!graph.ok()) return graph.status();
  harness->graph_ = std::move(graph).value();
  harness->data_ = std::make_unique<Dataset>(rubis::GenerateData(
      harness->graph_.get(), rubis::ScaleFor(scenario.scale), scenario.seed));
  auto workload = rubis::MakeWorkload(*harness->graph_);
  if (!workload.ok()) return workload.status();
  harness->workload_ = std::move(workload).value();
  harness->advisor_ =
      std::make_unique<Advisor>(scenario.options.advisor);
  harness->store_ = std::make_unique<RecordStore>(
      scenario.options.advisor.cost_params, harness->options_.store_stripes);
  const size_t streams = harness->options_.streams;
  harness->streams_.resize(streams);
  for (size_t s = 0; s < streams; ++s) {
    // Per-stream generators: stream s's statement sequence is a function
    // of (seed, s, stream count) only — never of the thread count.
    harness->streams_[s].params = std::make_unique<rubis::ParamGenerator>(
        harness->data_.get(), scenario.seed, s, streams);
    harness->streams_[s].mix_rng =
        Rng(scenario.seed + 0x9e3779b97f4a7c15ull * (s + 1));
  }
  harness->report_.threads = harness->options_.threads;
  harness->report_.streams = streams;
  return harness;
}

std::shared_ptr<ServeHarness::Generation> ServeHarness::MakeGeneration(
    Recommendation rec, const Schema* reuse_names_from) {
  auto gen = std::make_shared<Generation>();
  gen->serial = next_serial_++;
  gen->rec = std::move(rec);
  gen->named = std::make_unique<Schema>();
  const std::string prefix = "s" + std::to_string(gen->serial) + "_";
  const Schema& advised = gen->rec.schema;
  for (size_t i = 0; i < advised.size(); ++i) {
    const ColumnFamily& cf = advised.column_families()[i];
    const std::string* kept =
        reuse_names_from != nullptr ? reuse_names_from->NameOf(cf) : nullptr;
    // Kept column families retain their live store names; new ones get
    // generation-prefixed names so both generations coexist in one store.
    const std::string name =
        kept != nullptr
            ? *kept
            : (reuse_names_from != nullptr ? prefix : std::string()) +
                  advised.names()[i];
    gen->named->Add(cf, name, advised.PoolIdAt(i));
  }
  for (const auto& [stmt, plan] : gen->rec.query_plans) {
    gen->query_plans.emplace(stmt, plan);
  }
  for (const auto& [stmt, plan] : gen->rec.update_plans) {
    gen->update_plans.emplace(stmt, plan);
  }
  gen->executor = std::make_unique<PlanExecutor>(store_.get(), gen->named.get());
  return gen;
}

StatusOr<Recommendation> ServeHarness::AdviseForPhase(size_t phase) {
  const std::string& mix = scenario_.phases[phase].mix;
  Stopwatch watch;
  StatusOr<Recommendation> rec =
      options_.advise_deadline_seconds > 0.0
          ? advisor_->Recommend(*workload_, mix,
                                options_.advise_deadline_seconds)
          : advisor_->Recommend(*workload_, mix);
  if (!rec.ok()) return rec.status();
  ServeAdviseRecord record;
  record.phase = phase;
  record.mix = mix;
  record.deadline_seconds = options_.advise_deadline_seconds;
  record.elapsed_seconds = watch.ElapsedSeconds();
  record.anytime_gap = rec->anytime_gap;
  record.deadline_hit = rec->deadline_hit;
  report_.advises.push_back(record);
  return rec;
}

Status ServeHarness::PrepareBoundary(size_t phase) {
  NOSE_ASSIGN_OR_RETURN(Recommendation rec, AdviseForPhase(phase));
  if (phase == 0) {
    report_.advises.back().schema_changed = true;
    active_ = MakeGeneration(std::move(rec), nullptr);
    // The initial deployment is not part of the served workload: load the
    // full schema uncharged, exactly like the evolve loop's Init.
    return LoadSchema(*data_, *active_->named, store_.get());
  }

  auto next = MakeGeneration(std::move(rec), active_->named.get());
  CostModel cost(scenario_.options.advisor.cost_params);
  // Price the migration under the mix it runs beneath — the same shared
  // pricing the horizon planner and the evolve loop use.
  MigrationTraffic traffic;
  traffic.update_weight_share =
      UpdateWeightShare(*workload_, scenario_.phases[phase].mix);
  traffic.chunk_rows =
      static_cast<double>(scenario_.options.migration.chunk_rows);
  auto plan = std::make_unique<evolve::MigrationPlan>(
      evolve::PlanMigration(*active_->named, *next->named, cost, traffic));

  if (plan->empty()) {
    // Same physical schema: adopt the fresh plans in place (drivers are
    // parked between phases, so a plain swap is safe).
    std::lock_guard<std::mutex> lock(gen_mu_);
    active_ = std::move(next);
    return Status::Ok();
  }

  report_.advises.back().schema_changed = true;
  mig_record_ = ServeMigrationRecord();
  mig_record_.at_phase = phase;
  mig_record_.to_mix = scenario_.phases[phase].mix;
  mig_record_.builds = plan->build_indices.size();
  mig_record_.keeps = plan->keep_names.size();
  mig_record_.drops = plan->drop_names.size();
  mig_record_.est_build_cost_ms = plan->est_build_cost_ms;
  mig_record_.est_drop_cost_ms = plan->est_drop_cost_ms;
  mig_record_.est_dual_write_cost_ms = plan->est_dual_write_cost_ms;

  pending_ = std::move(next);
  mig_plan_ = std::move(plan);
  migration_ = std::make_unique<evolve::MigrationExecutor>(
      data_.get(), store_.get(), pending_->named.get(),
      active_->executor.get(), pending_->executor.get(), &active_->query_plans,
      &pending_->query_plans, &pending_->update_plans, mig_plan_.get(),
      scenario_.options.migration);
  NOSE_RETURN_IF_ERROR(migration_->Prepare());
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    live_migration_ = migration_.get();
    dual_routing_ = false;
    migrating_from_serial_ = active_->serial;
  }
  return Status::Ok();
}

Status ServeHarness::ExecuteTransaction(Stream& stream,
                                        const rubis::Transaction& tx,
                                        const std::shared_ptr<Generation>& gen,
                                        size_t* statements) {
  PlanExecutor::Params params;
  for (const std::string& stmt : tx.statements) {
    stream.params->AddStatementParams(*workload_->FindEntry(stmt), &params);
  }
  for (const std::string& stmt : tx.statements) {
    const WorkloadEntry* entry = workload_->FindEntry(stmt);
    if (entry->IsQuery()) {
      auto it = gen->query_plans.find(stmt);
      if (it == gen->query_plans.end()) {
        return Status::NotFound("no active plan for query " + stmt);
      }
      NOSE_RETURN_IF_ERROR(
          gen->executor->ExecuteQuery(it->second, params).status());
      std::lock_guard<std::mutex> lock(log_mu_);
      query_log_.push_back({stmt, params});
      if (query_log_.size() > scenario_.options.query_log_capacity) {
        query_log_.erase(query_log_.begin());
      }
    } else {
      auto it = gen->update_plans.find(stmt);
      if (it == gen->update_plans.end()) {
        return Status::NotFound("no active plan for update " + stmt);
      }
      NOSE_RETURN_IF_ERROR(gen->executor->ExecuteUpdate(it->second, params));
      evolve::MigrationExecutor* dual = nullptr;
      {
        // The append and the routing decision share log_mu_ with the
        // dual-write flip: every update is either in the replayed log
        // prefix or dual-written, never both (see the header).
        std::lock_guard<std::mutex> lock(log_mu_);
        update_log_.push_back({stmt, params});
        if (dual_routing_ && gen->serial == migrating_from_serial_) {
          dual = live_migration_;
        }
      }
      if (dual != nullptr) {
        NOSE_RETURN_IF_ERROR(dual->OnUpdate({stmt, params}));
      }
    }
    ++*statements;
  }
  return Status::Ok();
}

void ServeHarness::MaybePark() {
  if (!pause_requested_.load(std::memory_order_relaxed)) return;
  std::unique_lock<std::mutex> lock(pause_mu_);
  if (!pause_requested_.load(std::memory_order_relaxed)) return;
  ++parked_;
  pause_cv_.notify_all();
  resume_cv_.wait(lock, [&] {
    return !pause_requested_.load(std::memory_order_relaxed);
  });
  --parked_;
}

void ServeHarness::QuiesceDrivers() {
  std::unique_lock<std::mutex> lock(pause_mu_);
  pause_requested_.store(true, std::memory_order_relaxed);
  pause_cv_.wait(lock, [&] { return parked_ == running_drivers_; });
}

void ServeHarness::ResumeDrivers() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    pause_requested_.store(false, std::memory_order_relaxed);
  }
  resume_cv_.notify_all();
}

void ServeHarness::DriverLoop(size_t workers, const std::vector<size_t>& owned,
                              const std::vector<double>& cumulative,
                              double total_weight,
                              std::vector<Sample>* samples, size_t* statements,
                              Status* status) {
  const std::vector<rubis::Transaction>& txs = rubis::Transactions();
  const auto start = std::chrono::steady_clock::now();
  const double period_seconds =
      options_.target_rate > 0.0
          ? static_cast<double>(workers) / options_.target_rate
          : 0.0;
  size_t executed = 0;
  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (size_t s : owned) {
      Stream& stream = streams_[s];
      if (stream.remaining == 0) continue;
      work_left = true;
      MaybePark();
      if (period_seconds > 0.0) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(executed) * period_seconds)));
      }
      // Sample the transaction from the stream's own RNG: the sequence
      // depends only on the stream, not on which worker runs it.
      const double pick = stream.mix_rng.NextDouble() * total_weight;
      size_t chosen =
          std::lower_bound(cumulative.begin(), cumulative.end(), pick) -
          cumulative.begin();
      if (chosen >= txs.size()) chosen = txs.size() - 1;

      std::shared_ptr<Generation> gen;
      {
        std::lock_guard<std::mutex> lock(gen_mu_);
        gen = active_;
      }
      const int bucket = bucket_.load(std::memory_order_relaxed);
      const double before = RecordStore::ThreadChargeMs();
      Status s_txn = ExecuteTransaction(stream, txs[chosen], gen, statements);
      if (!s_txn.ok()) {
        *status = s_txn;
        return;
      }
      samples->push_back({bucket, RecordStore::ThreadChargeMs() - before});
      --stream.remaining;
      ++executed;
    }
  }
  *status = Status::Ok();
}

void ServeHarness::MigrationWorker(size_t phase) {
  obs::Span span("serve.migration", "serve");
  Stopwatch wall;
  Status status = [&]() -> Status {
    // 1. Parallel chunked backfill of the build set.
    util::ThreadPool pool(std::max<size_t>(1, options_.migration_threads));
    NOSE_RETURN_IF_ERROR(migration_->BackfillAll(&pool));

    // 2. Catch-up: replay the update log in slices copied under the lock
    // (drivers keep appending; the vector may reallocate under them).
    size_t replayed = 0;
    const size_t tail_threshold =
        std::max<size_t>(1, scenario_.options.migration.catchup_batch);
    while (true) {
      std::vector<evolve::LoggedStatement> slice;
      {
        std::lock_guard<std::mutex> lock(log_mu_);
        if (update_log_.size() - replayed <= tail_threshold) break;
        slice.assign(update_log_.begin() + static_cast<ptrdiff_t>(replayed),
                     update_log_.end());
      }
      NOSE_RETURN_IF_ERROR(migration_->ReplayRange(slice, 0, slice.size()));
      replayed += slice.size();
    }

    // 3. The flip: under log_mu_ replay the remaining tail and switch to
    // dual-write routing. Every update appended before this critical
    // section is in the replayed prefix; every one after it is OnUpdate'd.
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      NOSE_RETURN_IF_ERROR(
          migration_->ReplayRange(update_log_, replayed, update_log_.size()));
      migration_->BeginDualWrite();
      dual_routing_ = true;
    }

    // 4. Verify with retries: a mismatch can be a transient between an
    // old-generation write and its dual write landing.
    bool clean = false;
    const size_t attempts = std::max<size_t>(1, options_.verify_attempts);
    for (size_t attempt = 0; attempt < attempts && !clean; ++attempt) {
      std::vector<evolve::LoggedStatement> qlog;
      {
        std::lock_guard<std::mutex> lock(log_mu_);
        qlog = query_log_;
      }
      NOSE_ASSIGN_OR_RETURN(clean, migration_->TryVerify(qlog));
      if (!clean) {
        ++mig_record_.verify_retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (!clean) {
      // Authoritative pass with the drivers parked: no foreground write
      // can race, so a mismatch here is a real migration bug.
      QuiesceDrivers();
      mig_record_.quiesced_verify = true;
      std::vector<evolve::LoggedStatement> qlog;
      {
        std::lock_guard<std::mutex> lock(log_mu_);
        qlog = query_log_;
      }
      StatusOr<bool> quiet = migration_->TryVerify(qlog);
      ResumeDrivers();
      NOSE_ASSIGN_OR_RETURN(clean, std::move(quiet));
      if (!clean) {
        return Status::Internal("serve migration verification mismatch");
      }
    }
    migration_->MarkReadyForCutover();

    // 5. Cutover: swap the active generation, then wait out in-flight
    // transactions still holding the old one (they keep dual-writing, so
    // nothing is lost). Only then stop routing and drop the old families.
    std::shared_ptr<Generation> old;
    {
      std::lock_guard<std::mutex> lock(gen_mu_);
      old = active_;
      active_ = std::move(pending_);
    }
    while (old.use_count() > 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      dual_routing_ = false;
      live_migration_ = nullptr;
    }
    migration_->FinishCutover();

    const StoreStats before_drop = store_->stats();
    for (const std::string& name : mig_plan_->drop_names) {
      NOSE_RETURN_IF_ERROR(store_->DropColumnFamily(name));
    }
    const StoreStats after_drop = store_->stats();
    mig_record_.rows_dropped =
        after_drop.rows_dropped - before_drop.rows_dropped;
    mig_record_.bytes_dropped =
        after_drop.bytes_dropped - before_drop.bytes_dropped;
    bucket_.store(2, std::memory_order_relaxed);
    return Status::Ok();
  }();

  if (!status.ok()) {
    // Stop routing so drivers do not keep feeding a dead migration.
    std::lock_guard<std::mutex> lock(log_mu_);
    dual_routing_ = false;
    live_migration_ = nullptr;
  }
  const evolve::MigrationProgress prog = migration_->progress();
  mig_record_.rows_backfilled = prog.rows_backfilled;
  mig_record_.catchup_updates = prog.catchup_updates;
  mig_record_.dual_writes = prog.dual_writes;
  mig_record_.verify_queries = prog.verify_queries;
  mig_record_.simulated_ms = prog.simulated_ms;
  mig_record_.wall_seconds = wall.ElapsedSeconds();
  migration_status_ = status;
  (void)phase;
}

Status ServeHarness::RunPhase(size_t phase) {
  const evolve::DriftPhase& drift_phase = scenario_.phases[phase];
  const std::vector<rubis::Transaction>& txs = rubis::Transactions();
  std::vector<double> cumulative;
  cumulative.reserve(txs.size());
  double total = 0.0;
  for (const rubis::Transaction& tx : txs) {
    total += MixWeight(tx, drift_phase.mix);
    cumulative.push_back(total);
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("mix " + drift_phase.mix +
                                   " weights no transaction");
  }

  // Deal this phase's transactions across the fixed streams.
  const size_t streams = streams_.size();
  for (size_t s = 0; s < streams; ++s) {
    streams_[s].remaining = drift_phase.transactions / streams +
                            (s < drift_phase.transactions % streams ? 1 : 0);
  }

  const bool migrating = migration_ != nullptr;
  if (migrating) {
    bucket_.store(1, std::memory_order_relaxed);
    migration_thread_ = std::thread(&ServeHarness::MigrationWorker, this, phase);
  }

  const size_t workers = std::min(options_.threads, std::max<size_t>(1, streams));
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    running_drivers_ = workers;
  }
  std::vector<std::thread> threads;
  std::vector<std::vector<Sample>> samples(workers);
  std::vector<size_t> statements(workers, 0);
  std::vector<Status> statuses(workers, Status::Ok());
  for (size_t w = 0; w < workers; ++w) {
    std::vector<size_t> owned;
    for (size_t s = w; s < streams; s += workers) owned.push_back(s);
    threads.emplace_back([this, w, workers, owned = std::move(owned),
                          &cumulative, total, &samples, &statements,
                          &statuses] {
      DriverLoop(workers, owned, cumulative, total, &samples[w],
                 &statements[w], &statuses[w]);
      std::lock_guard<std::mutex> lock(pause_mu_);
      --running_drivers_;
      pause_cv_.notify_all();
    });
  }
  for (std::thread& t : threads) t.join();
  if (migration_thread_.joinable()) migration_thread_.join();

  static const char* kBucketHistograms[3] = {"serve.txn_before_ms",
                                             "serve.txn_during_ms",
                                             "serve.txn_after_ms"};
  for (size_t w = 0; w < workers; ++w) {
    NOSE_RETURN_IF_ERROR(statuses[w]);
    report_.statements += statements[w];
    for (const Sample& sample : samples[w]) {
      latencies_[sample.bucket].push_back(sample.ms);
      obs::MetricsRegistry::Global()
          .GetHistogram(kBucketHistograms[sample.bucket])
          .Observe(sample.ms);
    }
  }
  report_.transactions += drift_phase.transactions;

  if (migrating) {
    NOSE_RETURN_IF_ERROR(migration_status_);
    report_.migrations.push_back(mig_record_);
    migration_.reset();
    mig_plan_.reset();
    obs::MetricsRegistry::Global()
        .GetCounter("serve.migrations_completed")
        .Increment();
  }
  return Status::Ok();
}

Status ServeHarness::Run() {
  obs::Span span("serve.run", "serve");
  Stopwatch wall;
  for (size_t p = 0; p < scenario_.phases.size(); ++p) {
    NOSE_RETURN_IF_ERROR(PrepareBoundary(p));
    NOSE_RETURN_IF_ERROR(RunPhase(p));
  }
  report_.before = Quantiles(latencies_[0]);
  report_.during = Quantiles(latencies_[1]);
  report_.after = Quantiles(latencies_[2]);
  report_.store = store_->stats();
  report_.store_digest = store_->ContentDigest();
  report_.wall_seconds = wall.ElapsedSeconds();
  return Status::Ok();
}

std::string ServeReport::ToString() const {
  std::ostringstream out;
  out << "serve: " << transactions << " transactions / " << statements
      << " statements on " << threads << " threads (" << streams
      << " streams), " << wall_seconds << " s wall\n";
  out << "latency (simulated ms per transaction):\n";
  PrintQuantiles(out, "before migration", before);
  PrintQuantiles(out, "during migration", during);
  PrintQuantiles(out, "after cutover   ", after);
  out << "advises: " << advises.size() << "\n";
  for (const ServeAdviseRecord& a : advises) {
    out << "  phase " << a.phase << " mix " << a.mix << ": "
        << a.elapsed_seconds * 1e3 << " ms";
    if (a.deadline_seconds > 0.0) {
      out << " (deadline " << a.deadline_seconds * 1e3 << " ms "
          << (a.deadline_hit ? "HIT" : "MISSED") << ", anytime gap "
          << a.anytime_gap << ")";
    }
    out << (a.schema_changed ? ", schema changed" : ", schema kept") << "\n";
  }
  out << "migrations: " << migrations.size() << "\n";
  for (size_t i = 0; i < migrations.size(); ++i) {
    const ServeMigrationRecord& m = migrations[i];
    out << "  [" << i << "] phase " << m.at_phase << " -> " << m.to_mix
        << ": " << m.builds << " build / " << m.keeps << " keep / " << m.drops
        << " drop, backfilled " << m.rows_backfilled << " rows, caught up "
        << m.catchup_updates << " updates, " << m.dual_writes
        << " dual writes, verified " << m.verify_queries << " queries ("
        << m.verify_retries << " retries"
        << (m.quiesced_verify ? ", quiesced" : "") << "), reclaimed "
        << m.rows_dropped << " rows / " << m.bytes_dropped << " bytes, est "
        << m.est_build_cost_ms + m.est_drop_cost_ms + m.est_dual_write_cost_ms
        << " ms, actual " << m.simulated_ms << " ms, " << m.wall_seconds
        << " s wall\n";
  }
  out << "store: " << store.gets << " gets / " << store.puts << " puts / "
      << store.deletes << " deletes, " << store.simulated_ms
      << " simulated ms, digest " << store_digest << "\n";
  return out.str();
}

}  // namespace nose::serve
