// The NoSE command-line tool: the schema advisor as the paper envisions it
// being used — point it at a conceptual model and a workload, get back a
// schema and per-statement implementation plans.
//
//   nose advise --model hotel.model --workload hotel.workload
//        [--mix NAME] [--space-limit-mb N] [--format text|cql]
//        [--strategy auto|bip|comb] [--solve-budget SECONDS] [--verify]
//        [--threads N] [--trace FILE] [--metrics FILE]
//   nose check  --model hotel.model --workload hotel.workload
//        [--mix NAME] [--certificate FILE] [--solve-budget SECONDS]
//        [--threads N]
//   nose check  --verify-certificate FILE
//   nose lint   --model hotel.model --workload hotel.workload
//
// File formats: the entity-graph DSL (see ParseModel) and the ';'-separated
// workload statement language (see ParseWorkload).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "advisor/advisor.h"
#include "analysis/certify.h"
#include "analysis/invariants.h"
#include "analysis/lint.h"
#include "evolve/driver.h"
#include "solver/certificate.h"
#include "evolve/scenario.h"
#include "export/cql.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"
#include "serve/serve.h"
#include "solver/solve_log.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  nose advise --model FILE --workload FILE [options]\n"
               "  nose check  --model FILE --workload FILE [options]\n"
               "  nose check  --verify-certificate FILE\n"
               "  nose lint   --model FILE --workload FILE\n"
               "  nose evolve --scenario FILE [--horizon] [--report FILE]\n"
               "  nose serve  --scenario FILE [--threads N] [--rate TPS]\n"
               "  nose explain SOLVE_LOG\n"
               "common options (advise, check, evolve):\n"
               "  --solve-log FILE      record per-LP and branch-and-bound\n"
               "                        telemetry and write it as JSONL "
               "(inspect\n"
               "                        with 'nose explain FILE')\n"
               "  --report-json FILE    write a machine-readable run report\n"
               "                        (phase timings, solver stats, metrics\n"
               "                        snapshot, recommendation digest)\n"
               "  --metrics-format FMT  json (default) or prom (OpenMetrics "
               "text)\n"
               "                        for the --metrics snapshot\n"
               "options (check):\n"
               "  --mix NAME            workload mix to check "
               "(default: 'default')\n"
               "  --certificate FILE    write the solve certificate for an\n"
               "                        independent re-verification\n"
               "  --verify-certificate FILE  re-verify a written certificate "
               "in exact\n"
               "                        arithmetic (no model/workload needed)\n"
               "  --solve-budget SECS   time budget for the solver\n"
               "  --threads N           worker threads for the advisor "
               "pipeline\n"
               "options (evolve):\n"
               "  --scenario FILE       drift scenario (see "
               "workloads/rubis_drift.scenario)\n"
               "  --horizon             plan the whole horizon up front "
               "(multi-period\n"
               "                        BIP; migrate at planned phase "
               "boundaries instead\n"
               "                        of on drift triggers; same as "
               "'mode planned')\n"
               "  --report FILE         write a JSON migration report\n"
               "options (serve):\n"
               "  --scenario FILE       drift scenario to replay concurrently\n"
               "  --threads N           driver worker threads (default 4)\n"
               "  --streams N           fixed logical client streams "
               "(default 8;\n"
               "                        final store content is identical at "
               "any\n"
               "                        thread count for a given stream "
               "count)\n"
               "  --rate TPS            target aggregate transactions/second\n"
               "                        (default: unpaced)\n"
               "  --stripes N           store hash stripes per column family\n"
               "  --migration-threads N backfill workers for live migrations\n"
               "  --advise-deadline SECS  anytime budget for each boundary\n"
               "                        re-advise (0 = unbudgeted)\n"
               "options (advise):\n"
               "  --mix NAME            workload mix to advise for "
               "(default: 'default')\n"
               "  --all-mixes           advise every mix, sharing the "
               "candidate pool\n"
               "                        and plan spaces across mixes with "
               "the same\n"
               "                        statement set (same output as "
               "per-mix runs)\n"
               "  --space-limit-mb N    storage budget in megabytes\n"
               "  --format text|cql     output format (default text)\n"
               "  --strategy auto|bip|comb  candidate-selection solver\n"
               "  --lp-engine factorized|sparse|dense\n"
               "                        LP relaxation engine (default "
               "factorized:\n"
               "                        LU-factorized revised simplex; the "
               "tableau\n"
               "                        engines are agreement baselines — "
               "all three\n"
               "                        return the same optima)\n"
               "  --solve-budget SECS   time budget for the solver\n"
               "  --threads N           worker threads for the advisor "
               "pipeline\n"
               "                        (default: hardware cores; same "
               "recommendation\n"
               "                        at any value)\n"
               "  --verify              audit the recommendation against the\n"
               "                        workload invariants before printing\n"
               "  --trace FILE          write a Chrome trace_event JSON "
               "timeline\n"
               "                        (chrome://tracing / Perfetto; env "
               "NOSE_TRACE\n"
               "                        is the fallback when the flag is "
               "absent)\n"
               "  --metrics FILE        write a JSON snapshot of pipeline "
               "counters\n");
  return 2;
}

nose::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return nose::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses "--flag value" / bare boolean "--flag" argument lists against the
/// command's allowed flag sets. Rejects unknown flags and value flags with
/// a missing value instead of silently dropping them.
bool ParseArgs(int argc, char** argv, int start,
               const std::set<std::string>& value_flags,
               const std::set<std::string>& bool_flags,
               std::map<std::string, std::string>* args) {
  for (int i = start; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: expected a --flag, got '%s'\n",
                   flag.c_str());
      return false;
    }
    if (bool_flags.count(flag) > 0) {
      (*args)[flag] = "true";
      continue;
    }
    if (value_flags.count(flag) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      return false;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag '%s' needs a value\n", flag.c_str());
      return false;
    }
    (*args)[flag] = argv[++i];
  }
  return true;
}

/// Parses a strictly positive double flag value; nullopt-style failure
/// reports through the return code.
bool ParsePositiveDouble(const std::string& flag, const std::string& text,
                         double* out) {
  try {
    size_t used = 0;
    *out = std::stod(text, &used);
    if (used != text.size() || !(*out > 0.0)) throw std::invalid_argument(text);
  } catch (...) {
    std::fprintf(stderr, "error: flag '%s' needs a positive number, got '%s'\n",
                 flag.c_str(), text.c_str());
    return false;
  }
  return true;
}

/// Validates --metrics-format (defaulting to "json" when absent).
bool MetricsFormat(std::map<std::string, std::string>& args,
                   std::string* format) {
  *format = args.count("--metrics-format") > 0 ? args["--metrics-format"]
                                               : "json";
  if (*format != "json" && *format != "prom") {
    std::fprintf(stderr, "error: unknown metrics format '%s' (json|prom)\n",
                 format->c_str());
    return false;
  }
  return true;
}

/// Writes the metrics snapshot in the requested format.
bool WriteMetricsSnapshot(const std::string& path, const std::string& format) {
  std::string error;
  const bool ok =
      format == "prom"
          ? nose::obs::MetricsRegistry::Global().WriteOpenMetrics(path, &error)
          : nose::obs::MetricsRegistry::Global().WriteJson(path, &error);
  if (!ok) {
    std::fprintf(stderr, "error: cannot write metrics: %s\n", error.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote metrics to %s\n", path.c_str());
  return true;
}

/// Exports the solver telemetry JSONL when --solve-log was given (the log
/// itself was enabled before the run).
bool WriteSolveLogIfRequested(std::map<std::string, std::string>& args) {
  if (args.count("--solve-log") == 0) return true;
  std::string error;
  if (!nose::SolveLog::Global().WriteJsonl(args["--solve-log"], &error)) {
    std::fprintf(stderr, "error: cannot write solve log: %s\n", error.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote solve log to %s\n", args["--solve-log"].c_str());
  return true;
}

/// Writes the evolve report as JSON (hand-rolled like the metrics export;
/// all fields are counts or finite doubles). In planned mode the report
/// carries the horizon schedule's objectives next to the realized store
/// cost so the planned-vs-reactive comparison reads straight off the file.
bool WriteEvolveReport(const std::string& path,
                       nose::evolve::DriftRunner& runner) {
  const nose::evolve::EvolveReport& report = runner.report();
  const nose::HorizonPlan* plan = runner.horizon_plan();
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n"
      << "  \"mode\": \"" << (plan != nullptr ? "planned" : "reactive")
      << "\",\n"
      << "  \"transactions\": " << report.transactions << ",\n"
      << "  \"statements\": " << report.statements << ",\n"
      << "  \"re_advises_incremental\": " << report.re_advises_incremental
      << ",\n"
      << "  \"re_advises_cold\": " << report.re_advises_cold << ",\n"
      << "  \"no_op_readvises\": " << report.no_op_readvises << ",\n"
      << "  \"last_drift\": " << report.last_drift << ",\n"
      << "  \"invariant_violations\": " << report.invariant_violations << ",\n"
      << "  \"realized_store_ms\": "
      << runner.controller().store()->stats().simulated_ms << ",\n"
      << "  \"forecast_residual\": "
      << runner.controller().tracker().forecast_residual() << ",\n";
  if (plan != nullptr) {
    out << "  \"planned_execution_objective\": " << plan->execution_objective
        << ",\n"
        << "  \"planned_migration_objective\": " << plan->migration_objective
        << ",\n"
        << "  \"planned_total_objective\": " << plan->total_objective << ",\n"
        << "  \"planned_windows\": " << plan->windows.size() << ",\n"
        << "  \"planned_transitions\": [";
    for (size_t i = 0; i < plan->transitions.size(); ++i) {
      const nose::HorizonTransition& t = plan->transitions[i];
      out << (i > 0 ? ", " : "") << "{\"at_window\": " << t.at_window
          << ", \"builds\": " << t.builds.size()
          << ", \"drops\": " << t.drops.size()
          << ", \"build_cost_ms\": " << t.build_cost_ms << "}";
    }
    out << "],\n";
  }
  out << "  \"migrations\": [\n";
  for (size_t i = 0; i < report.migrations.size(); ++i) {
    const nose::evolve::MigrationRecord& m = report.migrations[i];
    out << "    {\"started_at\": " << m.started_at_transaction
        << ", \"finished_at\": " << m.finished_at_transaction
        << ", \"builds\": " << m.builds << ", \"keeps\": " << m.keeps
        << ", \"drops\": " << m.drops
        << ", \"rows_backfilled\": " << m.rows_backfilled
        << ", \"catchup_updates\": " << m.catchup_updates
        << ", \"dual_writes\": " << m.dual_writes
        << ", \"verify_queries\": " << m.verify_queries
        << ", \"verify_mismatches\": " << m.verify_mismatches
        << ", \"est_build_cost_ms\": " << m.est_build_cost_ms
        << ", \"actual_ms\": " << m.actual_ms
        << ", \"advise_incremental\": "
        << (m.advise_incremental ? "true" : "false")
        << ", \"advise_seconds\": " << m.advise_seconds
        << ", \"drift_at_trigger\": " << m.drift_at_trigger
        << ", \"planned\": " << (m.planned ? "true" : "false")
        << ", \"to_window\": " << m.to_window
        << ", \"aborted\": " << (m.aborted ? "true" : "false") << "}"
        << (i + 1 < report.migrations.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

int RunEvolve(std::map<std::string, std::string>& args) {
  if (args.count("--scenario") == 0) return Usage();
  std::string metrics_format;
  if (!MetricsFormat(args, &metrics_format)) return Usage();
  std::string trace_path;
  if (args.count("--trace") > 0) {
    trace_path = args["--trace"];
  } else if (const char* env = std::getenv("NOSE_TRACE")) {
    trace_path = env;
  }
  if (!trace_path.empty()) {
    nose::obs::TraceRecorder::Global().Enable();
    nose::obs::TraceRecorder::EnableCrashFlush(trace_path);
    nose::obs::SetCurrentThreadName("main");
  }
  if (args.count("--solve-log") > 0) nose::SolveLog::Global().Enable();

  auto scenario = nose::evolve::LoadScenarioFile(args["--scenario"]);
  if (!scenario.ok()) {
    std::cerr << "scenario error: " << scenario.status() << "\n";
    return 1;
  }
  if (args.count("--horizon") > 0) scenario->planned = true;
  auto runner = nose::evolve::DriftRunner::Create(*scenario);
  if (!runner.ok()) {
    std::cerr << "evolve error: " << runner.status() << "\n";
    return 1;
  }
  nose::Status run = (*runner)->Run();
  const nose::evolve::EvolveReport& report = (*runner)->report();
  if ((*runner)->horizon_plan() != nullptr) {
    // The planned schedule first: which boundaries the optimizer chose to
    // migrate at, and what it expects that to cost.
    std::cout << (*runner)->horizon_plan()->ToString();
  }
  std::cout << report.ToString();
  if (!run.ok()) {
    std::cerr << "evolve error: " << run << "\n";
  }

  if (!trace_path.empty()) {
    nose::obs::TraceRecorder::Global().Disable();
    std::string error;
    if (!nose::obs::TraceRecorder::Global().WriteChromeJson(trace_path,
                                                            &error)) {
      std::fprintf(stderr, "error: cannot write trace: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
  }
  if (args.count("--metrics") > 0 &&
      !WriteMetricsSnapshot(args["--metrics"], metrics_format)) {
    return 1;
  }
  if (!WriteSolveLogIfRequested(args)) return 1;
  if (args.count("--report") > 0) {
    if (!WriteEvolveReport(args["--report"], **runner)) {
      std::fprintf(stderr, "error: cannot write report to %s\n",
                   args["--report"].c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote report to %s\n", args["--report"].c_str());
  }
  if (args.count("--report-json") > 0) {
    nose::obs::RunReport run_report("evolve");
    run_report.AddString("scenario", args["--scenario"]);
    run_report.AddString("mode",
                         (*runner)->horizon_plan() != nullptr ? "planned"
                                                              : "reactive");
    run_report.AddNumber("transactions",
                         static_cast<double>(report.transactions));
    run_report.AddNumber("statements", static_cast<double>(report.statements));
    run_report.AddNumber(
        "re_advises_incremental",
        static_cast<double>(report.re_advises_incremental));
    run_report.AddNumber("re_advises_cold",
                         static_cast<double>(report.re_advises_cold));
    run_report.AddNumber("migrations",
                         static_cast<double>(report.migrations.size()));
    run_report.AddNumber("invariant_violations",
                         static_cast<double>(report.invariant_violations));
    // The tracker's one-step-ahead forecast error: the re-planning trigger
    // signal, surfaced here so planned-mode runs can be judged on it.
    run_report.AddNumber(
        "forecast_residual",
        (*runner)->controller().tracker().forecast_residual());
    run_report.AddNumber(
        "realized_store_ms",
        (*runner)->controller().store()->stats().simulated_ms);
    double advise_seconds = 0.0;
    for (const auto& m : report.migrations) advise_seconds += m.advise_seconds;
    run_report.AddPhase("advise", advise_seconds);
    run_report.SetSolverSummary(nose::SolveLog::Global().SummaryJson());
    run_report.SetMetrics(nose::obs::MetricsRegistry::Global().ToJson());
    std::string error;
    if (!run_report.WriteJson(args["--report-json"], &error)) {
      std::fprintf(stderr, "error: cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote report to %s\n", args["--report-json"].c_str());
  }

  size_t mismatches = 0, aborted = 0;
  for (const auto& m : report.migrations) {
    mismatches += m.verify_mismatches;
    if (m.aborted) ++aborted;
  }
  if (!run.ok() || report.invariant_violations > 0 || mismatches > 0 ||
      aborted > 0) {
    std::fprintf(stderr,
                 "evolve FAILED: %zu invariant violation(s), %zu verify "
                 "mismatch(es), %zu aborted migration(s)\n",
                 report.invariant_violations, mismatches, aborted);
    return 1;
  }
  return 0;
}

int RunServe(std::map<std::string, std::string>& args) {
  if (args.count("--scenario") == 0) return Usage();
  std::string metrics_format;
  if (!MetricsFormat(args, &metrics_format)) return Usage();
  std::string trace_path;
  if (args.count("--trace") > 0) {
    trace_path = args["--trace"];
  } else if (const char* env = std::getenv("NOSE_TRACE")) {
    trace_path = env;
  }
  if (!trace_path.empty()) {
    nose::obs::TraceRecorder::Global().Enable();
    nose::obs::TraceRecorder::EnableCrashFlush(trace_path);
    nose::obs::SetCurrentThreadName("main");
  }
  if (args.count("--solve-log") > 0) nose::SolveLog::Global().Enable();

  auto scenario = nose::evolve::LoadScenarioFile(args["--scenario"]);
  if (!scenario.ok()) {
    std::cerr << "scenario error: " << scenario.status() << "\n";
    return 1;
  }
  nose::serve::ServeOptions options;
  if (args.count("--threads") > 0) {
    options.threads = static_cast<size_t>(std::stoul(args["--threads"]));
  }
  if (args.count("--streams") > 0) {
    options.streams = static_cast<size_t>(std::stoul(args["--streams"]));
  }
  if (args.count("--stripes") > 0) {
    options.store_stripes = static_cast<size_t>(std::stoul(args["--stripes"]));
  }
  if (args.count("--migration-threads") > 0) {
    options.migration_threads =
        static_cast<size_t>(std::stoul(args["--migration-threads"]));
  }
  if (args.count("--rate") > 0) {
    options.target_rate = std::stod(args["--rate"]);
  }
  if (args.count("--advise-deadline") > 0) {
    options.advise_deadline_seconds = std::stod(args["--advise-deadline"]);
  }

  auto harness = nose::serve::ServeHarness::Create(*scenario, options);
  if (!harness.ok()) {
    std::cerr << "serve error: " << harness.status() << "\n";
    return 1;
  }
  nose::Status run = (*harness)->Run();
  const nose::serve::ServeReport& report = (*harness)->report();
  std::cout << report.ToString();
  if (!run.ok()) {
    std::cerr << "serve error: " << run << "\n";
  }

  if (!trace_path.empty()) {
    nose::obs::TraceRecorder::Global().Disable();
    std::string error;
    if (!nose::obs::TraceRecorder::Global().WriteChromeJson(trace_path,
                                                            &error)) {
      std::fprintf(stderr, "error: cannot write trace: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
  }
  if (args.count("--metrics") > 0 &&
      !WriteMetricsSnapshot(args["--metrics"], metrics_format)) {
    return 1;
  }
  if (!WriteSolveLogIfRequested(args)) return 1;
  if (args.count("--report-json") > 0) {
    nose::obs::RunReport run_report("serve");
    run_report.AddString("scenario", args["--scenario"]);
    run_report.AddNumber("threads", static_cast<double>(report.threads));
    run_report.AddNumber("streams", static_cast<double>(report.streams));
    run_report.AddNumber("transactions",
                         static_cast<double>(report.transactions));
    run_report.AddNumber("statements", static_cast<double>(report.statements));
    run_report.AddNumber("migrations",
                         static_cast<double>(report.migrations.size()));
    run_report.AddNumber("p50_before_ms", report.before.p50_ms);
    run_report.AddNumber("p95_before_ms", report.before.p95_ms);
    run_report.AddNumber("p99_before_ms", report.before.p99_ms);
    run_report.AddNumber("p50_during_ms", report.during.p50_ms);
    run_report.AddNumber("p95_during_ms", report.during.p95_ms);
    run_report.AddNumber("p99_during_ms", report.during.p99_ms);
    run_report.AddNumber("p50_after_ms", report.after.p50_ms);
    run_report.AddNumber("p95_after_ms", report.after.p95_ms);
    run_report.AddNumber("p99_after_ms", report.after.p99_ms);
    size_t deadline_misses = 0;
    for (const auto& a : report.advises) {
      if (!a.deadline_hit) ++deadline_misses;
    }
    run_report.AddNumber("advises", static_cast<double>(report.advises.size()));
    run_report.AddNumber("advise_deadline_misses",
                         static_cast<double>(deadline_misses));
    uint64_t rows_dropped = 0, retries = 0;
    double wall = 0.0;
    for (const auto& m : report.migrations) {
      rows_dropped += m.rows_dropped;
      retries += m.verify_retries;
      wall += m.wall_seconds;
    }
    run_report.AddNumber("migration_rows_dropped",
                         static_cast<double>(rows_dropped));
    run_report.AddNumber("migration_verify_retries",
                         static_cast<double>(retries));
    run_report.AddPhase("migrate", wall);
    run_report.AddNumber("realized_store_ms", report.store.simulated_ms);
    run_report.SetDigest("{\"store_digest\":\"" +
                         std::to_string(report.store_digest) + "\"}");
    run_report.SetSolverSummary(nose::SolveLog::Global().SummaryJson());
    run_report.SetMetrics(nose::obs::MetricsRegistry::Global().ToJson());
    std::string error;
    if (!run_report.WriteJson(args["--report-json"], &error)) {
      std::fprintf(stderr, "error: cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote report to %s\n", args["--report-json"].c_str());
  }
  return run.ok() ? 0 : 1;
}

/// Prints the checker's verdict on one certificate.
void PrintCertificateReport(const std::string& label,
                            const nose::CertificateReport& report) {
  std::cout << nose::FormatDiagnostics(report.diagnostics);
  if (!report.verified) {
    std::printf("certificate %s: REJECTED\n", label.c_str());
    return;
  }
  std::printf("certificate %s: VERIFIED (exact objective %.10g", label.c_str(),
              report.exact_objective);
  if (report.bound_available) {
    std::printf(", certified bound %.10g, gap %.3g", report.dual_bound,
                report.certified_gap);
  }
  std::printf(")\n");
}

/// `nose check --verify-certificate FILE`: re-verify a serialized
/// certificate in exact arithmetic with no model or workload in sight —
/// the CI gate for solver changes.
int VerifyCertificateFile(const std::string& path) {
  auto cert = nose::ReadCertificate(path);
  if (!cert.ok()) {
    std::fprintf(stderr, "%s: error: %s [NOSE-C001]\n", path.c_str(),
                 cert.status().message().c_str());
    return 1;
  }
  nose::CertificateReport report = nose::CheckCertificate(*cert);
  PrintCertificateReport(
      cert->instance.empty() ? path : path + " (" + cert->instance + ")",
      report);
  return report.verified ? 0 : 1;
}

/// `nose check --model --workload`: the full static gate. Lint has already
/// run (error findings refuse earlier); this advises with the BIP strategy
/// under certificate capture, audits the recommendation invariants, runs
/// the NOSE-S anti-pattern analyses, and verifies the certificate with
/// exact arithmetic. Exit 1 on any error-severity finding or an unverified
/// certificate.
int RunCheck(std::map<std::string, std::string>& args,
             const nose::Workload& workload,
             std::vector<nose::Diagnostic> diags) {
  nose::AdvisorOptions options;
  // Certificates describe a BIP solve; force that strategy so every check
  // produces one.
  options.optimizer.strategy = nose::SolveStrategy::kBip;
  options.analyze_antipatterns = true;
  options.verify_invariants = false;  // audited below without aborting
  if (args.count("--solve-budget") > 0) {
    double secs = 0.0;
    if (!ParsePositiveDouble("--solve-budget", args["--solve-budget"],
                             &secs)) {
      return Usage();
    }
    options.optimizer.bip.time_limit_seconds = secs;
  }
  if (args.count("--threads") > 0) {
    double n = 0.0;
    if (!ParsePositiveDouble("--threads", args["--threads"], &n) ||
        n != static_cast<size_t>(n)) {
      std::fprintf(stderr, "error: --threads wants a positive integer\n");
      return Usage();
    }
    options.num_threads = static_cast<size_t>(n);
  }
  const std::string mix = args.count("--mix") > 0
                              ? args["--mix"]
                              : std::string(nose::Workload::kDefaultMix);
  const std::vector<std::string> mixes = workload.MixNames();
  if (std::find(mixes.begin(), mixes.end(), mix) == mixes.end()) {
    std::fprintf(stderr, "error: workload has no mix '%s'\n", mix.c_str());
    return 1;
  }

  nose::SolveCertificate cert;
  cert.instance = args["--workload"] + ":" + mix;
  options.optimizer.capture_certificate = &cert;
  nose::Advisor advisor(options);
  auto rec = advisor.Recommend(workload, mix);
  if (!rec.ok()) {
    std::cerr << "advisor error: " << rec.status() << "\n";
    return 1;
  }

  // Advisor findings (NOSE-W006, NOSE-S001..S005) and the invariant audit
  // (NOSE-I001..) join the lint findings in one report.
  diags.insert(diags.end(), rec->diagnostics.begin(), rec->diagnostics.end());
  nose::RecommendationView view{&rec->schema, &rec->query_plans,
                                &rec->update_plans, rec->objective,
                                rec->solve_proven};
  std::vector<nose::Diagnostic> audit =
      nose::AuditRecommendation(workload, mix, view);
  diags.insert(diags.end(), audit.begin(), audit.end());
  std::cout << nose::FormatDiagnostics(diags);

  nose::CertificateReport report = nose::CheckCertificate(cert);
  PrintCertificateReport(cert.instance, report);
  if (args.count("--certificate") > 0) {
    nose::Status written = nose::WriteCertificate(cert, args["--certificate"]);
    if (!written.ok()) {
      std::cerr << "certificate error: " << written << "\n";
      return 1;
    }
    std::fprintf(stderr, "wrote certificate to %s\n",
                 args["--certificate"].c_str());
  }

  const size_t errors = nose::CountSeverity(diags, nose::Severity::kError);
  std::printf(
      "check %s: %zu error(s), %zu warning(s), %zu note(s); schema %zu "
      "column families, cost %.6g\n",
      cert.instance.c_str(), errors,
      nose::CountSeverity(diags, nose::Severity::kWarning),
      nose::CountSeverity(diags, nose::Severity::kNote), rec->schema.size(),
      rec->objective);
  if (args.count("--report-json") > 0) {
    nose::obs::RunReport run_report("check");
    run_report.AddString("instance", cert.instance);
    run_report.AddNumber("errors", static_cast<double>(errors));
    run_report.AddNumber(
        "warnings",
        static_cast<double>(
            nose::CountSeverity(diags, nose::Severity::kWarning)));
    run_report.AddPhase("enumeration", rec->timing.enumeration_seconds);
    run_report.AddPhase("cost_calculation",
                        rec->timing.cost_calculation_seconds);
    run_report.AddPhase("bip_construction",
                        rec->timing.bip_construction_seconds);
    run_report.AddPhase("bip_solve", rec->timing.bip_solve_seconds);
    run_report.AddPhase("total", rec->timing.total_seconds);
    char digest[256];
    std::snprintf(digest, sizeof(digest),
                  "{\"objective\":%.9g,\"column_families\":%zu,"
                  "\"certificate_verified\":%s,\"certified_gap\":%.9g}",
                  rec->objective, rec->schema.size(),
                  report.verified ? "true" : "false",
                  report.bound_available ? report.certified_gap : 0.0);
    run_report.SetDigest(digest);
    run_report.SetSolverSummary(nose::SolveLog::Global().SummaryJson());
    run_report.SetMetrics(nose::obs::MetricsRegistry::Global().ToJson());
    std::string error;
    if (!run_report.WriteJson(args["--report-json"], &error)) {
      std::fprintf(stderr, "error: cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote report to %s\n", args["--report-json"].c_str());
  }
  return (errors > 0 || !report.verified) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command != "advise" && command != "check" && command != "lint" &&
      command != "evolve" && command != "serve" && command != "explain") {
    return Usage();
  }

  // `nose explain SOLVE_LOG`: offline diagnosis of a --solve-log capture.
  if (command == "explain") {
    if (argc != 3 || argv[2][0] == '-') return Usage();
    nose::SolveLogData data;
    std::string error;
    if (!nose::ReadSolveLog(argv[2], &data, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::cout << nose::ExplainSolveLog(data);
    return 0;
  }

  if (command == "evolve") {
    std::map<std::string, std::string> args;
    if (!ParseArgs(argc, argv, 2,
                   {"--scenario", "--report", "--trace", "--metrics",
                    "--metrics-format", "--solve-log", "--report-json"},
                   {"--horizon"}, &args)) {
      return Usage();
    }
    return RunEvolve(args);
  }

  if (command == "serve") {
    std::map<std::string, std::string> args;
    if (!ParseArgs(argc, argv, 2,
                   {"--scenario", "--threads", "--streams", "--stripes",
                    "--migration-threads", "--rate", "--advise-deadline",
                    "--trace", "--metrics", "--metrics-format", "--solve-log",
                    "--report-json"},
                   {}, &args)) {
      return Usage();
    }
    return RunServe(args);
  }

  std::set<std::string> value_flags = {"--model", "--workload"};
  std::set<std::string> bool_flags;
  if (command == "advise") {
    value_flags.insert({"--mix", "--space-limit-mb", "--format", "--strategy",
                        "--lp-engine", "--solve-budget", "--threads", "--trace",
                        "--metrics", "--metrics-format", "--solve-log",
                        "--report-json"});
    bool_flags.insert({"--verify", "--all-mixes"});
  }
  if (command == "check") {
    value_flags.insert({"--mix", "--certificate", "--verify-certificate",
                        "--solve-budget", "--threads", "--solve-log",
                        "--report-json"});
  }
  std::map<std::string, std::string> args;
  if (!ParseArgs(argc, argv, 2, value_flags, bool_flags, &args)) {
    return Usage();
  }
  // Standalone certificate verification needs no model or workload.
  if (command == "check" && args.count("--verify-certificate") > 0) {
    if (args.count("--model") > 0 || args.count("--workload") > 0) {
      std::fprintf(stderr,
                   "error: --verify-certificate excludes --model/--workload\n");
      return Usage();
    }
    return VerifyCertificateFile(args["--verify-certificate"]);
  }
  if (args.count("--model") == 0 || args.count("--workload") == 0) {
    return Usage();
  }

  auto model_text = ReadFile(args["--model"]);
  if (!model_text.ok()) {
    std::cerr << model_text.status() << "\n";
    return 1;
  }
  auto graph = nose::ParseModel(*model_text);
  if (!graph.ok()) {
    std::cerr << "model error: " << graph.status() << "\n";
    return 1;
  }
  auto workload_text = ReadFile(args["--workload"]);
  if (!workload_text.ok()) {
    std::cerr << workload_text.status() << "\n";
    return 1;
  }
  auto workload = nose::ParseWorkload(**graph, *workload_text);
  if (!workload.ok()) {
    std::cerr << "workload error: " << workload.status() << "\n";
    return 1;
  }

  const nose::LintSources sources{args["--model"], args["--workload"]};
  std::vector<nose::Diagnostic> diags = nose::LintAll(**workload, sources);
  const size_t num_errors =
      nose::CountSeverity(diags, nose::Severity::kError);

  if (command == "lint") {
    std::cout << nose::FormatDiagnostics(diags);
    std::printf("%zu error(s), %zu warning(s), %zu note(s)\n", num_errors,
                nose::CountSeverity(diags, nose::Severity::kWarning),
                nose::CountSeverity(diags, nose::Severity::kNote));
    return num_errors > 0 ? 1 : 0;
  }

  // check/advise refuse input with error-severity lint findings: the
  // advisor would optimize for a workload the author cannot have meant.
  if (num_errors > 0) {
    for (const nose::Diagnostic& d : diags) {
      if (d.severity == nose::Severity::kError) {
        std::cerr << d.ToString() << "\n";
      }
    }
    std::fprintf(stderr, "error: %zu lint error(s); run 'nose lint' for details\n",
                 num_errors);
    return 1;
  }

  if (args.count("--solve-log") > 0) nose::SolveLog::Global().Enable();

  if (command == "check") {
    const int rc = RunCheck(args, **workload, std::move(diags));
    if (!WriteSolveLogIfRequested(args)) return 1;
    return rc;
  }

  nose::AdvisorOptions options;
  if (args.count("--space-limit-mb") > 0) {
    double mb = 0.0;
    if (!ParsePositiveDouble("--space-limit-mb", args["--space-limit-mb"], &mb)) {
      return Usage();
    }
    options.optimizer.space_limit_bytes = mb * 1e6;
  }
  if (args.count("--solve-budget") > 0) {
    double secs = 0.0;
    if (!ParsePositiveDouble("--solve-budget", args["--solve-budget"], &secs)) {
      return Usage();
    }
    options.optimizer.bip.time_limit_seconds = secs;
  }
  if (args.count("--threads") > 0) {
    double n = 0.0;
    if (!ParsePositiveDouble("--threads", args["--threads"], &n) ||
        n != static_cast<size_t>(n)) {
      std::fprintf(stderr, "error: --threads wants a positive integer\n");
      return Usage();
    }
    options.num_threads = static_cast<size_t>(n);
  }
  if (args.count("--strategy") > 0) {
    const std::string& s = args["--strategy"];
    if (s == "bip") {
      options.optimizer.strategy = nose::SolveStrategy::kBip;
    } else if (s == "comb") {
      options.optimizer.strategy = nose::SolveStrategy::kCombinatorial;
    } else if (s != "auto") {
      std::fprintf(stderr, "error: unknown strategy '%s'\n", s.c_str());
      return Usage();
    }
  }
  if (args.count("--lp-engine") > 0) {
    const std::string& e = args["--lp-engine"];
    if (e == "factorized") {
      options.optimizer.bip.lp_engine = nose::LpEngine::kFactorized;
    } else if (e == "sparse") {
      options.optimizer.bip.lp_engine = nose::LpEngine::kSparse;
    } else if (e == "dense") {
      options.optimizer.bip.lp_engine = nose::LpEngine::kDense;
    } else {
      std::fprintf(stderr, "error: unknown lp engine '%s'\n", e.c_str());
      return Usage();
    }
  }
  const std::string format =
      args.count("--format") > 0 ? args["--format"] : "text";
  if (format != "text" && format != "cql") {
    std::fprintf(stderr, "error: unknown format '%s'\n", format.c_str());
    return Usage();
  }
  if (args.count("--verify") > 0) options.verify_invariants = true;
  const bool all_mixes = args.count("--all-mixes") > 0;
  if (all_mixes && args.count("--mix") > 0) {
    std::fprintf(stderr, "error: --mix and --all-mixes are exclusive\n");
    return Usage();
  }
  const std::string mix = args.count("--mix") > 0
                              ? args["--mix"]
                              : std::string(nose::Workload::kDefaultMix);
  const std::vector<std::string> mixes = (*workload)->MixNames();
  if (!all_mixes &&
      std::find(mixes.begin(), mixes.end(), mix) == mixes.end()) {
    std::fprintf(stderr, "error: workload has no mix '%s'; available:",
                 mix.c_str());
    for (const std::string& m : mixes) std::fprintf(stderr, " %s", m.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  // --trace FILE wins over the NOSE_TRACE environment fallback; either
  // turns recording on for the whole advisor run.
  std::string trace_path;
  if (args.count("--trace") > 0) {
    trace_path = args["--trace"];
  } else if (const char* env = std::getenv("NOSE_TRACE")) {
    trace_path = env;
  }
  const std::string metrics_path =
      args.count("--metrics") > 0 ? args["--metrics"] : "";
  std::string metrics_format;
  if (!MetricsFormat(args, &metrics_format)) return Usage();
  if (!trace_path.empty()) {
    nose::obs::TraceRecorder::Global().Enable();
    nose::obs::TraceRecorder::EnableCrashFlush(trace_path);
    nose::obs::SetCurrentThreadName("main");
  }

  nose::Advisor advisor(options);
  std::vector<std::pair<std::string, nose::Recommendation>> results;
  if (all_mixes) {
    auto recs = advisor.AdviseAllMixes(**workload);
    if (!recs.ok()) {
      std::cerr << "advisor error: " << recs.status() << "\n";
      return 1;
    }
    results = std::move(*recs);
  } else {
    auto rec = advisor.Recommend(**workload, mix);
    if (!rec.ok()) {
      std::cerr << "advisor error: " << rec.status() << "\n";
      return 1;
    }
    results.emplace_back(mix, std::move(*rec));
  }
  // The advisor's pool is destroyed inside Recommend, so every worker has
  // drained and the buffers are quiescent — safe to export.
  if (!trace_path.empty()) {
    nose::obs::TraceRecorder::Global().Disable();
    std::string error;
    if (!nose::obs::TraceRecorder::Global().WriteChromeJson(trace_path,
                                                            &error)) {
      std::fprintf(stderr, "error: cannot write trace: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty() &&
      !WriteMetricsSnapshot(metrics_path, metrics_format)) {
    return 1;
  }
  if (!WriteSolveLogIfRequested(args)) return 1;
  if (args.count("--report-json") > 0) {
    nose::obs::RunReport run_report("advise");
    run_report.AddString("model", args["--model"]);
    run_report.AddString("workload", args["--workload"]);
    nose::AdvisorTiming timing;
    std::string digest = "[";
    char buf[256];
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& [rec_mix, rec] = results[i];
      timing.enumeration_seconds += rec.timing.enumeration_seconds;
      timing.cost_calculation_seconds += rec.timing.cost_calculation_seconds;
      timing.bip_construction_seconds += rec.timing.bip_construction_seconds;
      timing.bip_solve_seconds += rec.timing.bip_solve_seconds;
      timing.other_seconds += rec.timing.other_seconds;
      timing.total_seconds += rec.timing.total_seconds;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"mix\":\"%s\",\"column_families\":%zu,"
                    "\"objective\":%.9g,\"candidates\":%zu,"
                    "\"solve_proven\":%s}",
                    i > 0 ? "," : "", rec_mix.c_str(), rec.schema.size(),
                    rec.objective, rec.num_candidates,
                    rec.solve_proven ? "true" : "false");
      digest += buf;
    }
    digest.push_back(']');
    run_report.AddPhase("enumeration", timing.enumeration_seconds);
    run_report.AddPhase("cost_calculation", timing.cost_calculation_seconds);
    run_report.AddPhase("bip_construction", timing.bip_construction_seconds);
    run_report.AddPhase("bip_solve", timing.bip_solve_seconds);
    run_report.AddPhase("other", timing.other_seconds);
    run_report.AddPhase("total", timing.total_seconds);
    run_report.SetDigest(digest);
    run_report.SetSolverSummary(nose::SolveLog::Global().SummaryJson());
    run_report.SetMetrics(nose::obs::MetricsRegistry::Global().ToJson());
    std::string error;
    if (!run_report.WriteJson(args["--report-json"], &error)) {
      std::fprintf(stderr, "error: cannot write report: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote report to %s\n", args["--report-json"].c_str());
  }

  for (const auto& [rec_mix, rec] : results) {
    if (results.size() > 1) {
      std::cout << "##### mix: " << rec_mix << " #####\n";
    }
    if (format == "cql") {
      std::cout << nose::RecommendationToCql(rec);
    } else {
      std::cout << rec.ToString();
    }
    // Advisor findings (e.g. NOSE-W006) go to stderr so text/cql output
    // stays machine-consumable.
    std::cerr << nose::FormatDiagnostics(rec.diagnostics);
    std::fprintf(stderr,
                 "advised '%s' in %.2fs: %zu candidates -> %zu column "
                 "families (workload cost %.4f%s)\n",
                 rec_mix.c_str(), rec.timing.total_seconds,
                 rec.num_candidates, rec.schema.size(), rec.objective,
                 rec.solve_proven ? "" : ", budget-bound");
  }
  return 0;
}
