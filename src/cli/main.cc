// The NoSE command-line tool: the schema advisor as the paper envisions it
// being used — point it at a conceptual model and a workload, get back a
// schema and per-statement implementation plans.
//
//   nose advise --model hotel.model --workload hotel.workload
//        [--mix NAME] [--space-limit-mb N] [--format text|cql]
//        [--strategy auto|bip|comb] [--solve-budget SECONDS]
//   nose check  --model hotel.model --workload hotel.workload
//
// File formats: the entity-graph DSL (see ParseModel) and the ';'-separated
// workload statement language (see ParseWorkload).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "advisor/advisor.h"
#include "export/cql.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  nose advise --model FILE --workload FILE [options]\n"
               "  nose check  --model FILE --workload FILE\n"
               "options:\n"
               "  --mix NAME            workload mix to advise for "
               "(default: 'default')\n"
               "  --space-limit-mb N    storage budget in megabytes\n"
               "  --format text|cql     output format (default text)\n"
               "  --strategy auto|bip|comb  candidate-selection solver\n"
               "  --solve-budget SECS   time budget for the solver\n");
  return 2;
}

nose::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return nose::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command != "advise" && command != "check") return Usage();

  std::map<std::string, std::string> args;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    args[argv[i]] = argv[i + 1];
  }
  if (args.count("--model") == 0 || args.count("--workload") == 0) {
    return Usage();
  }

  auto model_text = ReadFile(args["--model"]);
  if (!model_text.ok()) {
    std::cerr << model_text.status() << "\n";
    return 1;
  }
  auto graph = nose::ParseModel(*model_text);
  if (!graph.ok()) {
    std::cerr << "model error: " << graph.status() << "\n";
    return 1;
  }
  auto workload_text = ReadFile(args["--workload"]);
  if (!workload_text.ok()) {
    std::cerr << workload_text.status() << "\n";
    return 1;
  }
  auto workload = nose::ParseWorkload(**graph, *workload_text);
  if (!workload.ok()) {
    std::cerr << "workload error: " << workload.status() << "\n";
    return 1;
  }

  if (command == "check") {
    std::printf("ok: %zu entities, %zu relationships, %zu statements\n",
                (*graph)->entity_order().size(),
                (*graph)->relationships().size(),
                (*workload)->entries().size());
    return 0;
  }

  nose::AdvisorOptions options;
  if (args.count("--space-limit-mb") > 0) {
    options.optimizer.space_limit_bytes =
        std::stod(args["--space-limit-mb"]) * 1e6;
  }
  if (args.count("--solve-budget") > 0) {
    options.optimizer.bip.time_limit_seconds = std::stod(args["--solve-budget"]);
  }
  if (args.count("--strategy") > 0) {
    const std::string& s = args["--strategy"];
    if (s == "bip") {
      options.optimizer.strategy = nose::SolveStrategy::kBip;
    } else if (s == "comb") {
      options.optimizer.strategy = nose::SolveStrategy::kCombinatorial;
    } else if (s != "auto") {
      return Usage();
    }
  }
  const std::string mix = args.count("--mix") > 0
                              ? args["--mix"]
                              : std::string(nose::Workload::kDefaultMix);

  nose::Advisor advisor(options);
  auto rec = advisor.Recommend(**workload, mix);
  if (!rec.ok()) {
    std::cerr << "advisor error: " << rec.status() << "\n";
    return 1;
  }

  const std::string format =
      args.count("--format") > 0 ? args["--format"] : "text";
  if (format == "cql") {
    std::cout << nose::RecommendationToCql(*rec);
  } else {
    std::cout << rec->ToString();
  }
  std::fprintf(stderr,
               "advised '%s' in %.2fs: %zu candidates -> %zu column "
               "families (workload cost %.4f%s)\n",
               mix.c_str(), rec->timing.total_seconds, rec->num_candidates,
               rec->schema.size(), rec->objective,
               rec->solve_proven ? "" : ", budget-bound");
  return 0;
}
