#ifndef NOSE_EXECUTOR_LOADER_H_
#define NOSE_EXECUTOR_LOADER_H_

#include <string>

#include "executor/dataset.h"
#include "schema/schema.h"
#include "store/record_store.h"
#include "util/statusor.h"

namespace nose {

/// Materializes every column family of `schema` in `store` from `data`:
/// registers the column family, enumerates all instances of its path
/// (joining along the dataset's relationship edges) and writes one record
/// per instance. Loading is not charged to the store's latency simulation.
Status LoadSchema(const Dataset& data, const Schema& schema,
                  RecordStore* store);

/// Materializes one slice of `cf` as column family `name`: enumerates the
/// path instances rooted at dataset rows [root_begin, root_end) of the
/// path's first entity and writes one record per instance. The column
/// family must already exist in `store`. Unlike LoadSchema, the writes ARE
/// charged to the store's latency simulation — this is the unit of work of
/// a migration backfill, which pays for its data movement. Returns the
/// number of records written.
StatusOr<size_t> LoadColumnFamilyChunk(const Dataset& data,
                                       const ColumnFamily& cf,
                                       const std::string& name,
                                       RecordStore* store, size_t root_begin,
                                       size_t root_end);

}  // namespace nose

#endif  // NOSE_EXECUTOR_LOADER_H_
