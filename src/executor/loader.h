#ifndef NOSE_EXECUTOR_LOADER_H_
#define NOSE_EXECUTOR_LOADER_H_

#include "executor/dataset.h"
#include "schema/schema.h"
#include "store/record_store.h"
#include "util/status.h"

namespace nose {

/// Materializes every column family of `schema` in `store` from `data`:
/// registers the column family, enumerates all instances of its path
/// (joining along the dataset's relationship edges) and writes one record
/// per instance. Loading is not charged to the store's latency simulation.
Status LoadSchema(const Dataset& data, const Schema& schema,
                  RecordStore* store);

}  // namespace nose

#endif  // NOSE_EXECUTOR_LOADER_H_
