#include "executor/dataset.h"

#include <cassert>

namespace nose {

const std::vector<uint32_t> Dataset::kNoNeighbors;

Dataset::Dataset(const EntityGraph* graph) : graph_(graph) {
  adjacency_.resize(graph->relationships().size());
  for (const std::string& name : graph->entity_order()) {
    const Entity& entity = graph->GetEntity(name);
    std::map<std::string, size_t>& idx = field_index_[name];
    for (size_t f = 0; f < entity.fields().size(); ++f) {
      idx[entity.fields()[f].name] = f;
    }
    rows_[name];  // create empty table
  }
}

size_t Dataset::AddRow(const std::string& entity, ValueTuple row) {
  auto& table = rows_.at(entity);
  assert(row.size() == graph_->GetEntity(entity).fields().size());
  table.push_back(std::move(row));
  return table.size() - 1;
}

void Dataset::AddLink(int rel_index, size_t from_row, size_t to_row) {
  Adjacency& adj = adjacency_[static_cast<size_t>(rel_index)];
  if (adj.forward.size() <= from_row) adj.forward.resize(from_row + 1);
  if (adj.backward.size() <= to_row) adj.backward.resize(to_row + 1);
  adj.forward[from_row].push_back(static_cast<uint32_t>(to_row));
  adj.backward[to_row].push_back(static_cast<uint32_t>(from_row));
  ++adj.links;
}

size_t Dataset::RowCount(const std::string& entity) const {
  return rows_.at(entity).size();
}

const ValueTuple& Dataset::Row(const std::string& entity, size_t index) const {
  return rows_.at(entity)[index];
}

const Value& Dataset::FieldValue(const std::string& entity, size_t index,
                                 const std::string& field) const {
  return rows_.at(entity)[index][field_index_.at(entity).at(field)];
}

const std::vector<uint32_t>& Dataset::Neighbors(const PathStep& step,
                                                size_t index) const {
  const Adjacency& adj = adjacency_[static_cast<size_t>(step.relationship)];
  const auto& lists = step.forward ? adj.forward : adj.backward;
  if (index >= lists.size()) return kNoNeighbors;
  return lists[index];
}

size_t Dataset::LinkCount(int rel_index) const {
  return adjacency_[static_cast<size_t>(rel_index)].links;
}

void Dataset::SyncCountsTo(EntityGraph* graph) const {
  for (const auto& [name, table] : rows_) {
    Entity* entity = graph->MutableEntity(name);
    assert(entity != nullptr);
    entity->set_count(table.size());
  }
  for (size_t r = 0; r < adjacency_.size(); ++r) {
    graph->MutableRelationship(static_cast<int>(r))->link_count =
        adjacency_[r].links;
  }
}

}  // namespace nose
