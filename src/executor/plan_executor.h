#ifndef NOSE_EXECUTOR_PLAN_EXECUTOR_H_
#define NOSE_EXECUTOR_PLAN_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "planner/plan.h"
#include "planner/update_planner.h"
#include "schema/schema.h"
#include "store/record_store.h"
#include "util/statusor.h"

namespace nose {

/// Executes recommended plans against a record store, implementing the
/// application model's client side (paper §IV-B): get requests, client
/// filtering, client sorting and id-joins between successive lookups.
///
/// The schema maps plan column families to store names; every column
/// family used by an executed plan must be present in both.
class PlanExecutor {
 public:
  using Params = std::map<std::string, Value>;
  /// Partial row binding accumulated while walking a plan.
  using Context = std::map<FieldRef, Value>;

  PlanExecutor(RecordStore* store, const Schema* schema)
      : store_(store), schema_(schema) {}

  /// Runs a query plan; returns result rows aligned with the query's
  /// select list, duplicates discarded, ordered per ORDER BY when present.
  StatusOr<std::vector<ValueTuple>> ExecuteQuery(const QueryPlan& plan,
                                                 const Params& params);

  /// Runs an update plan: support queries, then deletes/inserts on every
  /// affected column family.
  Status ExecuteUpdate(const UpdatePlan& plan, const Params& params);

 private:
  /// Core of query execution: walks the plan steps, threading contexts.
  StatusOr<std::vector<Context>> ExecuteContexts(const QueryPlan& plan,
                                                 const Params& params,
                                                 const Context& base);

  StatusOr<Value> BindPredicateValue(const Predicate& pred,
                                     const Params& params,
                                     const Context& ctx) const;

  RecordStore* store_;
  const Schema* schema_;
};

}  // namespace nose

#endif  // NOSE_EXECUTOR_PLAN_EXECUTOR_H_
