#include "executor/loader.h"

#include <algorithm>
#include <functional>

namespace nose {

namespace {

/// Positions of `fields` as (path-entity index, field name) pairs.
struct FieldSlot {
  size_t entity_index;
  std::string field;
};

std::vector<FieldSlot> SlotsFor(const KeyPath& path,
                                const std::vector<FieldRef>& fields) {
  std::vector<FieldSlot> slots;
  slots.reserve(fields.size());
  for (const FieldRef& f : fields) {
    slots.push_back(
        {static_cast<size_t>(path.IndexOfEntity(f.entity)), f.field});
  }
  return slots;
}

}  // namespace

StatusOr<size_t> LoadColumnFamilyChunk(const Dataset& data,
                                       const ColumnFamily& cf,
                                       const std::string& name,
                                       RecordStore* store, size_t root_begin,
                                       size_t root_end) {
  const KeyPath& path = cf.path();
  const std::vector<FieldSlot> pk = SlotsFor(path, cf.partition_key());
  const std::vector<FieldSlot> ck = SlotsFor(path, cf.clustering_key());
  const std::vector<FieldSlot> vals = SlotsFor(path, cf.values());

  // DFS over path instances; rows[i] is the dataset row of path entity i.
  std::vector<size_t> rows(path.NumEntities());
  size_t written = 0;
  Status status;
  std::function<void(size_t)> walk = [&](size_t depth) {
    if (!status.ok()) return;
    if (depth == path.NumEntities()) {
      auto tuple = [&](const std::vector<FieldSlot>& slots) {
        ValueTuple out;
        out.reserve(slots.size());
        for (const FieldSlot& slot : slots) {
          out.push_back(data.FieldValue(path.EntityAt(slot.entity_index),
                                        rows[slot.entity_index], slot.field));
        }
        return out;
      };
      std::vector<std::optional<Value>> values;
      for (const Value& v : tuple(vals)) values.emplace_back(v);
      Status s = store->Put(name, tuple(pk), tuple(ck), values);
      if (!s.ok()) status = s;
      ++written;
      return;
    }
    const PathStep& step = path.steps()[depth - 1];
    for (uint32_t next : data.Neighbors(step, rows[depth - 1])) {
      rows[depth] = next;
      walk(depth + 1);
    }
  };
  const size_t end = std::min(root_end, data.RowCount(path.EntityAt(0)));
  for (size_t r0 = root_begin; r0 < end; ++r0) {
    rows[0] = r0;
    walk(1);
    if (!status.ok()) return status;
  }
  return written;
}

Status LoadSchema(const Dataset& data, const Schema& schema,
                  RecordStore* store) {
  for (size_t c = 0; c < schema.column_families().size(); ++c) {
    const ColumnFamily& cf = schema.column_families()[c];
    const std::string& name = schema.names()[c];

    if (!store->HasColumnFamily(name)) {
      NOSE_RETURN_IF_ERROR(store->CreateColumnFamily(
          name, cf.partition_key().size(), cf.clustering_key().size(),
          cf.values().size()));
    }

    // Loading is a bulk operation; do not charge it to the simulation.
    RecordStore::UnchargedLoadScope uncharged(store);
    StatusOr<size_t> loaded = LoadColumnFamilyChunk(
        data, cf, name, store, 0, data.RowCount(cf.path().EntityAt(0)));
    if (!loaded.ok()) return loaded.status();
  }
  return Status::Ok();
}

}  // namespace nose
