#include "executor/plan_executor.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nose {

namespace {

FieldRef IdRefOf(const EntityGraph& graph, const std::string& entity) {
  return FieldRef{entity, graph.GetEntity(entity).id_field().name};
}

bool CompareValues(PredicateOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case PredicateOp::kEq:
      return lhs == rhs;
    case PredicateOp::kNe:
      return !(lhs == rhs);
    case PredicateOp::kLt:
      return lhs < rhs;
    case PredicateOp::kLe:
      return !(rhs < lhs);
    case PredicateOp::kGt:
      return rhs < lhs;
    case PredicateOp::kGe:
      return !(lhs < rhs);
  }
  return false;
}

std::string ContextKey(const PlanExecutor::Context& ctx,
                       const std::vector<FieldRef>& fields) {
  std::string key;
  for (const FieldRef& f : fields) {
    auto it = ctx.find(f);
    key += it == ctx.end() ? std::string("~") : ValueToString(it->second);
    key += "|";
  }
  return key;
}

}  // namespace

StatusOr<Value> PlanExecutor::BindPredicateValue(const Predicate& pred,
                                                 const Params& params,
                                                 const Context& ctx) const {
  if (pred.literal.has_value()) return *pred.literal;
  auto pit = params.find(pred.param);
  if (pit != params.end()) return pit->second;
  // Support-query parameters resolve through the accumulated context (the
  // predicate field is an entity ID the update statement already knows).
  auto cit = ctx.find(pred.field);
  if (cit != ctx.end()) return cit->second;
  return Status::InvalidArgument("unbound parameter ?" + pred.param + " for " +
                                 pred.field.QualifiedName());
}

StatusOr<std::vector<PlanExecutor::Context>> PlanExecutor::ExecuteContexts(
    const QueryPlan& plan, const Params& params, const Context& base) {
  const Query& query = *plan.query;
  const EntityGraph& graph = *query.graph();

  // Fields whose values distinguish contexts downstream: select and order
  // fields (already-fetched ones) plus the current landing entity's ID.
  std::vector<FieldRef> needed = query.select();
  for (const OrderField& o : query.order_by()) {
    if (std::find(needed.begin(), needed.end(), o.field) == needed.end()) {
      needed.push_back(o.field);
    }
  }

  std::vector<Context> contexts = {base};
  for (const PlanStep& step : plan.steps) {
    // Interned-id lookup when the plan came out of the advisor (O(1), no
    // canonical-key hashing); key lookup for hand-built plans.
    const std::string* cf_name = step.cf_id != kInvalidCfId
                                     ? schema_->NameOfId(step.cf_id)
                                     : nullptr;
    if (cf_name == nullptr) cf_name = schema_->NameOf(*step.cf);
    if (cf_name == nullptr) {
      return Status::FailedPrecondition(
          "plan references a column family missing from the schema: " +
          step.cf->ToString());
    }
    const FieldRef id_j =
        IdRefOf(graph, query.path().EntityAt(step.from_index));

    std::vector<Context> next;
    for (const Context& ctx : contexts) {
      // --- Build the partition key. ---
      ValueTuple partition;
      bool skip_context = false;
      Context bound = ctx;
      for (const FieldRef& f : step.cf->partition_key()) {
        if (step.access.partition_uses_id && f == id_j) {
          auto it = ctx.find(f);
          if (it == ctx.end()) {
            return Status::Internal("missing bound ID " + f.QualifiedName());
          }
          partition.push_back(it->second);
          continue;
        }
        const Predicate* pred = nullptr;
        for (const Predicate& p : step.access.partition_preds) {
          if (p.field == f) pred = &p;
        }
        if (pred == nullptr) {
          return Status::Internal("partition field " + f.QualifiedName() +
                                  " has no binding in plan step");
        }
        NOSE_ASSIGN_OR_RETURN(Value v, BindPredicateValue(*pred, params, ctx));
        bound[f] = v;
        partition.push_back(std::move(v));
      }
      if (skip_context) continue;

      // --- Build the clustering prefix (mirrors the planner's greedy
      //     consumption order). ---
      ValueTuple prefix;
      bool id_used = step.access.partition_uses_id;
      for (const FieldRef& f : step.cf->clustering_key()) {
        if (step.access.clustering_uses_id && !id_used && f == id_j) {
          auto it = ctx.find(f);
          if (it == ctx.end()) {
            return Status::Internal("missing bound ID " + f.QualifiedName());
          }
          prefix.push_back(it->second);
          id_used = true;
          continue;
        }
        const Predicate* pred = nullptr;
        for (const Predicate& p : step.access.clustering_eq) {
          if (p.field == f) pred = &p;
        }
        if (pred == nullptr) break;
        NOSE_ASSIGN_OR_RETURN(Value v, BindPredicateValue(*pred, params, ctx));
        bound[f] = v;
        prefix.push_back(std::move(v));
      }

      std::optional<RangeBound> range;
      if (step.access.pushed_range.has_value()) {
        NOSE_ASSIGN_OR_RETURN(
            Value v, BindPredicateValue(*step.access.pushed_range, params, ctx));
        range = RangeBound{step.access.pushed_range->op, std::move(v)};
      }

      NOSE_ASSIGN_OR_RETURN(std::vector<RecordStore::Row> rows,
                            store_->Get(*cf_name, partition, prefix, range));

      // --- Bind fetched fields, filter, emit. ---
      for (const RecordStore::Row& row : rows) {
        Context out = bound;
        for (size_t i = 0; i < step.cf->clustering_key().size(); ++i) {
          if (i < row.clustering.size()) {
            out[step.cf->clustering_key()[i]] = row.clustering[i];
          }
        }
        for (size_t i = 0; i < step.cf->values().size(); ++i) {
          if (i < row.values.size()) {
            out[step.cf->values()[i]] = row.values[i];
          }
        }
        bool keep = true;
        for (const Predicate& p : step.access.filters) {
          NOSE_ASSIGN_OR_RETURN(Value v, BindPredicateValue(p, params, ctx));
          auto it = out.find(p.field);
          if (it == out.end() || !CompareValues(p.op, it->second, v)) {
            keep = false;
            break;
          }
        }
        if (keep) next.push_back(std::move(out));
      }
    }

    // --- Join merge: discard duplicate contexts (paper §IV-B step 3). ---
    std::vector<FieldRef> dedupe_fields = needed;
    const FieldRef id_to = IdRefOf(graph, query.path().EntityAt(step.to_index));
    if (std::find(dedupe_fields.begin(), dedupe_fields.end(), id_to) ==
        dedupe_fields.end()) {
      dedupe_fields.push_back(id_to);
    }
    std::set<std::string> seen;
    std::vector<Context> deduped;
    for (Context& ctx : next) {
      const std::string key = ContextKey(ctx, dedupe_fields);
      if (seen.insert(key).second) deduped.push_back(std::move(ctx));
    }
    contexts = std::move(deduped);
  }
  return contexts;
}

StatusOr<std::vector<ValueTuple>> PlanExecutor::ExecuteQuery(
    const QueryPlan& plan, const Params& params) {
  obs::Span span("executor.query", "executor");
  static obs::Counter& queries_counter =
      obs::MetricsRegistry::Global().GetCounter("executor.queries");
  queries_counter.Increment();
  NOSE_ASSIGN_OR_RETURN(std::vector<Context> contexts,
                        ExecuteContexts(plan, params, Context{}));
  const Query& query = *plan.query;

  if (plan.needs_sort || !query.order_by().empty()) {
    static obs::Counter& sorts_counter =
        obs::MetricsRegistry::Global().GetCounter("executor.client_sorts");
    sorts_counter.Increment();
    // A stable client-side sort by the ORDER BY fields; when the plan
    // already delivers clustered order this is a cheap no-op pass kept for
    // simplicity of the executor (the *simulated* cost only charges the
    // sort when plan.needs_sort).
    std::stable_sort(contexts.begin(), contexts.end(),
                     [&](const Context& a, const Context& b) {
                       for (const OrderField& o : query.order_by()) {
                         auto ita = a.find(o.field);
                         auto itb = b.find(o.field);
                         if (ita == a.end() || itb == b.end()) continue;
                         if (ita->second < itb->second) return true;
                         if (itb->second < ita->second) return false;
                       }
                       return false;
                     });
  }

  std::vector<ValueTuple> result;
  std::set<std::string> seen;
  for (const Context& ctx : contexts) {
    ValueTuple row;
    std::string key;
    bool complete = true;
    for (const FieldRef& f : query.select()) {
      auto it = ctx.find(f);
      if (it == ctx.end()) {
        complete = false;
        break;
      }
      row.push_back(it->second);
      key += ValueToString(it->second) + "|";
    }
    if (!complete) {
      return Status::Internal("executed plan did not produce select field");
    }
    if (seen.insert(key).second) result.push_back(std::move(row));
  }
  static obs::Counter& rows_counter =
      obs::MetricsRegistry::Global().GetCounter("executor.result_rows");
  rows_counter.Add(result.size());
  return result;
}

Status PlanExecutor::ExecuteUpdate(const UpdatePlan& plan,
                                   const Params& params) {
  obs::Span span("executor.update", "executor");
  static obs::Counter& updates_counter =
      obs::MetricsRegistry::Global().GetCounter("executor.updates");
  // Parts per update is the write-amplification numerator: one logical
  // statement fans out into one physical write sequence per affected
  // column family.
  static obs::Counter& parts_counter =
      obs::MetricsRegistry::Global().GetCounter("executor.update_parts");
  updates_counter.Increment();
  parts_counter.Add(plan.parts.size());
  const Update& update = *plan.update;
  const EntityGraph& graph = *update.graph();
  const std::string& target = update.entity();

  // Seed context from the statement's own bindings.
  Context base;
  auto bind = [&](const FieldRef& field, const std::optional<Value>& literal,
                  const std::string& param) -> Status {
    if (literal.has_value()) {
      base[field] = *literal;
      return Status::Ok();
    }
    auto it = params.find(param);
    if (it == params.end()) {
      return Status::InvalidArgument("unbound parameter ?" + param);
    }
    base[field] = it->second;
    return Status::Ok();
  };
  std::map<FieldRef, Value> set_values;
  switch (update.kind()) {
    case UpdateKind::kUpdate:
    case UpdateKind::kDelete:
      for (const Predicate& p : update.predicates()) {
        if (p.IsEquality()) {
          NOSE_RETURN_IF_ERROR(bind(p.field, p.literal, p.param));
        }
      }
      break;
    case UpdateKind::kInsert:
      for (const ConnectClause& c : update.connects()) {
        std::optional<PathStep> step = graph.FindStep(target, c.step_name);
        if (!step.has_value()) {
          return Status::Internal("bad connect step " + c.step_name);
        }
        const std::string& neighbor = graph.StepTarget(target, *step);
        NOSE_RETURN_IF_ERROR(
            bind(IdRefOf(graph, neighbor), std::nullopt, c.param));
      }
      break;
    case UpdateKind::kConnect:
    case UpdateKind::kDisconnect: {
      const std::string& other =
          update.path().EntityAt(1);
      NOSE_RETURN_IF_ERROR(
          bind(IdRefOf(graph, target), std::nullopt, update.from_param()));
      NOSE_RETURN_IF_ERROR(
          bind(IdRefOf(graph, other), std::nullopt, update.to_param()));
      break;
    }
  }
  // SET clauses: new values; for INSERT they also identify the new record.
  for (const SetClause& s : update.sets()) {
    const FieldRef field{target, s.field};
    if (s.literal.has_value()) {
      set_values[field] = *s.literal;
    } else {
      auto it = params.find(s.param);
      if (it == params.end()) {
        return Status::InvalidArgument("unbound parameter ?" + s.param);
      }
      set_values[field] = it->second;
    }
    if (update.kind() == UpdateKind::kInsert) {
      base[field] = set_values[field];
    }
  }

  for (const UpdatePlanPart& part : plan.parts) {
    const std::string* cf_name = part.cf_id != kInvalidCfId
                                     ? schema_->NameOfId(part.cf_id)
                                     : nullptr;
    if (cf_name == nullptr) cf_name = schema_->NameOf(*part.cf);
    if (cf_name == nullptr) {
      return Status::FailedPrecondition(
          "update plan references a column family missing from the schema");
    }
    // Gather key attributes through the support plans.
    std::vector<Context> contexts = {base};
    for (const QueryPlan& sp : part.support_plans) {
      static obs::Counter& support_counter =
          obs::MetricsRegistry::Global().GetCounter(
              "executor.support_queries");
      std::vector<Context> merged;
      for (const Context& ctx : contexts) {
        support_counter.Increment();
        NOSE_ASSIGN_OR_RETURN(std::vector<Context> got,
                              ExecuteContexts(sp, params, ctx));
        for (Context& g : got) merged.push_back(std::move(g));
      }
      contexts = std::move(merged);
    }

    for (const Context& ctx : contexts) {
      // Old key (pre-statement values).
      ValueTuple old_partition, old_clustering;
      bool have_key = true;
      auto collect = [&](const std::vector<FieldRef>& fields, ValueTuple* out) {
        for (const FieldRef& f : fields) {
          auto it = ctx.find(f);
          if (it == ctx.end()) {
            have_key = false;
            return;
          }
          out->push_back(it->second);
        }
      };
      collect(part.cf->partition_key(), &old_partition);
      if (have_key) collect(part.cf->clustering_key(), &old_clustering);
      if (!have_key) continue;  // no concrete record to touch

      switch (update.kind()) {
        case UpdateKind::kDelete:
        case UpdateKind::kDisconnect:
          NOSE_RETURN_IF_ERROR(
              store_->Delete(*cf_name, old_partition, old_clustering));
          break;
        case UpdateKind::kInsert:
        case UpdateKind::kConnect: {
          std::vector<std::optional<Value>> values;
          for (const FieldRef& f : part.cf->values()) {
            auto sit = set_values.find(f);
            if (sit != set_values.end()) {
              values.emplace_back(sit->second);
              continue;
            }
            auto cit = ctx.find(f);
            values.emplace_back(cit == ctx.end()
                                    ? std::optional<Value>()
                                    : std::optional<Value>(cit->second));
          }
          NOSE_RETURN_IF_ERROR(
              store_->Put(*cf_name, old_partition, old_clustering, values));
          break;
        }
        case UpdateKind::kUpdate: {
          ValueTuple new_partition = old_partition;
          ValueTuple new_clustering = old_clustering;
          if (part.delete_then_insert) {
            NOSE_RETURN_IF_ERROR(
                store_->Delete(*cf_name, old_partition, old_clustering));
            for (size_t i = 0; i < part.cf->partition_key().size(); ++i) {
              auto sit = set_values.find(part.cf->partition_key()[i]);
              if (sit != set_values.end()) new_partition[i] = sit->second;
            }
            for (size_t i = 0; i < part.cf->clustering_key().size(); ++i) {
              auto sit = set_values.find(part.cf->clustering_key()[i]);
              if (sit != set_values.end()) new_clustering[i] = sit->second;
            }
          }
          std::vector<std::optional<Value>> values;
          for (const FieldRef& f : part.cf->values()) {
            auto sit = set_values.find(f);
            if (sit != set_values.end()) {
              values.emplace_back(sit->second);
            } else if (part.delete_then_insert) {
              // Rewriting the whole record: preserve known old values.
              auto cit = ctx.find(f);
              values.emplace_back(cit == ctx.end()
                                      ? std::optional<Value>()
                                      : std::optional<Value>(cit->second));
            } else {
              values.emplace_back(std::nullopt);  // in-place partial write
            }
          }
          NOSE_RETURN_IF_ERROR(
              store_->Put(*cf_name, new_partition, new_clustering, values));
          break;
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace nose
