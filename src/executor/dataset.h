#ifndef NOSE_EXECUTOR_DATASET_H_
#define NOSE_EXECUTOR_DATASET_H_

#include <map>
#include <string>
#include <vector>

#include "model/entity_graph.h"
#include "util/statusor.h"
#include "util/value.h"

namespace nose {

/// Concrete instance data for an entity graph: per entity a table of rows
/// (one ValueTuple per instance, aligned with Entity::fields(), so column 0
/// is the ID), and per relationship an edge list of (from-row, to-row)
/// indices. Produced by workload-specific generators (e.g. rubis::) and
/// consumed by the bulk loader and the benchmark drivers.
class Dataset {
 public:
  explicit Dataset(const EntityGraph* graph);

  const EntityGraph* graph() const { return graph_; }

  /// Appends an instance; returns its row index. The tuple must align with
  /// the entity's fields. By convention column 0 (the ID) is int64.
  size_t AddRow(const std::string& entity, ValueTuple row);

  /// Connects two instances through relationship `rel_index`.
  void AddLink(int rel_index, size_t from_row, size_t to_row);

  size_t RowCount(const std::string& entity) const;
  const ValueTuple& Row(const std::string& entity, size_t index) const;

  /// Value of `field` for instance `index` of `entity`.
  const Value& FieldValue(const std::string& entity, size_t index,
                          const std::string& field) const;

  /// Rows of the counterpart entity linked to instance `index` when
  /// traversing `step`.
  const std::vector<uint32_t>& Neighbors(const PathStep& step,
                                         size_t index) const;

  /// Refreshes entity counts in a (mutable) graph to match the data, so the
  /// cost model sees the generated sizes. Also sets relationship
  /// link_counts.
  void SyncCountsTo(EntityGraph* graph) const;

  /// Total number of links of relationship `rel_index`.
  size_t LinkCount(int rel_index) const;

 private:
  struct Adjacency {
    std::vector<std::vector<uint32_t>> forward;   // from-row -> to-rows
    std::vector<std::vector<uint32_t>> backward;  // to-row -> from-rows
    size_t links = 0;
  };

  const EntityGraph* graph_;
  std::map<std::string, std::vector<ValueTuple>> rows_;
  std::map<std::string, std::map<std::string, size_t>> field_index_;
  std::vector<Adjacency> adjacency_;  // per relationship
  static const std::vector<uint32_t> kNoNeighbors;
};

}  // namespace nose

#endif  // NOSE_EXECUTOR_DATASET_H_
