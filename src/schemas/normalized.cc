#include "schemas/normalized.h"

#include <algorithm>
#include <map>
#include <set>

namespace nose {

namespace {

FieldRef IdRefOf(const EntityGraph& graph, const std::string& entity) {
  return FieldRef{entity, graph.GetEntity(entity).id_field().name};
}

}  // namespace

StatusOr<Schema> NormalizedSchema(const EntityGraph& graph,
                                  const Workload& workload,
                                  const std::string& mix) {
  Schema schema;

  // Entity tables: [id][][all attributes].
  for (const std::string& name : graph.entity_order()) {
    const Entity& entity = graph.GetEntity(name);
    std::vector<FieldRef> values;
    for (const Field& f : entity.fields()) {
      if (f.type == FieldType::kId) continue;
      values.push_back(FieldRef{name, f.name});
    }
    NOSE_ASSIGN_OR_RETURN(KeyPath path, graph.SingleEntityPath(name));
    NOSE_ASSIGN_OR_RETURN(
        ColumnFamily cf,
        ColumnFamily::Create(path, {IdRefOf(graph, name)}, {}, values));
    schema.Add(std::move(cf), "entity_" + name);
  }

  // Relationship links, one per direction.
  for (size_t r = 0; r < graph.relationships().size(); ++r) {
    const Relationship& rel = graph.relationships()[r];
    NOSE_ASSIGN_OR_RETURN(KeyPath path,
                          graph.ResolvePath(rel.from_entity,
                                            {rel.forward_name}));
    NOSE_ASSIGN_OR_RETURN(
        ColumnFamily forward,
        ColumnFamily::Create(path, {IdRefOf(graph, rel.from_entity)},
                             {IdRefOf(graph, rel.to_entity)}, {}));
    schema.Add(std::move(forward),
               "link_" + rel.from_entity + "_" + rel.forward_name);
    NOSE_ASSIGN_OR_RETURN(
        ColumnFamily backward,
        ColumnFamily::Create(path, {IdRefOf(graph, rel.to_entity)},
                             {IdRefOf(graph, rel.from_entity)}, {}));
    schema.Add(std::move(backward),
               "link_" + rel.to_entity + "_" + rel.reverse_name);
  }

  // Secondary indexes for non-primary-key equality predicates.
  int index_count = 0;
  std::set<std::string> seen_indexes;
  for (const auto& [entry, weight] : workload.EntriesIn(mix)) {
    if (!entry->IsQuery()) continue;
    const Query& q = entry->query();
    // Group predicates by entity.
    std::map<std::string, std::vector<const Predicate*>> by_entity;
    for (const Predicate& p : q.predicates()) {
      by_entity[p.field.entity].push_back(&p);
    }
    for (const auto& [entity, preds] : by_entity) {
      const FieldRef id = IdRefOf(graph, entity);
      std::vector<FieldRef> partition;
      std::vector<FieldRef> clustering;
      for (const Predicate* p : preds) {
        if (p->IsEquality() && !(p->field == id)) {
          if (std::find(partition.begin(), partition.end(), p->field) ==
              partition.end()) {
            partition.push_back(p->field);
          }
        } else if (p->IsRange()) {
          if (std::find(clustering.begin(), clustering.end(), p->field) ==
              clustering.end()) {
            clustering.push_back(p->field);
          }
        }
      }
      if (partition.empty()) continue;  // anchored by primary key or range
      clustering.push_back(id);
      NOSE_ASSIGN_OR_RETURN(KeyPath path, graph.SingleEntityPath(entity));
      NOSE_ASSIGN_OR_RETURN(
          ColumnFamily cf,
          ColumnFamily::Create(path, partition, clustering, {}));
      if (seen_indexes.insert(cf.key()).second) {
        schema.Add(std::move(cf), "index_" + entity + "_" +
                                      std::to_string(index_count++));
      }
    }
  }
  return schema;
}

}  // namespace nose
