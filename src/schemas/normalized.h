#ifndef NOSE_SCHEMAS_NORMALIZED_H_
#define NOSE_SCHEMAS_NORMALIZED_H_

#include <string>

#include "schema/schema.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace nose {

/// Builds the paper's "normalized" baseline schema (§VII-A):
///  - one column family per entity set, keyed by the entity's primary key
///    and holding all of its attributes;
///  - two link column families per relationship (one per direction),
///    [id(a)][id(b)][] — the normalized way to traverse;
///  - secondary-index column families for queries whose predicates do not
///    name an entity primary key: [predicate eq fields][range fields, id][]
///    per referenced entity.
/// Every workload query is answerable against this schema via chains of
/// gets plus client-side filtering (the long plans of Fig. 11).
StatusOr<Schema> NormalizedSchema(const EntityGraph& graph,
                                  const Workload& workload,
                                  const std::string& mix);

}  // namespace nose

#endif  // NOSE_SCHEMAS_NORMALIZED_H_
