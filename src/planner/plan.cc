#include "planner/plan.h"

#include "util/strings.h"

namespace nose {

std::string PlanStep::ToString() const {
  std::string out = first ? "GET " : "JOIN-GET ";
  out += cf != nullptr ? cf->ToString() : "<null>";
  std::vector<std::string> notes;
  if (access.partition_uses_id || access.clustering_uses_id) {
    notes.push_back("bind-ids");
  }
  for (const Predicate& p : access.partition_preds) {
    notes.push_back("pk:" + p.ToString());
  }
  for (const Predicate& p : access.clustering_eq) {
    notes.push_back("ck:" + p.ToString());
  }
  if (access.pushed_range.has_value()) {
    notes.push_back("range:" + access.pushed_range->ToString());
  }
  for (const Predicate& p : access.filters) {
    notes.push_back("filter:" + p.ToString());
  }
  if (!notes.empty()) out += " (" + StrJoin(notes, ", ") + ")";
  return out;
}

std::string QueryPlan::ToString() const {
  std::string out;
  if (query != nullptr) out += query->ToString() + "\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". " + steps[i].ToString() + "\n";
  }
  if (needs_sort) out += "  " + std::to_string(steps.size() + 1) + ". SORT\n";
  out += "  estimated cost: " + std::to_string(cost) + "\n";
  return out;
}

}  // namespace nose
