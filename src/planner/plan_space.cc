#include "planner/plan_space.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace nose {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Internal mutable state during plan-space construction; mirrors
/// PlanSpaceState plus the `ordered` bit (whether results so far arrive in
/// the query's requested order — decided by the first step, preserved by
/// the order-respecting client joins of the application model).
struct StateDesc {
  size_t entity_index;
  std::vector<Predicate> pending_preds;
  std::vector<FieldRef> pending_attrs;
  bool holds_ids;
  bool ordered;

  std::string Key() const {
    std::vector<std::string> parts;
    for (const Predicate& p : pending_preds) parts.push_back(p.ToString());
    std::sort(parts.begin(), parts.end());
    std::vector<std::string> attrs;
    for (const FieldRef& a : pending_attrs) attrs.push_back(a.QualifiedName());
    std::sort(attrs.begin(), attrs.end());
    return std::to_string(entity_index) + "|" + StrJoin(parts, ";") + "|" +
           StrJoin(attrs, ";") + "|" + (holds_ids ? "1" : "0") +
           (ordered ? "1" : "0");
  }
};

struct MatchOutcome {
  AccessDetail access;
  std::vector<Predicate> new_pending_preds;
  std::vector<FieldRef> new_pending_attrs;
  bool completes = false;
  bool ordered_after = false;
};

double RowBytes(const ColumnFamily& cf) {
  double bytes = 0.0;
  const EntityGraph& graph = *cf.graph();
  for (const FieldRef& ref : cf.clustering_key()) {
    bytes += graph.GetEntity(ref.entity).FindField(ref.field)->SizeBytes();
  }
  for (const FieldRef& ref : cf.values()) {
    bytes += graph.GetEntity(ref.entity).FindField(ref.field)->SizeBytes();
  }
  return bytes;
}

/// The ID field reference of the path entity at `index`.
FieldRef IdRef(const Query& q, size_t index) {
  const std::string& entity = q.path().EntityAt(index);
  return FieldRef{entity, q.graph()->GetEntity(entity).id_field().name};
}

/// Attributes of the path entity at `index` that any plan must fetch: the
/// query's select attributes plus ORDER BY fields (a client-side sort needs
/// the value in hand).
std::vector<FieldRef> SelectAttrsOn(const Query& q, size_t index) {
  std::vector<FieldRef> out;
  const std::string& entity = q.path().EntityAt(index);
  for (const FieldRef& ref : q.select()) {
    if (ref.entity == entity) out.push_back(ref);
  }
  for (const OrderField& o : q.order_by()) {
    if (o.field.entity == entity &&
        std::find(out.begin(), out.end(), o.field) == out.end()) {
      out.push_back(o.field);
    }
  }
  return out;
}

double FieldCard(const EntityGraph& graph, const FieldRef& ref) {
  const Entity& entity = graph.GetEntity(ref.entity);
  return static_cast<double>(entity.FieldCardinality(*entity.FindField(ref.field)));
}

/// Attempts to serve the decomposition step `state --(segment [i..j])--> i`
/// with column family `cf`. Returns nullopt if `cf` cannot serve it.
std::optional<MatchOutcome> TryMatch(const Query& q, const StateDesc& state,
                                     size_t i, const ColumnFamily& cf,
                                     const CardinalityEstimator& est,
                                     const CostModel& cost) {
  const size_t j = state.entity_index;
  const EntityGraph& graph = *q.graph();
  const bool first = !state.holds_ids;
  const bool materialize = (i == j) && state.holds_ids;

  // A materialization step must have something to fetch/apply.
  if (materialize && state.pending_preds.empty() && state.pending_attrs.empty()) {
    return std::nullopt;
  }

  // 1. The column family must span exactly this path segment.
  const KeyPath segment = q.path().SubPath(i, j);
  if (!(cf.path() == segment || cf.path() == segment.Reversed())) {
    return std::nullopt;
  }

  // 2. Gather the predicate workload for this step.
  //    - `pending_preds` (on e_j) must be applied unless the landing entity
  //      is e_j itself (i == j), where deferral stays possible on the first
  //      step; a materialization step must clear everything.
  //    - interior-entity predicates must be applied (those entities are
  //      never visited again);
  //    - e_i predicates may be deferred to a later step.
  struct Pending {
    Predicate pred;
    bool deferrable;
  };
  std::vector<Pending> preds;
  for (const Predicate& p : state.pending_preds) {
    preds.push_back({p, /*deferrable=*/i == j && first});
  }
  for (size_t m = i; m < j; ++m) {
    for (const Predicate& p : q.PredicatesOn(m)) {
      preds.push_back({p, /*deferrable=*/m == i});
    }
  }

  // Select attributes: same deferral rules as predicates.
  struct PendingAttr {
    FieldRef attr;
    bool deferrable;
  };
  std::vector<PendingAttr> attrs;
  for (const FieldRef& a : state.pending_attrs) {
    attrs.push_back({a, /*deferrable=*/i == j && first});
  }
  for (size_t m = i; m < j; ++m) {
    for (const FieldRef& a : SelectAttrsOn(q, m)) {
      attrs.push_back({a, /*deferrable=*/m == i});
    }
  }

  MatchOutcome out;
  std::vector<bool> applied(preds.size(), false);

  const FieldRef id_j = IdRef(q, j);
  bool id_bound = false;

  auto find_unapplied_eq = [&](const FieldRef& field) -> int {
    for (size_t p = 0; p < preds.size(); ++p) {
      if (!applied[p] && preds[p].pred.IsEquality() &&
          preds[p].pred.field == field) {
        return static_cast<int>(p);
      }
    }
    return -1;
  };

  // 3. Partition key: every field must be bound — by the held ID set or by
  //    an equality predicate parameter.
  for (const FieldRef& field : cf.partition_key()) {
    if (state.holds_ids && !id_bound && field == id_j) {
      out.access.partition_uses_id = true;
      id_bound = true;
      continue;
    }
    const int p = find_unapplied_eq(field);
    if (p < 0) return std::nullopt;
    out.access.partition_preds.push_back(preds[static_cast<size_t>(p)].pred);
    applied[static_cast<size_t>(p)] = true;
  }

  // 4. Clustering prefix: greedily consume leading clustering fields bound
  //    by equality (or by the held ID), then optionally push one range.
  double row_selectivity = 1.0;
  size_t pos = 0;
  const std::vector<FieldRef>& clustering = cf.clustering_key();
  while (pos < clustering.size()) {
    const FieldRef& field = clustering[pos];
    if (state.holds_ids && !id_bound && field == id_j) {
      out.access.clustering_uses_id = true;
      id_bound = true;
      row_selectivity /= std::max(1.0, FieldCard(graph, field));
      ++pos;
      continue;
    }
    const int p = find_unapplied_eq(field);
    if (p < 0) break;
    out.access.clustering_eq.push_back(preds[static_cast<size_t>(p)].pred);
    applied[static_cast<size_t>(p)] = true;
    row_selectivity /= std::max(1.0, FieldCard(graph, field));
    ++pos;
  }

  // The held ID set must constrain the lookup (otherwise the get ignores
  // the upstream join and returns unrelated records).
  if (state.holds_ids && !id_bound) return std::nullopt;

  // Order check: the clustering tail must start with the not-trivially-
  // constant ORDER BY fields for results to arrive pre-sorted.
  bool clustering_ordered = true;
  {
    std::vector<FieldRef> required;
    for (const OrderField& o : q.order_by()) {
      bool constant = false;
      for (const Predicate& p : q.predicates()) {
        if (p.IsEquality() && p.field == o.field) constant = true;
      }
      if (!constant) required.push_back(o.field);
    }
    for (size_t r = 0; r < required.size(); ++r) {
      if (pos + r >= clustering.size() || !(clustering[pos + r] == required[r])) {
        clustering_ordered = false;
        break;
      }
    }
  }

  // Range pushdown: the next clustering field may absorb one range
  // predicate.
  if (pos < clustering.size()) {
    for (size_t p = 0; p < preds.size(); ++p) {
      if (!applied[p] && preds[p].pred.IsRange() &&
          preds[p].pred.field == clustering[pos]) {
        out.access.pushed_range = preds[p].pred;
        applied[p] = true;
        row_selectivity *= est.Selectivity(preds[p].pred);
        break;
      }
    }
  }

  // 5. Remaining predicates: client-side filters if the field is stored,
  //    deferred if allowed, otherwise the column family cannot serve.
  double filter_selectivity = 1.0;
  for (size_t p = 0; p < preds.size(); ++p) {
    if (applied[p]) continue;
    if (cf.ContainsField(preds[p].pred.field)) {
      out.access.filters.push_back(preds[p].pred);
      filter_selectivity *= est.Selectivity(preds[p].pred);
    } else if (preds[p].deferrable) {
      out.new_pending_preds.push_back(preds[p].pred);
    } else {
      return std::nullopt;
    }
  }

  // 6. Select attributes: must be stored unless deferrable.
  for (const PendingAttr& a : attrs) {
    if (cf.ContainsField(a.attr)) continue;
    if (a.deferrable) {
      out.new_pending_attrs.push_back(a.attr);
    } else {
      return std::nullopt;
    }
  }

  // A materialization step must fully clear its pending work (this also
  // guarantees the state graph stays acyclic).
  if (materialize &&
      (!out.new_pending_preds.empty() || !out.new_pending_attrs.empty())) {
    return std::nullopt;
  }

  // 7. Does this step complete the query?
  size_t floor = q.path().NumEntities() - 1;
  for (const Predicate& p : q.predicates()) {
    floor = std::min(floor, static_cast<size_t>(
                                q.path().IndexOfEntity(p.field.entity)));
  }
  for (const FieldRef& s : q.select()) {
    floor = std::min(floor,
                     static_cast<size_t>(q.path().IndexOfEntity(s.entity)));
  }
  for (const OrderField& o : q.order_by()) {
    floor = std::min(floor, static_cast<size_t>(
                                q.path().IndexOfEntity(o.field.entity)));
  }
  out.completes = (i <= floor) && out.new_pending_preds.empty() &&
                  out.new_pending_attrs.empty();

  // If the plan continues, the next step needs the landing entity's ID.
  if (!out.completes && !cf.ContainsField(IdRef(q, i))) return std::nullopt;

  // 8. Cardinalities and cost.
  double bindings = 1.0;
  if (state.holds_ids) {
    bindings = est.MatchingEntities(q, j);
    for (const Predicate& p : state.pending_preds) {
      bindings /= std::max(1e-12, est.Selectivity(p));
    }
    const double entity_count = static_cast<double>(
        std::max<uint64_t>(1, graph.GetEntity(q.path().EntityAt(j)).count()));
    bindings = std::min(bindings, entity_count);
  }
  const double requests = state.holds_ids ? std::max(1.0, bindings) : 1.0;
  const double per_partition = cf.EntryCount() / cf.PartitionCount();
  const double rows_per_request =
      std::max(0.0, per_partition * row_selectivity);
  const double rows_scanned = requests * rows_per_request;
  out.access.requests = requests;
  out.access.rows_per_request = rows_per_request;
  out.access.rows_out = rows_scanned * filter_selectivity;
  out.access.step_cost = cost.GetCost(requests, rows_per_request, RowBytes(cf));
  if (!out.access.filters.empty()) {
    out.access.step_cost += cost.FilterCost(rows_scanned);
  }
  out.access.sorted_output = clustering_ordered && requests <= 1.0 + 1e-9;
  out.ordered_after = first ? out.access.sorted_output : state.ordered;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryPlanner
// ---------------------------------------------------------------------------

PlanSpace QueryPlanner::Build(const Query& query,
                              const std::vector<ColumnFamily>& pool) const {
  // Build runs on pool workers during the cost-calculation phase; the span
  // puts each query's plan-space construction on its worker's trace lane.
  obs::Span span("planner.build_space", "planner");
  static obs::Counter& spaces =
      obs::MetricsRegistry::Global().GetCounter("planner.spaces_built");
  static obs::Counter& states_counter =
      obs::MetricsRegistry::Global().GetCounter("planner.states");
  static obs::Counter& edges_counter =
      obs::MetricsRegistry::Global().GetCounter("planner.edges");
  static obs::Gauge& max_states =
      obs::MetricsRegistry::Global().GetGauge("planner.max_space_states");
  static obs::Histogram& state_depth = obs::MetricsRegistry::Global()
                                           .GetHistogram(
                                               "planner.space_states");

  PlanSpace space;
  space.query_ = &query;

  // Anchor: the deepest path entity referenced by the query.
  size_t anchor = 0;
  for (const Predicate& p : query.predicates()) {
    anchor = std::max(anchor, static_cast<size_t>(
                                  query.path().IndexOfEntity(p.field.entity)));
  }
  for (const FieldRef& s : query.select()) {
    anchor = std::max(anchor,
                      static_cast<size_t>(query.path().IndexOfEntity(s.entity)));
  }
  for (const OrderField& o : query.order_by()) {
    anchor = std::max(anchor, static_cast<size_t>(
                                  query.path().IndexOfEntity(o.field.entity)));
  }

  std::vector<StateDesc> descs;
  std::map<std::string, int> state_index;

  StateDesc initial;
  initial.entity_index = anchor;
  initial.pending_preds = query.PredicatesOn(anchor);
  initial.pending_attrs = SelectAttrsOn(query, anchor);
  initial.holds_ids = false;
  initial.ordered = query.order_by().empty();
  descs.push_back(initial);
  state_index[initial.Key()] = 0;
  space.states_.push_back(PlanSpaceState{
      anchor, initial.pending_preds, initial.pending_attrs, false, {}});

  // Breadth-first expansion of the decomposition DAG.
  for (size_t s = 0; s < descs.size(); ++s) {
    const StateDesc state = descs[s];  // copy: descs may reallocate
    const size_t j = state.entity_index;
    for (size_t i = j + 1; i-- > 0;) {
      for (size_t c = 0; c < pool.size(); ++c) {
        std::optional<MatchOutcome> m =
            TryMatch(query, state, i, pool[c], *est_, *cost_);
        if (!m.has_value()) continue;

        PlanSpaceEdge edge;
        edge.cf_index = static_cast<CfId>(c);
        edge.from_index = j;
        edge.to_index = i;
        edge.first = !state.holds_ids;
        edge.access = m->access;
        edge.cost = m->access.step_cost;
        if (m->completes) {
          edge.target_state = PlanSpaceEdge::kDone;
          if (!query.order_by().empty() && !m->ordered_after) {
            edge.adds_sort = true;
            edge.sort_cost = cost_->SortCost(m->access.rows_out);
            edge.cost += edge.sort_cost;
          }
        } else {
          StateDesc next;
          next.entity_index = i;
          next.pending_preds = m->new_pending_preds;
          next.pending_attrs = m->new_pending_attrs;
          next.holds_ids = true;
          next.ordered = m->ordered_after;
          const std::string key = next.Key();
          auto it = state_index.find(key);
          int target;
          if (it == state_index.end()) {
            target = static_cast<int>(descs.size());
            state_index[key] = target;
            descs.push_back(next);
            space.states_.push_back(PlanSpaceState{
                i, next.pending_preds, next.pending_attrs, true, {}});
          } else {
            target = it->second;
          }
          edge.target_state = target;
        }
        space.states_[s].edges.push_back(std::move(edge));
      }
    }
  }
  spaces.Increment();
  states_counter.Add(space.states_.size());
  size_t num_edges = 0;
  for (const PlanSpaceState& st : space.states_) num_edges += st.edges.size();
  edges_counter.Add(num_edges);
  max_states.SetMax(static_cast<double>(space.states_.size()));
  state_depth.Observe(static_cast<double>(space.states_.size()));
  return space;
}

PlanSpace QueryPlanner::RestrictToPool(const PlanSpace& super,
                                       const std::vector<CfId>& sub_to_super,
                                       size_t super_pool_size) {
  static obs::Counter& projected =
      obs::MetricsRegistry::Global().GetCounter("planner.spaces_projected");
  PlanSpace out;
  out.query_ = super.query_;
  if (super.states_.empty()) {
    // An empty space (unanswerable-support marker) projects to itself.
    projected.Increment();
    return out;
  }

  // Replay Build's BFS over the sub pool. A super state's edges are unique
  // per (to_index, cf): TryMatch yields at most one outcome per candidate
  // step, so the lookup below is exact. Sub states are discovered in the
  // same order Build(query, sub_pool) would discover them, and edge
  // payloads transfer verbatim with only cf_index/target_state renumbered.
  auto edge_key = [super_pool_size](size_t to_index, CfId cf) {
    return to_index * super_pool_size + static_cast<size_t>(cf);
  };
  std::vector<int> super_to_out(super.states_.size(), -1);
  std::vector<size_t> order;  // out state index -> super state index
  auto discover = [&](size_t super_index) {
    int& mapped = super_to_out[super_index];
    if (mapped < 0) {
      mapped = static_cast<int>(out.states_.size());
      order.push_back(super_index);
      const PlanSpaceState& s = super.states_[super_index];
      out.states_.push_back(PlanSpaceState{
          s.entity_index, s.pending_preds, s.pending_attrs, s.holds_ids, {}});
    }
    return mapped;
  };
  discover(0);
  std::unordered_map<size_t, const PlanSpaceEdge*> by_key;
  for (size_t s_out = 0; s_out < order.size(); ++s_out) {
    const PlanSpaceState& sup = super.states_[order[s_out]];
    by_key.clear();
    for (const PlanSpaceEdge& e : sup.edges) {
      by_key.emplace(edge_key(e.to_index, e.cf_index), &e);
    }
    const size_t j = sup.entity_index;
    for (size_t i = j + 1; i-- > 0;) {
      for (size_t c = 0; c < sub_to_super.size(); ++c) {
        auto it = by_key.find(edge_key(i, sub_to_super[c]));
        if (it == by_key.end()) continue;
        PlanSpaceEdge edge = *it->second;
        edge.cf_index = static_cast<CfId>(c);
        if (edge.target_state != PlanSpaceEdge::kDone) {
          edge.target_state = discover(static_cast<size_t>(edge.target_state));
        }
        out.states_[s_out].edges.push_back(std::move(edge));
      }
    }
  }
  projected.Increment();
  return out;
}

bool PlanSpace::HasPlan() const { return std::isfinite(BestCost()); }

double PlanSpace::BestCost(const std::vector<bool>& allowed) const {
  // Memoized min-cost-to-Done per state. The state graph is acyclic with
  // edges only decreasing (entity_index, pending) lexicographic measure, so
  // a reverse topological pass in discovery order works: compute with
  // simple recursion + memo.
  std::vector<double> memo(states_.size(), -1.0);
  // Iterate until fixpoint is unnecessary (DAG); do recursive lambda.
  std::vector<int> visiting(states_.size(), 0);
  auto rec = [&](auto&& self, size_t s) -> double {
    if (memo[s] >= 0.0) return memo[s];
    if (visiting[s]) return kInf;  // defensive: cycle guard
    visiting[s] = 1;
    double best = kInf;
    for (const PlanSpaceEdge& e : states_[s].edges) {
      if (!allowed.empty() && !allowed[e.cf_index]) continue;
      const double rest = e.target_state == PlanSpaceEdge::kDone
                              ? 0.0
                              : self(self, static_cast<size_t>(e.target_state));
      best = std::min(best, e.cost + rest);
    }
    visiting[s] = 0;
    memo[s] = best;
    return best;
  };
  if (states_.empty()) return kInf;
  return rec(rec, 0);
}

StatusOr<QueryPlan> PlanSpace::BestPlan(const std::vector<ColumnFamily>& pool,
                                        const std::vector<bool>& allowed) const {
  if (states_.empty() || !std::isfinite(BestCost(allowed))) {
    return Status::Infeasible("no plan can answer query: " +
                              (query_ ? query_->ToString() : std::string()));
  }
  std::vector<double> memo(states_.size(), -1.0);
  auto best_cost = [&](auto&& self, size_t s) -> double {
    if (memo[s] >= 0.0) return memo[s];
    double best = kInf;
    for (const PlanSpaceEdge& e : states_[s].edges) {
      if (!allowed.empty() && !allowed[e.cf_index]) continue;
      const double rest = e.target_state == PlanSpaceEdge::kDone
                              ? 0.0
                              : self(self, static_cast<size_t>(e.target_state));
      best = std::min(best, e.cost + rest);
    }
    memo[s] = best;
    return best;
  };

  QueryPlan plan;
  plan.query = query_;
  plan.cost = best_cost(best_cost, 0);
  size_t s = 0;
  while (true) {
    const PlanSpaceEdge* chosen = nullptr;
    double target_total = memo[s];
    for (const PlanSpaceEdge& e : states_[s].edges) {
      if (!allowed.empty() && !allowed[e.cf_index]) continue;
      const double rest = e.target_state == PlanSpaceEdge::kDone
                              ? 0.0
                              : memo[static_cast<size_t>(e.target_state)];
      if (std::abs(e.cost + rest - target_total) < 1e-9 ||
          e.cost + rest < target_total) {
        chosen = &e;
        break;
      }
    }
    if (chosen == nullptr) {
      return Status::Internal("plan extraction failed to follow best cost");
    }
    PlanStep step;
    step.cf = &pool[chosen->cf_index];
    step.cf_id = chosen->cf_index;
    step.from_index = chosen->from_index;
    step.to_index = chosen->to_index;
    step.first = chosen->first;
    step.access = chosen->access;
    plan.steps.push_back(std::move(step));
    if (chosen->adds_sort) {
      plan.needs_sort = true;
      plan.sort_cost = chosen->sort_cost;
    }
    if (chosen->target_state == PlanSpaceEdge::kDone) break;
    s = static_cast<size_t>(chosen->target_state);
  }
  return plan;
}

StatusOr<std::vector<std::pair<size_t, size_t>>> PlanSpace::BestPath(
    const std::vector<bool>& allowed) const {
  if (states_.empty() || !std::isfinite(BestCost(allowed))) {
    return Status::Infeasible("no plan under the given candidate restriction");
  }
  std::vector<double> memo(states_.size(), -1.0);
  auto best_cost = [&](auto&& self, size_t s) -> double {
    if (memo[s] >= 0.0) return memo[s];
    double best = kInf;
    for (const PlanSpaceEdge& e : states_[s].edges) {
      if (!allowed.empty() && !allowed[e.cf_index]) continue;
      const double rest = e.target_state == PlanSpaceEdge::kDone
                              ? 0.0
                              : self(self, static_cast<size_t>(e.target_state));
      best = std::min(best, e.cost + rest);
    }
    memo[s] = best;
    return best;
  };
  best_cost(best_cost, 0);

  std::vector<std::pair<size_t, size_t>> path;
  size_t s = 0;
  while (true) {
    int chosen = -1;
    for (size_t e = 0; e < states_[s].edges.size(); ++e) {
      const PlanSpaceEdge& edge = states_[s].edges[e];
      if (!allowed.empty() && !allowed[edge.cf_index]) continue;
      const double rest =
          edge.target_state == PlanSpaceEdge::kDone
              ? 0.0
              : memo[static_cast<size_t>(edge.target_state)];
      if (std::abs(edge.cost + rest - memo[s]) < 1e-9) {
        chosen = static_cast<int>(e);
        break;
      }
    }
    if (chosen < 0) {
      return Status::Internal("path extraction failed to follow best cost");
    }
    path.emplace_back(s, static_cast<size_t>(chosen));
    const int target = states_[s].edges[static_cast<size_t>(chosen)].target_state;
    if (target == PlanSpaceEdge::kDone) break;
    s = static_cast<size_t>(target);
  }
  return path;
}

std::string PlanSpace::ToString(const std::vector<ColumnFamily>& pool) const {
  std::string out;
  for (size_t s = 0; s < states_.size(); ++s) {
    const PlanSpaceState& st = states_[s];
    out += "state " + std::to_string(s) + " @" +
           std::to_string(st.entity_index) +
           (st.holds_ids ? "" : " (initial)") + "\n";
    for (const PlanSpaceEdge& e : st.edges) {
      out += "  -> " +
             (e.target_state == PlanSpaceEdge::kDone
                  ? std::string("DONE")
                  : std::to_string(e.target_state)) +
             " via " + pool[e.cf_index].ToString() +
             " cost=" + std::to_string(e.cost) + "\n";
    }
  }
  return out;
}

StatusOr<QueryPlan> QueryPlanner::PlanForSchema(
    const Query& query, const std::vector<ColumnFamily>& pool) const {
  PlanSpace space = Build(query, pool);
  return space.BestPlan(pool);
}

}  // namespace nose
