#ifndef NOSE_PLANNER_PLAN_SPACE_H_
#define NOSE_PLANNER_PLAN_SPACE_H_

#include <string>
#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "planner/plan.h"
#include "schema/column_family.h"
#include "util/statusor.h"
#include "workload/query.h"

namespace nose {

/// An edge of the plan space: use the candidate column family with id
/// `cf_index` to advance from the owning state to `target_state` (kDone
/// when the query is complete after this step). The id is the candidate's
/// dense CfId in the pool the space was built against, so per-candidate
/// arrays (allowed/selected/δ variables) index by it directly.
struct PlanSpaceEdge {
  static constexpr int kDone = -1;

  int target_state = kDone;
  CfId cf_index = 0;
  size_t from_index = 0;  ///< path entity index the step starts at (j)
  size_t to_index = 0;    ///< path entity index the step lands on (i)
  bool first = false;
  AccessDetail access;
  /// Edge cost: step cost plus, on query-completing edges, any client sort.
  double cost = 0.0;
  bool adds_sort = false;
  double sort_cost = 0.0;
};

/// A state of the recursive query decomposition (paper Fig. 5/6): the plan
/// has resolved the path suffix above entity `entity_index`; `pending_*`
/// are predicates/select attributes of that entity not yet applied/fetched
/// (deferred by a relaxed column family); `holds_ids` distinguishes the
/// initial state (only statement parameters in hand) from later states
/// (a concrete ID set in hand).
struct PlanSpaceState {
  size_t entity_index = 0;
  std::vector<Predicate> pending_preds;
  std::vector<FieldRef> pending_attrs;
  bool holds_ids = false;
  /// Outgoing alternatives. Empty means the state is a dead end.
  std::vector<PlanSpaceEdge> edges;
};

/// The full space of implementation plans for one query over a candidate
/// pool. States form a DAG rooted at states[0]; every root-to-kDone path is
/// a valid plan. The schema optimizer turns this DAG into BIP constraints;
/// plan recommendation extracts the min-cost path.
class PlanSpace {
 public:
  const Query* query() const { return query_; }
  const std::vector<PlanSpaceState>& states() const { return states_; }
  bool HasPlan() const;

  /// Minimum plan cost restricted to candidates where `allowed[cf_index]`
  /// is true (all candidates when `allowed` is empty). Returns infinity if
  /// no complete plan survives.
  double BestCost(const std::vector<bool>& allowed = {}) const;

  /// Extracts the min-cost plan under the same restriction. Plan steps
  /// point into `pool` and carry their CfId (the pool index).
  StatusOr<QueryPlan> BestPlan(const std::vector<ColumnFamily>& pool,
                               const std::vector<bool>& allowed = {}) const;
  StatusOr<QueryPlan> BestPlan(const CandidatePool& pool,
                               const std::vector<bool>& allowed = {}) const {
    return BestPlan(pool.candidates(), allowed);
  }

  /// The (state index, edge index) pairs of the min-cost plan — the raw
  /// path through the DAG (used e.g. to seed BIP warm starts).
  StatusOr<std::vector<std::pair<size_t, size_t>>> BestPath(
      const std::vector<bool>& allowed = {}) const;

  std::string ToString(const std::vector<ColumnFamily>& pool) const;

 private:
  friend class QueryPlanner;

  const Query* query_ = nullptr;
  std::vector<PlanSpaceState> states_;
};

/// Builds plan spaces: enumerates every way of answering a query with gets
/// against the candidate pool plus client-side filter/sort/join steps.
class QueryPlanner {
 public:
  QueryPlanner(const CostModel* cost_model, const CardinalityEstimator* est)
      : cost_(cost_model), est_(est) {}

  /// Explores all decomposition states of `query` against `pool`.
  /// The result references `query` (not owned). Build is a pure function
  /// of (query, pool) — safe to run concurrently for different queries
  /// over the same pool.
  PlanSpace Build(const Query& query,
                  const std::vector<ColumnFamily>& pool) const;
  PlanSpace Build(const Query& query, const CandidatePool& pool) const {
    return Build(query, pool.candidates());
  }

  /// Convenience: the best plan for `query` using only `pool` (e.g. a fixed
  /// schema such as the normalized/expert baselines). Fails if the pool
  /// cannot answer the query.
  StatusOr<QueryPlan> PlanForSchema(const Query& query,
                                    const std::vector<ColumnFamily>& pool) const;

  /// Projects `super` — a space built over a pool where sub-pool candidate
  /// `c` sits at id `sub_to_super[c]` — onto the sub pool, returning
  /// exactly what Build(query, sub_pool) would: a per-candidate step match
  /// depends only on (query, state, candidate), and Build's BFS visits
  /// states and edges in a deterministic order this replay mirrors, so
  /// edge payloads are copied bit-for-bit instead of re-matched and
  /// re-priced. This is how AdviseAllMixes shares plan spaces across
  /// statement-set groups whose pools nest (e.g. Browsing ⊆ Bidding).
  static PlanSpace RestrictToPool(const PlanSpace& super,
                                  const std::vector<CfId>& sub_to_super,
                                  size_t super_pool_size);

 private:
  const CostModel* cost_;
  const CardinalityEstimator* est_;
};

}  // namespace nose

#endif  // NOSE_PLANNER_PLAN_SPACE_H_
