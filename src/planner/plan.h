#ifndef NOSE_PLANNER_PLAN_H_
#define NOSE_PLANNER_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "schema/candidate_pool.h"
#include "schema/column_family.h"
#include "workload/predicate.h"
#include "workload/query.h"

namespace nose {

/// How one get-based plan step accesses a column family: which predicates
/// are bound to the partition key, which are consumed by the clustering
/// prefix, which range is pushed into the clustering scan, and which are
/// filtered client-side afterwards (the application model's get / filter /
/// sort / join primitives, paper §IV-B).
struct AccessDetail {
  /// Equality predicates bound to partition-key fields.
  std::vector<Predicate> partition_preds;
  /// True if the held entity-ID set binds a partition-key field.
  bool partition_uses_id = false;
  /// Equality predicates consumed as a clustering-key prefix.
  std::vector<Predicate> clustering_eq;
  /// True if the held entity-ID set binds a clustering-prefix field.
  bool clustering_uses_id = false;
  /// Range predicate pushed into the clustering scan, if any.
  std::optional<Predicate> pushed_range;
  /// Predicates evaluated client-side on the fetched rows.
  std::vector<Predicate> filters;
  /// True if this step's output arrives in the query's requested order.
  bool sorted_output = false;

  // --- cost bookkeeping (expectations) ---
  double requests = 1.0;          ///< number of get operations issued
  double rows_per_request = 1.0;  ///< records scanned per get
  double rows_out = 1.0;          ///< rows surviving client filters
  double step_cost = 0.0;         ///< get + filter cost of this step
};

/// One executed step of a query plan: a get against `cf` walking the query
/// path from entity index `from_index` down to `to_index` (equal indices
/// mean an in-place materialization lookup), followed by client filtering.
struct PlanStep {
  const ColumnFamily* cf = nullptr;
  /// Interned id of `cf` in the CandidatePool the plan was extracted from
  /// (kInvalidCfId for plans built against ad-hoc pools, e.g. the
  /// normalized/expert baselines). Downstream layers use the id for
  /// identity — schema membership, δ_j lookup, store-name resolution —
  /// instead of hashing the canonical key string.
  CfId cf_id = kInvalidCfId;
  size_t from_index = 0;
  size_t to_index = 0;
  /// True for the plan's opening step (keyed by statement parameters
  /// rather than by IDs produced by the previous step).
  bool first = false;
  AccessDetail access;

  std::string ToString() const;
};

/// A complete implementation plan for one query: a chain of lookups joined
/// client-side, plus an optional final sort.
struct QueryPlan {
  const Query* query = nullptr;
  /// When set, keeps `query` alive (used for synthesized support queries
  /// that have no owner elsewhere).
  std::shared_ptr<const Query> owned_query;
  std::vector<PlanStep> steps;
  bool needs_sort = false;
  double sort_cost = 0.0;
  /// Total estimated cost including the sort.
  double cost = 0.0;

  std::string ToString() const;
};

}  // namespace nose

#endif  // NOSE_PLANNER_PLAN_H_
