#include "planner/update_planner.h"

#include <algorithm>
#include <memory>
#include <set>

#include "planner/plan_space.h"
#include "schema/schema.h"
#include "util/strings.h"

namespace nose {

namespace {

FieldRef EntityIdRef(const EntityGraph& graph, const std::string& entity) {
  return FieldRef{entity, graph.GetEntity(entity).id_field().name};
}

/// Key (partition + clustering) fields of `cf`.
std::vector<FieldRef> KeyFields(const ColumnFamily& cf) {
  std::vector<FieldRef> out = cf.partition_key();
  out.insert(out.end(), cf.clustering_key().begin(), cf.clustering_key().end());
  return out;
}

/// Builds a support query over `path` selecting `select` under `preds`,
/// dropping it if nothing needs to be selected. Queries that fail
/// validation (no equality anchor) are skipped defensively.
void EmitSupportQuery(KeyPath path, std::vector<FieldRef> select,
                      std::vector<Predicate> preds, std::vector<Query>* out) {
  if (select.empty()) return;
  Query q(std::move(path), std::move(select), std::move(preds), {});
  if (q.Validate().ok()) out->push_back(std::move(q));
}

/// Support queries for one "side" of a split point: the sub-path of
/// cf.path from `anchor_index` to one end, keyed by the anchor entity's ID
/// (whose value the statement supplies as a parameter named `param`).
/// Recovers the key attributes of `cf` that live beyond the anchor on that
/// side, plus — when a whole record must be constructed (INSERT/CONNECT) —
/// the value attributes on that side not supplied by the statement
/// (`target_entity`'s own attributes come with the statement).
void EmitSideSupport(const ColumnFamily& cf, size_t anchor_index, bool left,
                     const std::string& param, const std::string& target_entity,
                     bool include_values, std::vector<Query>* out) {
  const KeyPath& path = cf.path();
  const size_t first = left ? 0 : anchor_index;
  const size_t last = left ? anchor_index : path.NumEntities() - 1;
  KeyPath side = path.SubPath(first, last);
  const EntityGraph& graph = *cf.graph();
  const std::string& anchor_entity = path.EntityAt(anchor_index);
  const FieldRef anchor_id = EntityIdRef(graph, anchor_entity);

  std::vector<FieldRef> select;
  for (const FieldRef& f : KeyFields(cf)) {
    if (f.entity == anchor_entity) continue;  // supplied or equal to anchor id
    if (f.entity == target_entity) continue;  // supplied by the statement
    if (!side.ContainsEntity(f.entity)) continue;
    select.push_back(f);
  }
  if (include_values) {
    for (const FieldRef& f : cf.values()) {
      if (f.entity == target_entity) continue;
      if (f == anchor_id) continue;
      if (!side.ContainsEntity(f.entity)) continue;
      if (std::find(select.begin(), select.end(), f) == select.end()) {
        select.push_back(f);
      }
    }
  }
  std::vector<Predicate> preds;
  preds.push_back(Predicate{anchor_id, PredicateOp::kEq, std::nullopt, param});
  EmitSupportQuery(std::move(side), std::move(select), std::move(preds), out);
}

/// True if `update` changes a partition/clustering attribute of `cf`
/// (forcing a delete + reinsert of whole records).
bool ChangesKeyOf(const Update& update, const ColumnFamily& cf) {
  if (update.kind() != UpdateKind::kUpdate) return false;
  for (const FieldRef& f : update.ModifiedFields()) {
    const auto& pk = cf.partition_key();
    const auto& ck = cf.clustering_key();
    if (std::find(pk.begin(), pk.end(), f) != pk.end() ||
        std::find(ck.begin(), ck.end(), f) != ck.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool Modifies(const Update& update, const ColumnFamily& cf) {
  switch (update.kind()) {
    case UpdateKind::kUpdate: {
      for (const FieldRef& f : update.ModifiedFields()) {
        if (cf.ContainsField(f)) return true;
      }
      return false;
    }
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      return cf.TouchesEntity(update.entity());
    case UpdateKind::kConnect:
    case UpdateKind::kDisconnect:
      return cf.path().TraversesRelationship(
          update.path().steps()[0].relationship);
  }
  return false;
}

std::vector<Query> SupportQueries(const Update& update,
                                  const ColumnFamily& cf) {
  std::vector<Query> out;
  const EntityGraph& graph = *cf.graph();
  const std::string& target = update.entity();

  switch (update.kind()) {
    case UpdateKind::kUpdate:
    case UpdateKind::kDelete: {
      // Key attributes already known: those bound by equality predicates of
      // the statement.
      std::set<FieldRef> bound;
      for (const Predicate& p : update.predicates()) {
        if (p.IsEquality()) bound.insert(p.field);
      }
      std::vector<FieldRef> missing;
      for (const FieldRef& f : KeyFields(cf)) {
        if (bound.count(f) == 0) missing.push_back(f);
      }
      // A key-changing UPDATE rewrites whole records, so the surviving
      // value attributes must be recovered too.
      if (ChangesKeyOf(update, cf)) {
        std::set<std::string> modified;
        for (const FieldRef& f : update.ModifiedFields()) {
          modified.insert(f.QualifiedName());
        }
        for (const FieldRef& f : cf.values()) {
          if (bound.count(f) > 0 || modified.count(f.QualifiedName()) > 0) {
            continue;
          }
          if (std::find(missing.begin(), missing.end(), f) == missing.end()) {
            missing.push_back(f);
          }
        }
      }
      // Can the whole lookup run over cf's own path?
      const bool preds_on_cf_path = std::all_of(
          update.predicates().begin(), update.predicates().end(),
          [&](const Predicate& p) {
            return cf.path().ContainsEntity(p.field.entity);
          });
      if (preds_on_cf_path) {
        EmitSupportQuery(cf.path(), std::move(missing), update.predicates(),
                         &out);
      } else {
        // Two-stage: resolve the target entity IDs over the update's own
        // path, then recover the remaining key attributes over cf's path.
        const FieldRef target_id = EntityIdRef(graph, target);
        EmitSupportQuery(update.path(), {target_id}, update.predicates(),
                         &out);
        std::vector<FieldRef> rest;
        for (const FieldRef& f : missing) {
          if (!(f == target_id)) rest.push_back(f);
        }
        std::vector<Predicate> preds;
        preds.push_back(Predicate{target_id, PredicateOp::kEq, std::nullopt,
                                  "support_" + target});
        EmitSupportQuery(cf.path(), std::move(rest), std::move(preds), &out);
      }
      break;
    }
    case UpdateKind::kInsert: {
      // The inserted entity's own attributes come with the statement. For
      // every CONNECT clause whose relationship lies on cf's path, the key
      // attributes of entities beyond the connected neighbor must be
      // recovered from the neighbor's ID.
      const int target_index = cf.path().IndexOfEntity(target);
      if (target_index < 0) break;
      for (const ConnectClause& c : update.connects()) {
        std::optional<PathStep> step = graph.FindStep(target, c.step_name);
        if (!step.has_value()) continue;
        if (!cf.path().TraversesRelationship(step->relationship)) continue;
        const std::string& neighbor = graph.StepTarget(target, *step);
        const int nidx = cf.path().IndexOfEntity(neighbor);
        if (nidx < 0) continue;
        const bool left = nidx < target_index;
        EmitSideSupport(cf, static_cast<size_t>(nidx), left, c.param,
                        target, /*include_values=*/true, &out);
      }
      break;
    }
    case UpdateKind::kConnect:
    case UpdateKind::kDisconnect: {
      // Both endpoint IDs are parameters; key attributes strictly beyond
      // each endpoint must be recovered.
      const int rel = update.path().steps()[0].relationship;
      const KeyPath& path = cf.path();
      int split = -1;
      for (size_t s = 0; s < path.steps().size(); ++s) {
        if (path.steps()[s].relationship == rel) {
          split = static_cast<int>(s);
          break;
        }
      }
      if (split < 0) break;
      const std::string& left_entity = path.EntityAt(static_cast<size_t>(split));
      const std::string& from_entity = update.entity();
      const std::string lparam =
          left_entity == from_entity ? update.from_param() : update.to_param();
      const std::string rparam =
          left_entity == from_entity ? update.to_param() : update.from_param();
      EmitSideSupport(cf, static_cast<size_t>(split), /*left=*/true, lparam,
                      /*target_entity=*/"", /*include_values=*/true, &out);
      EmitSideSupport(cf, static_cast<size_t>(split) + 1, /*left=*/false,
                      rparam, /*target_entity=*/"", /*include_values=*/true,
                      &out);
      break;
    }
  }
  return out;
}

double ModifiedRowEstimate(const Update& update, const ColumnFamily& cf,
                           const CardinalityEstimator& est) {
  const EntityGraph& graph = *cf.graph();
  switch (update.kind()) {
    case UpdateKind::kUpdate:
    case UpdateKind::kDelete: {
      double sel = 1.0;
      for (const Predicate& p : update.predicates()) {
        sel *= est.Selectivity(p);
      }
      return std::max(1.0, cf.EntryCount() * sel);
    }
    case UpdateKind::kInsert: {
      const double per_entity =
          cf.EntryCount() /
          static_cast<double>(
              std::max<uint64_t>(1, graph.GetEntity(update.entity()).count()));
      return std::max(1.0, per_entity);
    }
    case UpdateKind::kConnect:
    case UpdateKind::kDisconnect: {
      const Relationship& rel =
          graph.relationship(update.path().steps()[0].relationship);
      double links = static_cast<double>(rel.link_count);
      if (links <= 0) {
        links = static_cast<double>(
            std::max(graph.GetEntity(rel.from_entity).count(),
                     graph.GetEntity(rel.to_entity).count()));
      }
      return std::max(1.0, cf.EntryCount() / std::max(1.0, links));
    }
  }
  return 1.0;
}

double UpdateWriteCost(const Update& update, const ColumnFamily& cf,
                       const CardinalityEstimator& est, const CostModel& cost) {
  const double rows = ModifiedRowEstimate(update, cf, est);
  double bytes = 0.0;
  const EntityGraph& graph = *cf.graph();
  for (const FieldRef& ref : cf.clustering_key()) {
    bytes += graph.GetEntity(ref.entity).FindField(ref.field)->SizeBytes();
  }
  for (const FieldRef& ref : cf.values()) {
    bytes += graph.GetEntity(ref.entity).FindField(ref.field)->SizeBytes();
  }
  // An UPDATE that changes a key attribute must delete old records and
  // insert replacements; other statements write each affected record once
  // (paper §VI-B: delete the old record, insert the new one).
  double writes = rows;
  if (update.kind() == UpdateKind::kUpdate) {
    for (const FieldRef& f : update.ModifiedFields()) {
      const auto& pk = cf.partition_key();
      const auto& ck = cf.clustering_key();
      if (std::find(pk.begin(), pk.end(), f) != pk.end() ||
          std::find(ck.begin(), ck.end(), f) != ck.end()) {
        writes = 2.0 * rows;
        break;
      }
    }
  } else if (update.kind() == UpdateKind::kDelete ||
             update.kind() == UpdateKind::kDisconnect) {
    writes = rows;
  }
  return cost.PutCost(/*requests=*/std::max(1.0, writes), writes, bytes);
}

StatusOr<UpdatePlan> PlanUpdateForSchema(const Update& update,
                                         const Schema& schema,
                                         const QueryPlanner& planner,
                                         const CardinalityEstimator& est,
                                         const CostModel& cost) {
  UpdatePlan plan;
  plan.update = &update;
  for (const ColumnFamily& cf : schema.column_families()) {
    if (!Modifies(update, cf)) continue;
    UpdatePlanPart part;
    part.cf = &cf;
    part.rows = ModifiedRowEstimate(update, cf, est);
    part.write_cost = UpdateWriteCost(update, cf, est, cost);
    part.delete_then_insert = ChangesKeyOf(update, cf);
    double part_cost = part.write_cost;
    for (const Query& sq : SupportQueries(update, cf)) {
      NOSE_ASSIGN_OR_RETURN(QueryPlan sp,
                            planner.PlanForSchema(sq, schema.column_families()));
      sp.owned_query = std::make_shared<Query>(sq);
      sp.query = sp.owned_query.get();
      part_cost += sp.cost;
      part.support_plans.push_back(std::move(sp));
    }
    plan.cost += part_cost;
    plan.parts.push_back(std::move(part));
  }
  return plan;
}

std::string UpdatePlan::ToString() const {
  std::string out;
  if (update != nullptr) out += update->ToString() + "\n";
  for (const UpdatePlanPart& part : parts) {
    out += "  maintain " + part.cf->ToString() + "\n";
    for (const QueryPlan& sp : part.support_plans) {
      std::vector<std::string> lines = StrSplit(sp.ToString(), '\n');
      for (const std::string& line : lines) {
        if (!line.empty()) out += "    " + line + "\n";
      }
    }
    out += "    " + std::string(part.delete_then_insert ? "DELETE+INSERT"
                                                        : "WRITE") +
           " ~" + std::to_string(part.rows) + " rows\n";
  }
  out += "  estimated cost: " + std::to_string(cost) + "\n";
  return out;
}

}  // namespace nose
