#ifndef NOSE_PLANNER_UPDATE_PLANNER_H_
#define NOSE_PLANNER_UPDATE_PLANNER_H_

#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "planner/plan.h"
#include "schema/column_family.h"
#include "util/statusor.h"
#include "workload/update.h"

namespace nose {

/// True if executing `update` requires modifying records of `cf`
/// (the paper's Modifies? predicate, Algorithm 1):
///  - UPDATE: cf stores one of the SET fields;
///  - INSERT/DELETE: cf stores any field of the written entity;
///  - CONNECT/DISCONNECT: cf's path traverses the relationship.
bool Modifies(const Update& update, const ColumnFamily& cf);

/// Builds the support queries needed to maintain `cf` under `update`
/// (paper §VI-B): queries that recover the partition/clustering key
/// attributes of every record that must be rewritten, given only the
/// update's parameters. May legitimately be empty (all key attributes are
/// supplied by the statement). Requires Modifies(update, cf).
std::vector<Query> SupportQueries(const Update& update, const ColumnFamily& cf);

/// Expected number of `cf` records that `update` rewrites.
double ModifiedRowEstimate(const Update& update, const ColumnFamily& cf,
                           const CardinalityEstimator& est);

/// Cost of the write portion (deletes + inserts, excluding support
/// queries) of maintaining `cf` under one execution of `update`.
double UpdateWriteCost(const Update& update, const ColumnFamily& cf,
                       const CardinalityEstimator& est, const CostModel& cost);

/// Maintenance work for one (update, column family) pair in a concrete
/// schema: execute the support query plans, then delete/insert records.
struct UpdatePlanPart {
  const ColumnFamily* cf = nullptr;
  /// Interned CandidatePool id of `cf` (kInvalidCfId outside the advisor
  /// pipeline); see PlanStep::cf_id.
  CfId cf_id = kInvalidCfId;
  std::vector<QueryPlan> support_plans;
  /// True if the rewrite must delete old records before inserting (a key
  /// attribute changes); otherwise inserts overwrite in place.
  bool delete_then_insert = false;
  double rows = 0.0;
  double write_cost = 0.0;
};

/// Full implementation plan for an update against a schema.
struct UpdatePlan {
  const Update* update = nullptr;
  std::vector<UpdatePlanPart> parts;
  double cost = 0.0;

  std::string ToString() const;
};

class QueryPlanner;
class Schema;

/// Plans `update` against a fixed schema (the baselines of §VII-A): for
/// every column family the update modifies, plans its support queries with
/// `planner` restricted to the schema and estimates the write cost. Fails
/// if a required support query cannot be answered by the schema.
StatusOr<UpdatePlan> PlanUpdateForSchema(const Update& update,
                                         const Schema& schema,
                                         const QueryPlanner& planner,
                                         const CardinalityEstimator& est,
                                         const CostModel& cost);

}  // namespace nose

#endif  // NOSE_PLANNER_UPDATE_PLANNER_H_
