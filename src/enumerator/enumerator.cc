#include "enumerator/enumerator.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/update_planner.h"

namespace nose {

namespace {

FieldRef IdRefOf(const EntityGraph& graph, const std::string& entity) {
  return FieldRef{entity, graph.GetEntity(entity).id_field().name};
}

void AddUnique(std::vector<FieldRef>* list, const FieldRef& ref) {
  if (std::find(list->begin(), list->end(), ref) == list->end()) {
    list->push_back(ref);
  }
}

/// Removes from `values` anything already present in `partition`/`clustering`.
std::vector<FieldRef> PruneValues(const std::vector<FieldRef>& values,
                                  const std::vector<FieldRef>& partition,
                                  const std::vector<FieldRef>& clustering) {
  std::vector<FieldRef> out;
  for (const FieldRef& v : values) {
    if (std::find(partition.begin(), partition.end(), v) != partition.end())
      continue;
    if (std::find(clustering.begin(), clustering.end(), v) != clustering.end())
      continue;
    AddUnique(&out, v);
  }
  return out;
}

/// Attempts to register a candidate; silently drops invalid combinations
/// (e.g. empty partition key after relaxation).
void TryAdd(CandidatePool* pool, const KeyPath& path,
            std::vector<FieldRef> partition, std::vector<FieldRef> clustering,
            std::vector<FieldRef> values) {
  if (partition.empty()) return;
  // Drop clustering fields duplicated in the partition key.
  std::vector<FieldRef> ck;
  for (const FieldRef& f : clustering) {
    if (std::find(partition.begin(), partition.end(), f) != partition.end())
      continue;
    AddUnique(&ck, f);
  }
  std::vector<FieldRef> vals = PruneValues(values, partition, ck);
  // A single-entity family with nothing beyond its partition key carries no
  // information worth a get.
  if (ck.empty() && vals.empty() && path.NumEntities() == 1) return;
  auto cf = ColumnFamily::Create(path, std::move(partition), std::move(ck),
                                 std::move(vals));
  if (cf.ok()) pool->Add(std::move(cf).value());
}

/// Everything the enumerator needs to know about one query, pre-indexed by
/// path position.
struct QueryInfo {
  const Query* query;
  size_t lo;  ///< shallowest referenced path index
  size_t hi;  ///< deepest referenced path index (the plan anchor)

  std::vector<Predicate> PredsIn(size_t a, size_t b) const {  // [a, b]
    std::vector<Predicate> out;
    for (const Predicate& p : query->predicates()) {
      const int pos = query->path().IndexOfEntity(p.field.entity);
      if (pos >= static_cast<int>(a) && pos <= static_cast<int>(b)) {
        out.push_back(p);
      }
    }
    return out;
  }

  std::vector<FieldRef> SelectIn(size_t a, size_t b) const {
    std::vector<FieldRef> out;
    for (const FieldRef& s : query->select()) {
      const int pos = query->path().IndexOfEntity(s.entity);
      if (pos >= static_cast<int>(a) && pos <= static_cast<int>(b)) {
        AddUnique(&out, s);
      }
    }
    return out;
  }

  std::vector<FieldRef> OrdersIn(size_t a, size_t b) const {
    std::vector<FieldRef> out;
    for (const OrderField& o : query->order_by()) {
      const int pos = query->path().IndexOfEntity(o.field.entity);
      if (pos >= static_cast<int>(a) && pos <= static_cast<int>(b)) {
        AddUnique(&out, o.field);
      }
    }
    return out;
  }
};

QueryInfo AnalyzeQuery(const Query& q) {
  QueryInfo info;
  info.query = &q;
  size_t lo = q.path().NumEntities() - 1;
  size_t hi = 0;
  auto track = [&](const std::string& entity) {
    const int pos = q.path().IndexOfEntity(entity);
    if (pos < 0) return;
    lo = std::min(lo, static_cast<size_t>(pos));
    hi = std::max(hi, static_cast<size_t>(pos));
  };
  for (const Predicate& p : q.predicates()) track(p.field.entity);
  for (const FieldRef& s : q.select()) track(s.entity);
  for (const OrderField& o : q.order_by()) track(o.field.entity);
  if (lo > hi) {  // degenerate; anchor at path start
    lo = hi = 0;
  }
  info.lo = lo;
  info.hi = hi;
  return info;
}

/// IDs of path entities [a, b], target-first (e_a, e_a+1, ..., e_b).
std::vector<FieldRef> SegmentIds(const Query& q, size_t a, size_t b) {
  std::vector<FieldRef> out;
  for (size_t m = a; m <= b; ++m) {
    out.push_back(IdRefOf(*q.graph(), q.path().EntityAt(m)));
  }
  return out;
}

std::vector<FieldRef> FieldsOf(const std::vector<Predicate>& preds) {
  std::vector<FieldRef> out;
  for (const Predicate& p : preds) AddUnique(&out, p.field);
  return out;
}

}  // namespace

void Enumerator::EnumerateQuery(const Query& q, CandidatePool* pool) const {
  const QueryInfo info = AnalyzeQuery(q);
  const KeyPath& path = q.path();

  // --- Prefix-query candidates: segments [i, hi] anchored at the deepest
  //     referenced entity (paper Fig. 5). ---
  for (size_t i = info.lo; i <= info.hi; ++i) {
    const KeyPath segment = path.SubPath(i, info.hi);
    std::vector<Predicate> seg_preds = info.PredsIn(i, info.hi);
    std::vector<Predicate> eq_preds, range_preds;
    for (const Predicate& p : seg_preds) {
      (p.IsEquality() ? eq_preds : range_preds).push_back(p);
    }
    if (eq_preds.empty()) continue;  // cannot anchor the first get

    const std::vector<FieldRef> ids = SegmentIds(q, i, info.hi);
    const std::vector<FieldRef> orders = info.OrdersIn(i, info.hi);
    // Select attributes carried by a prefix covering [i, hi]: those of the
    // segment entities (the remainder below i fetches the rest).
    const std::vector<FieldRef> select_attrs = info.SelectIn(i, info.hi);

    // Relaxation subsets: predicates on the prefix query's target entity
    // e_i may be moved out of the key into values (paper §IV-A2). Subset 0
    // is the unrelaxed variant.
    std::vector<Predicate> removable;
    if (options_.enable_relaxation) {
      for (const Predicate& p : seg_preds) {
        if (p.field.entity == path.EntityAt(i)) removable.push_back(p);
      }
    }
    const size_t subsets = static_cast<size_t>(1) << removable.size();
    for (size_t mask = 0; mask < subsets; ++mask) {
      std::set<std::string> removed;
      for (size_t r = 0; r < removable.size(); ++r) {
        if (mask & (static_cast<size_t>(1) << r)) {
          removed.insert(removable[r].ToString());
        }
      }
      std::vector<Predicate> eq_kept, range_kept, dropped;
      for (const Predicate& p : eq_preds) {
        (removed.count(p.ToString()) ? dropped : eq_kept).push_back(p);
      }
      for (const Predicate& p : range_preds) {
        (removed.count(p.ToString()) ? dropped : range_kept).push_back(p);
      }
      if (eq_kept.empty()) continue;  // at least one equality must remain

      const std::vector<FieldRef> partition = FieldsOf(eq_kept);
      // Clustering variants: with ORDER BY fields leading (pre-sorted
      // results) and without (client-side sort, ranges pushable).
      for (int with_orders = orders.empty() ? 0 : 1; with_orders >= 0;
           --with_orders) {
        std::vector<FieldRef> clustering;
        if (with_orders == 1) {
          for (const FieldRef& o : orders) AddUnique(&clustering, o);
        }
        for (const FieldRef& r : FieldsOf(range_kept)) {
          AddUnique(&clustering, r);
        }
        for (const FieldRef& id : ids) AddUnique(&clustering, id);

        // Full materialized view: carries select attributes and dropped
        // predicate fields (for client-side filtering). When ORDER BY
        // fields are left out of the clustering key, they ride along as
        // values so the client-side sort has them in hand.
        std::vector<FieldRef> mv_values = select_attrs;
        for (const FieldRef& f : FieldsOf(dropped)) AddUnique(&mv_values, f);
        if (with_orders == 0) {
          for (const FieldRef& o : orders) AddUnique(&mv_values, o);
        }
        TryAdd(pool, segment, partition, clustering, mv_values);

        if (options_.enable_splits) {
          // Key-only variant (paper: "one that returns only the key
          // attributes"); dropped-predicate fields may still ride along so
          // filtering stays possible without a second lookup.
          TryAdd(pool, segment, partition, clustering, {});
          if (!dropped.empty()) {
            TryAdd(pool, segment, partition, clustering, FieldsOf(dropped));
          }
        }
      }
    }
  }

  // --- Remainder-segment candidates: [a, b] link families keyed by the
  //     upper entity's ID (paper Fig. 6: CF4-style). ---
  for (size_t b = info.lo + 1; b <= info.hi; ++b) {
    for (size_t a = info.lo; a < b; ++a) {
      const KeyPath segment = path.SubPath(a, b);
      const std::vector<FieldRef> partition = {
          IdRefOf(*q.graph(), path.EntityAt(b))};
      std::vector<FieldRef> ids = SegmentIds(q, a, b - 1);

      const std::vector<Predicate> seg_preds = info.PredsIn(a, b);
      std::vector<FieldRef> range_fields;
      for (const Predicate& p : seg_preds) {
        if (p.IsRange()) AddUnique(&range_fields, p.field);
      }

      // Plain link family.
      TryAdd(pool, segment, partition, ids, {});
      // Predicate/select-carrying variants.
      std::vector<FieldRef> carry = FieldsOf(seg_preds);
      for (const FieldRef& s : info.SelectIn(a, b)) AddUnique(&carry, s);
      for (const FieldRef& o : info.OrdersIn(a, b)) AddUnique(&carry, o);
      if (!carry.empty()) {
        std::vector<FieldRef> clustering;
        for (const FieldRef& r : range_fields) AddUnique(&clustering, r);
        for (const FieldRef& id : ids) AddUnique(&clustering, id);
        TryAdd(pool, segment, partition, clustering, carry);
      }
    }
  }

  // --- Materialization candidates: [id(e)][][attrs] per referenced entity
  //     (paper: "[GuestID][][GuestName, GuestEmail]"). ---
  if (options_.enable_splits || true) {
    for (size_t m = info.lo; m <= info.hi; ++m) {
      const std::string& entity = path.EntityAt(m);
      StatusOr<KeyPath> single = q.graph()->SingleEntityPath(entity);
      if (!single.ok()) continue;
      const FieldRef id = IdRefOf(*q.graph(), entity);
      std::vector<FieldRef> attrs = info.SelectIn(m, m);
      for (const FieldRef& o : info.OrdersIn(m, m)) AddUnique(&attrs, o);
      std::vector<FieldRef> with_preds = attrs;
      for (const Predicate& p : q.PredicatesOn(m)) {
        AddUnique(&with_preds, p.field);
      }
      if (!attrs.empty()) TryAdd(pool, *single, {id}, {}, attrs);
      if (!with_preds.empty() && with_preds != attrs) {
        TryAdd(pool, *single, {id}, {}, with_preds);
      }
    }
  }
}

void Enumerator::Combine(CandidatePool* pool) const {
  if (!options_.enable_combination) return;
  obs::Span span("enumerate.combine", "enumerator");
  static obs::Counter& combined =
      obs::MetricsRegistry::Global().GetCounter("enumerator.combined_added");
  const size_t size_before = pool->size();
  const std::vector<ColumnFamily> snapshot = pool->candidates();
  for (size_t x = 0; x < snapshot.size(); ++x) {
    const ColumnFamily& a = snapshot[x];
    if (!a.clustering_key().empty()) continue;
    for (size_t y = x + 1; y < snapshot.size(); ++y) {
      const ColumnFamily& b = snapshot[y];
      if (!b.clustering_key().empty()) continue;
      if (a.partition_key() != b.partition_key()) continue;
      if (!(a.path() == b.path())) continue;
      if (a.values() == b.values()) continue;
      std::vector<FieldRef> merged = a.values();
      for (const FieldRef& v : b.values()) AddUnique(&merged, v);
      auto cf = ColumnFamily::Create(a.path(), a.partition_key(), {},
                                     std::move(merged));
      if (cf.ok()) pool->Add(std::move(cf).value());
    }
  }
  combined.Add(pool->size() - size_before);
}

CandidatePool Enumerator::EnumerateWorkload(const Workload& workload,
                                            const std::string& mix,
                                            util::ThreadPool* threads) const {
  obs::Span span("enumerate.workload", "enumerator");
  static obs::Counter& queries_counter =
      obs::MetricsRegistry::Global().GetCounter("enumerator.queries");
  static obs::Counter& generated = obs::MetricsRegistry::Global().GetCounter(
      "enumerator.candidates_generated");
  static obs::Counter& support_tasks =
      obs::MetricsRegistry::Global().GetCounter("enumerator.support_tasks");
  static obs::Counter& interned = obs::MetricsRegistry::Global().GetCounter(
      "enumerator.candidates_interned");

  CandidatePool pool;
  const auto entries = workload.EntriesIn(mix);

  // Per-query enumeration is independent (EnumerateQuery never reads the
  // pool), so each query fills a private pool in parallel; interning the
  // private pools in statement order reproduces the serial insertion
  // sequence — and therefore the serial CfIds — exactly.
  std::vector<const Query*> queries;
  for (const auto& [entry, weight] : entries) {
    if (entry->IsQuery()) queries.push_back(&entry->query());
  }
  queries_counter.Add(queries.size());
  {
    std::vector<CandidatePool> locals(queries.size());
    util::ParallelFor(threads, queries.size(), [&](size_t i) {
      obs::Span qspan("enumerate.query", "enumerator");
      EnumerateQuery(*queries[i], &locals[i]);
    });
    for (CandidatePool& local : locals) {
      generated.Add(local.size());
      pool.MergeFrom(local);
    }
  }

  // Support-query enumeration runs twice: the first round may introduce
  // families over new paths whose own support queries need candidates too
  // (paper Algorithm 1, "do twice"). Each round fans out over
  // (update, candidate) pairs against a snapshot of the pool; the merge in
  // pair order again matches the serial sequence.
  for (int round = 0; round < 2; ++round) {
    obs::Span round_span("enumerate.support_round", "enumerator");
    const std::vector<ColumnFamily> snapshot = pool.candidates();
    struct SupportTask {
      const Update* update;
      const ColumnFamily* cf;
    };
    std::vector<SupportTask> tasks;
    for (const auto& [entry, weight] : entries) {
      if (entry->IsQuery()) continue;
      for (const ColumnFamily& cf : snapshot) {
        if (!Modifies(entry->update(), cf)) continue;
        tasks.push_back({&entry->update(), &cf});
      }
    }
    support_tasks.Add(tasks.size());
    std::vector<CandidatePool> locals(tasks.size());
    util::ParallelFor(threads, tasks.size(), [&](size_t i) {
      obs::Span tspan("enumerate.support_task", "enumerator");
      for (const Query& sq : SupportQueries(*tasks[i].update, *tasks[i].cf)) {
        EnumerateQuery(sq, &locals[i]);
      }
    });
    for (CandidatePool& local : locals) {
      generated.Add(local.size());
      pool.MergeFrom(local);
    }
  }
  Combine(&pool);
  interned.Add(pool.size());
  return pool;
}

}  // namespace nose
