#ifndef NOSE_ENUMERATOR_ENUMERATOR_H_
#define NOSE_ENUMERATOR_ENUMERATOR_H_

#include <string>
#include <vector>

#include "schema/candidate_pool.h"
#include "schema/column_family.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "workload/workload.h"

namespace nose {

/// Feature toggles for ablation studies.
struct EnumeratorOptions {
  /// Generate predicate-relaxed variants (paper §IV-A2 "relaxed queries").
  bool enable_relaxation = true;
  /// Generate key-only + materialization splits (paper §IV-A2).
  bool enable_splits = true;
  /// Run the Combine step (paper §IV-A3).
  bool enable_combination = true;
};

/// Workload-driven candidate enumeration (paper §IV-A and Algorithm 1):
/// for each query, recursive decomposition yields materialized views,
/// split key/value families and relaxed variants for every path segment;
/// update support queries are enumerated in two extra rounds; finally
/// Combine merges compatible families.
class Enumerator {
 public:
  explicit Enumerator(EnumeratorOptions options = EnumeratorOptions())
      : options_(options) {}

  /// Candidates useful for one query (Enumerate(q) in the paper). Pure in
  /// the pool: the candidates produced depend only on `query`, never on
  /// what `pool` already holds — the property the parallel workload
  /// enumeration relies on.
  void EnumerateQuery(const Query& query, CandidatePool* pool) const;

  /// Candidates for the whole workload under `mix`, including support-query
  /// enumeration for updates (Algorithm 1) and the Combine step. When
  /// `threads` is non-null, per-statement enumeration runs on it; local
  /// pools are interned into the result in statement order, which
  /// reproduces the serial insertion sequence exactly, so candidate CfIds
  /// are identical at every thread count.
  CandidatePool EnumerateWorkload(const Workload& workload,
                                  const std::string& mix,
                                  util::ThreadPool* threads = nullptr) const;

  /// Adds combinations of compatible candidates (same partition key, no
  /// clustering key, same path, different values).
  void Combine(CandidatePool* pool) const;

 private:
  EnumeratorOptions options_;
};

}  // namespace nose

#endif  // NOSE_ENUMERATOR_ENUMERATOR_H_
