#ifndef NOSE_ENUMERATOR_ENUMERATOR_H_
#define NOSE_ENUMERATOR_ENUMERATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "schema/column_family.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace nose {

/// Deduplicated pool of candidate column families, indexed stably so the
/// planner and optimizer can reference candidates by position.
class CandidatePool {
 public:
  /// Adds `cf` (no-op if an identical definition exists); returns its index.
  size_t Add(ColumnFamily cf);

  const std::vector<ColumnFamily>& candidates() const { return cfs_; }
  size_t size() const { return cfs_.size(); }
  bool Contains(const ColumnFamily& cf) const {
    return by_key_.count(cf.key()) > 0;
  }

 private:
  std::vector<ColumnFamily> cfs_;
  std::unordered_map<std::string, size_t> by_key_;
};

/// Feature toggles for ablation studies.
struct EnumeratorOptions {
  /// Generate predicate-relaxed variants (paper §IV-A2 "relaxed queries").
  bool enable_relaxation = true;
  /// Generate key-only + materialization splits (paper §IV-A2).
  bool enable_splits = true;
  /// Run the Combine step (paper §IV-A3).
  bool enable_combination = true;
};

/// Workload-driven candidate enumeration (paper §IV-A and Algorithm 1):
/// for each query, recursive decomposition yields materialized views,
/// split key/value families and relaxed variants for every path segment;
/// update support queries are enumerated in two extra rounds; finally
/// Combine merges compatible families.
class Enumerator {
 public:
  explicit Enumerator(EnumeratorOptions options = EnumeratorOptions())
      : options_(options) {}

  /// Candidates useful for one query (Enumerate(q) in the paper).
  void EnumerateQuery(const Query& query, CandidatePool* pool) const;

  /// Candidates for the whole workload under `mix`, including support-query
  /// enumeration for updates (Algorithm 1) and the Combine step.
  CandidatePool EnumerateWorkload(const Workload& workload,
                                  const std::string& mix) const;

  /// Adds combinations of compatible candidates (same partition key, no
  /// clustering key, same path, different values).
  void Combine(CandidatePool* pool) const;

 private:
  EnumeratorOptions options_;
};

}  // namespace nose

#endif  // NOSE_ENUMERATOR_ENUMERATOR_H_
