#include "model/entity_graph.h"

#include <algorithm>
#include <cassert>

namespace nose {

Status EntityGraph::AddEntity(Entity entity) {
  const std::string name = entity.name();
  if (name.empty()) {
    return Status::InvalidArgument("entity name must be non-empty");
  }
  if (entities_.count(name) > 0) {
    return Status::AlreadyExists("duplicate entity " + name);
  }
  entities_.emplace(name, std::move(entity));
  order_.push_back(name);
  return Status::Ok();
}

Status EntityGraph::AddRelationship(Relationship rel) {
  if (FindEntity(rel.from_entity) == nullptr) {
    return Status::NotFound("relationship references unknown entity " +
                            rel.from_entity);
  }
  if (FindEntity(rel.to_entity) == nullptr) {
    return Status::NotFound("relationship references unknown entity " +
                            rel.to_entity);
  }
  if (rel.forward_name.empty()) rel.forward_name = rel.to_entity;
  if (rel.reverse_name.empty()) rel.reverse_name = rel.from_entity;
  if (rel.from_entity == rel.to_entity) {
    return Status::InvalidArgument(
        "self-relationships are not supported (paper §VIII: \"we disallow "
        "self references\"): " +
        rel.from_entity);
  }
  // Step names must be unambiguous per source entity.
  if (FindStep(rel.from_entity, rel.forward_name).has_value()) {
    return Status::AlreadyExists("step " + rel.from_entity + " -> " +
                                 rel.forward_name + " already defined");
  }
  if (FindStep(rel.to_entity, rel.reverse_name).has_value()) {
    return Status::AlreadyExists("step " + rel.to_entity + " -> " +
                                 rel.reverse_name + " already defined");
  }
  relationships_.push_back(std::move(rel));
  return Status::Ok();
}

const Entity* EntityGraph::FindEntity(const std::string& name) const {
  auto it = entities_.find(name);
  return it == entities_.end() ? nullptr : &it->second;
}

Entity* EntityGraph::MutableEntity(const std::string& name) {
  auto it = entities_.find(name);
  return it == entities_.end() ? nullptr : &it->second;
}

const Entity& EntityGraph::GetEntity(const std::string& name) const {
  const Entity* e = FindEntity(name);
  assert(e != nullptr && "unknown entity");
  return *e;
}

std::optional<PathStep> EntityGraph::FindStep(
    const std::string& entity, const std::string& step_name) const {
  for (size_t i = 0; i < relationships_.size(); ++i) {
    const Relationship& rel = relationships_[i];
    if (rel.from_entity == entity && rel.forward_name == step_name) {
      return PathStep{static_cast<int>(i), /*forward=*/true};
    }
    if (rel.to_entity == entity && rel.reverse_name == step_name) {
      return PathStep{static_cast<int>(i), /*forward=*/false};
    }
  }
  return std::nullopt;
}

const std::string& EntityGraph::StepTarget(const std::string& entity,
                                           const PathStep& step) const {
  const Relationship& rel = relationship(step.relationship);
  (void)entity;
  assert((step.forward ? rel.from_entity : rel.to_entity) == entity);
  return step.forward ? rel.to_entity : rel.from_entity;
}

const std::string& EntityGraph::StepName(const PathStep& step) const {
  const Relationship& rel = relationship(step.relationship);
  return step.forward ? rel.forward_name : rel.reverse_name;
}

StatusOr<KeyPath> EntityGraph::ResolvePath(
    const std::string& start, const std::vector<std::string>& step_names) const {
  if (FindEntity(start) == nullptr) {
    return Status::NotFound("unknown entity " + start);
  }
  std::vector<PathStep> steps;
  std::vector<std::string> seen = {start};
  std::string current = start;
  for (const std::string& step_name : step_names) {
    std::optional<PathStep> step = FindStep(current, step_name);
    if (!step.has_value()) {
      return Status::NotFound("no step named " + step_name +
                              " leaving entity " + current);
    }
    current = StepTarget(current, *step);
    if (std::find(seen.begin(), seen.end(), current) != seen.end()) {
      return Status::InvalidArgument("path revisits entity " + current);
    }
    seen.push_back(current);
    steps.push_back(*step);
  }
  return KeyPath(this, start, std::move(steps));
}

StatusOr<KeyPath> EntityGraph::SingleEntityPath(const std::string& start) const {
  return ResolvePath(start, {});
}

StatusOr<const Field*> EntityGraph::ResolveField(const FieldRef& ref) const {
  const Entity* entity = FindEntity(ref.entity);
  if (entity == nullptr) {
    return Status::NotFound("unknown entity " + ref.entity);
  }
  const Field* field = entity->FindField(ref.field);
  if (field == nullptr) {
    return Status::NotFound("unknown field " + ref.QualifiedName());
  }
  return field;
}

double EntityGraph::StepFanout(const PathStep& step) const {
  const Relationship& rel = relationship(step.relationship);
  const double from_count =
      static_cast<double>(std::max<uint64_t>(1, GetEntity(rel.from_entity).count()));
  const double to_count =
      static_cast<double>(std::max<uint64_t>(1, GetEntity(rel.to_entity).count()));
  switch (rel.cardinality) {
    case Cardinality::kOneToOne:
      return 1.0;
    case Cardinality::kOneToMany:
      // One `from` has count(to)/count(from) `to`s on average; each `to`
      // has exactly one `from`.
      return step.forward ? std::max(1.0, to_count / from_count) : 1.0;
    case Cardinality::kManyToMany: {
      double links = static_cast<double>(rel.link_count);
      if (links <= 0) links = std::max(from_count, to_count);
      return step.forward ? std::max(1.0, links / from_count)
                          : std::max(1.0, links / to_count);
    }
  }
  return 1.0;
}

double EntityGraph::PathInstanceCount(const KeyPath& path) const {
  double count =
      static_cast<double>(std::max<uint64_t>(1, GetEntity(path.start_entity()).count()));
  for (const PathStep& step : path.steps()) {
    count *= StepFanout(step);
  }
  return count;
}

}  // namespace nose
