#ifndef NOSE_MODEL_ENTITY_H_
#define NOSE_MODEL_ENTITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/field.h"
#include "util/status.h"

namespace nose {

/// An entity set in the conceptual model (a box in the entity graph).
/// Every entity has exactly one kId field, its surrogate primary key.
class Entity {
 public:
  Entity() = default;
  /// Creates an entity with `count` expected instances and an ID field added
  /// automatically — named `id_name`, or `<name>ID` when omitted.
  Entity(std::string name, uint64_t count, std::string id_name = "");

  const std::string& name() const { return name_; }
  uint64_t count() const { return count_; }
  void set_count(uint64_t count) { count_ = count; }

  /// 1-based line of the declaration in the model source; 0 when built
  /// programmatically (used by `nose lint` diagnostics).
  int def_line() const { return def_line_; }
  void set_def_line(int line) { def_line_ = line; }

  /// Adds an attribute; fails on duplicate names or a second kId field.
  Status AddField(Field field);

  /// Returns nullptr if the entity has no field called `name`.
  const Field* FindField(const std::string& name) const;

  /// The surrogate primary key field.
  const Field& id_field() const { return fields_[0]; }

  const std::vector<Field>& fields() const { return fields_; }

  /// Effective distinct-value count for `field` (resolves cardinality 0 to
  /// the entity count and clamps to the entity count: an attribute cannot
  /// have more distinct values than there are instances).
  uint64_t FieldCardinality(const Field& field) const;

 private:
  std::string name_;
  uint64_t count_ = 0;
  int def_line_ = 0;
  std::vector<Field> fields_;  // fields_[0] is always the ID field
};

}  // namespace nose

#endif  // NOSE_MODEL_ENTITY_H_
