#ifndef NOSE_MODEL_ENTITY_GRAPH_H_
#define NOSE_MODEL_ENTITY_GRAPH_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/entity.h"
#include "model/key_path.h"
#include "model/relationship.h"
#include "util/status.h"
#include "util/statusor.h"

namespace nose {

/// The application's conceptual model: a set of entity sets connected by
/// named, bidirectional relationships (paper Fig. 1). The graph owns
/// entities and relationships; queries, column families and plans refer
/// into it by name / index.
class EntityGraph {
 public:
  EntityGraph() = default;

  // The graph is referenced by pointer from KeyPath and downstream
  // structures; moving it would invalidate them.
  EntityGraph(const EntityGraph&) = delete;
  EntityGraph& operator=(const EntityGraph&) = delete;

  Status AddEntity(Entity entity);
  Status AddRelationship(Relationship rel);

  /// Returns nullptr if no entity named `name` exists.
  const Entity* FindEntity(const std::string& name) const;
  /// Mutable access for tooling that refreshes statistics (e.g. a Dataset
  /// syncing generated instance counts into the cost model).
  Entity* MutableEntity(const std::string& name);
  Relationship* MutableRelationship(int index) {
    return &relationships_[static_cast<size_t>(index)];
  }
  /// As FindEntity but the entity must exist (asserts).
  const Entity& GetEntity(const std::string& name) const;

  const std::vector<Relationship>& relationships() const {
    return relationships_;
  }
  const Relationship& relationship(int index) const {
    return relationships_[static_cast<size_t>(index)];
  }
  /// Entity names in insertion order.
  const std::vector<std::string>& entity_order() const { return order_; }

  /// Looks up the path step named `step_name` leaving `entity`; returns the
  /// relationship index and direction, or nullopt.
  std::optional<PathStep> FindStep(const std::string& entity,
                                   const std::string& step_name) const;

  /// The entity reached by taking `step` from `entity`.
  const std::string& StepTarget(const std::string& entity,
                                const PathStep& step) const;

  /// Name of `step` as seen when leaving its source entity.
  const std::string& StepName(const PathStep& step) const;

  /// Builds a path starting at `start` and following `step_names`.
  /// Fails if a step is unknown or the path revisits an entity.
  StatusOr<KeyPath> ResolvePath(const std::string& start,
                                const std::vector<std::string>& step_names) const;

  /// A zero-step path anchored at `start`.
  StatusOr<KeyPath> SingleEntityPath(const std::string& start) const;

  /// Validates `ref` and returns its Field definition.
  StatusOr<const Field*> ResolveField(const FieldRef& ref) const;

  /// Expected number of target-entity instances reached per source instance
  /// when traversing `step` (cost-model fan-out).
  double StepFanout(const PathStep& step) const;

  /// Expected number of distinct instantiations of `path` (the number of
  /// records a materialized view over the whole path would hold).
  double PathInstanceCount(const KeyPath& path) const;

 private:
  std::map<std::string, Entity> entities_;
  std::vector<std::string> order_;
  std::vector<Relationship> relationships_;
};

}  // namespace nose

#endif  // NOSE_MODEL_ENTITY_GRAPH_H_
