#ifndef NOSE_MODEL_RELATIONSHIP_H_
#define NOSE_MODEL_RELATIONSHIP_H_

#include <cstdint>
#include <string>

namespace nose {

/// Cardinality of a relationship between two entity sets, read as
/// "one/many `from` relate to one/many `to`".
enum class Cardinality {
  kOneToOne,
  kOneToMany,   ///< one `from` has many `to`; each `to` has one `from`
  kManyToMany,
};

const char* CardinalityName(Cardinality c);

/// An edge of the entity graph. A relationship is traversable in both
/// directions; each direction has a name usable as a step in query paths
/// (e.g. Guest --"Reservations"--> Reservation --"Guest"--> Guest).
struct Relationship {
  std::string from_entity;
  std::string to_entity;
  Cardinality cardinality = Cardinality::kOneToMany;
  /// Path-step name for the from -> to direction (must be unique among the
  /// steps leaving `from_entity`).
  std::string forward_name;
  /// Path-step name for the to -> from direction.
  std::string reverse_name;
  /// For kManyToMany: the expected number of (from, to) association pairs;
  /// 0 means "derive" as max(count(from), count(to)).
  uint64_t link_count = 0;
  /// 1-based line of the declaration in the model source; 0 when built
  /// programmatically (used by `nose lint` diagnostics).
  int def_line = 0;
};

}  // namespace nose

#endif  // NOSE_MODEL_RELATIONSHIP_H_
