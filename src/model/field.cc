#include "model/field.h"

namespace nose {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kId:
      return "ID";
    case FieldType::kInteger:
      return "integer";
    case FieldType::kFloat:
      return "float";
    case FieldType::kString:
      return "string";
    case FieldType::kDate:
      return "date";
    case FieldType::kBoolean:
      return "boolean";
  }
  return "unknown";
}

uint32_t DefaultFieldSize(FieldType type) {
  switch (type) {
    case FieldType::kId:
      return 8;
    case FieldType::kInteger:
      return 8;
    case FieldType::kFloat:
      return 8;
    case FieldType::kString:
      return 32;  // average short string
    case FieldType::kDate:
      return 8;
    case FieldType::kBoolean:
      return 1;
  }
  return 8;
}

}  // namespace nose
