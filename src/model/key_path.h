#ifndef NOSE_MODEL_KEY_PATH_H_
#define NOSE_MODEL_KEY_PATH_H_

#include <string>
#include <vector>

namespace nose {

class EntityGraph;

/// One traversal step of a path: a relationship (by index in the owning
/// EntityGraph) walked forward (from -> to) or backward (to -> from).
struct PathStep {
  int relationship = -1;
  bool forward = true;

  friend bool operator==(const PathStep& a, const PathStep& b) {
    return a.relationship == b.relationship && a.forward == b.forward;
  }
};

/// A directed, simple (no entity revisited) path through the entity graph.
/// A path with k steps touches k+1 entities; a path with zero steps is a
/// single entity. Queries, column families and plans are all anchored to
/// key paths (paper §III-B: "a path that originates at the target entity
/// set and traverses the entity graph").
class KeyPath {
 public:
  KeyPath() = default;
  KeyPath(const EntityGraph* graph, std::string start_entity,
          std::vector<PathStep> steps);

  const EntityGraph* graph() const { return graph_; }
  const std::string& start_entity() const { return entities_.front(); }
  const std::vector<PathStep>& steps() const { return steps_; }

  /// Number of entities on the path (steps + 1).
  size_t NumEntities() const { return entities_.size(); }
  const std::string& EntityAt(size_t i) const { return entities_[i]; }
  const std::vector<std::string>& entities() const { return entities_; }

  /// Index of `entity` on this path, or -1 if absent. Unambiguous because
  /// paths are simple.
  int IndexOfEntity(const std::string& entity) const;
  bool ContainsEntity(const std::string& entity) const {
    return IndexOfEntity(entity) >= 0;
  }

  /// True if this path traverses `relationship` (in either direction).
  bool TraversesRelationship(int relationship) const;

  /// The same path walked in the opposite direction.
  KeyPath Reversed() const;

  /// The sub-path covering entities [first, last] (inclusive indices).
  KeyPath SubPath(size_t first, size_t last) const;

  /// Stable textual form, e.g. "Guest-[Reservations]->Reservation".
  std::string ToString() const;

  friend bool operator==(const KeyPath& a, const KeyPath& b) {
    return a.entities_ == b.entities_ && a.steps_ == b.steps_;
  }

 private:
  const EntityGraph* graph_ = nullptr;
  std::vector<PathStep> steps_;
  std::vector<std::string> entities_;  // steps_.size() + 1 names
};

}  // namespace nose

#endif  // NOSE_MODEL_KEY_PATH_H_
