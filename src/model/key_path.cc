#include "model/key_path.h"

#include <algorithm>
#include <cassert>

#include "model/entity_graph.h"

namespace nose {

KeyPath::KeyPath(const EntityGraph* graph, std::string start_entity,
                 std::vector<PathStep> steps)
    : graph_(graph), steps_(std::move(steps)) {
  assert(graph_ != nullptr);
  entities_.push_back(std::move(start_entity));
  for (const PathStep& step : steps_) {
    entities_.push_back(graph_->StepTarget(entities_.back(), step));
  }
}

int KeyPath::IndexOfEntity(const std::string& entity) const {
  auto it = std::find(entities_.begin(), entities_.end(), entity);
  if (it == entities_.end()) return -1;
  return static_cast<int>(it - entities_.begin());
}

bool KeyPath::TraversesRelationship(int relationship) const {
  return std::any_of(steps_.begin(), steps_.end(), [&](const PathStep& s) {
    return s.relationship == relationship;
  });
}

KeyPath KeyPath::Reversed() const {
  std::vector<PathStep> rev;
  rev.reserve(steps_.size());
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    rev.push_back(PathStep{it->relationship, !it->forward});
  }
  return KeyPath(graph_, entities_.back(), std::move(rev));
}

KeyPath KeyPath::SubPath(size_t first, size_t last) const {
  assert(first <= last && last < entities_.size());
  std::vector<PathStep> steps(steps_.begin() + static_cast<long>(first),
                              steps_.begin() + static_cast<long>(last));
  return KeyPath(graph_, entities_[first], std::move(steps));
}

std::string KeyPath::ToString() const {
  std::string out = entities_.front();
  for (size_t i = 0; i < steps_.size(); ++i) {
    out += "-[" + graph_->StepName(steps_[i]) + "]->";
    out += entities_[i + 1];
  }
  return out;
}

}  // namespace nose
