#ifndef NOSE_MODEL_FIELD_H_
#define NOSE_MODEL_FIELD_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace nose {

/// Data type of an attribute in the conceptual model. Types drive default
/// storage-size estimates and parameter generation in workload tooling.
enum class FieldType {
  kId,       ///< Surrogate primary key of an entity set.
  kInteger,
  kFloat,
  kString,
  kDate,
  kBoolean,
};

const char* FieldTypeName(FieldType type);

/// Default on-disk size estimate in bytes for a field of `type` (strings use
/// an average length; overridable per field).
uint32_t DefaultFieldSize(FieldType type);

/// An attribute of an entity set in the conceptual model.
struct Field {
  std::string name;
  FieldType type = FieldType::kString;
  /// Estimated stored size in bytes; 0 means "use DefaultFieldSize(type)".
  uint32_t size = 0;
  /// Number of distinct values; 0 means "derive" (entity count for kId and
  /// as a fallback for other types, i.e. assume unique values).
  uint64_t cardinality = 0;
  /// 1-based line of the declaration in the model source; 0 when the field
  /// was built programmatically (used by `nose lint` diagnostics).
  int def_line = 0;

  uint32_t SizeBytes() const { return size != 0 ? size : DefaultFieldSize(type); }
};

/// Reference to a field of a named entity set ("Entity.field"). This is the
/// currency of column-family definitions, predicates and select lists.
struct FieldRef {
  std::string entity;
  std::string field;

  std::string QualifiedName() const { return entity + "." + field; }

  friend bool operator==(const FieldRef& a, const FieldRef& b) {
    return a.entity == b.entity && a.field == b.field;
  }
  friend bool operator<(const FieldRef& a, const FieldRef& b) {
    if (a.entity != b.entity) return a.entity < b.entity;
    return a.field < b.field;
  }
};

struct FieldRefHash {
  size_t operator()(const FieldRef& ref) const {
    return std::hash<std::string>()(ref.entity) * 1000003u ^
           std::hash<std::string>()(ref.field);
  }
};

inline std::ostream& operator<<(std::ostream& os, const FieldRef& ref) {
  return os << ref.QualifiedName();
}

}  // namespace nose

#endif  // NOSE_MODEL_FIELD_H_
