#include "model/entity.h"

#include <algorithm>

namespace nose {

Entity::Entity(std::string name, uint64_t count, std::string id_name)
    : name_(std::move(name)), count_(count) {
  Field id;
  id.name = id_name.empty() ? name_ + "ID" : std::move(id_name);
  id.type = FieldType::kId;
  fields_.push_back(std::move(id));
}

Status Entity::AddField(Field field) {
  if (field.type == FieldType::kId) {
    return Status::InvalidArgument("entity " + name_ +
                                   " already has an ID field; cannot add " +
                                   field.name);
  }
  if (FindField(field.name) != nullptr) {
    return Status::AlreadyExists("duplicate field " + name_ + "." +
                                 field.name);
  }
  fields_.push_back(std::move(field));
  return Status::Ok();
}

const Field* Entity::FindField(const std::string& name) const {
  auto it = std::find_if(fields_.begin(), fields_.end(),
                         [&](const Field& f) { return f.name == name; });
  return it == fields_.end() ? nullptr : &*it;
}

uint64_t Entity::FieldCardinality(const Field& field) const {
  uint64_t card = field.cardinality;
  if (field.type == FieldType::kId || card == 0) card = count_;
  if (field.type == FieldType::kBoolean) card = std::min<uint64_t>(card, 2);
  return std::max<uint64_t>(1, std::min(card, std::max<uint64_t>(1, count_)));
}

}  // namespace nose
