#ifndef NOSE_OBS_TRACE_H_
#define NOSE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nose {
namespace obs {

/// One completed span, recorded into the owning thread's buffer. `category`
/// must be a string literal (it is kept by pointer); `name` may be dynamic
/// (per-statement span names carry the statement).
struct TraceEvent {
  std::string name;
  const char* category = "";
  int64_t start_ns = 0;  ///< offset from the recorder's Enable() epoch
  int64_t dur_ns = 0;
  std::vector<std::pair<const char*, std::string>> args;
};

/// Process-wide trace sink in the Chrome trace_event model: spans append to
/// per-thread buffers (no locks, no cross-thread contention on the record
/// path), and export walks the buffers into a JSON document that opens
/// directly in chrome://tracing or Perfetto.
///
/// Recording is off by default; a disabled Span costs one relaxed atomic
/// load and nothing else. Enable()/export are meant to bracket a quiescent
/// region (enable, run the pipeline, let worker pools drain, export) — the
/// per-thread buffers are unsynchronized by design, so exporting while
/// spans are still being recorded on other threads is undefined.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Starts recording: clears previously captured events and resets the
  /// trace epoch (timestamp zero) to now.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Nanoseconds of the Enable() epoch on the steady clock.
  int64_t epoch_ns() const { return epoch_ns_.load(std::memory_order_acquire); }

  /// Appends a completed event to the calling thread's buffer.
  void Append(TraceEvent event);

  /// Names the calling thread's lane in the exported trace (e.g.
  /// "pool-worker-3"). Safe to call whether or not recording is on.
  void SetCurrentThreadName(std::string name);

  /// The captured trace as a Chrome trace_event JSON document.
  std::string ToChromeJson();

  /// Writes ToChromeJson() to `path`. Returns false (and fills *error when
  /// non-null) on I/O failure.
  bool WriteChromeJson(const std::string& path, std::string* error = nullptr);

  /// Best-effort export that never blocks: tries the registry lock and, on
  /// the crash path where the owner may never release it, proceeds anyway —
  /// a torn read of a still-recording buffer beats losing the whole trace.
  /// Always emits a complete, well-formed Chrome-trace document.
  bool FlushPartial(const std::string& path, std::string* error = nullptr);

  /// Arms an abnormal-exit flush: installs handlers for SIGSEGV, SIGABRT,
  /// SIGBUS, SIGFPE, SIGINT, and SIGTERM that FlushPartial() the per-thread
  /// buffers to `path`, then restore the default disposition and re-raise.
  /// This keeps `--trace` output valid JSON even when the run dies mid-span.
  static void EnableCrashFlush(std::string path);

  /// Total events captured across all thread buffers.
  size_t EventCount();
  /// Distinct span categories captured so far (sorted).
  std::vector<std::string> Categories();

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> events;
  };

  TraceRecorder() = default;
  ThreadBuffer* CurrentBuffer();
  /// ToChromeJson() body; caller holds mu_ (or is the crash path).
  std::string RenderChromeJson();

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> epoch_ns_{0};
  std::mutex mu_;  ///< guards buffers_ registration/export, not appends
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<uint32_t> next_tid_{0};
};

/// Cheap check for "is anyone recording" — use to guard work that only
/// exists to enrich the trace (building a dynamic span name, say).
inline bool TracingEnabled() { return TraceRecorder::Global().enabled(); }

/// Names the calling thread's trace lane.
void SetCurrentThreadName(std::string name);

/// RAII span: records [construction, destruction) into the calling thread's
/// buffer when tracing is enabled. When disabled at construction the span
/// is inert — no clock read, no allocation for the const char* overload.
class Span {
 public:
  /// `name` and `category` must be string literals.
  Span(const char* name, const char* category);
  /// Dynamic-name overload; the string is consumed only when recording.
  Span(std::string name, const char* category);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Attaches a key/value argument shown in the trace viewer. No-op when
  /// the span is inactive. `key` must be a string literal.
  void Arg(const char* key, std::string value);

  /// Ends the span now (recording it) instead of at destruction.
  void End();

 private:
  bool active_ = false;
  const char* static_name_ = nullptr;  ///< null => dynamic_name_ holds it
  std::string dynamic_name_;
  const char* category_ = "";
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<const char*, std::string>> args_;
};

/// A span that doubles as the phase stopwatch feeding AdvisorTiming: the
/// phase reads one clock pair whether or not tracing is on, so the Fig. 13
/// breakdown is byte-identical with tracing enabled, disabled, or absent.
class PhaseSpan {
 public:
  PhaseSpan(const char* name, const char* category)
      : span_(name, category), start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction; the span keeps running.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Ends the span and returns its duration in seconds.
  double StopSeconds() {
    const double elapsed = ElapsedSeconds();
    span_.End();
    return elapsed;
  }

 private:
  Span span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace nose

#endif  // NOSE_OBS_TRACE_H_
