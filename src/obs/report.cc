#include "obs/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace nose {
namespace obs {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

void RunReport::AddPhase(const std::string& name, double seconds) {
  phases_.emplace_back(name, seconds);
}

void RunReport::AddString(const std::string& key, const std::string& value) {
  std::string rendered;
  AppendJsonString(&rendered, value);
  fields_.emplace_back(key, std::move(rendered));
}

void RunReport::AddNumber(const std::string& key, double value) {
  std::string rendered;
  AppendDouble(&rendered, value);
  fields_.emplace_back(key, std::move(rendered));
}

std::string RunReport::ToJson() const {
  std::string out = "{\"report_version\":1,\"command\":";
  AppendJsonString(&out, command_);
  for (const auto& [key, rendered] : fields_) {
    out.push_back(',');
    AppendJsonString(&out, key);
    out.push_back(':');
    out += rendered;
  }
  out += ",\"phases\":{";
  bool first = true;
  for (const auto& [name, seconds] : phases_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name + "_seconds");
    out.push_back(':');
    AppendDouble(&out, seconds);
  }
  out.push_back('}');
  if (!digest_json_.empty()) {
    out += ",\"digest\":";
    out += digest_json_;
  }
  if (!solver_json_.empty()) {
    out += ",\"solver\":";
    out += solver_json_;
  }
  if (!metrics_json_.empty()) {
    out += ",\"metrics\":";
    out += metrics_json_;
  }
  out.push_back('}');
  return out;
}

bool RunReport::WriteJson(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToJson() << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace nose
