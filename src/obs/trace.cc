#include "obs/trace.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <set>

namespace nose {
namespace obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Buffer of the calling thread, shared with the recorder's registry so it
/// survives the thread (pool workers die with their pool; their spans must
/// not).
thread_local std::shared_ptr<void> tls_buffer;

/// Crash-flush state. The path is leaked (a destructor racing a signal
/// handler would be worse); the flag doubles as a reentrancy guard so a
/// fault inside the flush itself falls through to the default disposition.
std::string* crash_flush_path = nullptr;
std::atomic<bool> crash_flush_armed{false};

void CrashFlushHandler(int sig) {
  if (crash_flush_armed.exchange(false, std::memory_order_acq_rel) &&
      crash_flush_path != nullptr) {
    TraceRecorder::Global().FlushPartial(*crash_flush_path);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

TraceRecorder::ThreadBuffer* TraceRecorder::CurrentBuffer() {
  if (tls_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    buffer->thread_name =
        buffer->tid == 0 ? "main" : "thread-" + std::to_string(buffer->tid);
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffers_.push_back(buffer);
    }
    tls_buffer = buffer;
  }
  return static_cast<ThreadBuffer*>(tls_buffer.get());
}

void TraceRecorder::Enable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) buffer->events.clear();
  }
  epoch_ns_.store(NowNs(), std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_release);
}

void TraceRecorder::Append(TraceEvent event) {
  CurrentBuffer()->events.push_back(std::move(event));
}

void TraceRecorder::SetCurrentThreadName(std::string name) {
  CurrentBuffer()->thread_name = std::move(name);
}

std::string TraceRecorder::ToChromeJson() {
  std::lock_guard<std::mutex> lock(mu_);
  return RenderChromeJson();
}

std::string TraceRecorder::RenderChromeJson() {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  char buf[64];
  for (const auto& buffer : buffers_) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buffer->tid);
    out += ",\"args\":{\"name\":";
    AppendJsonString(&out, buffer->thread_name);
    out += "}}";
    for (const TraceEvent& e : buffer->events) {
      comma();
      out += "{\"name\":";
      AppendJsonString(&out, e.name);
      out += ",\"cat\":";
      AppendJsonString(&out, e.category);
      out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(buffer->tid);
      // Microsecond timestamps with sub-microsecond spans preserved.
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                    std::max<int64_t>(e.start_ns, 0) / 1e3, e.dur_ns / 1e3);
      out += buf;
      if (!e.args.empty()) {
        out += ",\"args\":{";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) out.push_back(',');
          AppendJsonString(&out, e.args[i].first);
          out.push_back(':');
          AppendJsonString(&out, e.args[i].second);
        }
        out.push_back('}');
      }
      out.push_back('}');
    }
  }
  out += "]}";
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path,
                                    std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToChromeJson() << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool TraceRecorder::FlushPartial(const std::string& path, std::string* error) {
  // try_to_lock, and proceed even on failure: on the crash path the owner
  // may never release mu_, and a torn read beats a deadlock or an empty
  // trace. In normal (non-signal) use the lock is simply acquired.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  const std::string json = RenderChromeJson();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << json << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

void TraceRecorder::EnableCrashFlush(std::string path) {
  if (crash_flush_path == nullptr) crash_flush_path = new std::string();
  *crash_flush_path = std::move(path);
  crash_flush_armed.store(true, std::memory_order_release);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGINT, SIGTERM}) {
    std::signal(sig, CrashFlushHandler);
  }
}

size_t TraceRecorder::EventCount() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::vector<std::string> TraceRecorder::Categories() {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> cats;
  for (const auto& buffer : buffers_) {
    for (const TraceEvent& e : buffer->events) cats.insert(e.category);
  }
  return std::vector<std::string>(cats.begin(), cats.end());
}

void SetCurrentThreadName(std::string name) {
  TraceRecorder::Global().SetCurrentThreadName(std::move(name));
}

Span::Span(const char* name, const char* category) {
  if (!TraceRecorder::Global().enabled()) return;
  static_name_ = name;
  category_ = category;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

Span::Span(std::string name, const char* category) {
  if (!TraceRecorder::Global().enabled()) return;
  dynamic_name_ = std::move(name);
  category_ = category;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

void Span::Arg(const char* key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;  // disabled mid-span: drop it
  const auto end = std::chrono::steady_clock::now();
  TraceEvent event;
  event.name = static_name_ != nullptr ? std::string(static_name_)
                                       : std::move(dynamic_name_);
  event.category = category_;
  const int64_t start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               start_.time_since_epoch())
                               .count();
  event.start_ns = start_ns - recorder.epoch_ns();
  event.dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     end - start_)
                     .count();
  event.args = std::move(args_);
  recorder.Append(std::move(event));
}

}  // namespace obs
}  // namespace nose
