#ifndef NOSE_OBS_METRICS_H_
#define NOSE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace nose {
namespace obs {

/// Monotonic event counter. Always on: an increment is one relaxed atomic
/// add, cheap enough to leave in hot paths. Counter values are a pure
/// function of the work performed, so for the deterministic advisor
/// pipeline they are identical at every thread count (pinned by
/// obs_determinism_test).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (plus a monotone-max variant for
/// high-water marks).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (atomic max).
  void SetMax(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution sketch: count/sum/min/max plus power-of-two buckets
/// spanning ~1e-9 .. ~5e8 (fits nanosecond..second timings and row/byte
/// sizes alike). All updates are relaxed atomics; merging happens at
/// snapshot time.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Minimum observed value; 0 when empty.
  double min() const;
  /// Maximum observed value; 0 when empty.
  double max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket `i` (2^(i-30)); the last bucket is unbounded.
  static double BucketBound(size_t i);

  /// Approximate quantile (q in [0,1]) from the bucket sketch: walks the
  /// cumulative counts to the target rank and interpolates linearly inside
  /// the landing bucket, clamped to the exact [min, max] envelope. 0 when
  /// empty.
  double Quantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
  std::atomic<double> max_{0.0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Process-wide registry of named metrics. Lookup is a mutex-guarded map —
/// instrumentation sites cache the returned reference in a function-local
/// static, so the lock is taken once per site per process, never per event.
/// Metric objects live as long as the process; Reset() zeroes values
/// without invalidating references.
///
/// Naming convention: "<subsystem>.<what>[_<unit>]", e.g.
/// "enumerator.candidates_generated", "solver.simplex_iterations".
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Zeroes every registered metric (references stay valid).
  void Reset();

  /// Snapshot of all counters, name -> value (used by tests to diff runs).
  std::map<std::string, uint64_t> CounterValues() const;

  /// JSON snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:
  ///    {"count":n,"sum":s,"min":m,"max":M,"mean":u,
  ///     "p50":v,"p95":v,"p99":v,"buckets":{"<=B":c}}}}
  std::string ToJson() const;

  /// OpenMetrics / Prometheus text exposition of the same snapshot
  /// (`--metrics-format=prom`): counters as `<name>_total`, gauges as
  /// gauges, histograms as cumulative `_bucket{le="..."}` series plus
  /// `_sum`/`_count`, metric names sanitized to [a-zA-Z0-9_:]. Ends with
  /// the mandatory `# EOF` terminator.
  std::string ToOpenMetrics() const;

  /// Writes ToJson() to `path`. Returns false (and fills *error when
  /// non-null) on I/O failure.
  bool WriteJson(const std::string& path, std::string* error = nullptr);

  /// Writes ToOpenMetrics() to `path`.
  bool WriteOpenMetrics(const std::string& path, std::string* error = nullptr);

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace nose

#endif  // NOSE_OBS_METRICS_H_
