#ifndef NOSE_OBS_REPORT_H_
#define NOSE_OBS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

namespace nose {
namespace obs {

/// Builder for the unified machine-readable run report emitted by
/// `nose advise/evolve/check --report-json`:
///
///   {"report_version":1,"command":"advise",
///    <scalar fields in insertion order>,
///    "phases":{"<name>_seconds":t,...},
///    "digest":{...},"solver":{...},"metrics":{...}}
///
/// The obs layer sits below the solver and optimizer in the link order, so
/// the structured sections (digest, solver summary, metrics snapshot) are
/// passed in as pre-rendered JSON strings by the CLI; this class only
/// assembles and validates nothing.
class RunReport {
 public:
  explicit RunReport(std::string command) : command_(std::move(command)) {}

  /// Adds "<name>_seconds": seconds under "phases" (insertion order).
  void AddPhase(const std::string& name, double seconds);

  /// Top-level scalar fields, emitted in insertion order after "command".
  void AddString(const std::string& key, const std::string& value);
  void AddNumber(const std::string& key, double value);

  /// Pre-rendered JSON values for the structured sections. Empty sections
  /// are omitted from the output.
  void SetDigest(std::string json) { digest_json_ = std::move(json); }
  void SetSolverSummary(std::string json) { solver_json_ = std::move(json); }
  void SetMetrics(std::string json) { metrics_json_ = std::move(json); }

  std::string ToJson() const;
  bool WriteJson(const std::string& path, std::string* error = nullptr) const;

 private:
  std::string command_;
  std::vector<std::pair<std::string, double>> phases_;
  /// (key, rendered JSON value) — strings arrive pre-escaped by AddString.
  std::vector<std::pair<std::string, std::string>> fields_;
  std::string digest_json_;
  std::string solver_json_;
  std::string metrics_json_;
};

}  // namespace obs
}  // namespace nose

#endif  // NOSE_OBS_REPORT_H_
